#!/usr/bin/env bash
# Sharded out-of-core smoke test (make shard-smoke):
#
#   1. run the tiny bundled campaign through the sharded check pipeline
#      (--shards 4 --mem-budget 64M) with a dedicated spill directory and
#      require its canonical report to be byte-identical to a --shards 1
#      run and to the default (unsharded) pipeline;
#   2. rerun with a 1 KiB budget so every shard segment actually spills,
#      require the same canonical bytes again, and require the spill
#      directory to be empty afterwards — completed runs must not leak
#      mechaspill-* scratch;
#   3. start the mechaserve daemon with sharding enabled under the tiny
#      budget, submit a campaign, require /v1/stats to report the sharding
#      block with engaged spills and the streamed verdicts to match the
#      local reference, then SIGTERM it and require the drain to leave the
#      spill directory empty as well.
#
# The binary is the dune-built mechaverify; override BIN/DIR to point
# elsewhere.  Any failing step fails the script (set -e).
set -euo pipefail

BIN=${BIN:-./_build/default/bin/mechaverify.exe}
DIR=${DIR:-_build/shard-smoke}
DRAIN_DEADLINE_S=${DRAIN_DEADLINE_S:-10}

rm -rf "$DIR"
mkdir -p "$DIR/spill"

DAEMON_PID=
DAEMON_LOG="$DIR/daemon.log"

cleanup() {
  status=$?
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
  fi
  exit "$status"
}
trap cleanup EXIT

fail() {
  echo "shard-smoke: $1" >&2
  [ -f "$DAEMON_LOG" ] && { echo "--- daemon log ---" >&2; cat "$DAEMON_LOG" >&2; }
  exit 1
}

spill_leftovers() {
  find "$DIR/spill" -mindepth 1 2>/dev/null | head -n 5
}

# -- 1: canonical equality across shard counts --------------------------------

"$BIN" campaign --tiny --jobs 2 --log-level quiet \
  --canonical "$DIR/unsharded.canonical" >"$DIR/unsharded.out" 2>&1 \
  || fail "unsharded campaign failed: $(cat "$DIR/unsharded.out")"

"$BIN" campaign --tiny --jobs 2 --log-level quiet \
  --shards 1 --spill-dir "$DIR/spill" \
  --canonical "$DIR/shard1.canonical" >"$DIR/shard1.out" 2>&1 \
  || fail "--shards 1 campaign failed: $(cat "$DIR/shard1.out")"

"$BIN" campaign --tiny --jobs 2 --log-level quiet \
  --shards 4 --mem-budget 64M --spill-dir "$DIR/spill" \
  --canonical "$DIR/shard4.canonical" >"$DIR/shard4.out" 2>&1 \
  || fail "--shards 4 campaign failed: $(cat "$DIR/shard4.out")"

cmp -s "$DIR/unsharded.canonical" "$DIR/shard1.canonical" \
  || fail "--shards 1 canonical differs from the unsharded pipeline"
cmp -s "$DIR/unsharded.canonical" "$DIR/shard4.canonical" \
  || fail "--shards 4 --mem-budget 64M canonical differs from the unsharded pipeline"

# -- 2: forced spilling, identical bytes, no scratch left behind --------------

"$BIN" campaign --tiny --jobs 2 --log-level quiet \
  --shards 4 --mem-budget 1K --spill-dir "$DIR/spill" \
  --canonical "$DIR/spilled.canonical" >"$DIR/spilled.out" 2>&1 \
  || fail "budgeted campaign failed: $(cat "$DIR/spilled.out")"
cmp -s "$DIR/unsharded.canonical" "$DIR/spilled.canonical" \
  || fail "spilled canonical differs from the unsharded pipeline"
left=$(spill_leftovers)
[ -z "$left" ] || fail "campaign left spill scratch behind: $left"

# -- 3: sharded daemon — stats block, identical verdicts, clean drain ---------

"$BIN" serve --port 0 --workers 2 --handlers 2 \
  --shards 4 --mem-budget 1K --spill-dir "$DIR/spill" \
  >"$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!
PORT=
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^mechaserve listening on [^:]*:\([0-9][0-9]*\)$/\1/p' \
    "$DAEMON_LOG" | head -n 1)
  [ -n "$PORT" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died before listening"
  sleep 0.1
done
[ -n "$PORT" ] || fail "daemon never reported a listening port"

"$BIN" submit --port "$PORT" --tiny --tenant shard-smoke \
  --canonical "$DIR/daemon.canonical" >"$DIR/daemon.out" 2>&1 \
  || fail "sharded daemon submission failed: $(cat "$DIR/daemon.out")"
cmp -s "$DIR/unsharded.canonical" "$DIR/daemon.canonical" \
  || fail "daemon-served canonical differs from the local unsharded run"

"$BIN" probe --port "$PORT" >"$DIR/stats.json"
grep -q '"sharding":{"enabled":true,"shards":4' "$DIR/stats.json" \
  || fail "/v1/stats lacks the sharding block: $(cat "$DIR/stats.json")"
spills=$(sed -n 's/.*"spills":\([0-9][0-9]*\).*/\1/p' "$DIR/stats.json" | head -n 1)
[ -n "$spills" ] && [ "$spills" -gt 0 ] \
  || fail "/v1/stats reports no spills under a 1 KiB budget (spills: ${spills:-none})"

kill -TERM "$DAEMON_PID"
deadline=$((DRAIN_DEADLINE_S * 10))
for _ in $(seq 1 "$deadline"); do
  kill -0 "$DAEMON_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$DAEMON_PID" 2>/dev/null \
  && fail "daemon did not drain within ${DRAIN_DEADLINE_S}s"
wait "$DAEMON_PID" || fail "daemon exited nonzero after SIGTERM"
DAEMON_PID=

left=$(spill_leftovers)
[ -z "$left" ] || fail "daemon drain left spill scratch behind: $left"

echo "shard-smoke: OK (canonicals identical across shard counts, spills engaged and cleaned up)"
