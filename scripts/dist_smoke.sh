#!/usr/bin/env bash
# Distributed sharding smoke test (make dist-smoke):
#
#   1. run the tiny bundled campaign through the cross-process tier
#      (--shards 4 --dist-workers 2: two forked shard-worker processes per
#      product build) and require its canonical report to be byte-identical
#      to the in-process sharded run;
#   2. rerun with MECHAVERIFY_DIST_THROTTLE_MS slowing worker rounds down,
#      SIGKILL one shard-worker mid-campaign, and require the campaign to
#      recover (mc_dist_worker_restarts_total >= 1 in --metrics-out) with
#      the same canonical bytes;
#   3. require clean teardown: no shard-worker processes left running, and
#      the spill directory (which also hosts the worker sockets) empty.
#
# The binary is the dune-built mechaverify; override BIN/DIR to point
# elsewhere.  Any failing step fails the script (set -e).
set -euo pipefail

BIN=${BIN:-./_build/default/bin/mechaverify.exe}
DIR=${DIR:-_build/dist-smoke}

rm -rf "$DIR"
mkdir -p "$DIR/spill"

CAMPAIGN_PID=

cleanup() {
  status=$?
  if [ -n "$CAMPAIGN_PID" ] && kill -0 "$CAMPAIGN_PID" 2>/dev/null; then
    kill -9 "$CAMPAIGN_PID" 2>/dev/null || true
  fi
  pkill -9 -f 'shard-worker' 2>/dev/null || true
  exit "$status"
}
trap cleanup EXIT

fail() {
  echo "dist-smoke: $1" >&2
  exit 1
}

spill_leftovers() {
  find "$DIR/spill" -mindepth 1 2>/dev/null | head -n 5
}

# -- 1: canonical equality vs the in-process sharded pipeline -----------------

"$BIN" campaign --tiny --jobs 1 --log-level quiet \
  --shards 4 --spill-dir "$DIR/spill" \
  --canonical "$DIR/inproc.canonical" >"$DIR/inproc.out" 2>&1 \
  || fail "in-process sharded campaign failed: $(cat "$DIR/inproc.out")"

"$BIN" campaign --tiny --jobs 1 --log-level quiet \
  --shards 4 --dist-workers 2 --spill-dir "$DIR/spill" \
  --canonical "$DIR/dist.canonical" >"$DIR/dist.out" 2>&1 \
  || fail "--dist-workers 2 campaign failed: $(cat "$DIR/dist.out")"

cmp -s "$DIR/inproc.canonical" "$DIR/dist.canonical" \
  || fail "--dist-workers 2 canonical differs from the in-process sharded run"

left=$(spill_leftovers)
[ -z "$left" ] || fail "distributed campaign left scratch or sockets behind: $left"

# -- 2: SIGKILL one worker mid-campaign; recovery must be invisible -----------

# The throttle stretches every build round so the kill window is wide; a
# worker is only alive while a product is being built, so hitting one is a
# mid-build kill by construction.  If the build still slips through before
# the signal lands (restarts = 0), retry the whole run.
recovered=0
for attempt in 1 2 3; do
  rm -f "$DIR/killed.canonical" "$DIR/metrics.txt"
  MECHAVERIFY_DIST_THROTTLE_MS=40 "$BIN" campaign --tiny --jobs 1 --log-level quiet \
    --shards 4 --dist-workers 2 --spill-dir "$DIR/spill" \
    --metrics-out "$DIR/metrics.txt" \
    --canonical "$DIR/killed.canonical" >"$DIR/killed.out" 2>&1 &
  CAMPAIGN_PID=$!

  victim=
  for _ in $(seq 1 100); do
    victim=$(pgrep -f 'shard-worker' | head -n 1 || true)
    [ -n "$victim" ] && break
    kill -0 "$CAMPAIGN_PID" 2>/dev/null || fail "campaign died before spawning workers: $(cat "$DIR/killed.out")"
    sleep 0.1
  done
  [ -n "$victim" ] || fail "no shard-worker process ever appeared"
  kill -9 "$victim" 2>/dev/null || true

  wait "$CAMPAIGN_PID" || fail "campaign failed after the worker kill: $(cat "$DIR/killed.out")"
  CAMPAIGN_PID=

  cmp -s "$DIR/inproc.canonical" "$DIR/killed.canonical" \
    || fail "canonical differs after a worker was SIGKILLed mid-campaign"

  restarts=$(sed -n 's/^mc_dist_worker_restarts_total[^0-9]*\([0-9][0-9]*\).*/\1/p' \
    "$DIR/metrics.txt" | head -n 1)
  if [ -n "$restarts" ] && [ "$restarts" -ge 1 ]; then
    recovered=1
    break
  fi
  echo "dist-smoke: kill landed between builds (attempt $attempt), retrying" >&2
done
[ "$recovered" -eq 1 ] \
  || fail "worker kill never hit a live build (mc_dist_worker_restarts_total stayed 0)"

# -- 3: clean teardown --------------------------------------------------------

pgrep -f 'shard-worker' >/dev/null 2>&1 \
  && fail "shard-worker processes left running after the campaign"

left=$(spill_leftovers)
[ -z "$left" ] || fail "kill-recovery run left scratch or sockets behind: $left"

echo "dist-smoke: OK (distributed canonicals identical, worker kill recovered, teardown clean)"
