#!/usr/bin/env bash
# End-to-end smoke test of the mechaserve daemon (make serve-smoke):
#
#   1. start `mechaverify serve` on an ephemeral port with a cache snapshot
#      and a write-ahead log;
#   2. run two concurrent `mechaverify submit` clients under distinct
#      tenants and require byte-identical canonical digests from both;
#   3. scrape /v1/stats and /metrics and require the serve_* series
#      (including the resilience counters);
#   4. SIGTERM the daemon and require a clean drain within a deadline,
#      a zero exit status and a non-empty cache snapshot on disk;
#   5. restart, require the cache to come back warm from the snapshot,
#      then SIGKILL the daemon mid-life;
#   6. restart once more and require both a warm cache and verdicts
#      byte-identical to the first life — a SIGKILL must never corrupt
#      what the next daemon recovers.
#
# Every daemon life is tracked: the EXIT trap kills whatever survived, and
# a daemon still alive after the script believed it stopped one is itself a
# failure (a drain that leaks a process is a bug, not an inconvenience).
#
# The daemon binary is the dune-built mechaverify; override BIN/DIR to point
# elsewhere.  Any failing step fails the script (set -e) with the daemon log
# dumped for diagnosis.
set -euo pipefail

BIN=${BIN:-./_build/default/bin/mechaverify.exe}
DIR=${DIR:-_build/serve-smoke}
DRAIN_DEADLINE_S=${DRAIN_DEADLINE_S:-10}

rm -rf "$DIR"
mkdir -p "$DIR"

DAEMON_PID=
DAEMON_LOG="$DIR/daemon.log"
EXPECT_DEAD=0

cleanup() {
  status=$?
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
    if [ "$EXPECT_DEAD" = 1 ]; then
      echo "serve-smoke: daemon $DAEMON_PID survived its teardown" >&2
      exit 1
    fi
  fi
  exit "$status"
}
trap cleanup EXIT

fail() {
  echo "serve-smoke: $1" >&2
  echo "--- daemon log ($DAEMON_LOG) ---" >&2
  cat "$DAEMON_LOG" >&2 || true
  exit 1
}

# start_daemon <logname> [extra serve args...]: sets DAEMON_PID/DAEMON_LOG
# and PORT once the daemon reports its ephemeral listener.
start_daemon() {
  DAEMON_LOG="$DIR/$1.log"
  FLIGHT_DUMP="$DIR/$1.flight"
  shift
  "$BIN" serve --port 0 --workers 2 --handlers 2 \
    --snapshot "$DIR/cache.snap" --wal "$DIR/serve.wal" --job-deadline 60 \
    --flight-size 256 --flight-dump "$FLIGHT_DUMP" \
    "$@" >"$DAEMON_LOG" 2>&1 &
  DAEMON_PID=$!
  PORT=
  for _ in $(seq 1 100); do
    PORT=$(sed -n 's/^mechaserve listening on [^:]*:\([0-9][0-9]*\)$/\1/p' \
      "$DAEMON_LOG" | head -n 1)
    [ -n "$PORT" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died before listening"
    sleep 0.1
  done
  [ -n "$PORT" ] || fail "daemon never reported a listening port"
}

# stop_daemon_term: SIGTERM, require a clean exit within the drain deadline,
# and require the process to actually be gone.
stop_daemon_term() {
  kill -TERM "$DAEMON_PID"
  deadline=$((DRAIN_DEADLINE_S * 10))
  for _ in $(seq 1 "$deadline"); do
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.1
  done
  kill -0 "$DAEMON_PID" 2>/dev/null \
    && fail "daemon did not drain within ${DRAIN_DEADLINE_S}s"
  wait "$DAEMON_PID" || fail "daemon exited nonzero after SIGTERM"
  EXPECT_DEAD=1
  kill -0 "$DAEMON_PID" 2>/dev/null && fail "daemon survived its own drain"
  EXPECT_DEAD=0
  DAEMON_PID=
}

# cache_entries <stats.json>: the restored-cache size the daemon reports.
cache_entries() {
  sed -n 's/.*"entries":\([0-9][0-9]*\).*/\1/p' "$1" | head -n 1
}

# -- life 1: cold start, concurrent tenants, metrics, clean drain -------------

start_daemon daemon1

# a fixed trace id must be echoed back by the daemon and reported by the probe
"$BIN" probe --port "$PORT" --request-id smoke-rid-probe \
  >"$DIR/stats.json" 2>"$DIR/probe.err"
grep -q '"schema":"mechaml-serve-stats/1"' "$DIR/stats.json" \
  || fail "/v1/stats did not return the stats schema"
grep -q "request id: smoke-rid-probe" "$DIR/probe.err" \
  || fail "probe did not report the echoed trace id"

# two concurrent clients under distinct tenants; both must finish and agree
"$BIN" submit --port "$PORT" --tiny --tenant smoke-a --key smoke-a --retry 2 \
  --request-id smoke-rid-a \
  --canonical "$DIR/a.canonical" >"$DIR/a.out" 2>&1 &
CA=$!
"$BIN" submit --port "$PORT" --tiny --tenant smoke-b \
  --canonical "$DIR/b.canonical" >"$DIR/b.out" 2>&1 &
CB=$!
wait "$CA" || fail "client smoke-a failed: $(cat "$DIR/a.out")"
wait "$CB" || fail "client smoke-b failed: $(cat "$DIR/b.out")"
grep -q "proved" "$DIR/a.out" || fail "client smoke-a saw no proved verdict"
grep -q "request id: smoke-rid-a" "$DIR/a.out" \
  || fail "client smoke-a did not report its trace id"
cmp -s "$DIR/a.canonical" "$DIR/b.canonical" \
  || fail "concurrent clients disagree on the canonical digest"

"$BIN" probe --port "$PORT" --metrics >"$DIR/metrics.prom"
for series in serve_requests_total serve_connections_total serve_jobs_total \
  serve_queue_depth serve_cache_hit_rate serve_deadline_kills_total \
  serve_discard_errors_total serve_quarantined_total serve_wal_restored_total \
  serve_wal_replays_total serve_overload_closed_total; do
  grep -q "^$series" "$DIR/metrics.prom" || fail "/metrics lacks $series"
done
# the SLO histograms export cumulative Prometheus buckets
grep -q 'serve_stage_seconds_bucket{.*le="' "$DIR/metrics.prom" \
  || fail "/metrics lacks cumulative serve_stage_seconds buckets"

# the SLO burn-rate view and the flight recorder answer without configuration
"$BIN" probe --port "$PORT" --get /v1/slo >"$DIR/slo.json"
grep -q '"schema":"mechaml-serve-slo/1"' "$DIR/slo.json" \
  || fail "/v1/slo did not return the slo schema"
grep -q '"stage":"admission"' "$DIR/slo.json" \
  || fail "/v1/slo recorded no admission observations"
"$BIN" probe --port "$PORT" --get /v1/debug/flight >"$DIR/flight.ndjson"
grep -q '"kind":"admission"' "$DIR/flight.ndjson" \
  || fail "flight recorder holds no admission event"
grep -q "smoke-rid-a" "$DIR/flight.ndjson" \
  || fail "flight events lost the submission trace id"

# one dashboard frame renders on a non-TTY
"$BIN" top --port "$PORT" --frames 1 --interval 0.1 >"$DIR/top.out"
grep -q "TENANT" "$DIR/top.out" || fail "top rendered no tenant table"
grep -q "slo (objective" "$DIR/top.out" || fail "top rendered no SLO section"

# clean SIGTERM drain: daemon must exit 0 within the deadline and leave a
# cache snapshot behind for the next (warm) life
stop_daemon_term
grep -q "mechaserve stopped" "$DAEMON_LOG" || fail "daemon log lacks clean stop line"
test -s "$DIR/cache.snap" || fail "no cache snapshot written on shutdown"

# -- life 2: warm start from the snapshot, then die without warning -----------

start_daemon daemon2
"$BIN" probe --port "$PORT" >"$DIR/stats2.json"
entries=$(cache_entries "$DIR/stats2.json")
[ -n "$entries" ] && [ "$entries" -gt 0 ] \
  || fail "restarted daemon did not restore the cache snapshot (entries: ${entries:-none})"
"$BIN" submit --port "$PORT" --tiny --tenant smoke-c --key smoke-crash \
  --canonical "$DIR/c.canonical" >"$DIR/c.out" 2>&1 \
  || fail "client smoke-c failed: $(cat "$DIR/c.out")"
cmp -s "$DIR/a.canonical" "$DIR/c.canonical" \
  || fail "warm verdicts differ from the cold run"
# SIGQUIT forces a flight dump and the daemon keeps serving
kill -QUIT "$DAEMON_PID"
for _ in $(seq 1 50); do
  [ -s "$FLIGHT_DUMP" ] && break
  sleep 0.1
done
[ -s "$FLIGHT_DUMP" ] || fail "SIGQUIT produced no flight dump"
grep -q '"kind":"admission"' "$FLIGHT_DUMP" \
  || fail "flight dump holds no admission event"
kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on SIGQUIT"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=

# -- life 3: a SIGKILL must not poison the recovery path ----------------------

start_daemon daemon3
"$BIN" probe --port "$PORT" >"$DIR/stats3.json"
entries=$(cache_entries "$DIR/stats3.json")
[ -n "$entries" ] && [ "$entries" -gt 0 ] \
  || fail "daemon after SIGKILL did not restore the cache snapshot"
# the same idempotency key attaches to the WAL-recovered submission
"$BIN" submit --port "$PORT" --tiny --tenant smoke-c --key smoke-crash --retry 2 \
  --canonical "$DIR/d.canonical" >"$DIR/d.out" 2>&1 \
  || fail "post-SIGKILL client failed: $(cat "$DIR/d.out")"
cmp -s "$DIR/a.canonical" "$DIR/d.canonical" \
  || fail "verdicts changed across a SIGKILL restart"
stop_daemon_term

echo "serve-smoke: OK (2 tenants, trace ids, SLO + flight, warm restart, SIGKILL recovery, drained clean)"
