#!/usr/bin/env bash
# End-to-end smoke test of the mechaserve daemon (make serve-smoke):
#
#   1. start `mechaverify serve` on an ephemeral port with a cache snapshot;
#   2. run two concurrent `mechaverify submit` clients under distinct
#      tenants and require byte-identical canonical digests from both;
#   3. scrape /v1/stats and /metrics and require the serve_* series;
#   4. SIGTERM the daemon and require a clean drain within a deadline,
#      a zero exit status and a non-empty cache snapshot on disk.
#
# The daemon binary is the dune-built mechaverify; override BIN/DIR to point
# elsewhere.  Any failing step fails the script (set -e) with the daemon log
# dumped for diagnosis.
set -euo pipefail

BIN=${BIN:-./_build/default/bin/mechaverify.exe}
DIR=${DIR:-_build/serve-smoke}
DRAIN_DEADLINE_S=${DRAIN_DEADLINE_S:-10}

rm -rf "$DIR"
mkdir -p "$DIR"

fail() {
  echo "serve-smoke: $1" >&2
  echo "--- daemon log ---" >&2
  cat "$DIR/daemon.log" >&2 || true
  exit 1
}

"$BIN" serve --port 0 --workers 2 --handlers 2 \
  --snapshot "$DIR/cache.snap" >"$DIR/daemon.log" 2>&1 &
PID=$!
trap 'kill -9 "$PID" 2>/dev/null || true' EXIT

# the daemon prints its ephemeral port once the listener is up
PORT=
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^mechaserve listening on [^:]*:\([0-9][0-9]*\)$/\1/p' \
    "$DIR/daemon.log" | head -n 1)
  [ -n "$PORT" ] && break
  kill -0 "$PID" 2>/dev/null || fail "daemon died before listening"
  sleep 0.1
done
[ -n "$PORT" ] || fail "daemon never reported a listening port"

"$BIN" probe --port "$PORT" >"$DIR/stats.json"
grep -q '"schema":"mechaml-serve-stats/1"' "$DIR/stats.json" \
  || fail "/v1/stats did not return the stats schema"

# two concurrent clients under distinct tenants; both must finish and agree
"$BIN" submit --port "$PORT" --tiny --tenant smoke-a \
  --canonical "$DIR/a.canonical" >"$DIR/a.out" 2>&1 &
CA=$!
"$BIN" submit --port "$PORT" --tiny --tenant smoke-b \
  --canonical "$DIR/b.canonical" >"$DIR/b.out" 2>&1 &
CB=$!
wait "$CA" || fail "client smoke-a failed: $(cat "$DIR/a.out")"
wait "$CB" || fail "client smoke-b failed: $(cat "$DIR/b.out")"
grep -q "proved" "$DIR/a.out" || fail "client smoke-a saw no proved verdict"
cmp -s "$DIR/a.canonical" "$DIR/b.canonical" \
  || fail "concurrent clients disagree on the canonical digest"

"$BIN" probe --port "$PORT" --metrics >"$DIR/metrics.prom"
for series in serve_requests_total serve_connections_total serve_jobs_total \
  serve_queue_depth serve_cache_hit_rate; do
  grep -q "^$series" "$DIR/metrics.prom" || fail "/metrics lacks $series"
done

# clean SIGTERM drain: daemon must exit 0 within the deadline and leave a
# cache snapshot behind for the next (warm) life
kill -TERM "$PID"
deadline=$((DRAIN_DEADLINE_S * 10))
for _ in $(seq 1 "$deadline"); do
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$PID" 2>/dev/null && fail "daemon did not drain within ${DRAIN_DEADLINE_S}s"
wait "$PID" || fail "daemon exited nonzero after SIGTERM"
trap - EXIT
grep -q "mechaserve stopped" "$DIR/daemon.log" || fail "daemon log lacks clean stop line"
test -s "$DIR/cache.snap" || fail "no cache snapshot written on shutdown"

echo "serve-smoke: OK (port $PORT, 2 concurrent tenants, drained clean)"
