#!/usr/bin/env bash
# Chaos equivalence gate for the mechaserve daemon (make serve-chaos):
#
#   1. compute the fault-free reference: a local `campaign --tiny` canonical
#      digest;
#   2. start a daemon with a write-ahead log and job deadlines;
#   3. for each fixed seed, park a `chaos-proxy` (delays, torn writes,
#      resets, response garbage — all deterministically derived from the
#      seed) in front of the daemon and drive a retrying, idempotency-keyed
#      `submit` through it: the client must converge and its canonical
#      digest must be byte-identical to the fault-free reference;
#   4. require `serve_jobs_total` to equal the number of distinct jobs —
#      retries attached, they never duplicated work;
#   5. SIGKILL the daemon mid-campaign, restart it on the same WAL, and
#      require the restart to restore exactly the verdicts the log holds,
#      re-run only the missing ones, and answer the retried client with the
#      reference digest;
#   6. SIGTERM-drain clean; a daemon surviving its teardown fails the gate.
#
# Deterministic on purpose: fixed seeds, a stateless fault schedule, and
# canonical digests that omit measured fields.  Artifacts (daemon logs, WAL,
# canonicals) stay in $DIR for CI upload on failure.
set -euo pipefail

BIN=${BIN:-./_build/default/bin/mechaverify.exe}
DIR=${DIR:-_build/serve-chaos}
SEEDS=${SEEDS:-3 7 11}
DRAIN_DEADLINE_S=${DRAIN_DEADLINE_S:-15}
STEP_TIMEOUT_S=${STEP_TIMEOUT_S:-120}

rm -rf "$DIR"
mkdir -p "$DIR"

WAL="$DIR/serve.wal"
DAEMON_PID=
DAEMON_LOG="$DIR/daemon.log"
PROXY_PID=
EXPECT_DEAD=0

cleanup() {
  status=$?
  [ -n "$PROXY_PID" ] && kill -9 "$PROXY_PID" 2>/dev/null || true
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
    if [ "$EXPECT_DEAD" = 1 ]; then
      echo "serve-chaos: daemon $DAEMON_PID survived its teardown" >&2
      exit 1
    fi
  fi
  exit "$status"
}
trap cleanup EXIT

fail() {
  echo "serve-chaos: $1" >&2
  echo "--- daemon log ($DAEMON_LOG) ---" >&2
  cat "$DAEMON_LOG" >&2 || true
  exit 1
}

wait_port() { # <logfile> <marker> <pid> -> PORT
  PORT=
  for _ in $(seq 1 100); do
    PORT=$(sed -n "s/^$2 listening on [^:]*:\([0-9][0-9]*\)$/\1/p" "$1" | head -n 1)
    [ -n "$PORT" ] && break
    kill -0 "$3" 2>/dev/null || fail "$2 died before listening (log: $1)"
    sleep 0.1
  done
  [ -n "$PORT" ] || fail "$2 never reported a listening port (log: $1)"
}

start_daemon() { # <logname>
  DAEMON_LOG="$DIR/$1.log"
  "$BIN" serve --port 0 --workers 2 --handlers 4 \
    --wal "$WAL" --job-deadline 60 --io-timeout 10 \
    >"$DAEMON_LOG" 2>&1 &
  DAEMON_PID=$!
  wait_port "$DAEMON_LOG" mechaserve "$DAEMON_PID"
  DAEMON_PORT=$PORT
}

metric() { # <metrics-file> <name>
  awk -v n="$2" '$1 == n { print $2 }' "$1" | head -n 1
}

# complete (";end"-terminated) WAL records matching a pattern — a SIGKILL can
# tear the final line, which the replayer drops, so the gate must too
wal_count() { # <pattern>
  grep -c "$1.*;end\$" "$WAL" || true
}

# -- the fault-free reference -------------------------------------------------

timeout "$STEP_TIMEOUT_S" "$BIN" campaign --tiny --jobs 2 \
  --canonical "$DIR/ref.canonical" >"$DIR/ref.out" 2>&1 \
  || fail "reference campaign failed: $(cat "$DIR/ref.out")"
test -s "$DIR/ref.canonical" || fail "reference canonical is empty"

# -- seeded chaos runs --------------------------------------------------------

start_daemon daemon1

njobs=0
for seed in $SEEDS; do
  "$BIN" chaos-proxy --port 0 --target-port "$DAEMON_PORT" --seed "$seed" \
    >"$DIR/proxy$seed.log" 2>&1 &
  PROXY_PID=$!
  wait_port "$DIR/proxy$seed.log" mechachaos "$PROXY_PID"
  PROXY_PORT=$PORT

  timeout "$STEP_TIMEOUT_S" "$BIN" submit --port "$PROXY_PORT" --tiny \
    --key "chaos-$seed" --retry 14 --io-timeout 5 \
    --canonical "$DIR/chaos$seed.canonical" >"$DIR/chaos$seed.out" 2>&1 \
    || fail "seed $seed: client never converged: $(tail -5 "$DIR/chaos$seed.out")"
  cmp -s "$DIR/ref.canonical" "$DIR/chaos$seed.canonical" \
    || fail "seed $seed: verdicts differ from the fault-free reference"

  kill -TERM "$PROXY_PID" 2>/dev/null || true
  wait "$PROXY_PID" 2>/dev/null || true
  PROXY_PID=
  njobs=$((njobs + 4))
done

# exactly-once: every retry attached to the original submission
"$BIN" probe --port "$DAEMON_PORT" --metrics >"$DIR/metrics1.prom"
jobs=$(metric "$DIR/metrics1.prom" serve_jobs_total)
[ "$jobs" = "$njobs" ] \
  || fail "expected exactly $njobs jobs executed under chaos, daemon ran ${jobs:-none}"

# -- SIGKILL mid-campaign, recover from the WAL -------------------------------

timeout "$STEP_TIMEOUT_S" "$BIN" submit --port "$DAEMON_PORT" --tiny \
  --key crash --canonical "$DIR/crash0.canonical" >"$DIR/crash0.out" 2>&1 &
CRASH_CLIENT=$!
# kill as soon as the WAL holds two verdicts for the crash key — with two
# more jobs still in flight the entry is (almost always) unfinished
for _ in $(seq 1 500); do
  [ "$(wal_count '"rec":"verdict","key":"crash"')" -ge 2 ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died before the crash point"
  sleep 0.02
done
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=
wait "$CRASH_CLIENT" 2>/dev/null || true  # its stream just died with the daemon

# what the log actually holds decides what the restart must do
recorded=$(wal_count '"rec":"verdict","key":"crash"')
finished=$(wal_count '"rec":"done","key":"crash"')
[ "$recorded" -ge 2 ] || fail "WAL recorded only $recorded crash verdicts before SIGKILL"

start_daemon daemon2
"$BIN" probe --port "$DAEMON_PORT" --metrics >"$DIR/metrics2.prom"
restored=$(metric "$DIR/metrics2.prom" serve_wal_restored_total)
replayed=$(metric "$DIR/metrics2.prom" serve_wal_replays_total)
if [ "$finished" -ge 1 ]; then
  # the campaign beat the SIGKILL: nothing to restore, nothing to re-run
  [ "$restored" = 0 ] && [ "$replayed" = 0 ] \
    || fail "finished entry triggered replay (restored $restored, replayed $replayed)"
else
  [ "$restored" = "$recorded" ] \
    || fail "expected $recorded restored verdicts, daemon restored ${restored:-none}"
  [ "$replayed" = $((4 - recorded)) ] \
    || fail "expected $((4 - recorded)) replayed jobs, daemon replayed ${replayed:-none}"
fi

# the retried client attaches to the recovered entry and still gets the
# reference verdicts
timeout "$STEP_TIMEOUT_S" "$BIN" submit --port "$DAEMON_PORT" --tiny \
  --key crash --retry 5 --canonical "$DIR/crash1.canonical" >"$DIR/crash1.out" 2>&1 \
  || fail "post-crash client failed: $(tail -5 "$DIR/crash1.out")"
cmp -s "$DIR/ref.canonical" "$DIR/crash1.canonical" \
  || fail "verdicts changed across the SIGKILL recovery"

# -- clean drain --------------------------------------------------------------

kill -TERM "$DAEMON_PID"
deadline=$((DRAIN_DEADLINE_S * 10))
for _ in $(seq 1 "$deadline"); do
  kill -0 "$DAEMON_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$DAEMON_PID" 2>/dev/null \
  && fail "daemon did not drain within ${DRAIN_DEADLINE_S}s"
wait "$DAEMON_PID" || fail "daemon exited nonzero after SIGTERM"
EXPECT_DEAD=1
kill -0 "$DAEMON_PID" 2>/dev/null && fail "daemon survived its own drain"
EXPECT_DEAD=0
DAEMON_PID=

echo "serve-chaos: OK (seeds: $SEEDS; $njobs jobs exactly once; SIGKILL recovered)"
