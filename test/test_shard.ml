(* Equivalence of the sharded product exploration and sharded checker against
   the materialized Compose/Sat pipeline: state numbering, labels, adjacency
   order, blocking set, and verdicts must be identical for every shard count,
   worker count, and memory budget. *)

module Automaton = Mechaml_ts.Automaton
module Compose = Mechaml_ts.Compose
module Shard = Mechaml_ts.Shard
module Sat = Mechaml_mc.Sat
module Shardsat = Mechaml_mc.Shardsat
module Ctl = Mechaml_logic.Ctl
module Bitvec = Mechaml_util.Bitvec
module Segment = Mechaml_util.Segment
module Families = Mechaml_scenarios.Families
open Helpers

let inputs = [ "a"; "b" ]

let outputs = [ "x"; "y" ]

let machine seed = Families.random_machine ~seed ~states:(4 + (seed mod 5)) ~inputs ~outputs

let context seed =
  Families.random_context ~seed ~states:(6 + (seed mod 7)) ~legacy_inputs:inputs
    ~legacy_outputs:outputs

(* formulas over no propositions — deadlock and path structure only — so they
   apply to any product; the mix covers every fixpoint and bounded DP *)
let formulas =
  let d = Ctl.Deadlock in
  let nd = Ctl.Not d in
  [
    Ctl.deadlock_free;
    Ctl.Ef (None, d);
    Ctl.Af (None, d);
    Ctl.Ag (None, nd);
    Ctl.Eg (None, nd);
    Ctl.Au (None, nd, d);
    Ctl.Eu (None, nd, d);
    Ctl.Ax nd;
    Ctl.Ex d;
    Ctl.Ef (Some { Ctl.lo = 1; hi = 4 }, d);
    Ctl.Ag (Some { Ctl.lo = 0; hi = 5 }, nd);
    Ctl.Au (Some { Ctl.lo = 0; hi = 3 }, nd, d);
    Ctl.Implies (Ctl.Ex nd, Ctl.Ef (None, d));
  ]

(* the sharded structure must reproduce the materialized product exactly:
   same numbering (checked through labels and initial ids), same adjacency
   lists in the same order, same blocking set *)
let check_structure product sp =
  let auto = product.Compose.auto in
  let n = Automaton.num_states auto in
  check_int "states" n (Shard.num_states sp);
  check_int "transitions" (Automaton.num_transitions auto) (Shard.num_transitions sp);
  Alcotest.(check (list int)) "initial" auto.Automaton.initial (Shard.initial sp);
  let labels = Shard.labels sp in
  for s = 0 to n - 1 do
    if not (Mechaml_util.Bitset.equal (Automaton.label auto s) labels.(s)) then
      Alcotest.failf "label mismatch at state %d" s
  done;
  let row = Automaton.Csr.row auto and dst = Automaton.Csr.dst auto in
  let owner = Shard.owner sp and local = Shard.local sp in
  for s = 0 to n - 1 do
    let v = Shard.view sp owner.(s) in
    let m = local.(s) in
    check_int "member" s v.Shard.members.(m);
    let deg = row.(s + 1) - row.(s) in
    if v.Shard.row.(m + 1) - v.Shard.row.(m) <> deg then
      Alcotest.failf "degree mismatch at state %d" s;
    for e = 0 to deg - 1 do
      if v.Shard.dst.(v.Shard.row.(m) + e) <> dst.(row.(s) + e) then
        Alcotest.failf "adjacency mismatch at state %d edge %d" s e
    done;
    if Bitvec.get (Shard.blocking sp) s <> (row.(s + 1) = row.(s)) then
      Alcotest.failf "blocking mismatch at state %d" s
  done

let check_verdicts product sp =
  let env = Sat.create product.Compose.auto in
  let senv = Shardsat.create sp in
  List.iter
    (fun f ->
      if Sat.holds_initially env f <> Shardsat.holds_initially senv f then
        Alcotest.failf "verdict mismatch on %s" (Fmt.to_to_string Ctl.pp f);
      if Sat.failing_initial env f <> Shardsat.failing_initial senv f then
        Alcotest.failf "failing-initial mismatch on %s" (Fmt.to_to_string Ctl.pp f))
    formulas

let scenario ~seed ~config () =
  let left = machine seed and right = context (seed + 17) in
  let product = Compose.parallel left right in
  let sp = Shard.explore ~config left right in
  Fun.protect
    ~finally:(fun () -> Shard.close sp)
    (fun () ->
      check_structure product sp;
      check_verdicts product sp)

let equivalence_tests =
  List.concat_map
    (fun shards ->
      List.concat_map
        (fun seed ->
          [
            test
              (Printf.sprintf "seed %d, %d shard(s)" seed shards)
              (scenario ~seed ~config:(Shard.config ~shards ()));
          ])
        [ 1; 2; 3; 4; 5 ])
    [ 1; 2; 8 ]

let spill_tests =
  [
    test "tiny budget forces spills without changing anything" (fun () ->
        let before = Segment.total_spills () in
        (* a 1 KiB budget is far below the live size of any product here *)
        scenario ~seed:3 ~config:(Shard.config ~shards:4 ~mem_budget:1024 ()) ();
        check_bool "spills engaged" true (Segment.total_spills () > before));
    test "spill directory is removed on close" (fun () ->
        let dir = Filename.temp_file "mechashard-test" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o700;
        scenario ~seed:4 ~config:(Shard.config ~shards:4 ~mem_budget:1024 ~spill_dir:dir ()) ();
        check_bool "no leftovers" true (Sys.readdir dir = [||]);
        Unix.rmdir dir);
    test "two worker domains produce the identical product" (fun () ->
        (* explicit workers:2 exercises the parallel expansion path even on
           single-core runners (domains timeshare) *)
        scenario ~seed:5 ~config:(Shard.config ~shards:4 ~workers:2 ()) ();
        scenario ~seed:6 ~config:(Shard.config ~shards:8 ~workers:2 ~mem_budget:2048 ()) ());
    test "corrupt spill file raises Spill_error, never a wrong answer" (fun () ->
        let dir = Filename.temp_file "mechashard-test" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o700;
        let left = machine 7 and right = context 24 in
        let sp =
          Shard.explore
            ~config:(Shard.config ~shards:2 ~mem_budget:1 ~spill_dir:dir ())
            left right
        in
        Fun.protect
          ~finally:(fun () ->
            Shard.close sp;
            (try
               Array.iter
                 (fun f ->
                   let p = Filename.concat dir f in
                   if Sys.is_directory p then begin
                     Array.iter (fun g -> Sys.remove (Filename.concat p g)) (Sys.readdir p);
                     Unix.rmdir p
                   end
                   else Sys.remove p)
                 (Sys.readdir dir)
             with Sys_error _ -> ());
            Unix.rmdir dir)
          (fun () ->
            let sub =
              match Segment.spill_dir (Shard.manager sp) with
              | Some d -> d
              | None -> Alcotest.fail "expected a spill directory"
            in
            Array.iter
              (fun f ->
                if Filename.check_suffix f ".seg" then begin
                  let p = Filename.concat sub f in
                  let full = Bytes.of_string (In_channel.with_open_bin p In_channel.input_all) in
                  let i = Bytes.length full - 1 in
                  Bytes.set full i (Char.chr (Char.code (Bytes.get full i) lxor 0x5a));
                  Out_channel.with_open_bin p (fun oc -> Out_channel.output_bytes oc full)
                end)
              (Sys.readdir sub);
            let senv = Shardsat.create sp in
            match
              List.iter (fun f -> ignore (Shardsat.holds_initially senv f)) formulas
            with
            | exception Segment.Spill_error _ -> ()
            | () ->
              (* nothing was evicted after all (budget raced the sizes) — the
                 verdicts must then still be the correct ones *)
              check_verdicts (Compose.parallel left right) sp));
  ]

let () =
  Alcotest.run "shard" [ ("equivalence", equivalence_tests); ("spill", spill_tests) ]
