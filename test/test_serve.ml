(* The verification daemon: wire codec round trips, fair scheduling,
   admission control, the HTTP surface, and cache snapshot persistence
   across a daemon restart.  Servers bind an ephemeral loopback port per
   test and are always drained before the test returns. *)

module Server = Mechaml_serve.Server
module Client = Mechaml_serve.Client
module Scheduler = Mechaml_serve.Scheduler
module Wire = Mechaml_serve.Wire
module Http = Mechaml_serve.Http
module Json = Mechaml_obs.Json
module Campaign = Mechaml_engine.Campaign
module Report = Mechaml_engine.Report
module Cache = Mechaml_engine.Cache
open Helpers

let contains ~sub text =
  let n = String.length sub and m = String.length text in
  let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
  n = 0 || go 0

(* -- wire ------------------------------------------------------------------ *)

(* Outcomes with real payloads: the tiny matrix plus a supervised degraded
   job and a failed one, so every verdict arm of the codec is exercised. *)
let sample_outcomes =
  lazy
    (let tiny = Campaign.run (Campaign.bundled ~tiny:true ()) in
     let extra =
       Campaign.run
         [
           Campaign.job ~id:"wire/brick" ~family:"railcab"
             ~context:Mechaml_scenarios.Railcab.context
             ~property:Mechaml_scenarios.Railcab.constraint_
             ~label_of:Mechaml_scenarios.Railcab.label_of ~inject:"brick" ~seed:1
             ~policy:
               {
                 Mechaml_legacy.Supervisor.default_policy with
                 retries = 2;
                 breaker = 3;
               }
             (fun () -> Mechaml_scenarios.Railcab.box_correct);
           {
             (Campaign.job ~id:"wire/bad" ~family:"railcab"
                ~context:Mechaml_scenarios.Railcab.context
                ~property:Mechaml_scenarios.Railcab.constraint_
                ~label_of:Mechaml_scenarios.Railcab.label_of (fun () ->
                  Mechaml_scenarios.Railcab.box_correct))
             with
             Campaign.inject = Some "nope";
           };
         ]
     in
     tiny @ extra)

let wire_tests =
  [
    test "outcomes round-trip through the wire codec" (fun () ->
        List.iter
          (fun (o : Campaign.outcome) ->
            let json = Json.to_string (Wire.encode_outcome o) in
            match Result.bind (Json.parse json) Wire.decode_outcome with
            | Error e -> Alcotest.failf "%s: decode failed: %s" o.Campaign.spec_id e
            | Ok o' ->
              check_string ("canonical of " ^ o.Campaign.spec_id)
                (Report.canonical [ o ]) (Report.canonical [ o' ]);
              check_bool ("full record of " ^ o.Campaign.spec_id) true (o = o'))
          (Lazy.force sample_outcomes));
    test "events round-trip" (fun () ->
        let events =
          Wire.Accepted { jobs = 7 }
          :: Wire.Done { jobs = 7; cache_entries = 42; cache_hit_rate = 0.625 }
          :: List.mapi
               (fun i o -> Wire.Verdict { index = i; outcome = o })
               (Lazy.force sample_outcomes)
        in
        List.iter
          (fun ev ->
            let json = Json.to_string (Wire.encode_event ev) in
            match Result.bind (Json.parse json) Wire.decode_event with
            | Ok ev' -> check_bool json true (ev = ev')
            | Error e -> Alcotest.failf "decode failed on %s: %s" json e)
          events);
    test "submit round-trips and resolves against the bundled matrix" (fun () ->
        let s = Wire.submit ~tiny:true ~select:"watchdog" () in
        (match
           Result.bind (Json.parse (Json.to_string (Wire.encode_submit s)))
             Wire.decode_submit
         with
        | Ok s' -> check_bool "submit" true (s = s')
        | Error e -> Alcotest.fail e);
        match Wire.resolve s with
        | Ok [ spec ] -> check_bool "watchdog job" true (contains ~sub:"watchdog" spec.Campaign.id)
        | Ok specs -> Alcotest.failf "expected one job, got %d" (List.length specs)
        | Error e -> Alcotest.fail e);
    test "explicit ids resolve in matrix order; unknown ids are errors" (fun () ->
        let all = List.map (fun s -> s.Campaign.id) (Campaign.bundled ~tiny:true ()) in
        let reversed = List.rev all in
        (match Wire.resolve (Wire.submit ~tiny:true ~ids:reversed ()) with
        | Ok specs ->
          Alcotest.(check (list string))
            "matrix order restored" all
            (List.map (fun s -> s.Campaign.id) specs)
        | Error e -> Alcotest.fail e);
        match Wire.resolve (Wire.submit ~ids:[ "no/such/job" ] ()) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "unknown id accepted");
    test "selection matching nothing is an error" (fun () ->
        match Wire.resolve (Wire.submit ~select:"zzz-no-match" ()) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "empty selection accepted");
  ]

(* -- scheduler ------------------------------------------------------------- *)

let scheduler_tests =
  [
    test "equal-weight tenants alternate under one worker" (fun () ->
        let sched = Scheduler.create ~workers:1 () in
        let order = ref [] in
        let omutex = Mutex.create () in
        let record name () =
          Mutex.lock omutex;
          order := name :: !order;
          Mutex.unlock omutex
        in
        let gate = Mutex.create () in
        Mutex.lock gate;
        (* park the single worker so both tenants queue up behind it *)
        let blocker =
          Scheduler.job (fun () ->
              Mutex.lock gate;
              Mutex.unlock gate)
        in
        (match Scheduler.submit sched ~tenant:"a" [ blocker ] with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "blocker rejected");
        let batch name = List.init 3 (fun _ -> Scheduler.job (record name)) in
        (match
           ( Scheduler.submit sched ~tenant:"a" (batch "a"),
             Scheduler.submit sched ~tenant:"b" (batch "b") )
         with
        | Ok (), Ok () -> ()
        | _ -> Alcotest.fail "batch rejected");
        Mutex.unlock gate;
        Scheduler.drain sched;
        let order = List.rev !order in
        check_int "all jobs ran" 6 (List.length order);
        let rec alternates = function
          | x :: y :: rest ->
            check_bool "no tenant runs twice in a row while both have work" true
              (x <> y);
            alternates (y :: rest)
          | _ -> ()
        in
        (* the tail may repeat once one tenant is drained; the first four
           picks have both tenants queued, so they must alternate *)
        alternates (List.filteri (fun i _ -> i < 4) order));
    test "in-flight cap keeps one tenant from monopolizing the pool" (fun () ->
        let sched = Scheduler.create ~workers:4 ~inflight_cap:1 () in
        let running = Atomic.make 0 in
        let peak = Atomic.make 0 in
        let job () =
          let now = Atomic.fetch_and_add running 1 + 1 in
          let rec bump () =
            let p = Atomic.get peak in
            if now > p && not (Atomic.compare_and_set peak p now) then bump ()
          in
          bump ();
          Unix.sleepf 0.02;
          ignore (Atomic.fetch_and_add running (-1))
        in
        (match
           Scheduler.submit sched ~tenant:"greedy"
             (List.init 6 (fun _ -> Scheduler.job job))
         with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "rejected");
        Scheduler.drain sched;
        check_int "never more than the cap in flight" 1 (Atomic.get peak));
    test "queue bound rejects the whole batch with a retry hint" (fun () ->
        let sched = Scheduler.create ~workers:1 ~queue_bound:2 () in
        let gate = Mutex.create () in
        Mutex.lock gate;
        ignore
          (Scheduler.submit sched ~tenant:"a"
             [
               Scheduler.job (fun () ->
                   Mutex.lock gate;
                   Mutex.unlock gate);
             ]);
        (match
           Scheduler.submit sched ~tenant:"a" [ Scheduler.job (fun () -> ()) ]
         with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "within bound rejected");
        (match
           Scheduler.submit sched ~tenant:"a"
             (List.init 2 (fun _ -> Scheduler.job (fun () -> ())))
         with
        | Error (Scheduler.Busy { retry_after_s }) ->
          check_bool "positive retry hint" true (retry_after_s > 0.)
        | Ok () -> Alcotest.fail "overflow accepted"
        | Error Scheduler.Draining -> Alcotest.fail "not draining yet");
        Mutex.unlock gate;
        Scheduler.drain sched;
        match Scheduler.submit sched ~tenant:"a" [ Scheduler.job (fun () -> ()) ] with
        | Error Scheduler.Draining -> ()
        | _ -> Alcotest.fail "drained scheduler accepted work");
    test "a raising job is contained; drain is idempotent" (fun () ->
        let sched = Scheduler.create ~workers:2 () in
        let ran = Atomic.make 0 in
        ignore
          (Scheduler.submit sched ~tenant:"x"
             [
               Scheduler.job (fun () -> failwith "boom");
               Scheduler.job (fun () -> ignore (Atomic.fetch_and_add ran 1));
             ]);
        Scheduler.drain sched;
        Scheduler.drain sched;
        check_int "healthy job still ran" 1 (Atomic.get ran));
  ]

(* -- HTTP server ----------------------------------------------------------- *)

let with_server ?(cfg = Server.default) f =
  let srv = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let raw_request ~port ~meth ~path ?headers body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let c = Http.conn fd in
  Fun.protect
    ~finally:(fun () -> Http.close c)
    (fun () ->
      Http.write_request c ~meth ~path ?headers body;
      let head = Http.read_response_head c in
      (head.Http.status, Http.read_body c head))

let server_tests =
  [
    test "healthz answers and unknown routes are 404/405" (fun () ->
        with_server (fun srv ->
            let port = Server.port srv in
            (match Client.connect ~port () with
            | Ok _ -> ()
            | Error e -> Alcotest.fail (Client.error_string e));
            let status path = fst (raw_request ~port ~meth:"GET" ~path "") in
            check_int "404 for unknown path" 404 (status "/nope");
            check_int "405 for wrong verb" 405
              (fst (raw_request ~port ~meth:"POST" ~path:"/healthz" ""))));
    test "malformed submissions are 400, never a hang" (fun () ->
        with_server (fun srv ->
            let port = Server.port srv in
            let post body =
              fst (raw_request ~port ~meth:"POST" ~path:"/v1/campaign" body)
            in
            check_int "bad JSON" 400 (post "{not json");
            check_int "mistyped field" 400 (post {|{"matrix": 5}|});
            check_int "unknown matrix" 400 (post {|{"matrix": "weird"}|});
            check_int "mistyped ids" 400 (post {|{"ids": "railcab"}|});
            check_int "unknown job id" 400 (post {|{"ids": ["no/such/job"]}|})));
    test "a daemon-served campaign equals the local run" (fun () ->
        with_server (fun srv ->
            let port = Server.port srv in
            let ep = { Client.host = "127.0.0.1"; port } in
            match Client.submit ep ~tiny:true () with
            | Error e -> Alcotest.fail (Client.error_string e)
            | Ok outcomes ->
              check_string "canonical daemon = local"
                (Report.canonical (Campaign.run (Campaign.bundled ~tiny:true ())))
                (Report.canonical outcomes)));
    test "two concurrent clients both get full, identical verdict sets" (fun () ->
        with_server (fun srv ->
            let port = Server.port srv in
            let ep = { Client.host = "127.0.0.1"; port } in
            let submit tenant () = Client.submit ep ~tenant ~tiny:true () in
            let d1 = Domain.spawn (submit "alice") in
            let d2 = Domain.spawn (submit "bob") in
            match (Domain.join d1, Domain.join d2) with
            | Ok a, Ok b ->
              check_string "identical canonical reports" (Report.canonical a)
                (Report.canonical b);
              check_int "alice got every verdict" 4 (List.length a)
            | Error e, _ | _, Error e -> Alcotest.fail (Client.error_string e)));
    test "a full queue answers 429 with Retry-After" (fun () ->
        let cfg = { Server.default with Server.queue_bound = 0 } in
        with_server ~cfg (fun srv ->
            let ep = { Client.host = "127.0.0.1"; port = Server.port srv } in
            match Client.submit ep ~tiny:true () with
            | Error (Client.Busy retry) ->
              check_bool "positive retry hint" true (retry > 0.)
            | Error e -> Alcotest.fail (Client.error_string e)
            | Ok _ -> Alcotest.fail "over-bound submission accepted"));
    test "metrics scrape exposes the server series" (fun () ->
        with_server (fun srv ->
            let ep = { Client.host = "127.0.0.1"; port = Server.port srv } in
            (match Client.submit ep ~tiny:true ~select:"watchdog" () with
            | Ok _ -> ()
            | Error e -> Alcotest.fail (Client.error_string e));
            match Client.metrics ep with
            | Error e -> Alcotest.fail (Client.error_string e)
            | Ok body ->
              List.iter
                (fun series ->
                  check_bool ("scrape has " ^ series) true (contains ~sub:series body))
                [
                  "serve_requests_total";
                  "serve_connections_total";
                  "serve_jobs_total";
                  "serve_queue_depth";
                  "serve_cache_hit_rate";
                  "serve_tenant_busy_seconds";
                ]));
    test "stats endpoint reports tenants and cache as JSON" (fun () ->
        with_server (fun srv ->
            let ep = { Client.host = "127.0.0.1"; port = Server.port srv } in
            (match Client.submit ep ~tenant:"carol" ~tiny:true ~select:"watchdog" () with
            | Ok _ -> ()
            | Error e -> Alcotest.fail (Client.error_string e));
            match Client.get ep "/v1/stats" with
            | Error e -> Alcotest.fail (Client.error_string e)
            | Ok (status, body) ->
              check_int "200" 200 status;
              (match Json.parse body with
              | Error e -> Alcotest.failf "stats not JSON: %s" e
              | Ok v ->
                check_bool "schema" true
                  (Json.member "schema" v = Some (Json.Str "mechaml-serve-stats/1"));
                check_bool "tenant listed" true (contains ~sub:"carol" body))));
  ]

(* -- snapshot persistence across a restart --------------------------------- *)

let persistence_tests =
  [
    test "a restarted daemon answers from the restored cache" (fun () ->
        let snapshot = Filename.temp_file "mechaserve" ".snap" in
        Sys.remove snapshot;
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists snapshot then Sys.remove snapshot)
          (fun () ->
            let cfg = { Server.default with Server.snapshot = Some snapshot } in
            (* first life: compute, snapshot on stop *)
            with_server ~cfg (fun srv ->
                let ep = { Client.host = "127.0.0.1"; port = Server.port srv } in
                match Client.submit ep ~tiny:true () with
                | Ok _ -> ()
                | Error e -> Alcotest.fail (Client.error_string e));
            check_bool "snapshot written" true (Sys.file_exists snapshot);
            (* second life: the cache comes back warm and the same matrix
               answers from memory — the hit counters prove it *)
            with_server ~cfg (fun srv ->
                let restored = (Cache.stats (Server.cache srv)).Cache.entries in
                check_bool "entries restored at startup" true (restored > 0);
                let ep = { Client.host = "127.0.0.1"; port = Server.port srv } in
                match Client.submit ep ~tiny:true () with
                | Error e -> Alcotest.fail (Client.error_string e)
                | Ok outcomes ->
                  check_string "verdicts unchanged by the restore"
                    (Report.canonical (Campaign.run (Campaign.bundled ~tiny:true ())))
                    (Report.canonical outcomes);
                  let s = Cache.stats (Server.cache srv) in
                  check_bool "warm hits after restart" true (Cache.hits s > 0))))
  ]

let () =
  Alcotest.run "serve"
    [
      ("wire", wire_tests);
      ("scheduler", scheduler_tests);
      ("server", server_tests);
      ("persistence", persistence_tests);
    ]
