(* The verification daemon: wire codec round trips, fair scheduling,
   admission control, the HTTP surface, and cache snapshot persistence
   across a daemon restart.  Servers bind an ephemeral loopback port per
   test and are always drained before the test returns. *)

module Server = Mechaml_serve.Server
module Client = Mechaml_serve.Client
module Scheduler = Mechaml_serve.Scheduler
module Store = Mechaml_serve.Store
module Quarantine = Mechaml_serve.Quarantine
module Chaosproxy = Mechaml_serve.Chaosproxy
module Wire = Mechaml_serve.Wire
module Http = Mechaml_serve.Http
module Json = Mechaml_obs.Json
module Context = Mechaml_obs.Context
module Flight = Mechaml_obs.Flight
module Trace = Mechaml_obs.Trace
module Metrics = Mechaml_obs.Metrics
module Prng = Mechaml_util.Prng
module Campaign = Mechaml_engine.Campaign
module Report = Mechaml_engine.Report
module Cache = Mechaml_engine.Cache
open Helpers

(* Registration is idempotent, so this returns the daemon's own counter —
   the way tests read metric deltas without exporting every counter. *)
let counter_value name = Metrics.counter_value (Metrics.counter name ~help:"test handle")

let contains ~sub text =
  let n = String.length sub and m = String.length text in
  let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
  n = 0 || go 0

(* -- wire ------------------------------------------------------------------ *)

(* Outcomes with real payloads: the tiny matrix plus a supervised degraded
   job and a failed one, so every verdict arm of the codec is exercised. *)
let sample_outcomes =
  lazy
    (let tiny = Campaign.run (Campaign.bundled ~tiny:true ()) in
     let extra =
       Campaign.run
         [
           Campaign.job ~id:"wire/brick" ~family:"railcab"
             ~context:Mechaml_scenarios.Railcab.context
             ~property:Mechaml_scenarios.Railcab.constraint_
             ~label_of:Mechaml_scenarios.Railcab.label_of ~inject:"brick" ~seed:1
             ~policy:
               {
                 Mechaml_legacy.Supervisor.default_policy with
                 retries = 2;
                 breaker = 3;
               }
             (fun () -> Mechaml_scenarios.Railcab.box_correct);
           {
             (Campaign.job ~id:"wire/bad" ~family:"railcab"
                ~context:Mechaml_scenarios.Railcab.context
                ~property:Mechaml_scenarios.Railcab.constraint_
                ~label_of:Mechaml_scenarios.Railcab.label_of (fun () ->
                  Mechaml_scenarios.Railcab.box_correct))
             with
             Campaign.inject = Some "nope";
           };
         ]
     in
     tiny @ extra)

let wire_tests =
  [
    test "outcomes round-trip through the wire codec" (fun () ->
        List.iter
          (fun (o : Campaign.outcome) ->
            let json = Json.to_string (Wire.encode_outcome o) in
            match Result.bind (Json.parse json) Wire.decode_outcome with
            | Error e -> Alcotest.failf "%s: decode failed: %s" o.Campaign.spec_id e
            | Ok o' ->
              check_string ("canonical of " ^ o.Campaign.spec_id)
                (Report.canonical [ o ]) (Report.canonical [ o' ]);
              check_bool ("full record of " ^ o.Campaign.spec_id) true (o = o'))
          (Lazy.force sample_outcomes));
    test "events round-trip" (fun () ->
        let events =
          Wire.Accepted { jobs = 7 }
          :: Wire.Done { jobs = 7; cache_entries = 42; cache_hit_rate = 0.625 }
          :: List.mapi
               (fun i o -> Wire.Verdict { index = i; outcome = o })
               (Lazy.force sample_outcomes)
        in
        List.iter
          (fun ev ->
            let json = Json.to_string (Wire.encode_event ev) in
            match Result.bind (Json.parse json) Wire.decode_event with
            | Ok ev' -> check_bool json true (ev = ev')
            | Error e -> Alcotest.failf "decode failed on %s: %s" json e)
          events);
    test "submit round-trips and resolves against the bundled matrix" (fun () ->
        let s = Wire.submit ~tiny:true ~select:"watchdog" () in
        (match
           Result.bind (Json.parse (Json.to_string (Wire.encode_submit s)))
             Wire.decode_submit
         with
        | Ok s' -> check_bool "submit" true (s = s')
        | Error e -> Alcotest.fail e);
        match Wire.resolve s with
        | Ok [ spec ] -> check_bool "watchdog job" true (contains ~sub:"watchdog" spec.Campaign.id)
        | Ok specs -> Alcotest.failf "expected one job, got %d" (List.length specs)
        | Error e -> Alcotest.fail e);
    test "explicit ids resolve in matrix order; unknown ids are errors" (fun () ->
        let all = List.map (fun s -> s.Campaign.id) (Campaign.bundled ~tiny:true ()) in
        let reversed = List.rev all in
        (match Wire.resolve (Wire.submit ~tiny:true ~ids:reversed ()) with
        | Ok specs ->
          Alcotest.(check (list string))
            "matrix order restored" all
            (List.map (fun s -> s.Campaign.id) specs)
        | Error e -> Alcotest.fail e);
        match Wire.resolve (Wire.submit ~ids:[ "no/such/job" ] ()) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "unknown id accepted");
    test "selection matching nothing is an error" (fun () ->
        match Wire.resolve (Wire.submit ~select:"zzz-no-match" ()) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "empty selection accepted");
  ]

(* -- scheduler ------------------------------------------------------------- *)

let scheduler_tests =
  [
    test "equal-weight tenants alternate under one worker" (fun () ->
        let sched = Scheduler.create ~workers:1 () in
        let order = ref [] in
        let omutex = Mutex.create () in
        let record name () =
          Mutex.lock omutex;
          order := name :: !order;
          Mutex.unlock omutex
        in
        let gate = Mutex.create () in
        Mutex.lock gate;
        (* park the single worker so both tenants queue up behind it *)
        let blocker =
          Scheduler.job (fun () ->
              Mutex.lock gate;
              Mutex.unlock gate)
        in
        (match Scheduler.submit sched ~tenant:"a" [ blocker ] with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "blocker rejected");
        let batch name = List.init 3 (fun _ -> Scheduler.job (record name)) in
        (match
           ( Scheduler.submit sched ~tenant:"a" (batch "a"),
             Scheduler.submit sched ~tenant:"b" (batch "b") )
         with
        | Ok (), Ok () -> ()
        | _ -> Alcotest.fail "batch rejected");
        Mutex.unlock gate;
        Scheduler.drain sched;
        let order = List.rev !order in
        check_int "all jobs ran" 6 (List.length order);
        let rec alternates = function
          | x :: y :: rest ->
            check_bool "no tenant runs twice in a row while both have work" true
              (x <> y);
            alternates (y :: rest)
          | _ -> ()
        in
        (* the tail may repeat once one tenant is drained; the first four
           picks have both tenants queued, so they must alternate *)
        alternates (List.filteri (fun i _ -> i < 4) order));
    test "in-flight cap keeps one tenant from monopolizing the pool" (fun () ->
        let sched = Scheduler.create ~workers:4 ~inflight_cap:1 () in
        let running = Atomic.make 0 in
        let peak = Atomic.make 0 in
        let job () =
          let now = Atomic.fetch_and_add running 1 + 1 in
          let rec bump () =
            let p = Atomic.get peak in
            if now > p && not (Atomic.compare_and_set peak p now) then bump ()
          in
          bump ();
          Unix.sleepf 0.02;
          ignore (Atomic.fetch_and_add running (-1))
        in
        (match
           Scheduler.submit sched ~tenant:"greedy"
             (List.init 6 (fun _ -> Scheduler.job job))
         with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "rejected");
        Scheduler.drain sched;
        check_int "never more than the cap in flight" 1 (Atomic.get peak));
    test "queue bound rejects the whole batch with a retry hint" (fun () ->
        let sched = Scheduler.create ~workers:1 ~queue_bound:2 () in
        let gate = Mutex.create () in
        Mutex.lock gate;
        ignore
          (Scheduler.submit sched ~tenant:"a"
             [
               Scheduler.job (fun () ->
                   Mutex.lock gate;
                   Mutex.unlock gate);
             ]);
        (match
           Scheduler.submit sched ~tenant:"a" [ Scheduler.job (fun () -> ()) ]
         with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "within bound rejected");
        (match
           Scheduler.submit sched ~tenant:"a"
             (List.init 2 (fun _ -> Scheduler.job (fun () -> ())))
         with
        | Error (Scheduler.Busy { retry_after_s }) ->
          check_bool "positive retry hint" true (retry_after_s > 0.)
        | Ok () -> Alcotest.fail "overflow accepted"
        | Error Scheduler.Draining -> Alcotest.fail "not draining yet");
        Mutex.unlock gate;
        Scheduler.drain sched;
        match Scheduler.submit sched ~tenant:"a" [ Scheduler.job (fun () -> ()) ] with
        | Error Scheduler.Draining -> ()
        | _ -> Alcotest.fail "drained scheduler accepted work");
    test "a raising job is contained; drain is idempotent" (fun () ->
        let sched = Scheduler.create ~workers:2 () in
        let ran = Atomic.make 0 in
        ignore
          (Scheduler.submit sched ~tenant:"x"
             [
               Scheduler.job (fun () -> failwith "boom");
               Scheduler.job (fun () -> ignore (Atomic.fetch_and_add ran 1));
             ]);
        Scheduler.drain sched;
        Scheduler.drain sched;
        check_int "healthy job still ran" 1 (Atomic.get ran));
  ]

(* -- hostile bytes against the HTTP layer ----------------------------------- *)

(* Feed [bytes] into [Http.read_request] over a socketpair (a domain plays
   the peer, so large payloads cannot deadlock on the kernel buffer) and
   classify what the parser did.  The contract under attack: any byte
   sequence ends in a parsed request, [Bad], [Closed] or [Timeout] — never a
   hang and never another exception. *)
let hostile_request ?(read_timeout_s = 2.) ?(close_writer = true) bytes =
  let wr, rd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let quiet_close fd = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect
    ~finally:(fun () ->
      quiet_close wr;
      quiet_close rd)
    (fun () ->
      let peer =
        Domain.spawn (fun () ->
            (try
               let b = Bytes.of_string bytes in
               let n = Bytes.length b in
               let sent = ref 0 in
               while !sent < n do
                 match Unix.write wr b !sent (n - !sent) with
                 | k -> sent := !sent + k
                 | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
               done
             with Unix.Unix_error _ -> ());
            if close_writer then
              try Unix.shutdown wr Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ())
      in
      let c = Http.conn ~read_timeout_s rd in
      let verdict =
        match Http.read_request c with
        | _ -> `Parsed
        | exception Http.Bad _ -> `Bad
        | exception Http.Closed -> `Closed
        | exception Http.Timeout _ -> `Timeout
      in
      Domain.join peer;
      verdict)

let garbage_of_seed seed =
  let len = Prng.mix_int ~seed 0 4096 in
  String.init len (fun i -> Char.chr (Prng.mix_int ~seed (i + 1) 256))

let hostile_seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)

let hostile_tests =
  [
    qcheck ~count:60 "arbitrary bytes end in Parsed/Bad/Closed, never a hang"
      hostile_seed_arb
      (fun seed -> hostile_request (garbage_of_seed seed) <> `Timeout);
    test "a truncated body is Closed, not a hang" (fun () ->
        check_bool "closed" true
          (hostile_request "POST /v1/campaign HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort"
          = `Closed));
    test "an oversized header section is rejected as Bad" (fun () ->
        let headers =
          String.concat ""
            (List.init 40 (fun i -> Printf.sprintf "x-pad%d: %s\r\n" i (String.make 500 'a')))
        in
        check_bool "bad" true
          (hostile_request ("GET /healthz HTTP/1.1\r\n" ^ headers ^ "\r\n") = `Bad));
    test "a body over the limit is rejected before it is read" (fun () ->
        check_bool "bad" true
          (hostile_request "POST /v1/campaign HTTP/1.1\r\ncontent-length: 10000000\r\n\r\n"
          = `Bad));
    test "a slow-loris peer is dropped by the read deadline" (fun () ->
        let t0 = Unix.gettimeofday () in
        let verdict =
          hostile_request ~read_timeout_s:0.2 ~close_writer:false "GET /heal"
        in
        let dt = Unix.gettimeofday () -. t0 in
        check_bool "timeout" true (verdict = `Timeout);
        check_bool "within one deadline, not a hang" true (dt < 2.));
  ]

(* -- watchdog --------------------------------------------------------------- *)

let watchdog_tests =
  [
    test "the watchdog abandons an overdue job exactly once" (fun () ->
        Metrics.set_enabled true;
        let kills0 = counter_value "serve_deadline_kills_total" in
        let sched = Scheduler.create ~workers:1 () in
        let fired = Atomic.make 0 in
        let j =
          Scheduler.job ~deadline_s:0.1
            ~on_deadline:(fun () -> Atomic.incr fired)
            (fun () -> Unix.sleepf 0.4)
        in
        (match Scheduler.submit sched ~tenant:"slow" [ j ] with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "rejected");
        Scheduler.drain sched;
        check_int "on_deadline fired exactly once" 1 (Atomic.get fired);
        check_int "kill counted" 1 (counter_value "serve_deadline_kills_total" - kills0));
    test "a job inside its deadline is never abandoned" (fun () ->
        Metrics.set_enabled true;
        let kills0 = counter_value "serve_deadline_kills_total" in
        let sched = Scheduler.create ~workers:1 () in
        let fired = Atomic.make 0 in
        let j =
          Scheduler.job ~deadline_s:5.
            ~on_deadline:(fun () -> Atomic.incr fired)
            (fun () -> Unix.sleepf 0.01)
        in
        (match Scheduler.submit sched ~tenant:"fast" [ j ] with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "rejected");
        Scheduler.drain sched;
        check_int "no abandonment" 0 (Atomic.get fired);
        check_int "no kill counted" 0
          (counter_value "serve_deadline_kills_total" - kills0));
    test "a raising deadline callback is contained and counted" (fun () ->
        Metrics.set_enabled true;
        let errs0 = counter_value "serve_discard_errors_total" in
        let sched = Scheduler.create ~workers:1 () in
        let j =
          Scheduler.job ~deadline_s:0.05
            ~on_deadline:(fun () -> failwith "callback boom")
            (fun () -> Unix.sleepf 0.3)
        in
        (match Scheduler.submit sched ~tenant:"boom" [ j ] with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "rejected");
        Scheduler.drain sched;
        check_int "callback failure counted" 1
          (counter_value "serve_discard_errors_total" - errs0));
  ]

(* -- quarantine ------------------------------------------------------------- *)

let quarantine_tests =
  [
    test "strikes accumulate, the TTL releases and forgives" (fun () ->
        let q = Quarantine.create ~strikes:2 ~ttl_s:0.2 () in
        check_bool "one strike is not enough" false
          (Quarantine.strike q ~key:"d1" ~reason:"t1");
        check_bool "not quarantined yet" true (Quarantine.check q ~key:"d1" = None);
        check_bool "second strike trips" true
          (Quarantine.strike q ~key:"d1" ~reason:"t2");
        (match Quarantine.check q ~key:"d1" with
        | Some _ -> ()
        | None -> Alcotest.fail "quarantine not active");
        check_int "listed" 1 (List.length (Quarantine.active q));
        Unix.sleepf 0.3;
        check_bool "released after the TTL" true (Quarantine.check q ~key:"d1" = None);
        check_bool "strikes forgiven wholesale" false
          (Quarantine.strike q ~key:"d1" ~reason:"t3"));
    test "independent keys do not share strikes" (fun () ->
        let q = Quarantine.create ~strikes:1 ~ttl_s:60. () in
        ignore (Quarantine.strike q ~key:"a" ~reason:"r");
        check_bool "a quarantined" true (Quarantine.check q ~key:"a" <> None);
        check_bool "b untouched" true (Quarantine.check q ~key:"b" = None));
  ]

(* -- store: quarantine stand-ins and deadline clamping ---------------------- *)

let spec_digest (s : Campaign.spec) =
  Cache.digest (s.Campaign.id, s.Campaign.family, s.Campaign.inject, s.Campaign.seed)

let stream_all store e =
  let rec go pos acc =
    match Store.await store e ~pos with
    | Store.Next (i, o) -> go (pos + 1) ((i, o) :: acc)
    | Store.Finished -> List.rev acc
  in
  go 0 []

let store_tests =
  [
    test "a quarantined spec answers an immediate Failed stand-in" (fun () ->
        Metrics.set_enabled true;
        let sched = Scheduler.create ~workers:2 () in
        let cache = Cache.create () in
        let store = Store.create ~quarantine_strikes:1 ~sched ~cache () in
        let specs =
          match Wire.resolve (Wire.submit ~tiny:true ()) with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        let victim = List.hd specs in
        ignore
          (Quarantine.strike (Store.quarantine store) ~key:(spec_digest victim)
             ~reason:"test poison");
        (match Store.submit store ~tenant:"t" (Wire.submit ~tiny:true ~key:"q-1" ()) with
        | Error _ -> Alcotest.fail "submission rejected"
        | Ok (e, _) ->
          let all = stream_all store e in
          check_int "every verdict present" (List.length specs) (List.length all);
          let _, vo =
            List.find (fun (_, o) -> o.Campaign.spec_id = victim.Campaign.id) all
          in
          (match vo.Campaign.verdict with
          | Campaign.Failed msg ->
            check_bool "stand-in names the quarantine" true
              (contains ~sub:"quarantined" msg)
          | _ -> Alcotest.fail "quarantined spec was run");
          (* the other jobs ran normally despite the poisoned sibling *)
          List.iter
            (fun (_, o) ->
              if o.Campaign.spec_id <> victim.Campaign.id then
                match o.Campaign.verdict with
                | Campaign.Failed _ -> Alcotest.fail "healthy sibling failed"
                | _ -> ())
            all);
        Scheduler.drain sched);
    test "a tiny deadline times out every job and strikes the registry" (fun () ->
        Metrics.set_enabled true;
        let sched = Scheduler.create ~workers:2 () in
        let cache = Cache.create () in
        let store = Store.create ~quarantine_strikes:1 ~sched ~cache () in
        let sub = { (Wire.submit ~tiny:true ~key:"dl-1" ()) with Wire.deadline_s = Some 1e-6 } in
        (match Store.submit store ~tenant:"t" sub with
        | Error _ -> Alcotest.fail "submission rejected"
        | Ok (e, _) ->
          let all = stream_all store e in
          check_int "every verdict present" 4 (List.length all);
          List.iter
            (fun (_, o) ->
              match o.Campaign.verdict with
              | Campaign.Timed_out | Campaign.Failed _ -> ()
              | _ ->
                Alcotest.failf "%s beat a microsecond budget" o.Campaign.spec_id)
            all;
          check_bool "poison recorded" true
            (Quarantine.active (Store.quarantine store) <> []));
        Scheduler.drain sched);
  ]

(* -- HTTP server ----------------------------------------------------------- *)

let with_server ?(cfg = Server.default) f =
  let srv = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let raw_request_full ~port ~meth ~path ?headers body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let c = Http.conn fd in
  Fun.protect
    ~finally:(fun () -> Http.close c)
    (fun () ->
      Http.write_request c ~meth ~path ?headers body;
      let head = Http.read_response_head c in
      (head, Http.read_body c head))

let raw_request ~port ~meth ~path ?headers body =
  let head, body = raw_request_full ~port ~meth ~path ?headers body in
  (head.Http.status, body)

let server_tests =
  [
    test "healthz answers and unknown routes are 404/405" (fun () ->
        with_server (fun srv ->
            let port = Server.port srv in
            (match Client.connect ~port () with
            | Ok _ -> ()
            | Error e -> Alcotest.fail (Client.error_string e));
            let status path = fst (raw_request ~port ~meth:"GET" ~path "") in
            check_int "404 for unknown path" 404 (status "/nope");
            check_int "405 for wrong verb" 405
              (fst (raw_request ~port ~meth:"POST" ~path:"/healthz" ""))));
    test "malformed submissions are 400, never a hang" (fun () ->
        with_server (fun srv ->
            let port = Server.port srv in
            let post body =
              fst (raw_request ~port ~meth:"POST" ~path:"/v1/campaign" body)
            in
            check_int "bad JSON" 400 (post "{not json");
            check_int "mistyped field" 400 (post {|{"matrix": 5}|});
            check_int "unknown matrix" 400 (post {|{"matrix": "weird"}|});
            check_int "mistyped ids" 400 (post {|{"ids": "railcab"}|});
            check_int "unknown job id" 400 (post {|{"ids": ["no/such/job"]}|})));
    test "a daemon-served campaign equals the local run" (fun () ->
        with_server (fun srv ->
            let port = Server.port srv in
            let ep = { Client.host = "127.0.0.1"; port } in
            match Client.submit ep ~tiny:true () with
            | Error e -> Alcotest.fail (Client.error_string e)
            | Ok outcomes ->
              check_string "canonical daemon = local"
                (Report.canonical (Campaign.run (Campaign.bundled ~tiny:true ())))
                (Report.canonical outcomes)));
    test "two concurrent clients both get full, identical verdict sets" (fun () ->
        with_server (fun srv ->
            let port = Server.port srv in
            let ep = { Client.host = "127.0.0.1"; port } in
            let submit tenant () = Client.submit ep ~tenant ~tiny:true () in
            let d1 = Domain.spawn (submit "alice") in
            let d2 = Domain.spawn (submit "bob") in
            match (Domain.join d1, Domain.join d2) with
            | Ok a, Ok b ->
              check_string "identical canonical reports" (Report.canonical a)
                (Report.canonical b);
              check_int "alice got every verdict" 4 (List.length a)
            | Error e, _ | _, Error e -> Alcotest.fail (Client.error_string e)));
    test "a full queue answers 429 with Retry-After" (fun () ->
        let cfg = { Server.default with Server.queue_bound = 0 } in
        with_server ~cfg (fun srv ->
            let ep = { Client.host = "127.0.0.1"; port = Server.port srv } in
            match Client.submit ep ~tiny:true () with
            | Error (Client.Busy retry) ->
              check_bool "positive retry hint" true (retry > 0.)
            | Error e -> Alcotest.fail (Client.error_string e)
            | Ok _ -> Alcotest.fail "over-bound submission accepted"));
    test "metrics scrape exposes the server series" (fun () ->
        with_server (fun srv ->
            let ep = { Client.host = "127.0.0.1"; port = Server.port srv } in
            (match Client.submit ep ~tiny:true ~select:"watchdog" () with
            | Ok _ -> ()
            | Error e -> Alcotest.fail (Client.error_string e));
            match Client.metrics ep with
            | Error e -> Alcotest.fail (Client.error_string e)
            | Ok body ->
              List.iter
                (fun series ->
                  check_bool ("scrape has " ^ series) true (contains ~sub:series body))
                [
                  "serve_requests_total";
                  "serve_connections_total";
                  "serve_jobs_total";
                  "serve_queue_depth";
                  "serve_cache_hit_rate";
                  "serve_tenant_busy_seconds";
                ]));
    test "stats endpoint reports tenants and cache as JSON" (fun () ->
        with_server (fun srv ->
            let ep = { Client.host = "127.0.0.1"; port = Server.port srv } in
            (match Client.submit ep ~tenant:"carol" ~tiny:true ~select:"watchdog" () with
            | Ok _ -> ()
            | Error e -> Alcotest.fail (Client.error_string e));
            match Client.get ep "/v1/stats" with
            | Error e -> Alcotest.fail (Client.error_string e)
            | Ok (status, body) ->
              check_int "200" 200 status;
              (match Json.parse body with
              | Error e -> Alcotest.failf "stats not JSON: %s" e
              | Ok v ->
                check_bool "schema" true
                  (Json.member "schema" v = Some (Json.Str "mechaml-serve-stats/1"));
                check_bool "tenant listed" true (contains ~sub:"carol" body))));
    test "every response echoes X-Request-Id, supplied or minted" (fun () ->
        with_server (fun srv ->
            let port = Server.port srv in
            let head, _ =
              raw_request_full ~port ~meth:"GET" ~path:"/healthz"
                ~headers:[ ("x-request-id", "my-rid-1") ]
                ""
            in
            check_bool "supplied id echoed" true
              (Http.resp_header head "x-request-id" = Some "my-rid-1");
            let head, _ = raw_request_full ~port ~meth:"GET" ~path:"/nope" "" in
            check_int "404 still traced" 404 head.Http.status;
            (match Http.resp_header head "x-request-id" with
            | Some rid -> check_bool "minted id on 404" true (String.length rid > 0)
            | None -> Alcotest.fail "404 without a request id");
            (* an id outside [A-Za-z0-9._-]{1,128} never enters WAL lines or
               logs: the daemon mints a clean replacement *)
            let head, _ =
              raw_request_full ~port ~meth:"GET" ~path:"/healthz"
                ~headers:[ ("x-request-id", "bad id!") ]
                ""
            in
            match Http.resp_header head "x-request-id" with
            | Some rid -> check_bool "invalid id replaced" true (rid <> "bad id!")
            | None -> Alcotest.fail "no id on the replacement path"));
    test "even an unparseable request gets a request id on its 400" (fun () ->
        with_server (fun srv ->
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Unix.connect fd
              (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
            let c = Http.conn fd in
            Fun.protect
              ~finally:(fun () -> Http.close c)
              (fun () ->
                let junk = Bytes.of_string "BROKEN\r\n\r\n" in
                ignore (Unix.write fd junk 0 (Bytes.length junk));
                let head = Http.read_response_head c in
                check_int "400" 400 head.Http.status;
                match Http.resp_header head "x-request-id" with
                | Some rid -> check_bool "provisional id" true (String.length rid > 0)
                | None -> Alcotest.fail "parse-failure reply without an id")));
    test "/v1/slo and /v1/debug/flight expose the request's footprints" (fun () ->
        with_server (fun srv ->
            let ep = { Client.host = "127.0.0.1"; port = Server.port srv } in
            (match Client.submit ep ~tenant:"dora" ~tiny:true ~select:"watchdog" () with
            | Ok _ -> ()
            | Error e -> Alcotest.fail (Client.error_string e));
            (match Client.get ep "/v1/slo" with
            | Error e -> Alcotest.fail (Client.error_string e)
            | Ok (status, body) ->
              check_int "slo 200" 200 status;
              (match Json.parse (String.trim body) with
              | Error e -> Alcotest.failf "slo not JSON: %s" e
              | Ok v ->
                check_bool "slo schema" true
                  (Json.member "schema" v = Some (Json.Str "mechaml-serve-slo/1"));
                check_bool "admission cell for the tenant" true
                  (contains ~sub:"dora" body && contains ~sub:"admission" body)));
            match Client.get ep "/v1/debug/flight" with
            | Error e -> Alcotest.fail (Client.error_string e)
            | Ok (status, body) ->
              check_int "flight 200" 200 status;
              check_bool "admission event recorded" true
                (contains ~sub:{|"kind":"admission"|} body);
              check_bool "verdict event recorded" true
                (contains ~sub:{|"kind":"verdict"|} body);
              String.split_on_char '\n' body
              |> List.filter (fun l -> String.trim l <> "")
              |> List.iter (fun l ->
                     match Json.parse l with
                     | Ok _ -> ()
                     | Error e -> Alcotest.failf "unparseable flight line %s: %s" l e)));
  ]

(* -- snapshot persistence across a restart --------------------------------- *)

let persistence_tests =
  [
    test "a restarted daemon answers from the restored cache" (fun () ->
        let snapshot = Filename.temp_file "mechaserve" ".snap" in
        Sys.remove snapshot;
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists snapshot then Sys.remove snapshot)
          (fun () ->
            let cfg = { Server.default with Server.snapshot = Some snapshot } in
            (* first life: compute, snapshot on stop *)
            with_server ~cfg (fun srv ->
                let ep = { Client.host = "127.0.0.1"; port = Server.port srv } in
                match Client.submit ep ~tiny:true () with
                | Ok _ -> ()
                | Error e -> Alcotest.fail (Client.error_string e));
            check_bool "snapshot written" true (Sys.file_exists snapshot);
            (* second life: the cache comes back warm and the same matrix
               answers from memory — the hit counters prove it *)
            with_server ~cfg (fun srv ->
                let restored = (Cache.stats (Server.cache srv)).Cache.entries in
                check_bool "entries restored at startup" true (restored > 0);
                let ep = { Client.host = "127.0.0.1"; port = Server.port srv } in
                match Client.submit ep ~tiny:true () with
                | Error e -> Alcotest.fail (Client.error_string e)
                | Ok outcomes ->
                  check_string "verdicts unchanged by the restore"
                    (Report.canonical (Campaign.run (Campaign.bundled ~tiny:true ())))
                    (Report.canonical outcomes);
                  let s = Cache.stats (Server.cache srv) in
                  check_bool "warm hits after restart" true (Cache.hits s > 0))))
  ]

(* -- idempotent submissions and job status ---------------------------------- *)

let idempotency_tests =
  [
    test "resubmitting an idempotency key attaches instead of re-running" (fun () ->
        with_server (fun srv ->
            let ep = { Client.host = "127.0.0.1"; port = Server.port srv } in
            match Client.submit ep ~key:"idem-1" ~tiny:true () with
            | Error e -> Alcotest.fail (Client.error_string e)
            | Ok a -> (
              let after_first = counter_value "serve_jobs_total" in
              match Client.submit ep ~key:"idem-1" ~tiny:true () with
              | Error e -> Alcotest.fail (Client.error_string e)
              | Ok b ->
                check_string "identical verdicts on replay" (Report.canonical a)
                  (Report.canonical b);
                check_int "not a single job re-ran" 0
                  (counter_value "serve_jobs_total" - after_first))));
    test "GET /v1/jobs replays a finished submission" (fun () ->
        with_server (fun srv ->
            let port = Server.port srv in
            let ep = { Client.host = "127.0.0.1"; port } in
            match Client.submit ep ~key:"status-1" ~tiny:true () with
            | Error e -> Alcotest.fail (Client.error_string e)
            | Ok a ->
              (match Client.job_status ep "status-1" with
              | Error e -> Alcotest.fail (Client.error_string e)
              | Ok None -> Alcotest.fail "daemon forgot the key"
              | Ok (Some st) ->
                check_bool "finished" true st.Wire.finished;
                check_int "jobs" 4 st.Wire.jobs;
                check_int "completed" 4 st.Wire.completed;
                let in_matrix_order =
                  List.sort (fun (i, _) (j, _) -> compare i j) st.Wire.verdicts
                  |> List.map snd
                in
                check_string "status equals the stream" (Report.canonical a)
                  (Report.canonical in_matrix_order));
              (match Client.job_status ep "no-such-key" with
              | Ok None -> ()
              | Ok (Some _) -> Alcotest.fail "invented a job"
              | Error e -> Alcotest.fail (Client.error_string e));
              check_int "an invalid key is a 400" 400
                (fst
                   (raw_request ~port ~meth:"POST" ~path:"/v1/campaign"
                      {|{"matrix": "tiny", "key": "bad key!"}|}))));
  ]

(* -- durability across a crash ---------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

(* The record tag of one WAL line ([None] for the header). *)
let wal_rec line =
  let s = String.trim line in
  let sentinel = ";end" in
  let n = String.length s and sn = String.length sentinel in
  if n >= sn && String.sub s (n - sn) sn = sentinel then
    match Json.parse (String.trim (String.sub s 0 (n - sn))) with
    | Ok v -> ( match Json.member "rec" v with Some (Json.Str r) -> Some r | _ -> None)
    | Error _ -> None
  else None

(* -- flight recorder -------------------------------------------------------- *)

(* The recorder is process-global (daemons enable it), so every test here
   installs a private ring and restores the default on the way out. *)
let with_flight ~size f () =
  Flight.configure ~size;
  Flight.enable ();
  Fun.protect
    ~finally:(fun () ->
      Flight.disable ();
      Flight.configure ~size:Flight.default_size)
    f

let flight_tests =
  [
    test "events render as ndjson with seq, kind and trace"
      (with_flight ~size:16 (fun () ->
           Flight.event ~kind:"a" ~trace:"rid-1" ~fields:[ ("n", Json.Num 1.) ] ();
           Context.with_id "ambient-rid" (fun () -> Flight.event ~kind:"b" ());
           let lines =
             String.split_on_char '\n' (Flight.dump ())
             |> List.filter (fun l -> String.trim l <> "")
           in
           check_int "two lines" 2 (List.length lines);
           match
             List.map
               (fun l ->
                 match Json.parse l with
                 | Ok v -> v
                 | Error e -> Alcotest.failf "bad line %s: %s" l e)
               lines
           with
           | [ a; b ] ->
             check_bool "kind" true (Json.member "kind" a = Some (Json.Str "a"));
             check_bool "explicit trace" true
               (Json.member "trace" a = Some (Json.Str "rid-1"));
             check_bool "ambient trace adopted" true
               (Json.member "trace" b = Some (Json.Str "ambient-rid"));
             check_bool "field kept" true (Json.member "n" a = Some (Json.Num 1.));
             check_bool "seq ordered" true
               (Json.member "seq" a = Some (Json.Num 0.)
               && Json.member "seq" b = Some (Json.Num 1.))
           | _ -> Alcotest.fail "unexpected dump shape"));
    test "a disabled recorder records nothing"
      (with_flight ~size:8 (fun () ->
           Flight.disable ();
           Flight.event ~kind:"x" ();
           check_int "empty" 0 (List.length (Flight.entries ()))));
    qcheck ~count:30 "4-domain writers: no tears, bounded, newest tickets win"
      QCheck.(pair (int_range 1 32) (int_range 1 128))
      (fun (size, per_domain) ->
        Flight.configure ~size;
        Flight.enable ();
        let writers =
          List.init 4 (fun d ->
              Domain.spawn (fun () ->
                  for i = 0 to per_domain - 1 do
                    Flight.event ~kind:"w"
                      ~fields:
                        [ ("d", Json.Num (float_of_int d));
                          ("i", Json.Num (float_of_int i)) ]
                      ()
                  done))
        in
        List.iter Domain.join writers;
        Flight.disable ();
        let total = 4 * per_domain in
        let survivors = min size total in
        let entries = Flight.entries () in
        Flight.configure ~size:Flight.default_size;
        (* after quiescence each slot holds the largest ticket of its residue
           class: the ring is exactly the newest [survivors] events, every
           line a complete JSON object (a torn write could never parse) *)
        List.length entries = survivors
        && List.for_all (fun (_, line) -> Result.is_ok (Json.parse line)) entries
        && List.map fst entries = List.init survivors (fun i -> total - survivors + i));
    test "SIGQUIT dumps the ring to the configured path" (fun () ->
        let path = Filename.temp_file "mechaflight" ".ndjson" in
        Sys.remove path;
        Fun.protect
          ~finally:(fun () ->
            if Sys.file_exists path then Sys.remove path;
            Sys.set_signal Sys.sigquit Sys.Signal_default;
            Flight.disable ();
            Flight.configure ~size:Flight.default_size)
          (fun () ->
            Flight.configure ~size:16;
            Flight.enable ();
            Flight.install_signal_dump ~path ();
            Flight.event ~kind:"pre_crash" ~trace:"sig-rid" ();
            Unix.kill (Unix.getpid ()) Sys.sigquit;
            (* OCaml runs signal handlers at safepoints: poll for the file *)
            let rec wait n =
              if Sys.file_exists path then ()
              else if n = 0 then Alcotest.fail "dump never appeared"
              else begin
                Unix.sleepf 0.05;
                wait (n - 1)
              end
            in
            wait 100;
            let body = read_file path in
            check_bool "event dumped" true (contains ~sub:"pre_crash" body);
            check_bool "trace id dumped" true (contains ~sub:"sig-rid" body)));
  ]

(* -- end-to-end trace correlation ------------------------------------------- *)

(* The tentpole acceptance test: one submission's trace id must be findable
   in (1) the response header, (2) the streamed ndjson verdict events,
   (3) the WAL accept record, (4) at least four nested spans of the Chrome
   trace, and (5) a flight dump forced by SIGQUIT. *)
let trace_correlation_tests =
  [
    test "one trace id correlates header, stream, WAL, spans and flight dump"
      (fun () ->
        let wal = Filename.temp_file "mechaserve" ".wal" in
        let dump = Filename.temp_file "mechaflight" ".ndjson" in
        Sys.remove wal;
        Sys.remove dump;
        let rid = "e2e-trace-1" in
        Fun.protect
          ~finally:(fun () ->
            List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ wal; dump ];
            Sys.set_signal Sys.sigquit Sys.Signal_default;
            Trace.disable ();
            Trace.reset ();
            Flight.disable ();
            Flight.configure ~size:Flight.default_size)
          (fun () ->
            Trace.enable ();
            Trace.reset ();
            let cfg =
              {
                Server.default with
                Server.wal = Some wal;
                flight_size = Some 64;
                flight_dump = Some dump;
              }
            in
            with_server ~cfg (fun srv ->
                let port = Server.port srv in
                let ep = { Client.host = "127.0.0.1"; port } in
                let echoed = ref None in
                (match
                   Client.submit ep ~tiny:true ~select:"watchdog" ~key:"e2e-1"
                     ~request_id:rid
                     ~on_request_id:(fun r -> echoed := Some r)
                     ()
                 with
                | Ok [ _ ] -> ()
                | Ok outcomes ->
                  Alcotest.failf "expected one verdict, got %d" (List.length outcomes)
                | Error e -> Alcotest.fail (Client.error_string e));
                (* 1: the response header *)
                check_bool "header echoed" true (!echoed = Some rid);
                (* 2: re-attach to the same key with the same id and read the
                   raw chunked stream — every event line carries the id *)
                let _, stream =
                  raw_request_full ~port ~meth:"POST" ~path:"/v1/campaign"
                    ~headers:
                      [ ("content-type", "application/json");
                        ("x-request-id", rid) ]
                    {|{"matrix": "tiny", "select": "watchdog", "key": "e2e-1"}|}
                in
                check_bool "verdict event stamped" true
                  (contains ~sub:({|"request_id":"|} ^ rid ^ {|"|}) stream
                  && contains ~sub:{|"event":"verdict"|} stream));
            (* 3: the WAL accept record *)
            check_bool "WAL accept record stamped" true
              (contains ~sub:({|"request_id":"|} ^ rid ^ {|"|}) (read_file wal));
            (* 4: at least four distinct span names carry the trace arg *)
            (match Json.parse (Trace.export ()) with
            | Error e -> Alcotest.failf "trace export not JSON: %s" e
            | Ok (Json.List events) ->
              let named =
                List.filter_map
                  (fun e ->
                    match Json.member "args" e with
                    | Some args when Json.member "trace" args = Some (Json.Str rid) ->
                      Option.bind (Json.member "name" e) Json.to_str
                    | _ -> None)
                  events
                |> List.sort_uniq compare
              in
              List.iter
                (fun expected ->
                  check_bool ("span " ^ expected ^ " stamped") true
                    (List.mem expected named))
                [ "serve.request"; "serve.job"; "campaign.job"; "loop.closure";
                  "loop.check" ]
            | Ok _ -> Alcotest.fail "trace export is not an array");
            (* 5: the flight dump a SIGQUIT forces *)
            Unix.kill (Unix.getpid ()) Sys.sigquit;
            let rec wait n =
              if Sys.file_exists dump then ()
              else if n = 0 then Alcotest.fail "flight dump never appeared"
              else begin
                Unix.sleepf 0.05;
                wait (n - 1)
              end
            in
            wait 100;
            check_bool "flight dump stamped" true
              (contains ~sub:rid (read_file dump))));
  ]

let durability_tests =
  [
    test "a crashed daemon re-runs only the verdicts the WAL lost" (fun () ->
        let wal = Filename.temp_file "mechaserve" ".wal" in
        Sys.remove wal;
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists wal then Sys.remove wal)
          (fun () ->
            let cfg = { Server.default with Server.wal = Some wal } in
            (* first life: run the campaign, journal everything *)
            let expected =
              with_server ~cfg (fun srv ->
                  let ep = { Client.host = "127.0.0.1"; port = Server.port srv } in
                  match Client.submit ep ~key:"crash-1" ~tiny:true () with
                  | Ok outcomes -> Report.canonical outcomes
                  | Error e -> Alcotest.fail (Client.error_string e))
            in
            (* simulate the crash: the tail of the log — the done marker, the
               last verdict and a half-written record — never hit the disk *)
            let lines =
              String.split_on_char '\n' (read_file wal)
              |> List.filter (fun l -> String.trim l <> "")
            in
            let header, records =
              match lines with h :: r -> (h, r) | [] -> Alcotest.fail "empty WAL"
            in
            check_bool "WAL recorded the campaign" true
              (List.exists (fun l -> wal_rec l = Some "done") records);
            let records = List.filter (fun l -> wal_rec l <> Some "done") records in
            let records =
              (* drop the last verdict record *)
              let rec go dropped acc = function
                | [] -> List.rev acc
                | l :: rest when (not dropped) && wal_rec l = Some "verdict" ->
                  go true acc rest
                | l :: rest -> go dropped (l :: acc) rest
              in
              go false [] (List.rev records) |> List.rev
            in
            write_file wal
              (String.concat "\n" (header :: records)
              ^ "\n" ^ {|{"rec": "verdict", "key": "crash-|});
            let restored0 = counter_value "serve_wal_restored_total" in
            let replays0 = counter_value "serve_wal_replays_total" in
            let jobs0 = counter_value "serve_jobs_total" in
            (* second life: replay restores three verdicts, re-runs one, and a
               client attaching to the same key gets the full set back *)
            with_server ~cfg (fun srv ->
                let ep = { Client.host = "127.0.0.1"; port = Server.port srv } in
                match Client.submit ep ~key:"crash-1" ~tiny:true () with
                | Error e -> Alcotest.fail (Client.error_string e)
                | Ok outcomes ->
                  check_string "verdicts identical across the crash" expected
                    (Report.canonical outcomes);
                  check_int "three verdicts restored, not re-run" 3
                    (counter_value "serve_wal_restored_total" - restored0);
                  check_int "exactly one job replayed" 1
                    (counter_value "serve_wal_replays_total" - replays0);
                  check_int "exactly one job executed" 1
                    (counter_value "serve_jobs_total" - jobs0))));
  ]

(* -- chaos: the daemon behind a faulty network ------------------------------ *)

let chaos_tests =
  [
    test "a delay-only proxy is transparent" (fun () ->
        with_server (fun srv ->
            let proxy =
              Chaosproxy.start ~target_host:"127.0.0.1" ~target_port:(Server.port srv)
                ~seed:7 ~kinds:[ Chaosproxy.Delay ] ()
            in
            Fun.protect
              ~finally:(fun () -> Chaosproxy.stop proxy)
              (fun () ->
                let ep = { Client.host = "127.0.0.1"; port = Chaosproxy.port proxy } in
                match Client.submit ep ~tiny:true ~select:"watchdog" () with
                | Ok [ _ ] -> ()
                | Ok outcomes ->
                  Alcotest.failf "expected one verdict, got %d" (List.length outcomes)
                | Error e -> Alcotest.fail (Client.error_string e))));
    test "a retrying client converges through resets and garbage, exactly once"
      (fun () ->
        with_server (fun srv ->
            let jobs0 = counter_value "serve_jobs_total" in
            let proxy =
              Chaosproxy.start ~target_host:"127.0.0.1" ~target_port:(Server.port srv)
                ~seed:3 ()
            in
            Fun.protect
              ~finally:(fun () -> Chaosproxy.stop proxy)
              (fun () ->
                let ep = { Client.host = "127.0.0.1"; port = Chaosproxy.port proxy } in
                match
                  Client.submit_with_retry ep ~attempts:15 ~key:"chaos-1" ~tiny:true
                    ~io_timeout_s:5. ()
                with
                | Error e -> Alcotest.fail (Client.error_string e)
                | Ok outcomes ->
                  check_string "verdicts untouched by the faults"
                    (Report.canonical (Campaign.run (Campaign.bundled ~tiny:true ())))
                    (Report.canonical outcomes);
                  check_int "every job executed exactly once" 4
                    (counter_value "serve_jobs_total" - jobs0))));
  ]

let () =
  Alcotest.run "serve"
    [
      ("wire", wire_tests);
      ("scheduler", scheduler_tests);
      ("hostile-http", hostile_tests);
      ("watchdog", watchdog_tests);
      ("quarantine", quarantine_tests);
      ("store", store_tests);
      ("flight", flight_tests);
      ("server", server_tests);
      ("trace-correlation", trace_correlation_tests);
      ("idempotency", idempotency_tests);
      ("durability", durability_tests);
      ("chaos", chaos_tests);
      ("persistence", persistence_tests);
    ]
