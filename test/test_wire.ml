(* Shardwire codec: the coordinator↔worker frame must round-trip every
   payload kind bit for bit, and every form of damage — truncation, garbage,
   a corrupted segment digest, a damaged header — must surface as
   [Wire_error], never as silently wrong data.  The automaton codec must be
   order-preserving: a worker re-enumerates joint moves from the decoded
   automata, so adjacency order is part of the contract. *)

module Wire = Mechaml_wire.Shardwire
module Segment = Mechaml_util.Segment
module Bitvec = Mechaml_util.Bitvec
module Json = Mechaml_obs.Json
module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe
module Families = Mechaml_scenarios.Families
open Helpers

let sample_payload () =
  [
    ("e", Segment.Ints (Array.init 257 (fun i -> (i * 7919) land 0xFFFFF)));
    ("b", Segment.Bits (Bitvec.init 100 (fun i -> i mod 3 = 0)));
    ("empty", Segment.Ints [||]);
  ]

let sample_msg () =
  Wire.msg
    ~data:(sample_payload ())
    (Json.Obj [ ("op", Json.Str "round"); ("k", Wire.num 7); ("ids", Wire.nums [ 1; 5; 9 ]) ])

let expect_wire_error label f =
  match f () with
  | exception Wire.Wire_error _ -> ()
  | _ -> Alcotest.failf "%s: expected Wire_error" label

let codec_tests =
  [
    test "frame round-trips meta and every payload field" (fun () ->
        let m = sample_msg () in
        let m' = Wire.decode (Wire.encode m) in
        check_string "op" "round" (Wire.jstr m'.Wire.meta "op");
        check_int "k" 7 (Wire.jint m'.Wire.meta "k");
        Alcotest.(check (list int)) "ids" [ 1; 5; 9 ] (Wire.jints m'.Wire.meta "ids");
        Alcotest.(check (array int))
          "ints" (Wire.ints (sample_payload ()) "e")
          (Wire.ints m'.Wire.data "e");
        check_bool "bits" true
          (Bitvec.equal (Wire.bits (sample_payload ()) "b") (Wire.bits m'.Wire.data "b"));
        check_int "empty field survives" 0 (Array.length (Wire.ints m'.Wire.data "empty")));
    test "data-less frame round-trips" (fun () ->
        let m = Wire.msg (Json.Obj [ ("op", Json.Str "ping") ]) in
        let m' = Wire.decode (Wire.encode m) in
        check_string "op" "ping" (Wire.jstr m'.Wire.meta "op");
        check_bool "no data" true (m'.Wire.data = []));
    test "every truncation raises Wire_error" (fun () ->
        let s = Wire.encode (sample_msg ()) in
        List.iter
          (fun n ->
            expect_wire_error
              (Printf.sprintf "cut to %d bytes" n)
              (fun () -> Wire.decode (String.sub s 0 n)))
          [ 0; 3; 5; String.length s / 2; String.length s - 1 ]);
    test "garbage raises Wire_error" (fun () ->
        List.iter
          (fun g -> expect_wire_error g (fun () -> Wire.decode g))
          [ "hello world"; "msw1 banana 0\n{}"; "msw1 2 0\n{}trailing"; "\x00\x01\x02" ]);
    test "corrupted segment byte fails the digest, never decodes" (fun () ->
        let s = Wire.encode (sample_msg ()) in
        (* flip one byte in the bulk (mechaseg) part, well past the JSON *)
        let b = Bytes.of_string s in
        let i = Bytes.length b - 40 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
        expect_wire_error "flipped segment byte" (fun () ->
            Wire.decode (Bytes.to_string b)));
    test "damaged magic raises Wire_error" (fun () ->
        let s = Wire.encode (sample_msg ()) in
        let b = Bytes.of_string s in
        Bytes.set b 3 '2';
        expect_wire_error "msw2" (fun () -> Wire.decode (Bytes.to_string b)));
    test "accessors fail closed on missing or ill-typed fields" (fun () ->
        let meta = Json.Obj [ ("op", Json.Str "x"); ("n", Wire.num 3) ] in
        expect_wire_error "jint missing" (fun () -> Wire.jint meta "absent");
        expect_wire_error "jstr on number" (fun () -> Wire.jstr meta "n");
        expect_wire_error "jints missing" (fun () -> Wire.jints meta "absent");
        expect_wire_error "ints missing" (fun () -> Wire.ints [] "absent");
        expect_wire_error "bits on ints" (fun () ->
            Wire.bits [ ("x", Segment.Ints [| 1 |]) ] "x"));
  ]

(* structural identity, as in test_equiv: numbering, adjacency order, labels *)
let same_auto (a : Automaton.t) (b : Automaton.t) =
  a.Automaton.name = b.Automaton.name
  && a.Automaton.state_names = b.Automaton.state_names
  && Array.for_all2 Mechaml_util.Bitset.equal a.Automaton.labels b.Automaton.labels
  && a.Automaton.trans = b.Automaton.trans
  && a.Automaton.initial = b.Automaton.initial
  && Universe.to_list a.Automaton.props = Universe.to_list b.Automaton.props

let automaton_tests =
  [
    test "random machines round-trip structurally" (fun () ->
        for seed = 1 to 8 do
          let m =
            Families.random_machine ~seed ~states:(3 + (seed mod 6))
              ~inputs:[ "a"; "b" ] ~outputs:[ "x"; "y" ]
          in
          let m' = Wire.automaton_of_json (Wire.json_of_automaton m) in
          if not (same_auto m m') then Alcotest.failf "round trip differs at seed %d" seed
        done);
    test "the JSON form itself is a fixpoint of the round trip" (fun () ->
        let m =
          Families.random_context ~seed:5 ~states:7 ~legacy_inputs:[ "a" ]
            ~legacy_outputs:[ "x" ]
        in
        let j = Wire.json_of_automaton m in
        let j' = Wire.json_of_automaton (Wire.automaton_of_json j) in
        check_string "canonical JSON" (Json.to_string j) (Json.to_string j'));
    test "mangled automaton JSON raises Wire_error" (fun () ->
        expect_wire_error "empty object" (fun () ->
            Wire.automaton_of_json (Json.Obj []));
        expect_wire_error "wrong type" (fun () ->
            Wire.automaton_of_json (Json.Str "nope")));
  ]

let () =
  Alcotest.run "wire"
    [ ("codec", codec_tests); ("automaton", automaton_tests) ]
