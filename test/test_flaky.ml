(* Guardrails: the approach assumes a deterministic component with honest
   state probes (Sections 4.3/5).  These tests break the assumptions with
   fault-injection wrappers and check the failure is *detected*, never
   silently converted into a wrong verdict. *)

module Flaky = Mechaml_legacy.Flaky
module Replay = Mechaml_legacy.Replay
module Observation = Mechaml_legacy.Observation
module Blackbox = Mechaml_legacy.Blackbox
module Railcab = Mechaml_scenarios.Railcab
open Helpers

let unit_tests =
  [
    test "replay detects a nondeterministic component" (fun () ->
        let box = Flaky.nondeterministic ~seed:0 ~flip_every:2 Railcab.box_correct in
        (* record with outputs flipped one way; replay sees another *)
        let inputs = [ []; [ "convoyProposalRejected" ]; [] ] in
        match
          let recording = Replay.record ~box ~inputs in
          Replay.replay ~box recording
        with
        | exception Invalid_argument msg ->
          check_bool "names the component" true
            (String.length msg > 0)
        | _ ->
          (* depending on the phase of the flip counter, a single
             record/replay pair can coincide; repeating must eventually
             diverge *)
          let rec retry n =
            if n = 0 then Alcotest.fail "nondeterminism never detected"
            else
              match
                let recording = Replay.record ~box ~inputs in
                Replay.replay ~box recording
              with
              | exception Invalid_argument _ -> ()
              | _ -> retry (n - 1)
          in
          retry 10);
    test "dishonest probes are caught by the determinism check" (fun () ->
        (* the lossy wrapper is deterministic in (state, step-count) but its
           probes only report the state: the same probed state answers the
           same input differently, which Incomplete.add_transition rejects *)
        let box = Flaky.drop_outputs ~every:3 Railcab.box_correct in
        let model = Mechaml_core.Synthesis.initial_model box in
        (* the proposal is emitted on step 1 but suppressed on step 3, both
           from the same probed state *)
        let obs =
          Observation.observe ~box ~inputs:[ []; [ "convoyProposalRejected" ]; [] ]
        in
        match Mechaml_core.Incomplete.learn_observation model obs with
        | exception Invalid_argument msg ->
          check_bool "mentions determinism" true
            (String.length msg > 0)
        | _ -> Alcotest.fail "contradictory observations accepted");
    test "wrapper validation" (fun () ->
        (match Flaky.nondeterministic ~seed:1 ~flip_every:0 Railcab.box_correct with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "flip_every 0 accepted");
        match Flaky.drop_outputs ~every:0 Railcab.box_correct with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "every 0 accepted");
    test "wrapped boxes keep the structural interface" (fun () ->
        let box = Flaky.drop_outputs ~every:3 Railcab.box_correct in
        Alcotest.(check (list string)) "inputs" Railcab.box_correct.Blackbox.input_signals
          box.Blackbox.input_signals;
        check_string "initial" Railcab.box_correct.Blackbox.initial_state
          box.Blackbox.initial_state);
    test "the flip counter loses no updates across domains" (fun () ->
        (* a one-state driver that accepts every step: 4 domains × 250 steps
           share the wrapper's flip counter, so exactly ⌊1000/3⌋ answers flip
           — one lost update and the total comes up short *)
        let base =
          Blackbox.of_automaton
            (automaton ~name:"tick" ~inputs:[] ~outputs:[ "o" ]
               ~trans:[ ("s", [], [ "o" ], "s") ] ~initial:[ "s" ] ())
        in
        let box = Flaky.nondeterministic ~seed:0 ~flip_every:3 base in
        let flips =
          Mechaml_engine.Pool.map ~jobs:4
            ~f:(fun _ ->
              let session = box.Blackbox.connect () in
              let n = ref 0 in
              for _ = 1 to 250 do
                match session.Blackbox.step ~inputs:[] with
                | Some [] -> incr n
                | Some _ -> ()
                | None -> Alcotest.fail "the always-on driver refused a step"
              done;
              !n)
            (Array.init 4 Fun.id)
        in
        check_int "exact flip count under contention" 333
          (Array.fold_left ( + ) 0 flips));
  ]

let () = Alcotest.run "flaky" [ ("unit", unit_tests) ]
