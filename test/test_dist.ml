(* Distributed sharding equivalence: a worker-process fleet (here: in-process
   [Distworker] instances behind real sockets, i.e. [Connect] mode with the
   full wire stack) must reproduce the materialized Compose/Sat pipeline —
   numbering, labels, adjacency order, blocking set and every verdict —
   byte-identically for every worker count, and keep doing so when a worker
   crashes mid-build or after the build. *)

module Automaton = Mechaml_ts.Automaton
module Compose = Mechaml_ts.Compose
module Shard = Mechaml_ts.Shard
module Sat = Mechaml_mc.Sat
module Ctl = Mechaml_logic.Ctl
module Bitvec = Mechaml_util.Bitvec
module Segment = Mechaml_util.Segment
module Families = Mechaml_scenarios.Families
module Distshard = Mechaml_dist.Distshard
module Distsat = Mechaml_dist.Distsat
module Distworker = Mechaml_dist.Distworker
module Wire = Mechaml_wire.Shardwire
open Helpers

let inputs = [ "a"; "b" ]

let outputs = [ "x"; "y" ]

let machine seed = Families.random_machine ~seed ~states:(4 + (seed mod 5)) ~inputs ~outputs

let context seed =
  Families.random_context ~seed ~states:(6 + (seed mod 7)) ~legacy_inputs:inputs
    ~legacy_outputs:outputs

(* same formula mix as test_shard: every fixpoint and bounded DP *)
let formulas =
  let d = Ctl.Deadlock in
  let nd = Ctl.Not d in
  [
    Ctl.deadlock_free;
    Ctl.Ef (None, d);
    Ctl.Af (None, d);
    Ctl.Ag (None, nd);
    Ctl.Eg (None, nd);
    Ctl.Au (None, nd, d);
    Ctl.Eu (None, nd, d);
    Ctl.Ax nd;
    Ctl.Ex d;
    Ctl.Ef (Some { Ctl.lo = 1; hi = 4 }, d);
    Ctl.Ag (Some { Ctl.lo = 0; hi = 5 }, nd);
    Ctl.Au (Some { Ctl.lo = 0; hi = 3 }, nd, d);
    Ctl.Implies (Ctl.Ex nd, Ctl.Ef (None, d));
  ]

(* the bench's coprime mesh, test-sized: w*h reachable states, cyclic (no
   deadlock) — real pressure for the fixpoints and the spill machinery,
   which the tiny machine x context products above cannot provide *)
let mesh_pair ~w ~h =
  let left =
    let b = Automaton.Builder.create ~name:"meshL" ~inputs:[] ~outputs:[ "q"; "r" ] () in
    let st i = Printf.sprintf "l%d" i in
    for i = 0 to w - 1 do
      Automaton.Builder.add_trans b ~src:(st i) ~outputs:[ "q" ] ~dst:(st ((i + 1) mod w)) ();
      Automaton.Builder.add_trans b ~src:(st i) ~outputs:[ "r" ] ~dst:(st 0) ()
    done;
    Automaton.Builder.set_initial b [ st 0 ];
    Automaton.Builder.build b
  in
  let right =
    let b = Automaton.Builder.create ~name:"meshR" ~inputs:[ "q"; "r" ] ~outputs:[] () in
    let st j = Printf.sprintf "r%d" j in
    for j = 0 to h - 1 do
      Automaton.Builder.add_trans b ~src:(st j) ~inputs:[ "q" ] ~dst:(st ((j + 1) mod h)) ();
      Automaton.Builder.add_trans b ~src:(st j) ~inputs:[ "r" ] ~dst:(st 0) ()
    done;
    Automaton.Builder.set_initial b [ st 0 ];
    Automaton.Builder.build b
  in
  (left, right)

let sock_path =
  let c = ref 0 in
  fun () ->
    incr c;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mechadist-t-%d-%d.sock" (Unix.getpid ()) !c)

let with_fleet n f =
  let handles = List.init n (fun _ -> Distworker.start (Wire.Unix_sock (sock_path ()))) in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun h -> try Distworker.stop h with _ -> ()) handles)
    (fun () ->
      f handles
        (List.map (fun h -> Wire.addr_to_string (Distworker.addr h)) handles))

let dist_config ?mem_budget ?spill_dir ~shards addrs =
  Shard.config ~shards ?mem_budget ?spill_dir
    ~distribution:(Shard.distribution ~deadline_s:60. (Shard.Connect addrs))
    ()

let check_structure product dp =
  let auto = product.Compose.auto in
  let n = Automaton.num_states auto in
  check_int "states" n (Distshard.num_states dp);
  check_int "transitions" (Automaton.num_transitions auto) (Distshard.num_transitions dp);
  Alcotest.(check (list int)) "initial" auto.Automaton.initial (Distshard.initial dp);
  let labels = Distshard.labels dp in
  for s = 0 to n - 1 do
    if not (Mechaml_util.Bitset.equal (Automaton.label auto s) labels.(s)) then
      Alcotest.failf "label mismatch at state %d" s
  done;
  let row = Automaton.Csr.row auto and dst = Automaton.Csr.dst auto in
  let owner = Distshard.owner dp and local = Distshard.local dp in
  for s = 0 to n - 1 do
    let v = Distshard.view dp owner.(s) in
    let m = local.(s) in
    check_int "member" s v.Distshard.members.(m);
    let deg = row.(s + 1) - row.(s) in
    if v.Distshard.row.(m + 1) - v.Distshard.row.(m) <> deg then
      Alcotest.failf "degree mismatch at state %d" s;
    for e = 0 to deg - 1 do
      if v.Distshard.dst.(v.Distshard.row.(m) + e) <> dst.(row.(s) + e) then
        Alcotest.failf "adjacency mismatch at state %d edge %d" s e
    done;
    if Bitvec.get (Distshard.blocking dp) s <> (row.(s + 1) = row.(s)) then
      Alcotest.failf "blocking mismatch at state %d" s
  done

let check_verdicts product dp =
  let env = Sat.create product.Compose.auto in
  let senv = Distsat.create dp in
  List.iter
    (fun f ->
      if Sat.holds_initially env f <> Distsat.holds_initially senv f then
        Alcotest.failf "verdict mismatch on %s" (Fmt.to_to_string Ctl.pp f);
      if Sat.failing_initial env f <> Distsat.failing_initial senv f then
        Alcotest.failf "failing-initial mismatch on %s" (Fmt.to_to_string Ctl.pp f))
    formulas

let scenario ?pair ~seed ~shards ~workers ?mem_budget ?spill_dir ?chaos_die_after
    ?(expect_restarts = 0) () =
  with_fleet workers (fun _handles addrs ->
      let left, right =
        match pair with
        | Some p -> p
        | None -> (machine seed, context (seed + 17))
      in
      let product = Compose.parallel left right in
      let dp =
        Distshard.explore
          ~config:(dist_config ?mem_budget ?spill_dir ~shards addrs)
          ?chaos_die_after left right
      in
      Fun.protect
        ~finally:(fun () -> Distshard.close dp)
        (fun () ->
          check_structure product dp;
          check_verdicts product dp;
          if Distshard.restarts dp < expect_restarts then
            Alcotest.failf "expected >= %d worker restart(s), saw %d" expect_restarts
              (Distshard.restarts dp)))

let equivalence_tests =
  List.concat_map
    (fun (workers, shards) ->
      List.map
        (fun seed ->
          test
            (Printf.sprintf "seed %d, %d worker(s), %d shard(s)" seed workers shards)
            (scenario ~seed ~shards ~workers))
        [ 1; 2; 4 ]
      @ [
          test
            (Printf.sprintf "mesh 23x16, %d worker(s), %d shard(s)" workers shards)
            (scenario ~pair:(mesh_pair ~w:23 ~h:16) ~seed:0 ~shards ~workers);
        ])
    [ (1, 2); (2, 4); (2, 8) ]

let recovery_tests =
  [
    test "worker crash mid-build: shards re-dispatched, product identical" (fun () ->
        scenario ~seed:2 ~shards:4 ~workers:2 ~chaos_die_after:(0, 1) ~expect_restarts:1
          ());
    test "worker crash mid-build with spilling engaged" (fun () ->
        scenario ~seed:4 ~shards:4 ~workers:2 ~mem_budget:2048 ~chaos_die_after:(1, 2)
          ~expect_restarts:1 ());
    test "worker lost after the build: verdicts still byte-identical" (fun () ->
        with_fleet 2 (fun handles addrs ->
            let left = machine 3 and right = context 20 in
            let product = Compose.parallel left right in
            let dp =
              Distshard.explore ~config:(dist_config ~shards:4 addrs) left right
            in
            Fun.protect
              ~finally:(fun () -> Distshard.close dp)
              (fun () ->
                check_structure product dp;
                (* kill one worker between the build and the checks: the
                   survivor must adopt its banked segments mid-operator *)
                Distworker.stop (List.hd handles);
                check_verdicts product dp;
                check_bool "a restart was recorded" true (Distshard.restarts dp >= 1))));
  ]

let spill_tests =
  [
    test "tiny budget forces coordinator spills without changing anything" (fun () ->
        let before = Segment.total_spills () in
        scenario ~pair:(mesh_pair ~w:23 ~h:16) ~seed:0 ~shards:4 ~workers:2
          ~mem_budget:1024 ();
        check_bool "spills engaged" true (Segment.total_spills () > before));
    test "spill directory is removed on close" (fun () ->
        let dir = Filename.temp_file "mechadist-test" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o700;
        scenario ~pair:(mesh_pair ~w:23 ~h:16) ~seed:0 ~shards:4 ~workers:2
          ~mem_budget:1024 ~spill_dir:dir ();
        check_bool "no leftovers" true (Sys.readdir dir = [||]);
        Unix.rmdir dir);
  ]

let () =
  Alcotest.run "dist"
    [
      ("equivalence", equivalence_tests);
      ("recovery", recovery_tests);
      ("spill", spill_tests);
    ]
