(* Regenerates test/campaign_seed.canonical — the golden canonical report of
   the bundled campaign matrix that the kernel-equivalence suite compares
   against.  Run after an intentional change to the matrix or the canonical
   format:

     dune exec test/dump_canonical.exe > test/campaign_seed.canonical

   The golden file pins verdicts, iteration counts, learned-state counts and
   the structural closure/product sizes, so any state-space-engine change
   that silently alters semantics (not just speed) fails test_equiv. *)

let () =
  let outcomes = Mechaml_engine.Campaign.run ~jobs:1 (Mechaml_engine.Campaign.bundled ()) in
  print_string (Mechaml_engine.Report.canonical outcomes)
