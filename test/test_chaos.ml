module Chaos = Mechaml_core.Chaos
module Incomplete = Mechaml_core.Incomplete
module Synthesis = Mechaml_core.Synthesis
module Automaton = Mechaml_ts.Automaton
module Refinement = Mechaml_ts.Refinement
module Simulation = Mechaml_ts.Simulation
module Blackbox = Mechaml_legacy.Blackbox
open Helpers

let i ~inputs ~outputs = Incomplete.interaction ~inputs ~outputs

let unit_tests =
  [
    test "chaotic automaton has the Definition 8 shape (Fig. 3)" (fun () ->
        let m = Chaos.chaotic_automaton ~name:"c" ~inputs:[ "a" ] ~outputs:[ "b" ] in
        check_int "two states" 2 (Automaton.num_states m);
        check_int "both initial" 2 (List.length m.Automaton.initial);
        (* s_all: every (A,B) to both states = 2^2 * 2 transitions *)
        check_int "transitions" 8 (Automaton.num_transitions m);
        let s_delta = Automaton.state_index m Chaos.s_delta in
        check_bool "s_delta blocks everything" true (Automaton.is_blocking m s_delta);
        check_bool "chaos proposition set" true
          (Automaton.has_prop m s_delta Chaos.chaos_prop));
    test "alphabet size guard" (fun () ->
        let many = List.init (Chaos.max_alphabet + 1) (Printf.sprintf "s%d") in
        match Chaos.chaotic_automaton ~name:"c" ~inputs:many ~outputs:[] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "17-wide alphabets fit under the raised cap" (fun () ->
        (* 17 signals used to exceed the hard |I| + |O| <= 16 limit *)
        let many = List.init 17 (Printf.sprintf "s%d") in
        let m = Chaos.chaotic_automaton ~name:"c" ~inputs:many ~outputs:[] in
        check_int "one transition per interaction and chaos target" (2 * (1 lsl 17))
          (Automaton.num_transitions m));
    test "21-wide alphabets fit under the 30-signal cap" (fun () ->
        (* 21 signals used to exceed the previous |I| + |O| <= 20 limit *)
        let many = List.init 21 (Printf.sprintf "s%d") in
        let m = Chaos.chaotic_automaton ~name:"c" ~inputs:many ~outputs:[] in
        check_int "one transition per interaction and chaos target" (2 * (1 lsl 21))
          (Automaton.num_transitions m));
    test "closure of the trivial model matches Fig. 4(b)" (fun () ->
        let m = Incomplete.create ~name:"m" ~inputs:[ "x" ] ~outputs:[ "o" ] ~initial_state:"s0" in
        let c = Chaos.closure m in
        (* states: s0 (open), s0@0 (closed), s_all, s_delta *)
        check_int "four states" 4 (Automaton.num_states c);
        check_int "both copies initial" 2 (List.length c.Automaton.initial);
        let closed = Automaton.state_index c ("s0" ^ Chaos.closed_suffix) in
        check_bool "closed copy blocks (nothing known)" true (Automaton.is_blocking c closed);
        let open_ = Automaton.state_index c "s0" in
        (* open copy: all 4 interactions to both chaos states *)
        check_int "open copy fan-out" 8 (List.length (Automaton.transitions_from c open_)));
    test "origin classifies closure state names" (fun () ->
        check_bool "s_all chaotic" true (Chaos.origin Chaos.s_all = Chaos.Chaotic);
        check_bool "s_delta chaotic" true (Chaos.origin Chaos.s_delta = Chaos.Chaotic);
        check_bool "open copy" true (Chaos.origin "noConvoy" = Chaos.Core "noConvoy");
        check_bool "closed copy" true
          (Chaos.origin ("noConvoy" ^ Chaos.closed_suffix) = Chaos.Core "noConvoy"));
    test "known transitions are copied to all four copy pairs" (fun () ->
        let m =
          Incomplete.add_transition
            (Incomplete.create ~name:"m" ~inputs:[ "x" ] ~outputs:[] ~initial_state:"s0")
            ~src:"s0" (i ~inputs:[ "x" ] ~outputs:[]) ~dst:"s1"
        in
        let c = Chaos.closure m in
        let x = Mechaml_ts.Universe.set_of_names c.Automaton.inputs [ "x" ] in
        let closed = Automaton.state_index c ("s0" ^ Chaos.closed_suffix) in
        let succ = Automaton.successors c closed x Mechaml_util.Bitset.empty in
        Alcotest.(check (list string)) "closed copy reaches both copies of s1"
          [ "s1"; "s1" ^ Chaos.closed_suffix ]
          (List.sort compare (List.map (Automaton.state_name c) succ)));
    test "determinism sharpening: known inputs do not escape to chaos" (fun () ->
        let m =
          Incomplete.add_transition
            (Incomplete.create ~name:"m" ~inputs:[ "x" ] ~outputs:[ "o" ] ~initial_state:"s0")
            ~src:"s0" (i ~inputs:[ "x" ] ~outputs:[]) ~dst:"s0"
        in
        let c = Chaos.closure m in
        let x = Mechaml_ts.Universe.set_of_names c.Automaton.inputs [ "x" ] in
        let o = Mechaml_ts.Universe.set_of_names c.Automaton.outputs [ "o" ] in
        let open_ = Automaton.state_index c "s0" in
        (* (x, {o}) would contradict the known response (x, {}) *)
        check_bool "no chaotic variant of a known input" false
          (Automaton.accepts c open_ x o));
    test "refused inputs do not escape to chaos" (fun () ->
        let m =
          Incomplete.add_refusal
            (Incomplete.create ~name:"m" ~inputs:[ "x" ] ~outputs:[] ~initial_state:"s0")
            ~state:"s0" ~inputs:[ "x" ]
        in
        let c = Chaos.closure m in
        let x = Mechaml_ts.Universe.set_of_names c.Automaton.inputs [ "x" ] in
        let open_ = Automaton.state_index c "s0" in
        check_bool "refused input not accepted" false
          (Automaton.accepts c open_ x Mechaml_util.Bitset.empty));
    test "label_of labels the copies, chaos keeps p_chaos" (fun () ->
        let m = Incomplete.create ~name:"m" ~inputs:[] ~outputs:[] ~initial_state:"s0" in
        let c = Chaos.closure ~label_of:(fun s -> [ "role." ^ s ]) m in
        check_bool "open copy labelled" true
          (Automaton.has_prop c (Automaton.state_index c "s0") "role.s0");
        check_bool "closed copy labelled" true
          (Automaton.has_prop c (Automaton.state_index c ("s0" ^ Chaos.closed_suffix)) "role.s0");
        check_bool "chaos labelled p_chaos only" true
          (Automaton.has_prop c (Automaton.state_index c Chaos.s_all) Chaos.chaos_prop));
    test "extra_props extend the universe" (fun () ->
        let m = Incomplete.create ~name:"m" ~inputs:[] ~outputs:[] ~initial_state:"s0" in
        let c = Chaos.closure ~extra_props:[ "role.future" ] m in
        check_bool "declared" true (Mechaml_ts.Universe.mem c.Automaton.props "role.future"));
    test "state names colliding with the construction are rejected" (fun () ->
        let bad = Incomplete.create ~name:"m" ~inputs:[] ~outputs:[] ~initial_state:Chaos.s_all in
        (match Chaos.closure bad with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "s_all collision");
        let bad2 =
          Incomplete.create ~name:"m" ~inputs:[] ~outputs:[] ~initial_state:("x" ^ Chaos.closed_suffix)
        in
        match Chaos.closure bad2 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "suffix collision");
    test "Theorem 1: the real component refines the initial closure" (fun () ->
        let real = Mechaml_scenarios.Railcab.legacy_correct in
        let box = Blackbox.of_automaton real in
        let closure = Synthesis.initial_abstraction box in
        check_bool "M_r ⊑ chaos(M_l0)" true
          (Refinement.refines
             ~label_match:(Simulation.Wildcard Chaos.chaos_prop)
             ~concrete:real ~abstract:closure ()));
    test "Theorem 1 holds after learning a real observation" (fun () ->
        let real = Mechaml_scenarios.Railcab.legacy_correct in
        let box = Blackbox.of_automaton real in
        let obs = Mechaml_legacy.Observation.observe ~box ~inputs:[ []; [ "startConvoy" ]; [] ] in
        let learned = Incomplete.learn_observation (Synthesis.initial_model box) obs in
        let closure = Chaos.closure learned in
        check_bool "M_r ⊑ chaos(learn(M, pi))" true
          (Refinement.refines
             ~label_match:(Simulation.Wildcard Chaos.chaos_prop)
             ~concrete:real ~abstract:closure ()));
    test "closure of a model with a WRONG fact is not an abstraction" (fun () ->
        let real = Mechaml_scenarios.Railcab.legacy_correct in
        let box = Blackbox.of_automaton real in
        (* claim the component refuses silence initially — it does not *)
        let wrong =
          Incomplete.add_refusal (Synthesis.initial_model box) ~state:"noConvoy::default"
            ~inputs:[]
        in
        let closure = Chaos.closure wrong in
        check_bool "refinement fails" false
          (Refinement.refines
             ~label_match:(Simulation.Wildcard Chaos.chaos_prop)
             ~concrete:real ~abstract:closure ()));
  ]

let () = Alcotest.run "chaos" [ ("unit", unit_tests) ]
