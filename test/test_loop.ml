module Loop = Mechaml_core.Loop
module Incomplete = Mechaml_core.Incomplete
module Conformance = Mechaml_core.Conformance
module Checker = Mechaml_mc.Checker
module Compose = Mechaml_ts.Compose
module Run = Mechaml_ts.Run
module Ctl = Mechaml_logic.Ctl
module Blackbox = Mechaml_legacy.Blackbox
open Mechaml_scenarios
open Helpers

let unit_tests =
  [
    test "RailCab correct legacy is proved (Fig. 7 walkthrough)" (fun () ->
        let r = Railcab.run_correct () in
        (match r.Loop.verdict with
        | Loop.Proved -> ()
        | _ -> Alcotest.fail "expected Proved");
        check_int "learns the whole exercised component" 4 r.Loop.states_learned;
        check_bool "several iterations" true (List.length r.Loop.iterations >= 3);
        check_bool "final model conforms to the real component" true
          (Conformance.conforms r.Loop.final_model Railcab.legacy_correct));
    test "RailCab proved verdict is sound against the exact product" (fun () ->
        let r = Railcab.run_correct () in
        (match r.Loop.verdict with Loop.Proved -> () | _ -> Alcotest.fail "expected Proved");
        let exact =
          Compose.parallel Railcab.context
            (Mechaml_ts.Automaton.relabel Railcab.legacy_correct
               ~props:(Mechaml_ts.Universe.of_list [ "rearRole.noConvoy"; "rearRole.convoy" ])
               (fun s ->
                 Mechaml_ts.Universe.set_of_names
                   (Mechaml_ts.Universe.of_list [ "rearRole.noConvoy"; "rearRole.convoy" ])
                   (List.filter
                      (fun p -> p = "rearRole.noConvoy" || p = "rearRole.convoy")
                      (Railcab.label_of
                         (Mechaml_ts.Automaton.state_name Railcab.legacy_correct s)))))
        in
        match
          Checker.check_conjunction exact.Compose.auto [ Railcab.constraint_; Ctl.deadlock_free ]
        with
        | Checker.Holds -> ()
        | Checker.Violated { explanation; _ } -> Alcotest.fail explanation);
    test "RailCab conflicting legacy: fast conflict detection (Listing 1.4)" (fun () ->
        let r = Railcab.run_conflicting () in
        match r.Loop.verdict with
        | Loop.Real_violation { kind = Loop.Property; confirmed_by_test; witness; product; _ } ->
          check_bool "found without a final test" false confirmed_by_test;
          (* the witness really is a run of the last abstraction's product *)
          check_bool "witness is a product run" true (Run.is_run_of product.Compose.auto witness);
          (* and its last state violates the pattern constraint *)
          let final = Run.final_state witness in
          check_bool "rear in convoy" true
            (Mechaml_ts.Automaton.has_prop product.Compose.auto final "rearRole.convoy");
          check_bool "front in noConvoy" true
            (Mechaml_ts.Automaton.has_prop product.Compose.auto final "frontRole.noConvoy")
        | _ -> Alcotest.fail "expected a real property violation");
    test "protocol: correct sender proved, learned model complete" (fun () ->
        let r = Protocol.run_correct () in
        (match r.Loop.verdict with Loop.Proved -> () | _ -> Alcotest.fail "expected Proved");
        check_int "4 states" 4 r.Loop.states_learned;
        check_bool "conforms" true (Conformance.conforms r.Loop.final_model Protocol.sender_correct));
    test "protocol: fire-and-forget sender deadlocks for real" (fun () ->
        let r = Protocol.run_fire_and_forget () in
        match r.Loop.verdict with
        | Loop.Real_violation { kind = Loop.Deadlock; _ } -> ()
        | _ -> Alcotest.fail "expected a real deadlock");
    test "lock: context-restricted learning proves without full exploration" (fun () ->
        let n = 10 and depth = 3 in
        let r =
          Loop.run ~label_of:Families.lock_label_of
            ~context:(Families.lock_context ~n ~depth)
            ~property:Families.lock_property ~legacy:(Families.lock_box ~n) ()
        in
        (match r.Loop.verdict with Loop.Proved -> () | _ -> Alcotest.fail "expected Proved");
        check_bool "learned far fewer states than the component has" true
          (r.Loop.states_learned <= depth + 2);
        check_bool "conforms" true
          (Conformance.conforms r.Loop.final_model (Families.lock_legacy ~n)));
    test "verdicts agree with ground truth on random instances" (fun () ->
        (* For a sample of random legacy/context pairs, the loop's verdict
           must match model checking the exact composition (Lemmas 5/6). *)
        let agree seed =
          let legacy =
            Families.random_machine ~seed ~states:4 ~inputs:[ "u"; "v" ] ~outputs:[ "w" ]
          in
          let context =
            Families.random_context ~seed ~states:3 ~legacy_inputs:[ "u"; "v" ]
              ~legacy_outputs:[ "w" ]
          in
          let box = Blackbox.of_automaton legacy in
          let r = Loop.run ~context ~property:Ctl.True ~legacy:box () in
          let exact = Compose.parallel context legacy in
          let truth = Checker.check exact.Compose.auto Ctl.deadlock_free in
          match (r.Loop.verdict, truth) with
          | Loop.Proved, Checker.Holds -> true
          | Loop.Real_violation _, Checker.Violated _ -> true
          | Loop.Proved, Checker.Violated _ | Loop.Real_violation _, Checker.Holds -> false
          | Loop.Exhausted _, _ | Loop.Degraded _, _ -> false
        in
        List.iter
          (fun seed -> check_bool (Printf.sprintf "seed %d" seed) true (agree seed))
          (List.init 25 (fun i -> i + 1)));
    test "real deadlock counterexamples replay on the exact product" (fun () ->
        let r = Protocol.run_fire_and_forget () in
        match r.Loop.verdict with
        | Loop.Real_violation { witness; product; _ } ->
          (* Project to the legacy side and replay on the component: every
             step must be accepted with the same outputs. *)
          let side = product.Compose.right in
          let tc = Mechaml_testing.Testcase.of_projected_run side (Compose.project_right product witness) in
          let v = Mechaml_testing.Testcase.execute ~box:Protocol.box_fire_and_forget tc in
          check_bool "reproduced" true
            (v.Mechaml_testing.Testcase.classification = Mechaml_testing.Testcase.Reproduced)
        | _ -> Alcotest.fail "expected a violation");
    test "iteration records are monotone in knowledge" (fun () ->
        let r = Railcab.run_correct () in
        let knowledge = List.map (fun (it : Loop.iteration) -> it.Loop.model_knowledge) r.Loop.iterations in
        let rec increasing = function
          | a :: (b :: _ as rest) -> a < b && increasing rest
          | _ -> true
        in
        check_bool "strictly increasing across iterations" true (increasing knowledge));
    test "non-compositional properties are rejected" (fun () ->
        match
          Loop.run ~context:Railcab.context
            ~property:(Mechaml_logic.Parser.parse_exn "E<> frontRole.convoy")
            ~legacy:Railcab.box_correct ()
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "interface mismatch is rejected" (fun () ->
        match
          Loop.run ~context:Protocol.receiver ~property:Ctl.True ~legacy:Railcab.box_correct ()
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "max_iterations yields Exhausted" (fun () ->
        let r =
          Loop.run ~max_iterations:1 ~label_of:Railcab.label_of ~context:Railcab.context
            ~property:Railcab.constraint_ ~legacy:Railcab.box_correct ()
        in
        match r.Loop.verdict with
        | Loop.Exhausted _ -> ()
        | _ -> Alcotest.fail "expected Exhausted");
    test "pp_result renders" (fun () ->
        let r = Railcab.run_conflicting () in
        check_bool "nonempty" true (String.length (Format.asprintf "%a" Loop.pp_result r) > 0));
  ]

let () = Alcotest.run "loop" [ ("unit", unit_tests) ]
