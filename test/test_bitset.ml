module Bitset = Mechaml_util.Bitset
open Helpers

let elems s = Bitset.elements s

let set l = Bitset.of_list l

let unit_tests =
  [
    test "empty has no elements" (fun () ->
        check_bool "is_empty" true (Bitset.is_empty Bitset.empty);
        check_int "cardinal" 0 (Bitset.cardinal Bitset.empty);
        Alcotest.(check (list int)) "elements" [] (elems Bitset.empty));
    test "singleton" (fun () ->
        let s = Bitset.singleton 5 in
        check_bool "mem 5" true (Bitset.mem 5 s);
        check_bool "mem 4" false (Bitset.mem 4 s);
        check_int "cardinal" 1 (Bitset.cardinal s));
    test "add and remove" (fun () ->
        let s = Bitset.add 3 (Bitset.add 1 Bitset.empty) in
        Alcotest.(check (list int)) "elements sorted" [ 1; 3 ] (elems s);
        let s' = Bitset.remove 1 s in
        Alcotest.(check (list int)) "after remove" [ 3 ] (elems s');
        check_bool "remove absent is noop" true (Bitset.equal s' (Bitset.remove 10 s')));
    test "add is idempotent" (fun () ->
        let s = set [ 2; 4 ] in
        check_bool "same" true (Bitset.equal s (Bitset.add 2 s)));
    test "union inter diff" (fun () ->
        let a = set [ 0; 1; 2 ] and b = set [ 2; 3 ] in
        Alcotest.(check (list int)) "union" [ 0; 1; 2; 3 ] (elems (Bitset.union a b));
        Alcotest.(check (list int)) "inter" [ 2 ] (elems (Bitset.inter a b));
        Alcotest.(check (list int)) "diff" [ 0; 1 ] (elems (Bitset.diff a b)));
    test "subset and disjoint" (fun () ->
        check_bool "subset yes" true (Bitset.subset (set [ 1 ]) (set [ 0; 1 ]));
        check_bool "subset no" false (Bitset.subset (set [ 1; 5 ]) (set [ 0; 1 ]));
        check_bool "empty subset of empty" true (Bitset.subset Bitset.empty Bitset.empty);
        check_bool "disjoint yes" true (Bitset.disjoint (set [ 0 ]) (set [ 1 ]));
        check_bool "disjoint no" false (Bitset.disjoint (set [ 0; 2 ]) (set [ 2 ])));
    test "full n" (fun () ->
        Alcotest.(check (list int)) "full 3" [ 0; 1; 2 ] (elems (Bitset.full 3));
        check_bool "full 0 empty" true (Bitset.is_empty (Bitset.full 0)));
    test "all_subsets enumerates the powerset" (fun () ->
        let subs = Bitset.all_subsets 3 in
        check_int "8 subsets" 8 (List.length subs);
        check_int "distinct" 8 (List.length (List.sort_uniq compare subs));
        List.iter
          (fun s -> check_bool "subset of full" true (Bitset.subset s (Bitset.full 3)))
          subs);
    test "all_subsets rejects huge universes" (fun () ->
        Alcotest.check_raises "too big" (Invalid_argument "Bitset.all_subsets: universe too large")
          (fun () -> ignore (Bitset.all_subsets 31)));
    test "shift translates elements" (fun () ->
        Alcotest.(check (list int)) "shifted" [ 4; 6 ] (elems (Bitset.shift 3 (set [ 1; 3 ]))));
    test "map" (fun () ->
        Alcotest.(check (list int)) "mapped" [ 0; 2 ]
          (elems (Bitset.map (fun i -> i * 2) (set [ 0; 1 ]))));
    test "fold, iter, for_all, exists" (fun () ->
        let s = set [ 1; 2; 5 ] in
        check_int "fold sum" 8 (Bitset.fold ( + ) s 0);
        let seen = ref [] in
        Bitset.iter (fun i -> seen := i :: !seen) s;
        Alcotest.(check (list int)) "iter order" [ 1; 2; 5 ] (List.rev !seen);
        check_bool "for_all" true (Bitset.for_all (fun i -> i > 0) s);
        check_bool "exists" true (Bitset.exists (fun i -> i = 5) s);
        check_bool "not exists" false (Bitset.exists (fun i -> i = 4) s));
    test "out-of-range indices are rejected" (fun () ->
        List.iter
          (fun f ->
            match f () with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail "expected Invalid_argument")
          [
            (fun () -> ignore (Bitset.singleton (-1)));
            (fun () -> ignore (Bitset.singleton 62));
            (fun () -> ignore (Bitset.add 99 Bitset.empty));
            (fun () -> ignore (Bitset.full 63));
          ]);
    test "mem out of range is false, not an error" (fun () ->
        check_bool "negative" false (Bitset.mem (-1) (set [ 0 ]));
        check_bool "too large" false (Bitset.mem 99 (set [ 0 ])));
    test "pp prints names" (fun () ->
        let names = function 0 -> "a" | 1 -> "b" | _ -> "?" in
        check_string "rendering" "{a, b}" (Format.asprintf "%a" (Bitset.pp ~names) (set [ 0; 1 ])));
  ]

let gen_small = QCheck.Gen.(list_size (int_bound 10) (int_bound 20))

let arb_set =
  QCheck.make ~print:(fun l -> QCheck.Print.(list int) l) gen_small

let property_tests =
  [
    qcheck "of_list/elements roundtrip is sorted dedup" arb_set (fun l ->
        Bitset.elements (set l) = List.sort_uniq compare l);
    qcheck "union is commutative" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        Bitset.equal (Bitset.union (set a) (set b)) (Bitset.union (set b) (set a)));
    qcheck "inter distributes over union" (QCheck.triple arb_set arb_set arb_set)
      (fun (a, b, c) ->
        let a = set a and b = set b and c = set c in
        Bitset.equal (Bitset.inter a (Bitset.union b c))
          (Bitset.union (Bitset.inter a b) (Bitset.inter a c)));
    qcheck "diff then union restores superset" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        let a = set a and b = set b in
        Bitset.equal (Bitset.union (Bitset.diff a b) (Bitset.inter a b)) a);
    qcheck "cardinal of union with disjoint parts adds" arb_set (fun l ->
        let a = set l in
        let shifted = Bitset.shift 21 a in
        Bitset.cardinal (Bitset.union a shifted) = 2 * Bitset.cardinal a
        || Bitset.is_empty a);
    qcheck "to_int/of_int_unsafe roundtrip" arb_set (fun l ->
        Bitset.equal (set l) (Bitset.of_int_unsafe (Bitset.to_int (set l))));
  ]

let () = Alcotest.run "bitset" [ ("unit", unit_tests); ("properties", property_tests) ]
