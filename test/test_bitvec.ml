(* Unit and property tests for the word-packed mutable bit vector backing the
   model checker's sat-sets and visited sets. *)

module Bitvec = Mechaml_util.Bitvec
open Helpers

let unit_tests =
  [
    test "create starts all-clear, create_full all-set" (fun () ->
        let v = Bitvec.create 100 in
        check_int "empty count" 0 (Bitvec.count v);
        check_bool "is_empty" true (Bitvec.is_empty v);
        let f = Bitvec.create_full 100 in
        check_int "full count" 100 (Bitvec.count f);
        for i = 0 to 99 do
          check_bool "full bit" true (Bitvec.get f i)
        done);
    test "set/clear round-trip across word boundaries" (fun () ->
        let v = Bitvec.create 200 in
        List.iter (fun i -> Bitvec.set v i) [ 0; 62; 63; 64; 125; 126; 199 ];
        check_int "count" 7 (Bitvec.count v);
        Bitvec.clear v 63;
        check_bool "cleared" false (Bitvec.get v 63);
        check_bool "neighbour kept" true (Bitvec.get v 64);
        check_int "count after clear" 6 (Bitvec.count v));
    test "lognot respects the trailing partial word" (fun () ->
        let v = Bitvec.create 70 in
        Bitvec.set v 3;
        let n = Bitvec.lognot v in
        check_int "complement count" 69 (Bitvec.count n);
        check_bool "flipped" false (Bitvec.get n 3);
        check_bool "in-range high bit" true (Bitvec.get n 69));
    test "binary operations on mismatched lengths raise" (fun () ->
        let a = Bitvec.create 10 and b = Bitvec.create 11 in
        match Bitvec.logand a b with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "iter_true enumerates in increasing order" (fun () ->
        let v = Bitvec.create 130 in
        let expect = [ 1; 5; 62; 63; 64; 129 ] in
        List.iter (Bitvec.set v) expect;
        let got = ref [] in
        Bitvec.iter_true (fun i -> got := i :: !got) v;
        Alcotest.(check (list int)) "members" expect (List.rev !got));
  ]

let prop_tests =
  [
    qcheck "of_bool_array/to_bool_array round-trips"
      QCheck.(array_of_size Gen.(int_range 0 300) bool)
      (fun a -> Bitvec.to_bool_array (Bitvec.of_bool_array a) = a);
    qcheck "logical ops agree with pointwise booleans"
      QCheck.(
        pair (array_of_size Gen.(int_range 1 200) bool) (array_of_size Gen.(int_range 1 200) bool))
      (fun (a, b) ->
        let n = min (Array.length a) (Array.length b) in
        let a = Array.sub a 0 n and b = Array.sub b 0 n in
        let va = Bitvec.of_bool_array a and vb = Bitvec.of_bool_array b in
        Bitvec.to_bool_array (Bitvec.logand va vb) = Array.map2 ( && ) a b
        && Bitvec.to_bool_array (Bitvec.logor va vb) = Array.map2 ( || ) a b
        && Bitvec.to_bool_array (Bitvec.logandnot va vb)
           = Array.map2 (fun x y -> x && not y) a b);
    qcheck "count equals the number of set booleans"
      QCheck.(array_of_size Gen.(int_range 0 300) bool)
      (fun a ->
        Bitvec.count (Bitvec.of_bool_array a)
        = Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 a);
    qcheck "equal is structural"
      QCheck.(array_of_size Gen.(int_range 0 200) bool)
      (fun a ->
        let v = Bitvec.of_bool_array a and w = Bitvec.of_bool_array a in
        Bitvec.equal v w);
    (* ranges are picked from the pair of arrays, so every alignment of word
       boundaries (including len = 0 and full-width copies) gets exercised *)
    qcheck "blit agrees with the bool-array model"
      QCheck.(
        pair
          (pair (array_of_size Gen.(int_range 1 300) bool) small_nat)
          (pair (array_of_size Gen.(int_range 1 300) bool) (pair small_nat small_nat)))
      (fun ((a, src_pos), (b, (dst_pos, len))) ->
        let src_pos = src_pos mod Array.length a in
        let dst_pos = dst_pos mod Array.length b in
        let len = len mod (1 + min (Array.length a - src_pos) (Array.length b - dst_pos)) in
        let va = Bitvec.of_bool_array a and vb = Bitvec.of_bool_array b in
        Bitvec.blit ~src:va ~src_pos ~dst:vb ~dst_pos ~len;
        Array.blit a src_pos b dst_pos len;
        Bitvec.to_bool_array vb = b && Bitvec.to_bool_array va = a);
    qcheck "overlapping self-blit agrees with the bool-array model"
      QCheck.(pair (array_of_size Gen.(int_range 1 300) bool) (pair small_nat (pair small_nat small_nat)))
      (fun (a, (src_pos, (dst_pos, len))) ->
        let src_pos = src_pos mod Array.length a in
        let dst_pos = dst_pos mod Array.length a in
        let len = len mod (1 + min (Array.length a - src_pos) (Array.length a - dst_pos)) in
        let v = Bitvec.of_bool_array a in
        Bitvec.blit ~src:v ~src_pos ~dst:v ~dst_pos ~len;
        Array.blit a src_pos a dst_pos len;
        Bitvec.to_bool_array v = a);
    qcheck "sub and sub_into round-trip through the model"
      QCheck.(pair (array_of_size Gen.(int_range 1 300) bool) (pair small_nat small_nat))
      (fun (a, (pos, len)) ->
        let pos = pos mod Array.length a in
        let len = len mod (1 + (Array.length a - pos)) in
        let v = Bitvec.of_bool_array a in
        let s = Bitvec.sub v ~pos ~len in
        let d = Bitvec.of_bool_array (Array.make (len + 7) true) in
        Bitvec.sub_into v ~pos ~len d;
        let expect = Array.sub a pos len in
        Bitvec.to_bool_array s = expect
        && Array.sub (Bitvec.to_bool_array d) 0 len = expect
        && Array.sub (Bitvec.to_bool_array d) len 7 = Array.make 7 true);
    qcheck "iter_true_range matches the filtered enumeration"
      QCheck.(pair (array_of_size Gen.(int_range 0 300) bool) (pair small_nat small_nat))
      (fun (a, (x, y)) ->
        let n = Array.length a in
        let lo = if n = 0 then 0 else x mod (n + 1) in
        let hi = lo + if n - lo = 0 then 0 else y mod (n - lo + 1) in
        let v = Bitvec.of_bool_array a in
        let got = ref [] in
        Bitvec.iter_true_range (fun i -> got := i :: !got) v ~lo ~hi;
        let expect = ref [] in
        Bitvec.iter_true (fun i -> if i >= lo && i < hi then expect := i :: !expect) v;
        !got = !expect);
  ]

let () = Alcotest.run "bitvec" [ ("unit", unit_tests); ("prop", prop_tests) ]
