(* Property-based tests mechanising the paper's meta-theory on randomly
   generated models: Lemmas 1/2 (refinement vs deadlock freedom and
   composition), ACTL preservation, Theorem 1 (chaotic closure is a safe
   abstraction of any observation-conforming source), Lemma 7 (learning
   preserves conformance), Theorem 2 (loop verdicts agree with ground truth),
   plus checker dualities. *)

module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe
module Compose = Mechaml_ts.Compose
module Refinement = Mechaml_ts.Refinement
module Simulation = Mechaml_ts.Simulation
module Ctl = Mechaml_logic.Ctl
module Sat = Mechaml_mc.Sat
module Checker = Mechaml_mc.Checker
module Prng = Mechaml_util.Prng
module Incomplete = Mechaml_core.Incomplete
module Chaos = Mechaml_core.Chaos
module Synthesis = Mechaml_core.Synthesis
module Conformance = Mechaml_core.Conformance
module Loop = Mechaml_core.Loop
module Blackbox = Mechaml_legacy.Blackbox
module Observation = Mechaml_legacy.Observation
module Families = Mechaml_scenarios.Families
open Helpers

let inputs = [ "i1"; "i2" ]

let outputs = [ "o1" ]

let props = [ "p"; "q" ]

(* A random (possibly non-deterministic) labelled automaton from a seed. *)
let random_auto ?(prefix = "m") seed =
  let rng = Prng.create ~seed in
  let n = 1 + Prng.int rng 4 in
  let b =
    Automaton.Builder.create ~name:(prefix ^ string_of_int seed) ~inputs ~outputs ~props ()
  in
  let name i = Printf.sprintf "%s%d" prefix i in
  for i = 0 to n - 1 do
    let lbl = List.filter (fun _ -> Prng.bool rng) props in
    ignore (Automaton.Builder.add_state b ~props:lbl (name i))
  done;
  for i = 0 to n - 1 do
    let k = Prng.int rng 4 in
    for _ = 1 to k do
      let ins = List.filter (fun _ -> Prng.bool rng) inputs in
      let outs = List.filter (fun _ -> Prng.bool rng) outputs in
      Automaton.Builder.add_trans b ~src:(name i) ~inputs:ins ~outputs:outs
        ~dst:(name (Prng.int rng n)) ()
    done
  done;
  Automaton.Builder.set_initial b [ name 0 ];
  Automaton.Builder.build b

(* Split every state in two behaviourally identical copies: the result is
   trace- and refusal-equivalent, hence a (non-trivial) refinement in both
   directions. *)
let split_states seed (m : Automaton.t) =
  let rng = Prng.create ~seed:(seed lxor 0xbeef) in
  let b =
    Automaton.Builder.create ~name:(m.Automaton.name ^ "_split")
      ~inputs:(Universe.to_list m.Automaton.inputs)
      ~outputs:(Universe.to_list m.Automaton.outputs)
      ~props:(Universe.to_list m.Automaton.props) ()
  in
  let copy s i = Automaton.state_name m s ^ "~" ^ string_of_int i in
  let n = Automaton.num_states m in
  for s = 0 to n - 1 do
    let lbl = Universe.names_of_set m.Automaton.props (Automaton.label m s) in
    ignore (Automaton.Builder.add_state b ~props:lbl (copy s 0));
    ignore (Automaton.Builder.add_state b ~props:lbl (copy s 1))
  done;
  for s = 0 to n - 1 do
    List.iter
      (fun (t : Automaton.trans) ->
        let ins = Universe.names_of_set m.Automaton.inputs t.input in
        let outs = Universe.names_of_set m.Automaton.outputs t.output in
        (* each copy gets the transition towards a randomly chosen copy of
           the target — both copies stay trace-equivalent to the original *)
        List.iter
          (fun i ->
            Automaton.Builder.add_trans b ~src:(copy s i) ~inputs:ins ~outputs:outs
              ~dst:(copy t.dst (Prng.int rng 2)) ())
          [ 0; 1 ])
      (Automaton.transitions_from m s)
  done;
  Automaton.Builder.set_initial b [ copy (List.hd m.Automaton.initial) 0 ];
  Automaton.Builder.build b

(* A random ACTL formula over the shared propositions. *)
let random_actl seed =
  let rng = Prng.create ~seed:(seed lxor 0xac71) in
  let literal () =
    let p = Ctl.Prop (Prng.pick rng props) in
    if Prng.bool rng then p else Ctl.Not p
  in
  let rec go depth =
    if depth = 0 then literal ()
    else
      match Prng.int rng 6 with
      | 0 -> Ctl.And (go (depth - 1), go (depth - 1))
      | 1 -> Ctl.Or (go (depth - 1), go (depth - 1))
      | 2 -> Ctl.Ag (None, go (depth - 1))
      | 3 -> Ctl.Ax (go (depth - 1))
      | 4 ->
        let lo = Prng.int rng 2 in
        Ctl.Af (Some (Ctl.bounds lo (lo + Prng.int rng 3)), go (depth - 1))
      | _ -> Ctl.Au (None, go (depth - 1), go (depth - 1))
  in
  go 2

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000)

let deterministic_legacy seed =
  Families.random_machine ~seed ~states:(2 + (seed mod 4)) ~inputs:[ "u"; "v" ]
    ~outputs:[ "w" ]

let random_word rng alphabet len = List.init len (fun _ -> Prng.pick rng alphabet)

let property_tests =
  [
    qcheck ~count:60 "refinement is reflexive" seed_arb (fun seed ->
        let m = random_auto seed in
        Refinement.refines ~concrete:m ~abstract:m ());
    qcheck ~count:60 "state splitting refines in both directions" seed_arb (fun seed ->
        let m = random_auto seed in
        let s = split_states seed m in
        Refinement.refines ~concrete:s ~abstract:m ()
        && Refinement.refines ~concrete:m ~abstract:s ());
    qcheck ~count:60 "Lemma 1: refinement preserves deadlock freedom" seed_arb (fun seed ->
        let m = random_auto seed in
        let s = split_states seed m in
        (not (Checker.holds m Ctl.deadlock_free)) || Checker.holds s Ctl.deadlock_free);
    qcheck ~count:60 "refinement preserves ACTL properties" seed_arb (fun seed ->
        let m = random_auto seed in
        let s = split_states seed m in
        let phi = random_actl seed in
        (not (Checker.holds m phi)) || Checker.holds s phi);
    qcheck ~count:40 "Lemma 2: composition preserves refinement" seed_arb (fun seed ->
        (* context over disjoint signals, connected to the machine's I/O *)
        let m = random_auto ~prefix:"r" seed in
        let s = split_states seed m in
        let ctx =
          let rng = Prng.create ~seed:(seed + 7) in
          let b =
            Automaton.Builder.create ~name:"ctx" ~inputs:[ "o1" ] ~outputs:[ "i1"; "i2" ] ()
          in
          for i = 0 to 2 do
            let ins = List.filter (fun _ -> Prng.bool rng) [ "o1" ] in
            let outs = List.filter (fun _ -> Prng.bool rng) [ "i1"; "i2" ] in
            Automaton.Builder.add_trans b
              ~src:(Printf.sprintf "c%d" i)
              ~inputs:ins ~outputs:outs
              ~dst:(Printf.sprintf "c%d" (Prng.int rng 3))
              ()
          done;
          Automaton.Builder.set_initial b [ "c0" ];
          Automaton.Builder.build b
        in
        let ps = Compose.parallel ctx s and pm = Compose.parallel ctx m in
        Refinement.refines ~concrete:ps.Compose.auto ~abstract:pm.Compose.auto ());
    qcheck ~count:40 "Theorem 1: closure of learned observations abstracts the component"
      seed_arb
      (fun seed ->
        let real = deterministic_legacy seed in
        let box = Blackbox.of_automaton real in
        let rng = Prng.create ~seed:(seed + 99) in
        let alphabet = [ []; [ "u" ]; [ "v" ] ] in
        (* learn a few random observations *)
        let model =
          List.fold_left
            (fun acc _ ->
              let word = random_word rng alphabet (1 + Prng.int rng 5) in
              Incomplete.learn_observation acc (Observation.observe ~box ~inputs:word))
            (Synthesis.initial_model box)
            (List.init 3 Fun.id)
        in
        Conformance.conforms model real
        && Refinement.refines
             ~label_match:(Simulation.Wildcard Chaos.chaos_prop)
             ~concrete:real
             ~abstract:(Chaos.closure model)
             ());
    qcheck ~count:30 "Theorem 2: loop verdict matches ground truth" seed_arb (fun seed ->
        let legacy = deterministic_legacy seed in
        let context =
          Families.random_context ~seed ~states:3 ~legacy_inputs:[ "u"; "v" ]
            ~legacy_outputs:[ "w" ]
        in
        let r = Loop.run ~context ~property:Ctl.True ~legacy:(Blackbox.of_automaton legacy) () in
        let exact = Compose.parallel context legacy in
        let truth = Checker.holds exact.Compose.auto Ctl.deadlock_free in
        match r.Loop.verdict with
        | Loop.Proved -> truth
        | Loop.Real_violation _ -> not truth
        | Loop.Exhausted _ | Loop.Degraded _ -> false);
    qcheck ~count:30 "Theorem 2 with labelled safety properties" seed_arb (fun seed ->
        let legacy = deterministic_legacy seed in
        let context =
          Families.random_context ~seed:(seed + 23) ~states:3 ~legacy_inputs:[ "u"; "v" ]
            ~legacy_outputs:[ "w" ]
        in
        let label_of s = [ "leg." ^ s ] in
        (* forbid a pseudo-random legacy state *)
        let victim =
          Automaton.state_name legacy (seed mod Automaton.num_states legacy)
        in
        let property = Ctl.ag (Ctl.Not (Ctl.Prop ("leg." ^ victim))) in
        let r =
          Loop.run ~label_of ~context ~property ~legacy:(Blackbox.of_automaton legacy) ()
        in
        let labelled =
          let props =
            List.init (Automaton.num_states legacy) (fun s ->
                label_of (Automaton.state_name legacy s))
            |> List.concat |> List.sort_uniq compare
          in
          let u = Universe.of_list props in
          Automaton.relabel legacy ~props:u (fun s ->
              Universe.set_of_names u (label_of (Automaton.state_name legacy s)))
        in
        let exact = Compose.parallel context labelled in
        let truth =
          Checker.check_conjunction exact.Compose.auto [ property; Ctl.deadlock_free ]
        in
        match (r.Loop.verdict, truth) with
        | Loop.Proved, Checker.Holds -> true
        | Loop.Real_violation _, Checker.Violated _ -> true
        | _ -> false);
    qcheck ~count:30 "loop never learns facts the component does not have" seed_arb
      (fun seed ->
        let legacy = deterministic_legacy seed in
        let context =
          Families.random_context ~seed:(seed * 3) ~states:3 ~legacy_inputs:[ "u"; "v" ]
            ~legacy_outputs:[ "w" ]
        in
        let r = Loop.run ~context ~property:Ctl.True ~legacy:(Blackbox.of_automaton legacy) () in
        Conformance.conforms r.Loop.final_model legacy);
    qcheck ~count:60 "AG duality with EF" seed_arb (fun seed ->
        let m = random_auto seed in
        let env = Sat.create m in
        let p = Ctl.Prop "p" in
        Sat.sat env (Ctl.ag p)
        = Array.map not (Sat.sat env (Ctl.Ef (None, Ctl.Not p))));
    qcheck ~count:60 "AF duality with EG over maximal runs" seed_arb (fun seed ->
        let m = random_auto seed in
        let env = Sat.create m in
        let p = Ctl.Prop "q" in
        Sat.sat env (Ctl.af p) = Array.map not (Sat.sat env (Ctl.Eg (None, Ctl.Not p))));
    qcheck ~count:60 "bounded EF windows are monotone" seed_arb (fun seed ->
        let m = random_auto seed in
        let env = Sat.create m in
        let p = Ctl.Prop "p" in
        let upto k = Sat.sat env (Ctl.Ef (Some (Ctl.bounds 0 k), p)) in
        let a = upto 2 and b = upto 3 in
        Array.for_all Fun.id (Array.mapi (fun i x -> (not x) || b.(i)) a));
    qcheck ~count:60 "unbounded EF dominates every bounded window" seed_arb (fun seed ->
        let m = random_auto seed in
        let env = Sat.create m in
        let p = Ctl.Prop "q" in
        let bounded = Sat.sat env (Ctl.Ef (Some (Ctl.bounds 0 4), p)) in
        let unbounded = Sat.sat env (Ctl.Ef (None, p)) in
        Array.for_all Fun.id (Array.mapi (fun i x -> (not x) || unbounded.(i)) bounded));
    qcheck ~count:60 "nnf preserves satisfaction" seed_arb (fun seed ->
        let m = random_auto seed in
        let env = Sat.create m in
        let phi = random_actl seed in
        Sat.sat env phi = Sat.sat env (Ctl.nnf phi)
        && Sat.sat env (Ctl.Not phi) = Sat.sat env (Ctl.nnf (Ctl.Not phi)));
    qcheck ~count:60 "printer/parser roundtrip on random ACTL" seed_arb (fun seed ->
        let phi = random_actl seed in
        match Mechaml_logic.Parser.parse (Ctl.to_string phi) with
        | Ok phi' -> Ctl.equal phi phi'
        | Error _ -> false);
    qcheck ~count:30 "L* with a perfect oracle learns random machines" seed_arb (fun seed ->
        let auto = deterministic_legacy seed in
        let alphabet = [ []; [ "u" ]; [ "v" ] ] in
        let truth = Mechaml_learnlib.Mealy.of_automaton ~alphabet auto in
        let r =
          Mechaml_learnlib.Lstar.learn ~box:(Blackbox.of_automaton auto) ~alphabet
            ~equivalence:(Mechaml_learnlib.Lstar.Perfect truth) ()
        in
        Mechaml_learnlib.Mealy.equivalent truth r.Mechaml_learnlib.Lstar.hypothesis = None);
    qcheck ~count:60 "textio roundtrip preserves behaviour on random automata" seed_arb
      (fun seed ->
        let m = random_auto seed in
        let m' = Mechaml_ts.Textio.parse_exn (Mechaml_ts.Textio.print m) in
        Refinement.refines ~concrete:m ~abstract:m' ()
        && Refinement.refines ~concrete:m' ~abstract:m ());
    qcheck ~count:40 "knowledge_io roundtrip preserves learned models" seed_arb (fun seed ->
        let real = deterministic_legacy seed in
        let box = Blackbox.of_automaton real in
        let rng = Prng.create ~seed:(seed + 17) in
        let alphabet = [ []; [ "u" ]; [ "v" ] ] in
        let model =
          List.fold_left
            (fun acc _ ->
              let word = random_word rng alphabet (1 + Prng.int rng 4) in
              Incomplete.learn_observation acc (Observation.observe ~box ~inputs:word))
            (Synthesis.initial_model box)
            (List.init 2 Fun.id)
        in
        let model' =
          Mechaml_core.Knowledge_io.parse_exn (Mechaml_core.Knowledge_io.print model)
        in
        model'.Incomplete.trans = model.Incomplete.trans
        && model'.Incomplete.refusals = model.Incomplete.refusals);
    qcheck ~count:40 "on-the-fly agrees with the materialized checker" seed_arb (fun seed ->
        let legacy = deterministic_legacy seed in
        let context =
          Families.random_context ~seed:(seed + 5) ~states:3 ~legacy_inputs:[ "u"; "v" ]
            ~legacy_outputs:[ "w" ]
        in
        let fly = Mechaml_mc.Onthefly.check_safety ~left:context ~right:legacy () in
        let p = Compose.parallel context legacy in
        let materialized = Checker.holds p.Compose.auto Ctl.deadlock_free in
        (match fly.Mechaml_mc.Onthefly.verdict with
        | Mechaml_mc.Onthefly.Holds -> materialized
        | Mechaml_mc.Onthefly.Deadlocked _ -> not materialized
        | Mechaml_mc.Onthefly.Bad_state _ -> false)
        && fly.Mechaml_mc.Onthefly.pairs_explored <= Automaton.num_states p.Compose.auto + 1);
    qcheck ~count:30 "DFA L* learns random targets minimally" seed_arb (fun seed ->
        let target = Mechaml_learnlib.Dfa.random ~seed ~states:5 ~alphabet:[ "a"; "b" ] in
        let minimal = Mechaml_learnlib.Dfa.minimize target in
        let teacher, _ = Mechaml_learnlib.Dfa_lstar.teacher_of_dfa target in
        let r = Mechaml_learnlib.Dfa_lstar.learn ~alphabet:[ "a"; "b" ] ~teacher () in
        Mechaml_learnlib.Dfa.equivalent target r.Mechaml_learnlib.Dfa_lstar.hypothesis = None
        && Mechaml_learnlib.Dfa.num_states r.Mechaml_learnlib.Dfa_lstar.hypothesis
           = Mechaml_learnlib.Dfa.num_states minimal);
    qcheck ~count:30 "batched loops agree with unbatched verdicts" seed_arb (fun seed ->
        let legacy = deterministic_legacy seed in
        let context =
          Families.random_context ~seed:(seed + 9) ~states:3 ~legacy_inputs:[ "u"; "v" ]
            ~legacy_outputs:[ "w" ]
        in
        let verdict k =
          match
            (Loop.run ~counterexamples_per_iteration:k ~context ~property:Ctl.True
               ~legacy:(Blackbox.of_automaton legacy) ())
              .Loop.verdict
          with
          | Loop.Proved -> `P
          | Loop.Real_violation _ -> `V
          | Loop.Exhausted _ -> `E
          | Loop.Degraded _ -> `D
        in
        verdict 1 = verdict 3);
    qcheck ~count:40 "composition projections are genuine runs" seed_arb (fun seed ->
        let legacy = deterministic_legacy seed in
        let context =
          Families.random_context ~seed:(seed + 1) ~states:3 ~legacy_inputs:[ "u"; "v" ]
            ~legacy_outputs:[ "w" ]
        in
        let p = Compose.parallel context legacy in
        match Mechaml_ts.Reach.shortest_run_to p.Compose.auto (fun _ -> true) with
        | None -> true
        | Some _ ->
          (* walk a short random run of the product and project it *)
          let rng = Prng.create ~seed in
          let rec walk s n acc =
            if n = 0 then List.rev acc
            else
              match Automaton.transitions_from p.Compose.auto s with
              | [] -> List.rev acc
              | ts ->
                let t = Prng.pick rng ts in
                walk t.Automaton.dst (n - 1) ((s, t) :: acc)
          in
          let steps = walk (List.hd p.Compose.auto.Automaton.initial) 4 [] in
          if steps = [] then true
          else begin
            let states =
              List.map fst steps @ [ (snd (List.nth steps (List.length steps - 1))).Automaton.dst ]
            in
            let io = List.map (fun (_, t) -> (t.Automaton.input, t.Automaton.output)) steps in
            let run = Mechaml_ts.Run.regular ~states ~io in
            Mechaml_ts.Run.is_run_of p.Compose.left (Compose.project_left p run)
            && Mechaml_ts.Run.is_run_of p.Compose.right (Compose.project_right p run)
          end);
  ]

let () = Alcotest.run "properties" [ ("qcheck", property_tests) ]
