(* Obs.Json is the wire codec of the verification daemon: it parses bytes
   from the network, so every malformed input — truncated bodies, absurd
   nesting, bad escapes — must come back as [Error], never as an uncaught
   exception, and everything the printer emits must parse back to the same
   value. *)

module Json = Mechaml_obs.Json
open Helpers

(* -- generators ------------------------------------------------------------ *)

(* Random values of bounded depth.  Numbers are 53-bit-safe integers so the
   round trip is exact ([to_string]/[parse] only guarantee equality up to
   float formatting). *)
let value_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun n -> Json.Num (float_of_int n)) (int_range (-1_000_000) 1_000_000);
        map (fun s -> Json.Str s) (string_size ~gen:printable (int_bound 20));
        map (fun s -> Json.Str s) (string_size (int_bound 20));
      ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (1, map (fun l -> Json.List l) (list_size (int_bound 4) (value (depth - 1))));
          ( 1,
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (int_bound 4)
                 (pair (string_size ~gen:printable (int_bound 8)) (value (depth - 1)))) );
        ]
  in
  value 4

let arbitrary_value = QCheck.make ~print:Json.to_string value_gen

(* -- properties ------------------------------------------------------------ *)

let roundtrip_prop v =
  match Json.parse (Json.to_string v) with
  | Ok v' when v' = v -> true
  | Ok v' ->
    QCheck.Test.fail_reportf "reparse changed the value:\n  %s\n  %s" (Json.to_string v)
      (Json.to_string v')
  | Error e -> QCheck.Test.fail_reportf "printer output rejected: %s" e

(* Whatever bytes arrive, [parse] returns — [Ok] or [Error], never raises. *)
let total_prop s =
  match Json.parse s with Ok _ | Error _ -> true

(* Truncating valid JSON anywhere must never raise either, and a strict
   prefix of a scalar-free compound value must fail to parse. *)
let truncation_prop v =
  let s = Json.to_string v in
  let n = String.length s in
  for i = 0 to n - 1 do
    match Json.parse (String.sub s 0 i) with Ok _ | Error _ -> ()
  done;
  true

let property_tests =
  [
    qcheck ~count:500 "print/parse round trip" arbitrary_value roundtrip_prop;
    qcheck ~count:500 "parse is total on arbitrary bytes"
      QCheck.(make Gen.(string_size (int_bound 64)))
      total_prop;
    qcheck ~count:200 "parse is total on every truncation" arbitrary_value
      truncation_prop;
  ]

(* -- malformed-input suite ------------------------------------------------- *)

let rejects name input =
  test name (fun () ->
      match Json.parse input with
      | Error _ -> ()
      | Ok v -> Alcotest.failf "accepted %S as %s" input (Json.to_string v))

let accepts name input expected =
  test name (fun () ->
      match Json.parse input with
      | Ok v -> check_string name expected (Json.to_string v)
      | Error e -> Alcotest.failf "rejected %S: %s" input e)

let malformed_tests =
  [
    rejects "empty input" "";
    rejects "whitespace only" "  \t\n";
    rejects "truncated object" "{\"a\": 1";
    rejects "truncated array" "[1, 2";
    rejects "truncated string" "\"abc";
    rejects "truncated literal" "tru";
    rejects "truncated number" "-";
    rejects "missing value after colon" "{\"a\":}";
    rejects "missing colon" "{\"a\" 1}";
    rejects "trailing comma in array" "[1,]";
    rejects "trailing comma in object" "{\"a\":1,}";
    rejects "trailing garbage" "{} x";
    rejects "two top-level values" "1 2";
    rejects "bad escape" "\"\\q\"";
    rejects "truncated unicode escape" "\"\\u12\"";
    rejects "non-hex unicode escape" "\"\\uzzzz\"";
    rejects "raw control character in string" "\"a\x01b\"";
    rejects "raw newline in string" "\"a\nb\"";
    rejects "unquoted key" "{a: 1}";
    rejects "single quotes" "'a'";
    rejects "leading plus on number" "+1";
    rejects "hex number" "0x10";
    rejects "lone surrogate-free backslash" "\"\\\"";
    accepts "escapes decode" {|"\u0041\n\t\\"|} "\"A\\n\\t\\\\\"";
    accepts "nested structures parse" {|{"a":[1,{"b":[]}],"c":null}|}
      {|{"a":[1,{"b":[]}],"c":null}|};
  ]

(* -- nesting depth --------------------------------------------------------- *)

let nested ~depth =
  String.concat "" (List.init depth (fun _ -> "["))
  ^ "1"
  ^ String.concat "" (List.init depth (fun _ -> "]"))

let depth_tests =
  [
    test "512 levels of nesting parse" (fun () ->
        match Json.parse (nested ~depth:512) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "rejected depth 512: %s" e);
    test "513 levels are an error, not a crash" (fun () ->
        match Json.parse (nested ~depth:513) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted beyond the depth cap");
    test "100k open brackets error instead of overflowing the stack" (fun () ->
        match Json.parse (String.make 100_000 '[') with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted unterminated deep nesting");
    test "deep objects are bounded too" (fun () ->
        let b = Buffer.create 8192 in
        for _ = 1 to 1000 do
          Buffer.add_string b "{\"k\":"
        done;
        Buffer.add_string b "1";
        for _ = 1 to 1000 do
          Buffer.add_char b '}'
        done;
        match Json.parse (Buffer.contents b) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted 1000-deep object");
  ]

let () =
  Alcotest.run "json"
    [
      ("properties", property_tests);
      ("malformed", malformed_tests);
      ("depth", depth_tests);
    ]
