(* Kernel-equivalence suite: the state-space engine rewrite (packed automata,
   bucketed products, bitset fixpoints) must be a pure speedup.  These tests
   pin the observable behaviour of the whole pipeline to the seed engine:

   - the canonical report of the bundled campaign matrix is byte-identical to
     the committed golden file [campaign_seed.canonical] (regenerate it with
     [dune exec test/dump_canonical.exe] only after an *intentional* matrix
     or format change);
   - worker count does not leak into results: jobs:1 and jobs:4 agree on the
     per-job Loop verdicts and on the whole canonical report. *)

module Campaign = Mechaml_engine.Campaign
module Report = Mechaml_engine.Report
open Helpers

(* [dune runtest] runs in [_build/default/test] next to the (dep-declared)
   golden file; [dune exec test/test_equiv.exe] runs from the project root. *)
let golden_file =
  if Sys.file_exists "campaign_seed.canonical" then "campaign_seed.canonical"
  else "test/campaign_seed.canonical"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One campaign execution per worker count, shared by all assertions. *)
let sequential = lazy (Campaign.run ~jobs:1 (Campaign.bundled ()))

let parallel = lazy (Campaign.run ~jobs:4 (Campaign.bundled ()))

let verdict_lines outcomes =
  List.map
    (fun (o : Campaign.outcome) ->
      Printf.sprintf "%s %s" o.spec_id (Campaign.verdict_string o.verdict))
    outcomes

let unit_tests =
  [
    test "bundled matrix matches the seed golden report byte for byte" (fun () ->
        check_string "canonical vs committed golden" (read_file golden_file)
          (Report.canonical (Lazy.force sequential)));
    test "jobs:4 reproduces the sequential Loop verdicts job by job" (fun () ->
        Alcotest.(check (list string))
          "verdicts jobs:1 = jobs:4"
          (verdict_lines (Lazy.force sequential))
          (verdict_lines (Lazy.force parallel)));
    test "jobs:4 reproduces the sequential canonical report" (fun () ->
        check_string "canonical jobs:1 = jobs:4"
          (Report.canonical (Lazy.force sequential))
          (Report.canonical (Lazy.force parallel)));
    test "tiny matrix is deterministic across repeated runs" (fun () ->
        let a = Report.canonical (Campaign.run ~jobs:2 (Campaign.bundled ~tiny:true ())) in
        let b = Report.canonical (Campaign.run ~jobs:2 (Campaign.bundled ~tiny:true ())) in
        check_string "run-to-run" a b);
  ]

let () = Alcotest.run "equiv" [ ("unit", unit_tests) ]
