(* Kernel-equivalence suite: the state-space engine rewrite (packed automata,
   bucketed products, bitset fixpoints) and the incremental re-verification
   engine (delta closures, product patching, warm-started fixpoints) must be
   pure speedups.  These tests pin the observable behaviour of the whole
   pipeline to the seed engine:

   - the canonical report of the bundled campaign matrix is byte-identical to
     the committed golden file [campaign_seed.canonical] (regenerate it with
     [dune exec test/dump_canonical.exe] only after an *intentional* matrix
     or format change);
   - worker count does not leak into results: jobs:1 and jobs:4 agree on the
     per-job Loop verdicts and on the whole canonical report;
   - incremental mode does not leak into results either: incremental on/off
     × jobs 1/4 all produce the same canonical report, and qcheck properties
     drive random learning sequences through [Chaos.update] and whole random
     scenarios through [Loop.run] in both modes. *)

module Campaign = Mechaml_engine.Campaign
module Report = Mechaml_engine.Report
module Loop = Mechaml_core.Loop
module Incomplete = Mechaml_core.Incomplete
module Chaos = Mechaml_core.Chaos
module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe
module Families = Mechaml_scenarios.Families
module Blackbox = Mechaml_legacy.Blackbox
module Ctl = Mechaml_logic.Ctl
module Prng = Mechaml_util.Prng
module Shard = Mechaml_ts.Shard
module Segment = Mechaml_util.Segment
open Helpers

(* [dune runtest] runs in [_build/default/test] next to the (dep-declared)
   golden file; [dune exec test/test_equiv.exe] runs from the project root. *)
let golden_file =
  if Sys.file_exists "campaign_seed.canonical" then "campaign_seed.canonical"
  else "test/campaign_seed.canonical"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One campaign execution per (worker count × incremental mode), shared by
   all assertions. *)
let sequential = lazy (Campaign.run ~jobs:1 (Campaign.bundled ()))

let parallel = lazy (Campaign.run ~jobs:4 (Campaign.bundled ()))

let scratch_sequential =
  lazy (Campaign.run ~jobs:1 ~incremental:false (Campaign.bundled ()))

let scratch_parallel =
  lazy (Campaign.run ~jobs:4 ~incremental:false (Campaign.bundled ()))

let verdict_lines outcomes =
  List.map
    (fun (o : Campaign.outcome) ->
      Printf.sprintf "%s %s" o.spec_id (Campaign.verdict_string o.verdict))
    outcomes

let unit_tests =
  [
    test "bundled matrix matches the seed golden report byte for byte" (fun () ->
        check_string "canonical vs committed golden" (read_file golden_file)
          (Report.canonical (Lazy.force sequential)));
    test "jobs:4 reproduces the sequential Loop verdicts job by job" (fun () ->
        Alcotest.(check (list string))
          "verdicts jobs:1 = jobs:4"
          (verdict_lines (Lazy.force sequential))
          (verdict_lines (Lazy.force parallel)));
    test "jobs:4 reproduces the sequential canonical report" (fun () ->
        check_string "canonical jobs:1 = jobs:4"
          (Report.canonical (Lazy.force sequential))
          (Report.canonical (Lazy.force parallel)));
    test "tiny matrix is deterministic across repeated runs" (fun () ->
        let a = Report.canonical (Campaign.run ~jobs:2 (Campaign.bundled ~tiny:true ())) in
        let b = Report.canonical (Campaign.run ~jobs:2 (Campaign.bundled ~tiny:true ())) in
        check_string "run-to-run" a b);
  ]

(* -- incremental ≡ from-scratch ------------------------------------------- *)

let neutrality_tests =
  [
    test "incremental off reproduces the Loop verdicts job by job" (fun () ->
        Alcotest.(check (list string))
          "verdicts incremental on = off"
          (verdict_lines (Lazy.force sequential))
          (verdict_lines (Lazy.force scratch_sequential)));
    test "incremental on/off x jobs 1/4 agree on the canonical report" (fun () ->
        let reference = Report.canonical (Lazy.force sequential) in
        check_string "incremental off, jobs:1" reference
          (Report.canonical (Lazy.force scratch_sequential));
        check_string "incremental off, jobs:4" reference
          (Report.canonical (Lazy.force scratch_parallel)));
  ]

(* Structural automaton identity — the incremental contract is not just
   language equivalence but byte-identical construction (state numbering,
   adjacency order, labels), which is what keeps witnesses and verdicts
   independent of the mode. *)
let same_auto (a : Automaton.t) (b : Automaton.t) =
  a.Automaton.name = b.Automaton.name
  && a.Automaton.state_names = b.Automaton.state_names
  && Array.for_all2 Mechaml_util.Bitset.equal a.Automaton.labels b.Automaton.labels
  && a.Automaton.trans = b.Automaton.trans
  && a.Automaton.initial = b.Automaton.initial
  && Universe.to_list a.Automaton.props = Universe.to_list b.Automaton.props

(* A random learning sequence: grow an incomplete automaton fact by fact the
   way the loop does (append-only transitions and refusals), skipping facts
   that would contradict recorded knowledge. *)
let chaos_update_chain_prop seed =
  let rng = Prng.create ~seed in
  let pool = [| "s0"; "s1"; "s2"; "s3"; "s4" |] in
  let subset l = List.filter (fun _ -> Prng.bool rng) l in
  let label_of s = if s = "s1" then [ "odd" ] else [] in
  let extra_props = [ "odd" ] in
  let m =
    ref
      (Incomplete.create ~name:"q" ~inputs:[ "a"; "b" ] ~outputs:[ "x" ]
         ~initial_state:"s0")
  in
  let inc = Chaos.inc_closure ~label_of ~extra_props !m in
  for _ = 1 to 12 do
    (try
       let src = pool.(Prng.int rng (Array.length pool)) in
       let inputs = subset [ "a"; "b" ] in
       if Prng.bool rng then
         let dst = pool.(Prng.int rng (Array.length pool)) in
         let outputs = subset [ "x" ] in
         m := Incomplete.add_transition !m ~src (Incomplete.interaction ~inputs ~outputs) ~dst
       else m := Incomplete.add_refusal !m ~state:src ~inputs
     with Invalid_argument _ -> (* contradicts recorded knowledge: skip *) ());
    Chaos.update inc !m;
    if not (same_auto (Chaos.auto inc) (Chaos.closure ~label_of ~extra_props !m)) then
      QCheck.Test.fail_reportf "patched closure diverged from fresh closure (seed %d)" seed
  done;
  true

(* Whole-loop equivalence on random scenarios: verdict and the per-iteration
   record trail (sizes, counterexample path) must not depend on the mode. *)
let iteration_signature (it : Loop.iteration) =
  Printf.sprintf "%d:%d:%d:%d:%d:%b:%d" it.Loop.index it.Loop.model_states
    it.Loop.model_knowledge it.Loop.closure_states it.Loop.product_states it.Loop.fast_real
    it.Loop.probes

let verdict_tag = function
  | Loop.Proved -> "proved"
  | Loop.Real_violation { kind = Loop.Deadlock; _ } -> "deadlock"
  | Loop.Real_violation { kind = Loop.Property; _ } -> "property"
  | Loop.Exhausted _ -> "exhausted"
  | Loop.Degraded _ -> "degraded"

let loop_equivalence_prop seed =
  let inputs = [ "i0"; "i1"; "i2" ] and outputs = [ "o0"; "o1" ] in
  let legacy =
    Families.random_machine ~seed ~states:(4 + (seed mod 5)) ~inputs ~outputs
  in
  let context =
    Families.random_context ~seed ~states:(6 + (seed mod 7)) ~legacy_inputs:inputs
      ~legacy_outputs:outputs
  in
  (* threshold 0 forces the caches on from the first iteration — the random
     scenarios are small, and the size gate must not quietly turn the
     machinery under test back into the scratch path *)
  let go incremental =
    Loop.run ~label_of:(fun _ -> []) ~context ~property:Ctl.deadlock_free
      ~legacy:(Blackbox.of_automaton ~port:"p" legacy) ~incremental
      ~incremental_threshold:0 ()
  in
  let on_ = go true and off = go false in
  let trail r = List.map iteration_signature r.Loop.iterations in
  if verdict_tag on_.Loop.verdict <> verdict_tag off.Loop.verdict then
    QCheck.Test.fail_reportf "verdict differs (seed %d): %s vs %s" seed
      (verdict_tag on_.Loop.verdict) (verdict_tag off.Loop.verdict);
  if trail on_ <> trail off then
    QCheck.Test.fail_reportf "iteration records differ (seed %d)" seed;
  true

let property_tests =
  [
    qcheck ~count:40 "Chaos.update chain is structurally a fresh closure"
      QCheck.small_nat chaos_update_chain_prop;
    qcheck ~count:15 "incremental Loop.run matches scratch Loop.run"
      QCheck.small_nat loop_equivalence_prop;
  ]

(* -- sharding neutrality ----------------------------------------------------

   The sharded, out-of-core check pipeline (--shards/--mem-budget) is the
   third thing that must be a pure speedup: partitioned exploration,
   per-shard fixpoints and disk-spilled segments must reproduce the default
   pipeline's canonical reports and per-iteration trails byte for byte —
   for every shard count, worker count, and with spilling engaged. *)

let sharded_loop_equivalence_prop shards seed =
  let inputs = [ "i0"; "i1"; "i2" ] and outputs = [ "o0"; "o1" ] in
  let legacy =
    Families.random_machine ~seed ~states:(4 + (seed mod 5)) ~inputs ~outputs
  in
  let context =
    Families.random_context ~seed ~states:(6 + (seed mod 7)) ~legacy_inputs:inputs
      ~legacy_outputs:outputs
  in
  let go sharding =
    Loop.run ~label_of:(fun _ -> []) ~context ~property:Ctl.deadlock_free
      ~legacy:(Blackbox.of_automaton ~port:"p" legacy) ?sharding ()
  in
  let plain = go None
  and sharded = go (Some (Shard.config ~shards ~mem_budget:2048 ())) in
  let trail r = List.map iteration_signature r.Loop.iterations in
  if verdict_tag plain.Loop.verdict <> verdict_tag sharded.Loop.verdict then
    QCheck.Test.fail_reportf "sharded verdict differs (seed %d, %d shards): %s vs %s"
      seed shards
      (verdict_tag plain.Loop.verdict)
      (verdict_tag sharded.Loop.verdict);
  if trail plain <> trail sharded then
    QCheck.Test.fail_reportf "sharded iteration records differ (seed %d, %d shards)" seed
      shards;
  true

let sharding_tests =
  [
    test "sharded full matrix reproduces the canonical report (shards 2, jobs 4)"
      (fun () ->
        check_string "sharded canonical = reference"
          (Report.canonical (Lazy.force sequential))
          (Report.canonical
             (Campaign.run ~jobs:4
                ~sharding:(Shard.config ~shards:2 ())
                (Campaign.bundled ()))));
    test "shards 1/2/8 x jobs 1/4, spilling on and off, agree on the tiny matrix"
      (fun () ->
        let reference =
          Report.canonical (Campaign.run ~jobs:1 (Campaign.bundled ~tiny:true ()))
        in
        List.iter
          (fun (shards, jobs, mem_budget) ->
            let sharding = Shard.config ~shards ?mem_budget () in
            check_string
              (Printf.sprintf "shards:%d jobs:%d budget:%s" shards jobs
                 (match mem_budget with None -> "-" | Some b -> string_of_int b))
              reference
              (Report.canonical
                 (Campaign.run ~jobs ~sharding (Campaign.bundled ~tiny:true ()))))
          [
            (1, 1, None);
            (2, 1, None);
            (2, 4, None);
            (8, 1, Some 1024);
            (8, 4, None);
            (1, 4, Some 1024);
          ]);
    test "a budgeted campaign actually spills" (fun () ->
        let before = Segment.total_spills () in
        ignore
          (Campaign.run ~jobs:1
             ~sharding:(Shard.config ~shards:4 ~mem_budget:1024 ())
             (Campaign.bundled ~tiny:true ()));
        check_bool "spills engaged" true (Segment.total_spills () > before));
  ]

let sharding_property_tests =
  [
    qcheck ~count:10 "sharded Loop.run matches the default pipeline (2 shards)"
      QCheck.small_nat
      (sharded_loop_equivalence_prop 2);
    qcheck ~count:10 "sharded Loop.run matches the default pipeline (8 shards)"
      QCheck.small_nat
      (sharded_loop_equivalence_prop 8);
  ]

(* -- daemon neutrality ------------------------------------------------------

   Serving a campaign through the mechaserve daemon (wire codec, scheduler,
   shared warm cache, streamed verdicts) is yet another thing that must not
   leak into results: the outcomes a client reassembles from the chunked
   event stream must produce the same canonical report as a local
   [Campaign.run] over the same matrix — whatever the worker count, and with
   two clients sharing one daemon (and its cache) concurrently. *)

module Server = Mechaml_serve.Server
module Client = Mechaml_serve.Client

let with_daemon ~workers f =
  let srv = Server.start { Server.default with Server.workers } in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () -> f { Client.host = "127.0.0.1"; port = Server.port srv })

let submit_exn ?tenant ep =
  match Client.submit ep ?tenant () with
  | Ok outcomes -> outcomes
  | Error e -> Alcotest.fail (Client.error_string e)

(* -- distribution neutrality ------------------------------------------------

   The cross-process tier (--dist-workers/--dist-connect) is the fourth thing
   that must be a pure speedup: shipping shard segments to a worker-process
   fleet over the wire — including losing a worker mid-campaign — must
   reproduce the canonical reports byte for byte for every worker count. *)

module Distworker = Mechaml_dist.Distworker
module Dwire = Mechaml_wire.Shardwire

let dist_sock =
  let c = ref 0 in
  fun () ->
    incr c;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mechaequiv-%d-%d.sock" (Unix.getpid ()) !c)

let with_dist_fleet n f =
  let handles = List.init n (fun _ -> Distworker.start (Dwire.Unix_sock (dist_sock ()))) in
  Fun.protect
    ~finally:(fun () -> List.iter (fun h -> try Distworker.stop h with _ -> ()) handles)
    (fun () ->
      f handles
        (List.map (fun h -> Dwire.addr_to_string (Distworker.addr h)) handles))

let dist_canonical ~workers ~shards =
  with_dist_fleet workers (fun _ addrs ->
      Report.canonical
        (Campaign.run ~jobs:1
           ~sharding:
             (Shard.config ~shards
                ~distribution:(Shard.distribution ~deadline_s:60. (Shard.Connect addrs))
                ())
           (Campaign.bundled ~tiny:true ())))

let distribution_tests =
  [
    test "dist-workers 1/2/4 x shards 2/8 reproduce the tiny canonical report" (fun () ->
        let reference =
          Report.canonical (Campaign.run ~jobs:1 (Campaign.bundled ~tiny:true ()))
        in
        List.iter
          (fun (workers, shards) ->
            check_string
              (Printf.sprintf "dist-workers:%d shards:%d" workers shards)
              reference
              (dist_canonical ~workers ~shards))
          [ (1, 2); (2, 2); (4, 2); (1, 8); (2, 8); (4, 8) ]);
    test "a worker killed mid-campaign still reproduces the canonical report" (fun () ->
        let reference =
          Report.canonical (Campaign.run ~jobs:1 (Campaign.bundled ~tiny:true ()))
        in
        with_dist_fleet 2 (fun handles addrs ->
            (* stop one worker while the campaign is in flight; whichever
               phase the loss lands in, recovery must keep the output
               byte-identical *)
            let killer =
              Domain.spawn (fun () ->
                  Unix.sleepf 0.02;
                  try Distworker.stop (List.hd handles) with _ -> ())
            in
            let got =
              Report.canonical
                (Campaign.run ~jobs:1
                   ~sharding:
                     (Shard.config ~shards:4
                        ~distribution:
                          (Shard.distribution ~deadline_s:60. (Shard.Connect addrs))
                        ())
                   (Campaign.bundled ~tiny:true ()))
            in
            Domain.join killer;
            check_string "kill-one-worker canonical = reference" reference got));
  ]

let daemon_tests =
  [
    test "daemon-served full matrix matches the local canonical report (workers 1 and 4)"
      (fun () ->
        let reference = Report.canonical (Lazy.force sequential) in
        with_daemon ~workers:1 (fun ep ->
            check_string "daemon workers:1" reference (Report.canonical (submit_exn ep)));
        with_daemon ~workers:4 (fun ep ->
            check_string "daemon workers:4" reference (Report.canonical (submit_exn ep))));
    test "two concurrent clients of one daemon both match the local report" (fun () ->
        let reference = Report.canonical (Lazy.force sequential) in
        with_daemon ~workers:4 (fun ep ->
            let d1 = Domain.spawn (fun () -> submit_exn ~tenant:"alice" ep) in
            let d2 = Domain.spawn (fun () -> submit_exn ~tenant:"bob" ep) in
            let a = Domain.join d1 and b = Domain.join d2 in
            check_string "client 1" reference (Report.canonical a);
            check_string "client 2" reference (Report.canonical b)));
    test "tracing and the flight recorder never change a daemon verdict" (fun () ->
        let module Trace = Mechaml_obs.Trace in
        let module Flight = Mechaml_obs.Flight in
        let reference = Report.canonical (Lazy.force sequential) in
        Fun.protect
          ~finally:(fun () ->
            Trace.disable ();
            Trace.reset ();
            Flight.disable ();
            Flight.configure ~size:Flight.default_size)
          (fun () ->
            with_daemon ~workers:4 (fun ep ->
                (* first pass fully instrumented: spans on every stage, the
                   recorder catching every admission and verdict *)
                Trace.enable ();
                Flight.configure ~size:256;
                let traced = Report.canonical (submit_exn ~tenant:"traced" ep) in
                Trace.disable ();
                Trace.reset ();
                Flight.disable ();
                (* second pass silenced, against the same warm cache: both the
                   instrumented and the silent path must be byte-identical to
                   the local reference *)
                let silent = Report.canonical (submit_exn ~tenant:"silent" ep) in
                check_string "instrumented = reference" reference traced;
                check_string "silenced = reference" reference silent)));
  ]

let () =
  Alcotest.run "equiv"
    [
      ("unit", unit_tests);
      ("incremental-neutrality", neutrality_tests);
      ("incremental-properties", property_tests);
      ("sharding-neutrality", sharding_tests @ sharding_property_tests);
      ("distribution-neutrality", distribution_tests);
      ("daemon-neutrality", daemon_tests);
    ]
