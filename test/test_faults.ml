(* Fault combinators: schedules must be deterministic per seed (the whole
   supervision story rests on reproducible chaos), the structural interface
   must survive wrapping, and each combinator must corrupt exactly the way it
   advertises — crash raises, refuse raises on connect, garbage lies
   consistently within a session, stutter repeats the previous answer. *)

module Faults = Mechaml_legacy.Faults
module Blackbox = Mechaml_legacy.Blackbox
module Railcab = Mechaml_scenarios.Railcab
open Helpers

(* one state, two inputs: [a] answers [x], [b] answers silence — enough to
   tell a lie ([garbage] swaps the two) from a stutter (previous answer). *)
let mini () =
  Blackbox.of_automaton
    (automaton ~name:"mini" ~inputs:[ "a"; "b" ] ~outputs:[ "x" ]
       ~trans:[ ("s", [ "a" ], [ "x" ], "s"); ("s", [ "b" ], [], "s") ]
       ~initial:[ "s" ] ())

let crash_schedule seed =
  let box = Faults.crash ~seed ~every:3 (mini ()) in
  let session = box.Blackbox.connect () in
  List.filter_map
    (fun i ->
      match session.Blackbox.step ~inputs:[ "a" ] with
      | exception Faults.Driver_crashed _ -> Some i
      | _ -> None)
    (List.init 40 Fun.id)

let unit_tests =
  [
    test "wrapping preserves the structural interface" (fun () ->
        let base = Railcab.box_correct in
        let wrapped = Faults.of_string_exn ~seed:0 "chaos-monkey" base in
        check_string "initial state" base.Blackbox.initial_state
          wrapped.Blackbox.initial_state;
        check_string "port" base.Blackbox.port wrapped.Blackbox.port;
        check_int "state bound" base.Blackbox.state_bound wrapped.Blackbox.state_bound;
        Alcotest.(check (list string))
          "inputs" base.Blackbox.input_signals wrapped.Blackbox.input_signals;
        Alcotest.(check (list string))
          "outputs" base.Blackbox.output_signals wrapped.Blackbox.output_signals;
        check_bool "name marks the injected faults" true
          (wrapped.Blackbox.name
          = base.Blackbox.name ^ "~crash~refuse~garbage~stutter"));
    test "crash schedules are deterministic per seed" (fun () ->
        let a = crash_schedule 1 and b = crash_schedule 1 in
        check_bool "some crashes scheduled" true (a <> []);
        Alcotest.(check (list int)) "same seed, same schedule" a b;
        check_bool "different seed, different schedule" true
          (crash_schedule 2 <> a));
    test "connect_refused raises on the scheduled connects" (fun () ->
        let refusals () =
          let box = Faults.connect_refused ~seed:0 ~every:2 (mini ()) in
          List.filter_map
            (fun i ->
              match box.Blackbox.connect () with
              | exception Faults.Connect_refused _ -> Some i
              | _ -> None)
            (List.init 20 Fun.id)
        in
        let a = refusals () in
        check_bool "some refusals scheduled" true (a <> []);
        check_bool "not every connect refused" true (List.length a < 20);
        Alcotest.(check (list int)) "deterministic" a (refusals ()));
    test "a lying session swaps answers consistently" (fun () ->
        let box = Faults.garbage ~seed:0 ~every:2 (mini ()) in
        (* hunt for a lying session; within it every answer must be the same
           deterministic swap — that is what makes the lie survive replay *)
        let rec hunt n =
          if n = 0 then Alcotest.fail "no lying session in 50 connects";
          let session = box.Blackbox.connect () in
          match session.Blackbox.step ~inputs:[ "a" ] with
          | Some [] ->
            Alcotest.(check (option (list string)))
              "silence answered with all outputs"
              (Some [ "x" ])
              (session.Blackbox.step ~inputs:[ "b" ]);
            Alcotest.(check (option (list string)))
              "still lying on repeat" (Some [])
              (session.Blackbox.step ~inputs:[ "a" ])
          | Some [ "x" ] -> hunt (n - 1) (* honest session, try the next *)
          | _ -> Alcotest.fail "unexpected answer"
        in
        hunt 50);
    test "stutter answers from the previous step" (fun () ->
        let box = Faults.stutter ~seed:3 ~every:2 (mini ()) in
        let session = box.Blackbox.connect () in
        (* alternate a/b so current and previous outputs always differ; every
           answer must be one of the two, and at least one must be stale *)
        let stale = ref 0 in
        List.iteri
          (fun i input ->
            let current = if input = "a" then [ "x" ] else [] in
            let previous = if i = 0 then [] else if input = "a" then [] else [ "x" ] in
            match session.Blackbox.step ~inputs:[ input ] with
            | Some outs when outs = current -> ()
            | Some outs when outs = previous -> incr stale
            | _ -> Alcotest.fail "answer is neither current nor previous")
          (List.init 40 (fun i -> if i mod 2 = 0 then "a" else "b"));
        check_bool "some answers were stale" true (!stale > 0));
    test "of_string parses every bundled profile and + compositions" (fun () ->
        List.iter
          (fun (name, _) ->
            match Faults.of_string ~seed:0 name with
            | Ok _ -> ()
            | Error msg -> Alcotest.fail (name ^ ": " ^ msg))
          Faults.profiles;
        let composed = Faults.of_string_exn ~seed:0 "crash+flaky" (mini ()) in
        check_string "composition applies left to right" "mini~crash~garbage"
          composed.Blackbox.name;
        (match Faults.of_string ~seed:0 "nope" with
        | Error msg -> check_bool "error names the profile" true (msg <> "")
        | Ok _ -> Alcotest.fail "unknown profile accepted");
        match Faults.of_string ~seed:0 "crash+nope" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "unknown profile accepted inside a composition");
    test "combinators validate their schedules" (fun () ->
        let rejects f = match f (mini ()) with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "bad schedule accepted"
        in
        rejects (Faults.crash ~seed:0 ~every:0);
        rejects (Faults.garbage ~seed:0 ~every:1);
        rejects (Faults.stutter ~seed:0 ~every:1);
        rejects (Faults.connect_refused ~seed:0 ~every:1);
        rejects (Faults.hang ~seed:0 ~every:1 ~for_s:(-1.)));
  ]

let () = Alcotest.run "faults" [ ("unit", unit_tests) ]
