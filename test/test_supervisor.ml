(* Supervision is only worth having if it preserves the paper's guarantees:
   retry must heal crash-like faults without changing what is learned, voting
   must only ever admit observations the fault-free driver would have
   produced (observation-conformance, hence Theorem 1), the breaker must turn
   a dead driver into a Degraded verdict with a non-empty proved-so-far
   summary instead of an exception, and the journal/snapshot machinery must
   make a killed run resumable to the same verdict. *)

module Supervisor = Mechaml_legacy.Supervisor
module Faults = Mechaml_legacy.Faults
module Blackbox = Mechaml_legacy.Blackbox
module Observation = Mechaml_legacy.Observation
module Loop = Mechaml_core.Loop
module Kio = Mechaml_core.Knowledge_io
module Railcab = Mechaml_scenarios.Railcab
open Helpers

let nosleep _ = ()

(* the bundled supervised-chaos configuration (campaign job
   railcab/supervised): crashes healed by retry, lying sessions outvoted *)
let chaos_supervisor () =
  Supervisor.create ~seed:11
    ~policy:{ Supervisor.default_policy with retries = 5; votes = 3; breaker = 24 }
    ~sleep:nosleep
    (Faults.of_string_exn ~seed:11 "crash+flaky" Railcab.box_correct)

let run_supervised sup =
  Loop.run ~label_of:Railcab.label_of
    ~observe:(fun ~inputs -> Supervisor.observe_hook sup ~inputs)
    ~context:Railcab.context ~property:Railcab.constraint_
    ~legacy:(Supervisor.box sup) ()

let battery =
  ([] :: List.map (fun s -> [ s ]) Railcab.box_correct.Blackbox.input_signals)
  @ [ [] ]

let unit_tests =
  [
    test "retry and voting mask chaos: the loop still proves" (fun () ->
        let sup = chaos_supervisor () in
        let r = run_supervised sup in
        (match r.Loop.verdict with
        | Loop.Proved -> ()
        | _ -> Alcotest.fail "chaos changed the verdict");
        let s = Supervisor.stats sup in
        check_bool "crashes were injected" true (s.Supervisor.crashes > 0);
        check_bool "retries healed them" true (s.Supervisor.retried > 0);
        check_bool "every query was answered" true
          (s.Supervisor.admitted = s.Supervisor.queries);
        check_bool "breaker stayed closed" false (Supervisor.breaker_open sup));
    test "supervised verdict and stats are deterministic per seed" (fun () ->
        let sup1 = chaos_supervisor () and sup2 = chaos_supervisor () in
        let r1 = run_supervised sup1 and r2 = run_supervised sup2 in
        check_bool "same verdict" true (r1.Loop.verdict = r2.Loop.verdict);
        check_int "same tests" r1.Loop.tests_executed r2.Loop.tests_executed;
        check_bool "same stats, jitter included" true
          (Supervisor.stats sup1 = Supervisor.stats sup2));
    test "admitted observations are conformant across 100 seeds" (fun () ->
        (* the garbage fault lies consistently within a session; only when
           record and replay both lie does a wrong observation survive the
           replay guardrail.  Under a unanimous quorum one honest vote in the
           ballot blocks any lie, so every admitted observation has to be
           exactly what the fault-free driver produces — an undecided ballot
           (Error) is always sound. *)
        let clean = Observation.observe ~box:Railcab.box_correct ~inputs:battery in
        for seed = 0 to 99 do
          let sup =
            Supervisor.create ~seed
              ~policy:
                {
                  Supervisor.default_policy with
                  retries = 3;
                  votes = 5;
                  quorum = Some 5;
                  breaker = 1000;
                }
              ~sleep:nosleep
              (Faults.garbage ~seed ~every:3 Railcab.box_correct)
          in
          match Supervisor.observe sup ~inputs:battery with
          | Ok obs ->
            check_bool (Printf.sprintf "seed %d admits only the truth" seed) true
              (obs = clean)
          | Error _ -> () (* refusing to answer is always sound *)
        done);
    test "a bricked driver degrades with a non-empty closure verdict" (fun () ->
        let sup =
          Supervisor.create ~seed:1
            ~policy:{ Supervisor.default_policy with retries = 4; breaker = 3 }
            ~sleep:nosleep
            (Faults.of_string_exn ~seed:1 "brick" Railcab.box_correct)
        in
        (match (run_supervised sup).Loop.verdict with
        | Loop.Degraded { reason; proved_on_closure; unknown_for_real; model_states; _ } ->
          check_bool "reason names the breaker" true
            (let sub = "breaker" in
             let n = String.length sub and m = String.length reason in
             let rec go i = i + n <= m && (String.sub reason i n = sub || go (i + 1)) in
             go 0);
          check_bool "something was proved on the closure" true (proved_on_closure <> []);
          check_int "all obligations accounted for" 2
            (List.length proved_on_closure + List.length unknown_for_real);
          check_bool "the partial model is reported" true (model_states >= 1)
        | _ -> Alcotest.fail "expected Degraded");
        check_bool "breaker is open" true (Supervisor.breaker_open sup);
        check_bool "trip was counted" true
          ((Supervisor.stats sup).Supervisor.breaker_trips >= 1));
    test "deadline misses fail the query instead of blocking it" (fun () ->
        let sup =
          Supervisor.create ~seed:0
            ~policy:
              {
                Supervisor.default_policy with
                deadline = Some 0.001;
                retries = 1;
                breaker = 4;
              }
            ~sleep:nosleep
            (Faults.hang ~seed:0 ~every:1 ~for_s:0.02 Railcab.box_correct)
        in
        (match Supervisor.observe sup ~inputs:[ [] ] with
        | Error f -> check_bool "reason is non-empty" true (f.Supervisor.reason <> "")
        | Ok _ -> Alcotest.fail "a 20 ms hang beat a 1 ms deadline");
        check_bool "misses counted" true
          ((Supervisor.stats sup).Supervisor.deadline_misses > 0));
    test "backoff is exponential and fully seeded" (fun () ->
        let slept = ref [] in
        let sup =
          Supervisor.create ~seed:0
            ~policy:
              {
                Supervisor.default_policy with
                retries = 3;
                jitter = 0.;
                breaker = 100;
              }
            ~sleep:(fun d -> slept := d :: !slept)
            (Faults.of_string_exn ~seed:0 "brick" Railcab.box_correct)
        in
        (match Supervisor.observe sup ~inputs:[ [] ] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "a bricked driver answered");
        let expected = [ 0.001; 0.002; 0.004 ] in
        check_int "one sleep per retry" 3 (List.length !slept);
        List.iter2
          (fun want got ->
            check_bool "exponential schedule" true (Float.abs (want -. got) < 1e-9))
          expected (List.rev !slept);
        check_bool "total accounted" true
          (Float.abs ((Supervisor.stats sup).Supervisor.backoff_slept -. 0.007) < 1e-9));
    test "policies are validated" (fun () ->
        let rejects policy =
          match Supervisor.create ~policy Railcab.box_correct with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "bad policy accepted"
        in
        rejects { Supervisor.default_policy with retries = -1 };
        rejects { Supervisor.default_policy with votes = 0 };
        rejects { Supervisor.default_policy with breaker = 0 };
        rejects { Supervisor.default_policy with votes = 3; quorum = Some 4 };
        rejects { Supervisor.default_policy with quorum = Some 0 });
    test "a killed run resumes from its journal to the same verdict" (fun () ->
        let journal = Filename.temp_file "mechaml" ".journal" in
        Fun.protect
          ~finally:(fun () -> Sys.remove journal)
          (fun () ->
            let clean =
              Loop.run ~label_of:Railcab.label_of ~context:Railcab.context
                ~property:Railcab.constraint_ ~legacy:Railcab.box_correct ()
            in
            check_bool "scenario needs enough tests to interrupt" true
              (clean.Loop.tests_executed > 2);
            (* die after two journalled observations, as SIGKILL would *)
            let queries = ref 0 in
            let observe ~inputs =
              incr queries;
              if !queries > 2 then raise Exit
              else Ok (Observation.observe ~box:Railcab.box_correct ~inputs)
            in
            (match
               Loop.run ~label_of:Railcab.label_of ~observe ~journal
                 ~context:Railcab.context ~property:Railcab.constraint_
                 ~legacy:Railcab.box_correct ()
             with
            | exception Exit -> ()
            | _ -> Alcotest.fail "expected the run to die");
            let resumed =
              Loop.run ~label_of:Railcab.label_of ~resume:journal
                ~context:Railcab.context ~property:Railcab.constraint_
                ~legacy:Railcab.box_correct ()
            in
            check_bool "same verdict" true (resumed.Loop.verdict = clean.Loop.verdict);
            check_int "replayed observations are not re-executed"
              (clean.Loop.tests_executed - 2) resumed.Loop.tests_executed));
    test "snapshots are atomic and re-seed the loop" (fun () ->
        let path = Filename.temp_file "mechaml" ".ik" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let r =
              Loop.run ~label_of:Railcab.label_of ~snapshot:path
                ~context:Railcab.context ~property:Railcab.constraint_
                ~legacy:Railcab.box_correct ()
            in
            (match r.Loop.verdict with
            | Loop.Proved -> ()
            | _ -> Alcotest.fail "expected Proved");
            check_bool "no tmp file left behind" false (Sys.file_exists (path ^ ".tmp"));
            let k =
              match Kio.load ~path with
              | Ok k -> k
              | Error { line; message } ->
                Alcotest.fail (Printf.sprintf "snapshot unreadable: line %d: %s" line message)
            in
            let reseeded =
              Loop.run ~label_of:Railcab.label_of ~initial_knowledge:k
                ~context:Railcab.context ~property:Railcab.constraint_
                ~legacy:Railcab.box_correct ()
            in
            (match reseeded.Loop.verdict with
            | Loop.Proved -> ()
            | _ -> Alcotest.fail "reseeded run lost the proof");
            check_int "snapshot carried all knowledge" 0 reseeded.Loop.tests_executed));
  ]

let () = Alcotest.run "supervisor" [ ("unit", unit_tests) ]
