(* The observation journal is the crash-safety story: a run killed mid-flight
   must lose at most the record being written.  These tests pin the format
   (roundtrip through append/load), the tear tolerance (only the final line
   may be partial) and the refusal-to-guess on anything else. *)

module Journal = Mechaml_core.Journal
module Observation = Mechaml_legacy.Observation
open Helpers

let obs_plain =
  {
    Observation.initial_state = "s0";
    steps =
      [
        { Observation.pre_state = "s0"; inputs = [ "a"; "b" ]; outputs = []; post_state = "s1" };
        { Observation.pre_state = "s1"; inputs = []; outputs = [ "x"; "y" ]; post_state = "s0" };
        { Observation.pre_state = "s0"; inputs = []; outputs = []; post_state = "s0" };
      ];
    refused = None;
  }

let obs_refused =
  {
    Observation.initial_state = "s0";
    steps =
      [ { Observation.pre_state = "s0"; inputs = [ "a" ]; outputs = [ "x" ]; post_state = "s2" } ];
    refused = Some ("s2", [ "a"; "b" ]);
  }

let with_journal f =
  let path = Filename.temp_file "mechaml" ".journal" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let write path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let raw_append path line =
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc line;
  close_out oc

let check_load name expected_torn expected path =
  match Journal.load ~path with
  | Ok (observations, torn) ->
    check_bool (name ^ ": torn flag") expected_torn torn;
    check_bool (name ^ ": observations") true (observations = expected)
  | Error { line; message } ->
    Alcotest.fail (Printf.sprintf "%s: line %d: %s" name line message)

let unit_tests =
  [
    test "append/load roundtrips observations exactly" (fun () ->
        with_journal (fun path ->
            Journal.append ~path obs_plain;
            Journal.append ~path obs_refused;
            check_load "roundtrip" false [ obs_plain; obs_refused ] path));
    test "a torn final record is dropped and reported" (fun () ->
        with_journal (fun path ->
            Journal.append ~path obs_plain;
            Journal.append ~path obs_refused;
            (* an interrupted append: no ;end sentinel *)
            raw_append path "obs s0 | s0 : a / x -> ";
            check_load "torn tail" true [ obs_plain; obs_refused ] path));
    test "a torn record before the end is an error" (fun () ->
        with_journal (fun path ->
            write path
              (Printf.sprintf "mechaml-journal 1\nobs s0 | s0 : a / x ->\n%s\n"
                 (Journal.line_of obs_plain));
            match Journal.load ~path with
            | Error { line; _ } -> check_int "offending line" 2 line
            | Ok _ -> Alcotest.fail "mid-journal tear accepted"));
    test "a bad header is an error on line 1" (fun () ->
        with_journal (fun path ->
            write path "not-a-journal\n";
            match Journal.load ~path with
            | Error { line; _ } -> check_int "line" 1 line
            | Ok _ -> Alcotest.fail "bad header accepted"));
    test "a missing file is an error, not an exception" (fun () ->
        match Journal.load ~path:"/nonexistent/mechaml.journal" with
        | Error { line; _ } -> check_int "not line-attributable" 0 line
        | Ok _ -> Alcotest.fail "missing file accepted");
    test "a refusal segment must be final" (fun () ->
        with_journal (fun path ->
            write path "mechaml-journal 1\nobs s0 | refuse s0 : a | s0 : / -> s0 ;end\n";
            match Journal.load ~path with
            | Error { line; _ } -> check_int "offending line" 2 line
            | Ok _ -> Alcotest.fail "mid-record refusal accepted"));
    test "blank lines around records are ignored" (fun () ->
        with_journal (fun path ->
            write path
              (Printf.sprintf "mechaml-journal 1\n\n%s\n\n%s\n\n"
                 (Journal.line_of obs_plain) (Journal.line_of obs_refused));
            check_load "blank lines" false [ obs_plain; obs_refused ] path));
  ]

let () = Alcotest.run "journal" [ ("unit", unit_tests) ]
