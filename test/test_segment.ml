(* Tests for the out-of-core segment tier: the spill-file codec (round-trip,
   damage detection) and the LRU residency manager (budget enforcement,
   reload-on-demand, cleanup). *)

module Bitvec = Mechaml_util.Bitvec
module Segment = Mechaml_util.Segment
open Helpers

let tmpdir () = Filename.temp_file "mechaseg-test" "" |> fun f ->
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

let payload n : Segment.payload =
  [
    ("ints", Segment.Ints (Array.init n (fun i -> (i * 7) - 3)));
    ("bits", Segment.Bits (Bitvec.init n (fun i -> i mod 3 = 0)));
  ]

let payload_equal (a : Segment.payload) (b : Segment.payload) =
  List.length a = List.length b
  && List.for_all2
       (fun (na, fa) (nb, fb) ->
         na = nb
         &&
         match (fa, fb) with
         | Segment.Ints x, Segment.Ints y -> x = y
         | Segment.Bits x, Segment.Bits y -> Bitvec.equal x y
         | _ -> false)
       a b

let codec_tests =
  [
    test "save/load round-trips ints and bit vectors" (fun () ->
        let dir = tmpdir () in
        let path = Filename.concat dir "p.seg" in
        let p = payload 200 in
        Segment.save ~path p;
        (match Segment.load ~path with
        | Ok q -> check_bool "payload equal" true (payload_equal p q)
        | Error m -> Alcotest.fail m);
        Sys.remove path;
        Unix.rmdir dir);
    test "truncated spill file surfaces Error, never wrong data" (fun () ->
        let dir = tmpdir () in
        let path = Filename.concat dir "p.seg" in
        Segment.save ~path (payload 500);
        let full = In_channel.with_open_bin path In_channel.input_all in
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (String.sub full 0 (String.length full - 17)));
        (match Segment.load ~path with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected Error on truncated file");
        Sys.remove path;
        Unix.rmdir dir);
    test "corrupt byte surfaces Error via the digest" (fun () ->
        let dir = tmpdir () in
        let path = Filename.concat dir "p.seg" in
        Segment.save ~path (payload 500);
        let full = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
        let i = Bytes.length full - 40 in
        Bytes.set full i (Char.chr (Char.code (Bytes.get full i) lxor 0x20));
        Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc full);
        (match Segment.load ~path with
        | Error m ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
            go 0
          in
          check_bool "mentions digest" true (contains m "digest")
        | Ok _ -> Alcotest.fail "expected Error on corrupt file");
        Sys.remove path;
        Unix.rmdir dir);
    test "wrong magic and missing file are Errors" (fun () ->
        let dir = tmpdir () in
        let path = Filename.concat dir "p.seg" in
        Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "not a segment\n");
        (match Segment.load ~path with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected Error on foreign file");
        (match Segment.load ~path:(Filename.concat dir "absent.seg") with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected Error on missing file");
        Sys.remove path;
        Unix.rmdir dir);
  ]

let manager_tests =
  [
    test "no budget: nothing ever spills" (fun () ->
        let m = Segment.create ~name:"t" () in
        let s1 = Segment.add m ~name:"a" (payload 1000) in
        let s2 = Segment.add m ~name:"b" (payload 1000) in
        check_bool "a resident" true (payload_equal (payload 1000) (Segment.get m s1));
        check_bool "b resident" true (payload_equal (payload 1000) (Segment.get m s2));
        check_int "spills" 0 (Segment.spills m);
        check_bool "no dir created" true (Segment.spill_dir m = None);
        Segment.close m);
    test "budget evicts LRU and reloads on demand" (fun () ->
        let dir = tmpdir () in
        let bytes = Segment.payload_bytes (payload 1000) in
        let m = Segment.create ~budget:(2 * bytes) ~dir ~name:"t" () in
        let s1 = Segment.add m ~name:"a" (payload 1000) in
        let s2 = Segment.add m ~name:"b" (payload 1000) in
        let s3 = Segment.add m ~name:"c" (payload 1000) in
        (* a was coldest: adding c pushed it out *)
        check_int "one spill" 1 (Segment.spills m);
        check_bool "resident under budget" true (Segment.resident_bytes m <= 2 * bytes);
        check_bool "a reloads" true (payload_equal (payload 1000) (Segment.get m s1));
        check_int "one reload" 1 (Segment.reloads m);
        (* reloading a pushed out the new coldest (b) *)
        check_int "second spill" 2 (Segment.spills m);
        check_bool "b reloads" true (payload_equal (payload 1000) (Segment.get m s2));
        check_bool "c reloads" true (payload_equal (payload 1000) (Segment.get m s3));
        Segment.close m;
        check_bool "spill files removed" true (Sys.readdir dir = [||]);
        Unix.rmdir dir);
    test "borrowed payload stays valid across its own eviction" (fun () ->
        let dir = tmpdir () in
        let bytes = Segment.payload_bytes (payload 1000) in
        let m = Segment.create ~budget:bytes ~dir ~name:"t" () in
        let s1 = Segment.add m ~name:"a" (payload 1000) in
        let borrowed = Segment.get m s1 in
        ignore (Segment.add m ~name:"b" (payload 1000));
        (* a is spilled now; the borrowed copy must still read correctly *)
        check_bool "borrowed intact" true (payload_equal (payload 1000) borrowed);
        Segment.close m;
        Unix.rmdir dir);
    test "get raises Spill_error when the spill file is damaged" (fun () ->
        let dir = tmpdir () in
        let bytes = Segment.payload_bytes (payload 1000) in
        let m = Segment.create ~budget:bytes ~dir ~name:"t" () in
        let s1 = Segment.add m ~name:"a" (payload 1000) in
        ignore (Segment.add m ~name:"b" (payload 1000));
        (* damage a's spill file in place *)
        let d = match Segment.spill_dir m with Some d -> d | None -> Alcotest.fail "no dir" in
        let f = Filename.concat d "a.seg" in
        let full = Bytes.of_string (In_channel.with_open_bin f In_channel.input_all) in
        Bytes.set full (Bytes.length full - 1) '\x00';
        Out_channel.with_open_bin f (fun oc -> Out_channel.output_bytes oc full);
        (match Segment.get m s1 with
        | exception Segment.Spill_error _ -> ()
        | _ -> Alcotest.fail "expected Spill_error");
        Segment.close m;
        Unix.rmdir dir);
    test "spill callbacks and global totals observe transfers" (fun () ->
        let dir = tmpdir () in
        let spilled = ref 0 and reloaded = ref 0 in
        let bytes = Segment.payload_bytes (payload 1000) in
        let g0 = Segment.total_spills () in
        let m =
          Segment.create ~budget:bytes ~dir
            ~on_spill:(fun b -> spilled := !spilled + b)
            ~on_reload:(fun b -> reloaded := !reloaded + b)
            ~name:"t" ()
        in
        let s1 = Segment.add m ~name:"a" (payload 1000) in
        ignore (Segment.add m ~name:"b" (payload 1000));
        ignore (Segment.get m s1);
        check_bool "spill bytes observed" true (!spilled >= bytes);
        check_bool "reload bytes observed" true (!reloaded >= bytes);
        check_bool "global total advanced" true (Segment.total_spills () > g0);
        Segment.close m;
        Unix.rmdir dir);
    test "close is idempotent and removes scratch files" (fun () ->
        let dir = tmpdir () in
        let m = Segment.create ~budget:1 ~dir ~name:"t" () in
        let p = Segment.scratch_path m ~name:"chunk" in
        Segment.save ~path:p (payload 10);
        ignore (Segment.add m ~name:"a" (payload 100));
        Segment.close m;
        Segment.close m;
        check_bool "dir emptied" true (Sys.readdir dir = [||]);
        Unix.rmdir dir);
  ]

let () = Alcotest.run "segment" [ ("codec", codec_tests); ("manager", manager_tests) ]
