module Kio = Mechaml_core.Knowledge_io
module Incomplete = Mechaml_core.Incomplete
module Loop = Mechaml_core.Loop
module Railcab = Mechaml_scenarios.Railcab
open Helpers

let learned () =
  let r = Railcab.run_correct () in
  r.Loop.final_model

let unit_tests =
  [
    test "print/parse roundtrip preserves the model" (fun () ->
        let m = learned () in
        let m' = Kio.parse_exn (Kio.print m) in
        check_int "states" (Incomplete.num_states m) (Incomplete.num_states m');
        check_int "transitions" (Incomplete.num_transitions m) (Incomplete.num_transitions m');
        check_int "refusals" (Incomplete.num_refusals m) (Incomplete.num_refusals m');
        Alcotest.(check (list string)) "state order" m.Incomplete.states m'.Incomplete.states);
    test "refusals survive the roundtrip" (fun () ->
        let m =
          Incomplete.add_refusal
            (Incomplete.create ~name:"m" ~inputs:[ "a" ] ~outputs:[] ~initial_state:"s")
            ~state:"s" ~inputs:[ "a" ]
        in
        let m' = Kio.parse_exn (Kio.print m) in
        check_bool "refusal kept" true (Incomplete.refuses m' ~state:"s" ~inputs:[ "a" ]));
    test "empty-input refusals are representable" (fun () ->
        let m =
          Incomplete.add_refusal
            (Incomplete.create ~name:"m" ~inputs:[ "a" ] ~outputs:[] ~initial_state:"s")
            ~state:"s" ~inputs:[]
        in
        let m' = Kio.parse_exn (Kio.print m) in
        check_bool "silent refusal kept" true (Incomplete.refuses m' ~state:"s" ~inputs:[]));
    test "saved knowledge re-seeds the loop to an immediate proof" (fun () ->
        let path = Filename.temp_file "mechaml" ".ik" in
        Kio.save ~path (learned ());
        let k = match Kio.load ~path with Ok k -> k | Error _ -> Alcotest.fail "load" in
        Sys.remove path;
        let r =
          Loop.run ~label_of:Railcab.label_of ~initial_knowledge:k ~context:Railcab.context
            ~property:Railcab.constraint_ ~legacy:Railcab.box_correct ()
        in
        (match r.Loop.verdict with Loop.Proved -> () | _ -> Alcotest.fail "expected Proved");
        check_int "no new tests needed" 0 r.Loop.tests_executed;
        check_int "single model-checking round" 1 (List.length r.Loop.iterations));
    test "parse errors carry line numbers" (fun () ->
        (match Kio.parse "inputs a\nbogus\n" with
        | Error { line; _ } -> check_int "line 2" 2 line
        | Ok _ -> Alcotest.fail "accepted");
        match Kio.parse "inputs a\noutputs\ninitial s\ntrans s a / -> t\n" with
        | Error { line; _ } -> check_int "line 4" 4 line
        | Ok _ -> Alcotest.fail "accepted");
    test "inconsistent files are rejected" (fun () ->
        let text =
          "inputs a\noutputs\ninitial s\ntrans s : a / -> t\nrefuse s : a\n"
        in
        match Kio.parse text with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "T/T̄ conflict accepted");
    test "missing directives are rejected" (fun () ->
        match Kio.parse "inputs a\noutputs\n" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "missing initial accepted");
    test "a truncated file is an error, never an exception" (fun () ->
        match Kio.parse "incomplete m\ninputs a\noutpu" with
        | Error { line; _ } -> check_int "truncated directive line" 3 line
        | Ok _ -> Alcotest.fail "truncated file accepted");
    test "trailing garbage is rejected with its line" (fun () ->
        let text = "inputs a\noutputs\ninitial s\ntrans s : a / -> t\n%%garbage\n" in
        match Kio.parse text with
        | Error { line; _ } -> check_int "garbage line" 5 line
        | Ok _ -> Alcotest.fail "trailing garbage accepted");
    test "duplicate refuse entries are rejected with their line" (fun () ->
        let text = "inputs a\noutputs\ninitial s\nrefuse s : a\nrefuse s : a\n" in
        match Kio.parse text with
        | Error { line; _ } -> check_int "second refuse line" 5 line
        | Ok _ -> Alcotest.fail "duplicate refusal accepted");
    test "save_atomic leaves a loadable snapshot and no temp file" (fun () ->
        let path = Filename.temp_file "mechaml" ".ik" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let m = learned () in
            Kio.save_atomic ~path m;
            check_bool "tmp renamed away" false (Sys.file_exists (path ^ ".tmp"));
            match Kio.load ~path with
            | Ok m' ->
              check_int "states" (Incomplete.num_states m) (Incomplete.num_states m');
              check_int "transitions" (Incomplete.num_transitions m)
                (Incomplete.num_transitions m');
              check_int "refusals" (Incomplete.num_refusals m) (Incomplete.num_refusals m')
            | Error { line; message } ->
              Alcotest.fail (Printf.sprintf "line %d: %s" line message)));
  ]

let () = Alcotest.run "knowledge_io" [ ("unit", unit_tests) ]
