(* The bench_check speedup aggregation: per-benchmark factors, geometric
   means, and — the regression this suite pins — groups present in only one
   snapshot, which used to reach the zero-row geometric mean and print NaN
   and now come back as skipped warnings instead. *)

module Lib = Bench_check_lib
module Json = Mechaml_obs.Json
open Helpers

let check_float = Alcotest.(check (float 1e-9))

let row g n v = ((g, n), v)

let snapshot rows =
  Json.Obj
    [
      ( "benchmarks_ns_per_run",
        Json.List
          (List.map
             (fun ((g, n), v) ->
               Json.Obj
                 [ ("group", Json.Str g); ("name", Json.Str n); ("value", Json.Num v) ])
             rows) );
    ]

let unit_tests =
  [
    test "benchmarks parses rows and drops null estimates" (fun () ->
        let json =
          Json.Obj
            [
              ( "benchmarks_ns_per_run",
                Json.List
                  [
                    Json.Obj
                      [ ("group", Json.Str "g"); ("name", Json.Str "a");
                        ("value", Json.Num 10.) ];
                    Json.Obj
                      [ ("group", Json.Str "g"); ("name", Json.Str "b");
                        ("value", Json.Null) ];
                  ] );
            ]
        in
        match Lib.benchmarks json with
        | Ok rows -> Alcotest.(check int) "null dropped" 1 (List.length rows)
        | Error m -> Alcotest.fail m);
    test "benchmarks rejects a non-bench file" (fun () ->
        check_bool "error" true (Result.is_error (Lib.benchmarks (Json.Obj []))));
    test "shared rows get factors and a geometric mean" (fun () ->
        let base = [ row "g" "a" 100.; row "g" "b" 400. ] in
        let fresh = [ row "g" "a" 50.; row "g" "b" 100. ] in
        let r = Lib.speedup ~base ~fresh in
        Alcotest.(check int) "rows" 2 (List.length r.Lib.rows);
        check_float "first factor" 2. (List.hd r.Lib.rows).Lib.factor;
        (match r.Lib.groups with
        | [ g ] ->
          check_string "group" "g" g.Lib.g_group;
          (* geomean of 2x and 4x *)
          check_float "geomean" (sqrt 8.) g.Lib.g_geomean
        | _ -> Alcotest.fail "expected one group");
        check_bool "nothing skipped" true (r.Lib.skipped = []));
    test "a group in the baseline only is skipped with a warning, not NaN" (fun () ->
        let base = [ row "shared" "a" 100.; row "old" "x" 10. ] in
        let fresh = [ row "shared" "a" 100. ] in
        let r = Lib.speedup ~base ~fresh in
        Alcotest.(check (list (pair string string)))
          "skipped"
          [ ("old", "only in the baseline snapshot") ]
          r.Lib.skipped;
        Alcotest.(check (list string))
          "aggregated groups" [ "shared" ]
          (List.map (fun g -> g.Lib.g_group) r.Lib.groups);
        match r.Lib.overall with
        | Some o ->
          check_bool "overall finite" true (Float.is_finite o.Lib.g_geomean);
          Alcotest.(check int) "overall rows" 1 o.Lib.g_benchmarks
        | None -> Alcotest.fail "expected an overall mean");
    test "a group in the new snapshot only is skipped with a warning" (fun () ->
        let base = [ row "shared" "a" 100. ] in
        let fresh = [ row "shared" "a" 80.; row "t14_loop_incremental" "loop" 10. ] in
        let r = Lib.speedup ~base ~fresh in
        Alcotest.(check (list (pair string string)))
          "skipped"
          [ ("t14_loop_incremental", "only in the new snapshot") ]
          r.Lib.skipped);
    test "a group sharing no benchmark name is skipped too" (fun () ->
        let base = [ row "g" "renamed_away" 10.; row "h" "a" 10. ] in
        let fresh = [ row "g" "renamed_to" 10.; row "h" "a" 10. ] in
        let r = Lib.speedup ~base ~fresh in
        Alcotest.(check (list (pair string string)))
          "skipped"
          [ ("g", "no comparable benchmark in both snapshots") ]
          r.Lib.skipped);
    test "disjoint snapshots yield no overall mean" (fun () ->
        let r = Lib.speedup ~base:[ row "a" "x" 1. ] ~fresh:[ row "b" "y" 1. ] in
        check_bool "no overall" true (r.Lib.overall = None);
        check_bool "no rows" true (r.Lib.rows = []);
        Alcotest.(check int) "both skipped" 2 (List.length r.Lib.skipped));
    test "non-positive times are incomparable, never NaN" (fun () ->
        let base = [ row "g" "a" 0.; row "g" "b" 100. ] in
        let fresh = [ row "g" "a" 50.; row "g" "b" 50. ] in
        let r = Lib.speedup ~base ~fresh in
        Alcotest.(check int) "only the positive pair" 1 (List.length r.Lib.rows);
        List.iter
          (fun (x : Lib.row) -> check_bool "finite" true (Float.is_finite x.Lib.factor))
          r.Lib.rows);
    test "snapshot round trip through the parser" (fun () ->
        let rows = [ row "g" "a" 12.5; row "g" "b" 1e6 ] in
        match Lib.benchmarks (snapshot rows) with
        | Ok parsed -> check_bool "identical" true (parsed = rows)
        | Error m -> Alcotest.fail m);
  ]

let () = Alcotest.run "bench_check" [ ("speedup", unit_tests) ]
