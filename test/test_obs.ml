(* Observability layer: the hand-rolled JSON codec, the span tracer, the
   metrics registry, the profiling hooks and the leveled logger — plus the
   load-bearing contract that none of it changes a verdict: a traced,
   metered campaign produces the byte-identical canonical report of a bare
   one, sequentially and on a pool. *)

module Json = Mechaml_obs.Json
module Context = Mechaml_obs.Context
module Trace = Mechaml_obs.Trace
module Metrics = Mechaml_obs.Metrics
module Prof = Mechaml_obs.Prof
module Log = Mechaml_obs.Log
module Campaign = Mechaml_engine.Campaign
module Report = Mechaml_engine.Report
open Helpers

let check_float = Alcotest.(check (float 1e-9))

let parse_exn s =
  match Json.parse s with Ok v -> v | Error m -> Alcotest.fail ("parse: " ^ m)

(* every test leaves the process-wide observability state as it found it:
   disabled, empty buffers, default log level *)
let pristine f () =
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ();
      Metrics.set_enabled false;
      Metrics.reset ();
      Log.set_level Log.Warn;
      Log.set_output (fun _ _ -> ()))
    f

let obs_test name f = test name (pristine f)

(* -- json ----------------------------------------------------------------- *)

let json_tests =
  [
    test "round trip through to_string and parse" (fun () ->
        let v =
          Json.Obj
            [
              ("a", Json.List [ Json.Num 1.; Json.Num 2.5; Json.Null ]);
              ("s", Json.Str "he \"said\"\n\ttab");
              ("b", Json.Bool true);
              ("neg", Json.Num (-0.125));
            ]
        in
        Alcotest.(check bool) "round trip" true (parse_exn (Json.to_string v) = v));
    test "parses nested literals and unicode escapes" (fun () ->
        match parse_exn {|{"k": [true, false, null, "éA"], "n": -1e-3}|} with
        | Json.Obj [ ("k", Json.List [ Json.Bool true; Json.Bool false; Json.Null; Json.Str s ]); ("n", Json.Num n) ] ->
          check_string "utf-8 decoded" "\xc3\xa9A" s;
          check_float "exponent" (-0.001) n
        | _ -> Alcotest.fail "unexpected shape");
    test "rejects malformed input" (fun () ->
        List.iter
          (fun s ->
            match Json.parse s with
            | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
            | Error _ -> ())
          [ "{"; "[1,]"; "tru"; "\"unterminated"; "\"bad \\x escape\"";
            "\"ctrl \x01 char\""; "1 2"; "{\"a\" 1}"; "" ]);
    test "numbers render integral without a fraction, NaN as null" (fun () ->
        check_string "integral" "42" (Json.number 42.);
        check_string "nan" "null" (Json.number Float.nan);
        check_bool "fraction survives" true
          (parse_exn (Json.number 0.1) = Json.Num 0.1));
    test "member and coercions" (fun () ->
        let v = parse_exn {|{"x": 3, "s": "hi"}|} in
        check_bool "x" true (Option.bind (Json.member "x" v) Json.to_float = Some 3.);
        check_bool "s" true (Option.bind (Json.member "s" v) Json.to_str = Some "hi");
        check_bool "missing" true (Json.member "nope" v = None));
  ]

(* -- trace ---------------------------------------------------------------- *)

let events_of_export () =
  match parse_exn (Trace.export ()) with
  | Json.List events -> events
  | _ -> Alcotest.fail "export is not an array"

let spans_named name events =
  List.filter
    (fun e -> Option.bind (Json.member "name" e) Json.to_str = Some name)
    events

let trace_tests =
  [
    obs_test "disabled tracing records nothing and costs no wrapper" (fun () ->
        check_int "quiescent" 0 (Trace.span_count ());
        check_int "value passes through" 7 (Trace.with_span ~name:"t" (fun () -> 7));
        check_int "still nothing" 0 (Trace.span_count ()));
    obs_test "spans nest by interval containment on one tid" (fun () ->
        Trace.enable ();
        Trace.with_span ~name:"outer" (fun () ->
            Trace.with_span ~name:"inner" (fun () -> ()));
        let events = events_of_export () in
        check_int "two spans" 2 (List.length events);
        let bounds name =
          match spans_named name events with
          | [ e ] ->
            let f k = Option.get (Option.bind (Json.member k e) Json.to_float) in
            (f "ts", f "ts" +. f "dur")
          | _ -> Alcotest.fail ("missing span " ^ name)
        in
        let os, oe = bounds "outer" and is_, ie = bounds "inner" in
        check_bool "contained" true (os <= is_ && ie <= oe));
    obs_test "a raising thunk still records its span and re-raises" (fun () ->
        Trace.enable ();
        (match Trace.with_span ~name:"boom" (fun () -> failwith "pop") with
        | exception Failure m -> check_string "exception preserved" "pop" m
        | _ -> Alcotest.fail "exception swallowed");
        check_int "span recorded" 1 (List.length (events_of_export ())));
    obs_test "args, instants and post-hoc completes land in the export" (fun () ->
        Trace.enable ();
        Trace.with_span ~name:"s" ~args:[ ("n", Trace.Int 3); ("ok", Trace.Bool true) ]
          (fun () -> ());
        Trace.instant ~name:"mark" ();
        let t0 = Trace.now_us () in
        Trace.complete ~name:"late" ~start_us:t0 ~args:[ ("v", Trace.Float 0.5) ] ();
        let events = events_of_export () in
        check_int "three events" 3 (List.length events);
        (match spans_named "s" events with
        | [ e ] ->
          let args = Option.get (Json.member "args" e) in
          check_bool "int arg" true
            (Option.bind (Json.member "n" args) Json.to_float = Some 3.)
        | _ -> Alcotest.fail "span s lost");
        match spans_named "mark" events with
        | [ e ] ->
          check_bool "instant phase" true
            (Option.bind (Json.member "ph" e) Json.to_str = Some "i")
        | _ -> Alcotest.fail "instant lost");
    obs_test "spans from spawned domains keep distinct tids" (fun () ->
        Trace.enable ();
        Trace.with_span ~name:"main" (fun () -> ());
        let d =
          Domain.spawn (fun () -> Trace.with_span ~name:"worker" (fun () -> ()))
        in
        Domain.join d;
        let tid name =
          match spans_named name (events_of_export ()) with
          | [ e ] -> Option.get (Option.bind (Json.member "tid" e) Json.to_float)
          | _ -> Alcotest.fail ("missing span " ^ name)
        in
        check_bool "distinct tids" true (tid "main" <> tid "worker"));
    obs_test "reset drops events, disable stops recording" (fun () ->
        Trace.enable ();
        Trace.with_span ~name:"a" (fun () -> ());
        Trace.reset ();
        check_int "dropped" 0 (Trace.span_count ());
        Trace.disable ();
        Trace.with_span ~name:"b" (fun () -> ());
        check_int "not recording" 0 (Trace.span_count ()));
    obs_test "the ambient trace id is stamped onto spans, and only then" (fun () ->
        Trace.enable ();
        Context.with_id "rid-123" (fun () ->
            Trace.with_span ~name:"stamped" (fun () -> ()));
        Trace.with_span ~name:"bare" (fun () -> ());
        let events = events_of_export () in
        (match spans_named "stamped" events with
        | [ e ] ->
          let args = Option.get (Json.member "args" e) in
          check_bool "trace arg carries the id" true
            (Option.bind (Json.member "trace" args) Json.to_str = Some "rid-123")
        | _ -> Alcotest.fail "stamped span lost");
        match spans_named "bare" events with
        | [ e ] ->
          check_bool "no context, no trace arg" true
            (match Json.member "args" e with
            | None -> true
            | Some args -> Json.member "trace" args = None)
        | _ -> Alcotest.fail "bare span lost");
  ]

(* -- context -------------------------------------------------------------- *)

let context_tests =
  [
    test "fresh ids are 16 lowercase hex chars and distinct" (fun () ->
        let a = Context.fresh () and b = Context.fresh () in
        check_int "length" 16 (String.length a);
        String.iter
          (fun c ->
            check_bool (Printf.sprintf "hex char %c" c) true
              ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
          a;
        check_bool "distinct" true (a <> b));
    test "with_id scopes the ambient id and restores on exit" (fun () ->
        check_bool "initially unset" true (Context.current () = None);
        Context.with_id "outer" (fun () ->
            check_bool "set" true (Context.current () = Some "outer");
            Context.with_id "inner" (fun () ->
                check_bool "nested" true (Context.current () = Some "inner"));
            check_bool "restored to outer" true (Context.current () = Some "outer"));
        check_bool "restored to unset" true (Context.current () = None));
    test "with_current restores even when the thunk raises" (fun () ->
        (match Context.with_current (Some "doomed") (fun () -> failwith "pop") with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "exception swallowed");
        check_bool "restored" true (Context.current () = None));
    test "the ambient id is domain-local" (fun () ->
        Context.with_id "main-id" (fun () ->
            let seen = Domain.join (Domain.spawn (fun () -> Context.current ())) in
            check_bool "spawned domain starts unset" true (seen = None);
            check_bool "main unchanged" true (Context.current () = Some "main-id")));
  ]

(* -- metrics -------------------------------------------------------------- *)

let metrics_tests =
  [
    obs_test "counters and gauges mutate only while enabled" (fun () ->
        let c = Metrics.counter ~help:"h" "obs_test_enabled_total" in
        let g = Metrics.gauge ~help:"h" "obs_test_gauge" in
        Metrics.incr c;
        Metrics.set g 5.;
        check_int "disabled incr dropped" 0 (Metrics.counter_value c);
        check_float "disabled set dropped" 0. (Metrics.gauge_value g);
        Metrics.set_enabled true;
        Metrics.incr c;
        Metrics.add c 4;
        Metrics.add c (-7);
        Metrics.set g 2.5;
        check_int "incr + add, negatives ignored" 5 (Metrics.counter_value c);
        check_float "gauge set" 2.5 (Metrics.gauge_value g));
    obs_test "registration is idempotent; kind mismatch raises" (fun () ->
        Metrics.set_enabled true;
        let a = Metrics.counter ~help:"h" "obs_test_idem_total" in
        let b = Metrics.counter ~help:"h" "obs_test_idem_total" in
        Metrics.incr a;
        Metrics.incr b;
        check_int "same instrument" 2 (Metrics.counter_value a);
        match Metrics.gauge ~help:"h" "obs_test_idem_total" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "kind mismatch accepted");
    obs_test "histogram buckets partition observations" (fun () ->
        Metrics.set_enabled true;
        let h =
          Metrics.histogram ~buckets:[ 1.; 10.; 100. ] ~help:"h" "obs_test_hist"
        in
        List.iter (Metrics.observe h) [ 0.5; 5.; 5.; 50.; 1000. ];
        check_int "count" 5 (Metrics.histogram_count h);
        check_float "sum" 1060.5 (Metrics.histogram_sum h);
        match Metrics.bucket_counts h with
        | [ (1., 1); (10., 2); (100., 1); (inf, 1) ] when inf = Float.infinity -> ()
        | counts ->
          Alcotest.fail
            (String.concat ";"
               (List.map (fun (b, n) -> Printf.sprintf "%g:%d" b n) counts)));
    obs_test "log_buckets spans lo..hi geometrically" (fun () ->
        match Metrics.log_buckets ~lo:1. ~hi:100. 3 with
        | [ a; b; c ] ->
          check_float "lo" 1. a;
          check_float "mid" 10. b;
          check_float "hi" 100. c
        | _ -> Alcotest.fail "expected three bounds");
    obs_test "prometheus export has one header per name and no duplicate samples"
      (fun () ->
        Metrics.set_enabled true;
        Metrics.incr (Metrics.counter ~help:"h" ~labels:[ ("k", "a") ] "obs_test_lbl_total");
        Metrics.incr (Metrics.counter ~help:"h" ~labels:[ ("k", "b") ] "obs_test_lbl_total");
        Metrics.observe (Metrics.histogram ~buckets:[ 1. ] ~help:"h" "obs_test_ph") 0.5;
        let lines = String.split_on_char '\n' (Metrics.to_prometheus ()) in
        let seen = Hashtbl.create 16 in
        List.iter
          (fun l ->
            if l <> "" then begin
              let key =
                if String.length l > 0 && l.[0] = '#' then l
                else
                  match String.rindex_opt l ' ' with
                  | Some i -> String.sub l 0 i
                  | None -> l
              in
              check_bool ("unique: " ^ key) false (Hashtbl.mem seen key);
              Hashtbl.add seen key ()
            end)
          lines;
        check_bool "both label sets exported" true
          (List.exists (fun l -> l = "obs_test_lbl_total{k=\"a\"} 1") lines
          && List.exists (fun l -> l = "obs_test_lbl_total{k=\"b\"} 1") lines));
    obs_test "prometheus histogram buckets are cumulative with sum and count" (fun () ->
        Metrics.set_enabled true;
        let h =
          Metrics.histogram ~buckets:[ 0.1; 1.; 10. ]
            ~labels:[ ("stage", "t") ]
            ~help:"h" "obs_test_cum_seconds"
        in
        List.iter (Metrics.observe h) [ 0.05; 0.5; 0.5; 5.; 50. ];
        let lines = String.split_on_char '\n' (Metrics.to_prometheus ()) in
        List.iter
          (fun l -> check_bool l true (List.mem l lines))
          [
            "obs_test_cum_seconds_bucket{stage=\"t\",le=\"0.1\"} 1";
            "obs_test_cum_seconds_bucket{stage=\"t\",le=\"1\"} 3";
            "obs_test_cum_seconds_bucket{stage=\"t\",le=\"10\"} 4";
            "obs_test_cum_seconds_bucket{stage=\"t\",le=\"+Inf\"} 5";
            "obs_test_cum_seconds_sum{stage=\"t\"} 56.05";
            "obs_test_cum_seconds_count{stage=\"t\"} 5";
          ]);
    obs_test "quantile interpolates within the crossing bucket" (fun () ->
        Metrics.set_enabled true;
        let h = Metrics.histogram ~buckets:[ 1.; 10.; 100. ] ~help:"h" "obs_test_quant" in
        check_float "empty histogram" 0. (Metrics.quantile h 0.5);
        List.iter (Metrics.observe h) [ 0.5; 5.; 5.; 50.; 1000. ];
        (* target 2.5 of 5 lands in (1,10] holding 2 samples after 1: 1 + 9*(1.5/2) *)
        check_float "p50 interpolated" 7.75 (Metrics.quantile h 0.5);
        check_float "overflow clamps to the highest finite bound" 100.
          (Metrics.quantile h 1.);
        check_float "q below range clamps to 0" 0. (Metrics.quantile h (-1.)));
    obs_test "json export parses and carries the samples" (fun () ->
        Metrics.set_enabled true;
        let c = Metrics.counter ~help:"h" "obs_test_json_total" in
        Metrics.add c 9;
        let v = parse_exn (Metrics.to_json ()) in
        check_bool "schema" true
          (Option.bind (Json.member "schema" v) Json.to_str = Some "mechaml-metrics/1");
        match Json.member "metrics" v with
        | Some (Json.List ms) ->
          check_bool "sample present" true
            (List.exists
               (fun m ->
                 Option.bind (Json.member "name" m) Json.to_str
                 = Some "obs_test_json_total"
                 && Option.bind (Json.member "value" m) Json.to_float = Some 9.)
               ms)
        | _ -> Alcotest.fail "no metrics array");
    obs_test "reset zeroes values but keeps registrations" (fun () ->
        Metrics.set_enabled true;
        let c = Metrics.counter ~help:"h" "obs_test_reset_total" in
        Metrics.incr c;
        Metrics.reset ();
        check_int "zeroed" 0 (Metrics.counter_value c);
        Metrics.incr c;
        check_int "still live" 1 (Metrics.counter_value c));
  ]

(* -- prof + log ----------------------------------------------------------- *)

let prof_log_tests =
  [
    obs_test "phase observes its duration histogram and traces GC deltas" (fun () ->
        Metrics.set_enabled true;
        Trace.enable ();
        check_int "result passes through" 3 (Prof.phase ~name:"obs_test_phase" (fun () -> 3));
        check_int "one observation" 1
          (Metrics.histogram_count (Prof.phase_seconds "obs_test_phase"));
        match spans_named "obs_test_phase" (events_of_export ()) with
        | [ e ] ->
          let args = Option.get (Json.member "args" e) in
          check_bool "wall_s attached" true (Json.member "wall_s" args <> None);
          check_bool "minor_words attached" true (Json.member "minor_words" args <> None)
        | _ -> Alcotest.fail "phase span lost");
    obs_test "log levels filter and quiet silences everything" (fun () ->
        let hits = ref [] in
        Log.set_output (fun level msg -> hits := (level, msg) :: !hits);
        Log.set_level Log.Info;
        Log.info (fun m -> m "seen %d" 1);
        Log.debug (fun m -> m "dropped");
        check_int "info passed, debug filtered" 1 (List.length !hits);
        check_bool "formatted" true (snd (List.hd !hits) = "seen 1");
        Log.set_level Log.Quiet;
        Log.err (fun m -> m "never");
        check_int "quiet drops even errors" 1 (List.length !hits);
        check_bool "enabled reflects quiet" false (Log.enabled Log.Error));
    obs_test "level names round trip" (fun () ->
        List.iter
          (fun l ->
            match Log.level_of_string (Log.level_to_string l) with
            | Ok l' -> check_bool (Log.level_to_string l) true (l = l')
            | Error m -> Alcotest.fail m)
          [ Log.Quiet; Log.Error; Log.Warn; Log.Info; Log.Debug ];
        check_bool "unknown rejected" true (Result.is_error (Log.level_of_string "loud")));
  ]

(* -- verdict neutrality --------------------------------------------------- *)

let neutrality_tests =
  [
    obs_test "tracing and metrics never change a canonical report" (fun () ->
        let matrix () = Campaign.bundled ~tiny:true () in
        let bare = Report.canonical (Campaign.run ~jobs:1 (matrix ())) in
        List.iter
          (fun jobs ->
            Trace.enable ();
            Metrics.set_enabled true;
            let observed = Report.canonical (Campaign.run ~jobs (matrix ())) in
            Trace.disable ();
            Trace.reset ();
            Metrics.set_enabled false;
            let silent = Report.canonical (Campaign.run ~jobs (matrix ())) in
            check_string
              (Printf.sprintf "observed jobs=%d = bare" jobs)
              bare observed;
            check_string (Printf.sprintf "silent jobs=%d = bare" jobs) bare silent)
          [ 1; 4 ]);
  ]

let () =
  Alcotest.run "obs"
    [
      ("json", json_tests);
      ("context", context_tests);
      ("trace", trace_tests);
      ("metrics", metrics_tests);
      ("prof+log", prof_log_tests);
      ("neutrality", neutrality_tests);
    ]
