(* Report serialization details: RFC-4180 CSV field encoding.  The campaign
   CSV carries free-form text (job ids, error messages from Failed verdicts,
   fault profile names), so the quoting rules are load-bearing: a crash
   message containing a comma or newline must not shear a row. *)

module Report = Mechaml_engine.Report
open Helpers

let field = Report.csv_field

let unit_tests =
  [
    test "plain fields pass through verbatim" (fun () ->
        check_string "word" "proved" (field "proved");
        check_string "empty" "" (field "");
        check_string "spaces ok" "a b c" (field "a b c");
        check_string "id chars" "railcab/correct/constraint/bfs"
          (field "railcab/correct/constraint/bfs"));
    test "a comma forces quoting" (fun () ->
        check_string "comma" "\"a,b\"" (field "a,b");
        check_string "leading comma" "\",x\"" (field ",x"));
    test "embedded quotes are doubled inside a quoted field" (fun () ->
        check_string "one quote" "\"say \"\"hi\"\"\"" (field "say \"hi\"");
        check_string "only a quote" "\"\"\"\"" (field "\""));
    test "newlines and carriage returns force quoting" (fun () ->
        check_string "lf" "\"line1\nline2\"" (field "line1\nline2");
        check_string "cr" "\"a\rb\"" (field "a\rb");
        check_string "crlf" "\"a\r\nb\"" (field "a\r\nb"));
    test "combined specials stay one field" (fun () ->
        check_string "all of them" "\"driver crashed: \"\"x,y\"\"\nretrying\""
          (field "driver crashed: \"x,y\"\nretrying"));
    test "a quoted error message survives a csv round trip" (fun () ->
        (* split on unquoted commas, undouble quotes — the consumer side *)
        let msg = "boom, with \"quotes\" and\na newline" in
        let encoded = field msg in
        check_bool "quoted" true (encoded.[0] = '"');
        let inner = String.sub encoded 1 (String.length encoded - 2) in
        let buf = Buffer.create 32 in
        let i = ref 0 in
        while !i < String.length inner do
          if inner.[!i] = '"' then begin
            Buffer.add_char buf '"';
            i := !i + 2
          end
          else begin
            Buffer.add_char buf inner.[!i];
            incr i
          end
        done;
        check_string "decodes back" msg (Buffer.contents buf));
  ]

let () = Alcotest.run "report" [ ("csv_field", unit_tests) ]
