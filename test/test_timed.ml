(* The timed scenarios: the watchdog (clock-bearing context) and the
   connector-mediated RailCab variant (delay and loss), including the
   regression for the evidence-completeness soundness fix: a bounded-response
   property over a reliable channel must be PROVED, not mistaken for a
   violation via a blocking closed-copy artefact. *)

module Watchdog = Mechaml_scenarios.Watchdog
module Remote = Mechaml_scenarios.Railcab_remote
module Loop = Mechaml_core.Loop
module Conformance = Mechaml_core.Conformance
module Checker = Mechaml_mc.Checker
module Compose = Mechaml_ts.Compose
module Automaton = Mechaml_ts.Automaton
module Ctl = Mechaml_logic.Ctl
open Helpers

let relabel_with labels m =
  let props =
    List.init (Automaton.num_states m) (fun s -> labels (Automaton.state_name m s))
    |> List.concat |> List.sort_uniq compare
  in
  let u = Mechaml_ts.Universe.of_list props in
  Automaton.relabel m ~props:u (fun s ->
      Mechaml_ts.Universe.set_of_names u (labels (Automaton.state_name m s)))

let unit_tests =
  [
    test "watchdog context has the clocked shape" (fun () ->
        let m = Watchdog.watchdog in
        (* waiting[x=0..3], justFed[x=0..], starved — bounded by the cap *)
        check_bool "clock configurations bounded" true (Automaton.num_states m <= 12);
        check_bool "starved state exists" true
          (List.exists
             (fun s -> Automaton.has_prop m s "watchdog.starved")
             (List.init (Automaton.num_states m) Fun.id)));
    test "prompt controller is proved" (fun () ->
        let r = Watchdog.run_prompt () in
        match r.Loop.verdict with
        | Loop.Proved ->
          check_bool "conforms" true
            (Conformance.conforms r.Loop.final_model Watchdog.controller_prompt)
        | _ -> Alcotest.fail "expected Proved");
    test "sluggish controller starves the watchdog for real" (fun () ->
        let r = Watchdog.run_sluggish () in
        match r.Loop.verdict with
        | Loop.Real_violation { kind = Loop.Property; witness; product; _ } ->
          let final = Mechaml_ts.Run.final_state witness in
          check_bool "ends starved" true
            (Automaton.has_prop product.Compose.auto final "watchdog.starved")
        | _ -> Alcotest.fail "expected a real property violation");
    test "watchdog verdicts agree with the exact compositions" (fun () ->
        let check_exact controller expected =
          let p = Compose.parallel Watchdog.watchdog controller in
          Alcotest.(check bool) "exact" expected
            (Checker.holds p.Compose.auto Watchdog.property)
        in
        check_exact Watchdog.controller_prompt true;
        check_exact Watchdog.controller_sluggish false);
    test "deadline CCTL obligation holds on the exact prompt composition" (fun () ->
        let p = Compose.parallel Watchdog.watchdog Watchdog.controller_prompt in
        check_bool "AF[1,3] justFed after waiting" true
          (Checker.holds p.Compose.auto Watchdog.deadline_property));
    test "remote railcab: constraint proved over the reliable channel" (fun () ->
        let r = Remote.run ~lossy:false ~property:Remote.constraint_ () in
        match r.Loop.verdict with
        | Loop.Proved ->
          check_bool "learned the remote component" true
            (Conformance.conforms r.Loop.final_model Remote.legacy_remote)
        | _ -> Alcotest.fail "expected Proved");
    test "remote railcab: bounded response proved over the reliable channel" (fun () ->
        (* regression for the evidence-completeness fix: the blocked closed
           copy of the wait state must not masquerade as a real violation *)
        let r = Remote.run ~lossy:false ~property:Remote.response_property () in
        match r.Loop.verdict with
        | Loop.Proved -> ()
        | Loop.Real_violation _ -> Alcotest.fail "unsound: reliable channel meets the deadline"
        | Loop.Exhausted _ -> Alcotest.fail "should terminate"
        | Loop.Degraded _ -> Alcotest.fail "no faults injected: must not degrade");
    test "remote railcab: bounded response fails for real over the lossy channel" (fun () ->
        let r = Remote.run ~lossy:true ~property:Remote.response_property () in
        match r.Loop.verdict with
        | Loop.Real_violation { kind = Loop.Property; witness; product; _ } ->
          (* the counterexample replays on the component *)
          let tc =
            Mechaml_testing.Testcase.of_projected_run product.Compose.right
              (Compose.project_right product witness)
          in
          let v = Mechaml_testing.Testcase.execute ~box:Remote.box_remote tc in
          check_bool "replays" true
            (v.Mechaml_testing.Testcase.classification = Mechaml_testing.Testcase.Reproduced)
        | _ -> Alcotest.fail "expected a real property violation");
    test "remote railcab: hasty front role really violates the constraint" (fun () ->
        let r =
          Loop.run ~label_of:Remote.label_of ~context:Remote.front_hasty_context
            ~property:Remote.constraint_ ~legacy:Remote.box_remote ()
        in
        match r.Loop.verdict with
        | Loop.Real_violation { kind = Loop.Property; _ } -> ()
        | _ -> Alcotest.fail "expected a real violation (ack in flight)");
    test "loop verdicts match the exact remote compositions" (fun () ->
        let labelled = relabel_with Remote.label_of Remote.legacy_remote in
        let exact lossy = Compose.parallel (Remote.context ~lossy) labelled in
        check_bool "reliable constraint" true
          (Checker.holds (exact false).Compose.auto Remote.constraint_);
        check_bool "reliable response" true
          (Checker.holds (exact false).Compose.auto Remote.response_property);
        check_bool "lossy response fails" false
          (Checker.holds (exact true).Compose.auto Remote.response_property);
        check_bool "both deadlock free" true
          (Checker.holds (exact true).Compose.auto Ctl.deadlock_free));
  ]

let () = Alcotest.run "timed" [ ("unit", unit_tests) ]
