(* Campaign engine: the worker pool, the memo cache and the job runner must
   never change a verdict — parallelism and caching only move time around.
   The tests pin that contract: jobs=1 and jobs=4 produce byte-identical
   canonical reports, a warm cache answers from memory without changing
   results, and a timed-out job is reported as such without poisoning its
   siblings. *)

module Campaign = Mechaml_engine.Campaign
module Cache = Mechaml_engine.Cache
module Pool = Mechaml_engine.Pool
module Report = Mechaml_engine.Report
module Railcab = Mechaml_scenarios.Railcab
module Flaky = Mechaml_legacy.Flaky
module Supervisor = Mechaml_legacy.Supervisor
open Helpers

let contains ~sub text =
  let n = String.length sub and m = String.length text in
  let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
  go 0

(* The RailCab slice of the bundled matrix: both fault variants under both
   strategies, plus the flaky driver exercising the retry path. *)
let railcab_matrix () =
  List.filter
    (fun (s : Campaign.spec) -> s.Campaign.family = "railcab")
    (Campaign.bundled ())

let correct_job ~id =
  Campaign.job ~id ~family:"railcab" ~context:Railcab.context
    ~property:Railcab.constraint_ ~label_of:Railcab.label_of (fun () -> Railcab.box_correct)

let unit_tests =
  [
    test "jobs=1 and jobs=4 produce identical verdict sets" (fun () ->
        let sequential = Campaign.run ~jobs:1 (railcab_matrix ()) in
        let parallel = Campaign.run ~jobs:4 (railcab_matrix ()) in
        check_string "canonical reports" (Report.canonical sequential)
          (Report.canonical parallel));
    test "a warm cache changes no verdicts and reports hits" (fun () ->
        let cache = Cache.create () in
        let cold = Campaign.run ~jobs:1 ~cache (railcab_matrix ()) in
        let warm = Campaign.run ~jobs:1 ~cache (railcab_matrix ()) in
        check_string "verdicts unchanged" (Report.canonical cold) (Report.canonical warm);
        let hits =
          List.fold_left
            (fun acc (o : Campaign.outcome) ->
              acc + o.Campaign.cache.Campaign.closure_hits
              + o.Campaign.cache.Campaign.check_hits)
            0 warm
        in
        check_bool "warm run hits the cache" true (hits > 0);
        (* every stage of every deterministic job replays from memory *)
        let misses =
          List.fold_left
            (fun acc (o : Campaign.outcome) ->
              acc + o.Campaign.cache.Campaign.closure_misses
              + o.Campaign.cache.Campaign.check_misses)
            0 warm
        in
        check_int "warm run recomputes nothing" 0 misses;
        check_bool "cache stats agree" true (Cache.hits (Cache.stats cache) >= hits));
    test "a timed-out job is reported without poisoning siblings" (fun () ->
        let timed =
          { (correct_job ~id:"railcab/timed") with Campaign.timeout = Some 0. }
        in
        let outcomes =
          Campaign.run ~jobs:2 [ timed; correct_job ~id:"railcab/healthy" ]
        in
        (match outcomes with
        | [ t; h ] ->
          check_bool "timed out" true (t.Campaign.verdict = Campaign.Timed_out);
          check_int "no iteration completed" 0 t.Campaign.iterations;
          check_bool "sibling proved" true (h.Campaign.verdict = Campaign.Proved)
        | _ -> Alcotest.fail "expected two outcomes in spec order"));
    test "crashed attempts are retried and counted" (fun () ->
        (* a nondeterministic driver trips the replay guardrail on every
           attempt: all retries are consumed and the failure is reported *)
        let flaky =
          Campaign.job ~id:"railcab/flaky" ~family:"railcab" ~context:Railcab.context
            ~property:Railcab.constraint_ ~label_of:Railcab.label_of ~retries:2 (fun () ->
              Flaky.nondeterministic ~seed:3 ~flip_every:5 Railcab.box_correct)
        in
        match Campaign.run [ flaky ] with
        | [ o ] ->
          check_int "attempts = 1 + retries" 3 o.Campaign.attempts;
          check_bool "failed verdict carries the error" true
            (match o.Campaign.verdict with
            | Campaign.Failed e -> String.length e > 0
            | _ -> false)
        | _ -> Alcotest.fail "expected one outcome");
    test "duplicate job ids are rejected" (fun () ->
        match Campaign.run [ correct_job ~id:"dup"; correct_job ~id:"dup" ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "duplicate id accepted");
    test "pool keeps order and propagates exceptions" (fun () ->
        let doubled =
          Pool.map ~jobs:4 ~f:(fun i -> 2 * i) (Array.init 100 (fun i -> i))
        in
        check_bool "ordered results" true
          (Array.to_list doubled = List.init 100 (fun i -> 2 * i));
        match Pool.map ~jobs:3 ~f:(fun i -> if i = 5 then failwith "boom" else i)
                (Array.init 8 (fun i -> i))
        with
        | exception Failure msg -> check_string "first failure wins" "boom" msg
        | _ -> Alcotest.fail "exception swallowed");
    test "json and csv reports carry every job" (fun () ->
        let outcomes = Campaign.run ~jobs:2 (Campaign.bundled ~tiny:true ()) in
        let json = Report.to_json ~jobs:2 outcomes in
        let csv = Report.to_csv outcomes in
        List.iter
          (fun (o : Campaign.outcome) ->
            check_bool ("json has " ^ o.Campaign.spec_id) true
              (let sub = Printf.sprintf "\"id\": \"%s\"" o.Campaign.spec_id in
               let n = String.length sub and m = String.length json in
               let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
               go 0))
          outcomes;
        check_int "csv rows = jobs + header" (List.length outcomes + 1)
          (List.length
             (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv))));
    test "supervised fault injection keeps verdicts worker-independent" (fun () ->
        let supervised =
          Campaign.job ~id:"inj/chaos" ~family:"railcab" ~context:Railcab.context
            ~property:Railcab.constraint_ ~label_of:Railcab.label_of
            ~inject:"crash+flaky" ~seed:11
            ~policy:{ Supervisor.default_policy with retries = 5; votes = 3; breaker = 24 }
            (fun () -> Railcab.box_correct)
        and bricked =
          Campaign.job ~id:"inj/brick" ~family:"railcab" ~context:Railcab.context
            ~property:Railcab.constraint_ ~label_of:Railcab.label_of ~inject:"brick"
            ~seed:1
            ~policy:{ Supervisor.default_policy with retries = 4; breaker = 3 }
            (fun () -> Railcab.box_correct)
        in
        let matrix = [ supervised; bricked; correct_job ~id:"inj/clean" ] in
        let sequential = Campaign.run ~jobs:1 matrix in
        let parallel = Campaign.run ~jobs:2 matrix in
        check_string "canonical reports" (Report.canonical sequential)
          (Report.canonical parallel);
        match sequential with
        | [ chaos; brick; clean ] ->
          check_bool "chaos still proves" true (chaos.Campaign.verdict = Campaign.Proved);
          (match chaos.Campaign.supervision with
          | Some s ->
            check_bool "crashes healed" true (s.Supervisor.crashes > 0);
            check_bool "ballots held" true (s.Supervisor.votes_held > 0)
          | None -> Alcotest.fail "supervised job lost its stats");
          (match brick.Campaign.verdict with
          | Campaign.Degraded { reason } ->
            check_bool "reason survives" true (String.length reason > 0)
          | _ -> Alcotest.fail "bricked job must degrade, not fail");
          (match brick.Campaign.supervision with
          | Some s -> check_bool "trip counted" true (s.Supervisor.breaker_trips >= 1)
          | None -> Alcotest.fail "bricked job lost its stats");
          check_bool "clean sibling unaffected" true
            (clean.Campaign.verdict = Campaign.Proved);
          check_bool "clean job reports no fault" true (clean.Campaign.fault = None)
        | _ -> Alcotest.fail "expected three outcomes in spec order");
    test "a bad fault profile fails only its own job" (fun () ->
        let bad =
          { (correct_job ~id:"inj/bad") with Campaign.inject = Some "nope" }
        in
        match Campaign.run ~jobs:2 [ bad; correct_job ~id:"inj/ok" ] with
        | [ b; ok ] ->
          check_bool "bad profile is a Failed verdict" true
            (match b.Campaign.verdict with
            | Campaign.Failed msg -> contains ~sub:"nope" msg
            | _ -> false);
          check_bool "sibling proved" true (ok.Campaign.verdict = Campaign.Proved)
        | _ -> Alcotest.fail "expected two outcomes");
    test "degraded verdicts reach every report format" (fun () ->
        let brick =
          Campaign.job ~id:"report/brick" ~family:"railcab" ~context:Railcab.context
            ~property:Railcab.constraint_ ~label_of:Railcab.label_of ~inject:"brick"
            ~seed:1
            ~policy:{ Supervisor.default_policy with retries = 2; breaker = 3 }
            (fun () -> Railcab.box_correct)
        in
        let outcomes = Campaign.run [ brick ] in
        check_bool "table shows the degradation" true
          (contains ~sub:"degraded" (Report.table outcomes));
        check_bool "json shows the degradation" true
          (contains ~sub:"\"verdict\": \"degraded\"" (Report.to_json ~jobs:1 outcomes));
        check_bool "csv shows the degradation" true
          (contains ~sub:"degraded" (Report.to_csv outcomes));
        check_bool "canonical shows the degradation" true
          (contains ~sub:"degraded" (Report.canonical outcomes)));
  ]

(* -- cache eviction and persistence ---------------------------------------- *)

let tiny_auto name =
  automaton ~name ~inputs:[ "i" ] ~outputs:[ "o" ]
    ~trans:[ ("s", [ "i" ], [ "o" ], "s") ]
    ~initial:[ "s" ] ()

let cache_tests =
  [
    test "eviction is LRU with touch-on-hit, not FIFO" (fun () ->
        let c = Cache.create ~capacity:2 () in
        let get key = Cache.closure c ~key (fun () -> tiny_auto key) in
        ignore (get "a");
        ignore (get "b");
        (* a hit refreshes recency: "a" becomes MRU, "b" the LRU *)
        let _, hit = get "a" in
        check_bool "a answers from the cache" true hit;
        (* inserting "c" over capacity evicts "b"; FIFO would evict "a" *)
        ignore (get "c");
        let _, hit_a = get "a" in
        check_bool "the touched entry survived capacity pressure" true hit_a;
        let _, hit_b = get "b" in
        check_bool "the least-recently-used entry was evicted" false hit_b;
        check_bool "evictions counted" true ((Cache.stats c).Cache.evictions >= 1));
    test "a losing racer keeps its own computed value" (fun () ->
        (* Two domains racing on one fresh key both compute; the first store
           wins for future lookups, but the loser must get back the object its
           own [compute] returned — Loop's incremental-closure handle compares
           it physically against the handle's automaton, and swapping in the
           winner's structurally identical copy made the handle derive an
           empty dirty delta and serve stale product rows.  A re-entrant
           [compute] plays the winner deterministically. *)
        let c = Cache.create () in
        let winner = tiny_auto "racer" in
        let mine = tiny_auto "racer" in
        let got, hit =
          Cache.closure c ~key:"k"
            (fun () ->
              ignore (Cache.closure c ~key:"k" (fun () -> winner));
              mine)
        in
        check_bool "reported as a miss" false hit;
        check_bool "loser's own value returned" true (got == mine);
        let stored, hit = Cache.closure c ~key:"k" (fun () -> assert false) in
        check_bool "later lookups hit" true hit;
        check_bool "first store won" true (stored == winner));
    test "snapshot save/load restores entries without counters" (fun () ->
        let c = Cache.create () in
        ignore (Cache.closure c ~key:"k1" (fun () -> tiny_auto "k1"));
        ignore (Cache.closure c ~key:"k2" (fun () -> tiny_auto "k2"));
        let path = Filename.temp_file "mechaml_cache" ".snap" in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
          (fun () ->
            Cache.save c ~path;
            let fresh = Cache.create () in
            (match Cache.load fresh ~path with
            | Ok n -> check_int "entries restored" 2 n
            | Error e -> Alcotest.fail e);
            let s = Cache.stats fresh in
            check_int "restored entries visible" 2 s.Cache.entries;
            check_int "counters start from zero" 0 (Cache.lookups s);
            let v, hit =
              Cache.closure fresh ~key:"k1" (fun () ->
                  Alcotest.fail "restored entry recomputed")
            in
            check_bool "restored entry hits" true hit;
            check_string "restored value intact" "k1"
              v.Mechaml_ts.Automaton.name));
    test "a capacity-bounded load keeps the most recent entries" (fun () ->
        let big = Cache.create () in
        List.iter
          (fun key -> ignore (Cache.closure big ~key (fun () -> tiny_auto key)))
          [ "old"; "mid"; "new" ];
        let path = Filename.temp_file "mechaml_cache" ".snap" in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
          (fun () ->
            Cache.save big ~path;
            let small = Cache.create ~capacity:2 () in
            (match Cache.load small ~path with
            | Ok n -> check_int "capacity entries restored" 2 n
            | Error e -> Alcotest.fail e);
            let hit key =
              snd (Cache.closure small ~key (fun () -> tiny_auto key))
            in
            check_bool "newest survives" true (hit "new");
            check_bool "second newest survives" true (hit "mid");
            check_int "truncation is not eviction churn" 0
              (Cache.stats small).Cache.evictions));
    test "loading a missing or corrupt snapshot is an error, not a crash" (fun () ->
        let c = Cache.create () in
        (match Cache.load c ~path:"/nonexistent/mechaml.snap" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "missing file loaded");
        let path = Filename.temp_file "mechaml_cache" ".snap" in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            output_string oc "not a cache snapshot at all";
            close_out oc;
            (match Cache.load c ~path with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "foreign file loaded");
            (* correct header, garbage payload *)
            let oc = open_out_bin path in
            output_string oc "mechaml-cache 1\ngarbage payload";
            close_out oc;
            match Cache.load c ~path with
            | Error _ -> check_int "cache unharmed" 0 (Cache.stats c).Cache.entries
            | Ok _ -> Alcotest.fail "corrupt payload loaded"));
    test "existing entries win over snapshot entries under the same key" (fun () ->
        let donor = Cache.create () in
        ignore (Cache.closure donor ~key:"shared" (fun () -> tiny_auto "from_snapshot"));
        let path = Filename.temp_file "mechaml_cache" ".snap" in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
          (fun () ->
            Cache.save donor ~path;
            let live = Cache.create () in
            ignore (Cache.closure live ~key:"shared" (fun () -> tiny_auto "live"));
            (match Cache.load live ~path with
            | Ok _ -> ()
            | Error e -> Alcotest.fail e);
            let v, hit = Cache.closure live ~key:"shared" (fun () -> tiny_auto "x") in
            check_bool "hit" true hit;
            check_string "live value kept" "live" v.Mechaml_ts.Automaton.name));
  ]

let () = Alcotest.run "engine" [ ("engine", unit_tests); ("cache", cache_tests) ]
