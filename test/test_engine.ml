(* Campaign engine: the worker pool, the memo cache and the job runner must
   never change a verdict — parallelism and caching only move time around.
   The tests pin that contract: jobs=1 and jobs=4 produce byte-identical
   canonical reports, a warm cache answers from memory without changing
   results, and a timed-out job is reported as such without poisoning its
   siblings. *)

module Campaign = Mechaml_engine.Campaign
module Cache = Mechaml_engine.Cache
module Pool = Mechaml_engine.Pool
module Report = Mechaml_engine.Report
module Railcab = Mechaml_scenarios.Railcab
module Flaky = Mechaml_legacy.Flaky
module Supervisor = Mechaml_legacy.Supervisor
open Helpers

let contains ~sub text =
  let n = String.length sub and m = String.length text in
  let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
  go 0

(* The RailCab slice of the bundled matrix: both fault variants under both
   strategies, plus the flaky driver exercising the retry path. *)
let railcab_matrix () =
  List.filter
    (fun (s : Campaign.spec) -> s.Campaign.family = "railcab")
    (Campaign.bundled ())

let correct_job ~id =
  Campaign.job ~id ~family:"railcab" ~context:Railcab.context
    ~property:Railcab.constraint_ ~label_of:Railcab.label_of (fun () -> Railcab.box_correct)

let unit_tests =
  [
    test "jobs=1 and jobs=4 produce identical verdict sets" (fun () ->
        let sequential = Campaign.run ~jobs:1 (railcab_matrix ()) in
        let parallel = Campaign.run ~jobs:4 (railcab_matrix ()) in
        check_string "canonical reports" (Report.canonical sequential)
          (Report.canonical parallel));
    test "a warm cache changes no verdicts and reports hits" (fun () ->
        let cache = Cache.create () in
        let cold = Campaign.run ~jobs:1 ~cache (railcab_matrix ()) in
        let warm = Campaign.run ~jobs:1 ~cache (railcab_matrix ()) in
        check_string "verdicts unchanged" (Report.canonical cold) (Report.canonical warm);
        let hits =
          List.fold_left
            (fun acc (o : Campaign.outcome) ->
              acc + o.Campaign.cache.Campaign.closure_hits
              + o.Campaign.cache.Campaign.check_hits)
            0 warm
        in
        check_bool "warm run hits the cache" true (hits > 0);
        (* every stage of every deterministic job replays from memory *)
        let misses =
          List.fold_left
            (fun acc (o : Campaign.outcome) ->
              acc + o.Campaign.cache.Campaign.closure_misses
              + o.Campaign.cache.Campaign.check_misses)
            0 warm
        in
        check_int "warm run recomputes nothing" 0 misses;
        check_bool "cache stats agree" true (Cache.hits (Cache.stats cache) >= hits));
    test "a timed-out job is reported without poisoning siblings" (fun () ->
        let timed =
          { (correct_job ~id:"railcab/timed") with Campaign.timeout = Some 0. }
        in
        let outcomes =
          Campaign.run ~jobs:2 [ timed; correct_job ~id:"railcab/healthy" ]
        in
        (match outcomes with
        | [ t; h ] ->
          check_bool "timed out" true (t.Campaign.verdict = Campaign.Timed_out);
          check_int "no iteration completed" 0 t.Campaign.iterations;
          check_bool "sibling proved" true (h.Campaign.verdict = Campaign.Proved)
        | _ -> Alcotest.fail "expected two outcomes in spec order"));
    test "crashed attempts are retried and counted" (fun () ->
        (* a nondeterministic driver trips the replay guardrail on every
           attempt: all retries are consumed and the failure is reported *)
        let flaky =
          Campaign.job ~id:"railcab/flaky" ~family:"railcab" ~context:Railcab.context
            ~property:Railcab.constraint_ ~label_of:Railcab.label_of ~retries:2 (fun () ->
              Flaky.nondeterministic ~seed:3 ~flip_every:5 Railcab.box_correct)
        in
        match Campaign.run [ flaky ] with
        | [ o ] ->
          check_int "attempts = 1 + retries" 3 o.Campaign.attempts;
          check_bool "failed verdict carries the error" true
            (match o.Campaign.verdict with
            | Campaign.Failed e -> String.length e > 0
            | _ -> false)
        | _ -> Alcotest.fail "expected one outcome");
    test "duplicate job ids are rejected" (fun () ->
        match Campaign.run [ correct_job ~id:"dup"; correct_job ~id:"dup" ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "duplicate id accepted");
    test "pool keeps order and propagates exceptions" (fun () ->
        let doubled =
          Pool.map ~jobs:4 ~f:(fun i -> 2 * i) (Array.init 100 (fun i -> i))
        in
        check_bool "ordered results" true
          (Array.to_list doubled = List.init 100 (fun i -> 2 * i));
        match Pool.map ~jobs:3 ~f:(fun i -> if i = 5 then failwith "boom" else i)
                (Array.init 8 (fun i -> i))
        with
        | exception Failure msg -> check_string "first failure wins" "boom" msg
        | _ -> Alcotest.fail "exception swallowed");
    test "json and csv reports carry every job" (fun () ->
        let outcomes = Campaign.run ~jobs:2 (Campaign.bundled ~tiny:true ()) in
        let json = Report.to_json ~jobs:2 outcomes in
        let csv = Report.to_csv outcomes in
        List.iter
          (fun (o : Campaign.outcome) ->
            check_bool ("json has " ^ o.Campaign.spec_id) true
              (let sub = Printf.sprintf "\"id\": \"%s\"" o.Campaign.spec_id in
               let n = String.length sub and m = String.length json in
               let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
               go 0))
          outcomes;
        check_int "csv rows = jobs + header" (List.length outcomes + 1)
          (List.length
             (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv))));
    test "supervised fault injection keeps verdicts worker-independent" (fun () ->
        let supervised =
          Campaign.job ~id:"inj/chaos" ~family:"railcab" ~context:Railcab.context
            ~property:Railcab.constraint_ ~label_of:Railcab.label_of
            ~inject:"crash+flaky" ~seed:11
            ~policy:{ Supervisor.default_policy with retries = 5; votes = 3; breaker = 24 }
            (fun () -> Railcab.box_correct)
        and bricked =
          Campaign.job ~id:"inj/brick" ~family:"railcab" ~context:Railcab.context
            ~property:Railcab.constraint_ ~label_of:Railcab.label_of ~inject:"brick"
            ~seed:1
            ~policy:{ Supervisor.default_policy with retries = 4; breaker = 3 }
            (fun () -> Railcab.box_correct)
        in
        let matrix = [ supervised; bricked; correct_job ~id:"inj/clean" ] in
        let sequential = Campaign.run ~jobs:1 matrix in
        let parallel = Campaign.run ~jobs:2 matrix in
        check_string "canonical reports" (Report.canonical sequential)
          (Report.canonical parallel);
        match sequential with
        | [ chaos; brick; clean ] ->
          check_bool "chaos still proves" true (chaos.Campaign.verdict = Campaign.Proved);
          (match chaos.Campaign.supervision with
          | Some s ->
            check_bool "crashes healed" true (s.Supervisor.crashes > 0);
            check_bool "ballots held" true (s.Supervisor.votes_held > 0)
          | None -> Alcotest.fail "supervised job lost its stats");
          (match brick.Campaign.verdict with
          | Campaign.Degraded { reason } ->
            check_bool "reason survives" true (String.length reason > 0)
          | _ -> Alcotest.fail "bricked job must degrade, not fail");
          (match brick.Campaign.supervision with
          | Some s -> check_bool "trip counted" true (s.Supervisor.breaker_trips >= 1)
          | None -> Alcotest.fail "bricked job lost its stats");
          check_bool "clean sibling unaffected" true
            (clean.Campaign.verdict = Campaign.Proved);
          check_bool "clean job reports no fault" true (clean.Campaign.fault = None)
        | _ -> Alcotest.fail "expected three outcomes in spec order");
    test "a bad fault profile fails only its own job" (fun () ->
        let bad =
          { (correct_job ~id:"inj/bad") with Campaign.inject = Some "nope" }
        in
        match Campaign.run ~jobs:2 [ bad; correct_job ~id:"inj/ok" ] with
        | [ b; ok ] ->
          check_bool "bad profile is a Failed verdict" true
            (match b.Campaign.verdict with
            | Campaign.Failed msg -> contains ~sub:"nope" msg
            | _ -> false);
          check_bool "sibling proved" true (ok.Campaign.verdict = Campaign.Proved)
        | _ -> Alcotest.fail "expected two outcomes");
    test "degraded verdicts reach every report format" (fun () ->
        let brick =
          Campaign.job ~id:"report/brick" ~family:"railcab" ~context:Railcab.context
            ~property:Railcab.constraint_ ~label_of:Railcab.label_of ~inject:"brick"
            ~seed:1
            ~policy:{ Supervisor.default_policy with retries = 2; breaker = 3 }
            (fun () -> Railcab.box_correct)
        in
        let outcomes = Campaign.run [ brick ] in
        check_bool "table shows the degradation" true
          (contains ~sub:"degraded" (Report.table outcomes));
        check_bool "json shows the degradation" true
          (contains ~sub:"\"verdict\": \"degraded\"" (Report.to_json ~jobs:1 outcomes));
        check_bool "csv shows the degradation" true
          (contains ~sub:"degraded" (Report.to_csv outcomes));
        check_bool "canonical shows the degradation" true
          (contains ~sub:"degraded" (Report.canonical outcomes)));
  ]

let () = Alcotest.run "engine" [ ("engine", unit_tests) ]
