(* mechaverify — command-line front end for the legacy-component integration
   workflow: run the iterative behavior synthesis on the bundled scenarios,
   verify patterns, export figures, and compare against the learning
   baselines. *)

module Loop = Mechaml_core.Loop
module Incomplete = Mechaml_core.Incomplete
module Chaos = Mechaml_core.Chaos
module Witness = Mechaml_mc.Witness
module Checker = Mechaml_mc.Checker
module Dot = Mechaml_ts.Dot
module Shard = Mechaml_ts.Shard
module Railcab = Mechaml_scenarios.Railcab
module Protocol = Mechaml_scenarios.Protocol
module Watchdog = Mechaml_scenarios.Watchdog
module Families = Mechaml_scenarios.Families
module Listing = Mechaml_scenarios.Listing
module Faults = Mechaml_legacy.Faults
module Supervisor = Mechaml_legacy.Supervisor
module Obs_log = Mechaml_obs.Log
module Trace = Mechaml_obs.Trace
module Metrics = Mechaml_obs.Metrics
open Cmdliner

let verbose_t =
  let doc = "Log each iteration of the synthesis loop (shorthand for --log-level info)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let strategy_t =
  let doc = "Counterexample search strategy: $(b,bfs) (shortest) or $(b,dfs) (first found)." in
  let strategy_conv =
    Arg.enum [ ("bfs", Witness.Bfs_shortest); ("dfs", Witness.Dfs_first) ]
  in
  Arg.(value & opt strategy_conv Witness.Bfs_shortest & info [ "strategy" ] ~docv:"STRATEGY" ~doc)

let dot_dir_t =
  let doc = "Write DOT figures (learned model, closure) into $(docv)." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"DIR" ~doc)

(* -- incremental re-verification (shared by run and campaign) -- *)

let no_incremental_t =
  let doc =
    "Recompute the chaotic closure, the parallel product and every CCTL fixpoint from \
     scratch each iteration instead of patching the previous iteration's results.  \
     Verdicts are identical either way; this only trades speed for simpler profiling."
  in
  Arg.(value & flag & info [ "no-incremental" ] ~doc)

let incremental_debug_t =
  let doc =
    "Cross-check incremental re-verification: recompute every patched closure and \
     warm-started fixpoint from scratch as well and abort on any divergence.  Slower \
     than both modes combined; a correctness harness, not a production setting."
  in
  Arg.(value & flag & info [ "incremental-debug" ] ~doc)

(* -- sharded, out-of-core exploration (shared by run, campaign and serve) -- *)

let shards_t =
  let doc =
    "Partition the product exploration and the model-checking fixpoints into $(docv) \
     shards by state-key hash.  Verdicts, witnesses and canonical reports are \
     byte-identical for every shard count; sharding only changes memory locality and \
     enables $(b,--mem-budget) spilling."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"K" ~doc)

let mem_budget_t =
  let doc =
    "Residency watermark for the sharded product, e.g. $(b,64M) or $(b,2G) (suffixes \
     K/M/G, plain bytes otherwise).  Cold shard segments beyond the watermark spill to \
     disk and reload on demand.  Implies sharded exploration even with $(b,--shards 1)."
  in
  Arg.(value & opt (some string) None & info [ "mem-budget" ] ~docv:"BYTES" ~doc)

let spill_dir_t =
  let doc =
    "Parent directory for spill files (default: the system temp dir).  The per-run \
     subdirectory is removed when the run completes."
  in
  Arg.(value & opt (some string) None & info [ "spill-dir" ] ~docv:"DIR" ~doc)

let dist_workers_t =
  let doc =
    "Run the sharded build and the model-checking fixpoints on $(docv) local worker \
     $(i,processes) (spawned as $(b,mechaverify shard-worker)) instead of in-process \
     domains.  Shard segments live in the workers; the coordinator keeps only the \
     interning tables, banked edge generations and the merge.  Verdicts and canonical \
     reports are byte-identical for every worker count.  Implies sharded exploration."
  in
  Arg.(value & opt int 0 & info [ "dist-workers" ] ~docv:"N" ~doc)

let dist_connect_t =
  let doc =
    "Comma-separated addresses ($(b,host:port) or Unix socket paths) of pre-started \
     $(b,mechaverify shard-worker) processes to run the sharded exploration on.  \
     Mutually exclusive with $(b,--dist-workers)."
  in
  Arg.(value & opt (some string) None & info [ "dist-connect" ] ~docv:"ADDRS" ~doc)

let dist_deadline_t =
  let doc =
    "Per-round worker reply deadline in seconds (default 120).  A worker silent for \
     longer is declared dead; its shards are re-dispatched and rebuilt from the \
     coordinator's banked segment generation."
  in
  Arg.(value & opt float 120. & info [ "dist-deadline" ] ~docv:"SEC" ~doc)

let parse_size s =
  let fail () = Error (Printf.sprintf "cannot parse size %S (expected e.g. 512K, 64M, 2G)" s) in
  let n = String.length s in
  if n = 0 then fail ()
  else
    let mult, digits =
      match s.[n - 1] with
      | 'k' | 'K' -> (1024, String.sub s 0 (n - 1))
      | 'm' | 'M' -> (1024 * 1024, String.sub s 0 (n - 1))
      | 'g' | 'G' -> (1024 * 1024 * 1024, String.sub s 0 (n - 1))
      | '0' .. '9' -> (1, s)
      | _ -> (0, "")
    in
    if mult = 0 then fail ()
    else
      match int_of_string_opt digits with
      | Some v when v > 0 -> Ok (v * mult)
      | _ -> fail ()

(* [None] when every flag is at its default — the standard materialized
   pipeline; any sharding-related flag switches to the sharded one *)
let sharding_of ~shards ~mem_budget ~spill_dir ?(dist_workers = 0) ?dist_connect
    ?(dist_deadline = 120.) () =
  let input_error msg =
    Format.eprintf "mechaverify: %s@." msg;
    exit 3
  in
  if shards < 1 then input_error "--shards must be at least 1";
  let budget =
    Option.map
      (fun s -> match parse_size s with Ok v -> v | Error msg -> input_error msg)
      mem_budget
  in
  if dist_deadline <= 0. then input_error "--dist-deadline must be positive";
  let distribution =
    match (dist_workers, dist_connect) with
    | 0, None -> None
    | _, Some _ when dist_workers <> 0 ->
      input_error "--dist-workers and --dist-connect are mutually exclusive"
    | n, None ->
      if n < 1 then input_error "--dist-workers must be at least 1";
      Some (Shard.distribution ~deadline_s:dist_deadline (Shard.Fork n))
    | _, Some s ->
      let addrs =
        String.split_on_char ',' s |> List.map String.trim
        |> List.filter (fun a -> a <> "")
      in
      if addrs = [] then input_error "--dist-connect needs at least one address";
      Some (Shard.distribution ~deadline_s:dist_deadline (Shard.Connect addrs))
  in
  if shards = 1 && budget = None && spill_dir = None && distribution = None then None
  else Some (Shard.config ~shards ?mem_budget:budget ?spill_dir ?distribution ())

(* -- fault injection & supervision (shared by run and campaign) -- *)

let inject_t =
  let doc =
    Printf.sprintf
      "Wrap the legacy driver in a fault profile (%s, or a $(b,+) combination such as \
       $(b,crash+flaky)).  Implies supervised execution."
      (String.concat ", " (List.map fst Faults.profiles))
  in
  Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"PROFILE" ~doc)

let seed_t =
  let doc = "Seed for fault schedules and supervisor backoff jitter." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)

let deadline_ms_t =
  let doc = "Per-query wall-clock deadline (milliseconds) for the supervised driver." in
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let votes_t =
  let doc =
    "Repetitions per driver query; an observation is admitted only once a quorum of votes \
     agree on it bit-for-bit."
  in
  Arg.(value & opt (some int) None & info [ "votes" ] ~docv:"K" ~doc)

let quorum_t =
  let doc = "Agreeing votes needed to admit an observation (default: majority of --votes)." in
  Arg.(value & opt (some int) None & info [ "quorum" ] ~docv:"K" ~doc)

let breaker_t =
  let doc =
    "Consecutive failed driver attempts before the circuit breaker opens and the run \
     degrades to the chaotic closure of the knowledge gathered so far."
  in
  Arg.(value & opt (some int) None & info [ "breaker" ] ~docv:"N" ~doc)

let policy_of ~deadline_ms ~votes ~quorum ~breaker =
  match (deadline_ms, votes, quorum, breaker) with
  | None, None, None, None -> None
  | _ ->
    let d = Supervisor.default_policy in
    Some
      {
        d with
        Supervisor.deadline =
          (match deadline_ms with
          | Some ms -> Some (ms /. 1e3)
          | None -> d.Supervisor.deadline);
        votes = Option.value votes ~default:d.Supervisor.votes;
        quorum = (match quorum with Some _ -> quorum | None -> d.Supervisor.quorum);
        breaker = Option.value breaker ~default:d.Supervisor.breaker;
      }

(* Create [dir] and any missing parents; tolerate a directory that appears
   concurrently (e.g. two campaign jobs exporting into the same tree). *)
let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* -- observability (shared by every subcommand) -- *)

let log_level_t =
  let doc =
    "Progress verbosity: $(b,quiet), $(b,error), $(b,warn), $(b,info) or $(b,debug).  \
     $(b,quiet) silences the synthesis-loop progress output entirely."
  in
  let level_conv =
    Arg.conv
      ( (fun s ->
          match Obs_log.level_of_string s with Ok l -> Ok l | Error m -> Error (`Msg m)),
        fun ppf l -> Format.pp_print_string ppf (Obs_log.level_to_string l) )
  in
  Arg.(value & opt (some level_conv) None & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let trace_t =
  let doc =
    "Record spans of the run (loop iterations, closures, model checks, driver queries, \
     pool tasks) into $(docv) as a Chrome trace_event JSON array — load it in Perfetto \
     or chrome://tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_out_t =
  let doc =
    "Collect metrics during the run and write them to $(docv) on exit: Prometheus text \
     exposition format, or JSON when $(docv) ends in $(b,.json)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let save_text ~path body =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body)

(* Outputs are written from [at_exit] so they survive the subcommands' [exit]
   calls; by then the pool has joined its workers, so the trace buffers are
   quiescent as [Trace.export] requires. *)
let setup_obs verbose log_level trace metrics_out =
  let level =
    match (log_level, verbose) with
    | Some l, _ -> l
    | None, true -> Obs_log.Info
    | None, false -> Obs_log.Warn
  in
  Obs_log.set_level level;
  Option.iter
    (fun path ->
      Trace.enable ();
      at_exit (fun () -> Trace.write ~path))
    trace;
  Option.iter
    (fun path ->
      Metrics.set_enabled true;
      at_exit (fun () ->
        let body =
          if Filename.check_suffix path ".json" then Metrics.to_json ()
          else Metrics.to_prometheus ()
        in
        save_text ~path body))
    metrics_out

let obs_t = Term.(const setup_obs $ verbose_t $ log_level_t $ trace_t $ metrics_out_t)

let save_dot dir name dot =
  match dir with
  | None -> ()
  | Some dir ->
    mkdir_p dir;
    let path = Filename.concat dir (name ^ ".dot") in
    Dot.save ~path dot;
    Format.printf "wrote %s@." path

let report ?(left = "context") ?(right = "legacy") dot_dir (r : Loop.result) =
  Format.printf "%a@.@." Loop.pp_result r;
  (match r.Loop.verdict with
  | Loop.Real_violation { witness; product; _ } ->
    Format.printf "Counterexample:@.%s@." (Listing.render ~left_name:left ~right_name:right product witness)
  | _ -> ());
  Format.printf "Learned model:@.%a@." Incomplete.pp r.Loop.final_model;
  save_dot dot_dir "learned_model" (Dot.of_automaton (Incomplete.to_automaton r.Loop.final_model));
  match r.Loop.verdict with
  | Loop.Real_violation _ -> 1
  | Loop.Proved -> 0
  | Loop.Exhausted _ -> 2
  | Loop.Degraded _ -> 4

(* -- railcab -- *)

let variant_t names =
  let doc = Printf.sprintf "Legacy component variant: %s." (String.concat " or " names) in
  Arg.(value & opt string (List.hd names) & info [ "variant" ] ~docv:"VARIANT" ~doc)

let railcab_cmd =
  let run () strategy dot_dir variant =
    let r =
      match variant with
      | "correct" -> Railcab.run_correct ~strategy ()
      | "conflicting" -> Railcab.run_conflicting ~strategy ()
      | v -> failwith (Printf.sprintf "unknown variant %S (correct|conflicting)" v)
    in
    exit (report ~left:"shuttle1" ~right:"shuttle2" dot_dir r)
  in
  let doc = "Integrate a legacy rear-role shuttle into the DistanceCoordination pattern." in
  Cmd.v (Cmd.info "railcab" ~doc)
    Term.(const run $ obs_t $ strategy_t $ dot_dir_t $ variant_t [ "correct"; "conflicting" ])

(* -- protocol -- *)

let protocol_cmd =
  let run () strategy dot_dir variant =
    let r =
      match variant with
      | "correct" -> Protocol.run_correct ~strategy ()
      | "faulty" -> Protocol.run_fire_and_forget ~strategy ()
      | v -> failwith (Printf.sprintf "unknown variant %S (correct|faulty)" v)
    in
    exit (report ~left:"receiver" ~right:"sender" dot_dir r)
  in
  let doc = "Integrate a legacy stop-and-wait sender against the receiver context." in
  Cmd.v (Cmd.info "protocol" ~doc)
    Term.(const run $ obs_t $ strategy_t $ dot_dir_t $ variant_t [ "correct"; "faulty" ])

(* -- lock -- *)

let lock_cmd =
  let n_t =
    Arg.(value & opt int 12 & info [ "n" ] ~docv:"N" ~doc:"Secret length of the lock.")
  in
  let depth_t =
    Arg.(value & opt int 4 & info [ "depth" ] ~docv:"D" ~doc:"Prefix length the context exercises.")
  in
  let baseline_t =
    let doc = "Also run a baseline: $(b,lstar) or $(b,amc)." in
    Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"B" ~doc)
  in
  let run () strategy dot_dir n depth baseline =
    let r =
      Loop.run ~strategy ~label_of:Families.lock_label_of
        ~context:(Families.lock_context ~n ~depth) ~property:Families.lock_property
        ~legacy:(Families.lock_box ~n) ()
    in
    let code = report ~left:"context" ~right:"lock" dot_dir r in
    (match baseline with
    | Some "lstar" ->
      let truth =
        Mechaml_learnlib.Mealy.of_automaton ~alphabet:Families.lock_alphabet
          (Families.lock_legacy ~n)
      in
      let l =
        Mechaml_learnlib.Lstar.learn ~box:(Families.lock_box ~n)
          ~alphabet:Families.lock_alphabet
          ~equivalence:(Mechaml_learnlib.Lstar.Perfect truth) ()
      in
      Format.printf "@.L* baseline: %d states learned, %d output queries, %d symbols@."
        (Mechaml_learnlib.Mealy.num_states l.Mechaml_learnlib.Lstar.hypothesis)
        l.Mechaml_learnlib.Lstar.stats.Mechaml_learnlib.Oracle.output_queries
        l.Mechaml_learnlib.Lstar.stats.Mechaml_learnlib.Oracle.symbols
    | Some "amc" ->
      let a =
        Mechaml_learnlib.Amc.verify ~box:(Families.lock_box ~n)
          ~context:(Families.lock_context ~n ~depth) ~alphabet:Families.lock_alphabet
          ~state_bound:(n + 1) ()
      in
      Format.printf "@.AMC baseline: %d hypothesis states, %d output queries, %d symbols@."
        a.Mechaml_learnlib.Amc.hypothesis_states
        a.Mechaml_learnlib.Amc.stats.Mechaml_learnlib.Oracle.output_queries
        a.Mechaml_learnlib.Amc.stats.Mechaml_learnlib.Oracle.symbols
    | Some b -> failwith (Printf.sprintf "unknown baseline %S" b)
    | None -> ());
    exit code
  in
  let doc = "Integrate a combination-lock legacy component against a prefix-bounded context." in
  Cmd.v (Cmd.info "lock" ~doc)
    Term.(const run $ obs_t $ strategy_t $ dot_dir_t $ n_t $ depth_t $ baseline_t)

(* -- run: user-supplied models -- *)

let load_automaton path =
  match Mechaml_ts.Textio.load ~path with
  | Ok m -> m
  | Error { line; message } ->
    Format.eprintf "%s:%d: %s@." path line message;
    exit 3

let run_cmd =
  let context_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "context" ] ~docv:"FILE" ~doc:"Context automaton in the textio format.")
  in
  let legacy_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "legacy" ] ~docv:"FILE"
          ~doc:
            "Legacy component in the textio format (executed as a black box; must be \
             input-deterministic).")
  in
  let property_t =
    Arg.(
      value
      & opt string "true"
      & info [ "property" ] ~docv:"CCTL"
          ~doc:"Compositional property, e.g. 'AG (not (a.bad and b.worse))'.")
  in
  let prefix_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "label-prefix" ] ~docv:"PREFIX"
          ~doc:
            "Label learned states hierarchically with this prefix (default: the legacy \
             automaton's name followed by a dot).")
  in
  let knowledge_t =
    Arg.(
      value
      & opt (some file) None
      & info [ "knowledge" ] ~docv:"FILE"
          ~doc:"Seed the loop with a learned model saved by --save-knowledge (grey-box).")
  in
  let save_knowledge_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-knowledge" ] ~docv:"FILE"
          ~doc:"Persist the final learned model for later sessions.")
  in
  let batch_t =
    Arg.(
      value
      & opt int 1
      & info [ "batch" ] ~docv:"K" ~doc:"Counterexamples tested per model-checking round.")
  in
  let journal_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append every executed observation to a crash-safe journal at $(docv) as it \
             happens (one flushed line per observation).")
  in
  let resume_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Replay the journal of an interrupted run into the starting model, then keep \
             appending to the same file.  A torn final record (killed mid-write) is \
             tolerated.")
  in
  let snapshot_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Atomically rewrite a knowledge snapshot (write-temp + rename) whenever the \
             learned model grows; loadable later with --knowledge.")
  in
  let run () strategy dot_dir context_path legacy_path property prefix knowledge
      save_knowledge batch inject seed deadline_ms votes quorum breaker journal resume
      snapshot no_incremental incremental_debug shards mem_budget spill_dir dist_workers
      dist_connect dist_deadline =
    let sharding =
      sharding_of ~shards ~mem_budget ~spill_dir ~dist_workers ?dist_connect ~dist_deadline
        ()
    in
    let context = load_automaton context_path in
    let legacy_auto = load_automaton legacy_path in
    let box = Mechaml_legacy.Blackbox.of_automaton legacy_auto in
    let box =
      match inject with
      | None -> box
      | Some profile -> (
        match Faults.of_string ~seed profile with
        | Ok wrap -> wrap box
        | Error msg ->
          Format.eprintf "mechaverify: %s@." msg;
          exit 3)
    in
    let policy = policy_of ~deadline_ms ~votes ~quorum ~breaker in
    let supervisor =
      match (inject, policy) with
      | None, None -> None
      | _ -> Some (Supervisor.create ~seed ?policy box)
    in
    let observe =
      Option.map (fun sup ~inputs -> Supervisor.observe_hook sup ~inputs) supervisor
    in
    let property = Mechaml_logic.Parser.parse_exn property in
    let prefix =
      Option.value prefix ~default:(legacy_auto.Mechaml_ts.Automaton.name ^ ".")
    in
    let label_of = Mechaml_scenarios.Labels.hierarchical ~prefix in
    let initial_knowledge =
      Option.map
        (fun path ->
          match Mechaml_core.Knowledge_io.load ~path with
          | Ok k -> k
          | Error { line; message } ->
            Format.eprintf "%s:%d: %s@." path line message;
            exit 3)
        knowledge
    in
    let r =
      Loop.run ~strategy ~label_of ?initial_knowledge ~counterexamples_per_iteration:batch
        ?observe ?journal ?resume ?snapshot ~incremental:(not no_incremental)
        ~incremental_debug ?sharding ~context ~property ~legacy:box ()
    in
    Option.iter
      (fun path ->
        Mechaml_core.Knowledge_io.save ~path r.Loop.final_model;
        Format.printf "learned model saved to %s@." path)
      save_knowledge;
    Option.iter
      (fun sup ->
        Format.printf "Supervision:@.%a@." Supervisor.pp_stats (Supervisor.stats sup))
      supervisor;
    exit
      (report ~left:context.Mechaml_ts.Automaton.name
         ~right:legacy_auto.Mechaml_ts.Automaton.name dot_dir r)
  in
  let doc = "Run the synthesis loop on user-supplied context and legacy automata files." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ obs_t $ strategy_t $ dot_dir_t $ context_t $ legacy_t $ property_t
      $ prefix_t $ knowledge_t $ save_knowledge_t $ batch_t $ inject_t $ seed_t
      $ deadline_ms_t $ votes_t $ quorum_t $ breaker_t $ journal_t $ resume_t $ snapshot_t
      $ no_incremental_t $ incremental_debug_t $ shards_t $ mem_budget_t $ spill_dir_t
      $ dist_workers_t $ dist_connect_t $ dist_deadline_t)

(* -- learn: whole-component learning baseline on a file -- *)

let learn_cmd =
  let legacy_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "legacy" ] ~docv:"FILE" ~doc:"Legacy component in the textio format.")
  in
  let bound_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "bound" ] ~docv:"N"
          ~doc:"Assumed state bound for the W-method oracle (default: the true count).")
  in
  let run () legacy_path bound =
    let legacy_auto = load_automaton legacy_path in
    let box = Mechaml_legacy.Blackbox.of_automaton legacy_auto in
    let alphabet =
      Mechaml_learnlib.Lstar.alphabet_of_signals box.Mechaml_legacy.Blackbox.input_signals
    in
    let bound = Option.value bound ~default:box.Mechaml_legacy.Blackbox.state_bound in
    let r =
      Mechaml_learnlib.Lstar.learn ~box ~alphabet
        ~equivalence:(Mechaml_learnlib.Lstar.Wmethod { extra_states = bound })
        ()
    in
    let stats = r.Mechaml_learnlib.Lstar.stats in
    Format.printf "learned %d states in %d rounds; %d output queries, %d symbols, %d resets@.@."
      (Mechaml_learnlib.Mealy.num_states r.Mechaml_learnlib.Lstar.hypothesis)
      r.Mechaml_learnlib.Lstar.rounds stats.Mechaml_learnlib.Oracle.output_queries
      stats.Mechaml_learnlib.Oracle.symbols stats.Mechaml_learnlib.Oracle.resets;
    print_string
      (Mechaml_ts.Textio.print
         (Mechaml_learnlib.Mealy.to_automaton ~name:(legacy_auto.Mechaml_ts.Automaton.name ^ "_learned")
            r.Mechaml_learnlib.Lstar.hypothesis))
  in
  let doc = "Learn a component's full Mealy model with L* + W-method (the baseline)." in
  Cmd.v (Cmd.info "learn" ~doc) Term.(const run $ obs_t $ legacy_t $ bound_t)

(* -- campaign: batch verification over the bundled scenario matrix -- *)

let campaign_cmd =
  let module Campaign = Mechaml_engine.Campaign in
  let module Report = Mechaml_engine.Report in
  let jobs_t =
    Arg.(
      value
      & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains.  $(b,1) executes sequentially in matrix order; any $(docv) \
             produces the same verdicts (only timings and per-job cache counters move).")
  in
  let report_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE" ~doc:"Write the JSON campaign report to $(docv).")
  in
  let csv_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write the CSV campaign report to $(docv).")
  in
  let canonical_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "canonical" ] ~docv:"FILE"
          ~doc:
            "Write the deterministic canonical digest to $(docv) — independent of worker \
             count, caching and timings, so runs can be compared byte-for-byte.")
  in
  let tiny_t =
    let doc = "Run the four-job smoke matrix instead of the full bundled one." in
    Arg.(value & flag & info [ "tiny" ] ~doc)
  in
  let select_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "select" ] ~docv:"SUBSTR"
          ~doc:"Only run jobs whose id contains $(docv) (e.g. $(b,railcab) or $(b,/dfs)).")
  in
  let timeout_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SEC"
          ~doc:"Wall-clock budget per job, enforced between loop stages.")
  in
  let retries_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "retries" ] ~docv:"K"
          ~doc:"Override every job's retry budget for crashed attempts.")
  in
  let no_cache_t =
    let doc = "Disable the memo cache (every job recomputes all closures and checks)." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  let run () jobs report csv canonical tiny select timeout retries no_cache inject seed
      deadline_ms votes quorum breaker no_incremental incremental_debug shards mem_budget
      spill_dir dist_workers dist_connect dist_deadline =
    let sharding =
      sharding_of ~shards ~mem_budget ~spill_dir ~dist_workers ?dist_connect ~dist_deadline
        ()
    in
    let input_error msg =
      Format.eprintf "mechaverify: %s@." msg;
      exit 3
    in
    if jobs < 1 then input_error "--jobs must be at least 1";
    (match inject with
    | Some profile when Result.is_error (Faults.of_string ~seed profile) ->
      input_error
        (match Faults.of_string ~seed profile with Error m -> m | Ok _ -> assert false)
    | _ -> ());
    let specs = Campaign.bundled ~tiny () in
    let specs =
      match select with
      | None -> specs
      | Some sub -> List.filter (fun s -> contains ~sub s.Campaign.id) specs
    in
    if specs = [] then input_error "--select matches no job id";
    let policy = policy_of ~deadline_ms ~votes ~quorum ~breaker in
    let specs =
      List.map
        (fun s ->
          let s =
            match timeout with None -> s | Some t -> { s with Campaign.timeout = Some t }
          in
          let s =
            match retries with None -> s | Some k -> { s with Campaign.retries = k }
          in
          let s =
            match inject with
            | None -> s
            | Some _ -> { s with Campaign.inject = inject; Campaign.seed = seed }
          in
          match policy with None -> s | Some _ -> { s with Campaign.policy = policy })
        specs
    in
    let t0 = Unix.gettimeofday () in
    let outcomes =
      Campaign.run ~jobs ~memo:(not no_cache) ~incremental:(not no_incremental)
        ~incremental_debug ?sharding specs
    in
    let wall = Unix.gettimeofday () -. t0 in
    print_endline (Report.table outcomes);
    Format.printf "%s; %.2f s wall@." (Report.summary ~jobs outcomes) wall;
    Option.iter
      (fun path ->
        Report.save ~path (Report.to_json ~jobs outcomes);
        Format.printf "wrote %s@." path)
      report;
    Option.iter
      (fun path ->
        Report.save ~path (Report.to_csv outcomes);
        Format.printf "wrote %s@." path)
      csv;
    Option.iter
      (fun path ->
        Report.save ~path (Report.canonical outcomes);
        Format.printf "wrote %s@." path)
      canonical;
    exit 0
  in
  let doc =
    "Run a verification campaign: the bundled scenario matrix (scenario × property × \
     strategy × legacy fault variant) through the synthesis loop, on a worker pool with \
     memoized model checking."
  in
  Cmd.v (Cmd.info "campaign" ~doc)
    Term.(
      const run $ obs_t $ jobs_t $ report_t $ csv_t $ canonical_t $ tiny_t $ select_t
      $ timeout_t $ retries_t $ no_cache_t $ inject_t $ seed_t $ deadline_ms_t $ votes_t
      $ quorum_t $ breaker_t $ no_incremental_t $ incremental_debug_t $ shards_t
      $ mem_budget_t $ spill_dir_t $ dist_workers_t $ dist_connect_t $ dist_deadline_t)

(* -- export: bundled scenario automata as textio files -- *)

let export_cmd =
  let dir_t =
    Arg.(
      value
      & opt string "export"
      & info [ "dir" ] ~docv:"DIR" ~doc:"Directory to write the automata into.")
  in
  let run () dir =
    mkdir_p dir;
    let save name auto =
      let path = Filename.concat dir (name ^ ".aut") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Mechaml_ts.Textio.print auto));
      Format.printf "wrote %s@." path
    in
    save "railcab_context" Railcab.context;
    save "railcab_legacy_correct" Railcab.legacy_correct;
    save "railcab_legacy_conflicting" Railcab.legacy_conflicting;
    save "protocol_receiver" Protocol.receiver;
    save "protocol_sender_correct" Protocol.sender_correct;
    save "protocol_sender_fire_and_forget" Protocol.sender_fire_and_forget;
    save "watchdog_context" Watchdog.watchdog;
    save "watchdog_controller_prompt" Watchdog.controller_prompt;
    save "watchdog_controller_sluggish" Watchdog.controller_sluggish
  in
  let doc =
    "Export the bundled scenario automata as textio files, ready for $(b,mechaverify run) \
     --context/--legacy (e.g. to drive fault-injected runs with --journal/--resume)."
  in
  Cmd.v (Cmd.info "export" ~doc) Term.(const run $ obs_t $ dir_t)

(* -- pattern -- *)

let pattern_cmd =
  let run () =
    match Mechaml_muml.Pattern.verify Railcab.pattern with
    | Checker.Holds ->
      Format.printf "DistanceCoordination: constraint, role invariants and deadlock freedom hold.@."
    | Checker.Violated { formula; explanation; _ } ->
      Format.printf "violated %s (%s)@." (Mechaml_logic.Ctl.to_string formula) explanation;
      exit 1
  in
  let doc = "Verify the DistanceCoordination pattern upfront (roles only, no legacy code)." in
  Cmd.v (Cmd.info "pattern" ~doc) Term.(const run $ obs_t)

(* -- serve: the persistent verification daemon -- *)

let host_t =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind or connect to.")

let port_t ~default ~doc = Arg.(value & opt int default & info [ "port" ] ~docv:"PORT" ~doc)

let serve_cmd =
  let module Server = Mechaml_serve.Server in
  let workers_t =
    Arg.(
      value
      & opt int 4
      & info [ "workers" ] ~docv:"N" ~doc:"Worker domains executing verification jobs.")
  in
  let handlers_t =
    Arg.(
      value
      & opt int 4
      & info [ "handlers" ] ~docv:"N" ~doc:"Connection-handler domains.")
  in
  let queue_bound_t =
    Arg.(
      value
      & opt int 256
      & info [ "queue-bound" ] ~docv:"N"
          ~doc:
            "Admission control: submissions beyond $(docv) queued jobs are answered \
             $(b,429) with a $(b,Retry-After) hint.")
  in
  let inflight_cap_t =
    Arg.(
      value
      & opt int 64
      & info [ "inflight-cap" ] ~docv:"N"
          ~doc:"Per-tenant cap on concurrently running jobs.")
  in
  let weight_t =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string int) []
      & info [ "weight" ] ~docv:"TENANT=W"
          ~doc:
            "Round-robin weight for a tenant (repeatable); a weight-3 tenant gets ~3x \
             the job slots of a weight-1 tenant under contention.")
  in
  let cache_capacity_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"LRU bound on the shared memo cache (default: unbounded).")
  in
  let snapshot_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Cache snapshot: loaded at startup when present, rewritten atomically on \
             shutdown (and every --snapshot-every seconds), so a restarted daemon comes \
             back warm.")
  in
  let snapshot_every_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "snapshot-every" ] ~docv:"SEC"
          ~doc:"Also snapshot the cache periodically (requires --snapshot).")
  in
  let drain_deadline_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "drain-deadline" ] ~docv:"SEC"
          ~doc:
            "On SIGTERM/SIGINT, discard jobs still queued after $(docv) seconds \
             (running jobs always finish; their clients get stand-in failed verdicts).")
  in
  let job_deadline_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "job-deadline" ] ~docv:"SEC"
          ~doc:
            "Default per-job execution deadline: the job's wall-clock budget is clamped \
             to $(docv) and a watchdog abandons it (stand-in failed verdict, poison \
             strike) if it overruns anyway.  Submissions can override per request.")
  in
  let wal_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"FILE"
          ~doc:
            "Write-ahead log: accepted submissions and verdicts are journaled to $(docv) \
             and a restarted daemon re-runs only the jobs that had no verdict yet.")
  in
  let io_timeout_t =
    Arg.(
      value
      & opt float 30.
      & info [ "io-timeout" ] ~docv:"SEC"
          ~doc:
            "Per-connection socket read/write deadline ($(b,0) disables): a slow or dead \
             peer costs a handler domain at most this long.")
  in
  let max_pending_t =
    Arg.(
      value
      & opt int 128
      & info [ "max-pending" ] ~docv:"N"
          ~doc:"Accepted-but-unserved connection cap; excess connections are closed.")
  in
  let quarantine_strikes_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "quarantine-strikes" ] ~docv:"K"
          ~doc:"Timeouts/watchdog kills before a job spec is quarantined (default 2).")
  in
  let quarantine_ttl_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "quarantine-ttl" ] ~docv:"SEC"
          ~doc:
            "How long a quarantined spec is refused (stand-in failed verdicts) before it \
             may run again (default 300).")
  in
  let slo_t =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string float) []
      & info [ "slo" ] ~docv:"STAGE=SEC"
          ~doc:
            "SLO latency threshold for a stage (repeatable; stages: $(b,admission), \
             $(b,queue), $(b,closure), $(b,check), $(b,stream)).  Observations over the \
             threshold count as breaches in $(b,/v1/slo).")
  in
  let slo_objective_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo-objective" ] ~docv:"FRAC"
          ~doc:
            "SLO objective in (0,1), default 0.99: the burn rate in $(b,/v1/slo) is the \
             breach fraction divided by the allowed error budget (1 - $(docv)).")
  in
  let flight_size_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "flight-size" ] ~docv:"N"
          ~doc:"Flight-recorder ring slots (default 512); newest events win.")
  in
  let flight_dump_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-dump" ] ~docv:"FILE"
          ~doc:
            "Install a $(b,SIGQUIT) handler that dumps the flight recorder to $(docv) as \
             ndjson — a post-mortem of the last $(b,--flight-size) events with no \
             restart needed.")
  in
  let run () host port workers handlers queue_bound inflight_cap weights cache_capacity
      snapshot snapshot_every drain_deadline job_deadline wal io_timeout max_pending
      quarantine_strikes quarantine_ttl slo_thresholds slo_objective flight_size
      flight_dump shards mem_budget spill_dir dist_workers dist_connect dist_deadline =
    let sharding =
      sharding_of ~shards ~mem_budget ~spill_dir ~dist_workers ?dist_connect ~dist_deadline
        ()
    in
    let srv =
      try
        Server.start
          {
            Server.host;
            port;
            workers;
            handlers;
            queue_bound;
            inflight_cap;
            weights;
            cache_capacity;
            snapshot;
            snapshot_every_s = snapshot_every;
            job_deadline_s = job_deadline;
            wal;
            io_timeout_s = (if io_timeout <= 0. then None else Some io_timeout);
            max_pending;
            quarantine_strikes;
            quarantine_ttl_s = quarantine_ttl;
            slo_thresholds;
            slo_objective;
            flight_size;
            flight_dump;
            sharding;
          }
      with Invalid_argument msg ->
        Format.eprintf "mechaverify: %s@." msg;
        exit 3
    in
    Format.printf "mechaserve listening on %s:%d@." host (Server.port srv);
    let stop_requested = Atomic.make false in
    let request_stop _ = Atomic.set stop_requested true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    while not (Atomic.get stop_requested) do
      try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    Format.printf "mechaserve draining...@.";
    Server.stop ?drain_deadline_s:drain_deadline srv;
    Format.printf "mechaserve stopped@.";
    exit 0
  in
  let doc =
    "Run the persistent verification daemon: campaigns over HTTP with streamed verdicts, \
     a shared warm memo cache (optionally snapshot-persisted across restarts), \
     multi-tenant fair scheduling and admission control."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ obs_t $ host_t
      $ port_t ~default:0 ~doc:"Port to listen on ($(b,0) picks an ephemeral one)."
      $ workers_t $ handlers_t $ queue_bound_t $ inflight_cap_t $ weight_t
      $ cache_capacity_t $ snapshot_t $ snapshot_every_t $ drain_deadline_t
      $ job_deadline_t $ wal_t $ io_timeout_t $ max_pending_t $ quarantine_strikes_t
      $ quarantine_ttl_t $ slo_t $ slo_objective_t $ flight_size_t $ flight_dump_t
      $ shards_t $ mem_budget_t $ spill_dir_t $ dist_workers_t $ dist_connect_t
      $ dist_deadline_t)

(* -- submit: client for a running daemon -- *)

let submit_cmd =
  let module Client = Mechaml_serve.Client in
  let module Wire = Mechaml_serve.Wire in
  let module Campaign = Mechaml_engine.Campaign in
  let module Report = Mechaml_engine.Report in
  let tenant_t =
    Arg.(
      value
      & opt string "anon"
      & info [ "tenant" ] ~docv:"NAME" ~doc:"Tenant name for fair scheduling.")
  in
  let tiny_t =
    let doc = "Submit the four-job smoke matrix instead of the full bundled one." in
    Arg.(value & flag & info [ "tiny" ] ~doc)
  in
  let select_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "select" ] ~docv:"SUBSTR"
          ~doc:"Only submit jobs whose id contains $(docv).")
  in
  let id_t =
    Arg.(
      value
      & opt_all string []
      & info [ "id" ] ~docv:"JOB" ~doc:"Submit exactly this job id (repeatable).")
  in
  let report_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE" ~doc:"Write the JSON campaign report to $(docv).")
  in
  let csv_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write the CSV campaign report to $(docv).")
  in
  let canonical_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "canonical" ] ~docv:"FILE"
          ~doc:
            "Write the deterministic canonical digest to $(docv) — byte-identical to a \
             local $(b,mechaverify campaign) over the same matrix.")
  in
  let key_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "key" ] ~docv:"KEY"
          ~doc:
            "Idempotency key: resubmitting the same $(docv) attaches to the original \
             submission and replays its verdicts instead of re-running anything.")
  in
  let deadline_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SEC"
          ~doc:"Per-job execution deadline, overriding the daemon default.")
  in
  let retry_t =
    Arg.(
      value
      & opt int 0
      & info [ "retry" ] ~docv:"N"
          ~doc:
            "Retry a failed submission up to $(docv) times with exponential backoff \
             (requires $(b,--key); after a torn stream the verdicts already computed are \
             collected from $(b,/v1/jobs) instead of re-run).")
  in
  let io_timeout_t =
    Arg.(
      value
      & opt float 30.
      & info [ "io-timeout" ] ~docv:"SEC"
          ~doc:"Socket read/write deadline per connection ($(b,0) disables).")
  in
  let request_id_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "request-id" ] ~docv:"ID"
          ~doc:
            "Trace id for the submission (1-128 chars of [A-Za-z0-9._-]; minted when \
             absent).  The daemon echoes it on the response, stamps it onto every \
             streamed event, its WAL record and its trace spans — quote it when \
             reporting a problem.")
  in
  let run () host port tenant tiny select ids report csv canonical key deadline retry
      io_timeout request_id =
    let ids = match ids with [] -> None | l -> Some l in
    let ep = { Client.host; port } in
    (* printed to stderr so it never pollutes piped report output *)
    let on_request_id rid = Format.eprintf "request id: %s@." rid in
    let on_event = function
      | Wire.Accepted { jobs } -> Format.printf "accepted %d jobs@." jobs
      | Wire.Verdict { outcome; _ } ->
        Format.printf "  %-44s %s@." outcome.Campaign.spec_id
          (Campaign.verdict_string outcome.Campaign.verdict)
      | Wire.Done { cache_entries; cache_hit_rate; _ } ->
        Format.printf "done; daemon cache: %d entries, %.0f%% hit rate@." cache_entries
          (100. *. cache_hit_rate)
    in
    let io_timeout_s = if io_timeout <= 0. then None else Some io_timeout in
    let result =
      if retry > 0 then begin
        match key with
        | None ->
          Format.eprintf "mechaverify: --retry requires --key@.";
          exit 3
        | Some key ->
          Client.submit_with_retry ep ~attempts:(retry + 1) ~tenant ~tiny ?select ?ids
            ~key ?deadline_s:deadline ?request_id ~on_request_id
            ~io_timeout_s:(Option.value io_timeout_s ~default:30.)
            ~on_event ()
      end
      else
        Client.submit ep ~tenant ~tiny ?select ?ids ?key ?deadline_s:deadline
          ?request_id ~on_request_id ?io_timeout_s ~on_event ()
    in
    match result with
    | Error e ->
      Format.eprintf "mechaverify: %s@." (Client.error_string e);
      exit 4
    | Ok outcomes ->
      print_endline (Report.table outcomes);
      Format.printf "%s@." (Report.summary outcomes);
      Option.iter
        (fun path ->
          Report.save ~path (Report.to_json outcomes);
          Format.printf "wrote %s@." path)
        report;
      Option.iter
        (fun path ->
          Report.save ~path (Report.to_csv outcomes);
          Format.printf "wrote %s@." path)
        csv;
      Option.iter
        (fun path ->
          Report.save ~path (Report.canonical outcomes);
          Format.printf "wrote %s@." path)
        canonical;
      exit 0
  in
  let doc =
    "Submit a campaign to a running $(b,mechaverify serve) daemon and stream the verdicts \
     back; the table, reports and canonical digest match a local $(b,mechaverify \
     campaign) over the same matrix."
  in
  Cmd.v (Cmd.info "submit" ~doc)
    Term.(
      const run $ obs_t $ host_t
      $ port_t ~default:8484 ~doc:"Daemon port."
      $ tenant_t $ tiny_t $ select_t $ id_t $ report_t $ csv_t $ canonical_t $ key_t
      $ deadline_t $ retry_t $ io_timeout_t $ request_id_t)

(* -- chaos-proxy: seeded fault injection between client and daemon -- *)

let chaos_proxy_cmd =
  let module Chaosproxy = Mechaml_serve.Chaosproxy in
  let target_host_t =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "target-host" ] ~docv:"ADDR" ~doc:"Daemon address to forward to.")
  in
  let target_port_t =
    Arg.(
      required
      & opt (some int) None
      & info [ "target-port" ] ~docv:"PORT" ~doc:"Daemon port to forward to.")
  in
  let seed_t =
    Arg.(
      value
      & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Fault-schedule seed: the whole misbehaviour is a pure function of it, so a \
             failing run reproduces exactly.")
  in
  let faults_t =
    Arg.(
      value
      & opt string "all"
      & info [ "faults" ] ~docv:"KINDS"
          ~doc:
            "$(b,+)-separated fault kinds to inject \
             ($(b,delay)|$(b,torn)|$(b,reset)|$(b,garbage)), or $(b,all).")
  in
  let run () host port target_host target_port seed faults =
    match Chaosproxy.of_string faults with
    | Error e ->
      Format.eprintf "mechaverify: %s@." e;
      exit 3
    | Ok kinds ->
      let p = Chaosproxy.start ~host ~port ~target_host ~target_port ~seed ~kinds () in
      Format.printf "mechachaos listening on %s:%d@." host (Chaosproxy.port p);
      let stop_requested = Atomic.make false in
      let request_stop _ = Atomic.set stop_requested true in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
      Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
      while not (Atomic.get stop_requested) do
        try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      Format.printf "mechachaos stopping...@.";
      Chaosproxy.stop p;
      Format.printf "mechachaos stopped@.";
      exit 0
  in
  let doc =
    "Run a seeded fault-injection proxy in front of a $(b,mechaverify serve) daemon: \
     delays, torn writes, connection resets and response garbage, deterministically \
     derived from $(b,--seed) — the harness behind $(b,make serve-chaos)."
  in
  Cmd.v (Cmd.info "chaos-proxy" ~doc)
    Term.(
      const run $ obs_t $ host_t
      $ port_t ~default:0 ~doc:"Port to listen on ($(b,0) picks an ephemeral one)."
      $ target_host_t $ target_port_t $ seed_t $ faults_t)

(* -- probe: daemon liveness and stats -- *)

let probe_cmd =
  let module Client = Mechaml_serve.Client in
  let metrics_t =
    let doc = "Print the Prometheus /metrics scrape instead of /v1/stats." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let get_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "get" ] ~docv:"PATH"
          ~doc:
            "Fetch an arbitrary daemon path instead of /v1/stats (e.g. $(b,/v1/slo) or \
             $(b,/v1/debug/flight)) and print its body.")
  in
  let request_id_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "request-id" ] ~docv:"ID"
          ~doc:
            "Trace id to send on the probe request (minted when absent); the id the \
             daemon echoed back is printed to stderr.")
  in
  let run () host port metrics get request_id =
    match Mechaml_serve.Client.connect ~host ~port () with
    | Error e ->
      Format.eprintf "mechaverify: %s@." (Client.error_string e);
      exit 4
    | Ok ep -> (
      let path =
        match (get, metrics) with
        | Some p, _ -> p
        | None, true -> "/metrics"
        | None, false -> "/v1/stats"
      in
      match Client.get_traced ?request_id ep path with
      | Ok (status, body, echoed) ->
        Option.iter (fun rid -> Format.eprintf "request id: %s@." rid) echoed;
        print_string body;
        exit (if status = 200 then 0 else 4)
      | Error e ->
        Format.eprintf "mechaverify: %s@." (Client.error_string e);
        exit 4)
  in
  let doc =
    "Check a running daemon: liveness probe, then its stats (or metrics, or any $(b,--get) \
     path) body; the echoed trace id goes to stderr."
  in
  Cmd.v (Cmd.info "probe" ~doc)
    Term.(
      const run $ obs_t $ host_t
      $ port_t ~default:8484 ~doc:"Daemon port."
      $ metrics_t $ get_t $ request_id_t)

(* -- top: live terminal dashboard for a running daemon -- *)

let top_cmd =
  let module Client = Mechaml_serve.Client in
  let module Json = Mechaml_obs.Json in
  let fnum k j = Option.value (Option.bind (Json.member k j) Json.to_float) ~default:0. in
  let fstr k j = Option.value (Option.bind (Json.member k j) Json.to_str) ~default:"" in
  let flist k j = match Json.member k j with Some (Json.List l) -> l | _ -> [] in
  (* first sample of an unlabelled series in a Prometheus text body *)
  let prom_value body name =
    let pfx = name ^ " " in
    let n = String.length pfx in
    List.find_map
      (fun line ->
        if String.length line > n && String.sub line 0 n = pfx then
          float_of_string_opt (String.sub line n (String.length line - n))
        else None)
      (String.split_on_char '\n' body)
  in
  let render buf ep =
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
    match Result.bind (Client.get ep "/v1/stats") (fun (_, stats) ->
              Result.bind (Client.get ep "/v1/slo") (fun (_, slo) ->
                  Result.map (fun m -> (stats, slo, m)) (Client.metrics ep)))
    with
    | Error e -> line "mechaserve %s:%d — %s" ep.Client.host ep.Client.port
                   (Client.error_string e)
    | Ok (stats_body, slo_body, metrics_body) -> (
      match (Json.parse (String.trim stats_body), Json.parse (String.trim slo_body)) with
      | Error e, _ | _, Error e ->
        line "mechaserve %s:%d — bad body: %s" ep.Client.host ep.Client.port e
      | Ok stats, Ok slo ->
        let mv name = Option.value (prom_value metrics_body name) ~default:0. in
        line "mechaserve %s:%d — up %.0fs   requests %.0f   campaigns %.0f   http errors %.0f"
          ep.Client.host ep.Client.port (fnum "uptime_s" stats)
          (mv "serve_requests_total") (mv "serve_campaigns_total")
          (mv "serve_http_errors_total");
        line "queue: %.0f queued, %.0f running" (fnum "queued" stats)
          (fnum "running" stats);
        line "";
        line "  %-16s %8s %9s" "TENANT" "QUEUED" "INFLIGHT";
        let tenants = flist "tenants" stats in
        if tenants = [] then line "  (no tenants yet)"
        else
          List.iter
            (fun t ->
              line "  %-16s %8.0f %9.0f" (fstr "name" t) (fnum "queued" t)
                (fnum "inflight" t))
            tenants;
        line "";
        (match Json.member "cache" stats with
        | Some c ->
          line "cache: %.0f entries, %.0f%% hit rate, %.0f evictions" (fnum "entries" c)
            (100. *. fnum "hit_rate" c) (fnum "evictions" c)
        | None -> ());
        line "";
        line "slo (objective %.2f%%)" (100. *. fnum "objective" slo);
        line "  %-16s %-10s %7s %7s %7s %9s %9s %9s" "TENANT" "STAGE" "COUNT" "BREACH"
          "BURN" "P50" "P95" "P99";
        let cells = flist "cells" slo in
        if cells = [] then line "  (no observations yet)"
        else
          List.iter
            (fun c ->
              line "  %-16s %-10s %7.0f %7.0f %7.2f %8.3fs %8.3fs %8.3fs" (fstr "tenant" c)
                (fstr "stage" c) (fnum "count" c) (fnum "breaches" c)
                (fnum "burn_rate" c) (fnum "p50_s" c) (fnum "p95_s" c) (fnum "p99_s" c))
            cells;
        line "";
        let quarantined = flist "quarantined" stats in
        if quarantined = [] then line "quarantine: none"
        else begin
          line "quarantine:";
          List.iter
            (fun q -> line "  %s (%s)" (fstr "digest" q) (fstr "reason" q))
            quarantined
        end)
  in
  let with_raw_stdin f =
    if Unix.isatty Unix.stdin then begin
      let saved = Unix.tcgetattr Unix.stdin in
      let raw = { saved with Unix.c_icanon = false; c_echo = false; c_vmin = 0; c_vtime = 0 } in
      Unix.tcsetattr Unix.stdin Unix.TCSANOW raw;
      Fun.protect ~finally:(fun () -> Unix.tcsetattr Unix.stdin Unix.TCSANOW saved) f
    end
    else f ()
  in
  (* block until the next frame is due; [`Quit] on q, early [`Tick] on space *)
  let wait_key interval =
    if Unix.isatty Unix.stdin then begin
      let deadline = Unix.gettimeofday () +. interval in
      let rec poll () =
        let left = deadline -. Unix.gettimeofday () in
        if left <= 0. then `Tick
        else
          match Unix.select [ Unix.stdin ] [] [] left with
          | [], _, _ -> `Tick
          | _ -> (
            let b = Bytes.create 1 in
            match Unix.read Unix.stdin b 0 1 with
            | 0 -> `Tick
            | _ -> (
              match Bytes.get b 0 with
              | 'q' | 'Q' -> `Quit
              | ' ' -> `Tick
              | _ -> poll ()))
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> poll ()
      in
      poll ()
    end
    else begin
      Unix.sleepf interval;
      `Tick
    end
  in
  let interval_t =
    Arg.(
      value
      & opt float 1.
      & info [ "interval" ] ~docv:"SEC" ~doc:"Seconds between refreshes (default 1).")
  in
  let frames_t =
    Arg.(
      value
      & opt int 0
      & info [ "frames" ] ~docv:"N"
          ~doc:
            "Render $(docv) frames and exit ($(b,0), the default, runs until $(b,q) or \
             interrupt) — what the smoke tests use on a non-TTY.")
  in
  let run () host port interval frames =
    match Client.connect ~host ~port () with
    | Error e ->
      Format.eprintf "mechaverify: %s@." (Client.error_string e);
      exit 4
    | Ok ep ->
      let tty = Unix.isatty Unix.stdout in
      with_raw_stdin (fun () ->
          let rec loop n =
            let buf = Buffer.create 2048 in
            (* clear-and-home on a TTY, plain appended frames otherwise *)
            if tty then Buffer.add_string buf "\x1b[2J\x1b[H";
            render buf ep;
            if tty then Buffer.add_string buf "\n[q] quit   [space] refresh now\n";
            print_string (Buffer.contents buf);
            flush stdout;
            if frames > 0 && n >= frames then ()
            else match wait_key interval with `Quit -> () | `Tick -> loop (n + 1)
          in
          loop 1);
      exit 0
  in
  let doc =
    "Live terminal dashboard for a running daemon: tenant queues, in-flight jobs, cache \
     hit rate, per-stage SLO burn and quarantine, refreshed from $(b,/v1/stats), \
     $(b,/v1/slo) and $(b,/metrics).  Keys: $(b,q) quits, $(b,space) refreshes now."
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      const run $ obs_t $ host_t
      $ port_t ~default:8484 ~doc:"Daemon port."
      $ interval_t $ frames_t)

(* -- shard-worker: one process of the distributed exploration fleet -------- *)

let shard_worker_cmd =
  let addr_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ADDR"
          ~doc:"Address to listen on: $(b,host:port) or a Unix socket path.")
  in
  let ppid_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "ppid" ] ~docv:"PID"
          ~doc:
            "Coordinator process id.  The worker exits when that process disappears, so \
             a crashed coordinator never leaks its fleet.")
  in
  let run () addr ppid =
    let a = Mechaml_wire.Shardwire.addr_of_string addr in
    let fd =
      try Mechaml_wire.Shardwire.listen a
      with Unix.Unix_error (e, _, _) ->
        Format.eprintf "mechaverify: cannot listen on %s: %s@." addr (Unix.error_message e);
        exit 4
    in
    let w = Mechaml_dist.Distworker.create ?ppid fd in
    Mechaml_dist.Distworker.serve w;
    (match a with
    | Mechaml_wire.Shardwire.Unix_sock p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | Mechaml_wire.Shardwire.Tcp _ -> ());
    exit 0
  in
  let doc =
    "Run one worker process of the distributed sharded exploration.  Started \
     automatically by $(b,--dist-workers); start by hand (one per host) and point \
     $(b,--dist-connect) at the addresses to spread a product across machines.  Owns a \
     subset of shards: expands frontiers, spills cold segments under its own \
     $(b,--mem-budget) share, answers fixpoint boundary exchanges.  Exits on the \
     coordinator's $(b,shutdown), or when $(b,--ppid) dies."
  in
  Cmd.v (Cmd.info "shard-worker" ~doc) Term.(const run $ obs_t $ addr_t $ ppid_t)

let main_cmd =
  let doc =
    "combined formal verification and testing for correct legacy component integration"
  in
  Cmd.group (Cmd.info "mechaverify" ~version:"1.0.0" ~doc)
    [
      railcab_cmd; protocol_cmd; lock_cmd; run_cmd; learn_cmd; pattern_cmd; campaign_cmd;
      export_cmd; serve_cmd; submit_cmd; probe_cmd; top_cmd; chaos_proxy_cmd;
      shard_worker_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
