(* Quickstart: integrate a tiny legacy component against a modelled context.

   The walkthrough mirrors the paper's process end to end on a two-button
   device: we model the context (a driver that presses buttons) as an
   automaton, wrap the legacy component (here: a simulated implementation we
   pretend is opaque) as a black box, state the property, and let the
   iterative behavior synthesis either prove the integration or produce a
   real counterexample — learning only as much of the component as the
   context can reach.

   Run with: dune exec examples/quickstart.exe *)

module Automaton = Mechaml_ts.Automaton
module Loop = Mechaml_core.Loop
module Incomplete = Mechaml_core.Incomplete
module Blackbox = Mechaml_legacy.Blackbox

(* 1. The legacy component: a lamp that toggles on "press" and reports
   "burnt" after three toggles.  In a real integration this would be a
   binary we can only execute; here it is an automaton wrapped so that the
   loop sees nothing but its interface. *)
let lamp =
  let b =
    Automaton.Builder.create ~name:"lamp" ~inputs:[ "press" ] ~outputs:[ "burnt" ] ()
  in
  Automaton.Builder.add_trans b ~src:"off" ~inputs:[ "press" ] ~dst:"on" ();
  Automaton.Builder.add_trans b ~src:"off" ~dst:"off" ();
  Automaton.Builder.add_trans b ~src:"on" ~inputs:[ "press" ] ~dst:"off2" ();
  Automaton.Builder.add_trans b ~src:"on" ~dst:"on" ();
  Automaton.Builder.add_trans b ~src:"off2" ~inputs:[ "press" ] ~outputs:[ "burnt" ] ~dst:"dead" ();
  Automaton.Builder.add_trans b ~src:"off2" ~dst:"off2" ();
  Automaton.Builder.add_trans b ~src:"dead" ~dst:"dead" ();
  Automaton.Builder.set_initial b [ "off" ];
  Automaton.Builder.build b

let box = Blackbox.of_automaton ~port:"button" lamp

(* 2. The context: a driver that presses the button at most twice and then
   leaves the lamp alone.  Its outputs feed the lamp's inputs and vice
   versa. *)
let driver =
  let b =
    Automaton.Builder.create ~name:"driver" ~inputs:[ "burnt" ] ~outputs:[ "press" ] ()
  in
  Automaton.Builder.add_trans b ~src:"fresh" ~outputs:[ "press" ] ~dst:"once" ();
  Automaton.Builder.add_trans b ~src:"once" ~outputs:[ "press" ] ~dst:"done" ();
  Automaton.Builder.add_trans b ~src:"once" ~dst:"once" ();
  Automaton.Builder.add_trans b ~src:"done" ~dst:"done" ();
  Automaton.Builder.set_initial b [ "fresh" ];
  Automaton.Builder.build b

(* 3. The property: the lamp must never burn out under this driver.  The
   proposition names the legacy component's probed state. *)
let property = Mechaml_logic.Parser.parse_exn "AG (not lamp.dead)"

let label_of state = [ "lamp." ^ state ]

let () =
  Format.printf "== Quickstart: correct legacy component integration ==@.@.";
  Format.printf "Context model:@.%a@." Automaton.pp driver;
  let result = Loop.run ~label_of ~context:driver ~property ~legacy:box () in
  Format.printf "%a@.@." Loop.pp_result result;
  Format.printf "Learned behavioural model (M_l^n):@.%a@." Incomplete.pp
    result.Loop.final_model;
  (match result.Loop.verdict with
  | Loop.Proved ->
    Format.printf
      "@.The integration is PROVED correct: the driver presses at most twice,@.so the \
       burn-out state is unreachable — established after learning %d of the@.component's \
       %d states, with %d test executions and no equivalence check.@."
      result.Loop.states_learned
      (Automaton.num_states lamp)
      result.Loop.tests_executed
  | Loop.Real_violation _ -> Format.printf "@.Unexpected: a real violation was found.@."
  | Loop.Exhausted _ -> Format.printf "@.Iteration budget exhausted.@."
  | Loop.Degraded _ -> Format.printf "@.Unexpected: the driver degraded.@.");
  (* 4. The same loop with a reckless driver that keeps pressing: the
     verification finds the real burn-out, demonstrated by a counterexample
     that replays on the component. *)
  Format.printf "@.== Same component, reckless driver ==@.@.";
  let reckless =
    let b =
      Automaton.Builder.create ~name:"driver" ~inputs:[ "burnt" ] ~outputs:[ "press" ] ()
    in
    Automaton.Builder.add_trans b ~src:"go" ~outputs:[ "press" ] ~dst:"go" ();
    Automaton.Builder.add_trans b ~src:"go" ~inputs:[ "burnt" ] ~outputs:[ "press" ] ~dst:"go" ();
    Automaton.Builder.set_initial b [ "go" ];
    Automaton.Builder.build b
  in
  let result = Loop.run ~label_of ~context:reckless ~property ~legacy:box () in
  Format.printf "%a@.@." Loop.pp_result result;
  match result.Loop.verdict with
  | Loop.Real_violation { kind; witness; product; _ } ->
    Format.printf "Real %s found; counterexample:@.%s@."
      (match kind with Loop.Deadlock -> "deadlock" | Loop.Property -> "property violation")
      (Mechaml_scenarios.Listing.render ~left_name:"driver" ~right_name:"lamp" product witness)
  | _ -> Format.printf "Unexpected verdict.@."
