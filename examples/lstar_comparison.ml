(* Context-guided synthesis vs. whole-component learning (Section 6).

   The combination-lock family makes the paper's headline claim measurable:
   a legacy component with n+1 states of which the context only ever
   exercises a small prefix.  The paper's loop proves the integration after
   learning just that prefix; Angluin's L* must learn all n+1 states, and any
   realistic equivalence oracle (W-method conformance testing) additionally
   pays a suite that is exponential in the state-count gap.

   Run with: dune exec examples/lstar_comparison.exe *)

module Families = Mechaml_scenarios.Families
module Loop = Mechaml_core.Loop
module Lstar = Mechaml_learnlib.Lstar
module Mealy = Mechaml_learnlib.Mealy
module Oracle = Mechaml_learnlib.Oracle
module Wmethod = Mechaml_learnlib.Wmethod
module Amc = Mechaml_learnlib.Amc
module Pp = Mechaml_util.Pp

let row n depth =
  let box = Families.lock_box ~n in
  let context = Families.lock_context ~n ~depth in
  (* ours *)
  let loop =
    Loop.run ~label_of:Families.lock_label_of ~context ~property:Families.lock_property
      ~legacy:box ()
  in
  let ours_states = loop.Loop.states_learned in
  let ours_steps = loop.Loop.test_steps_executed in
  let verdict =
    match loop.Loop.verdict with
    | Loop.Proved -> "proved"
    | Loop.Real_violation _ -> "violation"
    | Loop.Exhausted _ -> "exhausted"
    | Loop.Degraded _ -> "degraded"
  in
  (* L* with a perfect equivalence oracle: the lower bound for any
     full-learning approach *)
  let truth = Mealy.of_automaton ~alphabet:Families.lock_alphabet (Families.lock_legacy ~n) in
  let lstar =
    Lstar.learn ~box ~alphabet:Families.lock_alphabet ~equivalence:(Lstar.Perfect truth)
      ~ce_processing:Mechaml_learnlib.Obs_table.Maler_pnueli_suffixes ()
  in
  let lstar_states = Mealy.num_states lstar.Lstar.hypothesis in
  let lstar_symbols = lstar.Lstar.stats.Oracle.symbols in
  (* the conformance suite a realistic oracle would additionally execute to
     certify the final hypothesis *)
  let suite_words, suite_symbols =
    Wmethod.suite_size ~hypothesis:lstar.Lstar.hypothesis ~extra_states:0
  in
  [
    string_of_int n;
    string_of_int depth;
    verdict;
    string_of_int ours_states;
    string_of_int ours_steps;
    string_of_int lstar_states;
    string_of_int lstar_symbols;
    Printf.sprintf "%d/%d" suite_words suite_symbols;
  ]

let () =
  Format.printf
    "Combination lock, secret length n, context exercising only depth symbols:@.@.";
  let rows = List.map (fun (n, d) -> row n d) [ (8, 2); (12, 3); (16, 4); (24, 4); (32, 4) ] in
  print_endline
    (Pp.table
       ~header:
         [
           "n";
           "depth";
           "ours";
           "ours:states";
           "ours:steps";
           "L*:states";
           "L*:symbols";
           "W-suite(words/syms)";
         ]
       rows);
  Format.printf
    "@.The loop's work tracks the context (depth), not the component (n); L*'s@.work tracks \
     the component.  AMC on the same instance (n=8, depth=2):@.@.";
  let amc =
    Amc.verify ~box:(Families.lock_box ~n:8) ~context:(Families.lock_context ~n:8 ~depth:2)
      ~alphabet:Families.lock_alphabet ~state_bound:9 ()
  in
  (match amc.Amc.verdict with
  | Amc.Holds_up_to_bound { conformance_words } ->
    Format.printf
      "AMC: holds up to the state bound — after growing its hypothesis to %d states@.and \
       executing %d output queries (%d symbols), including a %d-word conformance suite.@."
      amc.Amc.hypothesis_states amc.Amc.stats.Oracle.output_queries
      amc.Amc.stats.Oracle.symbols conformance_words
  | Amc.Real_violation _ -> Format.printf "AMC: unexpected violation@.");
  Format.printf
    "@.An under-approximating hypothesis proves nothing until conformance-tested;@.the \
     paper's over-approximating closure is a proof the moment the check passes.@."
