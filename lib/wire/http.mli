(** Hand-rolled HTTP/1.1 over [Unix] file descriptors — the wire layer of the
    verification daemon and its client.  No event loop and no external
    dependency: every connection is driven by one blocking domain, requests
    are read with a small buffered reader, and campaign verdict streams go
    out as chunked responses.

    The subset implemented is exactly what the daemon and the bench driver
    need: request line + headers + [Content-Length] bodies on the way in,
    fixed-length or chunked responses on the way out, and the mirror image
    on the client side.  Everything else (request chunking, multiline
    headers, HTTP/1.0 keep-alive) is rejected as {!Bad} — the daemon parses
    untrusted bytes, so unknown constructs fail closed. *)

exception Closed
(** Peer closed the connection (EOF mid-message, or before any byte). *)

exception Bad of string
(** Malformed or over-limit HTTP — the handler answers 400 and drops the
    connection. *)

exception Timeout of string
(** A per-connection I/O deadline expired (payload ["read"] or ["write"]).
    The server answers 408 where possible and drops the connection, so a
    slow-loris or dead peer cannot pin a handler domain. *)

type conn
(** A buffered connection wrapper around a socket. *)

val conn : ?read_timeout_s:float -> ?write_timeout_s:float -> Unix.file_descr -> conn
(** Wrap a socket.  With [read_timeout_s] ([write_timeout_s]) every read
    (write) first waits for readiness with [select] and raises {!Timeout}
    when the peer produces (accepts) nothing for that long; without them
    I/O blocks indefinitely (the pre-daemon behaviour). *)

val fd : conn -> Unix.file_descr

val close : conn -> unit
(** Close the underlying descriptor (idempotent; errors ignored). *)

val set_response_header : conn -> string -> string -> unit
(** Stamp a header (name lowercased; last value per name wins) onto every
    response this connection subsequently sends via {!respond} or
    {!start_chunked} — including error responses written by catch-all
    handlers that never saw the request.  How [X-Request-Id] reaches 400,
    408 and 500 replies.  Headers passed explicitly to {!respond} /
    {!start_chunked} win over stamped ones of the same name. *)

(** {1 Requests (server side)} *)

type request = {
  meth : string;  (** verb, uppercased by the sender, matched verbatim *)
  path : string;  (** request target as sent, e.g. ["/v1/campaign"] *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;  (** [""] when no [Content-Length] *)
}

val read_request : ?max_body:int -> conn -> request
(** Read one request.  Raises {!Closed} on EOF before the first byte (the
    peer hung up between requests) and {!Bad} on malformed input, a header
    section over 16 KiB, more than 100 headers, a body over [max_body]
    (default 4 MiB) or a [Transfer-Encoding] request body. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

(** {1 Responses} *)

val status_text : int -> string

val respond :
  conn -> status:int -> ?headers:(string * string) list -> string -> unit
(** Write a complete fixed-length response with [Content-Length] and
    [Connection: close]. *)

val start_chunked :
  conn -> status:int -> ?headers:(string * string) list -> unit -> unit
(** Write the response head with [Transfer-Encoding: chunked]; follow with
    {!chunk} calls and a final {!finish_chunked}. *)

val chunk : conn -> string -> unit
(** Send one chunk.  Empty strings are skipped (an empty chunk would
    terminate the stream). *)

val finish_chunked : conn -> unit
(** Send the terminal zero-length chunk. *)

(** {1 Responses (client side)} *)

type response_head = {
  status : int;
  resp_headers : (string * string) list;  (** names lowercased *)
}

val write_request :
  conn ->
  meth:string ->
  path:string ->
  ?headers:(string * string) list ->
  string ->
  unit
(** Write a request with [Content-Length] and [Connection: close]. *)

val read_response_head : conn -> response_head

val resp_header : response_head -> string -> string option

val read_chunk : conn -> string option
(** Next chunk of a [Transfer-Encoding: chunked] body; [None] after the
    terminal chunk (trailers are consumed and discarded). *)

val read_body : conn -> response_head -> string
(** Whole response body: joins chunks when chunked, reads [Content-Length]
    bytes when fixed, reads to EOF otherwise (we always send
    [Connection: close]). *)
