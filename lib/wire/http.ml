exception Closed

exception Bad of string

exception Timeout of string

let max_header_bytes = 16 * 1024

let max_headers = 100

type conn = {
  cfd : Unix.file_descr;
  rbuf : Bytes.t;
  mutable rstart : int;
  mutable rlen : int;
  read_timeout : float option;
  write_timeout : float option;
  (* server-side headers stamped on whatever response this connection ends
     up sending — set before the request is even parsed, so error responses
     (400/408/500) carry them too *)
  mutable stamped : (string * string) list;
}

let conn ?read_timeout_s ?write_timeout_s fd =
  {
    cfd = fd;
    rbuf = Bytes.create 8192;
    rstart = 0;
    rlen = 0;
    read_timeout = read_timeout_s;
    write_timeout = write_timeout_s;
    stamped = [];
  }

let set_response_header c name value =
  let name = String.lowercase_ascii name in
  c.stamped <- (name, value) :: List.remove_assoc name c.stamped

let fd c = c.cfd

let close c = try Unix.close c.cfd with Unix.Unix_error _ -> ()

(* -- buffered reading ------------------------------------------------------ *)

(* Wait until [fd] is ready in the given direction or the per-connection
   deadline expires.  Select-based — no extra dependencies, and a blocking
   descriptor is fine because readiness is established before the syscall —
   so a slow-loris peer trickling header bytes, or a dead peer that stopped
   ACKing a verdict stream, costs a handler domain at most the timeout. *)
let await_ready c ~dir timeout =
  match timeout with
  | None -> ()
  | Some t ->
    let deadline = Unix.gettimeofday () +. t in
    let rec wait () =
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then
        raise (Timeout (match dir with `Read -> "read" | `Write -> "write"))
      else begin
        let r, w = match dir with `Read -> ([ c.cfd ], []) | `Write -> ([], [ c.cfd ]) in
        match Unix.select r w [] remaining with
        | [], [], _ -> wait ()
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      end
    in
    wait ()

let refill c =
  if c.rlen = 0 then begin
    c.rstart <- 0;
    let n =
      let rec read () =
        await_ready c ~dir:`Read c.read_timeout;
        match Unix.read c.cfd c.rbuf 0 (Bytes.length c.rbuf) with
        | n -> n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read ()
      in
      read ()
    in
    if n = 0 then raise Closed;
    c.rlen <- n
  end

let read_byte c =
  refill c;
  let b = Bytes.get c.rbuf c.rstart in
  c.rstart <- c.rstart + 1;
  c.rlen <- c.rlen - 1;
  b

(* One CRLF- (or bare-LF-) terminated line, without the terminator. *)
let read_line ?(limit = max_header_bytes) c =
  let b = Buffer.create 128 in
  let rec go () =
    match read_byte c with
    | '\n' ->
      let s = Buffer.contents b in
      let n = String.length s in
      if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s
    | ch ->
      if Buffer.length b >= limit then raise (Bad "line too long");
      Buffer.add_char b ch;
      go ()
  in
  go ()

let read_exact c n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    refill c;
    let take = min c.rlen (n - !filled) in
    Bytes.blit c.rbuf c.rstart out !filled take;
    c.rstart <- c.rstart + take;
    c.rlen <- c.rlen - take;
    filled := !filled + take
  done;
  Bytes.unsafe_to_string out

(* -- writing --------------------------------------------------------------- *)

let write_all c s =
  let len = String.length s in
  let sent = ref 0 in
  while !sent < len do
    await_ready c ~dir:`Write c.write_timeout;
    match Unix.write_substring c.cfd s !sent (len - !sent) with
    | n -> sent := !sent + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* -- header parsing -------------------------------------------------------- *)

let lowercase = String.lowercase_ascii

let trim = String.trim

let parse_header line =
  match String.index_opt line ':' with
  | None -> raise (Bad "malformed header line")
  | Some i ->
    (lowercase (trim (String.sub line 0 i)),
     trim (String.sub line (i + 1) (String.length line - i - 1)))

let read_headers c =
  let rec go acc count bytes =
    let line = read_line c in
    let bytes = bytes + String.length line in
    if bytes > max_header_bytes then raise (Bad "header section too large");
    if line = "" then List.rev acc
    else if count >= max_headers then raise (Bad "too many headers")
    else go (parse_header line :: acc) (count + 1) bytes
  in
  go [] 0 0

(* -- requests -------------------------------------------------------------- *)

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

let header req name = List.assoc_opt (lowercase name) req.headers

let read_request ?(max_body = 4 * 1024 * 1024) c =
  let line = read_line c in
  let meth, path =
    match String.split_on_char ' ' line with
    | [ meth; path; version ]
      when version = "HTTP/1.1" || version = "HTTP/1.0" ->
      (meth, path)
    | _ -> raise (Bad "malformed request line")
  in
  let headers = read_headers c in
  if List.mem_assoc "transfer-encoding" headers then
    raise (Bad "chunked request bodies are not supported");
  let body =
    match List.assoc_opt "content-length" headers with
    | None -> ""
    | Some v -> (
      match int_of_string_opt (trim v) with
      | Some n when n >= 0 && n <= max_body -> read_exact c n
      | Some _ -> raise (Bad "body too large")
      | None -> raise (Bad "malformed content-length"))
  in
  { meth; path; headers; body }

(* -- responses ------------------------------------------------------------- *)

let status_text = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let head ~status headers =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v)) headers;
  Buffer.add_string b "\r\n";
  Buffer.contents b

(* caller-supplied headers win over stamped ones of the same name *)
let with_stamped c headers =
  List.filter (fun (k, _) -> not (List.mem_assoc k headers)) (List.rev c.stamped) @ headers

let respond c ~status ?(headers = []) body =
  let headers =
    with_stamped c headers
    @ [ ("content-length", string_of_int (String.length body)); ("connection", "close") ]
  in
  write_all c (head ~status headers);
  write_all c body

let start_chunked c ~status ?(headers = []) () =
  let headers =
    with_stamped c headers @ [ ("transfer-encoding", "chunked"); ("connection", "close") ]
  in
  write_all c (head ~status headers)

let chunk c s =
  if String.length s > 0 then begin
    write_all c (Printf.sprintf "%x\r\n" (String.length s));
    write_all c s;
    write_all c "\r\n"
  end

let finish_chunked c = write_all c "0\r\n\r\n"

(* -- client side ----------------------------------------------------------- *)

type response_head = { status : int; resp_headers : (string * string) list }

let resp_header r name = List.assoc_opt (lowercase name) r.resp_headers

let write_request c ~meth ~path ?(headers = []) body =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\n" meth path);
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v)) headers;
  Buffer.add_string b
    (Printf.sprintf "content-length: %d\r\nconnection: close\r\n\r\n" (String.length body));
  write_all c (Buffer.contents b);
  write_all c body

let read_response_head c =
  let line = read_line c in
  let status =
    match String.split_on_char ' ' line with
    | version :: code :: _ when String.length version >= 5 && String.sub version 0 5 = "HTTP/"
      -> (
      match int_of_string_opt code with
      | Some s -> s
      | None -> raise (Bad "malformed status line"))
    | _ -> raise (Bad "malformed status line")
  in
  { status; resp_headers = read_headers c }

let read_chunk c =
  let size_line = read_line c in
  (* chunk extensions (";...") are allowed and ignored *)
  let size_str =
    match String.index_opt size_line ';' with
    | Some i -> String.sub size_line 0 i
    | None -> size_line
  in
  match int_of_string_opt ("0x" ^ trim size_str) with
  | None -> raise (Bad "malformed chunk size")
  | Some 0 ->
    (* consume (and discard) trailers up to the blank line *)
    let rec trailers () = if read_line c <> "" then trailers () in
    trailers ();
    None
  | Some n when n < 0 -> raise (Bad "malformed chunk size")
  | Some n ->
    let data = read_exact c n in
    if read_line c <> "" then raise (Bad "chunk not CRLF-terminated");
    Some data

let read_body c r =
  match resp_header r "transfer-encoding" with
  | Some te when lowercase te = "chunked" ->
    let b = Buffer.create 1024 in
    let rec go () =
      match read_chunk c with
      | Some data ->
        Buffer.add_string b data;
        go ()
      | None -> Buffer.contents b
    in
    go ()
  | _ -> (
    match resp_header r "content-length" with
    | Some v -> (
      match int_of_string_opt (trim v) with
      | Some n when n >= 0 -> read_exact c n
      | _ -> raise (Bad "malformed content-length"))
    | None ->
      (* connection: close delimits the body — read to EOF *)
      let b = Buffer.create 1024 in
      (try
         while true do
           refill c;
           Buffer.add_subbytes b c.rbuf c.rstart c.rlen;
           c.rstart <- c.rstart + c.rlen;
           c.rlen <- 0
         done
       with Closed -> ());
      Buffer.contents b)
