(* Wire codec for the distributed shard tier: every coordinator↔worker
   exchange is one HTTP/1.1 POST whose body is a [msg] — a small JSON
   control part plus an optional bulk part in the self-describing,
   digest-checked [mechaseg] segment format.  Bulk data (frontier batches,
   edge deltas, boundary bitset deltas, whole CSR segments) therefore gets
   the same corruption guarantee as spill files: a flipped bit or truncated
   tail surfaces as {!Wire_error}, never as wrong fixpoint bits. *)

module Json = Mechaml_obs.Json
module Segment = Mechaml_util.Segment
module Bitset = Mechaml_util.Bitset
module Universe = Mechaml_ts.Universe
module Automaton = Mechaml_ts.Automaton

exception Wire_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Wire_error m)) fmt

type msg = {
  meta : Json.t;
  data : Segment.payload;
}

let msg ?(data = []) meta = { meta; data }

(* -- framing ----------------------------------------------------------------

   ["msw1 <json-len> <seg-len>\n" ^ json ^ segment].  The segment part, when
   present, is exactly [Segment.to_string data] — versioned header plus MD5
   digest — so [decode] verifies it with the spill-file codec. *)

let encode { meta; data } =
  let j = Json.to_string meta in
  let b = match data with [] -> "" | _ -> Segment.to_string data in
  Printf.sprintf "msw1 %d %d\n%s%s" (String.length j) (String.length b) j b

let decode s =
  let nl = match String.index_opt s '\n' with Some i -> i | None -> fail "wire: missing frame header" in
  (match String.split_on_char ' ' (String.sub s 0 nl) with
  | [ "msw1"; jl; bl ] -> (
    match (int_of_string_opt jl, int_of_string_opt bl) with
    | Some jl, Some bl when jl >= 0 && bl >= 0 ->
      if String.length s - nl - 1 <> jl + bl then fail "wire: frame length mismatch"
      else
        let meta =
          match Json.parse (String.sub s (nl + 1) jl) with
          | Ok j -> j
          | Error m -> fail "wire: bad control JSON: %s" m
        in
        let data =
          if bl = 0 then []
          else
            match Segment.of_string ~what:"wire segment" (String.sub s (nl + 1 + jl) bl) with
            | Ok p -> p
            | Error m -> fail "%s" m
        in
        { meta; data }
    | _ -> fail "wire: malformed frame header")
  | _ -> fail "wire: not a shardwire frame")

(* -- control JSON accessors (fail closed) ----------------------------------- *)

let jint j name =
  match Json.member name j with
  | Some (Json.Num f) when Float.is_integer f -> int_of_float f
  | _ -> fail "wire: missing integer field %S" name

let jint_opt j name =
  match Json.member name j with
  | Some (Json.Num f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let jstr j name =
  match Json.member name j with
  | Some (Json.Str s) -> s
  | _ -> fail "wire: missing string field %S" name

let jints j name =
  match Json.member name j with
  | Some (Json.List l) ->
    List.map
      (function Json.Num f when Float.is_integer f -> int_of_float f | _ -> fail "wire: non-integer in %S" name)
      l
  | _ -> fail "wire: missing list field %S" name

let num i = Json.Num (float_of_int i)

let nums l = Json.List (List.map num l)

let ints data name =
  match List.assoc_opt name data with
  | Some (Segment.Ints a) -> a
  | _ -> fail "wire: missing Ints field %S" name

let ints_opt data name =
  match List.assoc_opt name data with Some (Segment.Ints a) -> Some a | _ -> None

let bits data name =
  match List.assoc_opt name data with
  | Some (Segment.Bits b) -> b
  | _ -> fail "wire: missing Bits field %S" name

(* -- automaton codec --------------------------------------------------------

   Order-preserving: adjacency lists round-trip in their exact enumeration
   order (unlike {!Mechaml_ts.Textio}, which round-trips only up to
   transition order), so a worker re-expanding a state pair enumerates joint
   moves byte-identically to the coordinator's in-process twin. *)

let json_of_automaton (a : Automaton.t) =
  let univ u = Json.List (List.map (fun n -> Json.Str n) (Universe.to_list u)) in
  let labels =
    Json.List (Array.to_list (Array.map (fun l -> num (Bitset.to_int l)) a.Automaton.labels))
  in
  let states =
    Json.List (Array.to_list (Array.map (fun n -> Json.Str n) a.Automaton.state_names))
  in
  let trans =
    Json.List
      (Array.to_list
         (Array.map
            (fun ts ->
              Json.List
                (List.concat_map
                   (fun (t : Automaton.trans) ->
                     [ num (Bitset.to_int t.input); num (Bitset.to_int t.output); num t.dst ])
                   ts))
            a.Automaton.trans))
  in
  Json.Obj
    [
      ("name", Json.Str a.Automaton.name);
      ("inputs", univ a.Automaton.inputs);
      ("outputs", univ a.Automaton.outputs);
      ("props", univ a.Automaton.props);
      ("states", states);
      ("labels", labels);
      ("initial", nums a.Automaton.initial);
      ("trans", trans);
    ]

let automaton_of_json j =
  let univ name =
    match Json.member name j with
    | Some (Json.List l) ->
      Universe.of_list
        (List.map (function Json.Str s -> s | _ -> fail "wire: bad universe %S" name) l)
    | _ -> fail "wire: missing universe %S" name
  in
  let name = jstr j "name" in
  let inputs = univ "inputs" and outputs = univ "outputs" and props = univ "props" in
  let state_names =
    match Json.member "states" j with
    | Some (Json.List l) ->
      Array.of_list
        (List.map (function Json.Str s -> s | _ -> fail "wire: bad state name") l)
    | _ -> fail "wire: missing field \"states\""
  in
  let labels =
    Array.of_list (List.map (fun i -> Bitset.of_int_unsafe i) (jints j "labels"))
  in
  let rec triples = function
    | [] -> []
    | i :: o :: d :: rest ->
      { Automaton.input = Bitset.of_int_unsafe i; output = Bitset.of_int_unsafe o; dst = d }
      :: triples rest
    | _ -> fail "wire: ragged transition list"
  in
  let trans =
    match Json.member "trans" j with
    | Some (Json.List rows) ->
      Array.of_list
        (List.map
           (function
             | Json.List l ->
               triples
                 (List.map
                    (function
                      | Json.Num f when Float.is_integer f -> int_of_float f
                      | _ -> fail "wire: non-integer transition entry")
                    l)
             | _ -> fail "wire: bad transition row")
           rows)
    | _ -> fail "wire: missing field \"trans\""
  in
  let initial = jints j "initial" in
  try
    Automaton.of_packed ~assume_unique_names:true ~name ~inputs ~outputs ~props ~state_names
      ~labels ~trans ~initial ()
  with Invalid_argument m -> fail "wire: inconsistent automaton: %s" m

(* -- addresses and transport ------------------------------------------------ *)

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  if String.contains s '/' then Unix_sock s
  else
    match String.rindex_opt s ':' with
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Tcp ((if host = "" then "127.0.0.1" else host), p)
      | _ -> fail "wire: bad address %S (expected host:port or a socket path)" s)
    | None -> fail "wire: bad address %S (expected host:port or a socket path)" s

let addr_to_string = function
  | Unix_sock p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> fail "wire: cannot resolve %S" host
    | h -> h.Unix.h_addr_list.(0)
    | exception Not_found -> fail "wire: cannot resolve %S" host)

let connect addr =
  match addr with
  | Unix_sock path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e -> Unix.close fd; raise e);
    fd
  | Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (resolve host, port))
     with e -> Unix.close fd; raise e);
    fd

let listen addr =
  match addr with
  | Unix_sock path ->
    (try if (Unix.stat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
     with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 64
     with e -> Unix.close fd; raise e);
    fd
  | Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (resolve host, port));
       Unix.listen fd 64
     with e -> Unix.close fd; raise e);
    fd

(* One POST per exchange, [Connection: close] like the daemon's client — a
   connect on a Unix or loopback socket is far cheaper than any round's
   payload.  Returns the reply and the byte volume both ways (the
   coordinator's [mc_dist_bytes_{tx,rx}_total] series).  Transport failures
   (refused, reset, EOF, deadline) escape as their own exceptions — the
   coordinator reads those as a dead or stalled worker, while {!Wire_error}
   means the peer answered garbage. *)
let call ?deadline_s addr ~path m =
  let fd = connect addr in
  let conn = Http.conn ?read_timeout_s:deadline_s ?write_timeout_s:deadline_s fd in
  Fun.protect
    ~finally:(fun () -> Http.close conn)
    (fun () ->
      let body = encode m in
      Http.write_request conn ~meth:"POST" ~path body;
      let head = Http.read_response_head conn in
      let resp = Http.read_body conn head in
      if head.Http.status <> 200 then
        fail "wire: %s %s answered %d: %s" (addr_to_string addr) path head.Http.status
          (if String.length resp > 200 then String.sub resp 0 200 else resp);
      (decode resp, String.length body, String.length resp))
