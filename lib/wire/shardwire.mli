(** Wire codec for the distributed shard tier.

    A coordinator↔worker exchange is one HTTP/1.1 POST whose body is a
    {!msg}: a small JSON control part plus an optional bulk part in the
    [mechaseg] segment format ({!Mechaml_util.Segment.to_string}) — so
    frontier batches, edge deltas, boundary bitset deltas and whole CSR
    segments travel with the same versioned header and MD5 digest as spill
    files, verified on receipt.  Corruption anywhere surfaces as
    {!Wire_error}, never as wrong data. *)

exception Wire_error of string
(** Malformed or corrupt wire bytes (bad frame, failed digest, inconsistent
    automaton, unexpected reply).  Fail closed: a verdict is never computed
    from a frame that did not verify. *)

type msg = {
  meta : Mechaml_obs.Json.t;  (** control part *)
  data : Mechaml_util.Segment.payload;  (** bulk part; [[]] when absent *)
}

val msg : ?data:Mechaml_util.Segment.payload -> Mechaml_obs.Json.t -> msg

val encode : msg -> string

val decode : string -> msg
(** Raises {!Wire_error} on anything that does not verify, including the
    segment digest. *)

(** {1 Control-JSON accessors}

    All raise {!Wire_error} when the field is missing or ill-typed. *)

val jint : Mechaml_obs.Json.t -> string -> int

val jint_opt : Mechaml_obs.Json.t -> string -> int option

val jstr : Mechaml_obs.Json.t -> string -> string

val jints : Mechaml_obs.Json.t -> string -> int list

val num : int -> Mechaml_obs.Json.t

val nums : int list -> Mechaml_obs.Json.t

val ints : Mechaml_util.Segment.payload -> string -> int array

val ints_opt : Mechaml_util.Segment.payload -> string -> int array option

val bits : Mechaml_util.Segment.payload -> string -> Mechaml_util.Bitvec.t

(** {1 Automaton codec}

    Order-preserving (adjacency lists round-trip in exact enumeration
    order, unlike {!Mechaml_ts.Textio}), so workers re-enumerate joint
    moves byte-identically to the coordinator. *)

val json_of_automaton : Mechaml_ts.Automaton.t -> Mechaml_obs.Json.t

val automaton_of_json : Mechaml_obs.Json.t -> Mechaml_ts.Automaton.t

(** {1 Addresses and transport} *)

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> addr
(** A string with a ['/'] is a Unix socket path; otherwise [host:port]
    (empty host means loopback). *)

val addr_to_string : addr -> string

val connect : addr -> Unix.file_descr

val listen : addr -> Unix.file_descr
(** Bound, listening server socket (stale Unix socket paths are unlinked
    first). *)

val call : ?deadline_s:float -> addr -> path:string -> msg -> msg * int * int
(** One round trip: POST the message, return [(reply, bytes_tx, bytes_rx)].
    Raises {!Wire_error} on a non-200 reply or a frame that fails to verify;
    transport-level failures ([Unix.Unix_error], {!Http.Closed},
    {!Http.Timeout}) escape as themselves — the coordinator reads those as a
    dead or stalled worker. *)
