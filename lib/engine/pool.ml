let recommended_jobs () = Domain.recommended_domain_count ()

let map ~jobs ~f items =
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* each slot is written by exactly one domain: no race *)
          (results.(i) <-
            (match f items.(i) with
            | v -> Some (Ok v)
            | exception e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
          go ()
        end
      in
      go ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end
