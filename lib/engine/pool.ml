module Trace = Mechaml_obs.Trace
module Metrics = Mechaml_obs.Metrics
module Clock = Mechaml_obs.Clock

let m_tasks = Metrics.counter "engine_pool_tasks_total" ~help:"Work items executed by the pool."

let m_queue_wait =
  Metrics.histogram "engine_pool_queue_wait_seconds"
    ~help:"Time between pool start and a work item being claimed by a worker."

let m_utilization =
  Metrics.gauge "engine_pool_utilization"
    ~help:"Busy-time fraction of the last pool run: sum of per-worker busy seconds over \
           workers times wall-clock."

let recommended_jobs () = Domain.recommended_domain_count ()

let map ~jobs ~f items =
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let t_start = Clock.wall () in
    (* Per-worker busy-time accumulators; slot [w] is written only by worker
       [w], so no synchronisation — read after the joins below. *)
    let busy = Array.make jobs 0. in
    let observing () = Metrics.enabled () || Trace.is_enabled () in
    let worker w () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let t0 = if observing () then Clock.wall () else 0. in
          if t0 > 0. then Metrics.observe m_queue_wait (t0 -. t_start);
          Metrics.incr m_tasks;
          (* each slot is written by exactly one domain: no race *)
          (results.(i) <-
            (match
               Trace.with_span ~name:"pool.task"
                 ~args:[ ("item", Trace.Int i); ("worker", Trace.Int w) ]
                 (fun () -> f items.(i))
             with
            | v -> Some (Ok v)
            | exception e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
          if t0 > 0. then busy.(w) <- busy.(w) +. (Clock.wall () -. t0);
          go ()
        end
      in
      go ()
    in
    let domains = List.init (jobs - 1) (fun w -> Domain.spawn (worker (w + 1))) in
    worker 0 ();
    List.iter Domain.join domains;
    if Metrics.enabled () then begin
      let elapsed = Clock.wall () -. t_start in
      if elapsed > 0. then
        Metrics.set m_utilization
          (Array.fold_left ( +. ) 0. busy /. (float_of_int jobs *. elapsed))
    end;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end
