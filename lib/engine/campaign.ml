module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe
module Ctl = Mechaml_logic.Ctl
module Witness = Mechaml_mc.Witness
module Blackbox = Mechaml_legacy.Blackbox
module Flaky = Mechaml_legacy.Flaky
module Faults = Mechaml_legacy.Faults
module Supervisor = Mechaml_legacy.Supervisor
module Loop = Mechaml_core.Loop
module Incomplete = Mechaml_core.Incomplete
module Trace = Mechaml_obs.Trace

type spec = {
  id : string;
  family : string;
  context : Automaton.t;
  property : Ctl.t;
  strategy : Witness.strategy;
  make_box : unit -> Blackbox.t;
  label_of : string -> string list;
  timeout : float option;
  retries : int;
  max_iterations : int option;
  inject : string option;
  seed : int;
  policy : Supervisor.policy option;
}

let job ~id ~family ~context ~property ?(strategy = Witness.Bfs_shortest)
    ?(label_of = fun _ -> []) ?timeout ?(retries = 0) ?max_iterations ?inject ?(seed = 0)
    ?policy make_box =
  { id; family; context; property; strategy; make_box; label_of; timeout; retries;
    max_iterations; inject; seed; policy }

type verdict =
  | Proved
  | Real_deadlock of { confirmed_by_test : bool }
  | Real_property of { confirmed_by_test : bool }
  | Exhausted
  | Degraded of { reason : string }
  | Timed_out
  | Failed of string

type cache_counters = {
  closure_hits : int;
  closure_misses : int;
  check_hits : int;
  check_misses : int;
}

type outcome = {
  spec_id : string;
  family : string;
  verdict : verdict;
  iterations : int;
  states_learned : int;
  knowledge : int;
  tests_executed : int;
  test_steps : int;
  attempts : int;
  duration_s : float;
  closure_seconds : float;
  check_seconds : float;
  test_seconds : float;
  max_closure_states : int;
  max_product_states : int;
  closure_delta_edges : int;
  product_states_reused : int;
  sat_seed_hit_rate : float;
  cache : cache_counters;
  fault : string option;
  supervision : Supervisor.stats option;
}

let verdict_string = function
  | Proved -> "proved"
  | Real_deadlock { confirmed_by_test = true } -> "real deadlock (tested)"
  | Real_deadlock _ -> "real deadlock (fast)"
  | Real_property { confirmed_by_test = true } -> "real violation (tested)"
  | Real_property _ -> "real violation (fast)"
  | Exhausted -> "exhausted"
  | Degraded _ -> "degraded"
  | Timed_out -> "timed out"
  | Failed _ -> "failed"

let strategy_string = function
  | Witness.Bfs_shortest -> "bfs"
  | Witness.Dfs_first -> "dfs"

exception Out_of_time
(* Internal: unwinds Loop.run from inside a hook when the deadline passed.
   The loop holds no resources, so unwinding is safe at any stage. *)

let run_spec_unobserved ?cache ?(incremental = true) ?(incremental_debug = false) ?sharding
    (spec : spec) : outcome =
  let start = Unix.gettimeofday () in
  let deadline = Option.map (fun budget -> start +. budget) spec.timeout in
  let closure_hits = ref 0 and closure_misses = ref 0 in
  let check_hits = ref 0 and check_misses = ref 0 in
  let guard_deadline () =
    match deadline with
    | Some d when Unix.gettimeofday () >= d -> raise Out_of_time
    | _ -> ()
  in
  (* The closure of a learned model also depends on the labelling (identified
     by the family name) and on the property's legacy-side propositions that
     the loop seeds into the closure universe — mirror Loop.run's derivation
     so structurally identical closures, and only those, share a key. *)
  let legacy_props =
    List.filter
      (fun p -> not (Universe.mem spec.context.Automaton.props p))
      (Ctl.props spec.property)
  in
  let on_closure ~model ~compute =
    guard_deadline ();
    match cache with
    | None -> compute ()
    | Some c ->
      let key = Cache.digest ("closure", spec.family, legacy_props, model) in
      let v, hit = Cache.closure c ~key compute in
      if hit then incr closure_hits else incr closure_misses;
      v
  in
  let on_check ~product ~formulas ~compute =
    guard_deadline ();
    match cache with
    | None -> compute ()
    | Some c ->
      (* In sharded mode no product automaton exists at check time — the
         loop hands the closure instead, so the key must also carry the
         context (the product is a function of both) and a distinct tag
         keeping sharded and materialized entries disjoint. *)
      let key =
        match sharding with
        | None -> Cache.digest ("check", strategy_string spec.strategy, formulas, product)
        | Some _ ->
          Cache.digest
            ("check-sharded", strategy_string spec.strategy, formulas, spec.context, product)
      in
      let v, hit = Cache.check c ~key compute in
      if hit then incr check_hits else incr check_misses;
      v
  in
  (* One box per job: fault-injection wrappers keep mutable counters, so the
     instance must be job-local (verdicts independent of sibling scheduling)
     but shared across retry attempts (a retry continues where the flaky
     driver left off instead of replaying the identical failure).  The same
     holds for the supervisor: its breaker state and statistics span the
     whole job. *)
  let injected =
    match spec.inject with
    | None -> Ok (spec.make_box ())
    | Some profile ->
      Result.map
        (fun inject -> inject (spec.make_box ()))
        (Faults.of_string ~seed:spec.seed profile)
  in
  let supervisor =
    match injected with
    | Error _ -> None
    | Ok box -> (
      match (spec.inject, spec.policy) with
      | None, None -> None
      | _ -> Some (Supervisor.create ~seed:spec.seed ?policy:spec.policy box))
  in
  let attempts, result =
    match injected with
    | Error msg -> (0, Error (Failed ("bad fault profile: " ^ msg)))
    | Ok box ->
      let observe =
        Option.map (fun sup ~inputs -> Supervisor.observe_hook sup ~inputs) supervisor
      in
      let rec attempt k =
        match
          Loop.run ~strategy:spec.strategy ~label_of:spec.label_of
            ?max_iterations:spec.max_iterations ~on_closure ~on_check ?observe
            ~incremental ~incremental_debug ?sharding ~context:spec.context
            ~property:spec.property ~legacy:box ()
        with
        | r -> (k, Ok r)
        | exception Out_of_time -> (k, Error Timed_out)
        | exception e ->
          if k <= spec.retries then attempt (k + 1)
          else (k, Error (Failed (Printexc.to_string e)))
      in
      attempt 1
  in
  let duration_s = Unix.gettimeofday () -. start in
  let cache =
    {
      closure_hits = !closure_hits;
      closure_misses = !closure_misses;
      check_hits = !check_hits;
      check_misses = !check_misses;
    }
  in
  let supervision = Option.map Supervisor.stats supervisor in
  match result with
  | Ok r ->
    let verdict =
      match r.Loop.verdict with
      | Loop.Proved -> Proved
      | Loop.Real_violation { kind = Loop.Deadlock; confirmed_by_test; _ } ->
        Real_deadlock { confirmed_by_test }
      | Loop.Real_violation { kind = Loop.Property; confirmed_by_test; _ } ->
        Real_property { confirmed_by_test }
      | Loop.Exhausted _ -> Exhausted
      | Loop.Degraded { reason; _ } -> Degraded { reason }
    in
    (* Peak automaton sizes across the run — structural facts of the scenario,
       deterministic across worker counts, caching and tracing (unlike the
       timing fields next to them). *)
    let max_closure_states, max_product_states =
      List.fold_left
        (fun (c, p) (it : Loop.iteration) ->
          (max c it.Loop.closure_states, max p it.Loop.product_states))
        (0, 0) r.Loop.iterations
    in
    {
      spec_id = spec.id;
      family = spec.family;
      verdict;
      iterations = List.length r.Loop.iterations;
      states_learned = r.Loop.states_learned;
      knowledge = Incomplete.knowledge r.Loop.final_model;
      tests_executed = r.Loop.tests_executed;
      test_steps = r.Loop.test_steps_executed;
      attempts;
      duration_s;
      closure_seconds = r.Loop.closure_seconds;
      check_seconds = r.Loop.check_seconds;
      test_seconds = r.Loop.test_seconds;
      max_closure_states;
      max_product_states;
      closure_delta_edges = r.Loop.closure_delta_edges;
      product_states_reused = r.Loop.product_states_reused;
      sat_seed_hit_rate = r.Loop.sat_seed_hit_rate;
      cache;
      fault = spec.inject;
      supervision;
    }
  | Error verdict ->
    {
      spec_id = spec.id;
      family = spec.family;
      verdict;
      iterations = 0;
      states_learned = 0;
      knowledge = 0;
      tests_executed = 0;
      test_steps = 0;
      attempts;
      duration_s;
      closure_seconds = 0.;
      check_seconds = 0.;
      test_seconds = 0.;
      max_closure_states = 0;
      max_product_states = 0;
      closure_delta_edges = 0;
      product_states_reused = 0;
      sat_seed_hit_rate = 0.;
      cache;
      fault = spec.inject;
      supervision;
    }

let run_spec ?cache ?incremental ?incremental_debug ?sharding (spec : spec) : outcome =
  Trace.with_span ~name:"campaign.job"
    ~args:
      [
        ("id", Trace.Str spec.id);
        ("family", Trace.Str spec.family);
        ("seed", Trace.Int spec.seed);
      ]
    (fun () ->
      run_spec_unobserved ?cache ?incremental ?incremental_debug ?sharding spec)

let run ?(jobs = 1) ?cache ?(memo = true) ?incremental ?incremental_debug ?sharding specs =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s.id then
        invalid_arg (Printf.sprintf "Campaign.run: duplicate job id %S" s.id);
      Hashtbl.add seen s.id ())
    specs;
  let cache =
    if not memo then None
    else Some (match cache with Some c -> c | None -> Cache.create ())
  in
  Pool.map ~jobs
    ~f:(fun spec -> run_spec ?cache ?incremental ?incremental_debug ?sharding spec)
    (Array.of_list specs)
  |> Array.to_list

(* -- the bundled matrix -------------------------------------------------- *)

let bundled ?(tiny = false) () =
  let module R = Mechaml_scenarios.Railcab in
  let module P = Mechaml_scenarios.Protocol in
  let module W = Mechaml_scenarios.Watchdog in
  let module F = Mechaml_scenarios.Families in
  if tiny then
    [
      job ~id:"railcab/correct/constraint/bfs" ~family:"railcab" ~context:R.context
        ~property:R.constraint_ ~label_of:R.label_of (fun () -> R.box_correct);
      job ~id:"railcab/conflicting/constraint/bfs" ~family:"railcab" ~context:R.context
        ~property:R.constraint_ ~label_of:R.label_of (fun () -> R.box_conflicting);
      job ~id:"protocol/faulty/agreement/bfs" ~family:"protocol" ~context:P.receiver
        ~property:P.property ~label_of:P.label_of (fun () -> P.box_fire_and_forget);
      job ~id:"watchdog/prompt/deadline/bfs" ~family:"watchdog" ~context:W.watchdog
        ~property:W.property ~label_of:W.label_of (fun () -> W.box_prompt);
    ]
  else begin
    let strategies = [ Witness.Bfs_shortest; Witness.Dfs_first ] in
    let railcab =
      List.concat_map
        (fun strategy ->
          List.concat_map
            (fun (prop_name, property) ->
              List.map
                (fun (variant, box) ->
                  job
                    ~id:
                      (Printf.sprintf "railcab/%s/%s/%s" variant prop_name
                         (strategy_string strategy))
                    ~family:"railcab" ~context:R.context ~property ~strategy
                    ~label_of:R.label_of box)
                [
                  ("correct", fun () -> R.box_correct);
                  ("conflicting", fun () -> R.box_conflicting);
                ])
            [ ("constraint", R.constraint_); ("deadlockfree", Ctl.True) ])
        strategies
    in
    let railcab_faults =
      [
        (* deterministic lossy port: a fault variant whose dropped proposal
           genuinely deadlocks the pattern — a reproducible real verdict *)
        job ~id:"railcab/lossy/constraint/bfs" ~family:"railcab" ~context:R.context
          ~property:R.constraint_ ~label_of:R.label_of ~retries:1 (fun () ->
            Flaky.drop_outputs ~every:3 R.box_correct);
        (* nondeterministic driver: replay divergence crashes an attempt, the
           retry resumes the flip counter further along — still deterministic
           per job because the wrapper is job-local *)
        job ~id:"railcab/flaky/constraint/bfs" ~family:"railcab" ~context:R.context
          ~property:R.constraint_ ~label_of:R.label_of ~retries:2 (fun () ->
            Flaky.nondeterministic ~seed:3 ~flip_every:5 R.box_correct);
        (* supervised chaos: crashes retried, consistent lies outvoted — the
           verdict is the fault-free one, reached through the supervisor *)
        job ~id:"railcab/supervised/constraint/bfs" ~family:"railcab" ~context:R.context
          ~property:R.constraint_ ~label_of:R.label_of ~inject:"crash+flaky" ~seed:11
          ~policy:
            { Supervisor.default_policy with retries = 5; votes = 3; breaker = 24 }
          (fun () -> R.box_correct);
        (* a bricked driver crashes on every step: the breaker opens and the
           job degrades to whatever the chaotic closure already proves *)
        job ~id:"railcab/bricked/constraint/bfs" ~family:"railcab" ~context:R.context
          ~property:R.constraint_ ~label_of:R.label_of ~inject:"brick" ~seed:1
          ~policy:{ Supervisor.default_policy with retries = 4; breaker = 3 }
          (fun () -> R.box_correct);
      ]
    in
    let protocol =
      List.concat_map
        (fun (prop_name, property) ->
          List.map
            (fun (variant, box) ->
              job
                ~id:(Printf.sprintf "protocol/%s/%s/bfs" variant prop_name)
                ~family:"protocol" ~context:P.receiver ~property ~label_of:P.label_of box)
            [
              ("correct", fun () -> P.box_correct);
              ("faulty", fun () -> P.box_fire_and_forget);
            ])
        [ ("agreement", P.property); ("deadlockfree", Ctl.True) ]
    in
    let watchdog =
      List.concat_map
        (fun strategy ->
          List.map
            (fun (variant, box) ->
              job
                ~id:
                  (Printf.sprintf "watchdog/%s/deadline/%s" variant
                     (strategy_string strategy))
                ~family:"watchdog" ~context:W.watchdog ~property:W.property ~strategy
                ~label_of:W.label_of box)
            [ ("prompt", fun () -> W.box_prompt); ("sluggish", fun () -> W.box_sluggish) ])
        strategies
    in
    let lock =
      List.map
        (fun (n, depth, strategy) ->
          job
            ~id:
              (Printf.sprintf "lock/n%d-d%d/locked/%s" n depth (strategy_string strategy))
            ~family:"lock"
            ~context:(F.lock_context ~n ~depth)
            ~property:F.lock_property ~strategy ~label_of:F.lock_label_of (fun () ->
              F.lock_box ~n))
        [
          (12, 3, Witness.Bfs_shortest);
          (12, 6, Witness.Bfs_shortest);
          (16, 4, Witness.Bfs_shortest);
          (16, 4, Witness.Dfs_first);
          (* one order of magnitude up: closure construction and model
             checking dominate this instance, so it is the matrix's probe of
             the memo cache (warm runs skip almost all of its cost) *)
          (96, 48, Witness.Bfs_shortest);
        ]
    in
    railcab @ railcab_faults @ protocol @ watchdog @ lock
  end
