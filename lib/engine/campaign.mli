(** Verification campaigns: batches of synthesis-loop jobs over a declarative
    matrix (scenario variant × property × counterexample strategy × legacy
    fault variant), executed through {!Mechaml_core.Loop} with a worker pool
    ({!Pool}), cross-job memoization ({!Cache}), per-job wall-clock timeouts
    and bounded retry for flaky legacy drivers ({!Mechaml_legacy.Flaky}).

    Verdicts are independent of the worker count and of cache sharing: every
    job builds its own black box (fault-injection wrappers keep their mutable
    counters job-local) and memoized stages are pure, so a [jobs:4] campaign
    reports exactly the verdicts of the sequential reference run.  Only the
    measured fields (durations, per-job cache counters) may differ — compare
    runs with {!Report.canonical}, which omits them. *)

type spec = {
  id : string;  (** unique within a campaign *)
  family : string;
      (** scenario family name; identifies the [label_of] labelling in cache
          keys, so it must be a bijection: one family, one labelling *)
  context : Mechaml_ts.Automaton.t;
  property : Mechaml_logic.Ctl.t;
  strategy : Mechaml_mc.Witness.strategy;
  make_box : unit -> Mechaml_legacy.Blackbox.t;
      (** called once per job execution; retry attempts share the instance,
          so a stateful fault wrapper progresses across attempts *)
  label_of : string -> string list;
  timeout : float option;  (** wall-clock seconds for the whole job *)
  retries : int;  (** extra attempts after a crashed one (not after timeout) *)
  max_iterations : int option;
  inject : string option;
      (** fault profile ({!Mechaml_legacy.Faults.of_string}) wrapped around
          the box — implies supervised execution *)
  seed : int;  (** fault schedules and supervisor jitter derive from it *)
  policy : Mechaml_legacy.Supervisor.policy option;
      (** supervision policy; [None] with [inject] set means
          {!Mechaml_legacy.Supervisor.default_policy} *)
}

val job :
  id:string ->
  family:string ->
  context:Mechaml_ts.Automaton.t ->
  property:Mechaml_logic.Ctl.t ->
  ?strategy:Mechaml_mc.Witness.strategy ->
  ?label_of:(string -> string list) ->
  ?timeout:float ->
  ?retries:int ->
  ?max_iterations:int ->
  ?inject:string ->
  ?seed:int ->
  ?policy:Mechaml_legacy.Supervisor.policy ->
  (unit -> Mechaml_legacy.Blackbox.t) ->
  spec
(** Defaults: BFS strategy, no labels, no timeout, no retries, the Theorem 2
    iteration bound, no fault injection, seed 0, default supervision policy
    (supervision is only active when [inject] or [policy] is given). *)

type verdict =
  | Proved
  | Real_deadlock of { confirmed_by_test : bool }
  | Real_property of { confirmed_by_test : bool }
  | Exhausted
  | Degraded of { reason : string }
      (** the supervised driver gave up (circuit breaker / unanswerable
          query); the loop reported the chaotic closure of the knowledge
          accumulated so far instead of crashing *)
  | Timed_out  (** the wall-clock budget elapsed (checked between stages) *)
  | Failed of string
      (** every attempt raised; the payload is the last exception — e.g. the
          replay-divergence guardrail firing on a nondeterministic driver *)

type cache_counters = {
  closure_hits : int;
  closure_misses : int;
  check_hits : int;
  check_misses : int;
}

type outcome = {
  spec_id : string;
  family : string;
  verdict : verdict;
  iterations : int;  (** 0 for [Timed_out]/[Failed] *)
  states_learned : int;
  knowledge : int;  (** learned facts [|T| + |T̄|] of the final model *)
  tests_executed : int;
  test_steps : int;
  attempts : int;
  duration_s : float;
  closure_seconds : float;  (** wall-clock spent in the closure stage *)
  check_seconds : float;  (** wall-clock spent composing and model checking *)
  test_seconds : float;  (** wall-clock spent querying the driver *)
  max_closure_states : int;
      (** largest chaotic-closure automaton built by any iteration — a
          structural fact, deterministic across workers/caching/tracing *)
  max_product_states : int;  (** largest context ∥ closure product likewise *)
  closure_delta_edges : int;
      (** transitions patched into the chaotic closure across incremental
          updates ({!Mechaml_core.Loop.result.closure_delta_edges}); 0 when
          the job ran from scratch *)
  product_states_reused : int;
      (** product states whose outgoing moves were replayed from the previous
          iteration's product instead of re-joined *)
  sat_seed_hit_rate : float;
      (** fraction of seedable CCTL fixpoints warm-started from the previous
          iteration's converged sat-sets (0 when nothing was seedable) *)
  cache : cache_counters;
      (** this job's lookups; under a shared cache and [jobs > 1] the
          hit/miss split depends on sibling scheduling *)
  fault : string option;  (** the injected fault profile, if any *)
  supervision : Mechaml_legacy.Supervisor.stats option;
      (** retry/vote/breaker accounting when the job ran supervised;
          deterministic per seed, independent of the worker count *)
}

val verdict_string : verdict -> string

val strategy_string : Mechaml_mc.Witness.strategy -> string

val run_spec :
  ?cache:Cache.t -> ?incremental:bool -> ?incremental_debug:bool ->
  ?sharding:Mechaml_ts.Shard.config -> spec -> outcome
(** Execute one job: build the box, run the loop (memoized through [cache]
    when given), enforcing the timeout between stages and retrying crashed
    attempts up to [retries] times.  Never raises: crashes and timeouts
    become verdicts.  [incremental] (default [true]) selects the loop's
    incremental re-verification engine; verdicts and canonical reports are
    identical either way ({!Mechaml_core.Loop.run}), so memo-cache keys and
    hits are unaffected.  [incremental_debug] recomputes every reused stage
    from scratch and fails on divergence.  [sharding] selects the loop's
    partitioned, out-of-core check pipeline ({!Mechaml_core.Loop.run});
    verdicts and canonical reports are byte-identical to the default path,
    and memo entries for sharded checks are keyed apart from materialized
    ones. *)

val run :
  ?jobs:int -> ?cache:Cache.t -> ?memo:bool -> ?incremental:bool ->
  ?incremental_debug:bool -> ?sharding:Mechaml_ts.Shard.config -> spec list -> outcome list
(** Run a campaign on [jobs] worker domains (default 1; [1] executes
    sequentially in list order).  All jobs share one cache — [cache] to
    reuse a warm one across campaigns, [memo:false] to disable memoization
    entirely.  Outcomes keep the spec order.  Raises [Invalid_argument] on
    duplicate job ids. *)

val bundled : ?tiny:bool -> unit -> spec list
(** The bundled scenario matrix over the RailCab, stop-and-wait protocol,
    watchdog and combination-lock families: correct and faulty legacy
    variants, both counterexample strategies, the pattern property next to
    plain deadlock freedom, plus fault-injected railcab drivers exercising
    the retry path, a supervised chaos job (crashes retried, lies outvoted)
    and a bricked driver that degrades through the circuit breaker.  [tiny]
    (default false) selects a four-job smoke matrix for CI. *)
