type t = {
  mutex : Mutex.t;
  closures : (string, Mechaml_ts.Automaton.t) Hashtbl.t;
  checks : (string, Mechaml_mc.Checker.outcome) Hashtbl.t;
  mutable closure_hits : int;
  mutable closure_misses : int;
  mutable check_hits : int;
  mutable check_misses : int;
}

let create () =
  {
    mutex = Mutex.create ();
    closures = Hashtbl.create 64;
    checks = Hashtbl.create 64;
    closure_hits = 0;
    closure_misses = 0;
    check_hits = 0;
    check_misses = 0;
  }

let digest v = Digest.to_hex (Digest.string (Marshal.to_string v []))

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Lookup and counter updates hold the lock; [compute] does not — memoized
   work can be long, and serializing it would defeat the worker pool.  Two
   domains racing on the same fresh key both compute; the first store wins so
   every caller shares one value. *)
let find_or_compute t table bump_hit bump_miss ~key compute =
  match locked t (fun () -> Hashtbl.find_opt table key) with
  | Some v ->
    locked t (fun () -> bump_hit ());
    (v, true)
  | None ->
    let v = compute () in
    let v =
      locked t (fun () ->
          bump_miss ();
          match Hashtbl.find_opt table key with
          | Some winner -> winner
          | None ->
            Hashtbl.add table key v;
            v)
    in
    (v, false)

let closure t ~key compute =
  find_or_compute t t.closures
    (fun () -> t.closure_hits <- t.closure_hits + 1)
    (fun () -> t.closure_misses <- t.closure_misses + 1)
    ~key compute

let check t ~key compute =
  find_or_compute t t.checks
    (fun () -> t.check_hits <- t.check_hits + 1)
    (fun () -> t.check_misses <- t.check_misses + 1)
    ~key compute

type stats = {
  closure_hits : int;
  closure_misses : int;
  check_hits : int;
  check_misses : int;
  entries : int;
}

let stats t =
  locked t (fun () ->
      {
        closure_hits = t.closure_hits;
        closure_misses = t.closure_misses;
        check_hits = t.check_hits;
        check_misses = t.check_misses;
        entries = Hashtbl.length t.closures + Hashtbl.length t.checks;
      })

let hits s = s.closure_hits + s.check_hits

let lookups s = s.closure_hits + s.closure_misses + s.check_hits + s.check_misses

let hit_rate s =
  let l = lookups s in
  if l = 0 then 0. else float_of_int (hits s) /. float_of_int l
