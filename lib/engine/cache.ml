module Metrics = Mechaml_obs.Metrics

let m_hits = Metrics.counter "engine_cache_hits_total" ~help:"Campaign cache lookups answered."

let m_misses =
  Metrics.counter "engine_cache_misses_total" ~help:"Campaign cache lookups that computed."

let m_evictions =
  Metrics.counter "engine_cache_evictions_total"
    ~help:"Entries dropped by the LRU bound of a capacity-limited cache."

(* Each table keeps its keys on an intrusive doubly-linked recency list so a
   capacity bound can evict the least-recently-used entry.  A hit moves its
   key to the front (touch-on-hit); eviction pops the back.  Eviction only
   bounds memory: a dropped entry is recomputed on the next lookup, never
   answered wrongly. *)
type node = {
  nkey : string;
  mutable prev : node option;  (* toward the MRU end *)
  mutable next : node option;  (* toward the LRU end *)
}

type 'v table = {
  entries : (string, 'v * node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
}

type t = {
  mutex : Mutex.t;
  capacity : int option;  (** per-table bound on stored entries *)
  closures : Mechaml_ts.Automaton.t table;
  checks : Mechaml_mc.Checker.outcome table;
  mutable closure_hits : int;
  mutable closure_misses : int;
  mutable check_hits : int;
  mutable check_misses : int;
  mutable evictions : int;
}

let make_table () = { entries = Hashtbl.create 64; mru = None; lru = None }

let create ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Cache.create: capacity must be positive"
  | _ -> ());
  {
    mutex = Mutex.create ();
    capacity;
    closures = make_table ();
    checks = make_table ();
    closure_hits = 0;
    closure_misses = 0;
    check_hits = 0;
    check_misses = 0;
    evictions = 0;
  }

let digest v = Digest.to_hex (Digest.string (Marshal.to_string v []))

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* -- recency list (all called under the lock) ----------------------------- *)

let unlink table node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> table.mru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> table.lru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front table node =
  node.prev <- None;
  node.next <- table.mru;
  (match table.mru with Some m -> m.prev <- Some node | None -> table.lru <- Some node);
  table.mru <- Some node

let touch table node =
  match table.mru with
  | Some m when m == node -> ()
  | _ ->
    unlink table node;
    push_front table node

(* Called under the lock. *)
let store t table key v =
  let node = { nkey = key; prev = None; next = None } in
  Hashtbl.replace table.entries key (v, node);
  push_front table node;
  match t.capacity with
  | Some cap when Hashtbl.length table.entries > cap -> (
    match table.lru with
    | Some oldest ->
      unlink table oldest;
      Hashtbl.remove table.entries oldest.nkey;
      t.evictions <- t.evictions + 1;
      Metrics.incr m_evictions
    | None -> assert false)
  | _ -> ()

(* Lookup and counter updates hold the lock; [compute] does not — memoized
   work can be long, and serializing it would defeat the worker pool.  Two
   domains racing on the same fresh key both compute; the first store wins for
   future lookups, but each computing caller keeps the value its own [compute]
   returned.  Handing the loser the winner's (structurally identical) value
   would break callers that rely on physical identity between [compute]'s
   result and what they get back — [Loop]'s incremental-closure handle does
   exactly that, and swapping the object behind its back made it derive an
   empty dirty delta and serve stale product rows. *)
let find_or_compute t table bump_hit bump_miss ~key compute =
  match
    locked t (fun () ->
        match Hashtbl.find_opt table.entries key with
        | Some (v, node) ->
          touch table node;
          bump_hit ();
          Some v
        | None -> None)
  with
  | Some v ->
    Metrics.incr m_hits;
    (v, true)
  | None ->
    let v = compute () in
    locked t (fun () ->
        bump_miss ();
        match Hashtbl.find_opt table.entries key with
        | Some (_, node) -> touch table node
        | None -> store t table key v);
    Metrics.incr m_misses;
    (v, false)

let closure t ~key compute =
  find_or_compute t t.closures
    (fun () -> t.closure_hits <- t.closure_hits + 1)
    (fun () -> t.closure_misses <- t.closure_misses + 1)
    ~key compute

let check t ~key compute =
  find_or_compute t t.checks
    (fun () -> t.check_hits <- t.check_hits + 1)
    (fun () -> t.check_misses <- t.check_misses + 1)
    ~key compute

type stats = {
  closure_hits : int;
  closure_misses : int;
  check_hits : int;
  check_misses : int;
  entries : int;
  evictions : int;
}

let stats t =
  locked t (fun () ->
      {
        closure_hits = t.closure_hits;
        closure_misses = t.closure_misses;
        check_hits = t.check_hits;
        check_misses = t.check_misses;
        entries = Hashtbl.length t.closures.entries + Hashtbl.length t.checks.entries;
        evictions = t.evictions;
      })

let hits s = s.closure_hits + s.check_hits

let lookups s = s.closure_hits + s.closure_misses + s.check_hits + s.check_misses

let hit_rate s =
  let l = lookups s in
  if l = 0 then 0. else float_of_int (hits s) /. float_of_int l

(* -- persistence ----------------------------------------------------------- *)

(* Snapshot layout: a text header line (so [load] can reject a foreign file
   before unmarshalling anything), then one marshalled tuple of both tables'
   entries in LRU→MRU order.  [save] goes through a temp file + atomic rename
   — the same crash-safety discipline as [Knowledge_io.save_atomic] — so a
   daemon killed mid-snapshot leaves the previous snapshot intact. *)

let snapshot_header = "mechaml-cache 1"

(* Under the lock: entries ordered LRU-first, so replaying them through
   [store] reproduces the recency order exactly. *)
let dump (table : _ table) =
  let rec walk acc = function
    | None -> acc  (* walked from the LRU end toward the MRU end *)
    | Some node ->
      let v, _ = Hashtbl.find table.entries node.nkey in
      walk ((node.nkey, v) :: acc) node.prev
  in
  Array.of_list (List.rev (walk [] table.lru))

let save t ~path =
  let closures, checks = locked t (fun () -> (dump t.closures, dump t.checks)) in
  let dir = Filename.dirname path in
  if dir <> "" && dir <> "." && not (Sys.file_exists dir) then
    (try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ());
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (snapshot_header ^ "\n");
      Marshal.to_channel oc (closures, checks) []);
  Sys.rename tmp path

let load t ~path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> Error (path ^ ": empty snapshot")
        | header when header <> snapshot_header ->
          Error (Printf.sprintf "%s: not a cache snapshot (header %S)" path header)
        | _ -> (
          match
            (Marshal.from_channel ic
              : (string * Mechaml_ts.Automaton.t) array
                * (string * Mechaml_mc.Checker.outcome) array)
          with
          | exception _ -> Error (path ^ ": truncated or corrupt snapshot")
          | closures, checks ->
            let restore (table : _ table) entries =
              (* LRU-first replay through [store] rebuilds the recency list;
                 a capacity-bounded cache keeps the most recent entries and
                 the truncation does not count as eviction churn. *)
              let skip =
                match t.capacity with
                | Some cap when Array.length entries > cap -> Array.length entries - cap
                | _ -> 0
              in
              Array.iteri
                (fun i (key, v) ->
                  if i >= skip && not (Hashtbl.mem table.entries key) then begin
                    let node = { nkey = key; prev = None; next = None } in
                    Hashtbl.replace table.entries key (v, node);
                    push_front table node
                  end)
                entries;
              Array.length entries - skip
            in
            Ok
              (locked t (fun () ->
                   restore t.closures closures + restore t.checks checks))))
