module Metrics = Mechaml_obs.Metrics

let m_hits = Metrics.counter "engine_cache_hits_total" ~help:"Campaign cache lookups answered."

let m_misses =
  Metrics.counter "engine_cache_misses_total" ~help:"Campaign cache lookups that computed."

let m_evictions =
  Metrics.counter "engine_cache_evictions_total"
    ~help:"Entries dropped by the FIFO bound of a capacity-limited cache."

(* Each table keeps its keys in FIFO insertion order so a capacity bound can
   evict the oldest entry.  Eviction only bounds memory: a dropped entry is
   recomputed on the next lookup, never answered wrongly. *)
type 'v table = { entries : (string, 'v) Hashtbl.t; order : string Queue.t }

type t = {
  mutex : Mutex.t;
  capacity : int option;  (** per-table bound on stored entries *)
  closures : Mechaml_ts.Automaton.t table;
  checks : Mechaml_mc.Checker.outcome table;
  mutable closure_hits : int;
  mutable closure_misses : int;
  mutable check_hits : int;
  mutable check_misses : int;
  mutable evictions : int;
}

let create ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Cache.create: capacity must be positive"
  | _ -> ());
  {
    mutex = Mutex.create ();
    capacity;
    closures = { entries = Hashtbl.create 64; order = Queue.create () };
    checks = { entries = Hashtbl.create 64; order = Queue.create () };
    closure_hits = 0;
    closure_misses = 0;
    check_hits = 0;
    check_misses = 0;
    evictions = 0;
  }

let digest v = Digest.to_hex (Digest.string (Marshal.to_string v []))

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Called under the lock. *)
let store t table key v =
  Hashtbl.add table.entries key v;
  Queue.add key table.order;
  match t.capacity with
  | Some cap when Hashtbl.length table.entries > cap ->
    let oldest = Queue.pop table.order in
    Hashtbl.remove table.entries oldest;
    t.evictions <- t.evictions + 1;
    Metrics.incr m_evictions
  | _ -> ()

(* Lookup and counter updates hold the lock; [compute] does not — memoized
   work can be long, and serializing it would defeat the worker pool.  Two
   domains racing on the same fresh key both compute; the first store wins so
   every caller shares one value. *)
let find_or_compute t table bump_hit bump_miss ~key compute =
  match locked t (fun () -> Hashtbl.find_opt table.entries key) with
  | Some v ->
    locked t (fun () -> bump_hit ());
    Metrics.incr m_hits;
    (v, true)
  | None ->
    let v = compute () in
    let v =
      locked t (fun () ->
          bump_miss ();
          match Hashtbl.find_opt table.entries key with
          | Some winner -> winner
          | None ->
            store t table key v;
            v)
    in
    Metrics.incr m_misses;
    (v, false)

let closure t ~key compute =
  find_or_compute t t.closures
    (fun () -> t.closure_hits <- t.closure_hits + 1)
    (fun () -> t.closure_misses <- t.closure_misses + 1)
    ~key compute

let check t ~key compute =
  find_or_compute t t.checks
    (fun () -> t.check_hits <- t.check_hits + 1)
    (fun () -> t.check_misses <- t.check_misses + 1)
    ~key compute

type stats = {
  closure_hits : int;
  closure_misses : int;
  check_hits : int;
  check_misses : int;
  entries : int;
  evictions : int;
}

let stats t =
  locked t (fun () ->
      {
        closure_hits = t.closure_hits;
        closure_misses = t.closure_misses;
        check_hits = t.check_hits;
        check_misses = t.check_misses;
        entries = Hashtbl.length t.closures.entries + Hashtbl.length t.checks.entries;
        evictions = t.evictions;
      })

let hits s = s.closure_hits + s.check_hits

let lookups s = s.closure_hits + s.closure_misses + s.check_hits + s.check_misses

let hit_rate s =
  let l = lookups s in
  if l = 0 then 0. else float_of_int (hits s) /. float_of_int l
