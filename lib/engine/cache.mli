(** Domain-safe memoization for the campaign engine.

    The two expensive pure stages of a synthesis-loop iteration — the chaotic
    closure of a learned model ({!Mechaml_core.Chaos.closure}) and the
    model-checking outcome on a product automaton
    ({!Mechaml_mc.Checker.check_conjunction}) — are deterministic functions
    of their full structural input.  A cache keyed by a structural digest of
    that input can therefore only ever return exactly what the computation
    would have produced: sharing one cache across jobs, iterations or worker
    domains never changes a verdict, only the time (and the hit counters)
    taken to reach it.

    Entries repeat across campaign jobs whenever two jobs share a context and
    iterate through the same learned models — e.g. the same scenario swept
    under both counterexample strategies, or re-running a matrix against an
    unchanged component (a warm cache answers every stage). *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the entries stored {e per table} (closures and checks
    each); when the bound is exceeded the {e least-recently-used} entry is
    evicted and counted in {!stats}.  Recency is touch-on-hit: every lookup
    that answers from the cache moves its entry to the front, so a shared
    long-lived cache (the [mechaverify serve] daemon) keeps the entries the
    traffic actually reuses rather than the oldest-inserted ones.

    {b Behaviour change (PR 6):} eviction used to be FIFO by insertion
    order; hits now refresh recency, so a hot entry survives capacity
    pressure that would previously have dropped it.  The [evictions]
    counter semantics are unchanged — one increment per entry dropped by
    the capacity bound.

    Eviction only bounds memory — a dropped entry is recomputed on its next
    lookup, never answered wrongly.  Default: unbounded.  Raises
    [Invalid_argument] when [capacity < 1]. *)

val digest : 'a -> string
(** Structural digest (MD5 of the marshalled value) used as cache key.  The
    value must be marshallable — plain data, no closures; all automata,
    incomplete models and formulas qualify. *)

val closure : t -> key:string -> (unit -> Mechaml_ts.Automaton.t) -> Mechaml_ts.Automaton.t * bool
(** [closure t ~key compute] returns the cached closure for [key], or runs
    [compute] and stores the result.  The boolean is [true] on a hit.  Safe
    to call from several domains; [compute] runs outside the cache lock.  Two
    domains racing on the same fresh key may both compute: the first stored
    value wins for future lookups, but each computing caller gets back the
    value its own [compute] returned, so physical identity between the two is
    preserved on the computing path. *)

val check : t -> key:string -> (unit -> Mechaml_mc.Checker.outcome) -> Mechaml_mc.Checker.outcome * bool
(** Same protocol for model-checking outcomes. *)

type stats = {
  closure_hits : int;
  closure_misses : int;
  check_hits : int;
  check_misses : int;
  entries : int;  (** distinct values currently stored *)
  evictions : int;  (** entries dropped by the capacity bound *)
}

val stats : t -> stats

val hits : stats -> int

val lookups : stats -> int

val hit_rate : stats -> float
(** [hits / lookups]; [0.] when no lookup happened yet. *)

(** {2 Persistence}

    A long-running daemon snapshots its cache so a restart comes back warm.
    Snapshots carry only the memoized entries (keys, values, recency order)
    — the hit/miss counters start from zero in the loading process. *)

val save : t -> path:string -> unit
(** Atomically snapshot every entry to [path] (write-temp + rename, parent
    directory created): a crash mid-save leaves the previous snapshot
    intact.  Safe to call concurrently with lookups; the snapshot is a
    consistent point-in-time view. *)

val load : t -> path:string -> (int, string) result
(** Restore a {!save} snapshot into [t], preserving recency order; returns
    the number of entries restored.  A capacity-bounded cache keeps only the
    most recent [capacity] entries per table.  Entries already present in
    [t] win over snapshot entries under the same key.  [Error] on a missing,
    foreign or corrupt file — never raises, the cache is usable either
    way. *)
