(** A fixed worker pool on OCaml 5 domains.

    Work items are claimed from a shared atomic counter, so the pool balances
    jobs of very different cost (a lock sweep next to a two-iteration railcab
    run) without any scheduling policy.  With [jobs = 1] no domain is
    spawned and items run sequentially in order — the deterministic
    reference execution the campaign tests compare against. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : jobs:int -> f:('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs ~f items] applies [f] to every item, running at most [jobs]
    workers concurrently (clamped to [1 .. length items]).  Results keep the
    input order regardless of completion order.  If an [f] application
    raises, the remaining items still run; the first raised exception (in
    item order) is re-raised after all workers have finished, with its
    original backtrace.

    When observability is on ({!Mechaml_obs.Trace} or
    {!Mechaml_obs.Metrics}), each item runs inside a [pool.task] span tagged
    with its index and worker, queue wait feeds the
    [engine_pool_queue_wait_seconds] histogram, and the run's busy-time
    fraction is published as the [engine_pool_utilization] gauge.  The
    sequential [jobs = 1] path records none of this — it is the plain
    reference execution. *)
