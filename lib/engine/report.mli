(** Campaign reports: the per-job table printed by [mechaverify campaign]
    and the JSON/CSV serializations consumed by dashboards and CI.

    Two serializations with different contracts:

    - {!to_json} / {!to_csv} carry everything, including the measured fields
      (durations, per-job cache counters) that legitimately vary between
      runs and worker counts;
    - {!canonical} carries only the deterministic fields — two campaigns
      over the same matrix are byte-identical there regardless of [jobs],
      cache warmth, machine load or incremental re-verification mode.  The
      engine tests compare campaigns through it.

    The incremental-reuse counters ([closure_delta_edges],
    [product_states_reused], [sat_seed_hit_rate]) appear in the table, JSON
    and CSV outputs but deliberately {e not} in {!canonical}: they describe
    how a result was computed, not what it is, and differ between
    [incremental] on and off while the verdicts do not.  Like the cache
    counters they also depend on worker scheduling — a closure served by
    the shared memo cache contributes no delta edges, and which job
    computes first varies with [jobs]. *)

val table : Campaign.outcome list -> string
(** Aligned plain-text per-job table ({!Mechaml_util.Pp.table}). *)

val summary : ?jobs:int -> Campaign.outcome list -> string
(** One-line digest: job and verdict counts, total loop tests, aggregate
    cache hit rate, total wall-clock. *)

val to_json : ?jobs:int -> Campaign.outcome list -> string
(** The full report:
    {v
    { "schema": "mechaml-campaign/1",
      "jobs": 4,
      "job_count": 22,
      "total_duration_s": 0.84,
      "cache": { "closure_hits": …, "closure_misses": …,
                 "check_hits": …, "check_misses": …, "hit_rate": 0.31 },
      "results": [
        { "id": "railcab/correct/constraint/bfs", "family": "railcab",
          "verdict": "proved",            // proved | real_deadlock |
                                          // real_property | exhausted |
                                          // timed_out | failed
          "confirmed_by_test": true,      // real_* only
          "error": "…",                   // failed only
          "iterations": 4, "states_learned": 3, "knowledge": 11,
          "tests_executed": 5, "test_steps": 17, "attempts": 1,
          "duration_s": 0.012,
          "cache": { "closure_hits": 0, "closure_misses": 4,
                     "check_hits": 0, "check_misses": 4 } }, … ] }
    v}
    [total_duration_s] sums the per-job durations (CPU-ish under a pool). *)

val to_csv : Campaign.outcome list -> string
(** One row per job with the same fields, RFC-4180 quoting. *)

val csv_field : string -> string
(** RFC-4180 field encoding: returned verbatim unless it contains a comma,
    double quote, LF or CR, in which case it is wrapped in double quotes with
    embedded quotes doubled. *)

val canonical : Campaign.outcome list -> string
(** Deterministic digest: per job a line
    [id|verdict|fault|iterations|states|knowledge|closure|product|tests|steps|attempts],
    sorted by id ([closure]/[product] are the peak automaton sizes).
    Byte-identical across worker counts, cache states and tracing. *)

val save : path:string -> string -> unit
(** Write a serialized report to [path] (parent directories created). *)
