module Pp = Mechaml_util.Pp

(* -- plain-text ----------------------------------------------------------- *)

let human_duration s =
  if s >= 1. then Printf.sprintf "%.2f s" s
  else if s >= 1e-3 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.0f us" (s *. 1e6)

let cache_cell (c : Campaign.cache_counters) =
  let hits = c.Campaign.closure_hits + c.Campaign.check_hits in
  let lookups = hits + c.Campaign.closure_misses + c.Campaign.check_misses in
  if lookups = 0 then "-" else Printf.sprintf "%d/%d" hits lookups

(* Compressed retry/vote accounting for the table: "a:7 r:2 v:9 o:1" =
   attempts, retried, votes held, minority answers outvoted. *)
let supervision_cell (o : Campaign.outcome) =
  match o.Campaign.supervision with
  | None -> "-"
  | Some s ->
    Printf.sprintf "a:%d r:%d v:%d o:%d" s.Mechaml_legacy.Supervisor.attempts
      s.Mechaml_legacy.Supervisor.retried s.Mechaml_legacy.Supervisor.votes_held
      s.Mechaml_legacy.Supervisor.outvoted

let fault_cell (o : Campaign.outcome) = Option.value o.Campaign.fault ~default:"-"

(* Peak closure/product automaton sizes, "34/118". *)
let states_cell (o : Campaign.outcome) =
  if o.Campaign.max_closure_states = 0 && o.Campaign.max_product_states = 0 then "-"
  else Printf.sprintf "%d/%d" o.Campaign.max_closure_states o.Campaign.max_product_states

(* Per-phase wall-clock split, "c:1.2ms k:8.0ms q:0.3ms" = closure, check
   (compose + model check), driver queries. *)
let phases_cell (o : Campaign.outcome) =
  let total =
    o.Campaign.closure_seconds +. o.Campaign.check_seconds +. o.Campaign.test_seconds
  in
  if total = 0. then "-"
  else
    Printf.sprintf "c:%s k:%s q:%s"
      (human_duration o.Campaign.closure_seconds)
      (human_duration o.Campaign.check_seconds)
      (human_duration o.Campaign.test_seconds)

(* Incremental-reuse accounting, "d:44720 p:370 s:1.00" = closure delta edges,
   product states reused, sat-set seed hit rate.  "-" when the job ran from
   scratch (or never reached a second iteration). *)
let reuse_cell (o : Campaign.outcome) =
  if
    o.Campaign.closure_delta_edges = 0
    && o.Campaign.product_states_reused = 0
    && o.Campaign.sat_seed_hit_rate = 0.
  then "-"
  else
    Printf.sprintf "d:%d p:%d s:%.2f" o.Campaign.closure_delta_edges
      o.Campaign.product_states_reused o.Campaign.sat_seed_hit_rate

let table outcomes =
  Pp.table
    ~header:
      [ "job"; "verdict"; "fault"; "supervision"; "iters"; "states"; "facts"; "tests";
        "steps"; "attempts"; "cl/pr states"; "cache h/l"; "reuse"; "phases"; "time" ]
    (List.map
       (fun (o : Campaign.outcome) ->
         [
           o.Campaign.spec_id;
           Campaign.verdict_string o.Campaign.verdict;
           fault_cell o;
           supervision_cell o;
           string_of_int o.Campaign.iterations;
           string_of_int o.Campaign.states_learned;
           string_of_int o.Campaign.knowledge;
           string_of_int o.Campaign.tests_executed;
           string_of_int o.Campaign.test_steps;
           string_of_int o.Campaign.attempts;
           states_cell o;
           cache_cell o.Campaign.cache;
           reuse_cell o;
           phases_cell o;
           human_duration o.Campaign.duration_s;
         ])
       outcomes)

let aggregate outcomes =
  List.fold_left
    (fun (ch, cm, kh, km, d) (o : Campaign.outcome) ->
      ( ch + o.Campaign.cache.Campaign.closure_hits,
        cm + o.Campaign.cache.Campaign.closure_misses,
        kh + o.Campaign.cache.Campaign.check_hits,
        km + o.Campaign.cache.Campaign.check_misses,
        d +. o.Campaign.duration_s ))
    (0, 0, 0, 0, 0.) outcomes

let summary ?jobs outcomes =
  let count p = List.length (List.filter p outcomes) in
  let proved = count (fun o -> o.Campaign.verdict = Campaign.Proved) in
  let real =
    count (fun o ->
        match o.Campaign.verdict with
        | Campaign.Real_deadlock _ | Campaign.Real_property _ -> true
        | _ -> false)
  in
  let degraded =
    count (fun o ->
        match o.Campaign.verdict with Campaign.Degraded _ -> true | _ -> false)
  in
  let failed =
    count (fun o ->
        match o.Campaign.verdict with
        | Campaign.Failed _ | Campaign.Timed_out | Campaign.Exhausted -> true
        | _ -> false)
  in
  let ch, cm, kh, km, duration = aggregate outcomes in
  let hits = ch + kh and lookups = ch + cm + kh + km in
  Printf.sprintf
    "%d jobs%s: %d proved, %d real violations, %d degraded, %d failed/timed out/exhausted; \
     cache %d/%d hits (%.0f%%); %s total loop time"
    (List.length outcomes)
    (match jobs with Some j -> Printf.sprintf " on %d workers" j | None -> "")
    proved real degraded failed hits lookups
    (if lookups = 0 then 0. else 100. *. float_of_int hits /. float_of_int lookups)
    (human_duration duration)

(* -- JSON ----------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_verdict_fields (v : Campaign.verdict) =
  match v with
  | Campaign.Proved -> [ ("verdict", "\"proved\"") ]
  | Campaign.Real_deadlock { confirmed_by_test } ->
    [ ("verdict", "\"real_deadlock\""); ("confirmed_by_test", string_of_bool confirmed_by_test) ]
  | Campaign.Real_property { confirmed_by_test } ->
    [ ("verdict", "\"real_property\""); ("confirmed_by_test", string_of_bool confirmed_by_test) ]
  | Campaign.Exhausted -> [ ("verdict", "\"exhausted\"") ]
  | Campaign.Degraded { reason } ->
    [ ("verdict", "\"degraded\""); ("reason", Printf.sprintf "\"%s\"" (json_escape reason)) ]
  | Campaign.Timed_out -> [ ("verdict", "\"timed_out\"") ]
  | Campaign.Failed error ->
    [ ("verdict", "\"failed\""); ("error", Printf.sprintf "\"%s\"" (json_escape error)) ]

let json_obj fields =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) fields) ^ "}"

let json_cache (c : Campaign.cache_counters) =
  json_obj
    [
      ("closure_hits", string_of_int c.Campaign.closure_hits);
      ("closure_misses", string_of_int c.Campaign.closure_misses);
      ("check_hits", string_of_int c.Campaign.check_hits);
      ("check_misses", string_of_int c.Campaign.check_misses);
    ]

let json_supervision (s : Mechaml_legacy.Supervisor.stats) =
  json_obj
    [
      ("queries", string_of_int s.Mechaml_legacy.Supervisor.queries);
      ("admitted", string_of_int s.Mechaml_legacy.Supervisor.admitted);
      ("attempts", string_of_int s.Mechaml_legacy.Supervisor.attempts);
      ("retried", string_of_int s.Mechaml_legacy.Supervisor.retried);
      ("crashes", string_of_int s.Mechaml_legacy.Supervisor.crashes);
      ("refused_connects", string_of_int s.Mechaml_legacy.Supervisor.refused_connects);
      ("divergences", string_of_int s.Mechaml_legacy.Supervisor.divergences);
      ("deadline_misses", string_of_int s.Mechaml_legacy.Supervisor.deadline_misses);
      ("votes_held", string_of_int s.Mechaml_legacy.Supervisor.votes_held);
      ("outvoted", string_of_int s.Mechaml_legacy.Supervisor.outvoted);
      ("breaker_trips", string_of_int s.Mechaml_legacy.Supervisor.breaker_trips);
      ("backoff_slept_s", Printf.sprintf "%.6f" s.Mechaml_legacy.Supervisor.backoff_slept);
    ]

let json_outcome (o : Campaign.outcome) =
  json_obj
    ([
       ("id", Printf.sprintf "\"%s\"" (json_escape o.Campaign.spec_id));
       ("family", Printf.sprintf "\"%s\"" (json_escape o.Campaign.family));
     ]
    @ json_verdict_fields o.Campaign.verdict
    @ (match o.Campaign.fault with
      | None -> []
      | Some f -> [ ("fault", Printf.sprintf "\"%s\"" (json_escape f)) ])
    @ [
        ("iterations", string_of_int o.Campaign.iterations);
        ("states_learned", string_of_int o.Campaign.states_learned);
        ("knowledge", string_of_int o.Campaign.knowledge);
        ("tests_executed", string_of_int o.Campaign.tests_executed);
        ("test_steps", string_of_int o.Campaign.test_steps);
        ("attempts", string_of_int o.Campaign.attempts);
        ("duration_s", Printf.sprintf "%.6f" o.Campaign.duration_s);
        ("closure_seconds", Printf.sprintf "%.6f" o.Campaign.closure_seconds);
        ("check_seconds", Printf.sprintf "%.6f" o.Campaign.check_seconds);
        ("test_seconds", Printf.sprintf "%.6f" o.Campaign.test_seconds);
        ("max_closure_states", string_of_int o.Campaign.max_closure_states);
        ("max_product_states", string_of_int o.Campaign.max_product_states);
        ("closure_delta_edges", string_of_int o.Campaign.closure_delta_edges);
        ("product_states_reused", string_of_int o.Campaign.product_states_reused);
        ("sat_seed_hit_rate", Printf.sprintf "%.4f" o.Campaign.sat_seed_hit_rate);
        ("cache", json_cache o.Campaign.cache);
      ]
    @
    match o.Campaign.supervision with
    | None -> []
    | Some s -> [ ("supervision", json_supervision s) ])

let to_json ?jobs outcomes =
  let ch, cm, kh, km, duration = aggregate outcomes in
  let hits = ch + kh and lookups = ch + cm + kh + km in
  let cache =
    json_obj
      [
        ("closure_hits", string_of_int ch);
        ("closure_misses", string_of_int cm);
        ("check_hits", string_of_int kh);
        ("check_misses", string_of_int km);
        ( "hit_rate",
          Printf.sprintf "%.4f"
            (if lookups = 0 then 0. else float_of_int hits /. float_of_int lookups) );
      ]
  in
  let fields =
    [ ("schema", "\"mechaml-campaign/1\"") ]
    @ (match jobs with Some j -> [ ("jobs", string_of_int j) ] | None -> [])
    @ [
        ("job_count", string_of_int (List.length outcomes));
        ("total_duration_s", Printf.sprintf "%.6f" duration);
        ("cache", cache);
        ("results", "[\n  " ^ String.concat ",\n  " (List.map json_outcome outcomes) ^ "\n]");
      ]
  in
  "{\n"
  ^ String.concat ",\n"
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) fields)
  ^ "\n}\n"

(* -- CSV ------------------------------------------------------------------ *)

(* RFC 4180: quote when the field contains a separator, a quote, or a line
   break (CR as well as LF — a bare CR also breaks naive CSV readers);
   embedded quotes are doubled. *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv outcomes =
  let header =
    "id,family,verdict,confirmed_by_test,error,fault,iterations,states_learned,knowledge,\
     tests_executed,test_steps,attempts,duration_s,closure_seconds,check_seconds,\
     test_seconds,max_closure_states,max_product_states,closure_delta_edges,\
     product_states_reused,sat_seed_hit_rate,closure_hits,closure_misses,\
     check_hits,check_misses,sup_attempts,sup_retried,sup_crashes,sup_divergences,\
     sup_votes_held,sup_outvoted,sup_breaker_trips"
  in
  let row (o : Campaign.outcome) =
    let confirmed, error =
      match o.Campaign.verdict with
      | Campaign.Real_deadlock { confirmed_by_test } | Campaign.Real_property { confirmed_by_test }
        ->
        (string_of_bool confirmed_by_test, "")
      | Campaign.Failed e -> ("", e)
      | Campaign.Degraded { reason } -> ("", reason)
      | _ -> ("", "")
    in
    let tag =
      match o.Campaign.verdict with
      | Campaign.Proved -> "proved"
      | Campaign.Real_deadlock _ -> "real_deadlock"
      | Campaign.Real_property _ -> "real_property"
      | Campaign.Exhausted -> "exhausted"
      | Campaign.Degraded _ -> "degraded"
      | Campaign.Timed_out -> "timed_out"
      | Campaign.Failed _ -> "failed"
    in
    let sup f =
      match o.Campaign.supervision with
      | None -> ""
      | Some s -> string_of_int (f s)
    in
    let open Mechaml_legacy.Supervisor in
    String.concat ","
      (List.map csv_field
         [
           o.Campaign.spec_id;
           o.Campaign.family;
           tag;
           confirmed;
           error;
           Option.value o.Campaign.fault ~default:"";
           string_of_int o.Campaign.iterations;
           string_of_int o.Campaign.states_learned;
           string_of_int o.Campaign.knowledge;
           string_of_int o.Campaign.tests_executed;
           string_of_int o.Campaign.test_steps;
           string_of_int o.Campaign.attempts;
           Printf.sprintf "%.6f" o.Campaign.duration_s;
           Printf.sprintf "%.6f" o.Campaign.closure_seconds;
           Printf.sprintf "%.6f" o.Campaign.check_seconds;
           Printf.sprintf "%.6f" o.Campaign.test_seconds;
           string_of_int o.Campaign.max_closure_states;
           string_of_int o.Campaign.max_product_states;
           string_of_int o.Campaign.closure_delta_edges;
           string_of_int o.Campaign.product_states_reused;
           Printf.sprintf "%.4f" o.Campaign.sat_seed_hit_rate;
           string_of_int o.Campaign.cache.Campaign.closure_hits;
           string_of_int o.Campaign.cache.Campaign.closure_misses;
           string_of_int o.Campaign.cache.Campaign.check_hits;
           string_of_int o.Campaign.cache.Campaign.check_misses;
           sup (fun s -> s.attempts);
           sup (fun s -> s.retried);
           sup (fun s -> s.crashes);
           sup (fun s -> s.divergences);
           sup (fun s -> s.votes_held);
           sup (fun s -> s.outvoted);
           sup (fun s -> s.breaker_trips);
         ])
  in
  String.concat "\n" (header :: List.map row outcomes) ^ "\n"

(* -- canonical form ------------------------------------------------------- *)

let canonical outcomes =
  let line (o : Campaign.outcome) =
    Printf.sprintf "%s|%s|%s|%d|%d|%d|%d|%d|%d|%d|%d" o.Campaign.spec_id
      (match o.Campaign.verdict with
      | Campaign.Failed e -> "failed: " ^ e
      | Campaign.Degraded { reason } -> "degraded: " ^ reason
      | v -> Campaign.verdict_string v)
      (fault_cell o) o.Campaign.iterations o.Campaign.states_learned o.Campaign.knowledge
      o.Campaign.max_closure_states o.Campaign.max_product_states o.Campaign.tests_executed
      o.Campaign.test_steps o.Campaign.attempts
  in
  String.concat "\n" (List.sort compare (List.map line outcomes)) ^ "\n"

(* -- IO ------------------------------------------------------------------- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir ->
      (* a concurrent job created it between the check and the mkdir *)
      ()
  end

let save ~path content =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)
