(** Persistence for learned behavioural models.

    What the loop learns about a legacy component is expensive knowledge —
    every fact cost a test execution.  This module serialises incomplete
    automata (transitions {e and} refusals) in a line format compatible with
    {!Mechaml_ts.Textio}, so a later session can seed
    {!Loop.run}[ ~initial_knowledge] with everything already established
    (grey-box continuation), and CI can archive the learned models.

    Format, extending the textio directives:
    {v
    incomplete shuttle2
    inputs convoyProposalRejected startConvoy
    outputs convoyProposal
    initial noConvoy::default
    trans noConvoy::default : / convoyProposal -> noConvoy::wait
    refuse noConvoy::wait :
    refuse convoy : convoyProposalRejected
    v}
    ([refuse <state> : <input signals>] records a T̄ entry; an empty signal
    list is the refusal of the silent interaction.) *)

type error = { line : int; message : string }
(** [line] is 1-based; 0 means the problem is not attributable to a single
    line (e.g. a missing [inputs] directive). *)

val print : Incomplete.t -> string

val parse : string -> (Incomplete.t, error) result
(** Never raises: syntax errors, semantic contradictions (conflicting
    transitions), duplicate [refuse] entries, truncated input and trailing
    garbage all come back as [Error] with the offending line. *)

val parse_exn : string -> Incomplete.t

val save : path:string -> Incomplete.t -> unit

val save_atomic : path:string -> Incomplete.t -> unit
(** Write to [path ^ ".tmp"], then rename over [path] — a crash mid-write
    never clobbers an existing readable snapshot. *)

val load : path:string -> (Incomplete.t, error) result
