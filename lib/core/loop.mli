(** Iterative behavior synthesis (Section 4, Theorem 2).

    Starting from the initial abstraction [M_a⁰] (Section 3), each iteration:

    + model checks [M_a^c ∥ M_a^i ⊨ φ ∧ ¬δ] (equation 7, Section 4.1) with
      the property weakened for the chaos states (Section 2.7);
    + on success stops with {!Proved} — by Lemma 5 the property then holds
      for the real composition [M_r^c ∥ M_r];
    + otherwise derives a test from the counterexample (Section 4.2 /
      Section 5) and executes it against the legacy component under
      deterministic replay.  A counterexample whose synthesized part consists
      only of learned behaviour is already real ({e fast conflict detection},
      Listing 1.4) and skips the test.  A reproduced counterexample is a real
      integration fault (Lemma 6, no false negatives); a divergent or blocked
      run is merged into [M_l^{i+1}] (Definitions 11/12, Lemma 7) and the
      loop continues;
    + deadlock counterexamples whose trace reproduces additionally probe the
      interactions the context offers in the final state, either refuting the
      deadlock (new behaviour learned) or confirming it.

    Every non-final iteration strictly increases [Incomplete.knowledge]
    (asserted at runtime), which is bounded for a finite-state deterministic
    legacy component — the loop terminates (Theorem 2). *)

type violation_kind = Deadlock | Property

type verdict =
  | Proved
      (** [φ ∧ ¬δ] holds for context ∥ legacy — without having learned the
          whole legacy component *)
  | Real_violation of {
      kind : violation_kind;
      formula : Mechaml_logic.Ctl.t;
      witness : Mechaml_ts.Run.t;     (** run of the final iteration's product *)
      product : Mechaml_ts.Compose.product;
      confirmed_by_test : bool;
          (** [false] = fast conflict detection: the violation lies entirely
              in already-learned behaviour *)
    }
  | Exhausted of { iterations : int }
      (** iteration budget hit (only possible when [max_iterations] is set
          below the theoretical bound) *)
  | Degraded of {
      reason : string;  (** why the supervised driver gave up *)
      at_iteration : int;
      model_states : int;
      knowledge : int;  (** facts accumulated before degradation *)
      closure_states : int;
      proved_on_closure : Mechaml_logic.Ctl.t list;
          (** obligations (weakened property, deadlock freedom) that hold on
              context ∥ closure of the partial knowledge — by Theorem 1 the
              closure is a safe abstraction, so these hold for the {e real}
              composition despite the dead driver *)
      unknown_for_real : Mechaml_logic.Ctl.t list;
          (** obligations the partial closure cannot discharge *)
    }
      (** the driver became unusable (supervisor circuit breaker open) before
          a definite verdict; the chaotic closure of everything learned so
          far is reported instead of losing the run *)

type test_report = {
  inputs_fed : string list list;
  reproduced : bool;
  knowledge_gained : int;
}

type iteration = {
  index : int;  (** 0-based; iteration [i] checks [M_a^i] *)
  model_states : int;
  model_knowledge : int;
  closure_states : int;
  product_states : int;
  counterexample : (violation_kind * Mechaml_ts.Run.t) option;  (** [None] = proved *)
  counterexample_length : int;
  fast_real : bool;  (** violation recognised as real without testing *)
  test : test_report option;
  probes : int;  (** deadlock-refutation probes executed *)
}

type result = {
  verdict : verdict;
  iterations : iteration list;
  final_model : Incomplete.t;
  tests_executed : int;
  test_steps_executed : int;
  states_learned : int;
  legacy_state_bound : int;
  closure_seconds : float;
      (** wall-clock time spent building chaotic closures (cache lookups
          included when an [on_closure] hook memoizes) *)
  check_seconds : float;
      (** wall-clock time spent composing the product and model checking *)
  test_seconds : float;
      (** wall-clock time spent querying the driver (tests and probes) *)
  closure_delta_edges : int;
      (** transitions rebuilt by incremental closure updates over the whole
          run (0 when [incremental] is off — everything was rebuilt, nothing
          was {e patched}) *)
  product_states_reused : int;
      (** product-state visits whose joint moves were served from the
          incremental composition cache, summed over all iterations *)
  sat_seed_hit_rate : float;
      (** fraction of unbounded fixpoint computations that were warm-started
          from the previous iteration's converged sets ([0.] when
          [incremental] is off or no fixpoint was seedable) *)
}

val run :
  ?strategy:Mechaml_mc.Witness.strategy ->
  ?label_of:(string -> string list) ->
  ?max_iterations:int ->
  ?initial_knowledge:Incomplete.t ->
  ?counterexamples_per_iteration:int ->
  ?on_closure:
    (model:Incomplete.t ->
    compute:(unit -> Mechaml_ts.Automaton.t) ->
    Mechaml_ts.Automaton.t) ->
  ?on_check:
    (product:Mechaml_ts.Automaton.t ->
    formulas:Mechaml_logic.Ctl.t list ->
    compute:(unit -> Mechaml_mc.Checker.outcome) ->
    Mechaml_mc.Checker.outcome) ->
  ?observe:
    (inputs:string list list ->
    (Mechaml_legacy.Observation.t, string) Stdlib.result) ->
  ?journal:string ->
  ?resume:string ->
  ?snapshot:string ->
  ?incremental:bool ->
  ?incremental_threshold:int ->
  ?incremental_debug:bool ->
  ?sharding:Mechaml_ts.Shard.config ->
  context:Mechaml_ts.Automaton.t ->
  property:Mechaml_logic.Ctl.t ->
  legacy:Mechaml_legacy.Blackbox.t ->
  unit ->
  result
(** [context] is the abstract context model [M_a^c] (roles, connectors and
    peer components already composed into one automaton).  [property] must be
    compositional in the sense of Definition 5 (checked;
    [Invalid_argument] otherwise — a non-ACTL property would not be preserved
    by Lemma 5).  [label_of] maps legacy state names (as probed by
    deterministic replay) to atomic propositions; it must produce
    propositions disjoint from the context's.  [max_iterations] defaults to
    the Theorem 2 bound [state_bound × 2^{|I|} + 1].

    Raises [Invalid_argument] when the legacy interface does not match the
    context ([I_legacy ⊈ O_context] or [O_legacy ⊈ I_context] would leave
    unconnected signals the probing step cannot exercise).

    [on_closure] and [on_check] intercept the two expensive pure stages of an
    iteration — building the chaotic closure of the current learned model and
    model checking the context ∥ closure product.  Both receive the stage's
    full input plus a [compute] thunk performing the actual work, and must
    return exactly what [compute] would (e.g. a memoized copy from an
    earlier, structurally identical call — {!Mechaml_engine.Cache} does
    this across campaign jobs).  The default hooks just run [compute].

    [observe] replaces the raw test-execution step (by default
    [Observation.observe] against [legacy]); {!Mechaml_legacy.Supervisor}'s
    [observe_hook] is the intended value.  An [Error reason] makes the run
    end with {!Degraded} instead of raising — the chaotic closure of the
    knowledge accumulated so far is still a safe abstraction (Theorem 1), so
    whatever it proves is reported rather than lost.

    [journal] appends every freshly executed observation to a crash-safe
    {!Journal} as it happens, plus an iteration-verdict record each time a
    counterexample is refuted and the loop moves on.  [resume] replays a
    journal into the starting model before the first iteration (replayed
    observations are not counted as tests), resumes iteration counting after
    the last recorded iteration instead of re-charging the budget for work
    already journalled, and — unless [journal] overrides it — keeps
    appending to the same file, so a run can be killed and resumed
    repeatedly.  [snapshot] additionally writes an atomic {!Knowledge_io}
    snapshot of the model whenever its knowledge has grown (and once more on
    completion).  [Invalid_argument] if the resume journal is unreadable or
    contradicts the driver's behaviour.

    [incremental] (default [true]) re-verifies incrementally across
    iterations: the chaotic closure is patched rather than rebuilt
    ({!Chaos.update}), the product is re-explored only where the closure
    changed ({!Mechaml_ts.Compose.Inc}) and the checker's unbounded
    fixpoints are warm-started from the previous iteration's converged sets
    ({!Mechaml_mc.Sat.create_warm}).  Every stage is byte-identical to the
    from-scratch path — same closures, products, witnesses and verdicts —
    so the flag is purely a performance switch; [incremental_debug]
    additionally recomputes each stage from scratch and raises [Failure] on
    any divergence (for tests).

    [incremental_threshold] (default 128) keeps the incremental machinery
    dormant while the closure has fewer transitions than this — on tiny
    state spaces a from-scratch rebuild is cheaper than maintaining the
    caches.  Once some iteration's closure reaches the threshold the
    machinery engages for the rest of the run (the closure only grows).
    [0] forces it on from the first iteration.

    [sharding] switches the check phase to the partitioned, out-of-core
    pipeline: the product is explored as per-shard CSR segments
    ({!Mechaml_ts.Shard}) and the verdict computed by the sharded fixpoint
    engine ({!Mechaml_mc.Shardsat}), with cold segments spilled to disk
    under the config's memory budget.  Verdicts, witnesses, trails and
    canonical reports are byte-identical to the default path for any shard
    count; the materialized product is only built when a violation needs
    its witness.  Sharded checks skip the incremental product and
    warm-start machinery (the report's reuse counters stay 0). *)

val pp_iteration : Format.formatter -> iteration -> unit

val pp_result : Format.formatter -> result -> unit
