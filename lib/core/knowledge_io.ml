type error = { line : int; message : string }

exception Error of error

let fail line message = raise (Error { line; message })

let tokens line = String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let strip_comment line =
  match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line

let print (m : Incomplete.t) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "incomplete %s\n" m.Incomplete.name;
  add "inputs %s\n" (String.concat " " m.Incomplete.input_signals);
  add "outputs %s\n" (String.concat " " m.Incomplete.output_signals);
  add "initial %s\n" (String.concat " " m.Incomplete.initial);
  List.iter
    (fun (src, (i : Incomplete.interaction), dst) ->
      add "trans %s : %s / %s -> %s\n" src
        (String.concat " " i.Incomplete.in_signals)
        (String.concat " " i.Incomplete.out_signals)
        dst)
    m.Incomplete.trans;
  List.iter
    (fun (state, inputs) -> add "refuse %s : %s\n" state (String.concat " " inputs))
    m.Incomplete.refusals;
  Buffer.contents buf

let parse text =
  let name = ref "knowledge" in
  let inputs = ref None and outputs = ref None and initial = ref None in
  let initial_line = ref 0 in
  (* each entry carries the line it was declared on, so semantic errors
     detected only once the automaton is assembled still point somewhere *)
  let trans = ref [] and refusals = ref [] in
  let parse_trans lineno rest =
    let rec split_at sep acc = function
      | [] -> fail lineno (Printf.sprintf "missing %S in trans line" sep)
      | t :: rest when t = sep -> (List.rev acc, rest)
      | t :: rest -> split_at sep (t :: acc) rest
    in
    match rest with
    | src :: ":" :: rest ->
      let ins, rest = split_at "/" [] rest in
      let outs, rest = split_at "->" [] rest in
      (match rest with
      | [ dst ] -> (src, ins, outs, dst)
      | _ -> fail lineno "expected exactly one destination state")
    | _ -> fail lineno "expected 'trans <src> : <inputs> / <outputs> -> <dst>'"
  in
  (match
     List.iteri
       (fun i line ->
         let lineno = i + 1 in
         match tokens (strip_comment line) with
         | [] -> ()
         | "incomplete" :: [ n ] -> name := n
         | "inputs" :: signals -> inputs := Some signals
         | "outputs" :: signals -> outputs := Some signals
         | "initial" :: [ s ] ->
           initial := Some s;
           initial_line := lineno
         | "initial" :: _ -> fail lineno "initial takes exactly one state"
         | "trans" :: rest -> trans := (lineno, parse_trans lineno rest) :: !trans
         | "refuse" :: state :: ":" :: signals ->
           if List.exists (fun (_, (s, i)) -> s = state && i = signals) !refusals then
             fail lineno
               (Printf.sprintf "duplicate refuse entry for state %S" state);
           refusals := (lineno, (state, signals)) :: !refusals
         | "refuse" :: _ -> fail lineno "expected 'refuse <state> : <inputs>'"
         | d :: _ -> fail lineno (Printf.sprintf "unknown directive %S" d))
       (String.split_on_char '\n' text)
   with
  | () -> ()
  | exception Error e -> raise (Error e));
  let require what = function Some v -> v | None -> fail 0 (Printf.sprintf "missing %s" what) in
  let m =
    try
      Incomplete.create ~name:!name ~inputs:(require "inputs" !inputs)
        ~outputs:(require "outputs" !outputs)
        ~initial_state:(require "initial" !initial)
    with Invalid_argument msg -> fail !initial_line msg
  in
  let m =
    List.fold_left
      (fun m (lineno, (src, ins, outs, dst)) ->
        try Incomplete.add_transition m ~src (Incomplete.interaction ~inputs:ins ~outputs:outs) ~dst
        with Invalid_argument msg -> fail lineno msg)
      m (List.rev !trans)
  in
  List.fold_left
    (fun m (lineno, (state, signals)) ->
      try Incomplete.add_refusal m ~state ~inputs:signals
      with Invalid_argument msg -> fail lineno msg)
    m (List.rev !refusals)

let parse text =
  match parse text with
  | m -> Ok m
  | exception Error e -> Stdlib.Error e
  | exception Invalid_argument message -> Stdlib.Error { line = 0; message }

let parse_exn text =
  match parse text with
  | Ok m -> m
  | Error { line; message } ->
    invalid_arg (Printf.sprintf "Knowledge_io.parse line %d: %s" line message)

let save ~path m =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (print m))

(* A crash mid-write must never leave a half-written snapshot where a readable
   one stood: write to a sibling temp file, then atomically rename over. *)
let save_atomic ~path m =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (print m);
      flush oc);
  Sys.rename tmp path

let load ~path =
  let ic = open_in path in
  let text =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  parse text
