module Automaton = Mechaml_ts.Automaton
module Trace = Mechaml_obs.Trace
module Metrics = Mechaml_obs.Metrics

let m_closure_states =
  Metrics.histogram "core_closure_states"
    ~buckets:(Metrics.log_buckets ~lo:1. ~hi:1e5 11)
    ~help:"States per chaotic-closure automaton."

let m_closure_transitions =
  Metrics.histogram "core_closure_transitions"
    ~buckets:(Metrics.log_buckets ~lo:1. ~hi:1e6 13)
    ~help:"Transitions per chaotic-closure automaton."

let chaos_prop = "p_chaos"

let s_all = "s_all"

let s_delta = "s_delta"

let closed_suffix = "@0"

type origin = Core of string | Chaotic

let origin name =
  if name = s_all || name = s_delta then Chaotic
  else if String.length name > 2 && String.sub name (String.length name - 2) 2 = closed_suffix
  then Core (String.sub name 0 (String.length name - 2))
  else Core name

let check_alphabet inputs outputs =
  let width = List.length inputs + List.length outputs in
  if width > 16 then
    invalid_arg
      (Printf.sprintf
         "Chaos: |I| + |O| = %d is too large to enumerate the interaction powerset" width)

(* All subsets of a name list. *)
let subsets names =
  List.fold_left
    (fun acc n -> acc @ List.map (fun s -> n :: s) acc)
    [ [] ] names

let all_interactions inputs outputs =
  let ins = subsets inputs and outs = subsets outputs in
  List.concat_map (fun a -> List.map (fun b -> (a, b)) outs) ins

let chaotic_automaton ~name ~inputs ~outputs =
  check_alphabet inputs outputs;
  let b =
    Automaton.Builder.create ~name ~inputs ~outputs ~props:[ chaos_prop ] ()
  in
  ignore (Automaton.Builder.add_state b ~props:[ chaos_prop ] s_all);
  ignore (Automaton.Builder.add_state b ~props:[ chaos_prop ] s_delta);
  List.iter
    (fun (a, o) ->
      Automaton.Builder.add_trans b ~src:s_all ~inputs:a ~outputs:o ~dst:s_all ();
      Automaton.Builder.add_trans b ~src:s_all ~inputs:a ~outputs:o ~dst:s_delta ())
    (all_interactions inputs outputs);
  Automaton.Builder.set_initial b [ s_all; s_delta ];
  Automaton.Builder.build b

let closure_unobserved ?(label_of = fun _ -> []) ?(extra_props = []) (m : Incomplete.t) =
  check_alphabet m.Incomplete.input_signals m.Incomplete.output_signals;
  List.iter
    (fun s ->
      if s = s_all || s = s_delta then
        invalid_arg (Printf.sprintf "Chaos.closure: state name %S collides with a chaos state" s);
      if String.length s >= 2 && String.sub s (String.length s - 2) 2 = closed_suffix then
        invalid_arg
          (Printf.sprintf "Chaos.closure: state name %S collides with the %S copy suffix" s
             closed_suffix))
    m.Incomplete.states;
  let b =
    Automaton.Builder.create
      ~name:("chaos(" ^ m.Incomplete.name ^ ")")
      ~inputs:m.Incomplete.input_signals ~outputs:m.Incomplete.output_signals
      ~props:(chaos_prop :: List.filter (fun p -> p <> chaos_prop) extra_props)
      ()
  in
  let open_copy s = s and closed_copy s = s ^ closed_suffix in
  List.iter
    (fun s ->
      let props = label_of s in
      ignore (Automaton.Builder.add_state b ~props (open_copy s));
      ignore (Automaton.Builder.add_state b ~props (closed_copy s)))
    m.Incomplete.states;
  ignore (Automaton.Builder.add_state b ~props:[ chaos_prop ] s_all);
  ignore (Automaton.Builder.add_state b ~props:[ chaos_prop ] s_delta);
  (* Known transitions: each copy can move to each copy of the target
     (Definition 9, the four ⊎-components over T). *)
  List.iter
    (fun (src, (i : Incomplete.interaction), dst) ->
      let add s d =
        Automaton.Builder.add_trans b ~src:s ~inputs:i.in_signals ~outputs:i.out_signals ~dst:d ()
      in
      add (open_copy src) (open_copy dst);
      add (open_copy src) (closed_copy dst);
      add (closed_copy src) (open_copy dst);
      add (closed_copy src) (closed_copy dst))
    m.Incomplete.trans;
  (* Unknown interactions escape to chaos from the open copies: every input
     set that is neither refused nor already answered, with every output
     set. *)
  let out_subsets = subsets m.Incomplete.output_signals in
  List.iter
    (fun s ->
      List.iter
        (fun a ->
          let known = Incomplete.known_response m ~state:s ~inputs:a <> None in
          let refused = Incomplete.refuses m ~state:s ~inputs:a in
          if (not known) && not refused then
            List.iter
              (fun o ->
                Automaton.Builder.add_trans b ~src:(open_copy s) ~inputs:a ~outputs:o
                  ~dst:s_all ();
                Automaton.Builder.add_trans b ~src:(open_copy s) ~inputs:a ~outputs:o
                  ~dst:s_delta ())
              out_subsets)
        (subsets m.Incomplete.input_signals))
    m.Incomplete.states;
  (* The embedded chaotic automaton T_c. *)
  List.iter
    (fun (a, o) ->
      Automaton.Builder.add_trans b ~src:s_all ~inputs:a ~outputs:o ~dst:s_all ();
      Automaton.Builder.add_trans b ~src:s_all ~inputs:a ~outputs:o ~dst:s_delta ())
    (all_interactions m.Incomplete.input_signals m.Incomplete.output_signals);
  Automaton.Builder.set_initial b
    (List.concat_map (fun q -> [ open_copy q; closed_copy q ]) m.Incomplete.initial);
  Automaton.Builder.build b

let closure ?label_of ?extra_props (m : Incomplete.t) =
  let t0 = if Trace.is_enabled () then Some (Trace.now_us ()) else None in
  let auto = closure_unobserved ?label_of ?extra_props m in
  if t0 <> None || Metrics.enabled () then begin
    let states = Automaton.num_states auto in
    (* the transition count walks every adjacency list — worth it for the
       size histograms, too slow for the per-span fast path when only
       tracing is on *)
    if Metrics.enabled () then begin
      Metrics.observe m_closure_states (float_of_int states);
      Metrics.observe m_closure_transitions
        (float_of_int (Automaton.num_transitions auto))
    end;
    match t0 with
    | Some start_us ->
      Trace.complete ~name:"core.closure" ~start_us
        ~args:
          [ ("model", Trace.Str m.Incomplete.name); ("states", Trace.Int states) ]
        ()
    | None -> ()
  end;
  auto
