module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe
module Bitset = Mechaml_util.Bitset
module Trace = Mechaml_obs.Trace
module Metrics = Mechaml_obs.Metrics

let m_closure_states =
  Metrics.histogram "core_closure_states"
    ~buckets:(Metrics.log_buckets ~lo:1. ~hi:1e5 11)
    ~help:"States per chaotic-closure automaton."

let m_closure_transitions =
  Metrics.histogram "core_closure_transitions"
    ~buckets:(Metrics.log_buckets ~lo:1. ~hi:1e6 13)
    ~help:"Transitions per chaotic-closure automaton."

let chaos_prop = "p_chaos"

let s_all = "s_all"

let s_delta = "s_delta"

let closed_suffix = "@0"

type origin = Core of string | Chaotic

let origin name =
  if name = s_all || name = s_delta then Chaotic
  else if String.length name > 2 && String.sub name (String.length name - 2) 2 = closed_suffix
  then Core (String.sub name 0 (String.length name - 2))
  else Core name

let max_alphabet = 30

let check_alphabet inputs outputs =
  let width = List.length inputs + List.length outputs in
  if width > max_alphabet then
    invalid_arg
      (Printf.sprintf
         "Chaos: |I| + |O| = %d is too large to enumerate the interaction powerset" width)

(* All subsets of a name list, in increasing bit-pattern order with respect
   to the list position of each name (the order the closure enumerates
   interactions in).  Kept as a debugging/inspection helper — the closure
   itself generates interactions directly as bitset patterns.  Linear in the
   2^n output size and fully tail-recursive, unlike the former
   [acc @ List.map ...] accumulation. *)
let subsets names =
  List.rev
    (List.fold_left
       (fun rev_acc n -> List.rev_append (List.rev_map (fun s -> n :: s) rev_acc) rev_acc)
       [ [] ] names)

(* The powerset enumerations below run over raw bit patterns: subset k of a
   signal list maps to the bitset with pattern k in its Universe (of_list
   interns names in list order), and [subsets] enumerates exactly in
   increasing k — so generated transitions reproduce the Builder-based
   construction byte for byte, without materializing name lists. *)

let chaotic_automaton ~name ~inputs ~outputs =
  check_alphabet inputs outputs;
  let inputs_u = Universe.of_list inputs and outputs_u = Universe.of_list outputs in
  let props_u = Universe.of_list [ chaos_prop ] in
  let chaos_label = Universe.set_of_names props_u [ chaos_prop ] in
  let n_in = 1 lsl Universe.size inputs_u and n_out = 1 lsl Universe.size outputs_u in
  let trans_all = ref [] in
  for a = n_in - 1 downto 0 do
    let input = Bitset.of_int_unsafe a in
    for o = n_out - 1 downto 0 do
      let output = Bitset.of_int_unsafe o in
      trans_all :=
        { Automaton.input; output; dst = 0 } :: { Automaton.input; output; dst = 1 }
        :: !trans_all
    done
  done;
  Automaton.of_packed ~assume_unique_names:true ~name ~inputs:inputs_u ~outputs:outputs_u
    ~props:props_u
    ~state_names:[| s_all; s_delta |]
    ~labels:[| chaos_label; chaos_label |]
    ~trans:[| !trans_all; [] |] ~initial:[ 0; 1 ] ()

let closure_unobserved ?(label_of = fun _ -> []) ?(extra_props = []) (m : Incomplete.t) =
  check_alphabet m.Incomplete.input_signals m.Incomplete.output_signals;
  List.iter
    (fun s ->
      if s = s_all || s = s_delta then
        invalid_arg (Printf.sprintf "Chaos.closure: state name %S collides with a chaos state" s);
      if String.length s >= 2 && String.sub s (String.length s - 2) 2 = closed_suffix then
        invalid_arg
          (Printf.sprintf "Chaos.closure: state name %S collides with the %S copy suffix" s
             closed_suffix))
    m.Incomplete.states;
  let inputs_u = Universe.of_list m.Incomplete.input_signals in
  let outputs_u = Universe.of_list m.Incomplete.output_signals in
  let n_in = 1 lsl Universe.size inputs_u and n_out = 1 lsl Universe.size outputs_u in
  (* Proposition universe: declared props first, then label props in order
     of first mention over the states (the Builder's note-on-first-mention
     order). *)
  let declared = chaos_prop :: List.filter (fun p -> p <> chaos_prop) extra_props in
  let rev_props = ref (List.rev declared) in
  let state_props =
    List.map
      (fun s ->
        let ps = label_of s in
        List.iter (fun p -> if not (List.mem p !rev_props) then rev_props := p :: !rev_props) ps;
        ps)
      m.Incomplete.states
  in
  let props_u = Universe.of_list (List.rev !rev_props) in
  let n_core = List.length m.Incomplete.states in
  let n = (2 * n_core) + 2 in
  let all_i = n - 2 and delta_i = n - 1 in
  let state_names = Array.make n "" in
  let pos : (string, int) Hashtbl.t = Hashtbl.create (2 * n_core) in
  List.iteri
    (fun k s ->
      Hashtbl.replace pos s k;
      state_names.(2 * k) <- s;
      state_names.((2 * k) + 1) <- s ^ closed_suffix)
    m.Incomplete.states;
  state_names.(all_i) <- s_all;
  state_names.(delta_i) <- s_delta;
  let labels = Array.make n (Universe.set_of_names props_u [ chaos_prop ]) in
  List.iteri
    (fun k ps ->
      let l = Universe.set_of_names props_u ps in
      labels.(2 * k) <- l;
      labels.((2 * k) + 1) <- l)
    state_props;
  (* Adjacency lists accumulate reversed, flipped once at the end, so the
     final per-state order is the order transitions are generated in. *)
  let acc = Array.make n [] in
  let add s t = acc.(s) <- t :: acc.(s) in
  (* Index the known inputs and refusals per state up front: the powerset
     scan below asks "known or refused?" 2^|I| times per state, which used
     to be a list scan over all of T each. *)
  let known = Array.init n_core (fun _ -> Hashtbl.create 8) in
  let refused = Array.init n_core (fun _ -> Hashtbl.create 8) in
  List.iter
    (fun (src, (i : Incomplete.interaction), _) ->
      Hashtbl.replace known.(Hashtbl.find pos src)
        (Bitset.to_int (Universe.set_of_names inputs_u i.in_signals))
        ())
    m.Incomplete.trans;
  List.iter
    (fun (s, inputs) ->
      Hashtbl.replace refused.(Hashtbl.find pos s)
        (Bitset.to_int (Universe.set_of_names inputs_u inputs))
        ())
    m.Incomplete.refusals;
  (* Known transitions: each copy can move to each copy of the target
     (Definition 9, the four ⊎-components over T). *)
  List.iter
    (fun (src, (i : Incomplete.interaction), dst) ->
      let input = Universe.set_of_names inputs_u i.in_signals in
      let output = Universe.set_of_names outputs_u i.out_signals in
      let sk = Hashtbl.find pos src and dk = Hashtbl.find pos dst in
      add (2 * sk) { Automaton.input; output; dst = 2 * dk };
      add (2 * sk) { Automaton.input; output; dst = (2 * dk) + 1 };
      add ((2 * sk) + 1) { Automaton.input; output; dst = 2 * dk };
      add ((2 * sk) + 1) { Automaton.input; output; dst = (2 * dk) + 1 })
    m.Incomplete.trans;
  (* Unknown interactions escape to chaos from the open copies: every input
     set that is neither refused nor already answered, with every output
     set. *)
  for k = 0 to n_core - 1 do
    for a = 0 to n_in - 1 do
      if not (Hashtbl.mem known.(k) a || Hashtbl.mem refused.(k) a) then begin
        let input = Bitset.of_int_unsafe a in
        for o = 0 to n_out - 1 do
          let output = Bitset.of_int_unsafe o in
          add (2 * k) { Automaton.input; output; dst = all_i };
          add (2 * k) { Automaton.input; output; dst = delta_i }
        done
      end
    done
  done;
  (* The embedded chaotic automaton T_c. *)
  for a = 0 to n_in - 1 do
    let input = Bitset.of_int_unsafe a in
    for o = 0 to n_out - 1 do
      let output = Bitset.of_int_unsafe o in
      add all_i { Automaton.input; output; dst = all_i };
      add all_i { Automaton.input; output; dst = delta_i }
    done
  done;
  let initial =
    List.concat_map
      (fun q ->
        let k = Hashtbl.find pos q in
        [ 2 * k; (2 * k) + 1 ])
      m.Incomplete.initial
  in
  Automaton.of_packed
    ~name:("chaos(" ^ m.Incomplete.name ^ ")")
    ~inputs:inputs_u ~outputs:outputs_u ~props:props_u ~state_names ~labels
    ~trans:(Array.map List.rev acc) ~initial ()

(* -- incremental closure --------------------------------------------------- *)

let m_delta_edges =
  Metrics.counter "core_closure_delta_edges_total"
    ~help:"Transitions rebuilt by incremental closure updates (dirty rows only)."

let m_updates =
  Metrics.counter "core_closure_updates_total"
    ~help:"Incremental closure updates applied (full rebuilds not counted)."

(* Bookkeeping that lets [update] patch the previous closure instead of
   re-deriving it: the position/known/refused indexes of
   [closure_unobserved], plus the forward-order adjacency rows and labels of
   the automaton it produced.  The incomplete model is append-only (states,
   transitions and refusals grow at the tail), so the delta between two
   models is recovered from plain element counts. *)
type inc = {
  i_label_of : string -> string list;
  i_extra_props : string list;
  i_inputs_u : Universe.t;
  i_outputs_u : Universe.t;
  i_n_in : int;
  i_n_out : int;
  i_pos : (string, int) Hashtbl.t;
  mutable i_rev_props : string list; (* proposition universe, reversed *)
  mutable i_known : (int, unit) Hashtbl.t array;
  mutable i_refused : (int, unit) Hashtbl.t array;
  mutable i_n_core : int;
  mutable i_seen_trans : int;
  mutable i_seen_refusals : int;
  mutable i_rows : Automaton.trans list array; (* forward order, length n *)
  mutable i_labels : Bitset.t array;
  mutable i_auto : Automaton.t;
  mutable i_delta_edges : int;
  mutable i_total_delta_edges : int;
  mutable i_dirty : int list; (* closure states dirtied by the last update *)
  mutable i_grew : bool;
}

let auto inc = inc.i_auto

let delta_edges inc = inc.i_delta_edges

let total_delta_edges inc = inc.i_total_delta_edges

let dirty_states inc = inc.i_dirty

let grew inc = inc.i_grew

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t

let in_pattern inc (i : Incomplete.interaction) =
  Bitset.to_int (Universe.set_of_names inc.i_inputs_u i.in_signals)

(* Wrap an existing closure automaton of [m] (freshly built or replayed from
   a cache) into incremental bookkeeping.  [dirty]/[grew] describe how [m]
   relates to the handle the caller is replacing, so product patching stays
   exact even when the automaton itself came from a memo hit. *)
let adopt_auto ~label_of ~extra_props ~dirty ~grew:grew_flag ~delta (m : Incomplete.t) a =
  let inputs_u = Universe.of_list m.Incomplete.input_signals in
  let outputs_u = Universe.of_list m.Incomplete.output_signals in
  let n_core = List.length m.Incomplete.states in
  let n = (2 * n_core) + 2 in
  let pos = Hashtbl.create (2 * n_core) in
  List.iteri (fun k s -> Hashtbl.replace pos s k) m.Incomplete.states;
  let known = Array.init n_core (fun _ -> Hashtbl.create 8) in
  let refused = Array.init n_core (fun _ -> Hashtbl.create 8) in
  List.iter
    (fun (src, (i : Incomplete.interaction), _) ->
      Hashtbl.replace known.(Hashtbl.find pos src)
        (Bitset.to_int (Universe.set_of_names inputs_u i.in_signals))
        ())
    m.Incomplete.trans;
  List.iter
    (fun (s, inputs) ->
      Hashtbl.replace refused.(Hashtbl.find pos s)
        (Bitset.to_int (Universe.set_of_names inputs_u inputs))
        ())
    m.Incomplete.refusals;
  {
    i_label_of = label_of;
    i_extra_props = extra_props;
    i_inputs_u = inputs_u;
    i_outputs_u = outputs_u;
    i_n_in = 1 lsl Universe.size inputs_u;
    i_n_out = 1 lsl Universe.size outputs_u;
    i_pos = pos;
    i_rev_props = List.rev (Universe.to_list a.Automaton.props);
    i_known = known;
    i_refused = refused;
    i_n_core = n_core;
    i_seen_trans = List.length m.Incomplete.trans;
    i_seen_refusals = List.length m.Incomplete.refusals;
    i_rows = Array.init n (Automaton.transitions_from a);
    i_labels = Array.init n (Automaton.label a);
    i_auto = a;
    i_delta_edges = delta;
    i_total_delta_edges = delta;
    i_dirty = dirty;
    i_grew = grew_flag;
  }

let all_states_dirty (m : Incomplete.t) =
  List.concat (List.mapi (fun k _ -> [ 2 * k; (2 * k) + 1 ]) m.Incomplete.states)

let inc_closure ?(label_of = fun _ -> []) ?(extra_props = []) (m : Incomplete.t) =
  let a = closure_unobserved ~label_of ~extra_props m in
  adopt_auto ~label_of ~extra_props ~dirty:(all_states_dirty m) ~grew:true ~delta:0 m a

(* Dirty delta of [m] relative to the handle: closure states whose adjacency
   rows differ, and whether the core state set grew.  The open copy [2k] of
   a state changes on any new fact at [k] (a known edge appears and/or
   escapes disappear); the closed copy [2k+1] only when a new transition
   leaves [k]. *)
let delta_of inc (m : Incomplete.t) =
  let new_states = drop inc.i_n_core m.Incomplete.states in
  let new_trans = drop inc.i_seen_trans m.Incomplete.trans in
  let new_refusals = drop inc.i_seen_refusals m.Incomplete.refusals in
  let dirty = Hashtbl.create 8 in
  List.iter
    (fun (src, _, _) ->
      match Hashtbl.find_opt inc.i_pos src with
      | Some k ->
        Hashtbl.replace dirty (2 * k) ();
        Hashtbl.replace dirty ((2 * k) + 1) ()
      | None -> () (* a new state: dirtied below *))
    new_trans;
  List.iter
    (fun (s, _) ->
      match Hashtbl.find_opt inc.i_pos s with
      | Some k -> Hashtbl.replace dirty (2 * k) ()
      | None -> ())
    new_refusals;
  List.iteri
    (fun j _ ->
      let k = inc.i_n_core + j in
      Hashtbl.replace dirty (2 * k) ();
      Hashtbl.replace dirty ((2 * k) + 1) ())
    new_states;
  (new_states, new_trans, new_refusals, List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) dirty []))

let adopt ?(label_of = fun _ -> []) ?(extra_props = []) ~prev (m : Incomplete.t) a =
  match prev with
  | None -> adopt_auto ~label_of ~extra_props ~dirty:(all_states_dirty m) ~grew:true ~delta:0 m a
  | Some inc ->
    let new_states, _, _, dirty = delta_of inc m in
    adopt_auto ~label_of:inc.i_label_of ~extra_props:inc.i_extra_props ~dirty
      ~grew:(new_states <> []) ~delta:0 m a

let structurally_equal (a : Automaton.t) (b : Automaton.t) =
  a.Automaton.state_names = b.Automaton.state_names
  && a.Automaton.labels = b.Automaton.labels
  && a.Automaton.trans = b.Automaton.trans
  && a.Automaton.initial = b.Automaton.initial
  && Universe.to_list a.Automaton.props = Universe.to_list b.Automaton.props
  && Universe.to_list a.Automaton.inputs = Universe.to_list b.Automaton.inputs
  && Universe.to_list a.Automaton.outputs = Universe.to_list b.Automaton.outputs

let update ?(debug = false) inc (m : Incomplete.t) =
  let t0 = if Trace.is_enabled () then Some (Trace.now_us ()) else None in
  let new_states, new_trans, new_refusals, dirty = delta_of inc m in
  if new_states = [] && new_trans = [] && new_refusals = [] then begin
    inc.i_delta_edges <- 0;
    inc.i_dirty <- [];
    inc.i_grew <- false
  end
  else begin
    List.iter
      (fun s ->
        if s = s_all || s = s_delta then
          invalid_arg
            (Printf.sprintf "Chaos.update: state name %S collides with a chaos state" s);
        if String.length s >= 2 && String.sub s (String.length s - 2) 2 = closed_suffix then
          invalid_arg
            (Printf.sprintf "Chaos.update: state name %S collides with the %S copy suffix" s
               closed_suffix))
      new_states;
    let old_n_core = inc.i_n_core in
    let old_n = (2 * old_n_core) + 2 in
    let old_all = old_n - 2 in
    let n_core = old_n_core + List.length new_states in
    let n = (2 * n_core) + 2 in
    let all_i = n - 2 and delta_i = n - 1 in
    let dn2 = 2 * (n_core - old_n_core) in
    let grew_now = dn2 > 0 in
    (* extend the position / known / refused indexes *)
    List.iteri (fun j s -> Hashtbl.replace inc.i_pos s (old_n_core + j)) new_states;
    if grew_now then begin
      let extend arr =
        Array.init n_core (fun k -> if k < old_n_core then arr.(k) else Hashtbl.create 8)
      in
      inc.i_known <- extend inc.i_known;
      inc.i_refused <- extend inc.i_refused
    end;
    List.iter
      (fun (src, (i : Incomplete.interaction), _) ->
        Hashtbl.replace inc.i_known.(Hashtbl.find inc.i_pos src) (in_pattern inc i) ())
      new_trans;
    List.iter
      (fun (s, inputs) ->
        Hashtbl.replace inc.i_refused.(Hashtbl.find inc.i_pos s)
          (Bitset.to_int (Universe.set_of_names inc.i_inputs_u inputs))
          ())
      new_refusals;
    (* proposition universe: new states append their first-mention props *)
    let new_props =
      List.map
        (fun s ->
          let ps = inc.i_label_of s in
          List.iter
            (fun p -> if not (List.mem p inc.i_rev_props) then inc.i_rev_props <- p :: inc.i_rev_props)
            ps;
          ps)
        new_states
    in
    let props_u = Universe.of_list (List.rev inc.i_rev_props) in
    let chaos_label = Universe.set_of_names props_u [ chaos_prop ] in
    (* names and labels: old positions are unchanged, chaos states shift *)
    let state_names = Array.make n "" in
    Array.blit inc.i_auto.Automaton.state_names 0 state_names 0 (2 * old_n_core);
    List.iteri
      (fun j s ->
        let k = old_n_core + j in
        state_names.(2 * k) <- s;
        state_names.((2 * k) + 1) <- s ^ closed_suffix)
      new_states;
    state_names.(all_i) <- s_all;
    state_names.(delta_i) <- s_delta;
    let labels = Array.make n chaos_label in
    Array.blit inc.i_labels 0 labels 0 (2 * old_n_core);
    List.iteri
      (fun j ps ->
        let k = old_n_core + j in
        let l = Universe.set_of_names props_u ps in
        labels.(2 * k) <- l;
        labels.((2 * k) + 1) <- l)
      new_props;
    (* adjacency rows: clean rows are shared (escape destinations remapped
       when the chaos states shifted — only open copies and [s_all] carry
       them), dirty rows are rebuilt exactly as [closure_unobserved] would *)
    let dirty_flag = Array.make n false in
    List.iter (fun s -> dirty_flag.(s) <- true) dirty;
    let remap_row row =
      List.map
        (fun (t : Automaton.trans) ->
          if t.dst >= old_all then { t with dst = t.dst + dn2 } else t)
        row
    in
    let rows = Array.make n [] in
    for k = 0 to old_n_core - 1 do
      if not dirty_flag.(2 * k) then
        rows.(2 * k) <- (if grew_now then remap_row inc.i_rows.(2 * k) else inc.i_rows.(2 * k));
      (* closed copies only target core copies — never remapped *)
      if not dirty_flag.((2 * k) + 1) then rows.((2 * k) + 1) <- inc.i_rows.((2 * k) + 1)
    done;
    rows.(all_i) <-
      (if grew_now then remap_row inc.i_rows.(old_all) else inc.i_rows.(old_all));
    rows.(delta_i) <- [];
    (* rebuild the dirty rows *)
    let delta_edges = ref 0 in
    let rebuild_core k =
      let name = state_names.(2 * k) in
      let rev_open = ref [] and rev_closed = ref [] in
      List.iter
        (fun (src, (i : Incomplete.interaction), dst) ->
          if src = name then begin
            let input = Universe.set_of_names inc.i_inputs_u i.in_signals in
            let output = Universe.set_of_names inc.i_outputs_u i.out_signals in
            let dk = Hashtbl.find inc.i_pos dst in
            rev_open :=
              { Automaton.input; output; dst = (2 * dk) + 1 }
              :: { Automaton.input; output; dst = 2 * dk }
              :: !rev_open;
            rev_closed :=
              { Automaton.input; output; dst = (2 * dk) + 1 }
              :: { Automaton.input; output; dst = 2 * dk }
              :: !rev_closed
          end)
        m.Incomplete.trans;
      if dirty_flag.(2 * k) then begin
        for a = 0 to inc.i_n_in - 1 do
          if not (Hashtbl.mem inc.i_known.(k) a || Hashtbl.mem inc.i_refused.(k) a) then begin
            let input = Bitset.of_int_unsafe a in
            for o = 0 to inc.i_n_out - 1 do
              let output = Bitset.of_int_unsafe o in
              rev_open :=
                { Automaton.input; output; dst = delta_i }
                :: { Automaton.input; output; dst = all_i }
                :: !rev_open
            done
          end
        done;
        rows.(2 * k) <- List.rev !rev_open;
        delta_edges := !delta_edges + List.length rows.(2 * k)
      end;
      if dirty_flag.((2 * k) + 1) then begin
        rows.((2 * k) + 1) <- List.rev !rev_closed;
        delta_edges := !delta_edges + List.length rows.((2 * k) + 1)
      end
    in
    for k = 0 to n_core - 1 do
      if dirty_flag.(2 * k) || dirty_flag.((2 * k) + 1) then rebuild_core k
    done;
    let initial =
      List.concat_map
        (fun q ->
          let k = Hashtbl.find inc.i_pos q in
          [ 2 * k; (2 * k) + 1 ])
        m.Incomplete.initial
    in
    let old_of =
      Array.init n (fun s ->
          if s = all_i then old_all
          else if s = delta_i then old_n - 1
          else if s < 2 * old_n_core then s
          else -1)
    in
    let dst_map d = if d >= old_all then d + dn2 else d in
    let a =
      Automaton.patch ~old:inc.i_auto
        ~name:("chaos(" ^ m.Incomplete.name ^ ")")
        ~props:props_u ~state_names ~labels ~trans:rows ~initial ~dirty:dirty_flag ~old_of
        ~dst_map ()
    in
    inc.i_n_core <- n_core;
    inc.i_seen_trans <- List.length m.Incomplete.trans;
    inc.i_seen_refusals <- List.length m.Incomplete.refusals;
    inc.i_rows <- rows;
    inc.i_labels <- labels;
    inc.i_auto <- a;
    inc.i_delta_edges <- !delta_edges;
    inc.i_total_delta_edges <- inc.i_total_delta_edges + !delta_edges;
    inc.i_dirty <- dirty;
    inc.i_grew <- grew_now;
    Metrics.add m_delta_edges !delta_edges;
    Metrics.incr m_updates;
    if debug then begin
      let fresh =
        closure_unobserved ~label_of:inc.i_label_of ~extra_props:inc.i_extra_props m
      in
      if not (structurally_equal a fresh) then
        failwith "Chaos.update: incremental closure diverged from the fresh construction"
    end
  end;
  (match t0 with
  | Some start_us ->
    Trace.complete ~name:"core.closure.update" ~start_us
      ~args:
        [
          ("model", Trace.Str m.Incomplete.name);
          ("delta_edges", Trace.Int inc.i_delta_edges);
          ("dirty", Trace.Int (List.length inc.i_dirty));
        ]
      ()
  | None -> ())

let closure ?label_of ?extra_props (m : Incomplete.t) =
  let t0 = if Trace.is_enabled () then Some (Trace.now_us ()) else None in
  let auto = closure_unobserved ?label_of ?extra_props m in
  if t0 <> None || Metrics.enabled () then begin
    let states = Automaton.num_states auto in
    if Metrics.enabled () then begin
      Metrics.observe m_closure_states (float_of_int states);
      Metrics.observe m_closure_transitions
        (float_of_int (Automaton.num_transitions auto))
    end;
    match t0 with
    | Some start_us ->
      Trace.complete ~name:"core.closure" ~start_us
        ~args:
          [ ("model", Trace.Str m.Incomplete.name); ("states", Trace.Int states) ]
        ()
    | None -> ()
  end;
  auto
