module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe
module Bitset = Mechaml_util.Bitset
module Trace = Mechaml_obs.Trace
module Metrics = Mechaml_obs.Metrics

let m_closure_states =
  Metrics.histogram "core_closure_states"
    ~buckets:(Metrics.log_buckets ~lo:1. ~hi:1e5 11)
    ~help:"States per chaotic-closure automaton."

let m_closure_transitions =
  Metrics.histogram "core_closure_transitions"
    ~buckets:(Metrics.log_buckets ~lo:1. ~hi:1e6 13)
    ~help:"Transitions per chaotic-closure automaton."

let chaos_prop = "p_chaos"

let s_all = "s_all"

let s_delta = "s_delta"

let closed_suffix = "@0"

type origin = Core of string | Chaotic

let origin name =
  if name = s_all || name = s_delta then Chaotic
  else if String.length name > 2 && String.sub name (String.length name - 2) 2 = closed_suffix
  then Core (String.sub name 0 (String.length name - 2))
  else Core name

let max_alphabet = 20

let check_alphabet inputs outputs =
  let width = List.length inputs + List.length outputs in
  if width > max_alphabet then
    invalid_arg
      (Printf.sprintf
         "Chaos: |I| + |O| = %d is too large to enumerate the interaction powerset" width)

(* All subsets of a name list, in increasing bit-pattern order with respect
   to the list position of each name (the order the closure enumerates
   interactions in).  Kept as a debugging/inspection helper — the closure
   itself generates interactions directly as bitset patterns.  Linear in the
   2^n output size and fully tail-recursive, unlike the former
   [acc @ List.map ...] accumulation. *)
let subsets names =
  List.rev
    (List.fold_left
       (fun rev_acc n -> List.rev_append (List.rev_map (fun s -> n :: s) rev_acc) rev_acc)
       [ [] ] names)

(* The powerset enumerations below run over raw bit patterns: subset k of a
   signal list maps to the bitset with pattern k in its Universe (of_list
   interns names in list order), and [subsets] enumerates exactly in
   increasing k — so generated transitions reproduce the Builder-based
   construction byte for byte, without materializing name lists. *)

let chaotic_automaton ~name ~inputs ~outputs =
  check_alphabet inputs outputs;
  let inputs_u = Universe.of_list inputs and outputs_u = Universe.of_list outputs in
  let props_u = Universe.of_list [ chaos_prop ] in
  let chaos_label = Universe.set_of_names props_u [ chaos_prop ] in
  let n_in = 1 lsl Universe.size inputs_u and n_out = 1 lsl Universe.size outputs_u in
  let trans_all = ref [] in
  for a = n_in - 1 downto 0 do
    let input = Bitset.of_int_unsafe a in
    for o = n_out - 1 downto 0 do
      let output = Bitset.of_int_unsafe o in
      trans_all :=
        { Automaton.input; output; dst = 0 } :: { Automaton.input; output; dst = 1 }
        :: !trans_all
    done
  done;
  Automaton.of_packed ~assume_unique_names:true ~name ~inputs:inputs_u ~outputs:outputs_u
    ~props:props_u
    ~state_names:[| s_all; s_delta |]
    ~labels:[| chaos_label; chaos_label |]
    ~trans:[| !trans_all; [] |] ~initial:[ 0; 1 ] ()

let closure_unobserved ?(label_of = fun _ -> []) ?(extra_props = []) (m : Incomplete.t) =
  check_alphabet m.Incomplete.input_signals m.Incomplete.output_signals;
  List.iter
    (fun s ->
      if s = s_all || s = s_delta then
        invalid_arg (Printf.sprintf "Chaos.closure: state name %S collides with a chaos state" s);
      if String.length s >= 2 && String.sub s (String.length s - 2) 2 = closed_suffix then
        invalid_arg
          (Printf.sprintf "Chaos.closure: state name %S collides with the %S copy suffix" s
             closed_suffix))
    m.Incomplete.states;
  let inputs_u = Universe.of_list m.Incomplete.input_signals in
  let outputs_u = Universe.of_list m.Incomplete.output_signals in
  let n_in = 1 lsl Universe.size inputs_u and n_out = 1 lsl Universe.size outputs_u in
  (* Proposition universe: declared props first, then label props in order
     of first mention over the states (the Builder's note-on-first-mention
     order). *)
  let declared = chaos_prop :: List.filter (fun p -> p <> chaos_prop) extra_props in
  let rev_props = ref (List.rev declared) in
  let state_props =
    List.map
      (fun s ->
        let ps = label_of s in
        List.iter (fun p -> if not (List.mem p !rev_props) then rev_props := p :: !rev_props) ps;
        ps)
      m.Incomplete.states
  in
  let props_u = Universe.of_list (List.rev !rev_props) in
  let n_core = List.length m.Incomplete.states in
  let n = (2 * n_core) + 2 in
  let all_i = n - 2 and delta_i = n - 1 in
  let state_names = Array.make n "" in
  let pos : (string, int) Hashtbl.t = Hashtbl.create (2 * n_core) in
  List.iteri
    (fun k s ->
      Hashtbl.replace pos s k;
      state_names.(2 * k) <- s;
      state_names.((2 * k) + 1) <- s ^ closed_suffix)
    m.Incomplete.states;
  state_names.(all_i) <- s_all;
  state_names.(delta_i) <- s_delta;
  let labels = Array.make n (Universe.set_of_names props_u [ chaos_prop ]) in
  List.iteri
    (fun k ps ->
      let l = Universe.set_of_names props_u ps in
      labels.(2 * k) <- l;
      labels.((2 * k) + 1) <- l)
    state_props;
  (* Adjacency lists accumulate reversed, flipped once at the end, so the
     final per-state order is the order transitions are generated in. *)
  let acc = Array.make n [] in
  let add s t = acc.(s) <- t :: acc.(s) in
  (* Index the known inputs and refusals per state up front: the powerset
     scan below asks "known or refused?" 2^|I| times per state, which used
     to be a list scan over all of T each. *)
  let known = Array.init n_core (fun _ -> Hashtbl.create 8) in
  let refused = Array.init n_core (fun _ -> Hashtbl.create 8) in
  List.iter
    (fun (src, (i : Incomplete.interaction), _) ->
      Hashtbl.replace known.(Hashtbl.find pos src)
        (Bitset.to_int (Universe.set_of_names inputs_u i.in_signals))
        ())
    m.Incomplete.trans;
  List.iter
    (fun (s, inputs) ->
      Hashtbl.replace refused.(Hashtbl.find pos s)
        (Bitset.to_int (Universe.set_of_names inputs_u inputs))
        ())
    m.Incomplete.refusals;
  (* Known transitions: each copy can move to each copy of the target
     (Definition 9, the four ⊎-components over T). *)
  List.iter
    (fun (src, (i : Incomplete.interaction), dst) ->
      let input = Universe.set_of_names inputs_u i.in_signals in
      let output = Universe.set_of_names outputs_u i.out_signals in
      let sk = Hashtbl.find pos src and dk = Hashtbl.find pos dst in
      add (2 * sk) { Automaton.input; output; dst = 2 * dk };
      add (2 * sk) { Automaton.input; output; dst = (2 * dk) + 1 };
      add ((2 * sk) + 1) { Automaton.input; output; dst = 2 * dk };
      add ((2 * sk) + 1) { Automaton.input; output; dst = (2 * dk) + 1 })
    m.Incomplete.trans;
  (* Unknown interactions escape to chaos from the open copies: every input
     set that is neither refused nor already answered, with every output
     set. *)
  for k = 0 to n_core - 1 do
    for a = 0 to n_in - 1 do
      if not (Hashtbl.mem known.(k) a || Hashtbl.mem refused.(k) a) then begin
        let input = Bitset.of_int_unsafe a in
        for o = 0 to n_out - 1 do
          let output = Bitset.of_int_unsafe o in
          add (2 * k) { Automaton.input; output; dst = all_i };
          add (2 * k) { Automaton.input; output; dst = delta_i }
        done
      end
    done
  done;
  (* The embedded chaotic automaton T_c. *)
  for a = 0 to n_in - 1 do
    let input = Bitset.of_int_unsafe a in
    for o = 0 to n_out - 1 do
      let output = Bitset.of_int_unsafe o in
      add all_i { Automaton.input; output; dst = all_i };
      add all_i { Automaton.input; output; dst = delta_i }
    done
  done;
  let initial =
    List.concat_map
      (fun q ->
        let k = Hashtbl.find pos q in
        [ 2 * k; (2 * k) + 1 ])
      m.Incomplete.initial
  in
  Automaton.of_packed
    ~name:("chaos(" ^ m.Incomplete.name ^ ")")
    ~inputs:inputs_u ~outputs:outputs_u ~props:props_u ~state_names ~labels
    ~trans:(Array.map List.rev acc) ~initial ()

let closure ?label_of ?extra_props (m : Incomplete.t) =
  let t0 = if Trace.is_enabled () then Some (Trace.now_us ()) else None in
  let auto = closure_unobserved ?label_of ?extra_props m in
  if t0 <> None || Metrics.enabled () then begin
    let states = Automaton.num_states auto in
    if Metrics.enabled () then begin
      Metrics.observe m_closure_states (float_of_int states);
      Metrics.observe m_closure_transitions
        (float_of_int (Automaton.num_transitions auto))
    end;
    match t0 with
    | Some start_us ->
      Trace.complete ~name:"core.closure" ~start_us
        ~args:
          [ ("model", Trace.Str m.Incomplete.name); ("states", Trace.Int states) ]
        ()
    | None -> ()
  end;
  auto
