module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe
module Run = Mechaml_ts.Run
module Compose = Mechaml_ts.Compose
module Ctl = Mechaml_logic.Ctl
module Checker = Mechaml_mc.Checker
module Sat = Mechaml_mc.Sat
module Witness = Mechaml_mc.Witness
module Blackbox = Mechaml_legacy.Blackbox
module Observation = Mechaml_legacy.Observation
module Log = Mechaml_obs.Log
module Trace = Mechaml_obs.Trace
module Prof = Mechaml_obs.Prof
module Metrics = Mechaml_obs.Metrics
module Clock = Mechaml_obs.Clock

let m_iterations =
  Metrics.counter "loop_iterations_total" ~help:"Synthesis-loop iterations executed."

let m_tests =
  Metrics.counter "loop_tests_total" ~help:"Driver queries executed by the synthesis loop."

let m_test_steps =
  Metrics.counter "loop_test_steps_total" ~help:"Input steps fed to the driver by the loop."

let m_facts =
  Metrics.counter "loop_facts_learned_total"
    ~help:"Knowledge facts learned from driver observations."

type violation_kind = Deadlock | Property

type verdict =
  | Proved
  | Real_violation of {
      kind : violation_kind;
      formula : Ctl.t;
      witness : Run.t;
      product : Compose.product;
      confirmed_by_test : bool;
    }
  | Exhausted of { iterations : int }
  | Degraded of {
      reason : string;
      at_iteration : int;
      model_states : int;
      knowledge : int;
      closure_states : int;
      proved_on_closure : Ctl.t list;
      unknown_for_real : Ctl.t list;
    }

type test_report = {
  inputs_fed : string list list;
  reproduced : bool;
  knowledge_gained : int;
}

type iteration = {
  index : int;
  model_states : int;
  model_knowledge : int;
  closure_states : int;
  product_states : int;
  counterexample : (violation_kind * Run.t) option;
  counterexample_length : int;
  fast_real : bool;
  test : test_report option;
  probes : int;
}

type result = {
  verdict : verdict;
  iterations : iteration list;
  final_model : Incomplete.t;
  tests_executed : int;
  test_steps_executed : int;
  states_learned : int;
  legacy_state_bound : int;
  closure_seconds : float;
  check_seconds : float;
  test_seconds : float;
  closure_delta_edges : int;
  product_states_reused : int;
  sat_seed_hit_rate : float;
}

(* The projection of a product counterexample onto the legacy side, decoded
   into names: per step the input and output signal names, plus the closure
   state names visited. *)
type projected = {
  step_inputs : string list list;
  step_outputs : string list list;
  closure_states : string list;
}

let project_counterexample (product : Compose.product) witness =
  let run = Compose.project_right product witness in
  let closure = product.Compose.right in
  {
    step_inputs =
      List.map
        (fun (a, _) -> Universe.names_of_set closure.Automaton.inputs a)
        (Run.trace run);
    step_outputs =
      List.map
        (fun (_, b) -> Universe.names_of_set closure.Automaton.outputs b)
        (Run.trace run);
    closure_states = List.map (Automaton.state_name closure) (Run.state_sequence run);
  }

(* Walk the projected counterexample against the learned model: [true] iff
   every step is a known transition of T (then the synthesized part of the
   counterexample is real behaviour — fast conflict detection). *)
let all_steps_known (model : Incomplete.t) proj =
  let rec go states ins outs =
    match (states, ins, outs) with
    | _ :: [], [], [] -> true
    | pre :: (post :: _ as rest), i :: ins', o :: outs' -> (
      match (Chaos.origin pre, Chaos.origin post) with
      | Chaos.Core pre_core, Chaos.Core post_core -> (
        match Incomplete.known_response model ~state:pre_core ~inputs:i with
        | Some (b, d) when b = List.sort_uniq compare o && d = post_core ->
          go rest ins' outs'
        | _ -> false)
      | _ -> false)
    | _ -> false
  in
  go proj.closure_states proj.step_inputs proj.step_outputs

(* Candidate legacy interactions the context offers in a given context state:
   for each context transition, the legacy must consume the context's outputs
   on the shared signals and produce the context's inputs on the shared
   signals (Definition 3). *)
let candidates_at (context : Automaton.t) (legacy : Blackbox.t) c_state =
  List.map
    (fun (t : Automaton.trans) ->
      let a_cand =
        List.filter
          (fun n -> List.mem n legacy.Blackbox.input_signals)
          (Universe.names_of_set context.Automaton.outputs t.output)
      in
      let b_cand =
        List.filter
          (fun n -> List.mem n legacy.Blackbox.output_signals)
          (Universe.names_of_set context.Automaton.inputs t.input)
      in
      (List.sort_uniq compare a_cand, List.sort_uniq compare b_cand))
    (Automaton.transitions_from context c_state)
  |> List.sort_uniq compare

type candidate_status = Known_impossible | Known_compatible | Unknown

let candidate_status model ~state (a, b) =
  if Incomplete.refuses model ~state ~inputs:a then Known_impossible
  else
    match Incomplete.known_response model ~state ~inputs:a with
    | Some (b', _) -> if b' = b then Known_compatible else Known_impossible
    | None -> Unknown

(* Raised (internally) by the observe wrapper when the supervised driver gives
   up on a query — caught at the top of [run] to degrade gracefully. *)
exception Degrade of string

let run ?(strategy = Witness.Bfs_shortest) ?(label_of = fun _ -> []) ?max_iterations
    ?initial_knowledge ?(counterexamples_per_iteration = 1)
    ?(on_closure = fun ~model:_ ~compute -> compute ())
    ?(on_check = fun ~product:_ ~formulas:_ ~compute -> compute ()) ?observe:observe_hook
    ?journal ?resume ?snapshot ?(incremental = true) ?(incremental_threshold = 128)
    ?(incremental_debug = false) ?sharding ~(context : Automaton.t) ~property
    ~(legacy : Blackbox.t) () =
  if not (Ctl.is_compositional property) then
    invalid_arg
      (Printf.sprintf
         "Loop.run: property %s is not compositional (Definition 5) — Lemma 5 would not \
          transfer the verdict to the real system"
         (Ctl.to_string property));
  let subset l u = List.for_all (fun n -> Universe.mem u n) l in
  if not (subset legacy.Blackbox.input_signals context.Automaton.outputs) then
    invalid_arg "Loop.run: some legacy input signal is not produced by the context";
  if not (subset legacy.Blackbox.output_signals context.Automaton.inputs) then
    invalid_arg "Loop.run: some legacy output signal is not consumed by the context";
  let weakened =
    Mechaml_logic.Simplify.simplify (Ctl.weaken_for_chaos ~chaos_prop:Chaos.chaos_prop property)
  in
  let bound =
    match max_iterations with
    | Some n -> n
    | None ->
      (legacy.Blackbox.state_bound * (1 lsl List.length legacy.Blackbox.input_signals)) + 1
  in
  let tests_executed = ref 0 and test_steps = ref 0 in
  (* Per-phase wall-clock accumulators; they feed the report's timing columns
     so they are maintained whether or not tracing/metrics are on (two
     [gettimeofday] calls per phase — noise next to the phases themselves). *)
  let closure_seconds = ref 0. and check_seconds = ref 0. and test_seconds = ref 0. in
  let timed cell ?(args = []) ~name f =
    let t0 = Clock.wall () in
    let note () = cell := !cell +. (Clock.wall () -. t0) in
    match Prof.phase ~args ~name f with
    | v ->
      note ();
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      note ();
      Printexc.raise_with_backtrace e bt
  in
  (* Degradation bookkeeping: the freshest model/iteration seen, so that when
     the supervised driver gives up mid-iteration nothing already learned is
     lost from the report. *)
  let latest_model = ref (Synthesis.initial_model legacy) in
  let current_index = ref 0 in
  let latest_records = ref [] in
  let journal_path = match journal with Some _ -> journal | None -> resume in
  let raw_observe =
    match observe_hook with
    | Some f -> f
    | None -> fun ~inputs -> Ok (Observation.observe ~box:legacy ~inputs)
  in
  let observe model inputs =
    incr tests_executed;
    test_steps := !test_steps + List.length inputs;
    Metrics.incr m_tests;
    Metrics.add m_test_steps (List.length inputs);
    timed test_seconds ~name:"loop.query"
      ~args:[ ("steps", Trace.Int (List.length inputs)) ]
      (fun () ->
        match raw_observe ~inputs with
        | Error reason -> raise (Degrade reason)
        | Ok obs ->
          (match journal_path with Some path -> Journal.append ~path obs | None -> ());
          let knowledge_before = Incomplete.knowledge model in
          let model = Incomplete.learn_observation model obs in
          let gained = Incomplete.knowledge model - knowledge_before in
          Metrics.add m_facts gained;
          if gained > 0 then
            Trace.instant ~name:"loop.facts" ~args:[ ("gained", Trace.Int gained) ] ();
          latest_model := model;
          model)
  in
  (* The property's legacy-side propositions must exist in the closure's
     universe from iteration 0 on, even before any state carrying them is
     learned; the context-side ones live in the context automaton. *)
  let legacy_props =
    List.filter (fun p -> not (Universe.mem context.Automaton.props p)) (Ctl.props property)
  in
  let initial_model =
    match initial_knowledge with
    | None -> Synthesis.initial_model legacy
    | Some k ->
      (* Grey-box seeding: the caller vouches for these facts the way the
         loop vouches for observations. *)
      let same l l' = List.sort compare l = List.sort compare l' in
      if not (same k.Incomplete.input_signals legacy.Blackbox.input_signals) then
        invalid_arg "Loop.run: initial_knowledge has a different input alphabet";
      if not (same k.Incomplete.output_signals legacy.Blackbox.output_signals) then
        invalid_arg "Loop.run: initial_knowledge has a different output alphabet";
      if k.Incomplete.initial <> [ legacy.Blackbox.initial_state ] then
        invalid_arg "Loop.run: initial_knowledge has a different initial state";
      k
  in
  (* Crash recovery: fold the journalled observations of the interrupted run
     back into the model, and skip straight past every iteration whose
     refutation the journal already recorded — their learning is in the
     replayed observations, so re-counting them would double-charge the
     iteration budget.  Replayed observations cost no driver executions, so
     they are not counted as tests. *)
  let initial_model, start_index =
    match resume with
    | None -> (initial_model, 0)
    | Some path -> (
      match Journal.load_all ~path with
      | Error { line; message } ->
        invalid_arg
          (Printf.sprintf "Loop.run: cannot resume from %s (line %d: %s)" path line message)
      | Ok (records, torn) ->
        if torn then
          Log.warn (fun m ->
              m "journal %s: dropped a torn final record (interrupted append)" path);
        let observations =
          List.filter_map (function Journal.Obs o -> Some o | Journal.Iter _ -> None) records
        in
        let last_iter =
          List.fold_left
            (fun acc -> function Journal.Iter i -> max acc i | Journal.Obs _ -> acc)
            (-1) records
        in
        Log.info (fun m ->
            m "resuming: replaying %d journalled observation(s) from %s, continuing at \
               iteration %d"
              (List.length observations) path (last_iter + 1));
        ( List.fold_left
            (fun model obs ->
              try Incomplete.learn_observation model obs
              with Invalid_argument msg ->
                invalid_arg
                  (Printf.sprintf
                     "Loop.run: journal %s contradicts the driver or the seeded knowledge \
                      (%s) — was it recorded against a different component?"
                     path msg))
            initial_model observations,
          last_iter + 1 ))
  in
  latest_model := initial_model;
  let last_snapshot = ref (-1) in
  let take_snapshot model =
    match snapshot with
    | Some path when Incomplete.knowledge model > !last_snapshot ->
      Knowledge_io.save_atomic ~path model;
      last_snapshot := Incomplete.knowledge model
    | _ -> ()
  in
  (* Incremental re-verification state, threaded across iterations: the
     chaotic-closure handle (delta closure), the product cache (re-explores
     only pairs whose closure projection changed) and the previous
     iteration's converged checker environment (warm-started fixpoints).
     All three produce results byte-identical to the from-scratch path;
     [incremental_debug] additionally recomputes each stage cold and fails
     on any divergence. *)
  let chaos_inc : Chaos.inc option ref = ref None in
  let prod_inc : Compose.Inc.t option ref = ref None in
  let prev_env : Sat.env option ref = ref None in
  (* Below [incremental_threshold] closure transitions a from-scratch rebuild
     is cheaper than maintaining the caches, so the machinery stays dormant
     until the state space outgrows the gate — and then stays on (the closure
     only grows).  Either path produces identical results. *)
  let inc_live = ref (incremental_threshold <= 0) in
  let delta_edges_total = ref 0 in
  let product_reused_total = ref 0 in
  let seed_hits = ref 0 and seed_total = ref 0 in
  (* The body of one iteration, factored out of the recursion so that the
     per-iteration profiling span closes before the next iteration starts
     (wrapping a recursive call would nest every iteration inside its
     predecessor's span).  Returns [`Done] with the finished run or
     [`Continue] with the enriched model. *)
  let step model index records =
    let closure =
      timed closure_seconds ~name:"loop.closure"
        ~args:[ ("iteration", Trace.Int index) ]
        (fun () ->
          on_closure ~model
            ~compute:(fun () ->
              if not (incremental && !inc_live) then
                Chaos.closure ~label_of ~extra_props:legacy_props model
              else begin
                let inc =
                  match !chaos_inc with
                  | Some inc ->
                    Chaos.update ~debug:incremental_debug inc model;
                    inc
                  | None -> Chaos.inc_closure ~label_of ~extra_props:legacy_props model
                in
                chaos_inc := Some inc;
                Chaos.auto inc
              end))
    in
    if incremental then begin
      if (not !inc_live) && Automaton.num_transitions closure >= incremental_threshold then
        inc_live := true;
      if !inc_live then begin
        (* When the [on_closure] hook replayed a memoized closure (or the
           gate just flipped), [compute] never ran the handle — rebuild it
           around the existing automaton, keeping the previous handle so the
           dirty delta stays exact. *)
        let inc =
          match !chaos_inc with
          | Some inc when Chaos.auto inc == closure -> inc
          | prev -> Chaos.adopt ~label_of ~extra_props:legacy_props ~prev model closure
        in
        chaos_inc := Some inc;
        delta_edges_total := !delta_edges_total + Chaos.delta_edges inc
      end
    end;
    (* Equation (7): φ ∧ ¬δ.  The property is checked first so that a
       genuine integration conflict surfaces as a property counterexample
       (the paper's fast conflict detection, Listing 1.4) rather than as
       one of the deadlocks the chaotic closure also induces. *)
    let formulas = [ weakened; Ctl.deadlock_free ] in
    let product_lazy, product_states, outcome =
      timed check_seconds ~name:"loop.check"
        ~args:[ ("iteration", Trace.Int index) ]
        (fun () ->
          match sharding with
          | Some scfg ->
            (* Sharded, out-of-core check: the product is explored in
               partitioned CSR segments and the verdict computed by the
               sharded fixpoint engine — byte-identical to the materialized
               path for any shard count.  The materialized product is only
               built lazily, when a violation needs its witness machinery
               (projection, provenance, extra counterexamples) — so proved
               iterations never allocate the full state space in one piece.
               The incremental product/warm-start machinery is skipped: the
               sharded fixpoints recompute cold, with identical results. *)
            let product_lazy = lazy (Compose.parallel context closure) in
            let counted = ref None in
            let outcome =
              on_check ~product:closure ~formulas
                ~compute:(fun () ->
                  match scfg.Mechaml_ts.Shard.distribution with
                  | Some _ ->
                    (* Distributed: shard segments live in worker processes;
                       the coordinator's discovery-order merge keeps every
                       verdict byte-identical to the in-process engines. *)
                    let dp = Mechaml_dist.Distshard.explore ~config:scfg context closure in
                    Fun.protect
                      ~finally:(fun () -> Mechaml_dist.Distshard.close dp)
                      (fun () ->
                        counted := Some (Mechaml_dist.Distshard.num_states dp);
                        let senv = Mechaml_dist.Distsat.create dp in
                        if
                          List.for_all (Mechaml_dist.Distsat.holds_initially senv) formulas
                        then Checker.Holds
                        else
                          Checker.check_conjunction_env ~strategy
                            (Sat.create (Lazy.force product_lazy).Compose.auto)
                            formulas)
                  | None ->
                    let sp = Mechaml_ts.Shard.explore ~config:scfg context closure in
                    Fun.protect
                      ~finally:(fun () -> Mechaml_ts.Shard.close sp)
                      (fun () ->
                        counted := Some (Mechaml_ts.Shard.num_states sp);
                        let senv = Mechaml_mc.Shardsat.create sp in
                        if List.for_all (Mechaml_mc.Shardsat.holds_initially senv) formulas
                        then Checker.Holds
                        else
                          Checker.check_conjunction_env ~strategy
                            (Sat.create (Lazy.force product_lazy).Compose.auto)
                            formulas))
            in
            let states =
              match !counted with
              | Some n -> n
              | None -> Automaton.num_states (Lazy.force product_lazy).Compose.auto
            in
            (product_lazy, states, outcome)
          | None ->
          let product, prod_stats =
            match (incremental && !inc_live, !chaos_inc) with
            | true, Some inc ->
              let pinc =
                match !prod_inc with
                | Some p -> p
                | None ->
                  let p = Compose.Inc.create context in
                  prod_inc := Some p;
                  p
              in
              (* Core closure copies keep their indices across updates; only
                 [s_∀]/[s_δ] shift when the core grows, so they key by
                 distance from the end. *)
              let n = Automaton.num_states closure in
              let stable_key r = if r >= n - 2 then r - n else r in
              let resolve k = if k < 0 then n + k else k in
              let p, stats =
                Compose.Inc.parallel pinc ~right:closure ~dirty:(Chaos.dirty_states inc)
                  ~stable_key ~resolve
              in
              product_reused_total := !product_reused_total + stats.Compose.Inc.reused;
              (p, Some stats)
            | _ -> (Compose.parallel context closure, None)
          in
          let env_used = ref None in
          let outcome =
            on_check ~product:product.Compose.auto ~formulas
              ~compute:(fun () ->
                let env =
                  match (prod_stats, !prev_env) with
                  | Some stats, Some prev ->
                    Sat.create_warm ~debug:incremental_debug ~prev
                      ~old_of:stats.Compose.Inc.old_of ~dirty:stats.Compose.Inc.dirty
                      product.Compose.auto
                  | _ -> Sat.create product.Compose.auto
                in
                env_used := Some env;
                Checker.check_conjunction_env ~strategy env formulas)
          in
          (match !env_used with
          | Some env ->
            (match Sat.warm_stats env with
            | Some (h, t) ->
              seed_hits := !seed_hits + h;
              seed_total := !seed_total + t
            | None -> ())
          | None -> ());
          (* A memoized check verdict leaves no converged environment behind;
             the next iteration cold-starts its fixpoints.  Environments from
             below the size gate are dropped too — their product was built
             without the pair cache, so no [old_of] map relates its states to
             the next product's. *)
          prev_env := (if incremental && !inc_live then !env_used else None);
          (Lazy.from_val product, Automaton.num_states product.Compose.auto, outcome))
    in
    let base =
      {
        index;
        model_states = Incomplete.num_states model;
        model_knowledge = Incomplete.knowledge model;
        closure_states = Automaton.num_states closure;
        product_states;
        counterexample = None;
        counterexample_length = 0;
        fast_real = false;
        test = None;
        probes = 0;
      }
    in
    match outcome with
    | Checker.Holds ->
      Log.info (fun m -> m "iteration %d: property proved" index);
      `Done (Proved, List.rev (base :: records), model)
    | Checker.Violated { formula; witness; explanation; complete } ->
      let product = Lazy.force product_lazy in
      let kind = if Ctl.equal formula Ctl.deadlock_free then Deadlock else Property in
      Log.info (fun m ->
          m "iteration %d: %s counterexample of length %d (%s)" index
            (match kind with Deadlock -> "deadlock" | Property -> "property")
            (Run.length witness) explanation);
      let proj = project_counterexample product witness in
      let base =
        {
          base with
          counterexample = Some (kind, witness);
          counterexample_length = Run.length witness;
        }
      in
      let knowledge_before = Incomplete.knowledge model in
      let finish_real ?(model = model) ~confirmed ~record () =
        `Done
          ( Real_violation { kind; formula; witness; product; confirmed_by_test = confirmed },
            List.rev (record :: records),
            model )
      in
      (* Residual-evidence analysis at the final state: the witness claims
         the run cannot be extended there (a deadlock, or a blocked
         maximal run discharging a bounded obligation).  Decide from known
         facts — or by probing the component — whether the context ∥
         legacy composition really has no joint move in that state.  All
         unknown candidates are probed (each probe is a learning step), so
         a [`Refuted] without new knowledge is impossible for
         blocking-based evidence. *)
      let analyse_final model ~final_core ~prefix_inputs =
        let c_end = Compose.left_state product (Run.final_state witness) in
        let cands = candidates_at context legacy c_end in
        let rec go model probes refuted = function
          | [] -> (model, probes, if refuted then `Refuted else `Confirmed)
          | cand :: rest -> (
            match candidate_status model ~state:final_core cand with
            | Known_impossible -> go model probes refuted rest
            | Known_compatible -> go model probes true rest
            | Unknown ->
              let a, _ = cand in
              let model = observe model (prefix_inputs @ [ a ]) in
              let probes = probes + 1 in
              let refuted =
                refuted
                || candidate_status model ~state:final_core cand = Known_compatible
              in
              go model probes refuted rest)
        in
        go model 0 false cands
      in
      (* Batched counterexamples (the paper's future-work improvement):
         before the next model-checking round, also test the other nearest
         violations of the same property and merge what they teach. *)
      let learn_extras model =
        if counterexamples_per_iteration <= 1 then model
        else
          List.fold_left
            (fun model extra ->
              if Run.final_state extra = Run.final_state witness then model
              else begin
                let proj = project_counterexample product extra in
                if all_steps_known model proj then model
                else observe model proj.step_inputs
              end)
            model
            (Checker.more_witnesses
               ~limit:(counterexamples_per_iteration - 1)
               product.Compose.auto formula)
      in
      let continue_or_fail model' record =
        if Incomplete.knowledge model' <= knowledge_before then
          failwith
            (Printf.sprintf
               "Loop.run: no progress on a counterexample for %s — the witness carries a \
                nested temporal obligation the testing step cannot validate; use safety \
                (AG of a state predicate) or bounded-response properties"
               (Ctl.to_string formula))
        else `Continue (learn_extras model', record :: records)
      in
      if all_steps_known model proj then begin
        (* The whole synthesized part of the counterexample is learned —
           hence real — behaviour (fast conflict detection). *)
        if complete then
          finish_real ~confirmed:false ~record:{ base with fast_real = true } ()
        else begin
          let final_core =
            match Chaos.origin (List.nth proj.closure_states (Run.length witness)) with
            | Chaos.Core s -> s
            | Chaos.Chaotic -> assert false (* all_steps_known excludes chaos *)
          in
          let model', probes, status =
            analyse_final model ~final_core ~prefix_inputs:proj.step_inputs
          in
          let record = { base with fast_real = probes = 0; probes } in
          match status with
          | `Confirmed -> finish_real ~model:model' ~confirmed:(probes > 0) ~record ()
          | `Refuted -> continue_or_fail model' record
        end
      end
      else
        (* Counterexample reaches into chaos: run it as a test under
           deterministic replay (Sections 4.2 / 5). *)
        Prof.phase ~name:"loop.test" (fun () ->
            let model' = observe model proj.step_inputs in
            (* Reproduced iff the component produced exactly the expected
               outputs for every fed input: walk the freshly learned model
               (which now contains the observation) and compare outputs.  The
               expected closure states cannot be compared — they are chaotic. *)
            let reproduced =
              let rec walk state ins outs =
                match (ins, outs) with
                | [], [] -> true
                | i :: ins', o :: outs' -> (
                  match Incomplete.known_response model' ~state ~inputs:i with
                  | Some (b, d) when b = List.sort_uniq compare o -> walk d ins' outs'
                  | _ -> false)
                | _ -> false
              in
              match model'.Incomplete.initial with
              | [ q ] -> walk q proj.step_inputs proj.step_outputs
              | _ -> false
            in
            let gained = Incomplete.knowledge model' - knowledge_before in
            let test =
              Some { inputs_fed = proj.step_inputs; reproduced; knowledge_gained = gained }
            in
            if reproduced then begin
              if complete then
                finish_real ~model:model' ~confirmed:true ~record:{ base with test } ()
              else begin
                (* The trace reproduced; find the real final state by walking
                   the learned model, then validate the residual claim there. *)
                let final_core =
                  let rec walk state = function
                    | [] -> state
                    | i :: ins -> (
                      match Incomplete.known_response model' ~state ~inputs:i with
                      | Some (_, d) -> walk d ins
                      | None -> state)
                  in
                  match model'.Incomplete.initial with
                  | [ q ] -> walk q proj.step_inputs
                  | _ -> assert false
                in
                let model'', probes, status =
                  analyse_final model' ~final_core ~prefix_inputs:proj.step_inputs
                in
                let record = { base with test; probes } in
                match status with
                | `Confirmed -> finish_real ~model:model'' ~confirmed:true ~record ()
                | `Refuted -> continue_or_fail model'' record
              end
            end
            else begin
              assert (gained > 0);
              `Continue (learn_extras model', { base with test } :: records)
            end)
  in
  let rec iterate model index records =
    latest_model := model;
    current_index := index;
    latest_records := records;
    take_snapshot model;
    if index >= bound then (Exhausted { iterations = index }, List.rev records, model)
    else begin
      Metrics.incr m_iterations;
      match
        Prof.phase ~name:"loop.iteration"
          ~args:[ ("iteration", Trace.Int index) ]
          (fun () -> step model index records)
      with
      | `Done (verdict, iterations, final) -> (verdict, iterations, final)
      | `Continue (model', records') ->
        (* The iteration's counterexample was refuted and its learning is
           journalled above this record, so a resumed run can skip it. *)
        (match journal_path with
        | Some path -> Journal.append_iteration ~path index
        | None -> ());
        iterate model' (index + 1) records'
    end
  in
  (* Graceful degradation (the robustness analogue of Theorem 1): when the
     supervisor gives up, the chaotic closure of everything learned so far is
     still a safe abstraction of the real component, so any formula that
     holds on context ∥ closure is {e proved} for the real composition even
     though the driver is gone. *)
  let degrade reason =
    let model = !latest_model in
    let closure =
      timed closure_seconds ~name:"loop.closure" (fun () ->
          Chaos.closure ~label_of ~extra_props:legacy_props model)
    in
    let proved_on_closure, unknown_for_real =
      timed check_seconds ~name:"loop.check" (fun () ->
          let product = Compose.parallel context closure in
          List.partition (Checker.holds product.Compose.auto) [ weakened; Ctl.deadlock_free ])
    in
    Log.warn (fun m ->
        m "degrading after iteration %d: %s (%d of %d obligations proved on the closure)"
          !current_index reason (List.length proved_on_closure) 2);
    ( Degraded
        {
          reason;
          at_iteration = !current_index;
          model_states = Incomplete.num_states model;
          knowledge = Incomplete.knowledge model;
          closure_states = Automaton.num_states closure;
          proved_on_closure;
          unknown_for_real;
        },
      List.rev !latest_records,
      model )
  in
  let verdict, iterations, final_model =
    try iterate initial_model start_index [] with Degrade reason -> degrade reason
  in
  take_snapshot final_model;
  {
    verdict;
    iterations;
    final_model;
    tests_executed = !tests_executed;
    test_steps_executed = !test_steps;
    states_learned = Incomplete.num_states final_model;
    legacy_state_bound = legacy.Blackbox.state_bound;
    closure_seconds = !closure_seconds;
    check_seconds = !check_seconds;
    test_seconds = !test_seconds;
    closure_delta_edges = !delta_edges_total;
    product_states_reused = !product_reused_total;
    sat_seed_hit_rate =
      (if !seed_total = 0 then 0. else float_of_int !seed_hits /. float_of_int !seed_total);
  }

let pp_iteration ppf (it : iteration) =
  Format.fprintf ppf
    "iter %d: model %d states / %d facts; closure %d states; product %d states; %s%s%s"
    it.index it.model_states it.model_knowledge it.closure_states it.product_states
    (match it.counterexample with
    | None -> "proved"
    | Some (Deadlock, _) -> Printf.sprintf "deadlock CE (len %d)" it.counterexample_length
    | Some (Property, _) -> Printf.sprintf "property CE (len %d)" it.counterexample_length)
    (if it.fast_real then "; fast-real" else "")
    (match it.test with
    | None -> ""
    | Some t ->
      Printf.sprintf "; test %s, +%d facts"
        (if t.reproduced then "reproduced" else "diverged")
        t.knowledge_gained)

let pp_result ppf (r : result) =
  Format.fprintf ppf "@[<v>";
  List.iter (fun it -> Format.fprintf ppf "%a@," pp_iteration it) r.iterations;
  (match r.verdict with
  | Proved ->
    Format.fprintf ppf "verdict: PROVED after %d iterations (learned %d/%d states)@,"
      (List.length r.iterations) r.states_learned r.legacy_state_bound
  | Real_violation { kind; confirmed_by_test; _ } ->
    Format.fprintf ppf "verdict: REAL %s (%s)@,"
      (match kind with Deadlock -> "deadlock" | Property -> "property violation")
      (if confirmed_by_test then "confirmed by test" else "fast conflict detection")
  | Exhausted { iterations } ->
    Format.fprintf ppf "verdict: iteration budget exhausted after %d iterations@," iterations
  | Degraded { reason; at_iteration; model_states; knowledge; proved_on_closure; unknown_for_real; _ }
    ->
    Format.fprintf ppf
      "verdict: DEGRADED at iteration %d — %s@,proved so far (safe on the chaotic closure \
       of %d states / %d facts): %s@,still unknown for the real component: %s@,"
      at_iteration reason model_states knowledge
      (match proved_on_closure with
      | [] -> "nothing yet"
      | fs -> String.concat "; " (List.map Ctl.to_string fs))
      (match unknown_for_real with
      | [] -> "nothing"
      | fs -> String.concat "; " (List.map Ctl.to_string fs)));
  Format.fprintf ppf "tests: %d (%d steps)@]" r.tests_executed r.test_steps_executed
