(** The chaotic automaton and chaotic closure (Definitions 8–9, Figures 3–4).

    The chaotic automaton is the maximal behaviour over given signal sets: a
    state [s_∀] that accepts every interaction and a state [s_δ] that blocks
    every interaction, both initial.  The chaotic closure [chaos(M)] of an
    incomplete automaton doubles every known state into an [(s,0)] copy (no
    further extension assumed — refusals possible) and an [(s,1)] copy (every
    extension assumed — all not-explicitly-excluded interactions lead to
    chaos).  By Theorem 1, [chaos(M)] is a safe abstraction ([M_r ⊑
    chaos(M)]) of any component [M_r] that [M] observation-conforms to.

    Deviation from the letter of Definition 9, justified by the paper's
    determinism assumption (Section 4.3): interactions [(A, B)] for which the
    response to [A] is already known (with a different [B]), or whose input
    set [A] is recorded as refused, do not lead to chaos — an
    input-deterministic component cannot exhibit them.  This is what makes
    every failed test strictly shrink the unknown region (Theorem 2). *)

val chaos_prop : string
(** The fresh proposition [p'] labelling the chaotic states (Section 2.7).
    Formulas must be rewritten with {!Mechaml_logic.Ctl.weaken_for_chaos}
    before checking an abstraction that embeds chaos states. *)

val s_all : string
(** State name of [s_∀]. *)

val s_delta : string
(** State name of [s_δ]. *)

val closed_suffix : string
(** Suffix distinguishing the [(s,0)] copies; the [(s,1)] copies keep the
    original state name. *)

val max_alphabet : int
(** Largest supported [|I| + |O|] (currently 30): the closure materializes
    [℘(I) × ℘(O)] transitions out of every chaotic state, so the alphabet
    width is capped to bound that blow-up.  Interactions are generated
    directly as bit patterns against the interned interaction table, which
    is what lets the cap sit at the {!Mechaml_util.Bitset.all_subsets}
    guard rather than the former 16. *)

val subsets : string list -> string list list
(** Power set of a name list, in the closure's interaction enumeration
    order (increasing bit pattern over list positions).  Debug/inspection
    helper — the closure itself never materializes name lists. *)

val chaotic_automaton :
  name:string -> inputs:string list -> outputs:string list -> Mechaml_ts.Automaton.t
(** Definition 8 / Fig. 3.  Raises [Invalid_argument] when
    [|I| + |O| > max_alphabet] — the construction enumerates
    [℘(I) × ℘(O)]. *)

val closure :
  ?label_of:(string -> string list) ->
  ?extra_props:string list ->
  Incomplete.t ->
  Mechaml_ts.Automaton.t
(** [chaos(M)] (Definition 9 with the determinism sharpening above).
    [label_of] assigns atomic propositions to each known state name (default:
    none); the chaotic states are labelled with {!chaos_prop} only.
    [extra_props] declares propositions in the universe even when no learned
    state carries them yet — the synthesis loop seeds it with the property's
    legacy-side propositions so that checking is well-defined from iteration
    0 on.  Raises [Invalid_argument] when a state is named like a chaos state
    or when the signal alphabet is too large. *)

type origin =
  | Core of string  (** copy of a known state (either copy), original name *)
  | Chaotic        (** [s_∀] or [s_δ] *)

val origin : string -> origin
(** Classify a closure state name. *)

(** {2 Incremental closure}

    The synthesis loop re-derives [chaos(M)] every iteration even though one
    iteration changes only a handful of facts.  An {!inc} handle keeps the
    construction's indexes (state positions, known/refused input patterns,
    adjacency rows) alive so that {!update} patches the previous closure:
    only the copies of states that gained a fact are rebuilt (a known edge
    appears, escapes to [s_∀]/[s_δ] disappear), everything else is shared —
    including the CSR index, spliced via {!Mechaml_ts.Automaton.patch}.  The
    result is structurally identical to a fresh {!closure} (state numbering,
    adjacency order, labels), which keeps witnesses, products and therefore
    verdicts byte-for-byte independent of incremental mode. *)

type inc
(** Mutable incremental-closure handle for one growing incomplete model. *)

val inc_closure :
  ?label_of:(string -> string list) -> ?extra_props:string list -> Incomplete.t -> inc
(** Build the closure from scratch (exactly {!closure}) and wrap it in a
    handle for later {!update}s. *)

val update : ?debug:bool -> inc -> Incomplete.t -> unit
(** Patch the handle's closure to match the grown model.  The model must be
    the same one the handle was built from, extended append-only (as
    {!Incomplete.add_transition}/[add_refusal] do — the loop's only mutation
    path); the delta is recovered from element counts.  With [debug] a fresh
    closure is also built and compared structurally — [Failure] on any
    divergence.  Raises like {!closure} on invalid new state names. *)

val adopt :
  ?label_of:(string -> string list) ->
  ?extra_props:string list ->
  prev:inc option ->
  Incomplete.t ->
  Mechaml_ts.Automaton.t ->
  inc
(** Rebuild a handle around an existing closure automaton of the given model
    — the memo-cache path, where a hook returned the automaton without
    running the construction.  With [prev] (the handle for the model before
    this iteration) the dirty-state delta is still computed exactly, so
    product patching composes with cache replay; without it every state is
    conservatively dirty.  [label_of]/[extra_props] are only consulted when
    [prev] is [None]. *)

val auto : inc -> Mechaml_ts.Automaton.t
(** The handle's current closure. *)

val delta_edges : inc -> int
(** Transitions rebuilt by the last {!update} (0 after a fresh build, an
    {!adopt}, or an empty delta). *)

val total_delta_edges : inc -> int
(** Sum of {!delta_edges} over the handle's lifetime. *)

val dirty_states : inc -> int list
(** Closure states whose adjacency rows changed in the last {!update} (or
    every core copy after a fresh build / conservative {!adopt}), sorted.
    Indices of core copies are stable across updates, which is what lets
    {!Mechaml_ts.Compose.Inc} key its pair cache on them. *)

val grew : inc -> bool
(** The last {!update} added core states (shifting [s_∀]/[s_δ]). *)
