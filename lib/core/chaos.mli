(** The chaotic automaton and chaotic closure (Definitions 8–9, Figures 3–4).

    The chaotic automaton is the maximal behaviour over given signal sets: a
    state [s_∀] that accepts every interaction and a state [s_δ] that blocks
    every interaction, both initial.  The chaotic closure [chaos(M)] of an
    incomplete automaton doubles every known state into an [(s,0)] copy (no
    further extension assumed — refusals possible) and an [(s,1)] copy (every
    extension assumed — all not-explicitly-excluded interactions lead to
    chaos).  By Theorem 1, [chaos(M)] is a safe abstraction ([M_r ⊑
    chaos(M)]) of any component [M_r] that [M] observation-conforms to.

    Deviation from the letter of Definition 9, justified by the paper's
    determinism assumption (Section 4.3): interactions [(A, B)] for which the
    response to [A] is already known (with a different [B]), or whose input
    set [A] is recorded as refused, do not lead to chaos — an
    input-deterministic component cannot exhibit them.  This is what makes
    every failed test strictly shrink the unknown region (Theorem 2). *)

val chaos_prop : string
(** The fresh proposition [p'] labelling the chaotic states (Section 2.7).
    Formulas must be rewritten with {!Mechaml_logic.Ctl.weaken_for_chaos}
    before checking an abstraction that embeds chaos states. *)

val s_all : string
(** State name of [s_∀]. *)

val s_delta : string
(** State name of [s_δ]. *)

val closed_suffix : string
(** Suffix distinguishing the [(s,0)] copies; the [(s,1)] copies keep the
    original state name. *)

val max_alphabet : int
(** Largest supported [|I| + |O|] (currently 20): the closure materializes
    [℘(I) × ℘(O)] transitions out of every chaotic state, so the alphabet
    width is capped to bound that blow-up.  Interactions are generated
    directly as bit patterns against the interned interaction table, which
    is what lets the cap sit at the {!Mechaml_util.Bitset.all_subsets}
    guard rather than the former 16. *)

val subsets : string list -> string list list
(** Power set of a name list, in the closure's interaction enumeration
    order (increasing bit pattern over list positions).  Debug/inspection
    helper — the closure itself never materializes name lists. *)

val chaotic_automaton :
  name:string -> inputs:string list -> outputs:string list -> Mechaml_ts.Automaton.t
(** Definition 8 / Fig. 3.  Raises [Invalid_argument] when
    [|I| + |O| > max_alphabet] — the construction enumerates
    [℘(I) × ℘(O)]. *)

val closure :
  ?label_of:(string -> string list) ->
  ?extra_props:string list ->
  Incomplete.t ->
  Mechaml_ts.Automaton.t
(** [chaos(M)] (Definition 9 with the determinism sharpening above).
    [label_of] assigns atomic propositions to each known state name (default:
    none); the chaotic states are labelled with {!chaos_prop} only.
    [extra_props] declares propositions in the universe even when no learned
    state carries them yet — the synthesis loop seeds it with the property's
    legacy-side propositions so that checking is well-defined from iteration
    0 on.  Raises [Invalid_argument] when a state is named like a chaos state
    or when the signal alphabet is too large. *)

type origin =
  | Core of string  (** copy of a known state (either copy), original name *)
  | Chaotic        (** [s_∀] or [s_δ] *)

val origin : string -> origin
(** Classify a closure state name. *)
