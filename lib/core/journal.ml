module Observation = Mechaml_legacy.Observation

let header = "mechaml-journal 1"

let sentinel = ";end"

type error = { line : int; message : string }

type record = Obs of Observation.t | Iter of int

exception Error of error

let fail line message = raise (Error { line; message })

let signals names = String.concat "," names

let line_of (obs : Observation.t) =
  let buf = Buffer.create 128 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "obs %s" obs.Observation.initial_state;
  List.iter
    (fun (s : Observation.step) ->
      add " | %s : %s / %s -> %s" s.Observation.pre_state (signals s.Observation.inputs)
        (signals s.Observation.outputs) s.Observation.post_state)
    obs.Observation.steps;
  (match obs.Observation.refused with
  | None -> ()
  | Some (state, inputs) -> add " | refuse %s : %s" state (signals inputs));
  add " %s" sentinel;
  Buffer.contents buf

let iter_line_of index = Printf.sprintf "iter %d refuted %s" index sentinel

let append_line ~path line =
  let fresh = (not (Sys.file_exists path)) || Unix.((stat path).st_size) = 0 in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      if fresh then output_string oc (header ^ "\n");
      output_string oc (line ^ "\n");
      flush oc)

let append ~path obs = append_line ~path (line_of obs)

let append_iteration ~path index = append_line ~path (iter_line_of index)

(* -- parsing --------------------------------------------------------------- *)

let split_signals = function "" -> [] | s -> String.split_on_char ',' s

let parse_segment lineno segment =
  match String.split_on_char ' ' segment |> List.filter (fun t -> t <> "") with
  | [ "refuse"; state; ":"; ins ] -> `Refuse (state, split_signals ins)
  | [ "refuse"; state; ":" ] -> `Refuse (state, [])
  | [ pre; ":"; ins; "/"; outs; "->"; post ] ->
    `Step
      {
        Observation.pre_state = pre;
        inputs = split_signals ins;
        outputs = split_signals outs;
        post_state = post;
      }
  | [ pre; ":"; "/"; outs; "->"; post ] ->
    `Step
      { Observation.pre_state = pre; inputs = []; outputs = split_signals outs; post_state = post }
  | [ pre; ":"; ins; "/"; "->"; post ] ->
    `Step
      { Observation.pre_state = pre; inputs = split_signals ins; outputs = []; post_state = post }
  | [ pre; ":"; "/"; "->"; post ] ->
    `Step { Observation.pre_state = pre; inputs = []; outputs = []; post_state = post }
  | _ -> fail lineno (Printf.sprintf "malformed observation segment %S" (String.trim segment))

let parse_obs_line lineno body =
  match String.split_on_char '|' body with
  | [] -> fail lineno "empty observation record"
  | first :: segments ->
    let initial_state =
      match String.trim first with
      | "" -> fail lineno "missing initial state"
      | s -> s
    in
    let steps, refused =
      List.fold_left
        (fun (steps, refused) segment ->
          if refused <> None then fail lineno "refusal must be the final segment";
          match parse_segment lineno segment with
          | `Step s -> (s :: steps, refused)
          | `Refuse r -> (steps, Some r))
        ([], None) segments
    in
    { Observation.initial_state; steps = List.rev steps; refused }

let parse_line lineno line =
  let starts prefix =
    let p = String.length prefix in
    String.length line >= p && String.sub line 0 p = prefix
  in
  if starts "obs " then
    Obs (parse_obs_line lineno (String.sub line 4 (String.length line - 4)))
  else if starts "iter " then
    match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
    | [ "iter"; index; "refuted" ] -> (
      match int_of_string_opt index with
      | Some i when i >= 0 -> Iter i
      | _ -> fail lineno (Printf.sprintf "bad iteration index %S" index))
    | _ -> fail lineno "malformed 'iter' record"
  else fail lineno "expected an 'obs ' or 'iter ' record"

let complete line =
  let n = String.length line and s = String.length sentinel in
  n >= s && String.sub line (n - s) s = sentinel

let strip_sentinel line =
  String.trim (String.sub line 0 (String.length line - String.length sentinel))

let parse text =
  match String.split_on_char '\n' text with
  | [] -> fail 1 "empty journal"
  | h :: rest when String.trim h = header ->
    (* a crash can tear at most the final record; drop trailing blank lines so
       the physically-last non-empty line is the only tear candidate *)
    let numbered =
      List.mapi (fun i line -> (i + 2, String.trim line)) rest
      |> List.filter (fun (_, line) -> line <> "")
    in
    let rec go obs = function
      | [] -> (List.rev obs, false)
      | [ (lineno, line) ] ->
        if complete line then
          (List.rev (parse_line lineno (strip_sentinel line) :: obs), false)
        else (List.rev obs, true)
      | (lineno, line) :: rest ->
        if complete line then go (parse_line lineno (strip_sentinel line) :: obs) rest
        else fail lineno "torn record before end of journal"
    in
    go [] numbered
  | h :: _ -> fail 1 (Printf.sprintf "bad journal header %S (expected %S)" (String.trim h) header)

let parse text =
  match parse text with
  | v -> Ok v
  | exception Error e -> Stdlib.Error e

let load_all ~path =
  if not (Sys.file_exists path) then Stdlib.Error { line = 0; message = "no such file" }
  else
    let ic = open_in path in
    let text =
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          really_input_string ic (in_channel_length ic))
    in
    parse text

let load ~path =
  Result.map
    (fun (records, torn) ->
      (List.filter_map (function Obs o -> Some o | Iter _ -> None) records, torn))
    (load_all ~path)
