module Observation = Mechaml_legacy.Observation

let header = "mechaml-journal 1"

let sentinel = ";end"

type error = { line : int; message : string }

type record = Obs of Observation.t | Iter of int

exception Error of error

let fail line message = raise (Error { line; message })

(* -- generic line journal --------------------------------------------------- *)

(* The crash-safety discipline — a versioned header, one flushed
   self-delimiting line per record, a [;end] sentinel so a torn final line
   is recognised and dropped — is independent of what the lines say.  The
   observation journal below and the verification daemon's write-ahead log
   ({!Mechaml_serve}) both sit on this module. *)
module Lines = struct
  let complete line =
    let n = String.length line and s = String.length sentinel in
    n >= s && String.sub line (n - s) s = sentinel

  let strip line =
    String.trim (String.sub line 0 (String.length line - String.length sentinel))

  let append ~path ~header line =
    if String.contains line '\n' then
      invalid_arg "Journal.Lines.append: record must be a single line";
    let fresh = (not (Sys.file_exists path)) || Unix.((stat path).st_size) = 0 in
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        if fresh then output_string oc (header ^ "\n");
        output_string oc (line ^ " " ^ sentinel ^ "\n");
        flush oc)

  (* A persistent handle for hot-path journals (the daemon's WAL appends
     several records per job): same record format and same flush-per-record
     crash guarantee, without an open/close round trip per line. *)
  type appender = out_channel

  let appender ~path ~header =
    let fresh = (not (Sys.file_exists path)) || Unix.((stat path).st_size) = 0 in
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    if fresh then begin
      output_string oc (header ^ "\n");
      flush oc
    end;
    oc

  let append_line oc line =
    if String.contains line '\n' then
      invalid_arg "Journal.Lines.append_line: record must be a single line";
    output_string oc (line ^ " " ^ sentinel ^ "\n");
    flush oc

  let close_appender = close_out

  let of_text ~header:expected text =
    match String.split_on_char '\n' text with
    | h :: rest when String.trim h = expected ->
      (* a crash can tear at most the final record; drop trailing blank lines
         so the physically-last non-empty line is the only tear candidate *)
      let numbered =
        List.mapi (fun i line -> (i + 2, String.trim line)) rest
        |> List.filter (fun (_, line) -> line <> "")
      in
      let rec go acc = function
        | [] -> (List.rev acc, false)
        | [ (lineno, line) ] ->
          if complete line then (List.rev ((lineno, strip line) :: acc), false)
          else (List.rev acc, true)
        | (lineno, line) :: rest ->
          if complete line then go ((lineno, strip line) :: acc) rest
          else fail lineno "torn record before end of journal"
      in
      go [] numbered
    | h :: _ ->
      fail 1
        (Printf.sprintf "bad journal header %S (expected %S)" (String.trim h) expected)
    | [] -> fail 1 "empty journal"

  let load ~path ~header =
    if not (Sys.file_exists path) then Stdlib.Error { line = 0; message = "no such file" }
    else begin
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match of_text ~header text with
      | v -> Ok v
      | exception Error e -> Stdlib.Error e
    end
end

let signals names = String.concat "," names

let body_of (obs : Observation.t) =
  let buf = Buffer.create 128 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "obs %s" obs.Observation.initial_state;
  List.iter
    (fun (s : Observation.step) ->
      add " | %s : %s / %s -> %s" s.Observation.pre_state (signals s.Observation.inputs)
        (signals s.Observation.outputs) s.Observation.post_state)
    obs.Observation.steps;
  (match obs.Observation.refused with
  | None -> ()
  | Some (state, inputs) -> add " | refuse %s : %s" state (signals inputs));
  Buffer.contents buf

let line_of obs = body_of obs ^ " " ^ sentinel

let append ~path obs = Lines.append ~path ~header (body_of obs)

let append_iteration ~path index =
  Lines.append ~path ~header (Printf.sprintf "iter %d refuted" index)

(* -- parsing --------------------------------------------------------------- *)

let split_signals = function "" -> [] | s -> String.split_on_char ',' s

let parse_segment lineno segment =
  match String.split_on_char ' ' segment |> List.filter (fun t -> t <> "") with
  | [ "refuse"; state; ":"; ins ] -> `Refuse (state, split_signals ins)
  | [ "refuse"; state; ":" ] -> `Refuse (state, [])
  | [ pre; ":"; ins; "/"; outs; "->"; post ] ->
    `Step
      {
        Observation.pre_state = pre;
        inputs = split_signals ins;
        outputs = split_signals outs;
        post_state = post;
      }
  | [ pre; ":"; "/"; outs; "->"; post ] ->
    `Step
      { Observation.pre_state = pre; inputs = []; outputs = split_signals outs; post_state = post }
  | [ pre; ":"; ins; "/"; "->"; post ] ->
    `Step
      { Observation.pre_state = pre; inputs = split_signals ins; outputs = []; post_state = post }
  | [ pre; ":"; "/"; "->"; post ] ->
    `Step { Observation.pre_state = pre; inputs = []; outputs = []; post_state = post }
  | _ -> fail lineno (Printf.sprintf "malformed observation segment %S" (String.trim segment))

let parse_obs_line lineno body =
  match String.split_on_char '|' body with
  | [] -> fail lineno "empty observation record"
  | first :: segments ->
    let initial_state =
      match String.trim first with
      | "" -> fail lineno "missing initial state"
      | s -> s
    in
    let steps, refused =
      List.fold_left
        (fun (steps, refused) segment ->
          if refused <> None then fail lineno "refusal must be the final segment";
          match parse_segment lineno segment with
          | `Step s -> (s :: steps, refused)
          | `Refuse r -> (steps, Some r))
        ([], None) segments
    in
    { Observation.initial_state; steps = List.rev steps; refused }

let parse_line lineno line =
  let starts prefix =
    let p = String.length prefix in
    String.length line >= p && String.sub line 0 p = prefix
  in
  if starts "obs " then
    Obs (parse_obs_line lineno (String.sub line 4 (String.length line - 4)))
  else if starts "iter " then
    match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
    | [ "iter"; index; "refuted" ] -> (
      match int_of_string_opt index with
      | Some i when i >= 0 -> Iter i
      | _ -> fail lineno (Printf.sprintf "bad iteration index %S" index))
    | _ -> fail lineno "malformed 'iter' record"
  else fail lineno "expected an 'obs ' or 'iter ' record"

let load_all ~path =
  match Lines.load ~path ~header with
  | Stdlib.Error _ as e -> e
  | Ok (lines, torn) -> (
    match List.map (fun (lineno, line) -> parse_line lineno line) lines with
    | records -> Ok (records, torn)
    | exception Error e -> Stdlib.Error e)

let load ~path =
  Result.map
    (fun (records, torn) ->
      (List.filter_map (function Obs o -> Some o | Iter _ -> None) records, torn))
    (load_all ~path)
