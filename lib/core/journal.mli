(** Append-only observation journal — crash-safe persistence of every test
    execution as it happens.

    Each admitted observation costs a real driver execution; if the process
    dies mid-campaign those executions must not be lost.  The journal writes
    one self-delimiting line per observation ({!append} flushes before
    returning), so a crash can tear at most the final record.  {!load}
    tolerates exactly that: a torn trailing line is dropped (and reported),
    while corruption anywhere else is an error.

    Format: a [mechaml-journal 1] header, then one line per record, each
    closed by the [;end] sentinel.  Observations read
    [obs <initial> | <pre> : <ins> / <outs> -> <post> | ... | refuse <state> : <ins> ;end]
    with comma-separated signal lists; iteration verdicts read
    [iter <index> refuted ;end] and mark a synthesis-loop iteration whose
    counterexample was refuted (the run continued past it).

    Replaying a journal through {!Incomplete.learn_observation} reconstructs
    exactly the knowledge the interrupted run had accumulated, and the last
    iteration record tells {!Loop.run}[ ~resume] which iteration to resume
    counting from. *)

type error = { line : int; message : string }

type record = Obs of Mechaml_legacy.Observation.t | Iter of int

(** The crash-safety discipline alone — versioned header, one flushed
    self-delimiting [;end]-terminated line per record, torn-tail-tolerant
    loading — independent of the observation format, for other append-only
    logs (the verification daemon's write-ahead log sits on this). *)
module Lines : sig
  val append : path:string -> header:string -> string -> unit
  (** Append one record body (the [;end] sentinel is added here), creating
      the file with [header] if needed; flushed before returning.  Raises
      [Invalid_argument] when the body contains a newline. *)

  type appender
  (** A persistent append handle: same record format and flush-per-record
      crash guarantee as {!append}, without an open/close round trip per
      line.  For hot-path journals that write many records per request
      (the verification daemon's write-ahead log). *)

  val appender : path:string -> header:string -> appender
  (** Open [path] for appending (creating it with [header] if missing or
      empty) and keep it open.  The handle lives until {!close_appender}
      or process exit; records written through it are flushed
      individually, so a crash still tears at most the final line. *)

  val append_line : appender -> string -> unit
  (** Append one record body through the handle (the [;end] sentinel is
      added here); flushed before returning.  Raises [Invalid_argument]
      when the body contains a newline. *)

  val close_appender : appender -> unit

  val load :
    path:string -> header:string -> ((int * string) list * bool, error) result
  (** [Ok (lines, torn)]: the complete records as [(line_number, body)] in
      file order, sentinel stripped; [torn] is [true] when a final partial
      record (interrupted append) was dropped.  A missing file, a bad
      header or a torn non-final record is an [Error]. *)
end

val append : path:string -> Mechaml_legacy.Observation.t -> unit
(** Append one observation, creating the file (with header) if needed.
    The record is flushed before returning. *)

val append_iteration : path:string -> int -> unit
(** Append an iteration-verdict record ([iter <index> refuted]), creating the
    file (with header) if needed; flushed before returning. *)

val load :
  path:string -> (Mechaml_legacy.Observation.t list * bool, error) result
(** [Ok (observations, torn)] — [torn] is [true] when a final partial record
    (interrupted append) was dropped.  Iteration records are skipped.  Never
    raises; a missing file, a bad header or a malformed non-final record is
    an [Error]. *)

val load_all : path:string -> (record list * bool, error) result
(** Like {!load} but returns every record in order. *)

val line_of : Mechaml_legacy.Observation.t -> string
(** The journal line for one observation, without the trailing newline
    (exposed for tests). *)
