(** Append-only observation journal — crash-safe persistence of every test
    execution as it happens.

    Each admitted observation costs a real driver execution; if the process
    dies mid-campaign those executions must not be lost.  The journal writes
    one self-delimiting line per observation ({!append} flushes before
    returning), so a crash can tear at most the final record.  {!load}
    tolerates exactly that: a torn trailing line is dropped (and reported),
    while corruption anywhere else is an error.

    Format: a [mechaml-journal 1] header, then one line per observation —
    [obs <initial> | <pre> : <ins> / <outs> -> <post> | ... | refuse <state> : <ins> ;end]
    with comma-separated signal lists and the [;end] sentinel marking a
    complete record.

    Replaying a journal through {!Incomplete.learn_observation} reconstructs
    exactly the knowledge the interrupted run had accumulated, which is what
    {!Loop.run}[ ~resume] does. *)

type error = { line : int; message : string }

val append : path:string -> Mechaml_legacy.Observation.t -> unit
(** Append one observation, creating the file (with header) if needed.
    The record is flushed before returning. *)

val load :
  path:string -> (Mechaml_legacy.Observation.t list * bool, error) result
(** [Ok (observations, torn)] — [torn] is [true] when a final partial record
    (interrupted {!append}) was dropped.  Never raises; a missing file, a bad
    header or a malformed non-final record is an [Error]. *)

val line_of : Mechaml_legacy.Observation.t -> string
(** The journal line for one observation, without the trailing newline
    (exposed for tests). *)
