(** Parametric scenario families for the quantitative experiments.

    The {e combination lock} family makes the paper's headline claim
    measurable: a legacy component with [n] internal states of which a given
    context can only ever exercise a prefix.  The paper's loop learns just
    that prefix and still proves the integration correct; full-model learning
    (L*, black box checking) pays for all [n] states plus an exhaustive
    equivalence check (EXP-T1/T2). *)

val lock_secret : n:int -> string list
(** The lock's secret: a reproducible pseudo-random word over [a]/[b] of
    length [n] (seeded by [n]). *)

val lock_legacy : n:int -> Mechaml_ts.Automaton.t
(** A combination lock with [n + 1] states: feeding the secret's next symbol
    advances, a wrong symbol resets, a silent period idles; the final symbol
    emits [open] and enters the [unlocked] state, from which any input
    relocks.  Complete (never refuses), input-deterministic. *)

val lock_box : n:int -> Mechaml_legacy.Blackbox.t

val lock_context : n:int -> depth:int -> Mechaml_ts.Automaton.t
(** A context that exercises only the first [depth < n] secret symbols: it
    repeatedly plays that prefix and then deliberately resets with a wrong
    symbol.  It could consume [open] but never causes it. *)

val wide_lock_box : n:int -> spares:int * int -> Mechaml_legacy.Blackbox.t
(** The same lock, but its interface additionally declares [(ki, ko)] spare
    input/output signals no transition ever uses.  Each spare doubles the
    chaotic closure's escape fan-out (℘(I) × ℘(O)) while the learned
    protocol — and hence the synthesis iteration count — stays that of
    {!lock_box}: big closures, small per-iteration deltas, the regime that
    exercises incremental re-verification.  [|I| + |O|] must stay within
    {!Mechaml_core.Chaos.max_alphabet}. *)

val wide_lock_context : n:int -> depth:int -> spares:int * int -> Mechaml_ts.Automaton.t
(** {!lock_context} with the matching spare signals declared (a context must
    produce every legacy input and consume every legacy output); its
    transitions never exercise them. *)

val lock_property : Mechaml_logic.Ctl.t
(** [AG ¬ lock.unlocked] — provable for every context with [depth < n]. *)

val lock_label_of : string -> string list
(** Labels the [unlocked] state with [lock.unlocked]. *)

val lock_alphabet : string list list
(** The L*/AMC input alphabet: [∅], [{a}], [{b}]. *)

val random_machine :
  seed:int -> states:int -> inputs:string list -> outputs:string list -> Mechaml_ts.Automaton.t
(** Reproducible random complete input-deterministic machines (property-based
    tests and model-checker scalability sweeps).  Every state answers every
    single-signal input set and the empty set. *)

val random_context :
  seed:int -> states:int -> legacy_inputs:string list -> legacy_outputs:string list ->
  Mechaml_ts.Automaton.t
(** A random closed context for such a machine: each state offers one or two
    interactions (an output towards the legacy component and the legacy
    output it is prepared to consume). *)
