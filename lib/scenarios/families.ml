module Automaton = Mechaml_ts.Automaton
module Prng = Mechaml_util.Prng
module Blackbox = Mechaml_legacy.Blackbox

let lock_secret ~n =
  let rng = Prng.create ~seed:(0x10c0 + n) in
  List.init n (fun _ -> if Prng.bool rng then "a" else "b")

let other = function "a" -> "b" | _ -> "a"

let locked i = Printf.sprintf "locked_%d" i

let spare_input_names k = List.init k (Printf.sprintf "sp_i%d")

let spare_output_names k = List.init k (Printf.sprintf "sp_o%d")

let lock_legacy_gen ~n ~extra_inputs ~extra_outputs =
  if n < 1 then invalid_arg "Families.lock_legacy: n must be positive";
  let secret = lock_secret ~n in
  let b =
    Automaton.Builder.create ~name:(Printf.sprintf "lock%d" n)
      ~inputs:([ "a"; "b" ] @ extra_inputs)
      ~outputs:("open" :: extra_outputs) ()
  in
  List.iteri
    (fun i sym ->
      let src = locked i in
      (* Correct symbol advances (the last one opens); wrong symbol resets;
         silence idles. *)
      if i = n - 1 then
        Automaton.Builder.add_trans b ~src ~inputs:[ sym ] ~outputs:[ "open" ] ~dst:"unlocked" ()
      else Automaton.Builder.add_trans b ~src ~inputs:[ sym ] ~dst:(locked (i + 1)) ();
      Automaton.Builder.add_trans b ~src ~inputs:[ other sym ] ~dst:(locked 0) ();
      Automaton.Builder.add_trans b ~src ~dst:src ())
    secret;
  Automaton.Builder.add_trans b ~src:"unlocked" ~inputs:[ "a" ] ~dst:(locked 0) ();
  Automaton.Builder.add_trans b ~src:"unlocked" ~inputs:[ "b" ] ~dst:(locked 0) ();
  Automaton.Builder.add_trans b ~src:"unlocked" ~dst:(locked 0) ();
  Automaton.Builder.set_initial b [ locked 0 ];
  Automaton.Builder.build b

let lock_legacy ~n = lock_legacy_gen ~n ~extra_inputs:[] ~extra_outputs:[]

let lock_box ~n = Blackbox.of_automaton ~port:"lockPort" (lock_legacy ~n)

let wide_lock_box ~n ~spares:(ki, ko) =
  Blackbox.of_automaton ~port:"lockPort"
    (lock_legacy_gen ~n ~extra_inputs:(spare_input_names ki)
       ~extra_outputs:(spare_output_names ko))

let lock_context_gen ~n ~depth ~extra_inputs ~extra_outputs =
  if depth < 0 || depth >= n then
    invalid_arg "Families.lock_context: depth must satisfy 0 <= depth < n";
  let secret = lock_secret ~n in
  let b =
    Automaton.Builder.create
      ~name:(Printf.sprintf "lockContext%d" depth)
      ~inputs:("open" :: extra_outputs)
      ~outputs:([ "a"; "b" ] @ extra_inputs) ()
  in
  let state i = Printf.sprintf "c%d" i in
  List.iteri
    (fun i sym ->
      if i < depth then
        Automaton.Builder.add_trans b ~src:(state i) ~outputs:[ sym ] ~dst:(state (i + 1)) ())
    secret;
  (* Deliberate reset: play a wrong symbol, return to the start. *)
  Automaton.Builder.add_trans b ~src:(state depth)
    ~outputs:[ other (List.nth secret depth) ]
    ~dst:(state 0) ();
  Automaton.Builder.set_initial b [ state 0 ];
  Automaton.Builder.build b

let lock_context ~n ~depth = lock_context_gen ~n ~depth ~extra_inputs:[] ~extra_outputs:[]

(* Same protocol as the plain lock, but the interface declares [ki] unused
   input and [ko] unused output signals.  The chaotic closure must still
   enumerate ℘(I) × ℘(O) escapes out of every open copy, so each spare
   signal doubles the closure's per-state escape fan-out while the learned
   protocol — and with it the iteration count — stays that of the plain
   lock.  This is the regime where incremental re-verification pays:
   per-iteration knowledge deltas are a handful of facts against a closure
   of tens of thousands of transitions. *)
let wide_lock_context ~n ~depth ~spares:(ki, ko) =
  lock_context_gen ~n ~depth ~extra_inputs:(spare_input_names ki)
    ~extra_outputs:(spare_output_names ko)

let lock_property = Mechaml_logic.Parser.parse_exn "AG (not lock.unlocked)"

let lock_label_of s = if s = "unlocked" then [ "lock.unlocked" ] else []

let lock_alphabet = [ []; [ "a" ]; [ "b" ] ]

let random_machine ~seed ~states ~inputs ~outputs =
  if states < 1 then invalid_arg "Families.random_machine: states must be positive";
  let rng = Prng.create ~seed in
  let b =
    Automaton.Builder.create ~name:(Printf.sprintf "rand%d_%d" states seed) ~inputs ~outputs ()
  in
  let name i = Printf.sprintf "s%d" i in
  let input_sets = [] :: List.map (fun i -> [ i ]) inputs in
  for s = 0 to states - 1 do
    List.iter
      (fun a ->
        let out = if Prng.bool rng then [] else [ Prng.pick rng outputs ] in
        let dst = name (Prng.int rng states) in
        Automaton.Builder.add_trans b ~src:(name s) ~inputs:a ~outputs:out ~dst ())
      input_sets
  done;
  Automaton.Builder.set_initial b [ name 0 ];
  Automaton.Builder.build b

let random_context ~seed ~states ~legacy_inputs ~legacy_outputs =
  if states < 1 then invalid_arg "Families.random_context: states must be positive";
  let rng = Prng.create ~seed:(seed lxor 0x5eed) in
  let b =
    Automaton.Builder.create
      ~name:(Printf.sprintf "ctx%d_%d" states seed)
      ~inputs:legacy_outputs ~outputs:legacy_inputs ()
  in
  let name i = Printf.sprintf "c%d" i in
  for s = 0 to states - 1 do
    (* Offer one interaction towards the legacy component... *)
    let offered = if Prng.bool rng then [] else [ Prng.pick rng legacy_inputs ] in
    (* ...and be prepared for a random selection of its possible replies. *)
    List.iter
      (fun reply ->
        if reply = [] || Prng.bool rng then
          Automaton.Builder.add_trans b ~src:(name s) ~inputs:reply ~outputs:offered
            ~dst:(name (Prng.int rng states)) ())
      ([] :: List.map (fun o -> [ o ]) legacy_outputs)
  done;
  Automaton.Builder.set_initial b [ name 0 ];
  Automaton.Builder.build b
