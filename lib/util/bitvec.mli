(** Mutable bit vectors over arbitrarily large index spaces.

    {!Bitset} packs signal subsets into a single [int] and is capped at 62
    elements; state spaces of products and chaotic closures routinely exceed
    that.  [Bitvec] is the companion representation for {e state} sets: a
    fixed-length mutable vector of bits packed 63 per word, used by the model
    checker for satisfaction sets and visited/frontier sets so that the
    boolean connectives become word-parallel loops instead of per-state
    array traversals.

    All binary operations require operands of equal length and raise
    [Invalid_argument] otherwise.  Unused bits of the last word are kept
    zero, so {!equal} and {!count} are plain word comparisons. *)

type t

val create : int -> t
(** [create n] is an all-zero vector of length [n] ([n >= 0]). *)

val create_full : int -> t
(** [create_full n] has all [n] bits set. *)

val init : int -> (int -> bool) -> t

val length : t -> int

val copy : t -> t

val get : t -> int -> bool
(** Raises [Invalid_argument] when the index is out of bounds. *)

val set : t -> int -> unit

val clear : t -> int -> unit

val unsafe_get : t -> int -> bool
(** No bounds check — for hot loops whose indices are known in range. *)

val unsafe_set : t -> int -> unit

val unsafe_clear : t -> int -> unit

val equal : t -> t -> bool

val count : t -> int
(** Number of set bits. *)

val is_empty : t -> bool

val lognot : t -> t

val logand : t -> t -> t

val logor : t -> t -> t

val logandnot : t -> t -> t
(** [logandnot a b] is [a ∧ ¬b] — set difference. *)

val logimplies : t -> t -> t
(** [logimplies a b] is [¬a ∨ b]. *)

val iter_true : (int -> unit) -> t -> unit
(** Apply to every set index, in increasing order. *)

val iter_true_range : (int -> unit) -> t -> lo:int -> hi:int -> unit
(** [iter_true_range f v ~lo ~hi] applies [f] to every set index in
    [\[lo, hi)], in increasing order — the boundary-exchange primitive: a
    shard scans only its frontier window instead of re-scanning whole words.
    Raises [Invalid_argument] unless [0 <= lo <= hi <= length v]. *)

val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
(** Copy [len] bits from [src] starting at [src_pos] into [dst] starting at
    [dst_pos].  Word-aligned positions take a word-[blit] fast path;
    overlapping self-blits behave like [Array.blit].  Raises
    [Invalid_argument] when either range is out of bounds. *)

val sub : t -> pos:int -> len:int -> t
(** [sub v ~pos ~len] is a fresh vector of the bits [\[pos, pos+len)]. *)

val sub_into : t -> pos:int -> len:int -> t -> unit
(** [sub_into src ~pos ~len dst] copies [src]'s bits [\[pos, pos+len)] onto
    [dst]'s bits [\[0, len)], leaving the rest of [dst] untouched.  Raises
    [Invalid_argument] when [dst] is shorter than [len] or the source range
    is out of bounds. *)

val to_bool_array : t -> bool array

val of_bool_array : bool array -> t
