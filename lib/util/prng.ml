type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 step: fast, full-period, good statistical quality for the
   non-cryptographic needs here. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  next_nonneg t mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let u = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. u /. 9007199254740992.0 (* 2^53 *)

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let a = Array.of_list l in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let split t = { state = next_int64 t }

(* Stateless access to the same stream: the state after [i + 1] steps is
   [seed + (i + 1)·γ], so the [i]-th draw needs no mutable generator.  Fault
   injection uses this with an [Atomic.t] index so concurrent sessions never
   race on generator state yet stay bit-identical to a sequential run. *)
let mix ~seed i =
  let z = Int64.add (Int64.of_int seed) (Int64.mul (Int64.of_int (i + 1)) golden_gamma) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let mix_int ~seed i bound =
  if bound <= 0 then invalid_arg "Prng.mix_int: bound must be positive";
  Int64.to_int (Int64.shift_right_logical (mix ~seed i) 2) mod bound

let mix_float ~seed i bound =
  let u = Int64.to_float (Int64.shift_right_logical (mix ~seed i) 11) in
  bound *. u /. 9007199254740992.0 (* 2^53 *)
