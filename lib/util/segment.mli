(** Out-of-core segment tier: spill files and LRU shard residency.

    The sharded product exploration partitions its CSR arrays and sat-set
    bit vectors into per-shard {e segments}.  Under a memory budget, cold
    segments serialize to compact spill files (tmp+rename, versioned header,
    content digest) and reload on demand; the manager keeps residency under
    the budget watermark with least-recently-used eviction.

    Payloads registered with a manager must be treated as {e immutable}:
    eviction merely drops the in-memory copy (the spill file, written once,
    stays authoritative), so a payload borrowed from {!get} remains valid
    even if the slot is evicted while in use.

    A corrupt or truncated spill file is always surfaced as an error —
    {!load} returns [Error] and {!get} raises {!Spill_error} — never as
    silently wrong data. *)

type field =
  | Ints of int array
  | Bits of Bitvec.t

type payload = (string * field) list

exception Spill_error of string
(** Raised by {!get} when a segment's spill file cannot be read back
    (missing, truncated, or failing its digest). *)

val payload_bytes : payload -> int
(** Approximate heap footprint of a payload, the unit of budget accounting. *)

(** {1 Spill-file codec} *)

val to_string : payload -> string
(** Serialize a payload to the self-describing [mechaseg] wire/file format:
    a versioned header carrying the body length and an MD5 digest, then the
    body.  This exact byte string is what {!save} writes and what the
    distributed tier ships between processes. *)

val of_string : ?what:string -> string -> (payload, string) result
(** Decode a [mechaseg] byte string, verifying header, length, and digest
    ([what] names the source in error messages).  Trailing bytes beyond the
    declared body length are ignored, mirroring {!load}. *)

val save : path:string -> payload -> unit
(** Serialize atomically: write [path ^ ".tmp"], then rename onto [path].
    The file carries a versioned header and an MD5 digest of the payload. *)

val load : path:string -> (payload, string) result
(** Read a spill file back, verifying header, length, and digest. *)

(** {1 Residency manager} *)

type t

type slot

val create :
  ?budget:int ->
  ?dir:string ->
  ?on_spill:(int -> unit) ->
  ?on_reload:(int -> unit) ->
  name:string ->
  unit ->
  t
(** A manager named [name] (names spill files).  [budget] is the residency
    watermark in bytes; without it nothing ever spills.  Spill files live in
    a fresh private subdirectory of [dir] (default: the system temp dir),
    created lazily on first spill and removed by {!close}.  [on_spill] /
    [on_reload] observe each segment transfer with its byte size. *)

val add : t -> name:string -> payload -> slot
(** Register an immutable payload.  May evict colder slots (or, over
    budget, the new slot itself) to spill files. *)

val get : t -> slot -> payload
(** The slot's payload, reloading from its spill file if evicted; marks the
    slot most-recently-used.  Raises {!Spill_error} on a damaged file. *)

val scratch_path : t -> name:string -> string
(** A fresh path inside the manager's spill directory (created on demand)
    for caller-managed scratch files; {!close} removes them with the rest. *)

val resident_bytes : t -> int

val spills : t -> int
(** Number of segment spill writes performed by this manager. *)

val reloads : t -> int

val spill_dir : t -> string option
(** The manager's private spill directory, if it was ever created. *)

val close : t -> unit
(** Delete every spill file and the private directory.  Idempotent; the
    manager stays usable in-memory (slots keep resident payloads but can no
    longer spill or reload). *)

(** {1 Process-wide counters}

    Monotonic totals across all managers — observable without enabling the
    metrics registry (tests assert spill engagement through these). *)

val total_spills : unit -> int

val total_reloads : unit -> int
