(** Deterministic pseudo-random number generator (SplitMix64).

    Benchmarks and generators of random machine families must be reproducible
    across runs, so all randomness in the library flows through explicitly
    seeded generators rather than [Random.self_init]. *)

type t

val create : seed:int -> t

val copy : t -> t

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be
    positive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] draws uniformly from [0.0, bound). *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list.  Raises [Invalid_argument] on
    an empty list. *)

val shuffle : t -> 'a list -> 'a list

val split : t -> t
(** Derive an independent generator (advances the parent). *)

val mix : seed:int -> int -> int64
(** [mix ~seed i] is the [i]-th (0-based) value of the stream a generator
    [create ~seed] would produce — computed statelessly, so concurrent
    callers indexing through an [Atomic.t] counter need no shared mutable
    generator and still reproduce the sequential stream bit for bit. *)

val mix_int : seed:int -> int -> int -> int
(** [mix_int ~seed i bound] maps {!mix}[ ~seed i] uniformly into
    [0, bound).  [bound] must be positive. *)

val mix_float : seed:int -> int -> float -> float
(** [mix_float ~seed i bound] maps {!mix}[ ~seed i] uniformly into
    [0.0, bound). *)
