type t = int

let max_width = 62

let check_index i =
  if i < 0 || i >= max_width then
    invalid_arg (Printf.sprintf "Bitset: index %d out of range [0, %d)" i max_width)

let empty = 0

let is_empty s = s = 0

let singleton i =
  check_index i;
  1 lsl i

let mem i s = i >= 0 && i < max_width && s land (1 lsl i) <> 0

let add i s =
  check_index i;
  s lor (1 lsl i)

let remove i s =
  check_index i;
  s land lnot (1 lsl i)

let union a b = a lor b

let inter a b = a land b

let diff a b = a land lnot b

let equal (a : int) (b : int) = a = b

let compare (a : int) (b : int) = Stdlib.compare a b

let subset a b = a land lnot b = 0

let disjoint a b = a land b = 0

let cardinal s =
  let rec count acc s = if s = 0 then acc else count (acc + (s land 1)) (s lsr 1) in
  count 0 s

let of_list l = List.fold_left (fun acc i -> add i acc) empty l

let fold f s init =
  let rec go i acc =
    if i >= max_width || s lsr i = 0 then acc
    else if s land (1 lsl i) <> 0 then go (i + 1) (f i acc)
    else go (i + 1) acc
  in
  go 0 init

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let iter f s = fold (fun i () -> f i) s ()

let for_all p s = fold (fun i acc -> acc && p i) s true

let exists p s = fold (fun i acc -> acc || p i) s false

let full n =
  if n < 0 || n > max_width then invalid_arg "Bitset.full";
  if n = 0 then 0 else (1 lsl n) - 1

let all_subsets n =
  if n < 0 || n > 30 then invalid_arg "Bitset.all_subsets: universe too large";
  List.init (1 lsl n) (fun i -> i)

let shift k s =
  let out = fold (fun i acc -> add (i + k) acc) s empty in
  out

let map f s = fold (fun i acc -> add (f i) acc) s empty

let to_int s = s

let of_int_unsafe i = i

let pp ~names ppf s =
  let elts = elements s in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf i -> Format.pp_print_string ppf (names i)))
    elts
