(* 63 bits per word: the full non-tag width of an OCaml int, so word indices
   and shifts stay branch-free native-int arithmetic. *)
let bits = 63

type t = { len : int; words : int array }

let nwords n = (n + bits - 1) / bits

let create n =
  if n < 0 then invalid_arg "Bitvec.create: negative length";
  { len = n; words = Array.make (nwords n) 0 }

let length v = v.len

let copy v = { len = v.len; words = Array.copy v.words }

(* Mask for the partial last word; [lnot 0] when the length is a multiple of
   [bits] (also the n = 0 case, where there is no word to mask). *)
let last_mask n =
  let r = n mod bits in
  if r = 0 then lnot 0 else (1 lsl r) - 1

let create_full n =
  let v = create n in
  let w = Array.length v.words in
  Array.fill v.words 0 w (lnot 0);
  if w > 0 then v.words.(w - 1) <- v.words.(w - 1) land last_mask n;
  v

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Bitvec: index %d out of bounds [0, %d)" i v.len)

let get v i =
  check v i;
  v.words.(i / bits) land (1 lsl (i mod bits)) <> 0

let set v i =
  check v i;
  v.words.(i / bits) <- v.words.(i / bits) lor (1 lsl (i mod bits))

let clear v i =
  check v i;
  v.words.(i / bits) <- v.words.(i / bits) land lnot (1 lsl (i mod bits))

let unsafe_get v i = Array.unsafe_get v.words (i / bits) land (1 lsl (i mod bits)) <> 0

let unsafe_set v i =
  let w = i / bits in
  Array.unsafe_set v.words w (Array.unsafe_get v.words w lor (1 lsl (i mod bits)))

let unsafe_clear v i =
  let w = i / bits in
  Array.unsafe_set v.words w (Array.unsafe_get v.words w land lnot (1 lsl (i mod bits)))

let init n f =
  let v = create n in
  for i = 0 to n - 1 do
    if f i then v.words.(i / bits) <- v.words.(i / bits) lor (1 lsl (i mod bits))
  done;
  v

let equal a b = a.len = b.len && a.words = b.words

let popcount x =
  let c = ref 0 and x = ref x in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr c
  done;
  !c

let count v = Array.fold_left (fun acc w -> acc + popcount w) 0 v.words

let is_empty v = Array.for_all (fun w -> w = 0) v.words

let same_len a b =
  if a.len <> b.len then invalid_arg "Bitvec: length mismatch"

let map2 f a b =
  same_len a b;
  let out = { len = a.len; words = Array.make (Array.length a.words) 0 } in
  for i = 0 to Array.length a.words - 1 do
    out.words.(i) <- f a.words.(i) b.words.(i)
  done;
  out

let logand a b = map2 ( land ) a b

let logor a b = map2 ( lor ) a b

let logandnot a b = map2 (fun x y -> x land lnot y) a b

let mask_last v =
  let w = Array.length v.words in
  if w > 0 then v.words.(w - 1) <- v.words.(w - 1) land last_mask v.len;
  v

let logimplies a b = mask_last (map2 (fun x y -> lnot x lor y) a b)

let lognot a = mask_last { len = a.len; words = Array.map lnot a.words }

let iter_word f base w0 =
  let w = ref w0 in
  while !w <> 0 do
    let lsb = !w land - !w in
    (* index of the isolated low bit: count trailing zeros by shifting *)
    let i = ref 0 and m = ref lsb in
    while !m land 1 = 0 do
      m := !m lsr 1;
      incr i
    done;
    f (base + !i);
    w := !w land (!w - 1)
  done

let iter_true f v =
  for wi = 0 to Array.length v.words - 1 do
    iter_word f (wi * bits) v.words.(wi)
  done

let iter_true_range f v ~lo ~hi =
  if lo < 0 || hi > v.len || lo > hi then
    invalid_arg
      (Printf.sprintf "Bitvec.iter_true_range: bad range [%d, %d) for length %d" lo hi
         v.len);
  if lo < hi then begin
    let w0 = lo / bits and w1 = (hi - 1) / bits in
    for wi = w0 to w1 do
      let w = ref v.words.(wi) in
      if wi = w0 then w := !w land lnot ((1 lsl (lo mod bits)) - 1);
      let r = hi mod bits in
      if wi = w1 && r <> 0 then w := !w land ((1 lsl r) - 1);
      iter_word f (wi * bits) !w
    done
  end

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  if len < 0 || src_pos < 0 || dst_pos < 0 || src_pos + len > src.len
     || dst_pos + len > dst.len
  then
    invalid_arg
      (Printf.sprintf "Bitvec.blit: bad range (src_pos %d dst_pos %d len %d)" src_pos
         dst_pos len);
  if src_pos mod bits = 0 && dst_pos mod bits = 0 then begin
    (* word-aligned fast path: the common case for boundary-exchange buffers,
       which slice at word-multiple offsets *)
    let full = len / bits in
    let tail () =
      for i = full * bits to len - 1 do
        if unsafe_get src (src_pos + i) then unsafe_set dst (dst_pos + i)
        else unsafe_clear dst (dst_pos + i)
      done
    in
    (* aliased right-shifting copy: the tail reads source bits the word blit
       would overwrite, so it must run first (Array.blit itself is memmove) *)
    if src.words == dst.words && dst_pos > src_pos then begin
      tail ();
      Array.blit src.words (src_pos / bits) dst.words (dst_pos / bits) full
    end
    else begin
      Array.blit src.words (src_pos / bits) dst.words (dst_pos / bits) full;
      tail ()
    end
  end
  else if src.words == dst.words && dst_pos > src_pos then
    (* overlapping self-blit shifting right: copy downwards, like Array.blit *)
    for i = len - 1 downto 0 do
      if unsafe_get src (src_pos + i) then unsafe_set dst (dst_pos + i)
      else unsafe_clear dst (dst_pos + i)
    done
  else
    for i = 0 to len - 1 do
      if unsafe_get src (src_pos + i) then unsafe_set dst (dst_pos + i)
      else unsafe_clear dst (dst_pos + i)
    done

let sub src ~pos ~len =
  if len < 0 || pos < 0 || pos + len > src.len then
    invalid_arg (Printf.sprintf "Bitvec.sub: bad range (pos %d len %d)" pos len);
  let out = create len in
  blit ~src ~src_pos:pos ~dst:out ~dst_pos:0 ~len;
  out

let sub_into src ~pos ~len dst =
  if len > dst.len then invalid_arg "Bitvec.sub_into: destination too short";
  blit ~src ~src_pos:pos ~dst ~dst_pos:0 ~len

let to_bool_array v = Array.init v.len (fun i -> v.words.(i / bits) land (1 lsl (i mod bits)) <> 0)

let of_bool_array a =
  let v = create (Array.length a) in
  Array.iteri (fun i b -> if b then v.words.(i / bits) <- v.words.(i / bits) lor (1 lsl (i mod bits))) a;
  v
