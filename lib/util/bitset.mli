(** Bitsets over small universes (at most 62 elements).

    A bitset is an immutable set of small non-negative integers packed into a
    single OCaml [int].  They represent the signal subsets [A ⊆ I] and
    [B ⊆ O] that label transitions of the automata of Definition 1, so set
    operations must be constant-time: composition, chaotic closure and the
    model checker all manipulate millions of them. *)

type t = private int

val max_width : int
(** Largest universe size supported ([62] on 64-bit platforms). *)

val empty : t

val is_empty : t -> bool

val singleton : int -> t
(** [singleton i] is [{i}].  Raises [Invalid_argument] if
    [i < 0 || i >= max_width]. *)

val mem : int -> t -> bool

val add : int -> t -> t

val remove : int -> t -> t

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val subset : t -> t -> bool
(** [subset a b] is [true] iff [a ⊆ b]. *)

val disjoint : t -> t -> bool

val cardinal : t -> int

val of_list : int list -> t

val elements : t -> int list
(** Elements in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val iter : (int -> unit) -> t -> unit

val for_all : (int -> bool) -> t -> bool

val exists : (int -> bool) -> t -> bool

val full : int -> t
(** [full n] is [{0, …, n-1}]. *)

val all_subsets : int -> t list
(** [all_subsets n] enumerates ℘({0, …, n-1}) in increasing bit-pattern
    order; [2^n] elements.  Raises [Invalid_argument] if [n > 30] to guard
    against accidental blow-ups. *)

val shift : int -> t -> t
(** [shift k s] translates every element of [s] by [k] (used to embed a set
    into a larger combined universe).  Raises [Invalid_argument] if any
    element would leave the supported range. *)

val map : (int -> int) -> t -> t
(** [map f s] is the image of [s] under [f]; [f] must stay within range. *)

val to_int : t -> int
(** Raw bit pattern, for hashing and array indexing. *)

val of_int_unsafe : int -> t
(** Inverse of {!to_int}.  The caller must guarantee the pattern only uses
    the low {!max_width} bits. *)

val pp : names:(int -> string) -> Format.formatter -> t -> unit
(** Pretty-print as [{a, b, c}] using [names] for element names. *)
