type field =
  | Ints of int array
  | Bits of Bitvec.t

type payload = (string * field) list

exception Spill_error of string

(* Budget accounting: OCaml heap words, not serialized bytes — the watermark
   guards resident memory. *)
let field_bytes = function
  | Ints a -> 8 * (Array.length a + 1)
  | Bits v -> 8 * (((Bitvec.length v + 62) / 63) + 3)

let payload_bytes p = List.fold_left (fun acc (_, f) -> acc + field_bytes f) 0 p

(* -- spill-file codec ------------------------------------------------------

   One header line ["mechaseg <version> <payload length> <md5 hex>\n"]
   followed by the marshalled payload.  Everything after the header is
   digest-checked, so a flipped bit or a truncated tail surfaces as an
   explicit error instead of wrong fixpoint bits. *)

let version = 1

let to_string p =
  let body = Marshal.to_string (p : payload) [] in
  let digest = Digest.to_hex (Digest.string body) in
  Printf.sprintf "mechaseg %d %d %s\n%s" version (String.length body) digest body

(* [of_string] is the whole-buffer twin of [load]: the same header, length
   and digest checks, against an in-memory segment (a spill file slurped
   whole, or a segment payload received over the wire). *)
let of_string ?(what = "segment") s =
  match String.index_opt s '\n' with
  | None -> Error (what ^ ": not a mechaseg segment")
  | Some nl -> (
    let header = String.sub s 0 nl in
    match String.split_on_char ' ' header with
    | [ "mechaseg"; v; len; digest ] -> (
      match (int_of_string_opt v, int_of_string_opt len) with
      | Some v, _ when v <> version ->
        Error (Printf.sprintf "%s: segment version %d, expected %d" what v version)
      | Some _, Some len ->
        if String.length s - nl - 1 < len then Error (what ^ ": truncated segment")
        else
          let body = String.sub s (nl + 1) len in
          if Digest.to_hex (Digest.string body) <> digest then
            Error (what ^ ": segment digest mismatch (corrupt payload)")
          else (
            try Ok (Marshal.from_string body 0 : payload)
            with Failure m -> Error (Printf.sprintf "%s: %s" what m))
      | _ -> Error (what ^ ": malformed segment header"))
    | _ -> Error (what ^ ": not a mechaseg segment"))

let save ~path p =
  let s = to_string p in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc s;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load ~path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match In_channel.input_all ic with
        | exception Sys_error m -> Error (path ^ ": " ^ m)
        | "" -> Error (path ^ ": empty spill file")
        | s -> of_string ~what:path s)

(* -- residency manager ----------------------------------------------------- *)

let g_spills = Atomic.make 0

let g_reloads = Atomic.make 0

let total_spills () = Atomic.get g_spills

let total_reloads () = Atomic.get g_reloads

type slot = {
  s_name : string;
  s_bytes : int;
  mutable s_payload : payload option; (* [None] once evicted *)
  mutable s_path : string option; (* spill file, once written *)
  mutable s_tick : int;
}

type t = {
  budget : int option;
  base_dir : string;
  name : string;
  on_spill : int -> unit;
  on_reload : int -> unit;
  mutable dir : string option; (* private subdir, created on first use *)
  mutable slots : slot list; (* registration order; LRU decided by ticks *)
  mutable tick : int;
  mutable resident : int;
  mutable n_spills : int;
  mutable n_reloads : int;
  mutable scratch : int;
  mutable closed : bool;
}

let uid = Atomic.make 0

let create ?budget ?dir ?(on_spill = ignore) ?(on_reload = ignore) ~name () =
  {
    budget;
    base_dir = (match dir with Some d -> d | None -> Filename.get_temp_dir_name ());
    name;
    on_spill;
    on_reload;
    dir = None;
    slots = [];
    tick = 0;
    resident = 0;
    n_spills = 0;
    n_reloads = 0;
    scratch = 0;
    closed = false;
  }

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let ensure_dir t =
  match t.dir with
  | Some d -> d
  | None ->
    if t.closed then raise (Spill_error (t.name ^ ": segment manager is closed"));
    (* pid + process-wide uid keep concurrent daemons and repeated runs in
       the same temp dir from colliding *)
    let d =
      Filename.concat t.base_dir
        (Printf.sprintf "mechaspill-%s-%d-%d" t.name (Unix.getpid ())
           (Atomic.fetch_and_add uid 1))
    in
    mkdir_p d;
    t.dir <- Some d;
    d

let scratch_path t ~name =
  let d = ensure_dir t in
  t.scratch <- t.scratch + 1;
  Filename.concat d (Printf.sprintf "scratch-%d-%s.seg" t.scratch name)

let touch t s =
  t.tick <- t.tick + 1;
  s.s_tick <- t.tick

let evict t s =
  match s.s_payload with
  | None -> ()
  | Some p ->
    (match s.s_path with
    | Some _ -> () (* immutable payload: the file written earlier is current *)
    | None ->
      let path = Filename.concat (ensure_dir t) (s.s_name ^ ".seg") in
      save ~path p;
      s.s_path <- Some path);
    s.s_payload <- None;
    t.resident <- t.resident - s.s_bytes;
    t.n_spills <- t.n_spills + 1;
    Atomic.incr g_spills;
    t.on_spill s.s_bytes

(* Evict least-recently-used resident slots (never [keep]) until the
   watermark holds or nothing colder is left. *)
let enforce_budget t ~keep =
  match t.budget with
  | None -> ()
  | Some budget ->
    let continue_ = ref (not t.closed) in
    while t.resident > budget && !continue_ do
      let coldest =
        List.fold_left
          (fun acc s ->
            match (s.s_payload, acc) with
            | None, _ -> acc
            | Some _, _ when s == keep -> acc
            | Some _, None -> Some s
            | Some _, Some best -> if s.s_tick < best.s_tick then Some s else acc)
          None t.slots
      in
      match coldest with None -> continue_ := false | Some s -> evict t s
    done;
    (* over budget with everything else cold: the current slot itself goes *)
    if t.resident > budget && not t.closed then evict t keep

let add t ~name p =
  let s =
    { s_name = name; s_bytes = payload_bytes p; s_payload = Some p; s_path = None; s_tick = 0 }
  in
  touch t s;
  t.slots <- s :: t.slots;
  t.resident <- t.resident + s.s_bytes;
  enforce_budget t ~keep:s;
  s

let get t s =
  touch t s;
  match s.s_payload with
  | Some p -> p
  | None ->
    let path =
      match s.s_path with
      | Some p -> p
      | None -> raise (Spill_error (s.s_name ^ ": evicted segment has no spill file"))
    in
    (match load ~path with
    | Error m -> raise (Spill_error m)
    | Ok p ->
      s.s_payload <- Some p;
      t.resident <- t.resident + s.s_bytes;
      t.n_reloads <- t.n_reloads + 1;
      Atomic.incr g_reloads;
      t.on_reload s.s_bytes;
      enforce_budget t ~keep:s;
      p)

let resident_bytes t = t.resident

let spills t = t.n_spills

let reloads t = t.n_reloads

let spill_dir t = t.dir

let close t =
  t.closed <- true;
  List.iter
    (fun s ->
      match s.s_path with
      | None -> ()
      | Some p ->
        (try Sys.remove p with Sys_error _ -> ());
        s.s_path <- None)
    t.slots;
  match t.dir with
  | None -> ()
  | Some d ->
    (* only our private directory: remove whatever scratch remains, then
       the directory itself *)
    (match Sys.readdir d with
    | files -> Array.iter (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ()) files
    | exception Sys_error _ -> ());
    (try Unix.rmdir d with Unix.Unix_error _ | Sys_error _ -> ());
    t.dir <- None
