(** The daemon's submission ledger: idempotency keys, verdict bookkeeping and
    a write-ahead log — the layer that turns "a stream of verdicts over one
    TCP connection" into "a durable job whose results survive torn streams,
    client retries and daemon crashes".

    Every submission becomes an {e entry} keyed by its idempotency key
    (client-supplied or generated).  Workers push outcomes through
    {!complete}-style callbacks wired up at scheduling time; the first write
    per job index wins, so a watchdog stand-in followed by the abandoned
    computation's late real result stays a single verdict.  Resubmitting a
    key {e attaches} to the existing entry — the jobs run exactly once no
    matter how many times the client retries.

    With a [wal] path every accepted submission and every verdict is
    journaled through {!Mechaml_core.Journal.Lines} before the client can
    observe it.  On startup the log is replayed: finished entries are
    restored for [GET /v1/jobs] lookups, unfinished entries re-run {e only}
    the jobs that have no recorded verdict ([serve_wal_replays_total]),
    keeping everything already computed ([serve_wal_restored_total]).

    Specs that keep timing out are poison: each natural timeout and each
    watchdog kill strikes the spec's structural digest in a {!Quarantine}
    registry, and a quarantined spec is answered with an immediate [Failed]
    stand-in instead of burning another worker. *)

type t

type entry
(** One accepted submission (a handle — all state lives in [t]). *)

val create :
  ?wal:string ->
  ?default_deadline_s:float ->
  ?quarantine_strikes:int ->
  ?quarantine_ttl_s:float ->
  ?slo:Slo.t ->
  ?sharding:Mechaml_ts.Shard.config ->
  sched:Scheduler.t ->
  cache:Mechaml_engine.Cache.t ->
  unit ->
  t
(** Create the store and, when [wal] is given, replay it (scheduling the
    unfinished remainder onto [sched]) before returning — callers start the
    listener only after the store exists, so clients never observe a
    half-replayed state.  [default_deadline_s] applies to submissions that
    carry no [deadline_s] of their own.  With [slo], the store observes the
    [queue] stage at dispatch and the [closure]/[check] stages from each
    completed job's measured phase times.  With [sharding], every executed
    job uses the partitioned out-of-core check pipeline
    ({!Mechaml_engine.Campaign.run_spec}) — verdicts are byte-identical to
    the default path. *)

type error =
  | Invalid of string  (** unresolvable selection — a 400 *)
  | Rejected of Scheduler.rejection  (** admission control said no — 429/503 *)

val submit :
  t -> tenant:string -> Wire.submit -> (entry * [ `Fresh | `Attached ], error) result
(** Admit a submission.  A known idempotency key returns its existing entry
    as [`Attached] without scheduling anything; otherwise the resolved specs
    are scheduled ([`Fresh]) — except quarantined ones, which complete
    immediately with a [Failed "quarantined: ..."] stand-in.  The WAL accept
    record is written only after the scheduler admits the batch, so a
    rejected submission leaves no trace to replay. *)

val key : entry -> string

val size : entry -> int
(** Resolved specs in the submission (the number of verdicts owed). *)

type progress = Next of int * Mechaml_engine.Campaign.outcome | Finished

val await : t -> entry -> pos:int -> progress
(** Block until the entry has more than [pos] verdicts (returning the
    [pos]-th in completion order) or is finished.  The streaming loop calls
    this with [pos = 0, 1, 2, ...]; an [`Attached] reconnect naturally
    replays the verdicts that landed while it was away. *)

val complete : t -> key:string -> index:int -> Mechaml_engine.Campaign.outcome -> unit
(** Record a verdict (first write per index wins; unknown keys are dropped).
    Exposed for the scheduler-callback plumbing and for tests. *)

val status : t -> key:string -> Wire.job_status option
(** The [GET /v1/jobs/<key>] view; [None] for unknown keys. *)

val sharding : t -> Mechaml_ts.Shard.config option
(** The sharded-check configuration jobs run under, if any. *)

val quarantine : t -> Quarantine.t
(** The poison registry (for stats and tests). *)
