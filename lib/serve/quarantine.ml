module Log = Mechaml_obs.Log
module Metrics = Mechaml_obs.Metrics

let m_quarantined =
  Metrics.counter "serve_quarantined_total"
    ~help:"Submissions refused because their spec digest is quarantined."

type entry = {
  mutable strikes : int;
  mutable until : float;  (** 0. while below the strike threshold *)
  mutable reason : string;
}

type t = {
  mutex : Mutex.t;
  strikes : int;
  ttl_s : float;
  entries : (string, entry) Hashtbl.t;
}

let create ?(strikes = 2) ?(ttl_s = 300.) () =
  if strikes < 1 then invalid_arg "Quarantine.create: strikes must be positive";
  if ttl_s <= 0. then invalid_arg "Quarantine.create: ttl_s must be positive";
  { mutex = Mutex.create (); strikes; ttl_s; entries = Hashtbl.create 16 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Called under the lock.  Strike records older than the TTL are forgiven
   wholesale: a spec that struck once and then behaved for [ttl_s] starts
   from a clean slate rather than sitting one strike from the door. *)
let purge t key =
  match Hashtbl.find_opt t.entries key with
  | None -> None
  | Some e when e.until > 0. && e.until <= Unix.gettimeofday () ->
    Log.info (fun m -> m "quarantine: released %s (%s)" key e.reason);
    Hashtbl.remove t.entries key;
    None
  | Some e -> Some e

let check t ~key =
  locked t (fun () ->
      match purge t key with
      | Some e when e.until > 0. ->
        Metrics.incr m_quarantined;
        Some e.reason
      | _ -> None)

let strike t ~key ~reason =
  locked t (fun () ->
      let e =
        match purge t key with
        | Some e -> e
        | None ->
          let e = { strikes = 0; until = 0.; reason } in
          Hashtbl.replace t.entries key e;
          e
      in
      if e.until > 0. then true
      else begin
        e.strikes <- e.strikes + 1;
        e.reason <- reason;
        if e.strikes >= t.strikes then begin
          e.until <- Unix.gettimeofday () +. t.ttl_s;
          Log.warn (fun m ->
              m "quarantine: %s quarantined for %.0fs after %d strikes (%s)" key t.ttl_s
                e.strikes reason);
          true
        end
        else false
      end)

let active t =
  locked t (fun () ->
      let now = Unix.gettimeofday () in
      Hashtbl.fold
        (fun key e acc -> if e.until > now then (key, e.reason) :: acc else acc)
        t.entries [])
