(** A seeded socket-level fault-injection proxy — the network analogue of
    {!Mechaml_legacy.Faults} for the verification daemon.

    The proxy sits between a client and the daemon and misbehaves on
    purpose, one decision per forwarded chunk, drawn from a stateless
    splittable PRNG: the whole fault schedule is a pure function of the
    seed, so a failing run reproduces exactly.  Fault kinds compose like
    fault profiles do ([delay+torn+reset]):

    - {e delay} — hold a chunk for up to 30ms;
    - {e torn} — split a chunk into two writes with a pause between them,
      breaking any peer that assumes one read per message;
    - {e reset} — close both sides mid-stream;
    - {e garbage} — replace the rest of a {e response} with random bytes and
      cut the connection (requests are never corrupted: TCP checksums make
      silent request corruption unrepresentable, and the daemon answering
      400 to a mangled submission would be correct behaviour, not a bug).

    The chaos equivalence gate ([make serve-chaos]) drives real submissions
    through this proxy and asserts that retried clients still converge on
    verdicts byte-identical to a fault-free run, with every job executed
    exactly once. *)

type kind = Delay | Torn | Reset | Garbage

val all_kinds : kind list

val kind_string : kind -> string

val of_string : string -> (kind list, string) result
(** Parse a [+]-separated kind list, or ["all"]. *)

type t

val start :
  ?host:string ->
  ?port:int ->
  target_host:string ->
  target_port:int ->
  seed:int ->
  ?kinds:kind list ->
  unit ->
  t
(** Listen on [host:port] (default [127.0.0.1:0] — ephemeral) and forward
    every connection to [target_host:target_port] through the fault
    injector.  Raises [Unix.Unix_error] when the address cannot be bound. *)

val port : t -> int
(** The bound listening port. *)

val stop : t -> unit
(** Stop accepting, cut every live connection, join every domain.
    Idempotent. *)
