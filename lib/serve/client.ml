module Context = Mechaml_obs.Context
module Json = Mechaml_obs.Json
module Campaign = Mechaml_engine.Campaign

type endpoint = {
  host : string;
  port : int;
}

type error =
  | Busy of float
  | Http_error of int * string
  | Protocol of string
  | Connection of string

let error_string = function
  | Busy retry -> Printf.sprintf "daemon busy, retry after %.2fs" retry
  | Http_error (status, body) -> Printf.sprintf "HTTP %d: %s" status body
  | Protocol msg -> "protocol error: " ^ msg
  | Connection msg -> "connection error: " ^ msg

let resolve host =
  try Unix.inet_addr_of_string host
  with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)

let with_conn ?io_timeout_s ep f =
  try
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (resolve ep.host, ep.port))
     with e ->
       (try Unix.close fd with _ -> ());
       raise e);
    let c = Http.conn ?read_timeout_s:io_timeout_s ?write_timeout_s:io_timeout_s fd in
    Fun.protect ~finally:(fun () -> Http.close c) (fun () -> f c)
  with
  | Unix.Unix_error (e, _, _) -> Error (Connection (Unix.error_message e))
  | Not_found -> Error (Connection ("cannot resolve host " ^ ep.host))
  | Http.Closed -> Error (Connection "peer closed the connection")
  | Http.Timeout dir -> Error (Connection ("i/o timeout (" ^ dir ^ ")"))
  | Http.Bad msg -> Error (Protocol msg)

let get ?io_timeout_s ep path =
  with_conn ?io_timeout_s ep (fun c ->
      Http.write_request c ~meth:"GET" ~path "";
      let head = Http.read_response_head c in
      Ok (head.Http.status, Http.read_body c head))

let get_traced ?io_timeout_s ?request_id ep path =
  let rid = match request_id with Some r -> r | None -> Context.fresh () in
  with_conn ?io_timeout_s ep (fun c ->
      Http.write_request c ~meth:"GET" ~path ~headers:[ ("x-request-id", rid) ] "";
      let head = Http.read_response_head c in
      let echoed = Http.resp_header head "x-request-id" in
      Ok (head.Http.status, Http.read_body c head, echoed))

let connect ?(host = "127.0.0.1") ~port () =
  let ep = { host; port } in
  match get ep "/healthz" with
  | Ok (200, _) -> Ok ep
  | Ok (status, body) -> Error (Http_error (status, String.trim body))
  | Error _ as e -> e

let metrics ep =
  match get ep "/metrics" with
  | Ok (200, body) -> Ok body
  | Ok (status, body) -> Error (Http_error (status, String.trim body))
  | Error _ as e -> e

let submit ep ?(tenant = "anon") ?(tiny = false) ?select ?ids ?key ?deadline_s
    ?request_id ?on_request_id ?io_timeout_s ?on_event () =
  (* the trace id is minted here, at the client, unless the caller brings
     one; it travels both as a header (echoed on the response, even on
     errors) and as a wire field (into the WAL accept record) *)
  let rid = match request_id with Some r -> r | None -> Context.fresh () in
  with_conn ?io_timeout_s ep (fun c ->
      let body =
        Json.to_string
          (Wire.encode_submit
             (Wire.submit ~tiny ?select ?ids ?key ?deadline_s ~request_id:rid ()))
      in
      Http.write_request c ~meth:"POST" ~path:"/v1/campaign"
        ~headers:
          [
            ("content-type", "application/json");
            ("x-tenant", tenant);
            ("x-request-id", rid);
          ]
        body;
      let head = Http.read_response_head c in
      Option.iter
        (fun f -> f (Option.value (Http.resp_header head "x-request-id") ~default:rid))
        on_request_id;
      if head.Http.status = 429 then begin
        let retry =
          match Http.resp_header head "retry-after" with
          | Some s -> Option.value (float_of_string_opt s) ~default:1.
          | None -> 1.
        in
        ignore (Http.read_body c head);
        Error (Busy retry)
      end
      else if head.Http.status <> 200 then
        Error (Http_error (head.Http.status, String.trim (Http.read_body c head)))
      else if Http.resp_header head "transfer-encoding" <> Some "chunked" then
        Error (Protocol "expected a chunked verdict stream")
      else begin
        (* ndjson events can split across chunk boundaries: keep the
           unterminated tail in [buf] and parse only complete lines *)
        let buf = Buffer.create 1024 in
        let verdicts = Hashtbl.create 16 in
        let expected = ref None in
        let finished = ref false in
        let err = ref None in
        let handle_line line =
          if String.trim line <> "" && !err = None then
            match Result.bind (Json.parse line) Wire.decode_event with
            | Error e -> err := Some (Protocol ("bad event: " ^ e))
            | Ok ev -> (
              Option.iter (fun f -> f ev) on_event;
              match ev with
              | Wire.Accepted { jobs } -> expected := Some jobs
              | Wire.Verdict { index; outcome } -> Hashtbl.replace verdicts index outcome
              | Wire.Done _ -> finished := true)
        in
        let rec read_stream () =
          match Http.read_chunk c with
          | None -> ()
          | Some data ->
            Buffer.add_string buf data;
            let s = Buffer.contents buf in
            let rec split from =
              match String.index_from_opt s from '\n' with
              | Some i ->
                handle_line (String.sub s from (i - from));
                split (i + 1)
              | None -> String.sub s from (String.length s - from)
            in
            let rest = split 0 in
            Buffer.clear buf;
            Buffer.add_string buf rest;
            read_stream ()
        in
        read_stream ();
        handle_line (Buffer.contents buf);
        match !err with
        | Some e -> Error e
        | None ->
          if not !finished then Error (Protocol "stream ended before the done event")
          else begin
            let n = Option.value !expected ~default:(Hashtbl.length verdicts) in
            let rec collect i acc =
              if i < 0 then Ok acc
              else
                match Hashtbl.find_opt verdicts i with
                | Some o -> collect (i - 1) (o :: acc)
                | None -> Error (Protocol (Printf.sprintf "missing verdict %d of %d" i n))
            in
            collect (n - 1) []
          end
      end)

(* -- idempotent retry ------------------------------------------------------- *)

let job_status ?io_timeout_s ep key =
  match get ?io_timeout_s ep ("/v1/jobs/" ^ key) with
  | Ok (200, body) -> (
    match Result.bind (Json.parse (String.trim body)) Wire.decode_status with
    | Ok st -> Ok (Some st)
    | Error e -> Error (Protocol ("bad job status: " ^ e)))
  | Ok (404, _) -> Ok None
  | Ok (status, body) -> Error (Http_error (status, String.trim body))
  | Error _ as e -> e

(* Index-ordered outcomes from a finished status body — the same shape
   [submit] returns from a live stream. *)
let outcomes_of_status (st : Wire.job_status) =
  let arr = Array.make st.Wire.jobs None in
  List.iter
    (fun (i, o) -> if i >= 0 && i < st.Wire.jobs then arr.(i) <- Some o)
    st.Wire.verdicts;
  let rec collect i acc =
    if i < 0 then Ok acc
    else
      match arr.(i) with
      | Some o -> collect (i - 1) (o :: acc)
      | None -> Error (Protocol (Printf.sprintf "missing verdict %d of %d" i st.Wire.jobs))
  in
  collect (st.Wire.jobs - 1) []

let retryable = function
  | Busy _ | Connection _ | Protocol _ -> true
  | Http_error ((408 | 500 | 502 | 503 | 504), _) -> true
  | Http_error _ -> false

let submit_with_retry ep ?(attempts = 10) ?(tenant = "anon") ?(tiny = false) ?select ?ids
    ~key ?deadline_s ?request_id ?on_request_id ?(io_timeout_s = 30.) ?on_event () =
  (* mint the trace id once, outside the retry loop: every attempt of the
     same logical request carries the same id, so the daemon's WAL and
     flight recorder show retries as one correlated story *)
  let rid = match request_id with Some r -> r | None -> Context.fresh () in
  let rec go attempt backoff =
    let retry e backoff_floor =
      if attempt >= attempts then Error e
      else begin
        Unix.sleepf (Float.min 10. (Float.max backoff_floor backoff));
        go (attempt + 1) (Float.min 10. (backoff *. 2.))
      end
    in
    match
      submit ep ~tenant ~tiny ?select ?ids ~key ?deadline_s ~request_id:rid
        ?on_request_id ~io_timeout_s ?on_event ()
    with
    | Ok _ as ok -> ok
    | Error (Busy retry_after) -> retry (Busy retry_after) retry_after
    | Error e when not (retryable e) -> Error e
    | Error e -> (
      (* the stream died, but the daemon may still hold (or be computing)
         the verdicts under our key: poll before resubmitting, so a retry
         never re-runs work *)
      match job_status ~io_timeout_s ep key with
      | Ok (Some st) when st.Wire.finished -> outcomes_of_status st
      | _ -> retry e 0.05)
  in
  go 1 0.05
