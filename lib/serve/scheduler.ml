module Context = Mechaml_obs.Context
module Flight = Mechaml_obs.Flight
module Json = Mechaml_obs.Json
module Log = Mechaml_obs.Log
module Metrics = Mechaml_obs.Metrics
module Trace = Mechaml_obs.Trace

let m_jobs =
  Metrics.counter "serve_jobs_total" ~help:"Jobs executed by the daemon scheduler."

let m_rejected =
  Metrics.counter "serve_rejected_total"
    ~help:"Submissions rejected by admission control (queue bound or drain)."

let m_queue_depth =
  Metrics.gauge "serve_queue_depth" ~help:"Jobs queued in the daemon scheduler."

let m_running = Metrics.gauge "serve_jobs_running" ~help:"Jobs currently on a worker."

let m_deadline_kills =
  Metrics.counter "serve_deadline_kills_total"
    ~help:"In-flight jobs abandoned by the watchdog after their deadline."

let m_discard_errors =
  Metrics.counter "serve_discard_errors_total"
    ~help:"Exceptions raised by job discard/deadline callbacks."

type job = {
  run : unit -> unit;
  on_discard : unit -> unit;
  on_deadline : unit -> unit;
  deadline_s : float option;
  abandoned : bool Atomic.t;
  request_id : string option;
      (** trace context re-established on the worker domain around [run] *)
  on_dequeue : (float -> unit) option;
      (** called with the queue wait (seconds) when the job is dispatched *)
  mutable enqueued_at : float;  (** set at submission, under the lock *)
}

let job ?deadline_s ?(on_discard = Fun.id) ?on_deadline ?request_id ?on_dequeue run =
  {
    run;
    on_discard;
    on_deadline = Option.value on_deadline ~default:on_discard;
    deadline_s;
    abandoned = Atomic.make false;
    request_id;
    on_dequeue;
    enqueued_at = 0.;
  }

(* Discard/deadline callbacks unblock a client stream; one raising must
   neither kill its caller (worker, watchdog or drain) nor pass silently —
   it means a stream is now missing a stand-in verdict. *)
let guarded_callback ~what f =
  try f ()
  with e ->
    Metrics.incr m_discard_errors;
    Log.err (fun m -> m "scheduler: %s callback raised %s" what (Printexc.to_string e))

type tenant = {
  name : string;
  weight : int;
  jobs : job Queue.t;
  mutable inflight : int;
  mutable credits : int;
  mutable busy_s : float;  (** total worker seconds spent on this tenant *)
}

type t = {
  mutex : Mutex.t;
  work : Condition.t;  (** a job or a shutdown became available *)
  idle : Condition.t;  (** a job finished or the queue emptied *)
  workers : int;
  queue_bound : int;
  inflight_cap : int;
  weights : (string * int) list;
  by_name : (string, tenant) Hashtbl.t;
  mutable tenants : tenant array;  (** submission order, grows append-only *)
  mutable cursor : int;  (** round-robin position into [tenants] *)
  mutable queued : int;
  mutable running : int;
  mutable draining : bool;
  mutable stopped : bool;
  mutable ewma_job_s : float;  (** 0. until the first job completes *)
  mutable next_job : int;  (** ticket for the watchdog registry *)
  watched : (int, string * job * float) Hashtbl.t;
      (** running jobs with a deadline: id -> (tenant, job, absolute deadline) *)
  mutable domains : unit Domain.t list;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Called under the lock. *)
let tenant_of t name =
  match Hashtbl.find_opt t.by_name name with
  | Some tnt -> tnt
  | None ->
    let weight = max 1 (Option.value (List.assoc_opt name t.weights) ~default:1) in
    let tnt =
      { name; weight; jobs = Queue.create (); inflight = 0; credits = weight; busy_s = 0. }
    in
    Hashtbl.add t.by_name name tnt;
    t.tenants <- Array.append t.tenants [| tnt |];
    tnt

(* Weighted round-robin dequeue, called under the lock.  A tenant is
   eligible when it has queued work and a free in-flight slot; the cursor
   advances past the chosen tenant so equal-weight tenants interleave.  Two
   passes: first honouring the per-round credits, then — when every
   eligible tenant is out of credit — refilling all credits and taking the
   first eligible tenant of the new round. *)
let take_next t =
  if t.queued = 0 then None
  else begin
    let n = Array.length t.tenants in
    let eligible tnt = Queue.length tnt.jobs > 0 && tnt.inflight < t.inflight_cap in
    let pick tnt i =
      t.cursor <- (i + 1) mod n;
      tnt.credits <- tnt.credits - 1;
      t.queued <- t.queued - 1;
      tnt.inflight <- tnt.inflight + 1;
      t.running <- t.running + 1;
      let j = Queue.pop tnt.jobs in
      let ticket =
        match j.deadline_s with
        | None -> None
        | Some d ->
          let id = t.next_job in
          t.next_job <- id + 1;
          Hashtbl.add t.watched id (tnt.name, j, Unix.gettimeofday () +. d);
          Some id
      in
      Some (tnt, j, ticket)
    in
    let scan ~spend_credits =
      let rec go k =
        if k >= n then None
        else begin
          let i = (t.cursor + k) mod n in
          let tnt = t.tenants.(i) in
          if eligible tnt && ((not spend_credits) || tnt.credits > 0) then pick tnt i
          else go (k + 1)
        end
      in
      go 0
    in
    match scan ~spend_credits:true with
    | Some _ as got -> got
    | None ->
      (* every eligible tenant exhausted its round: start a new round *)
      Array.iter (fun tnt -> tnt.credits <- tnt.weight) t.tenants;
      scan ~spend_credits:false
  end

let worker t w () =
  let rec loop () =
    let job =
      locked t (fun () ->
          let rec await () =
            if t.stopped then None
            else
              match take_next t with
              | Some _ as got ->
                Metrics.set m_queue_depth (float_of_int t.queued);
                Metrics.set m_running (float_of_int t.running);
                got
              | None ->
                Condition.wait t.work t.mutex;
                await ()
          in
          await ())
    in
    match job with
    | None -> ()
    | Some (tnt, j, ticket) ->
      (* counted at dispatch: verdicts are pushed from inside [run], so by the
         time a client observes one the counter already covers its job *)
      Metrics.incr m_jobs;
      let t0 = Unix.gettimeofday () in
      Option.iter
        (fun f -> guarded_callback ~what:"dequeue" (fun () -> f (t0 -. j.enqueued_at)))
        j.on_dequeue;
      (try
         (* re-establish the submission's trace context on this domain, so
            the job span and everything under it carry the request id *)
         Context.with_current j.request_id (fun () ->
             Trace.with_span ~name:"serve.job"
               ~args:[ ("tenant", Trace.Str tnt.name); ("worker", Trace.Int w) ]
               j.run)
       with e ->
         Log.warn (fun m ->
             m "scheduler: job for tenant %s raised %s" tnt.name (Printexc.to_string e)));
      let dt = Unix.gettimeofday () -. t0 in
      if Atomic.get j.abandoned then
        Log.info (fun m ->
            m "scheduler: abandoned job for tenant %s completed after %.1fs" tnt.name dt);
      locked t (fun () ->
          Option.iter (Hashtbl.remove t.watched) ticket;
          tnt.inflight <- tnt.inflight - 1;
          tnt.busy_s <- tnt.busy_s +. dt;
          t.running <- t.running - 1;
          t.ewma_job_s <-
            (if t.ewma_job_s = 0. then dt else (0.8 *. t.ewma_job_s) +. (0.2 *. dt));
          Metrics.set m_running (float_of_int t.running);
          Metrics.set
            (Metrics.gauge "serve_tenant_busy_seconds"
               ~labels:[ ("tenant", tnt.name) ]
               ~help:"Worker seconds spent on this tenant's jobs.")
            tnt.busy_s;
          (* an in-flight slot freed: a capped tenant may be schedulable now *)
          Condition.broadcast t.work;
          Condition.broadcast t.idle);
      loop ()
  in
  loop ()

(* The watchdog abandons, it cannot cancel: OCaml domains have no
   asynchronous interruption, so an overdue job's worker slot stays occupied
   until the computation returns.  Abandoning fires [on_deadline] exactly
   once (the submitter's chance to push stand-in verdicts); when the real
   result eventually arrives the caller's first-write-wins discipline drops
   it.  Callbacks run outside the scheduler lock — they take locks of their
   own. *)
let watchdog t () =
  let rec loop () =
    let stop, overdue =
      locked t (fun () ->
          if t.stopped then (true, [])
          else begin
            let now = Unix.gettimeofday () in
            let hit =
              Hashtbl.fold
                (fun id (tenant, j, dl) acc ->
                  if dl <= now then (id, tenant, j) :: acc else acc)
                t.watched []
            in
            List.iter (fun (id, _, _) -> Hashtbl.remove t.watched id) hit;
            (false, hit)
          end)
    in
    List.iter
      (fun (_, tenant, j) ->
        if Atomic.compare_and_set j.abandoned false true then begin
          Metrics.incr m_deadline_kills;
          Flight.event ~kind:"watchdog_kill" ?trace:j.request_id
            ~fields:[ ("tenant", Json.Str tenant) ]
            ();
          Log.warn (fun m ->
              m "scheduler: job for tenant %s missed its deadline, abandoned" tenant);
          guarded_callback ~what:"deadline" j.on_deadline
        end)
      overdue;
    if not stop then begin
      Unix.sleepf 0.05;
      loop ()
    end
  in
  loop ()

let create ?(workers = 4) ?(queue_bound = 256) ?(inflight_cap = 64) ?(weights = []) () =
  if workers < 1 then invalid_arg "Scheduler.create: workers must be positive";
  if queue_bound < 0 then invalid_arg "Scheduler.create: queue_bound must be non-negative";
  if inflight_cap < 1 then invalid_arg "Scheduler.create: inflight_cap must be positive";
  List.iter
    (fun (name, w) ->
      if w < 1 then
        invalid_arg (Printf.sprintf "Scheduler.create: weight for %s must be positive" name))
    weights;
  let t =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      workers;
      queue_bound;
      inflight_cap;
      weights;
      by_name = Hashtbl.create 8;
      tenants = [||];
      cursor = 0;
      queued = 0;
      running = 0;
      draining = false;
      stopped = false;
      ewma_job_s = 0.;
      next_job = 0;
      watched = Hashtbl.create 16;
      domains = [];
    }
  in
  t.domains <-
    Domain.spawn (watchdog t) :: List.init workers (fun w -> Domain.spawn (worker t w));
  t

type rejection = Busy of { retry_after_s : float } | Draining

let submit t ~tenant jobs =
  let n = List.length jobs in
  let result =
    locked t (fun () ->
        if t.draining then Error Draining
        else if t.queued + n > t.queue_bound then begin
          (* hint: how long until the backlog ahead of this batch clears,
             assuming the observed per-job duration spread over the pool *)
          let per_job = if t.ewma_job_s = 0. then 0.05 else t.ewma_job_s in
          let backlog = float_of_int (t.queued + t.running) in
          let retry =
            Float.min 60. (Float.max 0.05 (backlog *. per_job /. float_of_int t.workers))
          in
          Error (Busy { retry_after_s = retry })
        end
        else begin
          let tnt = tenant_of t tenant in
          let now = Unix.gettimeofday () in
          List.iter
            (fun job ->
              job.enqueued_at <- now;
              Queue.add job tnt.jobs)
            jobs;
          t.queued <- t.queued + n;
          Metrics.set m_queue_depth (float_of_int t.queued);
          Condition.broadcast t.work;
          Ok ()
        end)
  in
  (match result with Error _ -> Metrics.incr m_rejected | Ok () -> ());
  result

type stats = {
  queued : int;
  running : int;
  tenants : (string * int * int) list;
}

let stats t =
  locked t (fun () ->
      {
        queued = t.queued;
        running = t.running;
        tenants =
          Array.to_list
            (Array.map
               (fun tnt -> (tnt.name, Queue.length tnt.jobs, tnt.inflight))
               t.tenants);
      })

let drain ?deadline_s t =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s in
  Mutex.lock t.mutex;
  t.draining <- true;
  Condition.broadcast t.work;
  let rec wait () =
    if t.queued > 0 || t.running > 0 then begin
      (match deadline with
      | Some d when Unix.gettimeofday () >= d && t.queued > 0 ->
        (* deadline passed: abandon what never started; running jobs still
           finish below *)
        Log.warn (fun m ->
            m "scheduler: drain deadline hit, discarding %d queued jobs" t.queued);
        let discarded = ref [] in
        Array.iter
          (fun tnt ->
            Queue.iter (fun j -> discarded := j :: !discarded) tnt.jobs;
            Queue.clear tnt.jobs)
          t.tenants;
        t.queued <- 0;
        Metrics.set m_queue_depth 0.;
        (* discard callbacks push stand-in verdicts into stores with locks of
           their own — never invoke them under the scheduler lock *)
        Mutex.unlock t.mutex;
        List.iter
          (fun j ->
            if Atomic.compare_and_set j.abandoned false true then
              guarded_callback ~what:"discard" j.on_discard)
          (List.rev !discarded);
        Mutex.lock t.mutex
      | _ -> ());
      if t.queued > 0 || t.running > 0 then begin
        Condition.wait t.idle t.mutex;
        wait ()
      end
    end
  in
  wait ();
  t.stopped <- true;
  Condition.broadcast t.work;
  let ds = t.domains in
  t.domains <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join ds
