module Log = Mechaml_obs.Log
module Prng = Mechaml_util.Prng

type kind = Delay | Torn | Reset | Garbage

let all_kinds = [ Delay; Torn; Reset; Garbage ]

let kind_string = function
  | Delay -> "delay"
  | Torn -> "torn"
  | Reset -> "reset"
  | Garbage -> "garbage"

let of_string s =
  match String.trim s with
  | "all" -> Ok all_kinds
  | s ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | part :: rest -> (
        match String.trim part with
        | "delay" -> go (Delay :: acc) rest
        | "torn" -> go (Torn :: acc) rest
        | "reset" -> go (Reset :: acc) rest
        | "garbage" -> go (Garbage :: acc) rest
        | other -> Error (Printf.sprintf "unknown fault kind %S (delay|torn|reset|garbage|all)" other))
    in
    go [] (String.split_on_char '+' s)

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  target : Unix.sockaddr;
  seed : int;
  kinds : kind list;
  counter : int Atomic.t;  (** indexes the stateless PRNG: one draw per chunk *)
  stopping : bool Atomic.t;
  omutex : Mutex.t;
  mutable open_fds : Unix.file_descr list;  (** closed at {!stop} to unblock forwarders *)
  mutable acceptor_d : unit Domain.t option;
  mutable conn_ds : unit Domain.t list;
}

let port p = p.bound_port

let track p fd =
  Mutex.lock p.omutex;
  p.open_fds <- fd :: p.open_fds;
  Mutex.unlock p.omutex

let untrack p fd =
  Mutex.lock p.omutex;
  p.open_fds <- List.filter (fun f -> f != fd) p.open_fds;
  Mutex.unlock p.omutex

let quiet_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* One fresh draw per call — the schedule is a pure function of (seed, draw
   index), so a given seed misbehaves identically on every run. *)
let draw p bound =
  let i = Atomic.fetch_and_add p.counter 1 in
  (i, Prng.mix_int ~seed:p.seed i bound)

let enabled p k = List.mem k p.kinds

(* What to do with one forwarded chunk.  Corruption (garbage) only fires
   towards the client: requests travel over TCP whose checksums make silent
   request corruption unrepresentable, while a response mangled by a buggy
   middlebox is exactly what the client's retry path must survive. *)
type action = Pass | Delayed of float | Tear of float | Cut | Mangle

let decide p ~downstream =
  let i, d = draw p 100 in
  if d < 2 && enabled p Reset then Cut
  else if d < 6 && downstream && enabled p Garbage then Mangle
  else if d < 20 && enabled p Torn then Tear (Prng.mix_float ~seed:p.seed i 0.02)
  else if d < 50 && enabled p Delay then Delayed (Prng.mix_float ~seed:p.seed i 0.03)
  else Pass

let write_all fd bytes len =
  let sent = ref 0 in
  while !sent < len do
    match Unix.write fd bytes !sent (len - !sent) with
    | n -> sent := !sent + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let garbage_bytes p =
  let i, n = draw p 192 in
  let len = 64 + n in
  Bytes.init len (fun j -> Char.chr (Prng.mix_int ~seed:p.seed (i + j + 1) 256))

(* Copy [src] to [dst] chunk by chunk, injecting one fault decision per
   chunk.  Returns when the stream ends, a fault cuts it, or {!stop} closes
   the descriptors under us. *)
let forward p ~downstream src dst =
  let buf = Bytes.create 4096 in
  let rec loop () =
    match Unix.read src buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error _ -> `Broken
    | 0 -> `Eof
    | n -> (
      match decide p ~downstream with
      | Cut ->
        Log.info (fun m -> m "chaos: cutting a %s stream" (if downstream then "response" else "request"));
        `Cut
      | Mangle ->
        Log.info (fun m -> m "chaos: mangling a response stream");
        let g = garbage_bytes p in
        (try write_all dst g (Bytes.length g) with Unix.Unix_error _ -> ());
        `Cut
      | Delayed s -> (
        Unix.sleepf s;
        match write_all dst buf n with
        | () -> loop ()
        | exception Unix.Unix_error _ -> `Broken)
      | Tear s -> (
        (* split the write at an arbitrary byte boundary with a pause in
           between — a peer that assumes one read per message breaks here *)
        let half = max 1 (n / 2) in
        match
          write_all dst buf half;
          Unix.sleepf s;
          write_all dst (Bytes.sub buf half (n - half)) (n - half)
        with
        | () -> loop ()
        | exception Unix.Unix_error _ -> `Broken)
      | Pass -> (
        match write_all dst buf n with
        | () -> loop ()
        | exception Unix.Unix_error _ -> `Broken))
  in
  let outcome = loop () in
  (match outcome with
  | `Eof -> ( try Unix.shutdown dst Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ())
  | `Cut | `Broken ->
    quiet_close src;
    quiet_close dst);
  outcome

let handle_conn p client =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> quiet_close client
  | server -> (
    match Unix.connect server p.target with
    | exception Unix.Unix_error _ ->
      quiet_close server;
      quiet_close client
    | () ->
      track p client;
      track p server;
      (* upstream copy runs in its own domain; this one handles downstream *)
      let up = Domain.spawn (fun () -> ignore (forward p ~downstream:false client server)) in
      ignore (forward p ~downstream:true server client);
      Domain.join up;
      untrack p client;
      untrack p server;
      quiet_close client;
      quiet_close server)

let acceptor p () =
  let fd = p.listen_fd in
  while not (Atomic.get p.stopping) do
    let readable =
      try (match Unix.select [ fd ] [] [] 0.2 with [], _, _ -> false | _ -> true)
      with Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if readable then
      try
        let c, _ = Unix.accept fd in
        Unix.clear_nonblock c;
        p.conn_ds <- Domain.spawn (fun () -> handle_conn p c) :: p.conn_ds
      with
      | Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
        ->
        ()
      | Unix.Unix_error _ when Atomic.get p.stopping -> ()
  done

let start ?(host = "127.0.0.1") ?(port = 0) ~target_host ~target_port ~seed
    ?(kinds = all_kinds) () =
  let target =
    let addr =
      try Unix.inet_addr_of_string target_host
      with _ -> (Unix.gethostbyname target_host).Unix.h_addr_list.(0)
    in
    Unix.ADDR_INET (addr, target_port)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  Unix.set_nonblock fd;
  let bound_port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let p =
    {
      listen_fd = fd;
      bound_port;
      target;
      seed;
      kinds;
      counter = Atomic.make 0;
      stopping = Atomic.make false;
      omutex = Mutex.create ();
      open_fds = [];
      acceptor_d = None;
      conn_ds = [];
    }
  in
  p.acceptor_d <- Some (Domain.spawn (acceptor p));
  Log.info (fun m ->
      m "chaos: proxying %s:%d -> %s:%d (seed %d, faults %s)" host bound_port target_host
        target_port seed
        (String.concat "+" (List.map kind_string kinds)));
  p

let stop p =
  if not (Atomic.exchange p.stopping true) then begin
    Option.iter Domain.join p.acceptor_d;
    p.acceptor_d <- None;
    (try Unix.close p.listen_fd with _ -> ());
    (* unblock forwarders parked in [read] on live connections *)
    Mutex.lock p.omutex;
    let fds = p.open_fds in
    p.open_fds <- [];
    Mutex.unlock p.omutex;
    List.iter quiet_close fds;
    List.iter Domain.join p.conn_ds;
    p.conn_ds <- []
  end
