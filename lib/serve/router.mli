(** Request dispatch for the verification daemon.

    Endpoints:

    - [GET /healthz] — liveness, ["ok\n"];
    - [GET /metrics] — the process {!Mechaml_obs.Metrics} registry in
      Prometheus text exposition format (server gauges refreshed on
      scrape), including the cumulative [serve_stage_seconds_bucket{le=...}]
      SLO histograms;
    - [GET /v1/stats] — queue/tenant/cache/quarantine stats as JSON;
    - [GET /v1/slo] — the per-tenant × per-stage SLO burn-rate view
      ({!Slo.view});
    - [GET /v1/debug/flight] — the flight-recorder ring as ndjson
      ({!Mechaml_obs.Flight.dump}), no configuration required;
    - [POST /v1/campaign] — submit a campaign ({!Wire.submit} body, tenant
      from the [x-tenant] header, default ["anon"]); streams
      newline-delimited {!Wire.event} JSON as a chunked response while jobs
      run, or answers [429 + Retry-After] / [503] under admission control.
      A known idempotency key re-attaches to the original submission and
      replays its verdicts instead of re-running anything;
    - [GET /v1/jobs/<key>] — the {!Wire.job_status} of a submission by
      idempotency key ([404] when unknown): how a reconnecting client
      collects verdicts without holding a stream open.

    Anything else is [404]; a known path with the wrong verb is [405].

    Every request is assigned a trace id — the validated [X-Request-Id]
    header when present, minted otherwise — echoed on the response header,
    set as the handling domain's {!Mechaml_obs.Context}, stored into the
    submission (and hence its WAL accept record), and stamped onto every
    streamed event. *)

type ctx = {
  cache : Mechaml_engine.Cache.t;  (** shared across every request *)
  sched : Scheduler.t;
  store : Store.t;
  slo : Slo.t;
  started_at : float;
}

val handle : ctx -> Http.conn -> Http.request -> unit
(** Serve one request and write the full response.  Raises only on
    connection-level I/O failures ([Unix_error], {!Http.Closed}) — protocol
    errors are answered with 4xx/5xx. *)
