(** A multi-tenant fair job scheduler on a fixed pool of OCaml 5 domains —
    the daemon's execution engine.

    Unlike {!Mechaml_engine.Pool.map}, which runs one batch to completion,
    this pool is persistent: worker domains live for the daemon's lifetime
    and drain a set of per-tenant queues.  Three production concerns are
    handled at the dequeue point:

    - {b weighted round-robin}: tenants are visited in submission order,
      each spending up to [weight] credits per round before the round
      resets, so a tenant with weight 3 gets ~3x the job slots of a
      weight-1 tenant under contention — but an idle tenant never blocks
      anyone (work-conserving);
    - {b per-tenant in-flight caps}: no tenant occupies more than
      [inflight_cap] workers at once, so a burst from one client cannot
      monopolize the pool even between rounds;
    - {b admission control}: the total queue is bounded; a submission that
      would overflow it is rejected with a retry hint derived from the
      observed job duration (EWMA), which the server surfaces as
      [429 Retry-After].

    Jobs are opaque thunks; a raising job is caught and logged, never fatal
    to its worker. *)

type t

val create :
  ?workers:int ->
  ?queue_bound:int ->
  ?inflight_cap:int ->
  ?weights:(string * int) list ->
  unit ->
  t
(** Spawn [workers] worker domains (default 4).  [queue_bound] (default 256)
    bounds the total queued jobs across tenants; [inflight_cap] (default 64)
    bounds one tenant's concurrently running jobs; [weights] assigns
    round-robin weights per tenant name (default 1; entries for unknown
    tenants are kept for when they first appear).  Raises
    [Invalid_argument] on non-positive parameters. *)

type job

val job :
  ?deadline_s:float ->
  ?on_discard:(unit -> unit) ->
  ?on_deadline:(unit -> unit) ->
  ?request_id:string ->
  ?on_dequeue:(float -> unit) ->
  (unit -> unit) ->
  job
(** A unit of work.  [on_discard] (default a no-op) fires if the job is
    dropped unrun by a {!drain} deadline — the submitter's chance to unblock
    anything waiting on the job's result.  With [deadline_s], a watchdog
    domain abandons the job once it has been running that long:
    [on_deadline] (default [on_discard]) fires exactly once, while the
    computation itself keeps its worker until it returns — OCaml domains
    cannot be interrupted, so the submitter must treat the eventual real
    result as stale (first-write-wins).  A callback that raises is logged
    and counted ([serve_discard_errors_total]), never fatal.

    [request_id] is the submission's trace id: the worker re-establishes it
    as the domain's {!Mechaml_obs.Context} around the run, so the job span
    and everything recorded beneath it carries the id, and a watchdog kill
    is flight-recorded against it.  [on_dequeue] receives the queue wait in
    seconds at dispatch — the hook the store uses to observe the [queue]
    SLO stage. *)

type rejection =
  | Busy of { retry_after_s : float }  (** queue bound hit *)
  | Draining  (** shutdown in progress, no new work *)

val submit : t -> tenant:string -> job list -> (unit, rejection) result
(** Enqueue a batch of jobs for [tenant] — all or nothing: the batch is
    rejected whole when it would overflow the queue bound.  Never blocks. *)

type stats = {
  queued : int;  (** jobs waiting across all tenants *)
  running : int;  (** jobs currently on a worker *)
  tenants : (string * int * int) list;
      (** per tenant: (name, queued, in-flight), submission order *)
}

val stats : t -> stats

val drain : ?deadline_s:float -> t -> unit
(** Graceful shutdown: reject new submissions, run every queued job to
    completion, then stop and join the workers.  With [deadline_s], jobs
    still queued when the deadline expires are discarded (running jobs are
    always allowed to finish — verification stages cannot be interrupted
    midway).  Idempotent. *)
