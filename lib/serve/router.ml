module Context = Mechaml_obs.Context
module Flight = Mechaml_obs.Flight
module Json = Mechaml_obs.Json
module Metrics = Mechaml_obs.Metrics
module Trace = Mechaml_obs.Trace
module Log = Mechaml_obs.Log
module Cache = Mechaml_engine.Cache
module Campaign = Mechaml_engine.Campaign

let m_requests =
  Metrics.counter "serve_requests_total" ~help:"HTTP requests handled by the daemon."

let m_campaigns =
  Metrics.counter "serve_campaigns_total" ~help:"Campaign submissions accepted."

let m_http_errors =
  Metrics.counter "serve_http_errors_total"
    ~help:"Requests answered with a 4xx/5xx status."

let m_cache_hit_rate =
  Metrics.gauge "serve_cache_hit_rate"
    ~help:"Hit rate of the shared verification cache since daemon start."

let m_cache_entries =
  Metrics.gauge "serve_cache_entries" ~help:"Entries in the shared verification cache."

let m_uptime = Metrics.gauge "serve_uptime_seconds" ~help:"Seconds since daemon start."

type ctx = {
  cache : Cache.t;
  sched : Scheduler.t;
  store : Store.t;
  slo : Slo.t;
  started_at : float;
}

let refresh_gauges ctx =
  let s = Cache.stats ctx.cache in
  Metrics.set m_cache_hit_rate (Cache.hit_rate s);
  Metrics.set m_cache_entries (float_of_int s.Cache.entries);
  Metrics.set m_uptime (Unix.gettimeofday () -. ctx.started_at)

let json_response conn ~status v =
  Http.respond conn ~status
    ~headers:[ ("content-type", "application/json") ]
    (Json.to_string v ^ "\n")

let error_response conn ~status ?(headers = []) msg =
  Metrics.incr m_http_errors;
  Flight.event ~kind:"http_error"
    ~fields:[ ("status", Json.Num (float_of_int status)); ("error", Json.Str msg) ]
    ();
  Http.respond conn ~status
    ~headers:(("content-type", "application/json") :: headers)
    (Json.to_string (Json.Obj [ ("error", Json.Str msg) ]) ^ "\n")

(* -- GET /v1/stats ---------------------------------------------------------- *)

let stats_body ctx =
  let c = Cache.stats ctx.cache in
  let s = Scheduler.stats ctx.sched in
  Json.Obj
    [
      ("schema", Json.Str "mechaml-serve-stats/1");
      ("uptime_s", Json.Num (Unix.gettimeofday () -. ctx.started_at));
      ("queued", Json.Num (float_of_int s.Scheduler.queued));
      ("running", Json.Num (float_of_int s.Scheduler.running));
      ( "tenants",
        Json.List
          (List.map
             (fun (name, queued, inflight) ->
               Json.Obj
                 [
                   ("name", Json.Str name);
                   ("queued", Json.Num (float_of_int queued));
                   ("inflight", Json.Num (float_of_int inflight));
                 ])
             s.Scheduler.tenants) );
      ( "cache",
        Json.Obj
          [
            ("entries", Json.Num (float_of_int c.Cache.entries));
            ("closure_hits", Json.Num (float_of_int c.Cache.closure_hits));
            ("closure_misses", Json.Num (float_of_int c.Cache.closure_misses));
            ("check_hits", Json.Num (float_of_int c.Cache.check_hits));
            ("check_misses", Json.Num (float_of_int c.Cache.check_misses));
            ("evictions", Json.Num (float_of_int c.Cache.evictions));
            ("hit_rate", Json.Num (Cache.hit_rate c));
          ] );
      ( "quarantined",
        Json.List
          (List.map
             (fun (key, reason) ->
               Json.Obj [ ("digest", Json.Str key); ("reason", Json.Str reason) ])
             (Quarantine.active (Store.quarantine ctx.store))) );
      ( "sharding",
        match Store.sharding ctx.store with
        | None -> Json.Obj [ ("enabled", Json.Bool false) ]
        | Some cfg ->
          Json.Obj
            [
              ("enabled", Json.Bool true);
              ("shards", Json.Num (float_of_int cfg.Mechaml_ts.Shard.shards));
              ( "mem_budget",
                match cfg.Mechaml_ts.Shard.mem_budget with
                | None -> Json.Null
                | Some b -> Json.Num (float_of_int b) );
              ( "spills",
                Json.Num (float_of_int (Mechaml_util.Segment.total_spills ())) );
              ( "reloads",
                Json.Num (float_of_int (Mechaml_util.Segment.total_reloads ())) );
            ] );
      ( "distribution",
        match Store.sharding ctx.store with
        | Some { Mechaml_ts.Shard.distribution = Some d; _ } ->
          Json.Obj
            [
              ("enabled", Json.Bool true);
              ( "mode",
                match d.Mechaml_ts.Shard.dist_mode with
                | Mechaml_ts.Shard.Fork n -> Json.Str (Printf.sprintf "fork:%d" n)
                | Mechaml_ts.Shard.Connect addrs ->
                  Json.Str ("connect:" ^ String.concat "," addrs) );
              ("deadline_s", Json.Num d.Mechaml_ts.Shard.dist_deadline_s);
              ( "rounds",
                Json.Num (float_of_int (Mechaml_dist.Distshard.total_rounds ())) );
              ( "bytes_tx",
                Json.Num (float_of_int (Mechaml_dist.Distshard.total_bytes_tx ())) );
              ( "bytes_rx",
                Json.Num (float_of_int (Mechaml_dist.Distshard.total_bytes_rx ())) );
              ( "worker_restarts",
                Json.Num (float_of_int (Mechaml_dist.Distshard.total_restarts ())) );
            ]
        | _ -> Json.Obj [ ("enabled", Json.Bool false) ] );
    ]

(* -- POST /v1/campaign ------------------------------------------------------ *)

(* The streaming loop: the store owns every verdict, this (connection
   handler) domain just pages through the entry's completion order into
   chunked ndjson events as they land.  If the client goes away mid-stream
   the write raises; the jobs keep running and their verdicts stay in the
   store — a reconnect with the same idempotency key attaches to the entry
   and replays everything from the start without re-running a single job. *)
let campaign ctx conn (req : Http.request) ~request_id =
  let t_admit = Unix.gettimeofday () in
  match Json.parse req.Http.body with
  | Error e -> error_response conn ~status:400 ("invalid JSON body: " ^ e)
  | Ok body -> (
    match Wire.decode_submit body with
    | Error e -> error_response conn ~status:400 e
    | Ok sub -> (
      let tenant = Option.value (Http.header req "x-tenant") ~default:"anon" in
      (* the header id (or the minted one already echoed to the client) is
         the submission's trace id; it rides into the WAL accept record *)
      let sub = { sub with Wire.request_id = Some request_id } in
      match Store.submit ctx.store ~tenant sub with
      | Error (Store.Invalid e) -> error_response conn ~status:400 e
      | Error (Store.Rejected (Scheduler.Busy { retry_after_s })) ->
        error_response conn ~status:429
          ~headers:
            [ ("retry-after", string_of_int (int_of_float (Float.ceil retry_after_s))) ]
          (Printf.sprintf "queue full, retry after %.2fs" retry_after_s)
      | Error (Store.Rejected Scheduler.Draining) ->
        error_response conn ~status:503 "daemon is draining"
      | Ok (entry, how) ->
        let n = Store.size entry in
        Metrics.incr m_campaigns;
        Slo.observe ctx.slo ~tenant ~stage:"admission" (Unix.gettimeofday () -. t_admit);
        Flight.event ~kind:"admission"
          ~fields:
            [
              ("key", Json.Str (Store.key entry));
              ("tenant", Json.Str tenant);
              ("jobs", Json.Num (float_of_int n));
              ( "how",
                Json.Str (match how with `Fresh -> "fresh" | `Attached -> "attached") );
            ]
          ();
        Log.info (fun m ->
            m "serve: %s %d jobs from tenant %s (key %s)"
              (match how with `Fresh -> "accepted" | `Attached -> "re-attached")
              n tenant (Store.key entry));
        let send ev =
          Http.chunk conn
            (Json.to_string (Wire.encode_event ~request_id ev) ^ "\n")
        in
        let t_stream = Unix.gettimeofday () in
        Http.start_chunked conn ~status:200
          ~headers:[ ("content-type", "application/x-ndjson") ]
          ();
        send (Wire.Accepted { jobs = n });
        let rec stream pos =
          match Store.await ctx.store entry ~pos with
          | Store.Next (i, o) ->
            send (Wire.Verdict { index = i; outcome = o });
            stream (pos + 1)
          | Store.Finished -> ()
        in
        stream 0;
        let cs = Cache.stats ctx.cache in
        send
          (Wire.Done
             {
               jobs = n;
               cache_entries = cs.Cache.entries;
               cache_hit_rate = Cache.hit_rate cs;
             });
        Http.finish_chunked conn;
        Slo.observe ctx.slo ~tenant ~stage:"stream" (Unix.gettimeofday () -. t_stream)))

(* -- GET /v1/jobs/<key> ----------------------------------------------------- *)

let job_status ctx conn key =
  match Store.status ctx.store ~key with
  | None -> error_response conn ~status:404 "unknown job key"
  | Some st -> json_response conn ~status:200 (Wire.encode_status st)

(* -- dispatch --------------------------------------------------------------- *)

let jobs_prefix = "/v1/jobs/"

let known_path p path =
  path = "/healthz" || path = "/metrics" || path = "/v1/stats" || path = "/v1/slo"
  || path = "/v1/debug/flight" || path = "/v1/campaign"
  || (String.length path > p && String.sub path 0 p = jobs_prefix)

let handle ctx conn (req : Http.request) =
  Metrics.incr m_requests;
  (* A client-supplied X-Request-Id (validated: it travels into WAL lines
     and log output) is adopted as the trace id; otherwise one is minted
     here, at admission.  Either way it is stamped onto the response before
     any routing, so even a 4xx carries it. *)
  let request_id =
    match Http.header req "x-request-id" with
    | Some r when Wire.valid_key r -> r
    | _ -> Context.fresh ()
  in
  Http.set_response_header conn "x-request-id" request_id;
  Context.with_id request_id (fun () ->
      Trace.with_span ~name:"serve.request"
        ~args:[ ("method", Trace.Str req.Http.meth); ("path", Trace.Str req.Http.path) ]
        (fun () ->
          let p = String.length jobs_prefix in
          match (req.Http.meth, req.Http.path) with
          | "GET", "/healthz" ->
            Http.respond conn ~status:200
              ~headers:[ ("content-type", "text/plain") ]
              "ok\n"
          | "GET", "/metrics" ->
            refresh_gauges ctx;
            Http.respond conn ~status:200
              ~headers:[ ("content-type", "text/plain; version=0.0.4") ]
              (Metrics.to_prometheus ())
          | "GET", "/v1/stats" -> json_response conn ~status:200 (stats_body ctx)
          | "GET", "/v1/slo" -> json_response conn ~status:200 (Slo.view ctx.slo)
          | "GET", "/v1/debug/flight" ->
            Http.respond conn ~status:200
              ~headers:[ ("content-type", "application/x-ndjson") ]
              (Flight.dump ())
          | "POST", "/v1/campaign" -> campaign ctx conn req ~request_id
          | "GET", path when String.length path > p && String.sub path 0 p = jobs_prefix
            ->
            job_status ctx conn (String.sub path p (String.length path - p))
          | _, path when known_path p path ->
            error_response conn ~status:405 "method not allowed"
          | _ -> error_response conn ~status:404 "no such endpoint"))
