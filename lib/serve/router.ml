module Json = Mechaml_obs.Json
module Metrics = Mechaml_obs.Metrics
module Trace = Mechaml_obs.Trace
module Log = Mechaml_obs.Log
module Cache = Mechaml_engine.Cache
module Campaign = Mechaml_engine.Campaign

let m_requests =
  Metrics.counter "serve_requests_total" ~help:"HTTP requests handled by the daemon."

let m_campaigns =
  Metrics.counter "serve_campaigns_total" ~help:"Campaign submissions accepted."

let m_http_errors =
  Metrics.counter "serve_http_errors_total"
    ~help:"Requests answered with a 4xx/5xx status."

let m_cache_hit_rate =
  Metrics.gauge "serve_cache_hit_rate"
    ~help:"Hit rate of the shared verification cache since daemon start."

let m_cache_entries =
  Metrics.gauge "serve_cache_entries" ~help:"Entries in the shared verification cache."

let m_uptime = Metrics.gauge "serve_uptime_seconds" ~help:"Seconds since daemon start."

type ctx = {
  cache : Cache.t;
  sched : Scheduler.t;
  started_at : float;
}

let refresh_gauges ctx =
  let s = Cache.stats ctx.cache in
  Metrics.set m_cache_hit_rate (Cache.hit_rate s);
  Metrics.set m_cache_entries (float_of_int s.Cache.entries);
  Metrics.set m_uptime (Unix.gettimeofday () -. ctx.started_at)

let json_response conn ~status v =
  Http.respond conn ~status
    ~headers:[ ("content-type", "application/json") ]
    (Json.to_string v ^ "\n")

let error_response conn ~status ?(headers = []) msg =
  Metrics.incr m_http_errors;
  Http.respond conn ~status
    ~headers:(("content-type", "application/json") :: headers)
    (Json.to_string (Json.Obj [ ("error", Json.Str msg) ]) ^ "\n")

(* -- GET /v1/stats ---------------------------------------------------------- *)

let stats_body ctx =
  let c = Cache.stats ctx.cache in
  let s = Scheduler.stats ctx.sched in
  Json.Obj
    [
      ("schema", Json.Str "mechaml-serve-stats/1");
      ("uptime_s", Json.Num (Unix.gettimeofday () -. ctx.started_at));
      ("queued", Json.Num (float_of_int s.Scheduler.queued));
      ("running", Json.Num (float_of_int s.Scheduler.running));
      ( "tenants",
        Json.List
          (List.map
             (fun (name, queued, inflight) ->
               Json.Obj
                 [
                   ("name", Json.Str name);
                   ("queued", Json.Num (float_of_int queued));
                   ("inflight", Json.Num (float_of_int inflight));
                 ])
             s.Scheduler.tenants) );
      ( "cache",
        Json.Obj
          [
            ("entries", Json.Num (float_of_int c.Cache.entries));
            ("closure_hits", Json.Num (float_of_int c.Cache.closure_hits));
            ("closure_misses", Json.Num (float_of_int c.Cache.closure_misses));
            ("check_hits", Json.Num (float_of_int c.Cache.check_hits));
            ("check_misses", Json.Num (float_of_int c.Cache.check_misses));
            ("evictions", Json.Num (float_of_int c.Cache.evictions));
            ("hit_rate", Json.Num (Cache.hit_rate c));
          ] );
    ]

(* -- POST /v1/campaign ------------------------------------------------------ *)

(* A drain deadline may drop a queued job without running it; the stream
   still owes the client one verdict per accepted job, so the discard hook
   pushes this stand-in. *)
let discarded_outcome (spec : Campaign.spec) =
  {
    Campaign.spec_id = spec.Campaign.id;
    family = spec.Campaign.family;
    verdict = Campaign.Failed "discarded: daemon drained before the job ran";
    iterations = 0;
    states_learned = 0;
    knowledge = 0;
    tests_executed = 0;
    test_steps = 0;
    attempts = 0;
    duration_s = 0.;
    closure_seconds = 0.;
    check_seconds = 0.;
    test_seconds = 0.;
    max_closure_states = 0;
    max_product_states = 0;
    closure_delta_edges = 0;
    product_states_reused = 0;
    sat_seed_hit_rate = 0.;
    cache = { closure_hits = 0; closure_misses = 0; check_hits = 0; check_misses = 0 };
    fault = spec.Campaign.inject;
    supervision = None;
  }

(* The streaming loop: jobs land on the scheduler, workers push outcomes
   into a request-local queue, and this (connection-handler) domain drains
   the queue into chunked ndjson events as they arrive.  If the client goes
   away mid-stream the write raises; the jobs keep running — their results
   land in a queue nobody reads, which is garbage-collected once the last
   job finished.  The shared cache keeps everything they computed. *)
let campaign ctx conn (req : Http.request) =
  match Json.parse req.Http.body with
  | Error e -> error_response conn ~status:400 ("invalid JSON body: " ^ e)
  | Ok body -> (
    match Result.bind (Wire.decode_submit body) Wire.resolve with
    | Error e -> error_response conn ~status:400 e
    | Ok specs ->
      let tenant = Option.value (Http.header req "x-tenant") ~default:"anon" in
      let n = List.length specs in
      let results = Queue.create () in
      let rmutex = Mutex.create () in
      let rcond = Condition.create () in
      let push i o =
        Mutex.lock rmutex;
        Queue.add (i, o) results;
        Condition.signal rcond;
        Mutex.unlock rmutex
      in
      let jobs =
        List.mapi
          (fun i spec ->
            Scheduler.job
              ~on_discard:(fun () -> push i (discarded_outcome spec))
              (fun () -> push i (Campaign.run_spec ~cache:ctx.cache spec)))
          specs
      in
      (match Scheduler.submit ctx.sched ~tenant jobs with
      | Error (Scheduler.Busy { retry_after_s }) ->
        error_response conn ~status:429
          ~headers:
            [ ("retry-after", string_of_int (int_of_float (Float.ceil retry_after_s))) ]
          (Printf.sprintf "queue full, retry after %.2fs" retry_after_s)
      | Error Scheduler.Draining ->
        error_response conn ~status:503 "daemon is draining"
      | Ok () ->
        Metrics.incr m_campaigns;
        Log.info (fun m -> m "serve: accepted %d jobs from tenant %s" n tenant);
        let send ev = Http.chunk conn (Json.to_string (Wire.encode_event ev) ^ "\n") in
        Http.start_chunked conn ~status:200
          ~headers:[ ("content-type", "application/x-ndjson") ]
          ();
        send (Wire.Accepted { jobs = n });
        let received = ref 0 in
        while !received < n do
          let i, o =
            Mutex.lock rmutex;
            while Queue.is_empty results do
              Condition.wait rcond rmutex
            done;
            let x = Queue.pop results in
            Mutex.unlock rmutex;
            x
          in
          incr received;
          send (Wire.Verdict { index = i; outcome = o })
        done;
        let cs = Cache.stats ctx.cache in
        send
          (Wire.Done
             {
               jobs = n;
               cache_entries = cs.Cache.entries;
               cache_hit_rate = Cache.hit_rate cs;
             });
        Http.finish_chunked conn))

(* -- dispatch --------------------------------------------------------------- *)

let handle ctx conn (req : Http.request) =
  Metrics.incr m_requests;
  Trace.with_span ~name:"serve.request"
    ~args:[ ("method", Trace.Str req.Http.meth); ("path", Trace.Str req.Http.path) ]
    (fun () ->
      match (req.Http.meth, req.Http.path) with
      | "GET", "/healthz" ->
        Http.respond conn ~status:200 ~headers:[ ("content-type", "text/plain") ] "ok\n"
      | "GET", "/metrics" ->
        refresh_gauges ctx;
        Http.respond conn ~status:200
          ~headers:[ ("content-type", "text/plain; version=0.0.4") ]
          (Metrics.to_prometheus ())
      | "GET", "/v1/stats" -> json_response conn ~status:200 (stats_body ctx)
      | "POST", "/v1/campaign" -> campaign ctx conn req
      | _, ("/healthz" | "/metrics" | "/v1/stats" | "/v1/campaign") ->
        error_response conn ~status:405 "method not allowed"
      | _ -> error_response conn ~status:404 "no such endpoint")
