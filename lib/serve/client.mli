(** Blocking client for the verification daemon — one connection per call,
    mirroring the server's [Connection: close] discipline.  Used by the
    [mechaverify submit] subcommand, the end-to-end equivalence tests and
    the [t15_serve] bench group. *)

type endpoint = {
  host : string;
  port : int;
}

type error =
  | Busy of float  (** 429: queue full, retry after this many seconds *)
  | Http_error of int * string  (** any other non-200 status, with body *)
  | Protocol of string  (** the daemon answered bytes we cannot parse *)
  | Connection of string  (** socket-level failure (refused, reset, EOF) *)

val error_string : error -> string

val connect : ?host:string -> port:int -> unit -> (endpoint, error) result
(** Probe [GET /healthz] once (default host [127.0.0.1]); the returned
    endpoint is just the address — no connection is held open. *)

val submit :
  endpoint ->
  ?tenant:string ->
  ?tiny:bool ->
  ?select:string ->
  ?ids:string list ->
  ?key:string ->
  ?deadline_s:float ->
  ?request_id:string ->
  ?on_request_id:(string -> unit) ->
  ?io_timeout_s:float ->
  ?on_event:(Wire.event -> unit) ->
  unit ->
  (Mechaml_engine.Campaign.outcome list, error) result
(** Submit a campaign over the bundled matrix ([tiny], [select], [ids],
    [key], [deadline_s] as in {!Wire.submit}; tenant default ["anon"]) and
    block until every verdict streamed back.  [io_timeout_s] bounds each
    socket read/write (a dead daemon surfaces as [Connection], not a hang).
    [on_event] sees each {!Wire.event} as it arrives (progress reporting);
    the returned outcomes are in matrix order, exactly what
    {!Mechaml_engine.Campaign.run} would have produced for the same specs.

    The submission's trace id is [request_id] when given (must satisfy
    {!Wire.valid_key}), otherwise minted via {!Mechaml_obs.Context.fresh}.
    It is sent both as the [X-Request-Id] header and as the wire-level
    [request_id] field, and [on_request_id] (if any) receives the id the
    daemon echoed back — quote it when reporting a problem. *)

val submit_with_retry :
  endpoint ->
  ?attempts:int ->
  ?tenant:string ->
  ?tiny:bool ->
  ?select:string ->
  ?ids:string list ->
  key:string ->
  ?deadline_s:float ->
  ?request_id:string ->
  ?on_request_id:(string -> unit) ->
  ?io_timeout_s:float ->
  ?on_event:(Wire.event -> unit) ->
  unit ->
  (Mechaml_engine.Campaign.outcome list, error) result
(** {!submit} hardened for lossy networks: up to [attempts] (default 10)
    tries with exponential backoff, honouring 429 [Retry-After].  The
    mandatory idempotency [key] is what makes retrying safe — after a torn
    stream the client first polls [GET /v1/jobs/<key>] and assembles the
    verdicts the daemon already holds; a resubmission with the same key
    attaches to the original jobs instead of re-running them, so the work
    executes exactly once no matter how many times the connection dies.
    Non-retryable errors (4xx other than 408/429) are returned as-is.
    The trace id is minted once, before the first attempt, so every retry
    of the same logical request correlates under one id. *)

val job_status :
  ?io_timeout_s:float -> endpoint -> string -> (Wire.job_status option, error) result
(** [GET /v1/jobs/<key>]: [Ok None] when the daemon knows nothing about the
    key, [Ok (Some status)] otherwise. *)

val get : ?io_timeout_s:float -> endpoint -> string -> (int * string, error) result
(** One [GET] request; returns status and body.  For [/v1/stats] and tests. *)

val get_traced :
  ?io_timeout_s:float ->
  ?request_id:string ->
  endpoint ->
  string ->
  (int * string * string option, error) result
(** Like {!get}, but sends an [X-Request-Id] header ([request_id] when
    given, minted otherwise) and additionally returns the id the daemon
    echoed back on the response — [None] only if the peer is not this
    daemon.  Used by [mechaverify probe --get]. *)

val metrics : endpoint -> (string, error) result
(** Scrape [GET /metrics]; [Ok] is the Prometheus text body. *)
