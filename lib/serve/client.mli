(** Blocking client for the verification daemon — one connection per call,
    mirroring the server's [Connection: close] discipline.  Used by the
    [mechaverify submit] subcommand, the end-to-end equivalence tests and
    the [t15_serve] bench group. *)

type endpoint = {
  host : string;
  port : int;
}

type error =
  | Busy of float  (** 429: queue full, retry after this many seconds *)
  | Http_error of int * string  (** any other non-200 status, with body *)
  | Protocol of string  (** the daemon answered bytes we cannot parse *)
  | Connection of string  (** socket-level failure (refused, reset, EOF) *)

val error_string : error -> string

val connect : ?host:string -> port:int -> unit -> (endpoint, error) result
(** Probe [GET /healthz] once (default host [127.0.0.1]); the returned
    endpoint is just the address — no connection is held open. *)

val submit :
  endpoint ->
  ?tenant:string ->
  ?tiny:bool ->
  ?select:string ->
  ?ids:string list ->
  ?on_event:(Wire.event -> unit) ->
  unit ->
  (Mechaml_engine.Campaign.outcome list, error) result
(** Submit a campaign over the bundled matrix ([tiny], [select], [ids] as in
    {!Wire.submit}; tenant default ["anon"]) and block until every verdict
    streamed back.  [on_event] sees each {!Wire.event} as it arrives
    (progress reporting); the returned outcomes are in matrix order, exactly
    what {!Mechaml_engine.Campaign.run} would have produced for the same
    specs. *)

val get : endpoint -> string -> (int * string, error) result
(** One [GET] request; returns status and body.  For [/v1/stats] and tests. *)

val metrics : endpoint -> (string, error) result
(** Scrape [GET /metrics]; [Ok] is the Prometheus text body. *)
