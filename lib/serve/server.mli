(** The verification daemon: a listening socket, an acceptor domain, a pool
    of connection-handler domains and a {!Scheduler} of job-worker domains,
    all sharing one {!Mechaml_engine.Cache}.

    Lifecycle: {!start} binds and begins serving immediately; {!stop} is the
    graceful drain — stop accepting, finish every queued and running job
    (streaming their verdicts to connected clients), serve the connections
    already accepted, join every domain, and write a final cache snapshot.
    The daemon never restarts in-process; a new {!start} builds a new one
    (warm again, via the snapshot). *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port — read it back with {!port} *)
  workers : int;  (** scheduler job domains *)
  handlers : int;  (** connection-handler domains *)
  queue_bound : int;  (** admission control: max queued jobs *)
  inflight_cap : int;  (** per-tenant concurrent-job cap *)
  weights : (string * int) list;  (** per-tenant round-robin weights *)
  cache_capacity : int option;  (** LRU bound on the shared cache *)
  snapshot : string option;
      (** cache snapshot path: loaded (if present) at {!start}, written by
          {!stop} and every [snapshot_every_s] *)
  snapshot_every_s : float option;  (** periodic snapshot interval *)
}

val default : config
(** [127.0.0.1:0], 4 workers, 4 handlers, queue bound 256, in-flight cap 64,
    no weights, unbounded cache, no snapshot. *)

type t

val start : config -> t
(** Bind, listen, spawn the domains.  Raises [Unix.Unix_error] when the
    address cannot be bound.  A snapshot that exists but fails to load is
    logged and ignored (the daemon starts cold).  Enables
    {!Mechaml_obs.Metrics} collection process-wide — a daemon that exposes
    [/metrics] always collects. *)

val port : t -> int
(** The bound port (resolves [port = 0]). *)

val cache : t -> Mechaml_engine.Cache.t

val stop : ?drain_deadline_s:float -> t -> unit
(** Graceful drain, in order: stop accepting, {!Scheduler.drain} (with the
    deadline, if any — queued jobs past it stream stand-in [Failed]
    verdicts), serve and close the already-accepted connections, join every
    domain, write the final snapshot.  Idempotent. *)
