(** The verification daemon: a listening socket, an acceptor domain, a pool
    of connection-handler domains and a {!Scheduler} of job-worker domains,
    all sharing one {!Mechaml_engine.Cache}.

    Lifecycle: {!start} binds and begins serving immediately; {!stop} is the
    graceful drain — stop accepting, finish every queued and running job
    (streaming their verdicts to connected clients), serve the connections
    already accepted, join every domain, and write a final cache snapshot.
    The daemon never restarts in-process; a new {!start} builds a new one
    (warm again, via the snapshot). *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port — read it back with {!port} *)
  workers : int;  (** scheduler job domains *)
  handlers : int;  (** connection-handler domains *)
  queue_bound : int;  (** admission control: max queued jobs *)
  inflight_cap : int;  (** per-tenant concurrent-job cap *)
  weights : (string * int) list;  (** per-tenant round-robin weights *)
  cache_capacity : int option;  (** LRU bound on the shared cache *)
  snapshot : string option;
      (** cache snapshot path: loaded (if present) at {!start}, written by
          {!stop} and every [snapshot_every_s] *)
  snapshot_every_s : float option;  (** periodic snapshot interval *)
  job_deadline_s : float option;
      (** default per-job execution deadline: the spec's wall-clock budget is
          clamped to it and a watchdog abandons jobs that overrun it anyway
          (stand-in [Failed] verdict, poison strike); submissions can
          override it per request *)
  wal : string option;
      (** write-ahead log path ({!Store}): accepted submissions and verdicts
          are journaled, and a restarted daemon re-runs only the jobs that
          had no verdict yet *)
  io_timeout_s : float option;
      (** per-connection socket read/write deadline; a slow-loris or dead
          peer costs a handler domain at most this long (default 30s) *)
  max_pending : int;
      (** accepted-but-unserved connection cap; excess connections are closed
          immediately ([serve_overload_closed_total]) instead of queueing
          behind handlers that cannot reach them in time *)
  quarantine_strikes : int option;  (** timeouts before a spec is quarantined *)
  quarantine_ttl_s : float option;  (** how long a quarantine lasts *)
  slo_thresholds : (string * float) list;
      (** per-stage SLO threshold overrides ({!Slo.create}); empty keeps the
          defaults *)
  slo_objective : float option;  (** SLO objective in (0,1), default 0.99 *)
  flight_size : int option;  (** flight-recorder ring slots, default 512 *)
  flight_dump : string option;
      (** install a [SIGQUIT] handler that dumps the flight recorder to this
          path ({!Mechaml_obs.Flight.install_signal_dump}) *)
  sharding : Mechaml_ts.Shard.config option;
      (** run every job through the sharded, out-of-core check pipeline
          ({!Mechaml_ts.Shard}); verdicts and canonical reports are
          byte-identical to the default path, and [/v1/stats] reports the
          daemon-wide spill/reload counters *)
}

val default : config
(** [127.0.0.1:0], 4 workers, 4 handlers, queue bound 256, in-flight cap 64,
    no weights, unbounded cache, no snapshot, no job deadline, no WAL, 30s
    I/O timeout, 128 pending connections, {!Quarantine} defaults, default
    SLO thresholds, no SIGQUIT dump path, no sharding. *)

type t

val start : config -> t
(** Bind, listen, spawn the domains.  Raises [Unix.Unix_error] when the
    address cannot be bound.  A snapshot that exists but fails to load is
    logged and ignored (the daemon starts cold).  Enables
    {!Mechaml_obs.Metrics} collection and the {!Mechaml_obs.Flight} recorder
    process-wide — a daemon that exposes [/metrics] and [/v1/debug/flight]
    always collects. *)

val port : t -> int
(** The bound port (resolves [port = 0]). *)

val cache : t -> Mechaml_engine.Cache.t

val store : t -> Store.t
(** The submission ledger (for tests and diagnostics). *)

val stop : ?drain_deadline_s:float -> t -> unit
(** Graceful drain, in order: stop accepting, {!Scheduler.drain} (with the
    deadline, if any — queued jobs past it stream stand-in [Failed]
    verdicts), serve and close the already-accepted connections, join every
    domain, write the final snapshot.  Idempotent. *)
