(* The HTTP/1.1 implementation moved to [Mechaml_wire.Http] so the
   distributed shard tier can speak the same wire without depending on the
   daemon; this alias keeps the daemon's internal naming. *)
include Mechaml_wire.Http
