module Context = Mechaml_obs.Context
module Flight = Mechaml_obs.Flight
module Json = Mechaml_obs.Json
module Log = Mechaml_obs.Log
module Metrics = Mechaml_obs.Metrics
module Cache = Mechaml_engine.Cache

let m_connections =
  Metrics.counter "serve_connections_total" ~help:"TCP connections accepted."

type config = {
  host : string;
  port : int;
  workers : int;
  handlers : int;
  queue_bound : int;
  inflight_cap : int;
  weights : (string * int) list;
  cache_capacity : int option;
  snapshot : string option;
  snapshot_every_s : float option;
  job_deadline_s : float option;
  wal : string option;
  io_timeout_s : float option;
  max_pending : int;
  quarantine_strikes : int option;
  quarantine_ttl_s : float option;
  slo_thresholds : (string * float) list;
  slo_objective : float option;
  flight_size : int option;
  flight_dump : string option;
  sharding : Mechaml_ts.Shard.config option;
}

let default =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 4;
    handlers = 4;
    queue_bound = 256;
    inflight_cap = 64;
    weights = [];
    cache_capacity = None;
    snapshot = None;
    snapshot_every_s = None;
    job_deadline_s = None;
    wal = None;
    io_timeout_s = Some 30.;
    max_pending = 128;
    quarantine_strikes = None;
    quarantine_ttl_s = None;
    slo_thresholds = [];
    slo_objective = None;
    flight_size = None;
    flight_dump = None;
    sharding = None;
  }

let m_overload_closed =
  Metrics.counter "serve_overload_closed_total"
    ~help:"Connections closed unserved because the pending-connection queue was full."

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  cache : Cache.t;
  sched : Scheduler.t;
  store : Store.t;
  snapshot : string option;
  io_timeout_s : float option;
  max_pending : int;
  stopping : bool Atomic.t;
  cmutex : Mutex.t;
  cready : Condition.t;
  conns : Unix.file_descr Queue.t;
  mutable acceptor_d : unit Domain.t option;
  mutable handler_ds : unit Domain.t list;
  mutable snapshot_d : unit Domain.t option;
}

(* The acceptor polls with a short select timeout instead of blocking in
   accept: closing a listening socket does not reliably wake a blocked
   accept on Linux, so shutdown is signalled through [stopping] and observed
   within one poll interval. *)
let acceptor srv () =
  let fd = srv.listen_fd in
  while not (Atomic.get srv.stopping) do
    let readable =
      try (match Unix.select [ fd ] [] [] 0.2 with [], _, _ -> false | _ -> true)
      with Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if readable then
      try
        let c, _ = Unix.accept fd in
        Unix.clear_nonblock c;
        Metrics.incr m_connections;
        Mutex.lock srv.cmutex;
        if Queue.length srv.conns >= srv.max_pending then begin
          (* every handler is busy and the backlog is full: shedding the
             connection now beats letting the peer wait on a queue that
             cannot drain in time *)
          Mutex.unlock srv.cmutex;
          Metrics.incr m_overload_closed;
          try Unix.close c with Unix.Unix_error _ -> ()
        end
        else begin
          Queue.add c srv.conns;
          Condition.signal srv.cready;
          Mutex.unlock srv.cmutex
        end
      with
      | Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
        ->
        ()
      | Unix.Unix_error _ when Atomic.get srv.stopping -> ()
  done

let serve_conn ?io_timeout_s ctx fd =
  let c = Http.conn ?read_timeout_s:io_timeout_s ?write_timeout_s:io_timeout_s fd in
  (* a provisional request id, stamped before the request is even parsed:
     400/408/500 replies for requests that never reached the router still
     echo an id the peer can report.  The router replaces it with the
     client's own X-Request-Id when the request parses and carries one. *)
  let rid = Context.fresh () in
  Http.set_response_header c "x-request-id" rid;
  (try
     let req = Http.read_request c in
     Router.handle ctx c req
   with
  | Http.Closed -> ()
  | Http.Bad msg ->
    Flight.event ~kind:"http_error" ~trace:rid
      ~fields:[ ("status", Json.Num 400.); ("error", Json.Str msg) ]
      ();
    (try Http.respond c ~status:400 (msg ^ "\n") with _ -> ())
  | Http.Timeout dir ->
    (* a stalled peer: answer 408 if the socket still accepts bytes, then
       close — the handler domain is free again within one timeout *)
    Flight.event ~kind:"http_error" ~trace:rid
      ~fields:[ ("status", Json.Num 408.); ("error", Json.Str (dir ^ " timeout")) ]
      ();
    Log.info (fun m -> m "serve: connection %s timeout, dropping peer" dir);
    (try Http.respond c ~status:408 "request timeout\n" with _ -> ())
  | Unix.Unix_error _ -> ()
  | e ->
    Flight.event ~kind:"panic" ~trace:rid
      ~fields:[ ("error", Json.Str (Printexc.to_string e)) ]
      ();
    Log.warn (fun m -> m "serve: handler raised %s" (Printexc.to_string e));
    ( try Http.respond c ~status:500 "internal error\n" with _ -> ()));
  Http.close c

let handler srv ctx () =
  let rec loop () =
    let next =
      Mutex.lock srv.cmutex;
      let rec await () =
        if not (Queue.is_empty srv.conns) then Some (Queue.pop srv.conns)
        else if Atomic.get srv.stopping then None
        else begin
          Condition.wait srv.cready srv.cmutex;
          await ()
        end
      in
      let r = await () in
      Mutex.unlock srv.cmutex;
      r
    in
    match next with
    | None -> ()
    | Some fd ->
      serve_conn ?io_timeout_s:srv.io_timeout_s ctx fd;
      loop ()
  in
  loop ()

let snapshotter srv ~every ~path () =
  let rec loop elapsed =
    if not (Atomic.get srv.stopping) then begin
      Unix.sleepf 0.2;
      let elapsed = elapsed +. 0.2 in
      if elapsed >= every then begin
        Cache.save srv.cache ~path;
        loop 0.
      end
      else loop elapsed
    end
  in
  loop 0.

let start cfg =
  (* a daemon that exposes /metrics collects them, no opt-in flag needed;
     same deal for the flight recorder behind /v1/debug/flight — post-mortems
     must need no prior configuration *)
  Metrics.set_enabled true;
  Option.iter (fun size -> Flight.configure ~size) cfg.flight_size;
  Flight.enable ();
  Option.iter (fun path -> Flight.install_signal_dump ~path ()) cfg.flight_dump;
  let slo = Slo.create ?objective:cfg.slo_objective ~thresholds:cfg.slo_thresholds () in
  let cache = Cache.create ?capacity:cfg.cache_capacity () in
  (match cfg.snapshot with
  | Some path when Sys.file_exists path -> (
    match Cache.load cache ~path with
    | Ok n -> Log.info (fun m -> m "serve: restored %d cache entries from %s" n path)
    | Error e -> Log.warn (fun m -> m "serve: ignoring cache snapshot %s: %s" path e))
  | _ -> ());
  let sched =
    Scheduler.create ~workers:cfg.workers ~queue_bound:cfg.queue_bound
      ~inflight_cap:cfg.inflight_cap ~weights:cfg.weights ()
  in
  (* replays the write-ahead log (rescheduling interrupted jobs) before the
     listener exists, so no client can observe a half-replayed store *)
  let store =
    Store.create ?wal:cfg.wal ?default_deadline_s:cfg.job_deadline_s
      ?quarantine_strikes:cfg.quarantine_strikes ?quarantine_ttl_s:cfg.quarantine_ttl_s
      ?sharding:cfg.sharding ~slo ~sched ~cache ()
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  Unix.set_nonblock fd;
  let bound_port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> cfg.port
  in
  let srv =
    {
      listen_fd = fd;
      bound_port;
      cache;
      sched;
      store;
      snapshot = cfg.snapshot;
      io_timeout_s = cfg.io_timeout_s;
      max_pending = max 1 cfg.max_pending;
      stopping = Atomic.make false;
      cmutex = Mutex.create ();
      cready = Condition.create ();
      conns = Queue.create ();
      acceptor_d = None;
      handler_ds = [];
      snapshot_d = None;
    }
  in
  let ctx = { Router.cache; sched; store; slo; started_at = Unix.gettimeofday () } in
  srv.acceptor_d <- Some (Domain.spawn (acceptor srv));
  srv.handler_ds <- List.init (max 1 cfg.handlers) (fun _ -> Domain.spawn (handler srv ctx));
  (match (cfg.snapshot, cfg.snapshot_every_s) with
  | Some path, Some every when every > 0. ->
    srv.snapshot_d <- Some (Domain.spawn (snapshotter srv ~every ~path))
  | _ -> ());
  Log.info (fun m -> m "serve: listening on %s:%d" cfg.host bound_port);
  srv

let port srv = srv.bound_port

let cache srv = srv.cache

let store srv = srv.store

let stop ?drain_deadline_s srv =
  if not (Atomic.exchange srv.stopping true) then begin
    Option.iter Domain.join srv.acceptor_d;
    srv.acceptor_d <- None;
    (* jobs first: streaming handlers block on their verdicts *)
    Scheduler.drain ?deadline_s:drain_deadline_s srv.sched;
    Mutex.lock srv.cmutex;
    Condition.broadcast srv.cready;
    Mutex.unlock srv.cmutex;
    List.iter Domain.join srv.handler_ds;
    srv.handler_ds <- [];
    Option.iter Domain.join srv.snapshot_d;
    srv.snapshot_d <- None;
    (try Unix.close srv.listen_fd with _ -> ());
    Option.iter (fun path -> Cache.save srv.cache ~path) srv.snapshot;
    Log.info (fun m -> m "serve: drained and stopped")
  end
