module Json = Mechaml_obs.Json
module Campaign = Mechaml_engine.Campaign
module Supervisor = Mechaml_legacy.Supervisor

(* -- submissions ----------------------------------------------------------- *)

type submit = {
  tiny : bool;
  select : string option;
  ids : string list option;
  key : string option;  (** idempotency key; the server generates one if absent *)
  deadline_s : float option;  (** per-job execution deadline, overrides the server default *)
  request_id : string option;
      (** trace id for the submission; carried into WAL records and spans *)
}

let submit ?(tiny = false) ?select ?ids ?key ?deadline_s ?request_id () =
  { tiny; select; ids; key; deadline_s; request_id }

let encode_submit s =
  Json.Obj
    ([ ("matrix", Json.Str (if s.tiny then "tiny" else "bundled")) ]
    @ (match s.select with None -> [] | Some sub -> [ ("select", Json.Str sub) ])
    @ (match s.key with None -> [] | Some k -> [ ("key", Json.Str k) ])
    @ (match s.deadline_s with None -> [] | Some d -> [ ("deadline_s", Json.Num d) ])
    @ (match s.request_id with None -> [] | Some r -> [ ("request_id", Json.Str r) ])
    @
    match s.ids with
    | None -> []
    | Some ids -> [ ("ids", Json.List (List.map (fun id -> Json.Str id) ids)) ])

(* decoding helpers: absent fields get defaults, mistyped fields are errors *)

let str_field obj k =
  match Json.member k obj with
  | None -> Ok None
  | Some (Json.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" k)

(* Idempotency keys travel in URLs ([GET /v1/jobs/<key>]) and in the
   write-ahead log, so the accepted alphabet is deliberately narrow. *)
let valid_key k =
  let n = String.length k in
  n > 0 && n <= 128
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true | _ -> false)
       k

let decode_submit obj =
  match obj with
  | Json.Obj _ ->
    Result.bind (str_field obj "matrix") (fun matrix ->
        Result.bind
          (match matrix with
          | None | Some "bundled" -> Ok false
          | Some "tiny" -> Ok true
          | Some m -> Error (Printf.sprintf "unknown matrix %S (bundled|tiny)" m))
          (fun tiny ->
            Result.bind (str_field obj "select") (fun select ->
                Result.bind
                  (match str_field obj "key" with
                  | Ok (Some k) when not (valid_key k) ->
                    Error "field \"key\" must be 1-128 chars of [A-Za-z0-9._-]"
                  | r -> r)
                  (fun key ->
                    Result.bind
                      (match str_field obj "request_id" with
                      | Ok (Some r) when not (valid_key r) ->
                        Error "field \"request_id\" must be 1-128 chars of [A-Za-z0-9._-]"
                      | r -> r)
                      (fun request_id ->
                        Result.bind
                          (match Json.member "deadline_s" obj with
                          | None -> Ok None
                          | Some v -> (
                            match Json.to_float v with
                            | Some d when d > 0. -> Ok (Some d)
                            | Some _ -> Error "field \"deadline_s\" must be positive"
                            | None -> Error "field \"deadline_s\" must be a number"))
                          (fun deadline_s ->
                            match Json.member "ids" obj with
                            | None -> Ok { tiny; select; ids = None; key; deadline_s; request_id }
                            | Some (Json.List l) ->
                              let rec strings acc = function
                                | [] -> Ok (Some (List.rev acc))
                                | Json.Str s :: rest -> strings (s :: acc) rest
                                | _ -> Error "field \"ids\" must be a list of strings"
                              in
                              Result.map
                                (fun ids -> { tiny; select; ids; key; deadline_s; request_id })
                                (strings [] l)
                            | Some _ -> Error "field \"ids\" must be a list of strings"))))))
  | _ -> Error "submission must be a JSON object"

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let resolve s =
  let specs = Campaign.bundled ~tiny:s.tiny () in
  let specs =
    match s.select with
    | None -> specs
    | Some sub -> List.filter (fun (sp : Campaign.spec) -> contains ~sub sp.Campaign.id) specs
  in
  match s.ids with
  | None -> if specs = [] then Error "selection matches no job id" else Ok specs
  | Some ids ->
    let known = List.map (fun (sp : Campaign.spec) -> sp.Campaign.id) specs in
    let unknown = List.filter (fun id -> not (List.mem id known)) ids in
    if unknown <> [] then
      Error (Printf.sprintf "unknown job ids: %s" (String.concat ", " unknown))
    else begin
      let picked =
        List.filter (fun (sp : Campaign.spec) -> List.mem sp.Campaign.id ids) specs
      in
      if picked = [] then Error "selection matches no job id" else Ok picked
    end

(* -- outcomes -------------------------------------------------------------- *)

let num i = Json.Num (float_of_int i)

let verdict_fields = function
  | Campaign.Proved -> [ ("verdict", Json.Str "proved") ]
  | Campaign.Real_deadlock { confirmed_by_test } ->
    [ ("verdict", Json.Str "real_deadlock"); ("confirmed_by_test", Json.Bool confirmed_by_test) ]
  | Campaign.Real_property { confirmed_by_test } ->
    [ ("verdict", Json.Str "real_property"); ("confirmed_by_test", Json.Bool confirmed_by_test) ]
  | Campaign.Exhausted -> [ ("verdict", Json.Str "exhausted") ]
  | Campaign.Degraded { reason } ->
    [ ("verdict", Json.Str "degraded"); ("reason", Json.Str reason) ]
  | Campaign.Timed_out -> [ ("verdict", Json.Str "timed_out") ]
  | Campaign.Failed error -> [ ("verdict", Json.Str "failed"); ("error", Json.Str error) ]

let encode_supervision (s : Supervisor.stats) =
  Json.Obj
    [
      ("queries", num s.Supervisor.queries);
      ("admitted", num s.Supervisor.admitted);
      ("attempts", num s.Supervisor.attempts);
      ("retried", num s.Supervisor.retried);
      ("crashes", num s.Supervisor.crashes);
      ("refused_connects", num s.Supervisor.refused_connects);
      ("divergences", num s.Supervisor.divergences);
      ("deadline_misses", num s.Supervisor.deadline_misses);
      ("votes_held", num s.Supervisor.votes_held);
      ("outvoted", num s.Supervisor.outvoted);
      ("breaker_trips", num s.Supervisor.breaker_trips);
      ("backoff_slept_s", Json.Num s.Supervisor.backoff_slept);
    ]

let encode_outcome (o : Campaign.outcome) =
  Json.Obj
    ([ ("id", Json.Str o.Campaign.spec_id); ("family", Json.Str o.Campaign.family) ]
    @ verdict_fields o.Campaign.verdict
    @ (match o.Campaign.fault with None -> [] | Some f -> [ ("fault", Json.Str f) ])
    @ [
        ("iterations", num o.Campaign.iterations);
        ("states_learned", num o.Campaign.states_learned);
        ("knowledge", num o.Campaign.knowledge);
        ("tests_executed", num o.Campaign.tests_executed);
        ("test_steps", num o.Campaign.test_steps);
        ("attempts", num o.Campaign.attempts);
        ("duration_s", Json.Num o.Campaign.duration_s);
        ("closure_seconds", Json.Num o.Campaign.closure_seconds);
        ("check_seconds", Json.Num o.Campaign.check_seconds);
        ("test_seconds", Json.Num o.Campaign.test_seconds);
        ("max_closure_states", num o.Campaign.max_closure_states);
        ("max_product_states", num o.Campaign.max_product_states);
        ("closure_delta_edges", num o.Campaign.closure_delta_edges);
        ("product_states_reused", num o.Campaign.product_states_reused);
        ("sat_seed_hit_rate", Json.Num o.Campaign.sat_seed_hit_rate);
        ( "cache",
          Json.Obj
            [
              ("closure_hits", num o.Campaign.cache.Campaign.closure_hits);
              ("closure_misses", num o.Campaign.cache.Campaign.closure_misses);
              ("check_hits", num o.Campaign.cache.Campaign.check_hits);
              ("check_misses", num o.Campaign.cache.Campaign.check_misses);
            ] );
      ]
    @
    match o.Campaign.supervision with
    | None -> []
    | Some s -> [ ("supervision", encode_supervision s) ])

(* decoding: a tiny applicative-free error monad keeps the field plumbing
   readable without pulling in a combinator library *)

let ( let* ) = Result.bind

let require k obj =
  match Json.member k obj with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" k)

let int_field k obj =
  let* v = require k obj in
  match Json.to_float v with
  | Some f -> Ok (int_of_float f)
  | None -> Error (Printf.sprintf "field %S must be a number" k)

let float_field k obj =
  let* v = require k obj in
  match Json.to_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S must be a number" k)

let string_field k obj =
  let* v = require k obj in
  match Json.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S must be a string" k)

let bool_field ~default k obj =
  match Json.member k obj with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" k)

let decode_verdict obj =
  let* tag = string_field "verdict" obj in
  match tag with
  | "proved" -> Ok Campaign.Proved
  | "real_deadlock" ->
    let* confirmed_by_test = bool_field ~default:false "confirmed_by_test" obj in
    Ok (Campaign.Real_deadlock { confirmed_by_test })
  | "real_property" ->
    let* confirmed_by_test = bool_field ~default:false "confirmed_by_test" obj in
    Ok (Campaign.Real_property { confirmed_by_test })
  | "exhausted" -> Ok Campaign.Exhausted
  | "degraded" ->
    let* reason = string_field "reason" obj in
    Ok (Campaign.Degraded { reason })
  | "timed_out" -> Ok Campaign.Timed_out
  | "failed" ->
    let* error = string_field "error" obj in
    Ok (Campaign.Failed error)
  | t -> Error (Printf.sprintf "unknown verdict %S" t)

let decode_supervision obj =
  let* queries = int_field "queries" obj in
  let* admitted = int_field "admitted" obj in
  let* attempts = int_field "attempts" obj in
  let* retried = int_field "retried" obj in
  let* crashes = int_field "crashes" obj in
  let* refused_connects = int_field "refused_connects" obj in
  let* divergences = int_field "divergences" obj in
  let* deadline_misses = int_field "deadline_misses" obj in
  let* votes_held = int_field "votes_held" obj in
  let* outvoted = int_field "outvoted" obj in
  let* breaker_trips = int_field "breaker_trips" obj in
  let* backoff_slept = float_field "backoff_slept_s" obj in
  Ok
    {
      Supervisor.queries;
      admitted;
      attempts;
      retried;
      crashes;
      refused_connects;
      divergences;
      deadline_misses;
      votes_held;
      outvoted;
      breaker_trips;
      backoff_slept;
    }

let decode_outcome obj =
  let* spec_id = string_field "id" obj in
  let* family = string_field "family" obj in
  let* verdict = decode_verdict obj in
  let* fault = str_field obj "fault" in
  let* iterations = int_field "iterations" obj in
  let* states_learned = int_field "states_learned" obj in
  let* knowledge = int_field "knowledge" obj in
  let* tests_executed = int_field "tests_executed" obj in
  let* test_steps = int_field "test_steps" obj in
  let* attempts = int_field "attempts" obj in
  let* duration_s = float_field "duration_s" obj in
  let* closure_seconds = float_field "closure_seconds" obj in
  let* check_seconds = float_field "check_seconds" obj in
  let* test_seconds = float_field "test_seconds" obj in
  let* max_closure_states = int_field "max_closure_states" obj in
  let* max_product_states = int_field "max_product_states" obj in
  let* closure_delta_edges = int_field "closure_delta_edges" obj in
  let* product_states_reused = int_field "product_states_reused" obj in
  let* sat_seed_hit_rate = float_field "sat_seed_hit_rate" obj in
  let* cache_obj = require "cache" obj in
  let* closure_hits = int_field "closure_hits" cache_obj in
  let* closure_misses = int_field "closure_misses" cache_obj in
  let* check_hits = int_field "check_hits" cache_obj in
  let* check_misses = int_field "check_misses" cache_obj in
  let* supervision =
    match Json.member "supervision" obj with
    | None -> Ok None
    | Some sup -> Result.map Option.some (decode_supervision sup)
  in
  Ok
    {
      Campaign.spec_id;
      family;
      verdict;
      iterations;
      states_learned;
      knowledge;
      tests_executed;
      test_steps;
      attempts;
      duration_s;
      closure_seconds;
      check_seconds;
      test_seconds;
      max_closure_states;
      max_product_states;
      closure_delta_edges;
      product_states_reused;
      sat_seed_hit_rate;
      cache = { Campaign.closure_hits; closure_misses; check_hits; check_misses };
      fault;
      supervision;
    }

(* -- events ---------------------------------------------------------------- *)

type event =
  | Accepted of { jobs : int }
  | Verdict of { index : int; outcome : Campaign.outcome }
  | Done of { jobs : int; cache_entries : int; cache_hit_rate : float }

let encode_event ?request_id ev =
  (* the trace id rides on every streamed event so an operator can grep a
     saved ndjson stream by request; decoders ignore unknown fields *)
  let rid = match request_id with None -> [] | Some r -> [ ("request_id", Json.Str r) ] in
  match ev with
  | Accepted { jobs } -> Json.Obj ([ ("event", Json.Str "accepted"); ("jobs", num jobs) ] @ rid)
  | Verdict { index; outcome } ->
    Json.Obj
      ([ ("event", Json.Str "verdict"); ("index", num index); ("outcome", encode_outcome outcome) ]
      @ rid)
  | Done { jobs; cache_entries; cache_hit_rate } ->
    Json.Obj
      ([
         ("event", Json.Str "done");
         ("jobs", num jobs);
         ("cache_entries", num cache_entries);
         ("cache_hit_rate", Json.Num cache_hit_rate);
       ]
      @ rid)

let decode_event obj =
  let* tag = string_field "event" obj in
  match tag with
  | "accepted" ->
    let* jobs = int_field "jobs" obj in
    Ok (Accepted { jobs })
  | "verdict" ->
    let* index = int_field "index" obj in
    let* outcome_obj = require "outcome" obj in
    let* outcome = decode_outcome outcome_obj in
    Ok (Verdict { index; outcome })
  | "done" ->
    let* jobs = int_field "jobs" obj in
    let* cache_entries = int_field "cache_entries" obj in
    let* cache_hit_rate = float_field "cache_hit_rate" obj in
    Ok (Done { jobs; cache_entries; cache_hit_rate })
  | t -> Error (Printf.sprintf "unknown event %S" t)

(* -- job status (GET /v1/jobs/<key>) ---------------------------------------- *)

type job_status = {
  job_key : string;
  jobs : int;
  completed : int;
  finished : bool;
  verdicts : (int * Campaign.outcome) list;  (** completion order *)
}

let status_schema = "mechaml-serve-job/1"

let encode_status st =
  Json.Obj
    [
      ("schema", Json.Str status_schema);
      ("key", Json.Str st.job_key);
      ("jobs", num st.jobs);
      ("completed", num st.completed);
      ("done", Json.Bool st.finished);
      ( "verdicts",
        Json.List
          (List.map
             (fun (i, o) -> Json.Obj [ ("index", num i); ("outcome", encode_outcome o) ])
             st.verdicts) );
    ]

let decode_status obj =
  let* schema = string_field "schema" obj in
  if schema <> status_schema then Error (Printf.sprintf "unknown schema %S" schema)
  else
    let* job_key = string_field "key" obj in
    let* jobs = int_field "jobs" obj in
    let* completed = int_field "completed" obj in
    let* finished = bool_field ~default:false "done" obj in
    let* verdicts =
      match Json.member "verdicts" obj with
      | Some (Json.List l) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | v :: rest ->
            let* index = int_field "index" v in
            let* outcome_obj = require "outcome" v in
            let* outcome = decode_outcome outcome_obj in
            go ((index, outcome) :: acc) rest
        in
        go [] l
      | _ -> Error "field \"verdicts\" must be a list"
    in
    Ok { job_key; jobs; completed; finished; verdicts }
