module Flight = Mechaml_obs.Flight
module Log = Mechaml_obs.Log
module Metrics = Mechaml_obs.Metrics
module Json = Mechaml_obs.Json
module Journal = Mechaml_core.Journal
module Cache = Mechaml_engine.Cache
module Campaign = Mechaml_engine.Campaign

let wal_header = "mechaserve-wal 1"

(* The watchdog fires this long after the job's own wall-clock budget: the
   spec timeout (checked between verification stages) is the polite
   mechanism, the watchdog the backstop for a stage that never returns. *)
let deadline_grace = 0.25

let m_wal_restored =
  Metrics.counter "serve_wal_restored_total"
    ~help:"Verdicts of interrupted submissions restored from the write-ahead log."

let m_wal_replays =
  Metrics.counter "serve_wal_replays_total"
    ~help:"Jobs re-run at startup because the write-ahead log had no verdict for them."

type entry = {
  key : string;
  tenant : string;
  submit : Wire.submit;
  n : int;
  outcomes : Campaign.outcome option array;
  mutable order : (int * Campaign.outcome) list;  (** reverse completion order *)
  mutable completed : int;
  mutable finished : bool;
}

type t = {
  mutex : Mutex.t;
  cond : Condition.t;  (** a verdict landed somewhere *)
  entries : (string, entry) Hashtbl.t;
  wal : Journal.Lines.appender option;
      (** held open for the store's lifetime: the log gains several records
          per job, and an open/close round trip per record is measurable *)
  sched : Scheduler.t;
  cache : Cache.t;
  quarantine : Quarantine.t;
  slo : Slo.t option;  (** stage-latency objectives (queue/closure/check) *)
  sharding : Mechaml_ts.Shard.config option;
      (** when set, every job runs through the sharded check pipeline *)
  default_deadline_s : float option;
  mutable serial : int;  (** uniquifies generated keys *)
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let key e = e.key

let size e = e.n

let quarantine t = t.quarantine

let sharding t = t.sharding

(* -- stand-in outcomes ------------------------------------------------------ *)

(* A stream owes the client one verdict per accepted job even when the job
   never (or never finishes) running: drained-away, overdue and quarantined
   jobs all answer with a zero-cost stand-in. *)
let standin (spec : Campaign.spec) verdict =
  {
    Campaign.spec_id = spec.Campaign.id;
    family = spec.Campaign.family;
    verdict;
    iterations = 0;
    states_learned = 0;
    knowledge = 0;
    tests_executed = 0;
    test_steps = 0;
    attempts = 0;
    duration_s = 0.;
    closure_seconds = 0.;
    check_seconds = 0.;
    test_seconds = 0.;
    max_closure_states = 0;
    max_product_states = 0;
    closure_delta_edges = 0;
    product_states_reused = 0;
    sat_seed_hit_rate = 0.;
    cache = { closure_hits = 0; closure_misses = 0; check_hits = 0; check_misses = 0 };
    fault = spec.Campaign.inject;
    supervision = None;
  }

(* Everything that determines a spec's behaviour — not the whole spec, which
   contains closures the digest primitive cannot walk. *)
let spec_digest (spec : Campaign.spec) =
  Cache.digest
    (spec.Campaign.id, spec.Campaign.family, spec.Campaign.inject, spec.Campaign.seed)

(* -- write-ahead log -------------------------------------------------------- *)

let wal_append t line =
  Option.iter (fun a -> Journal.Lines.append_line a line) t.wal

let accept_line e =
  Json.to_string
    (Json.Obj
       [
         ("rec", Json.Str "accept");
         ("key", Json.Str e.key);
         ("tenant", Json.Str e.tenant);
         ("submit", Wire.encode_submit e.submit);
       ])

let verdict_line ekey i o =
  Json.to_string
    (Json.Obj
       [
         ("rec", Json.Str "verdict");
         ("key", Json.Str ekey);
         ("index", Json.Num (float_of_int i));
         ("outcome", Wire.encode_outcome o);
       ])

let done_line ekey =
  Json.to_string (Json.Obj [ ("rec", Json.Str "done"); ("key", Json.Str ekey) ])

(* -- completion ------------------------------------------------------------- *)

let verdict_tag = function
  | Campaign.Proved -> "proved"
  | Campaign.Real_deadlock _ -> "real_deadlock"
  | Campaign.Real_property _ -> "real_property"
  | Campaign.Exhausted -> "exhausted"
  | Campaign.Degraded _ -> "degraded"
  | Campaign.Timed_out -> "timed_out"
  | Campaign.Failed _ -> "failed"

let request_id e = e.submit.Wire.request_id

(* Called under the lock.  First write per index wins: a watchdog stand-in
   followed by the abandoned computation's real (stale) result records the
   stand-in; whoever loses the race is dropped here. *)
let complete_locked t e i outcome =
  if i >= 0 && i < e.n && e.outcomes.(i) = None then begin
    e.outcomes.(i) <- Some outcome;
    e.order <- (i, outcome) :: e.order;
    e.completed <- e.completed + 1;
    wal_append t (verdict_line e.key i outcome);
    Flight.event ~kind:"verdict" ?trace:(request_id e)
      ~fields:
        [
          ("key", Json.Str e.key);
          ("index", Json.Num (float_of_int i));
          ("id", Json.Str outcome.Campaign.spec_id);
          ("verdict", Json.Str (verdict_tag outcome.Campaign.verdict));
        ]
      ();
    if e.completed = e.n then begin
      e.finished <- true;
      wal_append t (done_line e.key)
    end;
    Condition.broadcast t.cond
  end

let complete t ~key ~index outcome =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries key with
      | None -> ()
      | Some e -> complete_locked t e index outcome)

(* -- scheduling ------------------------------------------------------------- *)

(* Build and submit the scheduler jobs for [(index, spec)] pairs of entry
   [e].  The per-job deadline (request field, falling back to the server
   default) is enforced twice: clamped into the spec's own wall-clock budget
   (checked between stages, the usual exit) and backstopped by the scheduler
   watchdog at [deadline + grace] for stages that hang outright.  Both the
   natural timeout and a watchdog kill count as a poison strike. *)
let schedule t e ~deadline_s indexed =
  let rid = request_id e in
  let strike ~dkey reason =
    Flight.event ~kind:"quarantine_strike" ?trace:rid
      ~fields:[ ("digest", Json.Str dkey); ("reason", Json.Str reason) ]
      ();
    ignore (Quarantine.strike t.quarantine ~key:dkey ~reason)
  in
  let on_dequeue =
    Option.map
      (fun slo wait -> Slo.observe slo ~tenant:e.tenant ~stage:"queue" wait)
      t.slo
  in
  let jobs =
    List.map
      (fun (i, (spec : Campaign.spec)) ->
        let dkey = spec_digest spec in
        let spec =
          match deadline_s with
          | None -> spec
          | Some d ->
            let budget =
              match spec.Campaign.timeout with None -> d | Some t0 -> Float.min t0 d
            in
            { spec with Campaign.timeout = Some budget }
        in
        let discard () =
          complete t ~key:e.key ~index:i
            (standin spec (Campaign.Failed "discarded: daemon drained before the job ran"))
        in
        let run () =
          let o = Campaign.run_spec ?sharding:t.sharding ~cache:t.cache spec in
          Option.iter
            (fun slo ->
              (* stage latencies of jobs that actually ran; stand-ins never
                 reach here, so zeros don't dilute the distribution *)
              Slo.observe slo ~tenant:e.tenant ~stage:"closure" o.Campaign.closure_seconds;
              Slo.observe slo ~tenant:e.tenant ~stage:"check" o.Campaign.check_seconds)
            t.slo;
          (match o.Campaign.verdict with
          | Campaign.Timed_out -> strike ~dkey (spec.Campaign.id ^ ": timed out")
          | _ -> ());
          complete t ~key:e.key ~index:i o
        in
        match deadline_s with
        | None -> Scheduler.job ~on_discard:discard ?request_id:rid ?on_dequeue run
        | Some d ->
          let kill () =
            strike ~dkey (spec.Campaign.id ^ ": watchdog deadline");
            complete t ~key:e.key ~index:i
              (standin spec
                 (Campaign.Failed
                    (Printf.sprintf "deadline: abandoned after %.1fs" d)))
          in
          Scheduler.job ~deadline_s:(d +. deadline_grace) ~on_discard:discard
            ~on_deadline:kill ?request_id:rid ?on_dequeue run)
      indexed
  in
  Scheduler.submit t.sched ~tenant:e.tenant jobs

(* -- submission ------------------------------------------------------------- *)

type error = Invalid of string | Rejected of Scheduler.rejection

let effective_deadline t (sub : Wire.submit) =
  match sub.Wire.deadline_s with Some _ as d -> d | None -> t.default_deadline_s

let submit t ~tenant (sub : Wire.submit) =
  match Wire.resolve sub with
  | Error e -> Error (Invalid e)
  | Ok specs ->
    (* Holding the store lock across [Scheduler.submit] is safe: scheduler
       callbacks run outside the scheduler lock and block on this mutex at
       worst, and the scheduler never waits on the store. *)
    locked t (fun () ->
        let key =
          match sub.Wire.key with
          | Some k -> k
          | None ->
            t.serial <- t.serial + 1;
            "auto-"
            ^ String.sub
                (Cache.digest (tenant, sub.Wire.tiny, sub.Wire.select, sub.Wire.ids,
                               t.serial, Unix.gettimeofday ()))
                0 16
        in
        match Hashtbl.find_opt t.entries key with
        | Some e -> Ok (e, `Attached)
        | None ->
          let n = List.length specs in
          let deadline_s = effective_deadline t sub in
          let e =
            {
              key;
              tenant;
              submit = { sub with Wire.key = Some key };
              n;
              outcomes = Array.make n None;
              order = [];
              completed = 0;
              finished = false;
            }
          in
          let indexed = List.mapi (fun i s -> (i, s)) specs in
          let quarantined, runnable =
            List.partition_map
              (fun (i, s) ->
                match Quarantine.check t.quarantine ~key:(spec_digest s) with
                | Some reason -> Either.Left (i, s, reason)
                | None -> Either.Right (i, s))
              indexed
          in
          let admitted =
            if runnable = [] then Ok () else schedule t e ~deadline_s runnable
          in
          (match admitted with
          | Error rej -> Error (Rejected rej)
          | Ok () ->
            Hashtbl.add t.entries key e;
            wal_append t (accept_line e);
            List.iter
              (fun (i, s, reason) ->
                Log.warn (fun m ->
                    m "store: refusing quarantined job %s (%s)" s.Campaign.id reason);
                complete_locked t e i
                  (standin s (Campaign.Failed ("quarantined: " ^ reason))))
              quarantined;
            Ok (e, `Fresh)))

(* -- streaming -------------------------------------------------------------- *)

type progress = Next of int * Campaign.outcome | Finished

let await t e ~pos =
  locked t (fun () ->
      let rec go () =
        if pos < e.completed then begin
          (* [order] is newest-first; position [pos] counts from the front *)
          let i, o = List.nth e.order (e.completed - 1 - pos) in
          Next (i, o)
        end
        else if e.finished then Finished
        else begin
          Condition.wait t.cond t.mutex;
          go ()
        end
      in
      go ())

let status t ~key =
  locked t (fun () ->
      Option.map
        (fun e ->
          {
            Wire.job_key = e.key;
            jobs = e.n;
            completed = e.completed;
            finished = e.finished;
            verdicts = List.rev e.order;
          })
        (Hashtbl.find_opt t.entries key))

(* -- startup replay --------------------------------------------------------- *)

let ( let* ) = Result.bind

let parse_wal_line body =
  let* obj = Json.parse body in
  let str k =
    match Json.member k obj with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "missing field %S" k)
  in
  let* tag = str "rec" in
  let* k = str "key" in
  match tag with
  | "accept" ->
    let* tenant = str "tenant" in
    let* sub =
      match Json.member "submit" obj with
      | Some s -> Wire.decode_submit s
      | None -> Error "missing field \"submit\""
    in
    Ok (`Accept (k, tenant, sub))
  | "verdict" ->
    let* index =
      match Option.bind (Json.member "index" obj) Json.to_float with
      | Some f -> Ok (int_of_float f)
      | None -> Error "missing field \"index\""
    in
    let* outcome =
      match Json.member "outcome" obj with
      | Some o -> Wire.decode_outcome o
      | None -> Error "missing field \"outcome\""
    in
    Ok (`Verdict (k, index, outcome))
  | "done" -> Ok (`Done k)
  | other -> Error (Printf.sprintf "unknown record kind %S" other)

(* Rebuild the entry table from the log, then reschedule exactly the jobs of
   unfinished entries that have no recorded verdict — restored verdicts are
   never re-run.  Runs before the listener starts, so no client can observe
   a half-replayed store.  A malformed line fails that line, not the rest:
   robustness code must itself degrade gracefully. *)
let replay t path =
  match Journal.Lines.load ~path ~header:wal_header with
  | Stdlib.Error { line = 0; _ } -> ()  (* first boot: no log yet *)
  | Stdlib.Error { line; message } ->
    Log.warn (fun m ->
        m "store: write-ahead log %s unreadable (line %d: %s), starting empty" path line
          message)
  | Ok (lines, torn) ->
    if torn then
      Log.warn (fun m -> m "store: dropped a torn trailing record from %s" path);
    locked t @@ fun () ->
    List.iter
      (fun (lineno, body) ->
        match parse_wal_line body with
        | Error e -> Log.warn (fun m -> m "store: wal line %d skipped: %s" lineno e)
        | Ok (`Accept (k, tenant, sub)) -> (
          if not (Hashtbl.mem t.entries k) then
            match Wire.resolve sub with
            | Error e ->
              Log.warn (fun m -> m "store: wal entry %s no longer resolves: %s" k e)
            | Ok specs ->
              Hashtbl.add t.entries k
                {
                  key = k;
                  tenant;
                  submit = sub;
                  n = List.length specs;
                  outcomes = Array.make (List.length specs) None;
                  order = [];
                  completed = 0;
                  finished = false;
                })
        | Ok (`Verdict (k, i, o)) -> (
          match Hashtbl.find_opt t.entries k with
          | Some e when i >= 0 && i < e.n && e.outcomes.(i) = None ->
            e.outcomes.(i) <- Some o;
            e.order <- (i, o) :: e.order;
            e.completed <- e.completed + 1
          | _ -> Log.warn (fun m -> m "store: wal line %d: stray verdict for %s" lineno k))
        | Ok (`Done k) -> (
          match Hashtbl.find_opt t.entries k with
          | Some e -> e.finished <- true
          | None -> Log.warn (fun m -> m "store: wal line %d: stray done for %s" lineno k)))
      lines;
    (* completion order across a restart is lost between entries; within one
       entry the wal order is the completion order, which is all the client
       can observe through [GET /v1/jobs] *)
    Hashtbl.iter
      (fun _ e ->
        if (not e.finished) && e.completed = e.n then e.finished <- true)
      t.entries;
    let unfinished =
      Hashtbl.fold (fun _ e acc -> if e.finished then acc else e :: acc) t.entries []
    in
    List.iter
      (fun e ->
        Metrics.add m_wal_restored e.completed;
        let missing =
          match Wire.resolve e.submit with
          | Error _ -> []  (* warned above; unreachable for entries built here *)
          | Ok specs ->
            List.mapi (fun i s -> (i, s)) specs
            |> List.filter (fun (i, _) -> e.outcomes.(i) = None)
        in
        Metrics.add m_wal_replays (List.length missing);
        Log.info (fun m ->
            m "store: wal replay of %s: %d verdicts restored, %d jobs re-run" e.key
              e.completed (List.length missing));
        match schedule t e ~deadline_s:(effective_deadline t e.submit) missing with
        | Ok () -> ()
        | Error _ ->
          List.iter
            (fun (i, s) ->
              complete_locked t e i
                (standin s (Campaign.Failed "discarded: replay rejected by the scheduler")))
            missing)
      unfinished

let create ?wal ?default_deadline_s ?quarantine_strikes ?quarantine_ttl_s ?slo
    ?sharding ~sched
    ~cache () =
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      entries = Hashtbl.create 32;
      (* replay below reads the path directly; opening the appender first
         only stamps the header on a fresh file, which load tolerates *)
      wal =
        Option.map (fun path -> Journal.Lines.appender ~path ~header:wal_header) wal;
      sched;
      cache;
      quarantine =
        Quarantine.create ?strikes:quarantine_strikes ?ttl_s:quarantine_ttl_s ();
      slo;
      sharding;
      default_deadline_s;
      serial = 0;
    }
  in
  Option.iter (replay t) wal;
  t
