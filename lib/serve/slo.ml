module Json = Mechaml_obs.Json
module Metrics = Mechaml_obs.Metrics

(* Per-tenant × per-stage latency objectives.

   Every observation lands in one shared Prometheus histogram family,
   [serve_stage_seconds{tenant,stage}], so quantiles are scrapeable, plus a
   breach counter against the stage's threshold.  The [/v1/slo] view and
   [mechaverify top] read the same cells back: one source of truth. *)

let stages = [ "admission"; "queue"; "closure"; "check"; "stream" ]

let default_thresholds =
  [
    (* admission is pure parsing + scheduling: anything slower than 50ms
       means the daemon itself is degraded, not the workload *)
    ("admission", 0.05);
    (* queue wait is workload-dependent; 5s of queueing on a healthy daemon
       means tenants are outrunning the worker pool *)
    ("queue", 5.0);
    ("closure", 30.0);
    ("check", 30.0);
    (* a stream spans the whole submission: all verdicts plus slow-reader
       time on the socket *)
    ("stream", 60.0);
  ]

type cell = {
  threshold : float;
  hist : Metrics.histogram;
  breaches : Metrics.counter;
}

type t = {
  objective : float;
  thresholds : (string * float) list;  (* complete: one entry per stage *)
  cells : (string * string, cell) Hashtbl.t;  (* (tenant, stage) *)
  mutex : Mutex.t;
}

let create ?(objective = 0.99) ?(thresholds = []) () =
  List.iter
    (fun (stage, v) ->
      if not (List.mem stage stages) then
        invalid_arg
          (Printf.sprintf "Slo.create: unknown stage %S (expected %s)" stage
             (String.concat "|" stages));
      if not (v > 0.) then invalid_arg "Slo.create: thresholds must be positive")
    thresholds;
  if not (objective > 0. && objective < 1.) then
    invalid_arg "Slo.create: objective must be in (0,1)";
  let merged =
    List.map
      (fun (stage, dflt) ->
        (stage, match List.assoc_opt stage thresholds with Some v -> v | None -> dflt))
      default_thresholds
  in
  { objective; thresholds = merged; cells = Hashtbl.create 16; mutex = Mutex.create () }

let threshold t ~stage =
  match List.assoc_opt stage t.thresholds with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Slo.threshold: unknown stage %S" stage)

let cell t ~tenant ~stage =
  let k = (tenant, stage) in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match Hashtbl.find_opt t.cells k with
      | Some c -> c
      | None ->
        let labels = [ ("stage", stage); ("tenant", tenant) ] in
        let c =
          {
            threshold = threshold t ~stage;
            hist =
              Metrics.histogram ~labels ~help:"Per-tenant per-stage latency (seconds)"
                "serve_stage_seconds";
            breaches =
              Metrics.counter ~labels
                ~help:"Observations over the stage's SLO threshold"
                "serve_slo_breaches_total";
          }
        in
        Hashtbl.replace t.cells k c;
        c)

let observe t ~tenant ~stage seconds =
  let c = cell t ~tenant ~stage in
  Metrics.observe c.hist seconds;
  if seconds > c.threshold then Metrics.incr c.breaches

(* Burn rate: the fraction of the error budget (1 - objective) consumed by
   breaches.  1.0 = breaching exactly as fast as the objective allows;
   above it the budget is burning down. *)
let burn t ~count ~breaches =
  if count = 0 then 0.
  else float_of_int breaches /. float_of_int count /. (1. -. t.objective)

let view t =
  Mutex.lock t.mutex;
  let cells = Hashtbl.fold (fun k c acc -> (k, c) :: acc) t.cells [] in
  Mutex.unlock t.mutex;
  let cells = List.sort compare cells in
  let num i = Json.Num (float_of_int i) in
  let entry ((tenant, stage), c) =
    let count = Metrics.histogram_count c.hist in
    let breaches = Metrics.counter_value c.breaches in
    Json.Obj
      [
        ("tenant", Json.Str tenant);
        ("stage", Json.Str stage);
        ("threshold_s", Json.Num c.threshold);
        ("count", num count);
        ("breaches", num breaches);
        ("burn_rate", Json.Num (burn t ~count ~breaches));
        ("p50_s", Json.Num (Metrics.quantile c.hist 0.5));
        ("p95_s", Json.Num (Metrics.quantile c.hist 0.95));
        ("p99_s", Json.Num (Metrics.quantile c.hist 0.99));
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str "mechaml-serve-slo/1");
      ("objective", Json.Num t.objective);
      ( "thresholds",
        Json.Obj (List.map (fun (stage, v) -> (stage, Json.Num v)) t.thresholds) );
      ("cells", Json.List (List.map entry cells));
    ]
