(** Per-tenant × per-stage latency SLOs for the verification daemon.

    A submission crosses five stages — [admission] (parse + resolve +
    schedule), [queue] (enqueue to dispatch), [closure] and [check] (the
    verification phases of each job), and [stream] (first byte to last
    verdict byte on the socket).  Each observation lands in a scrapeable
    histogram family [serve_stage_seconds{tenant,stage}] (cumulative
    [_bucket]/[_sum]/[_count] on [/metrics]) and is compared against the
    stage's threshold; breaches count into
    [serve_slo_breaches_total{tenant,stage}].

    [GET /v1/slo] renders the same cells as a burn-rate view: the fraction
    of the error budget ([1 - objective], default objective 0.99) consumed
    by breaches, plus p50/p95/p99 estimates ({!Mechaml_obs.Metrics.quantile}). *)

type t

val stages : string list
(** The five stage names, in pipeline order. *)

val default_thresholds : (string * float) list
(** Stage → default threshold in seconds. *)

val create : ?objective:float -> ?thresholds:(string * float) list -> unit -> t
(** [thresholds] overrides defaults per stage.  Raises [Invalid_argument]
    on an unknown stage name, a non-positive threshold, or an objective
    outside (0,1).  Note the underlying metrics registry is process-global:
    two live [t]s observe into the same histogram cells. *)

val threshold : t -> stage:string -> float

val observe : t -> tenant:string -> stage:string -> float -> unit
(** Record one latency observation (seconds).  Cheap when the metrics layer
    is disabled.  Raises [Invalid_argument] on an unknown stage. *)

val view : t -> Mechaml_obs.Json.t
(** The [/v1/slo] body: schema ["mechaml-serve-slo/1"], the objective, the
    effective thresholds, and one cell per seen (tenant, stage) with count,
    breaches, burn rate and quantile estimates. *)
