(** The JSON wire format of the verification service, built on the strict
    {!Mechaml_obs.Json} codec (no external JSON dependency).

    Campaign jobs carry driver closures ([make_box]), so arbitrary specs
    cannot cross a socket; a submission instead {e names} jobs out of the
    bundled matrix ({!Mechaml_engine.Campaign.bundled}) — the whole matrix,
    the tiny smoke matrix, a substring selection, or an explicit id list —
    and the daemon resolves the names back to runnable specs.  Outcomes
    travel fully serialized, so a client reconstructs
    {!Mechaml_engine.Campaign.outcome} values whose canonical report
    ({!Mechaml_engine.Report.canonical}) is byte-identical to a local
    [Campaign.run] over the same specs. *)

module Json := Mechaml_obs.Json

type submit = {
  tiny : bool;  (** select the four-job smoke matrix *)
  select : string option;  (** keep only job ids containing this substring *)
  ids : string list option;  (** explicit job ids (matrix order preserved) *)
  key : string option;
      (** idempotency key — resubmitting the same key attaches to the
          original submission instead of re-running it; the server generates
          a key when absent.  1-128 chars of [A-Za-z0-9._-]. *)
  deadline_s : float option;
      (** per-job execution deadline in seconds, overriding the server
          default; an overrun job is abandoned with a [Failed] stand-in *)
  request_id : string option;
      (** trace id of the submission ({!Mechaml_obs.Context}); the server
          stores it in the WAL accept record and stamps it on spans, flight
          events and streamed events.  Same alphabet as [key]. *)
}

val submit :
  ?tiny:bool ->
  ?select:string ->
  ?ids:string list ->
  ?key:string ->
  ?deadline_s:float ->
  ?request_id:string ->
  unit ->
  submit

val valid_key : string -> bool
(** The narrow alphabet shared by idempotency keys and request ids: 1-128
    chars of [A-Za-z0-9._-] — safe in URLs, WAL lines and HTTP headers. *)

val encode_submit : submit -> Json.t

val decode_submit : Json.t -> (submit, string) result
(** Unknown fields are ignored; wrongly-typed known fields are errors. *)

val resolve : submit -> (Mechaml_engine.Campaign.spec list, string) result
(** Resolve against the bundled matrix.  [Error] when the selection matches
    nothing or an explicit id is unknown. *)

val encode_outcome : Mechaml_engine.Campaign.outcome -> Json.t

val decode_outcome : Json.t -> (Mechaml_engine.Campaign.outcome, string) result
(** Inverse of {!encode_outcome}: every field the canonical report reads is
    restored exactly; measured fields (durations) round-trip as floats. *)

(** One line of the campaign response stream (newline-delimited JSON inside
    a chunked body). *)
type event =
  | Accepted of { jobs : int }
      (** submission admitted; [jobs] verdicts will follow *)
  | Verdict of { index : int; outcome : Mechaml_engine.Campaign.outcome }
      (** one job finished ([index] is its position in the resolved spec
          list; events arrive in completion order) *)
  | Done of { jobs : int; cache_entries : int; cache_hit_rate : float }
      (** all verdicts delivered, with a glimpse of the shared cache *)

val encode_event : ?request_id:string -> event -> Json.t
(** [request_id] is stamped on the event object as ["request_id"], so saved
    ndjson streams can be grepped by trace id; decoders ignore it. *)

val decode_event : Json.t -> (event, string) result

(** The [GET /v1/jobs/<key>] body — how a reconnecting client discovers what
    a previous (possibly interrupted) submission already produced without
    re-running anything. *)
type job_status = {
  job_key : string;
  jobs : int;  (** resolved specs in the submission *)
  completed : int;
  finished : bool;  (** every verdict is present *)
  verdicts : (int * Mechaml_engine.Campaign.outcome) list;  (** completion order *)
}

val encode_status : job_status -> Json.t

val decode_status : Json.t -> (job_status, string) result
