(** A strike-based poison-job registry with a time-to-live.

    A "poison" spec is one that reliably hangs or times out: every
    resubmission burns a worker for the full deadline, and a client retrying
    in a loop can starve every other tenant.  The registry counts watchdog
    kills and timeouts per {e structural digest} of the spec (id, family,
    fault injection, seed — everything that determines behaviour); after
    [strikes] of them the digest is quarantined for [ttl_s] seconds and
    submissions matching it are refused up front with an immediate [Failed]
    stand-in verdict instead of occupying a worker.

    The TTL bounds the damage of a false positive (a spec that timed out
    twice under transient load is runnable again after [ttl_s]); strike
    records older than the TTL are forgiven wholesale. *)

type t

val create : ?strikes:int -> ?ttl_s:float -> unit -> t
(** [strikes] (default 2) kills/timeouts before a digest is quarantined;
    [ttl_s] (default 300) seconds a quarantine lasts.  Raises
    [Invalid_argument] on non-positive parameters. *)

val check : t -> key:string -> string option
(** [Some reason] when [key] is actively quarantined (and counts the refusal
    in [serve_quarantined_total]); [None] otherwise.  Expired entries are
    released on the way. *)

val strike : t -> key:string -> reason:string -> bool
(** Record one poison signal for [key]; [true] when the key is (now or
    already) quarantined. *)

val active : t -> (string * string) list
(** Currently quarantined digests with their reasons (for diagnostics). *)
