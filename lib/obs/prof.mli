(** Per-phase profiling: wall/CPU time plus GC deltas around a computation.

    [phase ~name f] is [Trace.with_span] plus a [Gc.quick_stat] sample on
    both sides.  When tracing is on, the span carries [wall_s], [cpu_s],
    [minor_words], [major_words], and collection counts as arguments; when
    metrics are on, the duration feeds a [phase_seconds{phase=name}]
    histogram and the GC deltas feed [gc_minor_words_total]/
    [gc_major_collections_total] counters.  With both off it is the same
    check-and-call as a disabled span.

    GC numbers are process-wide, so a phase's deltas include allocation by
    concurrently running domains; within one domain (the synthesis loop, a
    pool worker's task) they attribute allocation to phases exactly. *)

val phase : ?args:(string * Trace.arg) list -> name:string -> (unit -> 'a) -> 'a

val phase_seconds : string -> Metrics.histogram
(** The histogram [phase] feeds for a given phase name — exposed so tests
    and reports can read back what was recorded. *)
