(** A minimal JSON value type with a strict parser and printer.

    The observability exporters write JSON by hand for speed; this module is
    the other direction — validating that an emitted trace or report actually
    parses (the CI smoke steps and the bench regression checker) without
    pulling a JSON library into the image.  Numbers are kept as floats, which
    loses nothing for the metric and timing payloads we emit. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Strict RFC-8259 subset: rejects trailing input, control characters in
    strings, and malformed escapes.  [\uXXXX] escapes are decoded to UTF-8.
    Nesting beyond 512 levels is an error, never a [Stack_overflow] — the
    verification daemon runs this parser on untrusted bytes, so every
    malformed input must come back as [Error], not an exception. *)

val to_string : t -> string
(** Compact one-line rendering; [parse (to_string v)] returns [v] up to
    float formatting. *)

val escape_into : Buffer.t -> string -> unit
(** Append the JSON string-escaping of a value (without the quotes) — the
    streaming building block the exporters use. *)

val number : float -> string
(** JSON rendering of a float: integral values without a fraction, NaN as
    [null]. *)

val member : string -> t -> t option
(** [member k (Obj _)] looks up key [k]; [None] on other constructors. *)

val to_float : t -> float option

val to_str : t -> string option
