(** The trace context: which request the current domain is working for.

    A request id is minted at the client or at admission, carried across the
    service explicitly (HTTP header, wire field, scheduler job), and
    re-established per domain through this module.  While set, {!Trace}
    stamps every span and instant with a [trace] argument and {!Flight}
    stamps every recorded event, so one submission's whole causal chain —
    request handling, scheduling, verification stages, verdicts — can be
    filtered out of a trace or a flight dump by one id.

    The context is domain-local ([Domain.DLS]): setting it in a handler
    domain does not leak into workers, and a worker re-establishing it for a
    job cannot clobber another domain's request. *)

val fresh : unit -> string
(** Mint a new id: 16 lowercase hex characters, unique across domains and
    (practically) across processes.  The alphabet is WAL- and URL-safe. *)

val current : unit -> string option
(** The calling domain's current request id, if any. *)

val set : string option -> unit
(** Set (or clear, with [None]) the calling domain's request id.  Prefer
    {!with_id}/{!with_current}, which restore the previous value. *)

val with_id : string -> (unit -> 'a) -> 'a
(** Run the thunk with the given id as the domain's context; the previous
    context is restored afterwards, whether the thunk returns or raises. *)

val with_current : string option -> (unit -> 'a) -> 'a
(** Like {!with_id} but also able to run with an explicitly empty context
    ([None]) — how a worker keeps an untraced job from inheriting the id of
    whatever job it ran before. *)
