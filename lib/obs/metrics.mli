(** A process-wide registry of counters, gauges, and histograms.

    Metrics are registered by name (plus optional static labels) and exported
    in the Prometheus text exposition format or as JSON.  Registration is
    idempotent: asking for an existing name/label pair returns the existing
    metric, so modules can declare their instruments at toplevel or lazily at
    the call site without coordination.  Re-registering a name as a different
    kind is a programming error and raises [Invalid_argument].

    Collection is off by default: every mutation ([incr], [add], [set],
    [observe]) first reads one atomic flag and returns immediately when
    disabled, so instrumented hot paths pay a load and a branch.  Enable with
    [set_enabled true] ([mechaverify --metrics-out] and [bench --json] do). *)

val set_enabled : bool -> unit

val enabled : unit -> bool

(** {1 Instruments} *)

type counter

type gauge

type histogram

val counter : ?labels:(string * string) list -> help:string -> string -> counter
(** Monotonically increasing count.  By Prometheus convention the name should
    end in [_total]. *)

val gauge : ?labels:(string * string) list -> help:string -> string -> gauge

val histogram :
  ?labels:(string * string) list ->
  ?buckets:float list ->
  help:string ->
  string ->
  histogram
(** Distribution with cumulative buckets.  [buckets] are the upper bounds
    (strictly increasing; an implicit [+Inf] bucket is always added).
    Default: {!log_buckets}[ ~lo:1e-6 ~hi:100. 17], log-scaled seconds from a
    microsecond to 100s. *)

val log_buckets : lo:float -> hi:float -> int -> float list
(** [n] geometrically spaced bounds from [lo] to [hi] inclusive — the right
    shape for latencies and state-space sizes, which span orders of
    magnitude.  Requires [0 < lo < hi] and [n >= 2]. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** Negative amounts are ignored: counters only go up. *)

val set : gauge -> float -> unit

val observe : histogram -> float -> unit

(** {1 Reading (tests and exporters)} *)

val counter_value : counter -> int

val gauge_value : gauge -> float

val histogram_sum : histogram -> float

val histogram_count : histogram -> int

val bucket_counts : histogram -> (float * int) list
(** Per-bucket (non-cumulative) counts, one pair per upper bound, the
    [+Inf] overflow bucket last as [(infinity, n)]. *)

val quantile : histogram -> float -> float
(** Estimate the [q]-quantile ([q] clamped to [0,1]) with the Prometheus
    [histogram_quantile] rule: linear interpolation within the bucket where
    the cumulative count crosses [q*total], the first bucket starting at 0.
    A quantile in the [+Inf] overflow bucket reports the highest finite
    bound; an empty histogram reports 0. *)

(** {1 Export} *)

val to_prometheus : unit -> string
(** Text exposition format: one [# HELP]/[# TYPE] header per metric name,
    samples sorted by name then labels, histograms expanded to
    [_bucket{le=...}]/[_sum]/[_count]. *)

val to_json : unit -> string
(** The same data as a JSON object ([{"schema":"mechaml-metrics/1",
    "metrics":[...]}]); parses with {!Json.parse}. *)

val reset : unit -> unit
(** Zero every registered metric (registrations survive).  For tests. *)
