type level = Quiet | Error | Warn | Info | Debug

let rank = function Quiet -> 0 | Error -> 1 | Warn -> 2 | Info -> 3 | Debug -> 4

let current = Atomic.make Warn

let set_level l = Atomic.set current l

let level () = Atomic.get current

let enabled l = l <> Quiet && rank l <= rank (Atomic.get current)

let level_to_string = function
  | Quiet -> "quiet"
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii s with
  | "quiet" -> Ok Quiet
  | "error" -> Ok Error
  | "warn" | "warning" -> Ok Warn
  | "info" -> Ok Info
  | "debug" -> Ok Debug
  | _ -> Error (Printf.sprintf "unknown log level %S (quiet|error|warn|info|debug)" s)

let default_output l msg =
  Printf.eprintf "mechaml: [%s] %s\n%!" (level_to_string l) msg

let output = ref default_output

let set_output f = output := f

type 'a msgf = (('a, Format.formatter, unit, unit) format4 -> 'a) -> unit

let msg l (msgf : 'a msgf) =
  if enabled l then msgf (fun fmt -> Format.kasprintf (fun s -> !output l s) fmt)

let err msgf = msg Error msgf

let warn msgf = msg Warn msgf

let info msgf = msg Info msgf

let debug msgf = msg Debug msgf
