let phase_seconds name =
  Metrics.histogram "phase_seconds"
    ~labels:[ ("phase", name) ]
    ~help:"Wall-clock duration of instrumented phases, by phase name."

let phase_cpu_seconds name =
  Metrics.histogram "phase_cpu_seconds"
    ~labels:[ ("phase", name) ]
    ~help:"CPU time consumed by instrumented phases, by phase name."

let gc_minor_words name =
  Metrics.counter "gc_minor_words_total"
    ~labels:[ ("phase", name) ]
    ~help:"Words allocated on the minor heap during instrumented phases."

let gc_major_collections name =
  Metrics.counter "gc_major_collections_total"
    ~labels:[ ("phase", name) ]
    ~help:"Major collections completed during instrumented phases."

type instruments = {
  seconds : Metrics.histogram;
  cpu_seconds : Metrics.histogram;
  minor_words : Metrics.counter;
  major_collections : Metrics.counter;
}

(* Phase names are a small fixed set, so the registry lookups (a mutex and a
   hashtable probe each) are paid once per name, not once per phase: the
   cache is a CAS-maintained assoc list read without synchronisation.
   Losing the CAS race just re-registers idempotently. *)
let cache : (string * instruments) list Atomic.t = Atomic.make []

let rec instruments name =
  match List.assoc_opt name (Atomic.get cache) with
  | Some i -> i
  | None ->
    let i =
      {
        seconds = phase_seconds name;
        cpu_seconds = phase_cpu_seconds name;
        minor_words = gc_minor_words name;
        major_collections = gc_major_collections name;
      }
    in
    let seen = Atomic.get cache in
    if Atomic.compare_and_set cache seen ((name, i) :: seen) then i
    else instruments name

let phase ?(args = []) ~name f =
  let tracing = Trace.is_enabled () in
  let metrics = Metrics.enabled () in
  if not (tracing || metrics) then f ()
  else begin
    let g0 = Gc.quick_stat () in
    let w0 = Clock.wall () in
    let c0 = Clock.cpu () in
    let t0 = if tracing then Trace.now_us () else 0. in
    let finish () =
      let wall = Clock.wall () -. w0 in
      let cpu = Clock.cpu () -. c0 in
      let g1 = Gc.quick_stat () in
      let minor_words = g1.minor_words -. g0.minor_words in
      let major_words = g1.major_words -. g0.major_words in
      let minors = g1.minor_collections - g0.minor_collections in
      let majors = g1.major_collections - g0.major_collections in
      if metrics then begin
        let i = instruments name in
        Metrics.observe i.seconds wall;
        Metrics.observe i.cpu_seconds cpu;
        Metrics.add i.minor_words (int_of_float minor_words);
        Metrics.add i.major_collections majors
      end;
      if tracing then
        Trace.complete ~name ~start_us:t0
          ~args:
            (args
            @ [
                ("wall_s", Trace.Float wall);
                ("cpu_s", Trace.Float cpu);
                ("minor_words", Trace.Float minor_words);
                ("major_words", Trace.Float major_words);
                ("minor_collections", Trace.Int minors);
                ("major_collections", Trace.Int majors);
              ])
          ()
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish ();
      Printexc.raise_with_backtrace e bt
  end
