(** Span-based tracing with Chrome [trace_event] export.

    [with_span] wraps a computation in a span; enabled spans record one
    complete ("ph":"X") event — name, wall-clock timestamp, duration, the
    recording domain as the thread id, and optional key/value arguments —
    into a lock-free per-domain buffer (each domain appends only to its own
    buffer, created on first use; the global registry of buffers is touched
    once per domain).  When tracing is disabled, [with_span] is a single
    atomic load and a direct call — instrumentation can stay on hot paths.

    [export] renders everything recorded so far as a JSON array in the
    Chrome [trace_event] format, loadable in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}.  Export and [reset] read the other
    domains' buffers without synchronisation: call them when the traced
    workload is quiescent (e.g. after {!Mechaml_engine.Pool.map} has joined
    its workers), which every in-tree caller does. *)

type arg = Int of int | Float of float | Str of string | Bool of bool

val enable : unit -> unit
(** Start recording.  The first [enable] of a process fixes the trace epoch
    (timestamps are microseconds since it). *)

val disable : unit -> unit

val is_enabled : unit -> bool

val with_span : ?args:(string * arg) list -> name:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  The span closes (and is recorded) whether
    the thunk returns or raises.  Nesting is expressed by containment of the
    [ts, ts+dur] intervals on one thread id, exactly how the Chrome viewers
    reconstruct it.

    When the recording domain has a {!Context} request id set, the span (and
    likewise [instant] and [complete] events) automatically carries a
    ["trace"] argument with that id. *)

val instant : ?args:(string * arg) list -> name:string -> unit -> unit
(** Record a zero-duration instant event (a point-in-time marker). *)

val now_us : unit -> float
(** Microseconds since the trace epoch — the timestamp base for [complete]. *)

val complete : ?args:(string * arg) list -> name:string -> start_us:float -> unit -> unit
(** Record a span from [start_us] to now.  For instrumentation that only
    knows its arguments after the fact (e.g. {!Prof.phase} attaching GC
    deltas); prefer [with_span] otherwise — it also closes on exceptions. *)

val span_count : unit -> int
(** Events recorded (across all domains) since the last [reset]. *)

val export : unit -> string
(** The recorded events as a Chrome trace JSON array, ending in a newline. *)

val write : path:string -> unit
(** [export] to a file, creating parent directories. *)

val reset : unit -> unit
(** Drop all recorded events (buffers stay registered). *)
