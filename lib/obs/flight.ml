(* A fixed-size lock-free flight recorder.

   Writers claim a global ticket with [Atomic.fetch_and_add], render the
   event to its final JSON line immediately (so a dump never has to chase
   live pointers), and publish it into slot [ticket mod size] with a CAS
   loop that refuses to replace a younger ticket.  Each slot holds one
   immutable [(ticket, line)] pair behind one [Atomic.t], so readers can
   never observe a torn event, and the ring is bounded by construction:
   at any instant the surviving tickets are exactly the newest ones. *)

let on = Atomic.make false
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let is_enabled () = Atomic.get on

let default_size = 512

type ring = { slots : (int * string) option Atomic.t array; next : int Atomic.t }

let make_ring size =
  { slots = Array.init (max 1 size) (fun _ -> Atomic.make None); next = Atomic.make 0 }

let ring = Atomic.make (make_ring default_size)

let configure ~size = Atomic.set ring (make_ring size)

let size () = Array.length (Atomic.get ring).slots

let recorded () = Atomic.get (Atomic.get ring).next

let reset () = configure ~size:(size ())

(* Fixed six-decimal seconds without Printf: format interpretation would
   dominate the whole event.  The [1_000_000 + frac] trick yields the
   zero-padded fraction as digits 1..6 of a seven-digit integer. *)
let add_ts b t =
  let us = int_of_float ((t *. 1e6) +. 0.5) in
  Buffer.add_string b (string_of_int (us / 1_000_000));
  Buffer.add_char b '.';
  Buffer.add_substring b (string_of_int (1_000_000 + (us mod 1_000_000))) 1 6

(* Events are rendered straight into a buffer — one pass, no intermediate
   [Json.t] — because recording happens on the request path; [Json] is still
   the reader's contract (every line parses). *)
let render ~seq ~kind ~trace fields =
  let b = Buffer.create 160 in
  Buffer.add_string b "{\"ts\":";
  add_ts b (Clock.wall ());
  Buffer.add_string b ",\"seq\":";
  Buffer.add_string b (string_of_int seq);
  Buffer.add_string b ",\"kind\":\"";
  Json.escape_into b kind;
  Buffer.add_char b '"';
  (match trace with
  | Some id ->
    Buffer.add_string b ",\"trace\":\"";
    Json.escape_into b id;
    Buffer.add_char b '"'
  | None -> ());
  List.iter
    (fun (k, v) ->
      Buffer.add_string b ",\"";
      Json.escape_into b k;
      Buffer.add_string b "\":";
      Buffer.add_string b (Json.to_string v))
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

let event ~kind ?trace ?(fields = []) () =
  if Atomic.get on then begin
    let r = Atomic.get ring in
    let seq = Atomic.fetch_and_add r.next 1 in
    let trace = match trace with Some _ as t -> t | None -> Context.current () in
    let line = render ~seq ~kind ~trace fields in
    let slot = r.slots.(seq mod Array.length r.slots) in
    let rec publish () =
      match Atomic.get slot with
      | Some (seq', _) when seq' > seq -> ()
      | cur -> if not (Atomic.compare_and_set slot cur (Some (seq, line))) then publish ()
    in
    publish ()
  end

let entries () =
  let r = Atomic.get ring in
  Array.to_list r.slots
  |> List.filter_map Atomic.get
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let dump () =
  let b = Buffer.create 4096 in
  List.iter
    (fun (_, line) ->
      Buffer.add_string b line;
      Buffer.add_char b '\n')
    (entries ());
  Buffer.contents b

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let write ~path =
  mkdir_p (Filename.dirname path);
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (dump ());
  close_out oc;
  Sys.rename tmp path

let install_signal_dump ?(signal = Sys.sigquit) ~path () =
  Sys.set_signal signal (Sys.Signal_handle (fun _ -> try write ~path with _ -> ()))
