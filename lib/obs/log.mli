(** Leveled progress logging for the synthesis loop and its drivers.

    Replaces the ad-hoc [Logs]/[Printf] progress output: one process-wide
    level, settable from [mechaverify --log-level quiet/info/debug], with
    [Quiet] actually silencing a run.  The message callback style matches
    [Logs] ([Log.info (fun m -> m "fmt" …)]) so call sites read the same;
    formatting cost is only paid when the level is enabled. *)

type level = Quiet | Error | Warn | Info | Debug

val set_level : level -> unit
(** Default: [Warn]. *)

val level : unit -> level

val enabled : level -> bool
(** Would a message at this level be emitted? [enabled Quiet] is [false] —
    [Quiet] is a threshold, not a message level. *)

val level_of_string : string -> (level, string) result

val level_to_string : level -> string

val set_output : (level -> string -> unit) -> unit
(** Replace the sink (default: one [mechaml: [level] …] line on stderr).
    Tests install a collector; a [Quiet] run never calls the sink. *)

type 'a msgf = (('a, Format.formatter, unit, unit) format4 -> 'a) -> unit

val err : 'a msgf -> unit

val warn : 'a msgf -> unit

val info : 'a msgf -> unit

val debug : 'a msgf -> unit
