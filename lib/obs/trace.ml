type arg = Int of int | Float of float | Str of string | Bool of bool

let enabled = Atomic.make false

(* Trace timestamps are microseconds since the first [enable] of the
   process, so a trace starts near t=0 instead of at the Unix epoch. *)
let epoch = Atomic.make 0.

let enable () =
  if Atomic.get epoch = 0. then Atomic.set epoch (Clock.wall ());
  Atomic.set enabled true

let disable () = Atomic.set enabled false

let is_enabled () = Atomic.get enabled

(* Events are recorded as compact structures — name, phase, timestamps and
   the argument list as given — and rendered to JSON only at export time.
   Rendering at record time costs microseconds per span (buffer churn,
   number formatting); deferring it leaves the hot path at two clock reads
   and a couple of small allocations, which is what lets instrumentation
   stay on per-iteration paths.  Timestamps and durations are kept as
   tenths of microseconds in plain ints — the clock's own resolution, and
   unboxed in the record where floats would not be.  [ev_dur] is meaningful
   only for complete ("X") events; instant events render without it. *)
type event = {
  ev_name : string;
  ev_ph : string;
  ev_ts : int;
  ev_dur : int;
  ev_args : (string * arg) list;
}

(* One buffer per domain.  A domain only ever appends to its own buffer
   (reached through domain-local storage), so recording takes no lock; the
   global registry is locked only when a domain records its first span. *)
type buffer = { tid : int; mutable events : event list; mutable count : int }

let registry_mutex = Mutex.create ()

let buffers : buffer list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let b = { tid = (Domain.self () :> int); events = []; count = 0 } in
      Mutex.lock registry_mutex;
      buffers := b :: !buffers;
      Mutex.unlock registry_mutex;
      b)

let now_us () = (Clock.wall () -. Atomic.get epoch) *. 1e6

let tenths_of_us us = int_of_float ((us *. 10.) +. 0.5)

let render_arg b (k, v) =
  Buffer.add_char b '"';
  Json.escape_into b k;
  Buffer.add_string b "\":";
  match v with
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    (* 9 significant digits: plenty for observability payloads, and far
       cheaper to format than the round-trippable 17 of [Json.number] *)
    Buffer.add_string b
      (if Float.is_integer f then Json.number f else Printf.sprintf "%.9g" f)
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Str s ->
    Buffer.add_char b '"';
    Json.escape_into b s;
    Buffer.add_char b '"'

(* Timestamps carry one decimal digit of microseconds — the clock's own
   resolution — rendered without going through Printf: format
   interpretation costs more than the rest of the event put together. *)
let add_tenths b tenths =
  Buffer.add_string b (string_of_int (tenths / 10));
  Buffer.add_char b '.';
  Buffer.add_string b (string_of_int (tenths mod 10))

let render_into b ~tid ev =
  Buffer.add_string b "{\"name\":\"";
  Json.escape_into b ev.ev_name;
  Buffer.add_string b "\",\"ph\":\"";
  Buffer.add_string b ev.ev_ph;
  Buffer.add_string b "\",\"pid\":1,\"tid\":";
  Buffer.add_string b (string_of_int tid);
  Buffer.add_string b ",\"ts\":";
  add_tenths b ev.ev_ts;
  if ev.ev_ph = "X" then begin
    Buffer.add_string b ",\"dur\":";
    add_tenths b ev.ev_dur
  end;
  if ev.ev_args <> [] then begin
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i kv ->
        if i > 0 then Buffer.add_char b ',';
        render_arg b kv)
      ev.ev_args;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}'

let record buf ev =
  buf.events <- ev :: buf.events;
  buf.count <- buf.count + 1

(* Every event recorded while a request context is set carries the request
   id, so one submission's spans can be filtered out of a trace without any
   caller plumbing the id through explicitly. *)
let stamp args =
  match Context.current () with Some id -> ("trace", Str id) :: args | None -> args

let with_span ?(args = []) ~name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let args = stamp args in
    let buf = Domain.DLS.get key in
    let t0 = now_us () in
    let close () =
      record buf
        {
          ev_name = name;
          ev_ph = "X";
          ev_ts = tenths_of_us t0;
          ev_dur = tenths_of_us (now_us () -. t0);
          ev_args = args;
        }
    in
    match f () with
    | v ->
      close ();
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      close ();
      Printexc.raise_with_backtrace e bt
  end

let complete ?(args = []) ~name ~start_us () =
  if Atomic.get enabled then begin
    let args = stamp args in
    let buf = Domain.DLS.get key in
    record buf
      {
        ev_name = name;
        ev_ph = "X";
        ev_ts = tenths_of_us start_us;
        ev_dur = tenths_of_us (now_us () -. start_us);
        ev_args = args;
      }
  end

let instant ?(args = []) ~name () =
  if Atomic.get enabled then begin
    let args = stamp args in
    let buf = Domain.DLS.get key in
    record buf
      { ev_name = name; ev_ph = "i"; ev_ts = tenths_of_us (now_us ()); ev_dur = 0; ev_args = args }
  end

let snapshot () =
  Mutex.lock registry_mutex;
  let bs = !buffers in
  Mutex.unlock registry_mutex;
  bs

let span_count () = List.fold_left (fun acc b -> acc + b.count) 0 (snapshot ())

let export () =
  let out = Buffer.create 4096 in
  Buffer.add_string out "[";
  let first = ref true in
  List.iter
    (fun b ->
      List.iter
        (fun ev ->
          Buffer.add_string out (if !first then "\n" else ",\n");
          first := false;
          render_into out ~tid:b.tid ev)
        (List.rev b.events))
    (List.rev (snapshot ()));
  Buffer.add_string out "\n]\n";
  Buffer.contents out

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let write ~path =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (export ()))

let reset () =
  List.iter
    (fun b ->
      b.events <- [];
      b.count <- 0)
    (snapshot ())
