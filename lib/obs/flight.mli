(** A crash-safe flight recorder: a fixed-size lock-free ring of recent
    structured events, dumped as ndjson.

    The service records the events a post-mortem needs — admissions,
    verdicts, watchdog kills, quarantine strikes, HTTP errors — into the
    ring as pre-rendered JSON lines.  Recording is wait-free apart from one
    bounded CAS loop, allocation-light, and safe from any domain; reading
    the ring back never blocks writers.  Because events are rendered at
    record time, a dump taken from a signal handler or a panic path sees
    only immutable strings.

    Each line carries [ts] (wall seconds), [seq] (a global, strictly
    increasing ticket — the total order of recording), [kind], the current
    {!Context} trace id when one is set, and the caller's fields. *)

val default_size : int
(** Ring slots before any {!configure}: 512. *)

val enable : unit -> unit
val disable : unit -> unit

val is_enabled : unit -> bool
(** Recording is off by default; [event] is a single atomic load when
    disabled. *)

val configure : size:int -> unit
(** Replace the ring with a fresh one of [size] slots (clamped to ≥ 1).
    Clears previously recorded events.  Default size is 512. *)

val size : unit -> int

val event : kind:string -> ?trace:string -> ?fields:(string * Json.t) list -> unit -> unit
(** Record one event.  [trace] overrides the ambient {!Context.current}
    (needed when recording on behalf of a job from another domain, e.g. a
    watchdog kill).  No-op while disabled. *)

val recorded : unit -> int
(** Total events recorded into the current ring since it was configured —
    may exceed {!size}; only the newest {!size} survive. *)

val entries : unit -> (int * string) list
(** The surviving events, oldest first: [(seq, ndjson line)] pairs. *)

val dump : unit -> string
(** The surviving events as ndjson, oldest first, one event per line. *)

val write : path:string -> unit
(** Atomically write {!dump} to [path] (via a temp file + rename), creating
    parent directories as needed. *)

val install_signal_dump : ?signal:int -> path:string -> unit -> unit
(** Install a signal handler (default [SIGQUIT]) that writes the flight
    dump to [path].  Errors during the dump are swallowed — the recorder
    must never turn a diagnostic signal into a crash. *)

val reset : unit -> unit
(** Clear the ring, keeping its size. *)
