(* The current request id is domain-local: a handler domain serves one
   request at a time and a worker domain runs one job at a time, so "the
   request this domain is working for" is exactly a DLS slot.  Crossing a
   domain boundary (handler -> scheduler queue -> worker) is explicit: the
   id travels in the job record and the worker re-establishes it. *)
let key : string option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get key)

let set id = Domain.DLS.get key := id

let with_current id f =
  let slot = Domain.DLS.get key in
  let saved = !slot in
  slot := id;
  Fun.protect ~finally:(fun () -> slot := saved) f

let with_id id f = with_current (Some id) f

(* -- minting ---------------------------------------------------------------- *)

let serial = Atomic.make 0

(* splitmix64-style finalizer: cheap, and the inputs (wall clock, pid,
   domain, a process-wide serial) already make collisions implausible *)
let mix x =
  let open Int64 in
  let x = mul x 0xff51afd7ed558ccdL in
  let x = logxor x (shift_right_logical x 33) in
  let x = mul x 0xc4ceb9fe1a85ec53L in
  logxor x (shift_right_logical x 33)

let fresh () =
  let c = Atomic.fetch_and_add serial 1 in
  let salt =
    (Unix.getpid () lsl 24) lxor (c lsl 4) lxor (Domain.self () :> int)
  in
  let seed = Int64.logxor (Int64.bits_of_float (Unix.gettimeofday ())) (Int64.of_int salt) in
  Printf.sprintf "%016Lx" (mix seed)
