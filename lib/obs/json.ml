type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Fail of int * string

(* -- parsing --------------------------------------------------------------- *)

type cursor = { src : string; mutable pos : int }

let error c msg = raise (Fail (c.pos, msg))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> error c (Printf.sprintf "expected %c, found %c" ch x)
  | None -> error c (Printf.sprintf "expected %c, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

(* Encode a Unicode scalar value as UTF-8 (for \uXXXX escapes). *)
let add_utf8 b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char b '"'; advance c
      | Some '\\' -> Buffer.add_char b '\\'; advance c
      | Some '/' -> Buffer.add_char b '/'; advance c
      | Some 'b' -> Buffer.add_char b '\b'; advance c
      | Some 'f' -> Buffer.add_char b '\012'; advance c
      | Some 'n' -> Buffer.add_char b '\n'; advance c
      | Some 'r' -> Buffer.add_char b '\r'; advance c
      | Some 't' -> Buffer.add_char b '\t'; advance c
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then error c "truncated \\u escape";
        let hex = String.sub c.src c.pos 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | Some u -> add_utf8 b u
        | None -> error c (Printf.sprintf "bad \\u escape %S" hex));
        c.pos <- c.pos + 4
      | _ -> error c "bad escape");
      go ()
    | Some ch when Char.code ch < 0x20 -> error c "control character in string"
    | Some ch ->
      Buffer.add_char b ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while (match peek c with Some ch -> num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> error c (Printf.sprintf "bad number %S" s)

(* The daemon feeds this parser bytes straight off a socket, so recursion
   depth must be bounded: without the cap a few kilobytes of '[' characters
   would blow the stack, and [Stack_overflow] is not caught by [parse]. *)
let max_depth = 512

let rec parse_value c depth =
  if depth > max_depth then error c "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c (depth + 1) in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> error c "expected , or } in object"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value c (depth + 1) in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> error c "expected , or ] in array"
      in
      List (elements [])
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> error c (Printf.sprintf "unexpected character %c" ch)

let parse src =
  let c = { src; pos = 0 } in
  match parse_value c 0 with
  | v ->
    skip_ws c;
    if c.pos <> String.length src then
      Error (Printf.sprintf "offset %d: trailing input" c.pos)
    else Ok v
  | exception Fail (pos, msg) -> Error (Printf.sprintf "offset %d: %s" pos msg)

(* -- printing -------------------------------------------------------------- *)

let escape_into b s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char b ch)
    s

let escape s =
  let b = Buffer.create (String.length s + 8) in
  escape_into b s;
  Buffer.contents b

let number f =
  (* NaN has no JSON rendering; [null] keeps the document parseable *)
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec to_string v =
  match v with
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f -> number f
  | Str s -> "\"" ^ escape s ^ "\""
  | List vs -> "[" ^ String.concat "," (List.map to_string vs) ^ "]"
  | Obj kvs ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) kvs)
    ^ "}"

let member k v = match v with Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_float v = match v with Num f -> Some f | _ -> None

let to_str v = match v with Str s -> Some s | _ -> None
