let on = Atomic.make false

let set_enabled b = Atomic.set on b

let enabled () = Atomic.get on

type counter = { c_value : int Atomic.t }

type gauge = { g_value : float Atomic.t }

(* Observations take the histogram's own mutex: histograms sit off the
   hottest paths (phase ends, closure sizes), and a sum can't be updated
   atomically without a CAS loop anyway. *)
type histogram = {
  bounds : float array;
  counts : int array;  (* length bounds + 1; last is the +Inf overflow *)
  mutable sum : float;
  mutable total : int;
  h_mutex : Mutex.t;
}

type kind =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type meta = {
  name : string;
  labels : (string * string) list;
  help : string;
  kind : kind;
}

let registry : (string, meta) Hashtbl.t = Hashtbl.create 64

let registry_mutex = Mutex.create ()

let render_label_value b v =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v

let render_labels labels =
  if labels = [] then ""
  else begin
    let b = Buffer.create 32 in
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b k;
        Buffer.add_string b "=\"";
        render_label_value b v;
        Buffer.add_char b '"')
      labels;
    Buffer.add_char b '}';
    Buffer.contents b
  end

let key name labels = name ^ render_labels labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

(* Idempotent registration: an existing name/label pair is returned as-is
   (its kind checked by the caller-specific wrappers below). *)
let register name labels help make =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () ->
      let k = key name labels in
      match Hashtbl.find_opt registry k with
      | Some m -> m.kind
      | None ->
        let kind = make () in
        Hashtbl.replace registry k { name; labels; help; kind };
        kind)

let counter ?(labels = []) ~help name =
  match register name labels help (fun () -> Counter { c_value = Atomic.make 0 }) with
  | Counter c -> c
  | k ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics.counter: %s already registered as a %s" name (kind_name k))

let gauge ?(labels = []) ~help name =
  match register name labels help (fun () -> Gauge { g_value = Atomic.make 0. }) with
  | Gauge g -> g
  | k ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics.gauge: %s already registered as a %s" name (kind_name k))

let log_buckets ~lo ~hi n =
  if not (lo > 0. && hi > lo && n >= 2) then
    invalid_arg "Obs.Metrics.log_buckets: need 0 < lo < hi and n >= 2";
  let ratio = (hi /. lo) ** (1. /. float_of_int (n - 1)) in
  List.init n (fun i -> lo *. (ratio ** float_of_int i))

let default_buckets = lazy (log_buckets ~lo:1e-6 ~hi:100. 17)

let histogram ?(labels = []) ?buckets ~help name =
  let bounds =
    let bs = match buckets with Some bs -> bs | None -> Lazy.force default_buckets in
    let a = Array.of_list bs in
    if Array.length a = 0 then invalid_arg "Obs.Metrics.histogram: empty buckets";
    Array.iteri
      (fun i b ->
        if i > 0 && b <= a.(i - 1) then
          invalid_arg "Obs.Metrics.histogram: buckets must be strictly increasing")
      a;
    a
  in
  let make () =
    Histogram
      {
        bounds;
        counts = Array.make (Array.length bounds + 1) 0;
        sum = 0.;
        total = 0;
        h_mutex = Mutex.create ();
      }
  in
  match register name labels help make with
  | Histogram h -> h
  | k ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics.histogram: %s already registered as a %s" name (kind_name k))

let incr c = if Atomic.get on then ignore (Atomic.fetch_and_add c.c_value 1)

let add c n = if Atomic.get on && n > 0 then ignore (Atomic.fetch_and_add c.c_value n)

let set g v = if Atomic.get on then Atomic.set g.g_value v

let observe h v =
  if Atomic.get on then begin
    let n = Array.length h.bounds in
    let i = ref 0 in
    while !i < n && v > h.bounds.(!i) do
      Stdlib.incr i
    done;
    Mutex.lock h.h_mutex;
    h.counts.(!i) <- h.counts.(!i) + 1;
    h.sum <- h.sum +. v;
    h.total <- h.total + 1;
    Mutex.unlock h.h_mutex
  end

let counter_value c = Atomic.get c.c_value

let gauge_value g = Atomic.get g.g_value

let with_hist h f =
  Mutex.lock h.h_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock h.h_mutex) f

let histogram_sum h = with_hist h (fun () -> h.sum)

let histogram_count h = with_hist h (fun () -> h.total)

(* Prometheus [histogram_quantile] semantics: find the first bucket whose
   cumulative count reaches q*total and interpolate linearly inside it.  The
   first bucket's lower bound is taken as 0; a quantile landing in the +Inf
   overflow bucket reports the highest finite bound — the histogram cannot
   say more. *)
let quantile h q =
  let q = Float.max 0. (Float.min 1. q) in
  with_hist h (fun () ->
      let nb = Array.length h.bounds in
      if h.total = 0 then 0.
      else begin
        let target = q *. float_of_int h.total in
        let rec go i cum =
          if i >= nb then h.bounds.(nb - 1)
          else begin
            let cum' = cum + h.counts.(i) in
            if float_of_int cum' >= target then begin
              let lo = if i = 0 then 0. else h.bounds.(i - 1) in
              let hi = h.bounds.(i) in
              if h.counts.(i) = 0 then hi
              else
                lo +. ((hi -. lo) *. ((target -. float_of_int cum) /. float_of_int h.counts.(i)))
            end
            else go (i + 1) cum'
          end
        in
        go 0 0
      end)

let bucket_counts h =
  with_hist h (fun () ->
      List.init
        (Array.length h.counts)
        (fun i ->
          let bound = if i < Array.length h.bounds then h.bounds.(i) else infinity in
          (bound, h.counts.(i))))

let sorted_metrics () =
  Mutex.lock registry_mutex;
  let ms = Hashtbl.fold (fun _ m acc -> m :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels)) ms

(* Prometheus renders every sample value as a float; [%.17g]-style noise is
   avoided by printing integral values without a fraction. *)
let prom_float f =
  if f = infinity then "+Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_prometheus () =
  let b = Buffer.create 1024 in
  let last_header = ref "" in
  List.iter
    (fun m ->
      if m.name <> !last_header then begin
        last_header := m.name;
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" m.name m.help);
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" m.name (kind_name m.kind))
      end;
      match m.kind with
      | Counter c ->
        Buffer.add_string b
          (Printf.sprintf "%s%s %d\n" m.name (render_labels m.labels) (counter_value c))
      | Gauge g ->
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" m.name (render_labels m.labels)
             (prom_float (gauge_value g)))
      | Histogram h ->
        let buckets, sum, total =
          with_hist h (fun () -> (Array.copy h.counts, h.sum, h.total))
        in
        let cumulative = ref 0 in
        Array.iteri
          (fun i n ->
            cumulative := !cumulative + n;
            let le =
              if i < Array.length h.bounds then prom_float h.bounds.(i) else "+Inf"
            in
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" m.name
                 (render_labels (m.labels @ [ ("le", le) ]))
                 !cumulative))
          buckets;
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %s\n" m.name (render_labels m.labels) (prom_float sum));
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" m.name (render_labels m.labels) total))
    (sorted_metrics ());
  Buffer.contents b

let to_json () =
  let open Json in
  let labels_json labels = Obj (List.map (fun (k, v) -> (k, Str v)) labels) in
  let metric m =
    let base =
      [ ("name", Str m.name); ("labels", labels_json m.labels); ("kind", Str (kind_name m.kind)) ]
    in
    let payload =
      match m.kind with
      | Counter c -> [ ("value", Num (float_of_int (counter_value c))) ]
      | Gauge g -> [ ("value", Num (gauge_value g)) ]
      | Histogram h ->
        let buckets =
          List.map
            (fun (le, n) ->
              Obj
                [
                  ("le", if le = infinity then Str "+Inf" else Num le);
                  ("count", Num (float_of_int n));
                ])
            (bucket_counts h)
        in
        [
          ("buckets", List buckets);
          ("sum", Num (histogram_sum h));
          ("count", Num (float_of_int (histogram_count h)));
        ]
    in
    Obj (base @ payload)
  in
  to_string
    (Obj
       [
         ("schema", Str "mechaml-metrics/1");
         ("metrics", List (List.map metric (sorted_metrics ())));
       ])
  ^ "\n"

let reset () =
  Mutex.lock registry_mutex;
  let ms = Hashtbl.fold (fun _ m acc -> m :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.iter
    (fun m ->
      match m.kind with
      | Counter c -> Atomic.set c.c_value 0
      | Gauge g -> Atomic.set g.g_value 0.
      | Histogram h ->
        with_hist h (fun () ->
            Array.fill h.counts 0 (Array.length h.counts) 0;
            h.sum <- 0.;
            h.total <- 0))
    ms
