(** Time sources shared by the tracer, the metrics layer and the profiling
    hooks.  All observability timestamps flow through here so a test (or a
    future monotonic source) can reason about one clock, not four. *)

val wall : unit -> float
(** Wall-clock seconds since the Unix epoch ([Unix.gettimeofday]). *)

val cpu : unit -> float
(** Processor seconds consumed by this process ([Sys.time]); under several
    domains this is the whole process, not the calling domain. *)
