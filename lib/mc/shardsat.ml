module Ctl = Mechaml_logic.Ctl
module Shard = Mechaml_ts.Shard
module Universe = Mechaml_ts.Universe
module Bitset = Mechaml_util.Bitset
module Bitvec = Mechaml_util.Bitvec
module Segment = Mechaml_util.Segment
module Trace = Mechaml_obs.Trace
module Metrics = Mechaml_obs.Metrics

let m_rounds =
  Metrics.counter "mc_shard_rounds_total"
    ~help:"Shard-batched fixpoint rounds until global convergence."

let m_boundary =
  Metrics.counter "mc_shard_boundary_pushes_total"
    ~help:"Worklist pushes crossing a shard boundary during sharded fixpoints."

let m_sets =
  Metrics.counter "mc_shard_sat_sets_total"
    ~help:"Converged sharded satisfaction sets registered with the segment manager."

(* A satisfaction set is one bit vector per shard, indexed by shard-local
   state index.  Global reads go through owner/local. *)
type set = Bitvec.t array

type env = {
  sp : Shard.t;
  n : int;
  k : int;
  owner : int array;
  local : int array;
  labels : Bitset.t array;
  blocking : Bitvec.t; (* global ids *)
  sizes : int array;
  memo : (Ctl.t, Segment.slot) Hashtbl.t;
  mutable next_id : int;
}

let create sp =
  {
    sp;
    n = Shard.num_states sp;
    k = Shard.shards sp;
    owner = Shard.owner sp;
    local = Shard.local sp;
    labels = Shard.labels sp;
    blocking = Shard.blocking sp;
    sizes = Shard.sizes sp;
    memo = Hashtbl.create 8;
    next_id = 0;
  }

let sget env (v : set) g = Bitvec.unsafe_get v.(env.owner.(g)) (env.local.(g))

let sset env (v : set) g = Bitvec.unsafe_set v.(env.owner.(g)) (env.local.(g))

let fresh env : set = Array.init env.k (fun i -> Bitvec.create env.sizes.(i))

let full env : set = Array.init env.k (fun i -> Bitvec.create_full env.sizes.(i))

let blocking env g = Bitvec.unsafe_get env.blocking g

(* converged sets live in the product's segment manager, sharing its budget *)
let store env v =
  let payload = Array.to_list (Array.mapi (fun i b -> (string_of_int i, Segment.Bits b)) v) in
  let id = env.next_id in
  env.next_id <- id + 1;
  Metrics.incr m_sets;
  Segment.add (Shard.manager env.sp) ~name:(Printf.sprintf "sat%d" id) payload

let fetch env slot : set =
  let payload = Segment.get (Shard.manager env.sp) slot in
  Array.init env.k (fun i ->
      match List.assoc_opt (string_of_int i) payload with
      | Some (Segment.Bits b) -> b
      | _ -> raise (Segment.Spill_error "sat segment field missing"))

(* -- shard-batched worklists ------------------------------------------------

   One local-index stack per shard; [push] routes a global id to its owning
   shard's stack.  A fixpoint drains shard stacks in rounds: each round
   visits every shard with pending work once (its view resident for the
   whole batch), buffering cross-shard pushes for a later round.  Each
   state is pushed at most once per fixpoint, so the stacks are plain
   arrays sized per shard. *)

let with_stacks env f =
  let stacks = Array.init env.k (fun i -> Array.make (max env.sizes.(i) 1) 0) in
  let sps = Array.make env.k 0 in
  let boundary = ref 0 in
  let push_from kk g =
    let o = env.owner.(g) in
    if o <> kk then incr boundary;
    stacks.(o).(sps.(o)) <- env.local.(g);
    sps.(o) <- sps.(o) + 1
  in
  let rounds = ref 0 in
  (* [drain kk] empties shard kk's stack with its view resident *)
  let run drain =
    let progress = ref true in
    while !progress do
      progress := false;
      let t0 = if Trace.is_enabled () then Some (Trace.now_us ()) else None in
      let drained = ref 0 in
      for kk = 0 to env.k - 1 do
        if sps.(kk) > 0 then begin
          progress := true;
          drained := !drained + sps.(kk);
          drain kk
        end
      done;
      if !progress then begin
        incr rounds;
        match t0 with
        | Some start_us ->
          Trace.complete ~name:"mc.shard.round" ~start_us
            ~args:[ ("round", Trace.Int !rounds); ("drained", Trace.Int !drained) ]
            ()
        | None -> ()
      end
    done
  in
  let out = f ~stacks ~sps ~push_from ~run in
  Metrics.add m_rounds !rounds;
  Metrics.add m_boundary !boundary;
  out

(* Least fixpoint for EF: backward closure from the target set. *)
let backward_closure env (target : set) =
  let out = Array.map Bitvec.copy target in
  with_stacks env (fun ~stacks ~sps ~push_from ~run ->
      for kk = 0 to env.k - 1 do
        Bitvec.iter_true
          (fun m ->
            stacks.(kk).(sps.(kk)) <- m;
            sps.(kk) <- sps.(kk) + 1)
          out.(kk)
      done;
      run (fun kk ->
          let v = Shard.view env.sp kk in
          let stack = stacks.(kk) in
          while sps.(kk) > 0 do
            sps.(kk) <- sps.(kk) - 1;
            let m = stack.(sps.(kk)) in
            for e = v.Shard.prow.(m) to v.Shard.prow.(m + 1) - 1 do
              let p = v.Shard.psrc.(e) in
              if not (sget env out p) then begin
                sset env out p;
                push_from kk p
              end
            done
          done);
      out)

(* Least fixpoint for E(f U g): backward closure from g through f-states. *)
let eu_fixpoint env (fset : set) (gset : set) =
  let out = Array.map Bitvec.copy gset in
  with_stacks env (fun ~stacks ~sps ~push_from ~run ->
      for kk = 0 to env.k - 1 do
        Bitvec.iter_true
          (fun m ->
            stacks.(kk).(sps.(kk)) <- m;
            sps.(kk) <- sps.(kk) + 1)
          out.(kk)
      done;
      run (fun kk ->
          let v = Shard.view env.sp kk in
          let stack = stacks.(kk) in
          while sps.(kk) > 0 do
            sps.(kk) <- sps.(kk) - 1;
            let m = stack.(sps.(kk)) in
            for e = v.Shard.prow.(m) to v.Shard.prow.(m + 1) - 1 do
              let p = v.Shard.psrc.(e) in
              if (not (sget env out p)) && sget env fset p then begin
                sset env out p;
                push_from kk p
              end
            done
          done);
      out)

(* Greatest fixpoint for EG f: remove f-states whose successors all left the
   set, cascading removals through predecessor counts — same count cascade
   as {!Sat.eg_fixpoint}, drained shard by shard. *)
let eg_fixpoint env (fset : set) =
  let out = Array.map Bitvec.copy fset in
  let cnt = Array.make (max env.n 1) 0 in
  with_stacks env (fun ~stacks ~sps ~push_from:_ ~run ->
      (* seed: successor counts per member, with the shard's view resident *)
      for kk = 0 to env.k - 1 do
        let v = Shard.view env.sp kk in
        for m = 0 to env.sizes.(kk) - 1 do
          if Bitvec.unsafe_get out.(kk) m then begin
            let g = v.Shard.members.(m) in
            let c = ref 0 in
            for e = v.Shard.row.(m) to v.Shard.row.(m + 1) - 1 do
              if sget env out v.Shard.dst.(e) then incr c
            done;
            cnt.(g) <- !c;
            if !c = 0 && not (blocking env g) then begin
              stacks.(kk).(sps.(kk)) <- m;
              sps.(kk) <- sps.(kk) + 1
            end
          end
        done
      done;
      run (fun kk ->
          let v = Shard.view env.sp kk in
          let stack = stacks.(kk) in
          while sps.(kk) > 0 do
            sps.(kk) <- sps.(kk) - 1;
            let m = stack.(sps.(kk)) in
            if Bitvec.unsafe_get out.(kk) m then begin
              Bitvec.unsafe_clear out.(kk) m;
              for e = v.Shard.prow.(m) to v.Shard.prow.(m + 1) - 1 do
                let p = v.Shard.psrc.(e) in
                if sget env out p then begin
                  cnt.(p) <- cnt.(p) - 1;
                  if cnt.(p) = 0 then begin
                    let o = env.owner.(p) in
                    stacks.(o).(sps.(o)) <- env.local.(p);
                    sps.(o) <- sps.(o) + 1
                  end
                end
              done
            end
          done);
      out)

(* Least fixpoint for A(f U g): bad-successor counts with a candidate
   cascade — {!Sat.au_fixpoint} over shard batches. *)
let au_fixpoint env (fset : set) (gset : set) =
  let out = Array.map Bitvec.copy gset in
  let bad = Array.make (max env.n 1) 0 in
  let candidate g =
    (not (sget env out g))
    && sget env fset g
    && (not (blocking env g))
    && bad.(g) = 0
  in
  with_stacks env (fun ~stacks ~sps ~push_from ~run ->
      for kk = 0 to env.k - 1 do
        let v = Shard.view env.sp kk in
        for m = 0 to env.sizes.(kk) - 1 do
          let g = v.Shard.members.(m) in
          let c = ref 0 in
          for e = v.Shard.row.(m) to v.Shard.row.(m + 1) - 1 do
            if not (sget env out v.Shard.dst.(e)) then incr c
          done;
          bad.(g) <- !c
        done
      done;
      for kk = 0 to env.k - 1 do
        let v = Shard.view env.sp kk in
        for m = 0 to env.sizes.(kk) - 1 do
          let g = v.Shard.members.(m) in
          if candidate g then begin
            Bitvec.unsafe_set out.(kk) m;
            stacks.(kk).(sps.(kk)) <- m;
            sps.(kk) <- sps.(kk) + 1
          end
        done
      done;
      run (fun kk ->
          let v = Shard.view env.sp kk in
          let stack = stacks.(kk) in
          while sps.(kk) > 0 do
            sps.(kk) <- sps.(kk) - 1;
            let m = stack.(sps.(kk)) in
            for e = v.Shard.prow.(m) to v.Shard.prow.(m + 1) - 1 do
              let p = v.Shard.psrc.(e) in
              bad.(p) <- bad.(p) - 1;
              if candidate p then begin
                sset env out p;
                push_from kk p
              end
            done
          done);
      out)

(* -- bounded operators: per-shard dynamic programming ----------------------- *)

let for_all_succ env (v : Shard.view) (next : set) m =
  let hi = v.Shard.row.(m + 1) in
  let e = ref v.Shard.row.(m) and ok = ref true in
  while !ok && !e < hi do
    if not (sget env next v.Shard.dst.(!e)) then ok := false;
    incr e
  done;
  !ok

let exists_succ env (v : Shard.view) (next : set) m =
  let hi = v.Shard.row.(m + 1) in
  let e = ref v.Shard.row.(m) and found = ref false in
  while (not !found) && !e < hi do
    if sget env next v.Shard.dst.(!e) then found := true;
    incr e
  done;
  !found

(* [step k next] computes H_k from H_{k+1}; each sweep visits the shards in
   order with the view resident. *)
let bounded_dp env ~hi ~step =
  let next = ref (step (hi + 1) (fresh env)) in
  for k = hi downto 0 do
    next := step k !next
  done;
  !next

let sweep env f : set =
  Array.init env.k (fun kk ->
      let v = Shard.view env.sp kk in
      Bitvec.init env.sizes.(kk) (fun m -> f kk v m))

let af_bounded env { Ctl.lo; hi } (fset : set) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then fresh env
      else
        sweep env (fun kk v m ->
            let g = v.Shard.members.(m) in
            (k >= lo && Bitvec.unsafe_get fset.(kk) m)
            || ((not (blocking env g)) && for_all_succ env v next m)))

let ef_bounded env { Ctl.lo; hi } (fset : set) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then fresh env
      else
        sweep env (fun kk v m ->
            (k >= lo && Bitvec.unsafe_get fset.(kk) m) || exists_succ env v next m))

let ag_bounded env { Ctl.lo; hi } (fset : set) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then full env
      else
        sweep env (fun kk v m ->
            let g = v.Shard.members.(m) in
            (k < lo || Bitvec.unsafe_get fset.(kk) m)
            && (k >= hi || blocking env g || for_all_succ env v next m)))

let eg_bounded env { Ctl.lo; hi } (fset : set) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then full env
      else
        sweep env (fun kk v m ->
            let g = v.Shard.members.(m) in
            (k < lo || Bitvec.unsafe_get fset.(kk) m)
            && (k >= hi || blocking env g || exists_succ env v next m)))

let au_bounded env { Ctl.lo; hi } (fset : set) (gset : set) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then fresh env
      else
        sweep env (fun kk v m ->
            let g = v.Shard.members.(m) in
            (k >= lo && Bitvec.unsafe_get gset.(kk) m)
            || (k < hi
               && Bitvec.unsafe_get fset.(kk) m
               && (not (blocking env g))
               && for_all_succ env v next m)))

let eu_bounded env { Ctl.lo; hi } (fset : set) (gset : set) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then fresh env
      else
        sweep env (fun kk v m ->
            (k >= lo && Bitvec.unsafe_get gset.(kk) m)
            || (k < hi && Bitvec.unsafe_get fset.(kk) m && exists_succ env v next m)))

let lognot_set _env (v : set) = Array.map Bitvec.lognot v

let rec sat_vec env (f : Ctl.t) : set =
  match Hashtbl.find_opt env.memo f with
  | Some slot -> fetch env slot
  | None ->
    let v = compute env f in
    Hashtbl.replace env.memo f (store env v);
    v

and compute env (f : Ctl.t) : set =
  match f with
  | True -> full env
  | False -> fresh env
  | Prop p -> (
    match Universe.index_opt (Shard.props env.sp) p with
    | None -> invalid_arg (Printf.sprintf "Mc.Shardsat: proposition %S not in the product" p)
    | Some i ->
      let v = fresh env in
      for g = 0 to env.n - 1 do
        if Bitset.mem i env.labels.(g) then sset env v g
      done;
      v)
  | Deadlock ->
    let v = fresh env in
    Bitvec.iter_true (fun g -> sset env v g) env.blocking;
    v
  | Not g -> lognot_set env (sat_vec env g)
  | And (a, b) -> Array.map2 Bitvec.logand (sat_vec env a) (sat_vec env b)
  | Or (a, b) -> Array.map2 Bitvec.logor (sat_vec env a) (sat_vec env b)
  | Implies (a, b) -> Array.map2 Bitvec.logimplies (sat_vec env a) (sat_vec env b)
  | Ax g ->
    let sg = sat_vec env g in
    sweep env (fun _ v m -> for_all_succ env v sg m)
  | Ex g ->
    let sg = sat_vec env g in
    sweep env (fun _ v m -> exists_succ env v sg m)
  | Ef (None, g) -> backward_closure env (sat_vec env g)
  | Ef (Some b, g) -> ef_bounded env b (sat_vec env g)
  | Af (None, g) -> au_fixpoint env (full env) (sat_vec env g)
  | Af (Some b, g) -> af_bounded env b (sat_vec env g)
  | Ag (None, g) ->
    (* AG f = ¬EF¬f, exactly as {!Sat.compute} *)
    lognot_set env (backward_closure env (sat_vec env (Ctl.Not g)))
  | Ag (Some b, g) -> ag_bounded env b (sat_vec env g)
  | Eg (None, g) -> eg_fixpoint env (sat_vec env g)
  | Eg (Some b, g) -> eg_bounded env b (sat_vec env g)
  | Au (None, a, b) -> au_fixpoint env (sat_vec env a) (sat_vec env b)
  | Au (Some bd, a, b) -> au_bounded env bd (sat_vec env a) (sat_vec env b)
  | Eu (None, a, b) -> eu_fixpoint env (sat_vec env a) (sat_vec env b)
  | Eu (Some bd, a, b) -> eu_bounded env bd (sat_vec env a) (sat_vec env b)

let holds_initially env f =
  let v = sat_vec env f in
  List.for_all
    (fun g -> Bitvec.get v.(env.owner.(g)) (env.local.(g)))
    (Shard.initial env.sp)

let failing_initial env f =
  let v = sat_vec env f in
  List.find_opt
    (fun g -> not (Bitvec.get v.(env.owner.(g)) (env.local.(g))))
    (Shard.initial env.sp)
