(** Satisfaction sets for CCTL over the explicit state space of an automaton.

    Semantics is over {e maximal} runs: a run is maximal when it is infinite
    or ends in a blocking state (from which the special proposition [δ]
    holds).  Bounded operators count discrete time units, one per transition
    (Definition 1); a maximal run that ends before a bounded obligation's
    window closes fails eventualities ([AF]/[EF]/[AU]/[EU]) and trivially
    satisfies the remaining safety obligations ([AG]/[EG]). *)

type env
(** Memoizes satisfaction sets per subformula for one automaton. *)

val create : Mechaml_ts.Automaton.t -> env

val create_warm :
  ?debug:bool ->
  prev:env ->
  old_of:int array ->
  dirty:Mechaml_ts.Automaton.state list ->
  Mechaml_ts.Automaton.t ->
  env
(** Warm-started environment for an automaton derived from [prev]'s by
    localized change — the synthesis loop's product sequence.  [old_of]
    maps each state to its counterpart in [prev]'s automaton ([-1] if none);
    [dirty] lists the states whose outgoing transitions may differ from
    their counterpart's (new states included).  On the {e exactness region}
    — states that cannot reach any dirty state — the counterpart's converged
    satisfaction bits are provably identical for every CTL subformula, so
    unbounded least fixpoints ([EF]/[AF]/[AG]/[AU]/[EU]) are seeded with the
    transferred bits and only explore outward from the seam.  [EG] and the
    bounded operators recompute cold.  Verdicts and sat sets are bit-for-bit
    those of a cold {!create}; [debug] recomputes every seeded fixpoint cold
    and raises [Failure] on any divergence.  Raises [Invalid_argument] when
    [old_of]/[dirty] are inconsistent with the automaton (wrong length,
    out-of-range state, or an unmapped state outside the dirty region). *)

val warm_stats : env -> (int * int) option
(** [(seeded, seedable)] counts of unbounded fixpoint computations in a
    warm environment — the seed hit rate is [seeded / seedable].  [None]
    for cold environments. *)

val automaton : env -> Mechaml_ts.Automaton.t

val sat : env -> Mechaml_logic.Ctl.t -> bool array
(** [sat env f] is the characteristic vector of [{ s | M, s ⊨ f }].  Raises
    [Invalid_argument] when the formula mentions a proposition absent from
    the automaton's universe — catching typos beats treating them as
    false. *)

val sat_vec : env -> Mechaml_logic.Ctl.t -> Mechaml_util.Bitvec.t
(** Same set as {!sat}, as the memoized bit vector the fixpoint engine
    computes internally — no [bool array] conversion.  Callers must not
    mutate the result. *)

val holds_initially : env -> Mechaml_logic.Ctl.t -> bool
(** All initial states satisfy the formula. *)

val failing_initial : env -> Mechaml_logic.Ctl.t -> Mechaml_ts.Automaton.state option
(** Some initial state violating the formula, if any. *)
