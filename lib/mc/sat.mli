(** Satisfaction sets for CCTL over the explicit state space of an automaton.

    Semantics is over {e maximal} runs: a run is maximal when it is infinite
    or ends in a blocking state (from which the special proposition [δ]
    holds).  Bounded operators count discrete time units, one per transition
    (Definition 1); a maximal run that ends before a bounded obligation's
    window closes fails eventualities ([AF]/[EF]/[AU]/[EU]) and trivially
    satisfies the remaining safety obligations ([AG]/[EG]). *)

type env
(** Memoizes satisfaction sets per subformula for one automaton. *)

val create : Mechaml_ts.Automaton.t -> env

val automaton : env -> Mechaml_ts.Automaton.t

val sat : env -> Mechaml_logic.Ctl.t -> bool array
(** [sat env f] is the characteristic vector of [{ s | M, s ⊨ f }].  Raises
    [Invalid_argument] when the formula mentions a proposition absent from
    the automaton's universe — catching typos beats treating them as
    false. *)

val sat_vec : env -> Mechaml_logic.Ctl.t -> Mechaml_util.Bitvec.t
(** Same set as {!sat}, as the memoized bit vector the fixpoint engine
    computes internally — no [bool array] conversion.  Callers must not
    mutate the result. *)

val holds_initially : env -> Mechaml_logic.Ctl.t -> bool
(** All initial states satisfy the formula. *)

val failing_initial : env -> Mechaml_logic.Ctl.t -> Mechaml_ts.Automaton.state option
(** Some initial state violating the formula, if any. *)
