(** The model-checking front end used by the iterative behavior synthesis
    (Section 4.1): check [M ⊨ φ ∧ ¬δ] and extract a counterexample run on
    failure. *)

type outcome =
  | Holds
  | Violated of {
      formula : Mechaml_logic.Ctl.t;  (** the (sub)property that failed *)
      witness : Mechaml_ts.Run.t;     (** counterexample run from an initial state *)
      explanation : string;
      complete : bool;
          (** the witness run alone proves the violation; [false] when the
              evidence also relies on the final state blocking or on an
              obligation the extractor could not unfold (see
              {!Witness.t}) *)
    }

val check :
  ?strategy:Witness.strategy -> Mechaml_ts.Automaton.t -> Mechaml_logic.Ctl.t -> outcome
(** Every initial state must satisfy the formula.  Default strategy is
    {!Witness.Bfs_shortest}. *)

val check_conjunction :
  ?strategy:Witness.strategy -> Mechaml_ts.Automaton.t -> Mechaml_logic.Ctl.t list -> outcome
(** Check properties in order; report the first violation.  Cheaper than
    checking the conjunction because satisfaction sets are shared through one
    environment and witnesses stay per-property. *)

val check_conjunction_env :
  ?strategy:Witness.strategy -> Sat.env -> Mechaml_logic.Ctl.t list -> outcome
(** {!check_conjunction} against a caller-supplied environment — the hook
    that lets the synthesis loop pass a {!Sat.create_warm} environment and
    keep it for the next iteration's warm start. *)

val check_with_deadlock_freedom :
  ?strategy:Witness.strategy -> Mechaml_ts.Automaton.t -> Mechaml_logic.Ctl.t -> outcome
(** [φ ∧ ¬δ], the combined obligation of equation (7): the property itself
    plus deadlock freedom ([AG ¬δ]). *)

val holds : Mechaml_ts.Automaton.t -> Mechaml_logic.Ctl.t -> bool
(** Verdict only. *)

val more_witnesses :
  ?limit:int -> Mechaml_ts.Automaton.t -> Mechaml_logic.Ctl.t -> Mechaml_ts.Run.t list
(** Up to [limit] (default 3) counterexample runs with pairwise distinct
    final states, nearest first — the "several counterexamples per check"
    improvement the paper's conclusion proposes.  Available for violations
    whose negation is a reachability of a state predicate (safety
    invariants, deadlock freedom); other shapes and satisfied formulas yield
    [[]]. *)
