module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe
module Compose = Mechaml_ts.Compose
module Bitset = Mechaml_util.Bitset
module Ctl = Mechaml_logic.Ctl
module Trace = Mechaml_obs.Trace
module Metrics = Mechaml_obs.Metrics

let m_pairs_explored =
  Metrics.counter "mc_onthefly_pairs_total"
    ~help:"Product state pairs explored by the on-the-fly safety checker."

type trace = {
  pairs : (Automaton.state * Automaton.state) list;
  io : Mechaml_ts.Run.io list;
}

type verdict = Holds | Bad_state of trace | Deadlocked of trace

type result = { verdict : verdict; pairs_explored : int }

let check_safety_unobserved ~(left : Automaton.t) ~(right : Automaton.t)
    ?(bad = fun _ _ -> false) () =
  let joint = Compose.stepper left right in
  let in_shift = Universe.size left.Automaton.inputs in
  let out_shift = Universe.size left.Automaton.outputs in
  let combine (t : Automaton.trans) (t' : Automaton.trans) =
    ( Bitset.union t.input (Bitset.shift in_shift t'.input),
      Bitset.union t.output (Bitset.shift out_shift t'.output) )
  in
  let seen : (Automaton.state * Automaton.state, unit) Hashtbl.t = Hashtbl.create 1024 in
  let parent = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let explored = ref 0 in
  let unwind pair =
    let rec go pair pairs io =
      match Hashtbl.find_opt parent pair with
      | None -> (pair :: pairs, io)
      | Some (p, ab) -> go p (pair :: pairs) (ab :: io)
    in
    let pairs, io = go pair [] [] in
    { pairs; io }
  in
  let verdict = ref None in
  let visit ?from pair =
    if !verdict = None && not (Hashtbl.mem seen pair) then begin
      Hashtbl.add seen pair ();
      incr explored;
      (match from with Some (p, ab) -> Hashtbl.add parent pair (p, ab) | None -> ());
      let l, r = pair in
      if bad l r then verdict := Some (Bad_state (unwind pair)) else Queue.add pair queue
    end
  in
  List.iter
    (fun q -> List.iter (fun q' -> visit (q, q')) right.Automaton.initial)
    left.Automaton.initial;
  while !verdict = None && not (Queue.is_empty queue) do
    let pair = Queue.pop queue in
    match joint pair with
    | [] -> verdict := Some (Deadlocked (unwind pair))
    | moves ->
      List.iter
        (fun ((t : Automaton.trans), (t' : Automaton.trans)) ->
          visit ~from:(pair, combine t t') (t.dst, t'.dst))
        moves
  done;
  { verdict = Option.value !verdict ~default:Holds; pairs_explored = !explored }

(* The span's interesting argument (pairs explored) is only known afterwards,
   hence [complete] rather than [with_span]. *)
let check_safety ~left ~right ?bad () =
  let t0 = if Trace.is_enabled () then Some (Trace.now_us ()) else None in
  let result = check_safety_unobserved ~left ~right ?bad () in
  Metrics.add m_pairs_explored result.pairs_explored;
  (match t0 with
  | Some start_us ->
    Trace.complete ~name:"mc.onthefly" ~start_us
      ~args:[ ("pairs_explored", Trace.Int result.pairs_explored) ]
      ()
  | None -> ());
  result

let violates_invariant ~left ~right ~invariant () =
  let body =
    match invariant with
    | Ctl.Ag (None, body) -> body
    | _ -> invalid_arg "Onthefly.violates_invariant: the invariant must be an unbounded AG"
  in
  let rec eval ls rs (f : Ctl.t) =
    match f with
    | Ctl.True -> true
    | Ctl.False -> false
    | Ctl.Prop p ->
      if Universe.mem left.Automaton.props p then Automaton.has_prop left ls p
      else if Universe.mem right.Automaton.props p then Automaton.has_prop right rs p
      else
        invalid_arg
          (Printf.sprintf "Onthefly.violates_invariant: proposition %S not in either operand" p)
    | Ctl.Not g -> not (eval ls rs g)
    | Ctl.And (a, b) -> eval ls rs a && eval ls rs b
    | Ctl.Or (a, b) -> eval ls rs a || eval ls rs b
    | Ctl.Implies (a, b) -> (not (eval ls rs a)) || eval ls rs b
    | Ctl.Deadlock | Ctl.Ax _ | Ctl.Ex _ | Ctl.Af _ | Ctl.Ef _ | Ctl.Ag _ | Ctl.Eg _
    | Ctl.Au _ | Ctl.Eu _ ->
      invalid_arg "Onthefly.violates_invariant: the AG body must be a boolean state formula"
  in
  check_safety ~left ~right ~bad:(fun ls rs -> not (eval ls rs body)) ()
