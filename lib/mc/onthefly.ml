module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe
module Compose = Mechaml_ts.Compose
module Bitset = Mechaml_util.Bitset
module Ctl = Mechaml_logic.Ctl
module Trace = Mechaml_obs.Trace
module Metrics = Mechaml_obs.Metrics

let m_pairs_explored =
  Metrics.counter "mc_onthefly_pairs_total"
    ~help:"Product state pairs explored by the on-the-fly safety checker."

type trace = {
  pairs : (Automaton.state * Automaton.state) list;
  io : Mechaml_ts.Run.io list;
}

type verdict = Holds | Bad_state of trace | Deadlocked of trace

type result = { verdict : verdict; pairs_explored : int }

(* Dense representation cap: below this many potential state pairs the
   visited set is a flat bit vector indexed by pair code [l * n_r + r] — one
   bit per potential pair, so membership tests are mask-and-shift instead of
   tuple hashing.  2^22 codes is a 512 KiB transient vector at the worst
   case; parents are tracked per *explored* pair, so sparsely-explored big
   products stay cheap.

   Incremental note: unlike {!Sat}'s warm-started fixpoints, the on-the-fly
   search keeps no state across synthesis iterations — its visited set is
   intrinsically tied to the current exploration's parent links (the trace
   reconstruction walks them), so a seeded visited set would yield orphaned
   counterexample paths.  Each call is a cold start by design; the loop's
   incremental machinery amortizes the product and the global checker
   instead. *)
let dense_cap = 1 lsl 22

let check_safety_unobserved ~(left : Automaton.t) ~(right : Automaton.t)
    ?(shards = 1) ?(bad = fun _ _ -> false) () =
  if shards < 1 then invalid_arg "Onthefly.check_safety: shards must be >= 1";
  let join = Compose.joint_iter left right in
  let in_shift = Universe.size left.Automaton.inputs in
  let out_shift = Universe.size left.Automaton.outputs in
  let combine (t : Automaton.trans) (t' : Automaton.trans) =
    ( Bitset.union t.input (Bitset.shift in_shift t'.input),
      Bitset.union t.output (Bitset.shift out_shift t'.output) )
  in
  let n_l = Automaton.num_states left and n_r = Automaton.num_states right in
  if n_l > 0 && n_r > 0 && n_l * n_r <= dense_cap then begin
    (* Dense-visited path: one bit per potential pair, parent links only for
       pairs actually reached.  The interaction along each witness edge is
       not stored: unwinding re-enumerates the parent's joint moves and
       takes the first one reaching the child — the same move that recorded
       the parent when the child was first visited, since visits happen in
       enumeration order.

       The visited set is striped into [shards] dense per-shard bitmaps by
       [code mod shards] — the same partition the sharded product uses —
       so a sharded exploration's visited bits stay shard-local.  With one
       shard the layout degenerates to the previous single flat vector;
       membership answers are identical either way. *)
    let total = n_l * n_r in
    let seen =
      Array.init shards (fun k ->
          Mechaml_util.Bitvec.create (max ((total - k + shards - 1) / shards) 1))
    in
    let seen_get code =
      Mechaml_util.Bitvec.unsafe_get seen.(code mod shards) (code / shards)
    in
    let seen_set code =
      Mechaml_util.Bitvec.unsafe_set seen.(code mod shards) (code / shards)
    in
    let parent : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let queue = Queue.create () in
    let explored = ref 0 in
    let unwind code =
      let rec chain code acc =
        let acc = code :: acc in
        match Hashtbl.find_opt parent code with None -> acc | Some p -> chain p acc
      in
      let pairs = List.map (fun c -> (c / n_r, c mod n_r)) (chain code []) in
      let rec ios = function
        | (pl, pr) :: ((cl, cr) :: _ as rest) ->
          let found = ref None in
          ignore
            (join (pl, pr) (fun (t : Automaton.trans) (t' : Automaton.trans) ->
                 if !found = None && t.dst = cl && t'.dst = cr then
                   found := Some (combine t t')));
          (match !found with
          | Some ab -> ab :: ios rest
          | None -> assert false)
        | _ -> []
      in
      { pairs; io = ios pairs }
    in
    let verdict = ref None in
    let visit ?from code =
      if !verdict = None && not (seen_get code) then begin
        seen_set code;
        (match from with Some p -> Hashtbl.add parent code p | None -> ());
        incr explored;
        let l = code / n_r and r = code mod n_r in
        if bad l r then verdict := Some (Bad_state (unwind code)) else Queue.add code queue
      end
    in
    List.iter
      (fun q -> List.iter (fun q' -> visit ((q * n_r) + q')) right.Automaton.initial)
      left.Automaton.initial;
    while !verdict = None && not (Queue.is_empty queue) do
      let code = Queue.pop queue in
      let moves =
        join
          (code / n_r, code mod n_r)
          (fun (t : Automaton.trans) (t' : Automaton.trans) ->
            visit ~from:code ((t.dst * n_r) + t'.dst))
      in
      if moves = 0 then verdict := Some (Deadlocked (unwind code))
    done;
    { verdict = Option.value !verdict ~default:Holds; pairs_explored = !explored }
  end
  else begin
    let seen : (Automaton.state * Automaton.state, unit) Hashtbl.t = Hashtbl.create 1024 in
    let parent = Hashtbl.create 1024 in
    let queue = Queue.create () in
    let explored = ref 0 in
    let unwind pair =
      let rec go pair pairs io =
        match Hashtbl.find_opt parent pair with
        | None -> (pair :: pairs, io)
        | Some (p, ab) -> go p (pair :: pairs) (ab :: io)
      in
      let pairs, io = go pair [] [] in
      { pairs; io }
    in
    let verdict = ref None in
    let visit ?from pair =
      if !verdict = None && not (Hashtbl.mem seen pair) then begin
        Hashtbl.add seen pair ();
        incr explored;
        (match from with Some (p, ab) -> Hashtbl.add parent pair (p, ab) | None -> ());
        let l, r = pair in
        if bad l r then verdict := Some (Bad_state (unwind pair)) else Queue.add pair queue
      end
    in
    List.iter
      (fun q -> List.iter (fun q' -> visit (q, q')) right.Automaton.initial)
      left.Automaton.initial;
    while !verdict = None && not (Queue.is_empty queue) do
      let pair = Queue.pop queue in
      let moves =
        join pair (fun (t : Automaton.trans) (t' : Automaton.trans) ->
            visit ~from:(pair, combine t t') (t.dst, t'.dst))
      in
      if moves = 0 then verdict := Some (Deadlocked (unwind pair))
    done;
    { verdict = Option.value !verdict ~default:Holds; pairs_explored = !explored }
  end

(* The span's interesting argument (pairs explored) is only known afterwards,
   hence [complete] rather than [with_span]. *)
let check_safety ~left ~right ?shards ?bad () =
  let t0 = if Trace.is_enabled () then Some (Trace.now_us ()) else None in
  let result = check_safety_unobserved ~left ~right ?shards ?bad () in
  Metrics.add m_pairs_explored result.pairs_explored;
  (match t0 with
  | Some start_us ->
    Trace.complete ~name:"mc.onthefly" ~start_us
      ~args:[ ("pairs_explored", Trace.Int result.pairs_explored) ]
      ()
  | None -> ());
  result

let violates_invariant ~left ~right ?shards ~invariant () =
  let body =
    match invariant with
    | Ctl.Ag (None, body) -> body
    | _ -> invalid_arg "Onthefly.violates_invariant: the invariant must be an unbounded AG"
  in
  let rec eval ls rs (f : Ctl.t) =
    match f with
    | Ctl.True -> true
    | Ctl.False -> false
    | Ctl.Prop p ->
      if Universe.mem left.Automaton.props p then Automaton.has_prop left ls p
      else if Universe.mem right.Automaton.props p then Automaton.has_prop right rs p
      else
        invalid_arg
          (Printf.sprintf "Onthefly.violates_invariant: proposition %S not in either operand" p)
    | Ctl.Not g -> not (eval ls rs g)
    | Ctl.And (a, b) -> eval ls rs a && eval ls rs b
    | Ctl.Or (a, b) -> eval ls rs a || eval ls rs b
    | Ctl.Implies (a, b) -> (not (eval ls rs a)) || eval ls rs b
    | Ctl.Deadlock | Ctl.Ax _ | Ctl.Ex _ | Ctl.Af _ | Ctl.Ef _ | Ctl.Ag _ | Ctl.Eg _
    | Ctl.Au _ | Ctl.Eu _ ->
      invalid_arg "Onthefly.violates_invariant: the AG body must be a boolean state formula"
  in
  check_safety ~left ~right ?shards ~bad:(fun ls rs -> not (eval ls rs body)) ()
