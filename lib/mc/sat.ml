module Automaton = Mechaml_ts.Automaton
module Ctl = Mechaml_logic.Ctl
module Metrics = Mechaml_obs.Metrics

let m_states_explored =
  Metrics.counter "mc_states_explored_total"
    ~help:"States in automata handed to the global model checker (summed at Sat.create)."

let m_fixpoint_sweeps =
  Metrics.counter "mc_fixpoint_sweeps_total"
    ~help:"Full-state sweeps performed by the EG/AU/EU fixpoint iterations."

let m_sat_set_size =
  Metrics.histogram "mc_sat_set_size"
    ~buckets:(Metrics.log_buckets ~lo:1. ~hi:1e6 13)
    ~help:"Number of satisfying states per computed CTL subformula."

type env = {
  auto : Automaton.t;
  n : int;
  memo : (Ctl.t, bool array) Hashtbl.t;
  predecessors : (Automaton.state * Automaton.trans) list array;
      (** reverse edges: state -> (source, transition) list *)
}

let create auto =
  let n = Automaton.num_states auto in
  let predecessors = Array.make (max n 1) [] in
  for s = 0 to n - 1 do
    List.iter
      (fun (t : Automaton.trans) -> predecessors.(t.dst) <- (s, t) :: predecessors.(t.dst))
      (Automaton.transitions_from auto s)
  done;
  Metrics.add m_states_explored n;
  { auto; n; memo = Hashtbl.create 64; predecessors }

let automaton env = env.auto

let all env v = Array.make env.n v

let for_all_succ env sat s =
  List.for_all (fun (t : Automaton.trans) -> sat.(t.dst)) (Automaton.transitions_from env.auto s)

let exists_succ env sat s =
  List.exists (fun (t : Automaton.trans) -> sat.(t.dst)) (Automaton.transitions_from env.auto s)

let blocking env s = Automaton.is_blocking env.auto s

(* Least fixpoint for EF: backward closure from the target set. *)
let backward_closure env target =
  let out = Array.copy target in
  let queue = Queue.create () in
  Array.iteri (fun s b -> if b then Queue.add s queue) target;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun (p, _) ->
        if not out.(p) then begin
          out.(p) <- true;
          Queue.add p queue
        end)
      env.predecessors.(s)
  done;
  out

(* Greatest fixpoint for EG f over maximal runs: start from the f-states and
   iteratively remove states that are not blocking and have no successor left
   in the set. *)
let eg_fixpoint env fset =
  let out = Array.copy fset in
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed do
    changed := false;
    incr sweeps;
    for s = 0 to env.n - 1 do
      if out.(s) && (not (blocking env s)) && not (exists_succ env out s) then begin
        out.(s) <- false;
        changed := true
      end
    done
  done;
  Metrics.add m_fixpoint_sweeps !sweeps;
  out

(* Least fixpoint for A(f U g) over maximal runs: a blocking ¬g state fails. *)
let au_fixpoint env fset gset =
  let out = Array.copy gset in
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed do
    changed := false;
    incr sweeps;
    for s = 0 to env.n - 1 do
      if (not out.(s)) && fset.(s) && (not (blocking env s)) && for_all_succ env out s then begin
        out.(s) <- true;
        changed := true
      end
    done
  done;
  Metrics.add m_fixpoint_sweeps !sweeps;
  out

let eu_fixpoint env fset gset =
  let out = Array.copy gset in
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed do
    changed := false;
    incr sweeps;
    for s = 0 to env.n - 1 do
      if (not out.(s)) && fset.(s) && exists_succ env out s then begin
        out.(s) <- true;
        changed := true
      end
    done
  done;
  Metrics.add m_fixpoint_sweeps !sweeps;
  out

(* Bounded operators: dynamic programming from the end of the window back to
   time 0.  [step] computes H_k from H_{k+1} given the elapsed time k. *)
let bounded_dp env ~hi ~step =
  let next = ref (Array.make env.n false) in
  (* H_{hi+1}: initialised by the first call to [step] with k = hi via the
     seed below.  Seeds differ per operator, so callers pass it in [step]
     when k = hi + 1 is requested. *)
  next := step (hi + 1) (all env false);
  for k = hi downto 0 do
    next := step k !next
  done;
  Metrics.add m_fixpoint_sweeps (hi + 2);
  !next

let af_bounded env { Ctl.lo; hi } fset =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then all env false
      else
        Array.init env.n (fun s ->
            (k >= lo && fset.(s)) || ((not (blocking env s)) && for_all_succ env next s)))

let ef_bounded env { Ctl.lo; hi } fset =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then all env false
      else Array.init env.n (fun s -> (k >= lo && fset.(s)) || exists_succ env next s))

let ag_bounded env { Ctl.lo; hi } fset =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then all env true
      else
        Array.init env.n (fun s ->
            (k < lo || fset.(s)) && (k >= hi || blocking env s || for_all_succ env next s)))

let eg_bounded env { Ctl.lo; hi } fset =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then all env true
      else
        Array.init env.n (fun s ->
            (k < lo || fset.(s)) && (k >= hi || blocking env s || exists_succ env next s)))

let au_bounded env { Ctl.lo; hi } fset gset =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then all env false
      else
        Array.init env.n (fun s ->
            (k >= lo && gset.(s))
            || (k < hi && fset.(s) && (not (blocking env s)) && for_all_succ env next s)))

let eu_bounded env { Ctl.lo; hi } fset gset =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then all env false
      else
        Array.init env.n (fun s ->
            (k >= lo && gset.(s)) || (k < hi && fset.(s) && exists_succ env next s)))

let rec sat env (f : Ctl.t) =
  match Hashtbl.find_opt env.memo f with
  | Some v -> v
  | None ->
    let v = compute env f in
    Hashtbl.add env.memo f v;
    (* Counting the set is itself a sweep, so only pay it when collecting. *)
    if Metrics.enabled () then begin
      let size = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 v in
      Metrics.observe m_sat_set_size (float_of_int size)
    end;
    v

and compute env (f : Ctl.t) =
  match f with
  | True -> all env true
  | False -> all env false
  | Prop p ->
    if not (Mechaml_ts.Universe.mem env.auto.Automaton.props p) then
      invalid_arg
        (Printf.sprintf "Mc.Sat: proposition %S not in automaton %s" p env.auto.Automaton.name);
    Array.init env.n (fun s -> Automaton.has_prop env.auto s p)
  | Deadlock -> Array.init env.n (fun s -> blocking env s)
  | Not g ->
    let sg = sat env g in
    Array.init env.n (fun s -> not sg.(s))
  | And (a, b) ->
    let sa = sat env a and sb = sat env b in
    Array.init env.n (fun s -> sa.(s) && sb.(s))
  | Or (a, b) ->
    let sa = sat env a and sb = sat env b in
    Array.init env.n (fun s -> sa.(s) || sb.(s))
  | Implies (a, b) ->
    let sa = sat env a and sb = sat env b in
    Array.init env.n (fun s -> (not sa.(s)) || sb.(s))
  | Ax g ->
    let sg = sat env g in
    Array.init env.n (fun s -> for_all_succ env sg s)
  | Ex g ->
    let sg = sat env g in
    Array.init env.n (fun s -> exists_succ env sg s)
  | Ef (None, g) -> backward_closure env (sat env g)
  | Ef (Some b, g) -> ef_bounded env b (sat env g)
  | Af (None, g) -> au_fixpoint env (all env true) (sat env g)
  | Af (Some b, g) -> af_bounded env b (sat env g)
  | Ag (None, g) ->
    (* AG f = ¬EF¬f *)
    let ef_not = backward_closure env (sat env (Ctl.Not g)) in
    Array.init env.n (fun s -> not ef_not.(s))
  | Ag (Some b, g) -> ag_bounded env b (sat env g)
  | Eg (None, g) -> eg_fixpoint env (sat env g)
  | Eg (Some b, g) -> eg_bounded env b (sat env g)
  | Au (None, a, b) -> au_fixpoint env (sat env a) (sat env b)
  | Au (Some bd, a, b) -> au_bounded env bd (sat env a) (sat env b)
  | Eu (None, a, b) -> eu_fixpoint env (sat env a) (sat env b)
  | Eu (Some bd, a, b) -> eu_bounded env bd (sat env a) (sat env b)

let holds_initially env f =
  let v = sat env f in
  List.for_all (fun q -> v.(q)) env.auto.Automaton.initial

let failing_initial env f =
  let v = sat env f in
  List.find_opt (fun q -> not v.(q)) env.auto.Automaton.initial
