module Automaton = Mechaml_ts.Automaton
module Ctl = Mechaml_logic.Ctl
module Bitvec = Mechaml_util.Bitvec
module Metrics = Mechaml_obs.Metrics

let m_states_explored =
  Metrics.counter "mc_states_explored_total"
    ~help:"States in automata handed to the global model checker (summed at Sat.create)."

let m_fixpoint_sweeps =
  Metrics.counter "mc_fixpoint_sweeps_total"
    ~help:
      "Whole-state-space passes by the fixpoint engine: one per unbounded worklist fixpoint \
       (its seed scan) and one per bounded-DP step."

let m_worklist_pops =
  Metrics.counter "mc_worklist_pops_total"
    ~help:"States popped from the EF/EG/AU/EU fixpoint worklists."

let m_sat_set_size =
  Metrics.histogram "mc_sat_set_size"
    ~buckets:(Metrics.log_buckets ~lo:1. ~hi:1e6 13)
    ~help:"Number of satisfying states per computed CTL subformula."

let m_seeded_fixpoints =
  Metrics.counter "mc_warm_seeded_fixpoints_total"
    ~help:"Unbounded fixpoint computations warm-started from a previous converged sat set."

let m_seedable_fixpoints =
  Metrics.counter "mc_warm_seedable_fixpoints_total"
    ~help:"Unbounded fixpoint computations in warm environments (seeded or not)."

(* Satisfaction sets are bit vectors and both transition directions are CSR
   (compressed sparse row) arrays: [row]/[dst] come straight from the
   automaton's packed index, [pred_row]/[pred_src] invert them once at
   [create].  Parallel edges appear once per transition in both directions,
   which keeps the successor-counting fixpoints in step with the
   per-transition quantifiers they replace. *)
type env = {
  auto : Automaton.t;
  n : int;
  memo : (Ctl.t, Bitvec.t) Hashtbl.t;
  memo_arr : (Ctl.t, bool array) Hashtbl.t;
  row : int array;
  dst : int array;
  pred_row : int array;
  pred_src : int array;
  blocking : Bitvec.t;
  mutable warm : warm option;
}

(* Warm-start state, present when the env was created with {!create_warm}.
   [w_mask] holds the states on which the previous product's converged sat
   bits are exact: a state is masked iff it cannot reach (and is not itself)
   a state whose outgoing row changed or that is new — on such states the
   old and new reachable subgraphs are isomorphic with equal labels, so for
   EVERY CTL subformula the old bit transfers verbatim.  Least fixpoints are
   then seeded with the transferred bits (a subset of the final set, so the
   worklist converges to the same fixpoint from much closer); greatest
   fixpoints (EG) and the bounded dynamic programs recompute cold — their
   iteration shapes gain nothing from a partial seed, and staying cold keeps
   the soundness argument one-sided. *)
and warm = {
  w_prev : env;
  w_old_of : int array;
  w_mask : Bitvec.t;
  w_debug : bool;
  mutable w_hits : int;
  mutable w_total : int;
}

let create auto =
  let n = Automaton.num_states auto in
  let row = Automaton.Csr.row auto in
  let dst = Automaton.Csr.dst auto in
  let total = row.(n) in
  let pred_row = Array.make (n + 1) 0 in
  Array.iter (fun d -> pred_row.(d + 1) <- pred_row.(d + 1) + 1) dst;
  for s = 0 to n - 1 do
    pred_row.(s + 1) <- pred_row.(s + 1) + pred_row.(s)
  done;
  let fill = Array.copy pred_row in
  let pred_src = Array.make (max total 1) 0 in
  for s = 0 to n - 1 do
    for k = row.(s) to row.(s + 1) - 1 do
      let d = dst.(k) in
      pred_src.(fill.(d)) <- s;
      fill.(d) <- fill.(d) + 1
    done
  done;
  let blocking = Bitvec.init n (fun s -> row.(s + 1) = row.(s)) in
  Metrics.add m_states_explored n;
  {
    auto;
    n;
    memo = Hashtbl.create 8;
    memo_arr = Hashtbl.create 8;
    row;
    dst;
    pred_row;
    pred_src;
    blocking;
    warm = None;
  }

let automaton env = env.auto

let blocking env s = Bitvec.unsafe_get env.blocking s

let for_all_succ env v s =
  let hi = env.row.(s + 1) in
  let k = ref env.row.(s) and ok = ref true in
  while !ok && !k < hi do
    if not (Bitvec.unsafe_get v env.dst.(!k)) then ok := false;
    incr k
  done;
  !ok

let exists_succ env v s =
  let hi = env.row.(s + 1) in
  let k = ref env.row.(s) and found = ref false in
  while (not !found) && !k < hi do
    if Bitvec.unsafe_get v env.dst.(!k) then found := true;
    incr k
  done;
  !found

(* All worklist fixpoints push each state at most once, so a plain int array
   serves as the stack. *)
let with_stack env f =
  let stack = Array.make (max env.n 1) 0 in
  let sp = ref 0 in
  let push s =
    stack.(!sp) <- s;
    incr sp
  in
  let pops = ref 0 in
  let pop () =
    decr sp;
    incr pops;
    stack.(!sp)
  in
  let out = f ~push ~pop ~pending:(fun () -> !sp > 0) in
  Metrics.add m_worklist_pops !pops;
  out

(* Least fixpoint for EF: backward closure from the target set.  [seed] must
   be a subset of the final closure; seeded states enter the initial
   worklist, so the closure is only explored outward from the frontier the
   seed does not already cover. *)
let backward_closure ?seed env (target : Bitvec.t) =
  Metrics.add m_fixpoint_sweeps 1;
  let out =
    match seed with None -> Bitvec.copy target | Some s -> Bitvec.logor target s
  in
  with_stack env (fun ~push ~pop ~pending ->
      Bitvec.iter_true push out;
      while pending () do
        let s = pop () in
        for k = env.pred_row.(s) to env.pred_row.(s + 1) - 1 do
          let p = env.pred_src.(k) in
          if not (Bitvec.unsafe_get out p) then begin
            Bitvec.unsafe_set out p;
            push p
          end
        done
      done;
      out)

(* Greatest fixpoint for EG f over maximal runs: start from the f-states and
   remove states that are not blocking and have no successor left in the
   set.  [cnt.(s)] tracks the number of successor edges still inside the
   set; a state is removed exactly when its count reaches zero, and each
   removal decrements its predecessors — O(E) total instead of repeated
   whole-space sweeps. *)
let eg_fixpoint env (fset : Bitvec.t) =
  Metrics.add m_fixpoint_sweeps 1;
  let out = Bitvec.copy fset in
  let cnt = Array.make env.n 0 in
  with_stack env (fun ~push ~pop ~pending ->
      for s = 0 to env.n - 1 do
        if Bitvec.unsafe_get out s then begin
          let c = ref 0 in
          for k = env.row.(s) to env.row.(s + 1) - 1 do
            if Bitvec.unsafe_get out env.dst.(k) then incr c
          done;
          cnt.(s) <- !c;
          if !c = 0 && not (blocking env s) then push s
        end
      done;
      while pending () do
        let s = pop () in
        if Bitvec.unsafe_get out s then begin
          Bitvec.unsafe_clear out s;
          for k = env.pred_row.(s) to env.pred_row.(s + 1) - 1 do
            let p = env.pred_src.(k) in
            if Bitvec.unsafe_get out p then begin
              cnt.(p) <- cnt.(p) - 1;
              (* predecessors have outgoing edges, so never blocking *)
              if cnt.(p) = 0 then push p
            end
          done
        end
      done;
      out)

(* Least fixpoint for A(f U g) over maximal runs: a blocking ¬g state fails.
   [bad.(s)] counts successor edges leaving the set; a candidate joins when
   it hits zero, decrementing its predecessors' counts in turn. *)
let au_fixpoint ?seed env (fset : Bitvec.t) (gset : Bitvec.t) =
  Metrics.add m_fixpoint_sweeps 1;
  (* a seed (subset of the final set) joins [out] before the bad counts are
     taken, so counts are consistent and no propagation is owed for it *)
  let out =
    match seed with None -> Bitvec.copy gset | Some s -> Bitvec.logor gset s
  in
  let bad = Array.make env.n 0 in
  let candidate s =
    (not (Bitvec.unsafe_get out s))
    && Bitvec.unsafe_get fset s
    && (not (blocking env s))
    && bad.(s) = 0
  in
  with_stack env (fun ~push ~pop ~pending ->
      for s = 0 to env.n - 1 do
        let c = ref 0 in
        for k = env.row.(s) to env.row.(s + 1) - 1 do
          if not (Bitvec.unsafe_get out env.dst.(k)) then incr c
        done;
        bad.(s) <- !c
      done;
      for s = 0 to env.n - 1 do
        if candidate s then begin
          Bitvec.unsafe_set out s;
          push s
        end
      done;
      while pending () do
        let s = pop () in
        for k = env.pred_row.(s) to env.pred_row.(s + 1) - 1 do
          let p = env.pred_src.(k) in
          bad.(p) <- bad.(p) - 1;
          if candidate p then begin
            Bitvec.unsafe_set out p;
            push p
          end
        done
      done;
      out)

(* Least fixpoint for E(f U g): backward closure from g through f-states. *)
let eu_fixpoint ?seed env (fset : Bitvec.t) (gset : Bitvec.t) =
  Metrics.add m_fixpoint_sweeps 1;
  let out =
    match seed with None -> Bitvec.copy gset | Some s -> Bitvec.logor gset s
  in
  with_stack env (fun ~push ~pop ~pending ->
      Bitvec.iter_true push out;
      while pending () do
        let s = pop () in
        for k = env.pred_row.(s) to env.pred_row.(s + 1) - 1 do
          let p = env.pred_src.(k) in
          if (not (Bitvec.unsafe_get out p)) && Bitvec.unsafe_get fset p then begin
            Bitvec.unsafe_set out p;
            push p
          end
        done
      done;
      out)

(* Bounded operators: dynamic programming from the end of the window back to
   time 0.  [step] computes H_k from H_{k+1} given the elapsed time k. *)
let bounded_dp env ~hi ~step =
  let next = ref (step (hi + 1) (Bitvec.create env.n)) in
  for k = hi downto 0 do
    next := step k !next
  done;
  Metrics.add m_fixpoint_sweeps (hi + 2);
  !next

let af_bounded env { Ctl.lo; hi } (fset : Bitvec.t) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then Bitvec.create env.n
      else
        Bitvec.init env.n (fun s ->
            (k >= lo && Bitvec.unsafe_get fset s)
            || ((not (blocking env s)) && for_all_succ env next s)))

let ef_bounded env { Ctl.lo; hi } (fset : Bitvec.t) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then Bitvec.create env.n
      else
        Bitvec.init env.n (fun s ->
            (k >= lo && Bitvec.unsafe_get fset s) || exists_succ env next s))

let ag_bounded env { Ctl.lo; hi } (fset : Bitvec.t) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then Bitvec.create_full env.n
      else
        Bitvec.init env.n (fun s ->
            (k < lo || Bitvec.unsafe_get fset s)
            && (k >= hi || blocking env s || for_all_succ env next s)))

let eg_bounded env { Ctl.lo; hi } (fset : Bitvec.t) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then Bitvec.create_full env.n
      else
        Bitvec.init env.n (fun s ->
            (k < lo || Bitvec.unsafe_get fset s)
            && (k >= hi || blocking env s || exists_succ env next s)))

let au_bounded env { Ctl.lo; hi } (fset : Bitvec.t) (gset : Bitvec.t) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then Bitvec.create env.n
      else
        Bitvec.init env.n (fun s ->
            (k >= lo && Bitvec.unsafe_get gset s)
            || (k < hi
               && Bitvec.unsafe_get fset s
               && (not (blocking env s))
               && for_all_succ env next s)))

let eu_bounded env { Ctl.lo; hi } (fset : Bitvec.t) (gset : Bitvec.t) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then Bitvec.create env.n
      else
        Bitvec.init env.n (fun s ->
            (k >= lo && Bitvec.unsafe_get gset s)
            || (k < hi && Bitvec.unsafe_get fset s && exists_succ env next s)))

let create_warm ?(debug = false) ~prev ~old_of ~dirty auto =
  let env = create auto in
  if Array.length old_of <> env.n then
    invalid_arg "Mc.Sat.create_warm: old_of length does not match the automaton";
  let dirty_vec = Bitvec.create env.n in
  List.iter
    (fun s ->
      if s < 0 || s >= env.n then invalid_arg "Mc.Sat.create_warm: dirty state out of range";
      Bitvec.unsafe_set dirty_vec s)
    dirty;
  (* Exactness region: states that cannot reach any changed-or-new state.
     Every masked state must have an old counterpart — new states are
     required to be in [dirty], hence outside the mask. *)
  let mask = Bitvec.lognot (backward_closure env dirty_vec) in
  Bitvec.iter_true
    (fun s ->
      if old_of.(s) < 0 then
        invalid_arg "Mc.Sat.create_warm: unmapped state outside the dirty region")
    mask;
  env.warm <-
    Some { w_prev = prev; w_old_of = old_of; w_mask = mask; w_debug = debug; w_hits = 0; w_total = 0 };
  env

let warm_stats env =
  match env.warm with None -> None | Some w -> Some (w.w_hits, w.w_total)

(* Transfer the previous env's converged bits for [key] onto the exactness
   mask — the seed handed to the least fixpoints.  [invert] transfers the
   complement (for AG, whose inner closure computes EF¬g = ¬AG g). *)
let seed_for ?(invert = false) env key =
  match env.warm with
  | None -> None
  | Some w ->
    w.w_total <- w.w_total + 1;
    Metrics.incr m_seedable_fixpoints;
    (match Hashtbl.find_opt w.w_prev.memo key with
    | None -> None
    | Some old_v ->
      w.w_hits <- w.w_hits + 1;
      Metrics.incr m_seeded_fixpoints;
      let s = Bitvec.create env.n in
      Bitvec.iter_true
        (fun i ->
          let o = w.w_old_of.(i) in
          if o >= 0 && Bitvec.get old_v o <> invert then Bitvec.unsafe_set s i)
        w.w_mask;
      Some s)

(* With [debug] every seeded fixpoint is recomputed cold and compared —
   the warm path must be bit-for-bit equivalent, not just verdict-equal. *)
let checked env name run seed =
  let fast = run (Some seed) in
  (match env.warm with
  | Some w when w.w_debug ->
    let cold = run None in
    if not (Bitvec.equal cold fast) then
      failwith (Printf.sprintf "Mc.Sat: warm-start divergence in %s fixpoint" name)
  | _ -> ());
  fast

let rec sat_vec env (f : Ctl.t) =
  match Hashtbl.find_opt env.memo f with
  | Some v -> v
  | None ->
    let v = compute env f in
    Hashtbl.add env.memo f v;
    (* Counting the set is itself a sweep, so only pay it when collecting. *)
    if Metrics.enabled () then
      Metrics.observe m_sat_set_size (float_of_int (Bitvec.count v));
    v

and compute env (f : Ctl.t) =
  match f with
  | True -> Bitvec.create_full env.n
  | False -> Bitvec.create env.n
  | Prop p ->
    (match Mechaml_ts.Universe.index_opt env.auto.Automaton.props p with
    | None ->
      invalid_arg
        (Printf.sprintf "Mc.Sat: proposition %S not in automaton %s" p env.auto.Automaton.name)
    | Some i ->
      Bitvec.init env.n (fun s -> Mechaml_util.Bitset.mem i (Automaton.label env.auto s)))
  | Deadlock -> Bitvec.copy env.blocking
  | Not g -> Bitvec.lognot (sat_vec env g)
  | And (a, b) -> Bitvec.logand (sat_vec env a) (sat_vec env b)
  | Or (a, b) -> Bitvec.logor (sat_vec env a) (sat_vec env b)
  | Implies (a, b) -> Bitvec.logimplies (sat_vec env a) (sat_vec env b)
  | Ax g ->
    let sg = sat_vec env g in
    Bitvec.init env.n (fun s -> for_all_succ env sg s)
  | Ex g ->
    let sg = sat_vec env g in
    Bitvec.init env.n (fun s -> exists_succ env sg s)
  | Ef (None, g) -> (
    let sg = sat_vec env g in
    match seed_for env f with
    | None -> backward_closure env sg
    | Some s -> checked env "EF" (fun seed -> backward_closure ?seed env sg) s)
  | Ef (Some b, g) -> ef_bounded env b (sat_vec env g)
  | Af (None, g) -> (
    let sg = sat_vec env g in
    let full = Bitvec.create_full env.n in
    match seed_for env f with
    | None -> au_fixpoint env full sg
    | Some s -> checked env "AF" (fun seed -> au_fixpoint ?seed env full sg) s)
  | Af (Some b, g) -> af_bounded env b (sat_vec env g)
  | Ag (None, g) -> (
    (* AG f = ¬EF¬f; the seed for the inner closure is the complement of the
       previous AG set *)
    let sng = sat_vec env (Ctl.Not g) in
    match seed_for ~invert:true env f with
    | None -> Bitvec.lognot (backward_closure env sng)
    | Some s ->
      checked env "AG"
        (fun seed -> Bitvec.lognot (backward_closure ?seed env sng))
        s)
  | Ag (Some b, g) -> ag_bounded env b (sat_vec env g)
  | Eg (None, g) ->
    (* greatest fixpoint: stays cold — seeding from below is unsound and a
       sound superset seed would not shrink the removal cascade *)
    eg_fixpoint env (sat_vec env g)
  | Eg (Some b, g) -> eg_bounded env b (sat_vec env g)
  | Au (None, a, b) -> (
    let sa = sat_vec env a and sb = sat_vec env b in
    match seed_for env f with
    | None -> au_fixpoint env sa sb
    | Some s -> checked env "AU" (fun seed -> au_fixpoint ?seed env sa sb) s)
  | Au (Some bd, a, b) -> au_bounded env bd (sat_vec env a) (sat_vec env b)
  | Eu (None, a, b) -> (
    let sa = sat_vec env a and sb = sat_vec env b in
    match seed_for env f with
    | None -> eu_fixpoint env sa sb
    | Some s -> checked env "EU" (fun seed -> eu_fixpoint ?seed env sa sb) s)
  | Eu (Some bd, a, b) -> eu_bounded env bd (sat_vec env a) (sat_vec env b)

let sat env f =
  match Hashtbl.find_opt env.memo_arr f with
  | Some a -> a
  | None ->
    let a = Bitvec.to_bool_array (sat_vec env f) in
    Hashtbl.add env.memo_arr f a;
    a

let holds_initially env f =
  let v = sat_vec env f in
  List.for_all (fun q -> Bitvec.get v q) env.auto.Automaton.initial

let failing_initial env f =
  let v = sat_vec env f in
  List.find_opt (fun q -> not (Bitvec.get v q)) env.auto.Automaton.initial
