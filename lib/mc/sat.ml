module Automaton = Mechaml_ts.Automaton
module Ctl = Mechaml_logic.Ctl
module Bitvec = Mechaml_util.Bitvec
module Metrics = Mechaml_obs.Metrics

let m_states_explored =
  Metrics.counter "mc_states_explored_total"
    ~help:"States in automata handed to the global model checker (summed at Sat.create)."

let m_fixpoint_sweeps =
  Metrics.counter "mc_fixpoint_sweeps_total"
    ~help:
      "Whole-state-space passes by the fixpoint engine: one per unbounded worklist fixpoint \
       (its seed scan) and one per bounded-DP step."

let m_worklist_pops =
  Metrics.counter "mc_worklist_pops_total"
    ~help:"States popped from the EF/EG/AU/EU fixpoint worklists."

let m_sat_set_size =
  Metrics.histogram "mc_sat_set_size"
    ~buckets:(Metrics.log_buckets ~lo:1. ~hi:1e6 13)
    ~help:"Number of satisfying states per computed CTL subformula."

(* Satisfaction sets are bit vectors and both transition directions are CSR
   (compressed sparse row) arrays: [row]/[dst] come straight from the
   automaton's packed index, [pred_row]/[pred_src] invert them once at
   [create].  Parallel edges appear once per transition in both directions,
   which keeps the successor-counting fixpoints in step with the
   per-transition quantifiers they replace. *)
type env = {
  auto : Automaton.t;
  n : int;
  memo : (Ctl.t, Bitvec.t) Hashtbl.t;
  memo_arr : (Ctl.t, bool array) Hashtbl.t;
  row : int array;
  dst : int array;
  pred_row : int array;
  pred_src : int array;
  blocking : Bitvec.t;
}

let create auto =
  let n = Automaton.num_states auto in
  let row = Automaton.Csr.row auto in
  let dst = Automaton.Csr.dst auto in
  let total = row.(n) in
  let pred_row = Array.make (n + 1) 0 in
  Array.iter (fun d -> pred_row.(d + 1) <- pred_row.(d + 1) + 1) dst;
  for s = 0 to n - 1 do
    pred_row.(s + 1) <- pred_row.(s + 1) + pred_row.(s)
  done;
  let fill = Array.copy pred_row in
  let pred_src = Array.make (max total 1) 0 in
  for s = 0 to n - 1 do
    for k = row.(s) to row.(s + 1) - 1 do
      let d = dst.(k) in
      pred_src.(fill.(d)) <- s;
      fill.(d) <- fill.(d) + 1
    done
  done;
  let blocking = Bitvec.init n (fun s -> row.(s + 1) = row.(s)) in
  Metrics.add m_states_explored n;
  {
    auto;
    n;
    memo = Hashtbl.create 8;
    memo_arr = Hashtbl.create 8;
    row;
    dst;
    pred_row;
    pred_src;
    blocking;
  }

let automaton env = env.auto

let blocking env s = Bitvec.unsafe_get env.blocking s

let for_all_succ env v s =
  let hi = env.row.(s + 1) in
  let k = ref env.row.(s) and ok = ref true in
  while !ok && !k < hi do
    if not (Bitvec.unsafe_get v env.dst.(!k)) then ok := false;
    incr k
  done;
  !ok

let exists_succ env v s =
  let hi = env.row.(s + 1) in
  let k = ref env.row.(s) and found = ref false in
  while (not !found) && !k < hi do
    if Bitvec.unsafe_get v env.dst.(!k) then found := true;
    incr k
  done;
  !found

(* All worklist fixpoints push each state at most once, so a plain int array
   serves as the stack. *)
let with_stack env f =
  let stack = Array.make (max env.n 1) 0 in
  let sp = ref 0 in
  let push s =
    stack.(!sp) <- s;
    incr sp
  in
  let pops = ref 0 in
  let pop () =
    decr sp;
    incr pops;
    stack.(!sp)
  in
  let out = f ~push ~pop ~pending:(fun () -> !sp > 0) in
  Metrics.add m_worklist_pops !pops;
  out

(* Least fixpoint for EF: backward closure from the target set. *)
let backward_closure env (target : Bitvec.t) =
  Metrics.add m_fixpoint_sweeps 1;
  let out = Bitvec.copy target in
  with_stack env (fun ~push ~pop ~pending ->
      Bitvec.iter_true push target;
      while pending () do
        let s = pop () in
        for k = env.pred_row.(s) to env.pred_row.(s + 1) - 1 do
          let p = env.pred_src.(k) in
          if not (Bitvec.unsafe_get out p) then begin
            Bitvec.unsafe_set out p;
            push p
          end
        done
      done;
      out)

(* Greatest fixpoint for EG f over maximal runs: start from the f-states and
   remove states that are not blocking and have no successor left in the
   set.  [cnt.(s)] tracks the number of successor edges still inside the
   set; a state is removed exactly when its count reaches zero, and each
   removal decrements its predecessors — O(E) total instead of repeated
   whole-space sweeps. *)
let eg_fixpoint env (fset : Bitvec.t) =
  Metrics.add m_fixpoint_sweeps 1;
  let out = Bitvec.copy fset in
  let cnt = Array.make env.n 0 in
  with_stack env (fun ~push ~pop ~pending ->
      for s = 0 to env.n - 1 do
        if Bitvec.unsafe_get out s then begin
          let c = ref 0 in
          for k = env.row.(s) to env.row.(s + 1) - 1 do
            if Bitvec.unsafe_get out env.dst.(k) then incr c
          done;
          cnt.(s) <- !c;
          if !c = 0 && not (blocking env s) then push s
        end
      done;
      while pending () do
        let s = pop () in
        if Bitvec.unsafe_get out s then begin
          Bitvec.unsafe_clear out s;
          for k = env.pred_row.(s) to env.pred_row.(s + 1) - 1 do
            let p = env.pred_src.(k) in
            if Bitvec.unsafe_get out p then begin
              cnt.(p) <- cnt.(p) - 1;
              (* predecessors have outgoing edges, so never blocking *)
              if cnt.(p) = 0 then push p
            end
          done
        end
      done;
      out)

(* Least fixpoint for A(f U g) over maximal runs: a blocking ¬g state fails.
   [bad.(s)] counts successor edges leaving the set; a candidate joins when
   it hits zero, decrementing its predecessors' counts in turn. *)
let au_fixpoint env (fset : Bitvec.t) (gset : Bitvec.t) =
  Metrics.add m_fixpoint_sweeps 1;
  let out = Bitvec.copy gset in
  let bad = Array.make env.n 0 in
  let candidate s =
    (not (Bitvec.unsafe_get out s))
    && Bitvec.unsafe_get fset s
    && (not (blocking env s))
    && bad.(s) = 0
  in
  with_stack env (fun ~push ~pop ~pending ->
      for s = 0 to env.n - 1 do
        let c = ref 0 in
        for k = env.row.(s) to env.row.(s + 1) - 1 do
          if not (Bitvec.unsafe_get out env.dst.(k)) then incr c
        done;
        bad.(s) <- !c
      done;
      for s = 0 to env.n - 1 do
        if candidate s then begin
          Bitvec.unsafe_set out s;
          push s
        end
      done;
      while pending () do
        let s = pop () in
        for k = env.pred_row.(s) to env.pred_row.(s + 1) - 1 do
          let p = env.pred_src.(k) in
          bad.(p) <- bad.(p) - 1;
          if candidate p then begin
            Bitvec.unsafe_set out p;
            push p
          end
        done
      done;
      out)

(* Least fixpoint for E(f U g): backward closure from g through f-states. *)
let eu_fixpoint env (fset : Bitvec.t) (gset : Bitvec.t) =
  Metrics.add m_fixpoint_sweeps 1;
  let out = Bitvec.copy gset in
  with_stack env (fun ~push ~pop ~pending ->
      Bitvec.iter_true push gset;
      while pending () do
        let s = pop () in
        for k = env.pred_row.(s) to env.pred_row.(s + 1) - 1 do
          let p = env.pred_src.(k) in
          if (not (Bitvec.unsafe_get out p)) && Bitvec.unsafe_get fset p then begin
            Bitvec.unsafe_set out p;
            push p
          end
        done
      done;
      out)

(* Bounded operators: dynamic programming from the end of the window back to
   time 0.  [step] computes H_k from H_{k+1} given the elapsed time k. *)
let bounded_dp env ~hi ~step =
  let next = ref (step (hi + 1) (Bitvec.create env.n)) in
  for k = hi downto 0 do
    next := step k !next
  done;
  Metrics.add m_fixpoint_sweeps (hi + 2);
  !next

let af_bounded env { Ctl.lo; hi } (fset : Bitvec.t) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then Bitvec.create env.n
      else
        Bitvec.init env.n (fun s ->
            (k >= lo && Bitvec.unsafe_get fset s)
            || ((not (blocking env s)) && for_all_succ env next s)))

let ef_bounded env { Ctl.lo; hi } (fset : Bitvec.t) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then Bitvec.create env.n
      else
        Bitvec.init env.n (fun s ->
            (k >= lo && Bitvec.unsafe_get fset s) || exists_succ env next s))

let ag_bounded env { Ctl.lo; hi } (fset : Bitvec.t) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then Bitvec.create_full env.n
      else
        Bitvec.init env.n (fun s ->
            (k < lo || Bitvec.unsafe_get fset s)
            && (k >= hi || blocking env s || for_all_succ env next s)))

let eg_bounded env { Ctl.lo; hi } (fset : Bitvec.t) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then Bitvec.create_full env.n
      else
        Bitvec.init env.n (fun s ->
            (k < lo || Bitvec.unsafe_get fset s)
            && (k >= hi || blocking env s || exists_succ env next s)))

let au_bounded env { Ctl.lo; hi } (fset : Bitvec.t) (gset : Bitvec.t) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then Bitvec.create env.n
      else
        Bitvec.init env.n (fun s ->
            (k >= lo && Bitvec.unsafe_get gset s)
            || (k < hi
               && Bitvec.unsafe_get fset s
               && (not (blocking env s))
               && for_all_succ env next s)))

let eu_bounded env { Ctl.lo; hi } (fset : Bitvec.t) (gset : Bitvec.t) =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then Bitvec.create env.n
      else
        Bitvec.init env.n (fun s ->
            (k >= lo && Bitvec.unsafe_get gset s)
            || (k < hi && Bitvec.unsafe_get fset s && exists_succ env next s)))

let rec sat_vec env (f : Ctl.t) =
  match Hashtbl.find_opt env.memo f with
  | Some v -> v
  | None ->
    let v = compute env f in
    Hashtbl.add env.memo f v;
    (* Counting the set is itself a sweep, so only pay it when collecting. *)
    if Metrics.enabled () then
      Metrics.observe m_sat_set_size (float_of_int (Bitvec.count v));
    v

and compute env (f : Ctl.t) =
  match f with
  | True -> Bitvec.create_full env.n
  | False -> Bitvec.create env.n
  | Prop p ->
    (match Mechaml_ts.Universe.index_opt env.auto.Automaton.props p with
    | None ->
      invalid_arg
        (Printf.sprintf "Mc.Sat: proposition %S not in automaton %s" p env.auto.Automaton.name)
    | Some i ->
      Bitvec.init env.n (fun s -> Mechaml_util.Bitset.mem i (Automaton.label env.auto s)))
  | Deadlock -> Bitvec.copy env.blocking
  | Not g -> Bitvec.lognot (sat_vec env g)
  | And (a, b) -> Bitvec.logand (sat_vec env a) (sat_vec env b)
  | Or (a, b) -> Bitvec.logor (sat_vec env a) (sat_vec env b)
  | Implies (a, b) -> Bitvec.logimplies (sat_vec env a) (sat_vec env b)
  | Ax g ->
    let sg = sat_vec env g in
    Bitvec.init env.n (fun s -> for_all_succ env sg s)
  | Ex g ->
    let sg = sat_vec env g in
    Bitvec.init env.n (fun s -> exists_succ env sg s)
  | Ef (None, g) -> backward_closure env (sat_vec env g)
  | Ef (Some b, g) -> ef_bounded env b (sat_vec env g)
  | Af (None, g) -> au_fixpoint env (Bitvec.create_full env.n) (sat_vec env g)
  | Af (Some b, g) -> af_bounded env b (sat_vec env g)
  | Ag (None, g) ->
    (* AG f = ¬EF¬f *)
    Bitvec.lognot (backward_closure env (sat_vec env (Ctl.Not g)))
  | Ag (Some b, g) -> ag_bounded env b (sat_vec env g)
  | Eg (None, g) -> eg_fixpoint env (sat_vec env g)
  | Eg (Some b, g) -> eg_bounded env b (sat_vec env g)
  | Au (None, a, b) -> au_fixpoint env (sat_vec env a) (sat_vec env b)
  | Au (Some bd, a, b) -> au_bounded env bd (sat_vec env a) (sat_vec env b)
  | Eu (None, a, b) -> eu_fixpoint env (sat_vec env a) (sat_vec env b)
  | Eu (Some bd, a, b) -> eu_bounded env bd (sat_vec env a) (sat_vec env b)

let sat env f =
  match Hashtbl.find_opt env.memo_arr f with
  | Some a -> a
  | None ->
    let a = Bitvec.to_bool_array (sat_vec env f) in
    Hashtbl.add env.memo_arr f a;
    a

let holds_initially env f =
  let v = sat_vec env f in
  List.for_all (fun q -> Bitvec.get v q) env.auto.Automaton.initial

let failing_initial env f =
  let v = sat_vec env f in
  List.find_opt (fun q -> not (Bitvec.get v q)) env.auto.Automaton.initial
