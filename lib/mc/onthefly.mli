(** On-the-fly safety and deadlock checking over a binary composition.

    The explicit checker ({!Checker}) materializes the product automaton
    first — fine at the paper's scale, but the motivating problem is exactly
    state explosion (Section 1).  For the obligations the synthesis loop
    checks most often — a safety invariant over state labels plus deadlock
    freedom — the product can instead be explored on the fly with early
    exit at the first violation, never allocating the full state space. *)

type trace = {
  pairs : (Mechaml_ts.Automaton.state * Mechaml_ts.Automaton.state) list;
      (** the path of (left, right) state pairs from an initial pair *)
  io : Mechaml_ts.Run.io list;
      (** the joint interactions between them, in each operand's combined
          signal indexing as produced by {!Mechaml_ts.Compose.parallel} *)
}

type verdict =
  | Holds
  | Bad_state of trace   (** shortest path to a pair violating the predicate *)
  | Deadlocked of trace  (** shortest path to a pair without joint moves *)

type result = { verdict : verdict; pairs_explored : int }

val check_safety :
  left:Mechaml_ts.Automaton.t ->
  right:Mechaml_ts.Automaton.t ->
  ?shards:int ->
  ?bad:(Mechaml_ts.Automaton.state -> Mechaml_ts.Automaton.state -> bool) ->
  unit ->
  result
(** BFS over reachable state pairs.  [bad left_state right_state] is the
    violation predicate (default: never), checked before deadlock at each
    pair; the verdict therefore mirrors
    [Checker.check_conjunction [AG ¬bad; AG ¬δ]] on the materialized
    product, at a fraction of the allocation and with early exit.

    [shards] (default 1) stripes the dense visited set into that many
    per-shard bitmaps — the partition {!Mechaml_ts.Shard} uses — with
    identical verdicts and exploration counts for any value.  Raises
    [Invalid_argument] on [shards < 1]. *)

val violates_invariant :
  left:Mechaml_ts.Automaton.t ->
  right:Mechaml_ts.Automaton.t ->
  ?shards:int ->
  invariant:Mechaml_logic.Ctl.t ->
  unit ->
  result
(** Convenience wrapper: [invariant] must be [AG ψ] with [ψ] a boolean
    state formula over the operands' propositions; raises
    [Invalid_argument] otherwise. *)
