(** Global CTL satisfaction over a sharded product ({!Mechaml_ts.Shard}).

    Mirrors {!Sat} exactly — same fixpoint algorithms, same bounded dynamic
    programs — but every satisfaction set is partitioned into per-shard bit
    vectors and every worklist is shard-local: a fixpoint runs batched
    rounds over the shards, exchanging boundary frontiers (pushes whose
    owning shard differs from the one being drained) until the global
    fixpoint is reached.  All the unbounded fixpoints are confluent, so the
    shard-batched processing order converges to bit-for-bit the same sets
    as {!Sat}'s single worklist, for any shard count.

    Converged sets are registered in the product's {!Mechaml_ts.Shard.manager},
    so under a memory budget cold sat sets spill to disk alongside the CSR
    segments and reload on demand.

    Warm-starting is deliberately absent: the sharded path recomputes cold
    (the fixpoints are confluent, so results are identical), keeping the
    byte-equivalence argument against the single-shard path one-sided. *)

module Ctl = Mechaml_logic.Ctl
module Shard = Mechaml_ts.Shard

type env

val create : Shard.t -> env
(** An environment over an explored sharded product.  The product must stay
    open (not {!Mechaml_ts.Shard.close}d) while the env is in use. *)

val holds_initially : env -> Ctl.t -> bool
(** Whether every initial product state satisfies the formula — identical
    to {!Sat.holds_initially} on the materialized product.  Raises
    {!Mechaml_util.Segment.Spill_error} if a spilled segment cannot be read
    back. *)

val failing_initial : env -> Ctl.t -> int option
(** First initial state (in initial-list order) violating the formula. *)
