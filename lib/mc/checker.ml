module Automaton = Mechaml_ts.Automaton
module Ctl = Mechaml_logic.Ctl
module Trace = Mechaml_obs.Trace
module Metrics = Mechaml_obs.Metrics

let m_checks =
  Metrics.counter "mc_checks_total" ~help:"CTL properties checked (one per formula per model)."

let m_violations =
  Metrics.counter "mc_violations_total" ~help:"Checked properties that were violated."

type outcome =
  | Holds
  | Violated of {
      formula : Ctl.t;
      witness : Mechaml_ts.Run.t;
      explanation : string;
      complete : bool;
    }

let check_env env ~strategy f =
  let states = Automaton.num_states (Sat.automaton env) in
  Trace.with_span ~name:"mc.check"
    ~args:[ ("states", Trace.Int states) ]
    (fun () ->
      Metrics.incr m_checks;
      match Sat.failing_initial env f with
      | None -> Holds
      | Some start ->
        Metrics.incr m_violations;
        let psi = Ctl.nnf (Ctl.Not f) in
        let { Witness.run; explanation; complete } = Witness.witness env ~strategy ~start psi in
        Violated { formula = f; witness = run; explanation; complete })

let check ?(strategy = Witness.Bfs_shortest) m f = check_env (Sat.create m) ~strategy f

let check_conjunction_env ?(strategy = Witness.Bfs_shortest) env fs =
  let rec go = function
    | [] -> Holds
    | f :: rest -> ( match check_env env ~strategy f with Holds -> go rest | v -> v)
  in
  go fs

let check_conjunction ?(strategy = Witness.Bfs_shortest) m fs =
  check_conjunction_env ~strategy (Sat.create m) fs

let check_with_deadlock_freedom ?(strategy = Witness.Bfs_shortest) m f =
  check_conjunction ~strategy m [ Ctl.deadlock_free; f ]

let holds m f = match check m f with Holds -> true | Violated _ -> false

(* Is the formula's negation a plain reachability of a state predicate? *)
let rec state_formula (f : Ctl.t) =
  match f with
  | Ctl.True | Ctl.False | Ctl.Prop _ | Ctl.Deadlock -> true
  | Ctl.Not g -> state_formula g
  | Ctl.And (a, b) | Ctl.Or (a, b) | Ctl.Implies (a, b) -> state_formula a && state_formula b
  | _ -> false

let more_witnesses ?(limit = 3) (m : Automaton.t) f =
  match Ctl.nnf (Ctl.Not f) with
  | Ctl.Ef (None, bad) when state_formula bad ->
    let env = Sat.create m in
    let bad_set = Sat.sat env bad in
    (* One BFS from the initial states; harvest the nearest [limit] bad
       states in discovery order, then unwind their parent chains. *)
    let n = Automaton.num_states m in
    let parent = Array.make n None in
    let seen = Array.make n false in
    let queue = Queue.create () in
    let found = ref [] in
    let consider s = if bad_set.(s) && List.length !found < limit then found := s :: !found in
    List.iter
      (fun q ->
        if not seen.(q) then begin
          seen.(q) <- true;
          Queue.add q queue;
          consider q
        end)
      m.Automaton.initial;
    while List.length !found < limit && not (Queue.is_empty queue) do
      let s = Queue.pop queue in
      List.iter
        (fun (t : Automaton.trans) ->
          if not seen.(t.dst) then begin
            seen.(t.dst) <- true;
            parent.(t.dst) <- Some (s, (t.input, t.output));
            Queue.add t.dst queue;
            consider t.dst
          end)
        (Automaton.transitions_from m s)
    done;
    List.rev_map
      (fun target ->
        let rec unwind s states io =
          match parent.(s) with
          | None -> (s :: states, io)
          | Some (p, ab) -> unwind p (s :: states) (ab :: io)
        in
        let states, io = unwind target [] [] in
        Mechaml_ts.Run.regular ~states ~io)
      !found
  | _ -> []
