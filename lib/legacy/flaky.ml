let nondeterministic ~seed ~flip_every (box : Blackbox.t) =
  if flip_every < 1 then invalid_arg "Flaky.nondeterministic: flip_every must be positive";
  (* a single counter shared by all sessions: the same input word can see
     different behaviour on different runs.  Atomic because campaign workers
     may drive sessions of one shared wrapper from several domains — a plain
     [ref] would lose increments and make even the flip schedule racy. *)
  let global = Atomic.make seed in
  let connect () =
    let session = box.Blackbox.connect () in
    let step ~inputs =
      match session.Blackbox.step ~inputs with
      | None -> None
      | Some outs ->
        let count = Atomic.fetch_and_add global 1 + 1 in
        if count mod flip_every = 0 then Some [] else Some outs
    in
    { Blackbox.step; probe_state = session.Blackbox.probe_state }
  in
  { box with Blackbox.name = box.Blackbox.name ^ "~flaky"; connect }

let drop_outputs ~every (box : Blackbox.t) =
  if every < 1 then invalid_arg "Flaky.drop_outputs: every must be positive";
  let connect () =
    let session = box.Blackbox.connect () in
    (* per-session counter: the fault is reproducible, hence deterministic *)
    let count = ref 0 in
    let step ~inputs =
      match session.Blackbox.step ~inputs with
      | None -> None
      | Some outs ->
        incr count;
        if !count mod every = 0 then Some [] else Some outs
    in
    { Blackbox.step; probe_state = session.Blackbox.probe_state }
  in
  { box with Blackbox.name = box.Blackbox.name ^ "~lossy"; connect }
