(** Fault-injection wrappers around black boxes.

    The approach's guarantees rest on the component being deterministic
    (Section 4.3) and on replay reproducing recordings (Section 5).  These
    wrappers let the test suite check that the guardrails actually fire when
    the assumptions are broken, instead of silently producing wrong verdicts:

    - {!nondeterministic} makes a component occasionally deviate from its
      base behaviour — {!Replay.replay} must detect the divergence;
    - {!drop_outputs} makes the port lossy (a probe-effect-like fault) —
      learning must either diverge visibly or conform, never corrupt. *)

val nondeterministic :
  seed:int -> flip_every:int -> Blackbox.t -> Blackbox.t
(** Every [flip_every]-th accepted step (counted across the lifetime of the
    wrapper, deterministically from [seed]) answers with the base outputs
    {e dropped}, while the underlying state advances normally — two sessions
    fed the same inputs can observe different outputs.  The shared counter is
    atomic: sessions driven from several domains (the campaign worker pool)
    never lose flips to a data race. *)

val drop_outputs : every:int -> Blackbox.t -> Blackbox.t
(** Deterministically suppresses the outputs of every [every]-th step —
    still a deterministic component, but one whose observable behaviour
    disagrees with the wrapped automaton.  Learning it is sound; conformance
    against the {e base} automaton fails. *)
