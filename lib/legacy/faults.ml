module Prng = Mechaml_util.Prng

exception Driver_crashed of string

exception Connect_refused of string

type injection = Blackbox.t -> Blackbox.t

(* Every combinator draws its fault schedule from a stateless SplitMix stream
   indexed by an atomic counter: deterministic per seed, no mutable generator
   to race on when sessions run under the engine's domain pool.  Each
   combinator salts the seed with a distinct tag so composed faults draw from
   independent streams even under the same seed. *)
let salt tag seed = (seed * 1000003) lxor Hashtbl.hash tag

let hit ~seed counter every =
  Prng.mix_int ~seed (Atomic.fetch_and_add counter 1) every = 0

let rename suffix (box : Blackbox.t) connect =
  { box with Blackbox.name = box.Blackbox.name ^ suffix; connect }

let crash ~seed ~every (box : Blackbox.t) =
  if every < 1 then invalid_arg "Faults.crash: every must be positive";
  let seed = salt "crash" seed in
  let draws = Atomic.make 0 in
  let connect () =
    let session = box.Blackbox.connect () in
    let step ~inputs =
      if hit ~seed draws every then
        raise
          (Driver_crashed (Printf.sprintf "%s: injected crash mid-step" box.Blackbox.name));
      session.Blackbox.step ~inputs
    in
    { Blackbox.step; probe_state = session.Blackbox.probe_state }
  in
  rename "~crash" box connect

let hang ~seed ~every ~for_s (box : Blackbox.t) =
  if every < 1 then invalid_arg "Faults.hang: every must be positive";
  if for_s < 0. then invalid_arg "Faults.hang: for_s must be non-negative";
  let seed = salt "hang" seed in
  let draws = Atomic.make 0 in
  let connect () =
    let session = box.Blackbox.connect () in
    let step ~inputs =
      if hit ~seed draws every then Unix.sleepf for_s;
      session.Blackbox.step ~inputs
    in
    { Blackbox.step; probe_state = session.Blackbox.probe_state }
  in
  rename "~hang" box connect

let connect_refused ~seed ~every (box : Blackbox.t) =
  if every < 2 then invalid_arg "Faults.connect_refused: every must be at least 2";
  let seed = salt "refuse" seed in
  let draws = Atomic.make 0 in
  let connect () =
    if hit ~seed draws every then
      raise
        (Connect_refused
           (Printf.sprintf "%s: injected connection refusal" box.Blackbox.name));
    box.Blackbox.connect ()
  in
  rename "~refuse" box connect

(* The lie is drawn once per connect and held for the whole session: a lying
   session corrupts every answer the same way, so record and replay can agree
   on a wrong-but-internally-consistent observation — the failure mode only
   k-of-n repetition voting can mask.  (When only one of the two replay
   phases lies, the divergence guardrail fires instead and a retry heals
   it.)  The underlying state advances normally: the fault is transient. *)
let garbage ~seed ~every (box : Blackbox.t) =
  if every < 2 then invalid_arg "Faults.garbage: every must be at least 2";
  let seed = salt "garbage" seed in
  let draws = Atomic.make 0 in
  let connect () =
    let lying = hit ~seed draws every in
    let session = box.Blackbox.connect () in
    let step ~inputs =
      match session.Blackbox.step ~inputs with
      | None -> None
      | Some outs when not lying -> Some outs
      | Some [] -> Some box.Blackbox.output_signals
      | Some _ -> Some []
    in
    { Blackbox.step; probe_state = session.Blackbox.probe_state }
  in
  rename "~garbage" box connect

let stutter ~seed ~every (box : Blackbox.t) =
  if every < 2 then invalid_arg "Faults.stutter: every must be at least 2";
  let seed = salt "stutter" seed in
  let draws = Atomic.make 0 in
  let connect () =
    let session = box.Blackbox.connect () in
    let previous = ref [] in
    let step ~inputs =
      match session.Blackbox.step ~inputs with
      | None -> None
      | Some outs ->
        let answer = if hit ~seed draws every then !previous else outs in
        previous := outs;
        Some answer
    in
    { Blackbox.step; probe_state = session.Blackbox.probe_state }
  in
  rename "~stutter" box connect

let all injections box = List.fold_left (fun box inject -> inject box) box injections

(* -- bundled profiles ----------------------------------------------------- *)

let profiles =
  [
    ("crash", "roughly one step in 7 raises Driver_crashed");
    ("hang", "every step sleeps 50 ms (drive past any per-query deadline)");
    ("refuse", "roughly one connect in 5 raises Connect_refused");
    ("flaky", "roughly one session in 3 answers consistently wrong (garbage outputs)");
    ("stutter", "roughly one step in 5 repeats the previous outputs");
    ("brick", "every step crashes — supervision can only degrade");
    ("chaos-monkey", "crash + refuse + flaky + stutter together");
  ]

let rec of_string ~seed name =
  match String.index_opt name '+' with
  | Some i ->
    let left = String.sub name 0 i
    and right = String.sub name (i + 1) (String.length name - i - 1) in
    Result.bind (of_string ~seed left) (fun l ->
        Result.map (fun r -> all [ l; r ]) (of_string ~seed:(seed + 1) right))
  | None -> (
    match name with
    | "crash" -> Ok (crash ~seed ~every:7)
    | "hang" -> Ok (hang ~seed ~every:1 ~for_s:0.05)
    | "refuse" -> Ok (connect_refused ~seed ~every:5)
    | "flaky" -> Ok (garbage ~seed ~every:3)
    | "stutter" -> Ok (stutter ~seed ~every:5)
    | "brick" -> Ok (crash ~seed ~every:1)
    | "chaos-monkey" ->
      Ok
        (all
           [
             crash ~seed ~every:19;
             connect_refused ~seed ~every:11;
             garbage ~seed ~every:5;
             stutter ~seed ~every:13;
           ])
    | _ ->
      Error
        (Printf.sprintf "unknown fault profile %S (expected %s, or a + combination)" name
           (String.concat ", " (List.map fst profiles))))

let of_string_exn ~seed name =
  match of_string ~seed name with
  | Ok injection -> injection
  | Error message -> invalid_arg ("Faults.of_string_exn: " ^ message)
