module Prng = Mechaml_util.Prng
module Log = Mechaml_obs.Log
module Metrics = Mechaml_obs.Metrics

let m_retries =
  Metrics.counter "legacy_supervisor_retries_total"
    ~help:"Driver query attempts retried after a classified failure."

let m_crashes =
  Metrics.counter "legacy_supervisor_crashes_total" ~help:"Driver crashes observed."

let m_votes =
  Metrics.counter "legacy_supervisor_votes_total" ~help:"Votes held for quorum observation."

let m_outvoted =
  Metrics.counter "legacy_supervisor_outvoted_total"
    ~help:"Minority answers discarded by a quorum."

let m_breaker_trips =
  Metrics.counter "legacy_supervisor_breaker_trips_total"
    ~help:"Circuit-breaker transitions to open."

type policy = {
  deadline : float option;
  retries : int;
  backoff : float;
  backoff_factor : float;
  jitter : float;
  votes : int;
  quorum : int option;
  breaker : int;
}

let default_policy =
  {
    deadline = None;
    retries = 2;
    backoff = 0.001;
    backoff_factor = 2.0;
    jitter = 0.1;
    votes = 1;
    quorum = None;
    breaker = 8;
  }

type stats = {
  queries : int;
  admitted : int;
  attempts : int;
  retried : int;
  crashes : int;
  refused_connects : int;
  divergences : int;
  deadline_misses : int;
  votes_held : int;
  outvoted : int;
  breaker_trips : int;
  backoff_slept : float;
}

type t = {
  box : Blackbox.t;
  policy : policy;
  seed : int;
  sleep : float -> unit;
  (* supervisor state is job-local (one loop drives it sequentially), so
     plain mutability is fine; determinism comes from the seeded jitter *)
  mutable jitter_draws : int;
  mutable consecutive_failures : int;
  mutable open_reason : string option;
  mutable queries : int;
  mutable admitted : int;
  mutable attempts : int;
  mutable retried : int;
  mutable crashes : int;
  mutable refused_connects : int;
  mutable divergences : int;
  mutable deadline_misses : int;
  mutable votes_held : int;
  mutable outvoted : int;
  mutable breaker_trips : int;
  mutable backoff_slept : float;
}

type failure = { reason : string; breaker_open : bool }

let create ?(seed = 0) ?(policy = default_policy) ?(sleep = Unix.sleepf) box =
  if policy.retries < 0 then invalid_arg "Supervisor.create: retries must be non-negative";
  if policy.votes < 1 then invalid_arg "Supervisor.create: votes must be positive";
  let quorum = match policy.quorum with Some k -> k | None -> (policy.votes / 2) + 1 in
  if quorum < 1 || quorum > policy.votes then
    invalid_arg "Supervisor.create: quorum must lie in [1, votes]";
  if policy.breaker < 1 then invalid_arg "Supervisor.create: breaker must be positive";
  {
    box;
    policy;
    seed;
    sleep;
    jitter_draws = 0;
    consecutive_failures = 0;
    open_reason = None;
    queries = 0;
    admitted = 0;
    attempts = 0;
    retried = 0;
    crashes = 0;
    refused_connects = 0;
    divergences = 0;
    deadline_misses = 0;
    votes_held = 0;
    outvoted = 0;
    breaker_trips = 0;
    backoff_slept = 0.;
  }

let box t = t.box

let breaker_open t = t.open_reason <> None

let stats t =
  {
    queries = t.queries;
    admitted = t.admitted;
    attempts = t.attempts;
    retried = t.retried;
    crashes = t.crashes;
    refused_connects = t.refused_connects;
    divergences = t.divergences;
    deadline_misses = t.deadline_misses;
    votes_held = t.votes_held;
    outvoted = t.outvoted;
    breaker_trips = t.breaker_trips;
    backoff_slept = t.backoff_slept;
  }

let quorum t = match t.policy.quorum with Some k -> k | None -> (t.policy.votes / 2) + 1

(* One raw driver query: record + replay under a wall-clock deadline, with
   every way an unreliable driver can fail mapped to a classified error.
   [Invalid_argument] here can only be the replay-divergence guardrail — the
   interface checks of [Loop.run] fire before any supervised query. *)
let attempt t ~inputs =
  t.attempts <- t.attempts + 1;
  let t0 = Unix.gettimeofday () in
  match Observation.observe ~box:t.box ~inputs with
  | obs -> (
    match t.policy.deadline with
    | Some d when Unix.gettimeofday () -. t0 > d ->
      t.deadline_misses <- t.deadline_misses + 1;
      Error (Printf.sprintf "deadline exceeded (%.0f ms budget)" (1e3 *. d))
    | _ -> Ok obs)
  | exception Faults.Driver_crashed m ->
    t.crashes <- t.crashes + 1;
    Metrics.incr m_crashes;
    Error ("driver crashed: " ^ m)
  | exception Faults.Connect_refused m ->
    t.refused_connects <- t.refused_connects + 1;
    Error ("connect refused: " ^ m)
  | exception Invalid_argument m ->
    t.divergences <- t.divergences + 1;
    Error ("replay divergence: " ^ m)

exception Tripped of string

let record_failure t why =
  t.consecutive_failures <- t.consecutive_failures + 1;
  if t.consecutive_failures >= t.policy.breaker then begin
    let reason =
      Printf.sprintf "circuit breaker open after %d consecutive failed queries (last: %s)"
        t.consecutive_failures why
    in
    t.open_reason <- Some reason;
    t.breaker_trips <- t.breaker_trips + 1;
    Metrics.incr m_breaker_trips;
    Log.warn (fun m -> m "%s: %s" t.box.Blackbox.name reason);
    raise (Tripped reason)
  end

let backoff t k =
  let u = Prng.mix_float ~seed:t.seed t.jitter_draws 1.0 in
  t.jitter_draws <- t.jitter_draws + 1;
  let d =
    t.policy.backoff
    *. (t.policy.backoff_factor ** float_of_int k)
    *. (1. +. (t.policy.jitter *. u))
  in
  t.backoff_slept <- t.backoff_slept +. d;
  t.retried <- t.retried + 1;
  Metrics.incr m_retries;
  t.sleep d

(* One vote: retry the raw query with exponential backoff until it succeeds
   or the per-vote attempt budget is spent.  Raises [Tripped] when the
   breaker threshold is crossed mid-retry. *)
let vote t ~inputs =
  let rec go k =
    match attempt t ~inputs with
    | Ok obs ->
      t.consecutive_failures <- 0;
      Some obs
    | Error why ->
      Log.debug (fun m -> m "%s: attempt failed: %s" t.box.Blackbox.name why);
      record_failure t why;
      if k < t.policy.retries then begin
        backoff t k;
        go (k + 1)
      end
      else None
  in
  go 0

let observe t ~inputs =
  t.queries <- t.queries + 1;
  match t.open_reason with
  | Some reason -> Error { reason; breaker_open = true }
  | None -> (
    let k = quorum t in
    let tally : (Observation.t * int ref) list ref = ref [] in
    let count obs =
      match List.find_opt (fun (o, _) -> o = obs) !tally with
      | Some (_, n) ->
        incr n;
        !n
      | None ->
        tally := !tally @ [ (obs, ref 1) ];
        1
    in
    let rec ballot cast =
      if cast >= t.policy.votes then None
      else begin
        t.votes_held <- t.votes_held + 1;
        Metrics.incr m_votes;
        match vote t ~inputs with
        | None -> ballot (cast + 1)
        | Some obs -> if count obs >= k then Some obs else ballot (cast + 1)
      end
    in
    match ballot 0 with
    | Some obs ->
      t.admitted <- t.admitted + 1;
      let minority =
        List.fold_left (fun acc (o, n) -> if o = obs then acc else acc + !n) 0 !tally
      in
      if minority > 0 then begin
        t.outvoted <- t.outvoted + minority;
        Metrics.add m_outvoted minority;
        Log.info (fun m ->
            m "%s: %d minority answer(s) outvoted by a %d-of-%d quorum" t.box.Blackbox.name
              minority k t.policy.votes)
      end;
      Ok obs
    | None ->
      let answered = List.fold_left (fun acc (_, n) -> acc + !n) 0 !tally in
      let reason =
        if answered = 0 then
          Printf.sprintf "all %d votes failed after %d attempts each" t.policy.votes
            (t.policy.retries + 1)
        else
          Printf.sprintf
            "no quorum: %d answers across %d distinct observations (need %d of %d)" answered
            (List.length !tally) k t.policy.votes
      in
      (* an unanswerable query is itself a failure streak contribution; it
         may also be what finally opens the breaker *)
      (match record_failure t reason with
      | () -> ()
      | exception Tripped _ -> ());
      Error { reason; breaker_open = breaker_open t }
    | exception Tripped reason -> Error { reason; breaker_open = true })

let observe_hook t ~inputs =
  match observe t ~inputs with
  | Ok obs -> Ok obs
  | Error { reason; _ } -> Stdlib.Error reason

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "@[<v>queries %d (admitted %d); attempts %d (%d retried, %.1f ms backoff);@ failures: %d \
     crashes, %d refused connects, %d divergences, %d deadline misses;@ votes %d (%d minority \
     answers outvoted); breaker trips %d@]"
    s.queries s.admitted s.attempts s.retried (1e3 *. s.backoff_slept) s.crashes
    s.refused_connects s.divergences s.deadline_misses s.votes_held s.outvoted s.breaker_trips
