(** Resilient supervision of unreliable legacy drivers.

    A supervisor stands between the synthesis loop and a {!Blackbox.t} whose
    driver may crash, hang, refuse connections, or transiently lie
    ({!Faults}).  Each query runs as a ballot of up to [votes] repetitions;
    each vote retries a raw record+replay observation up to [1 + retries]
    times with exponential backoff and deterministic seeded jitter; an
    observation is admitted only once a [quorum] of votes agree on it
    bit-for-bit.  Crash-like faults are healed by retry, consistent lies are
    masked by voting — so every admitted observation is one the fault-free
    driver would have produced, preserving observation-conformance and with
    it the Theorem 1 safety argument.

    A circuit breaker opens after [breaker] consecutive failed raw attempts;
    once open, every further query fails fast with [breaker_open = true] so
    the loop can degrade gracefully ({!Loop.run} reports the chaotic closure
    of the knowledge accumulated so far). *)

type policy = {
  deadline : float option;  (** per-attempt wall-clock budget in seconds *)
  retries : int;  (** extra attempts per vote after the first *)
  backoff : float;  (** base backoff before the first retry, seconds *)
  backoff_factor : float;  (** multiplier per further retry *)
  jitter : float;  (** max fractional jitter added to each backoff *)
  votes : int;  (** repetitions per query (1 = no voting) *)
  quorum : int option;  (** agreeing votes to admit; default majority *)
  breaker : int;  (** consecutive failed attempts before opening *)
}

val default_policy : policy
(** No deadline, 2 retries, 1 ms base backoff doubling with 10% jitter,
    single vote, breaker at 8 consecutive failures. *)

type stats = {
  queries : int;  (** calls to {!observe} *)
  admitted : int;  (** queries that produced an admitted observation *)
  attempts : int;  (** raw driver observations tried *)
  retried : int;  (** attempts that were retries (after backoff) *)
  crashes : int;  (** attempts killed by {!Faults.Driver_crashed} *)
  refused_connects : int;  (** attempts killed by {!Faults.Connect_refused} *)
  divergences : int;  (** attempts killed by the replay guardrail *)
  deadline_misses : int;  (** attempts over the per-attempt deadline *)
  votes_held : int;  (** votes opened across all ballots *)
  outvoted : int;  (** minority answers discarded by a quorum *)
  breaker_trips : int;  (** times the breaker opened *)
  backoff_slept : float;  (** total backoff requested, seconds *)
}

type t

type failure = {
  reason : string;  (** deterministic: counts, never wall-clock times *)
  breaker_open : bool;  (** further queries will fail fast *)
}

val create : ?seed:int -> ?policy:policy -> ?sleep:(float -> unit) -> Blackbox.t -> t
(** [sleep] defaults to [Unix.sleepf]; tests inject a recorder to assert
    backoff schedules without waiting.  Raises [Invalid_argument] on
    non-positive [votes] or [breaker], negative [retries], or a quorum
    outside [1, votes]. *)

val observe : t -> inputs:string list list -> (Observation.t, failure) result
(** Run one supervised query: ballots, retries, backoff, breaker. *)

val observe_hook : t -> inputs:string list list -> (Observation.t, string) result
(** {!observe} with the failure collapsed to its reason — the shape
    {!Loop.run}'s [?observe] hook expects. *)

val box : t -> Blackbox.t
(** The supervised (possibly fault-injected) black box. *)

val breaker_open : t -> bool

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
