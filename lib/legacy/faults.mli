(** Composable fault injection for legacy drivers.

    The paper's guarantees assume a deterministic component behind a reliable
    port (Sections 4.3/5); a deployed legacy driver offers neither.  These
    combinators wrap a {!Blackbox.t} with the failure modes of a real driver
    — crashes, hangs, refused connections, transiently corrupted answers —
    so {!Supervisor} policies and the synthesis loop's degradation path can
    be exercised reproducibly: every schedule is a pure function of [seed],
    drawn from a stateless SplitMix stream through an atomic index
    ({!Mechaml_util.Prng.mix}), so runs are bit-identical across repetitions
    and domain counts.  Each combinator salts the seed with its own tag:
    composed faults draw from independent streams.

    Transient faults ({!garbage}, {!stutter}) leave the underlying state
    advancing normally — they corrupt what is {e observed}, not what {e is} —
    which is exactly the poison that would silently break
    observation-conformance (and with it the Theorem 1 safety argument) if a
    corrupted observation were ever admitted into knowledge.  The
    {!Supervisor} masks them by repetition voting; crash-like faults
    ({!crash}, {!hang}, {!connect_refused}) it heals by bounded retry. *)

exception Driver_crashed of string
(** The driver process died mid-step; the session is gone. *)

exception Connect_refused of string
(** The driver refused a fresh session. *)

type injection = Blackbox.t -> Blackbox.t

val crash : seed:int -> every:int -> injection
(** Roughly one step in [every] raises {!Driver_crashed} {e before} the
    underlying component advances. *)

val hang : seed:int -> every:int -> for_s:float -> injection
(** Roughly one step in [every] sleeps [for_s] seconds before answering —
    the step still succeeds, but a supervisor deadline sees it as hung. *)

val connect_refused : seed:int -> every:int -> injection
(** Roughly one connect in [every] raises {!Connect_refused}.  [every] must
    be at least 2 (a driver that never connects cannot be supervised into
    anything but degradation). *)

val garbage : seed:int -> every:int -> injection
(** Roughly one session in [every] lies {e consistently} for its whole
    lifetime: non-empty answers are emptied, empty answers report the full
    output alphabet.  When record and replay sessions disagree, the replay
    guardrail catches it (retry heals); when both lie, the observation is
    wrong but internally consistent — only repetition voting masks it. *)

val stutter : seed:int -> every:int -> injection
(** Roughly one step in [every] repeats the previous step's outputs instead
    of the fresh ones (initially the empty set). *)

val all : injection list -> injection
(** Compose, applied left to right (the leftmost wraps closest to the
    driver). *)

val profiles : (string * string) list
(** Bundled profile names with one-line descriptions, for [--inject]. *)

val of_string : seed:int -> string -> (injection, string) result
(** Parse a profile name, or a [+]-separated composition such as
    ["crash+flaky"] (each member salted with a distinct seed). *)

val of_string_exn : seed:int -> string -> injection
(** Raises [Invalid_argument] on unknown profiles. *)
