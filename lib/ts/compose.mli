(** Parallel composition [M ∥ M'] (Definition 3): synchronous execution with
    synchronous communication.

    A joint transition [((s₁,s₁'), A'', B'', (s₂,s₂'))] exists iff
    [(s₁,A,B,s₂) ∈ T] and [(s₁',A',B',s₂') ∈ T'] with [A ∩ O' = B'] and
    [A' ∩ O = B]; then [A'' = A ∪ A'] and [B'' = B ∪ B'].  Only state pairs
    reachable from [Q × Q'] are kept, and labels are unioned.  The product
    retains provenance so runs of the composition can be projected back onto
    either operand (needed to turn a model-checking counterexample into a test
    of the legacy component, Section 4.2). *)

type product = private {
  auto : Automaton.t;
  left : Automaton.t;
  right : Automaton.t;
  pairs : (Automaton.state * Automaton.state) array;
      (** product state → (left state, right state) *)
}

val parallel : Automaton.t -> Automaton.t -> product
(** Raises [Invalid_argument] when the operands are not composable
    ([I ∩ I' ≠ ∅] or [O ∩ O' ≠ ∅]) or their proposition universes overlap. *)

val parallel_many : Automaton.t list -> Automaton.t
(** Left fold of {!parallel} over two or more automata, discarding
    provenance. *)

val project_left : product -> Run.t -> Run.t
(** Map a run of the product onto the left operand: states via provenance,
    interactions restricted to the left universes.  The result is a genuine
    run of the left operand (composition only combines real transitions). *)

val project_right : product -> Run.t -> Run.t

val left_state : product -> Automaton.state -> Automaton.state

val right_state : product -> Automaton.state -> Automaton.state

val find_pair : product -> Automaton.state * Automaton.state -> Automaton.state option
(** Product state for a (left, right) pair if that pair is reachable. *)

val stepper :
  Automaton.t ->
  Automaton.t ->
  Automaton.state * Automaton.state ->
  (Automaton.trans * Automaton.trans) list
(** The joint moves of the parallel composition from a state pair, without
    materializing the product — the compatible transition pairs per
    Definition 3.  [stepper left right] precomputes the signal cross-maps, so
    partial application amortizes the setup over a whole exploration. *)

val joint_iter :
  Automaton.t ->
  Automaton.t ->
  Automaton.state * Automaton.state ->
  (Automaton.trans -> Automaton.trans -> unit) ->
  int
(** Allocation-light variant of {!stepper}: applies the callback to every
    compatible transition pair (in {!stepper}'s enumeration order — left
    adjacency order outer, right adjacency order inner) and returns the
    number of joint moves.  Compatibility is decided by comparing
    shared-signal footprint keys memoized per interned interaction id;
    narrow right fan-outs are joined by direct scan, wide ones (chaos
    states) through per-state hash buckets cached across calls — so
    composition and on-the-fly exploration visit a state pair in O(moves)
    rather than O(|T_l| × |T_r|) where it matters.  Used by
    {!Mechaml_mc.Onthefly}. *)

(** Incremental product reconstruction across a sequence of right operands
    that differ only in a few states' adjacency rows — the synthesis loop's
    [context ∥ chaos(M_i)] sequence.  Each call re-runs the reachability BFS
    (numbering must stay byte-identical to {!parallel} and the reachable
    region can shrink as escapes to chaos disappear), but joint-move
    enumeration per visited pair — the dominant cost against a chaos closure
    — is served from a cache invalidated only for the caller's dirty right
    states.  The resulting product is structurally identical to
    [parallel left right]. *)
module Inc : sig
  type t
  (** Cache handle, tied to one left operand. *)

  type stats = {
    old_of : int array;
        (** per new-product state, the previous product's state with the same
            (left, stable right key) pair, or [-1] if none — the correlation
            that lets {!Mechaml_mc.Sat} warm-start fixpoints *)
    dirty : int list;
        (** new-product states that are new or whose right projection was
            dirty this call: outside this set (and the states that reach it),
            the old product's subgraph is isomorphic *)
    reused : int;  (** visited pairs whose moves came from the cache *)
    total : int;  (** product states *)
  }

  val create : Automaton.t -> t
  (** [create left] — subsequent {!parallel} calls compose this operand. *)

  val parallel :
    t ->
    right:Automaton.t ->
    dirty:Automaton.state list ->
    stable_key:(Automaton.state -> int) ->
    resolve:(int -> Automaton.state) ->
    product * stats
  (** Compose against the next right operand.  [dirty] lists the right
      states (of {e this} operand) whose adjacency rows differ from the
      previous call's operand — for chaos closures,
      {!Mechaml_core.Chaos.dirty_states}.  [stable_key] must injectively
      name right states so that a state keeps its key across operands even
      when indices shift (core closure copies are index-stable; [s_∀]/[s_δ]
      map to negative keys), and [resolve] inverts it for the current
      operand.  Correctness requires exactly the contract the chaos closure
      provides: equal keys ⇒ same adjacency row (up to key-stable
      destinations and unchanged interaction labels) unless listed dirty. *)

  val left_operand : t -> Automaton.t
end
