(** Parallel composition [M ∥ M'] (Definition 3): synchronous execution with
    synchronous communication.

    A joint transition [((s₁,s₁'), A'', B'', (s₂,s₂'))] exists iff
    [(s₁,A,B,s₂) ∈ T] and [(s₁',A',B',s₂') ∈ T'] with [A ∩ O' = B'] and
    [A' ∩ O = B]; then [A'' = A ∪ A'] and [B'' = B ∪ B'].  Only state pairs
    reachable from [Q × Q'] are kept, and labels are unioned.  The product
    retains provenance so runs of the composition can be projected back onto
    either operand (needed to turn a model-checking counterexample into a test
    of the legacy component, Section 4.2). *)

type product = private {
  auto : Automaton.t;
  left : Automaton.t;
  right : Automaton.t;
  pairs : (Automaton.state * Automaton.state) array;
      (** product state → (left state, right state) *)
}

val parallel : Automaton.t -> Automaton.t -> product
(** Raises [Invalid_argument] when the operands are not composable
    ([I ∩ I' ≠ ∅] or [O ∩ O' ≠ ∅]) or their proposition universes overlap. *)

val parallel_many : Automaton.t list -> Automaton.t
(** Left fold of {!parallel} over two or more automata, discarding
    provenance. *)

val project_left : product -> Run.t -> Run.t
(** Map a run of the product onto the left operand: states via provenance,
    interactions restricted to the left universes.  The result is a genuine
    run of the left operand (composition only combines real transitions). *)

val project_right : product -> Run.t -> Run.t

val left_state : product -> Automaton.state -> Automaton.state

val right_state : product -> Automaton.state -> Automaton.state

val find_pair : product -> Automaton.state * Automaton.state -> Automaton.state option
(** Product state for a (left, right) pair if that pair is reachable. *)

val stepper :
  Automaton.t ->
  Automaton.t ->
  Automaton.state * Automaton.state ->
  (Automaton.trans * Automaton.trans) list
(** The joint moves of the parallel composition from a state pair, without
    materializing the product — the compatible transition pairs per
    Definition 3.  [stepper left right] precomputes the signal cross-maps, so
    partial application amortizes the setup over a whole exploration. *)

val joint_iter :
  Automaton.t ->
  Automaton.t ->
  Automaton.state * Automaton.state ->
  (Automaton.trans -> Automaton.trans -> unit) ->
  int
(** Allocation-light variant of {!stepper}: applies the callback to every
    compatible transition pair (in {!stepper}'s enumeration order — left
    adjacency order outer, right adjacency order inner) and returns the
    number of joint moves.  Compatibility is decided by comparing
    shared-signal footprint keys memoized per interned interaction id;
    narrow right fan-outs are joined by direct scan, wide ones (chaos
    states) through per-state hash buckets cached across calls — so
    composition and on-the-fly exploration visit a state pair in O(moves)
    rather than O(|T_l| × |T_r|) where it matters.  Used by
    {!Mechaml_mc.Onthefly}. *)
