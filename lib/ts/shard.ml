module Bitset = Mechaml_util.Bitset
module Bitvec = Mechaml_util.Bitvec
module Segment = Mechaml_util.Segment
module Trace = Mechaml_obs.Trace
module Metrics = Mechaml_obs.Metrics

let m_spills =
  Metrics.counter "mc_shard_spills_total"
    ~help:"Shard segments written to spill files under the memory budget."

let m_reloads =
  Metrics.counter "mc_shard_reloads_total"
    ~help:"Shard segments reloaded from spill files."

let m_spill_bytes =
  Metrics.counter "mc_shard_spill_bytes_total"
    ~help:"Resident bytes released by shard segment spills."

let m_build_rounds =
  Metrics.counter "mc_shard_build_rounds_total"
    ~help:"Level-synchronized BFS rounds across sharded product constructions."

type dist_mode =
  | Fork of int
  | Connect of string list

type distribution = {
  dist_mode : dist_mode;
  dist_deadline_s : float;
}

let distribution ?(deadline_s = 120.) dist_mode =
  (match dist_mode with
  | Fork n when n < 1 -> invalid_arg "Shard.distribution: Fork needs >= 1 worker"
  | Connect [] -> invalid_arg "Shard.distribution: Connect needs >= 1 address"
  | _ -> ());
  if deadline_s <= 0. then invalid_arg "Shard.distribution: deadline must be positive";
  { dist_mode; dist_deadline_s = deadline_s }

type config = {
  shards : int;
  mem_budget : int option;
  spill_dir : string option;
  workers : int option;
  distribution : distribution option;
}

let config ?(shards = 1) ?mem_budget ?spill_dir ?workers ?distribution () =
  if shards < 1 then invalid_arg "Shard.config: shards must be >= 1";
  (match workers with
  | Some w when w < 1 -> invalid_arg "Shard.config: workers must be >= 1"
  | _ -> ());
  { shards; mem_budget; spill_dir; workers; distribution }

type view = {
  members : int array;
  row : int array;
  dst : int array;
  prow : int array;
  psrc : int array;
}

type t = {
  config : config;
  n : int;
  transitions : int;
  initial : int list;
  owner : int array;
  local : int array;
  labels : Bitset.t array;
  props : Universe.t;
  blocking : Bitvec.t;
  sizes : int array;
  mgr : Segment.t;
  fwd_slots : Segment.slot array; (* members / row / dst per shard *)
  pred_slots : Segment.slot array; (* prow / psrc per shard *)
}

(* The partition function: a 64-bit mix of the packed pair key, so that
   structured state spaces (pair keys are [l * n_r + r]) spread evenly over
   any shard count.  Pure arithmetic — the partition is identical across
   runs, worker counts, and budgets. *)
let mix key =
  let h = key * 0x1E3779B97F4A7C15 in
  let h = h lxor (h lsr 31) in
  let h = h * 0x3F58476D1CE4E5B9 in
  let h = h lxor (h lsr 27) in
  h land max_int

(* -- growable int arrays ---------------------------------------------------- *)

module Ivec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 16 0; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let b = Array.make (2 * v.n) 0 in
      Array.blit v.a 0 b 0 v.n;
      v.a <- b
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let get v i = Array.unsafe_get v.a i

  let length v = v.n

  let to_array v = Array.sub v.a 0 v.n

  let clear v = v.n <- 0

  let reset v =
    v.a <- Array.make 16 0;
    v.n <- 0

  let capacity_bytes v = 8 * Array.length v.a
end

(* -- round-synchronized worker crew ----------------------------------------

   Expansion within a BFS level is embarrassingly parallel once each shard
   owns its join closure and output buffers: worker [w] processes exactly
   the shards [k] with [k mod workers = w], so no two domains ever touch
   the same buffer, and the serial merge that follows consumes the buffers
   in global id order — scheduling cannot leak into the numbering.  The
   crew is persistent across rounds (a BFS can run thousands of levels;
   spawning domains per level would dominate). *)

module Crew = struct
  type t = {
    m : Mutex.t;
    cv : Condition.t;
    size : int;
    mutable generation : int;
    mutable fn : int -> unit;
    mutable finished : int;
    mutable quit : bool;
    mutable err : exn option;
    mutable domains : unit Domain.t array;
  }

  let create size =
    let t =
      {
        m = Mutex.create ();
        cv = Condition.create ();
        size;
        generation = 0;
        fn = ignore;
        finished = 0;
        quit = false;
        err = None;
        domains = [||];
      }
    in
    let worker w () =
      let seen = ref 0 in
      Mutex.lock t.m;
      while not t.quit do
        while t.generation = !seen && not t.quit do
          Condition.wait t.cv t.m
        done;
        if not t.quit then begin
          seen := t.generation;
          let fn = t.fn in
          Mutex.unlock t.m;
          let r = try Ok (fn w) with e -> Error e in
          Mutex.lock t.m;
          (match r with
          | Ok () -> ()
          | Error e -> if t.err = None then t.err <- Some e);
          t.finished <- t.finished + 1;
          Condition.broadcast t.cv
        end
      done;
      Mutex.unlock t.m
    in
    t.domains <- Array.init size (fun w -> Domain.spawn (worker w));
    t

  let round t fn =
    Mutex.lock t.m;
    t.fn <- fn;
    t.finished <- 0;
    t.err <- None;
    t.generation <- t.generation + 1;
    Condition.broadcast t.cv;
    while t.finished < t.size do
      Condition.wait t.cv t.m
    done;
    let err = t.err in
    Mutex.unlock t.m;
    match err with None -> () | Some e -> raise e

  let stop t =
    Mutex.lock t.m;
    t.quit <- true;
    Condition.broadcast t.cv;
    Mutex.unlock t.m;
    Array.iter Domain.join t.domains
end

let ints payload name =
  match List.assoc_opt name payload with
  | Some (Segment.Ints a) -> a
  | _ -> raise (Segment.Spill_error ("shard segment field missing: " ^ name))

let explore ?(config = config ()) (left : Automaton.t) (right : Automaton.t) =
  if not (Automaton.composable left right) then
    invalid_arg
      (Printf.sprintf "Shard.explore: %s and %s are not composable" left.Automaton.name
         right.Automaton.name);
  if not (Universe.disjoint left.Automaton.props right.Automaton.props) then
    invalid_arg "Shard.explore: proposition universes overlap";
  let shards = config.shards in
  let props = Universe.union left.Automaton.props right.Automaton.props in
  let lp_size = Universe.size left.Automaton.props in
  let nr = Automaton.num_states right in
  let shard_of key = if shards = 1 then 0 else mix key mod shards in
  let mgr =
    Segment.create ?budget:config.mem_budget ?dir:config.spill_dir
      ~on_spill:(fun bytes ->
        Metrics.incr m_spills;
        Metrics.add m_spill_bytes bytes)
      ~on_reload:(fun _ -> Metrics.incr m_reloads)
      ~name:"shard" ()
  in
  try
    (* per-shard interning and construction state *)
    let tbl = Array.init shards (fun _ -> Hashtbl.create 256) in
    let members = Array.init shards (fun _ -> Ivec.create ()) in
    let mcur = Array.make shards 0 in
    let out_keys = Array.init shards (fun _ -> Ivec.create ()) in
    let out_cnt = Array.init shards (fun _ -> Ivec.create ()) in
    let deg = Array.init shards (fun _ -> Ivec.create ()) in
    let edges = Array.init shards (fun _ -> Ivec.create ()) in
    let echunks = Array.make shards [] in
    (* global discovery-order state *)
    let owner = Ivec.create () in
    let local = Ivec.create () in
    let labs = Ivec.create () in
    let pl = Ivec.create () in
    let pr = Ivec.create () in
    let intern s s' =
      let key = (s * nr) + s' in
      let k = shard_of key in
      match Hashtbl.find_opt tbl.(k) key with
      | Some id -> id
      | None ->
        let id = Ivec.length owner in
        Hashtbl.add tbl.(k) key id;
        Ivec.push owner k;
        Ivec.push local (Ivec.length members.(k));
        Ivec.push members.(k) id;
        Ivec.push labs
          (Bitset.to_int
             (Bitset.union (Automaton.label left s)
                (Bitset.shift lp_size (Automaton.label right s'))));
        Ivec.push pl s;
        Ivec.push pr s';
        id
    in
    let initial =
      List.concat_map
        (fun q -> List.map (fun q' -> intern q q') right.Automaton.initial)
        left.Automaton.initial
    in
    (* One join closure per shard: the join memoizes per-interaction keys and
       per-right-state buckets in plain hash tables, so sharing one across
       worker domains would race — a private closure per shard keeps every
       mutable structure single-owner. *)
    let joins = Array.init shards (fun _ -> Compose.joint_iter left right) in
    let workers =
      if shards = 1 then 1
      else
        min shards
          (match config.workers with
          | Some w -> w
          | None -> Domain.recommended_domain_count ())
    in
    let crew = if workers > 1 then Some (Crew.create workers) else None in
    let expand_shard hi k =
      let mem = members.(k) and keys = out_keys.(k) and cnts = out_cnt.(k) in
      let join = joins.(k) in
      let cur = ref mcur.(k) in
      let stop = Ivec.length mem in
      while !cur < stop && Ivec.get mem !cur < hi do
        let gid = Ivec.get mem !cur in
        let c =
          join
            (Ivec.get pl gid, Ivec.get pr gid)
            (fun (tr : Automaton.trans) (tr' : Automaton.trans) ->
              Ivec.push keys ((tr.dst * nr) + tr'.dst))
        in
        Ivec.push cnts c;
        incr cur
      done;
      mcur.(k) <- !cur
    in
    (* Edge buffers are flushed to scratch chunk files once they pass half
       the budget: construction keeps the same watermark discipline as the
       finished segments. *)
    let flush_edges () =
      match config.mem_budget with
      | None -> ()
      | Some budget ->
        let total =
          Array.fold_left (fun acc v -> acc + Ivec.capacity_bytes v) 0 edges
        in
        if total > budget / 2 then
          Array.iteri
            (fun k v ->
              if Ivec.length v > 0 then begin
                let path =
                  Segment.scratch_path mgr ~name:(Printf.sprintf "edges%d" k)
                in
                Segment.save ~path [ ("e", Segment.Ints (Ivec.to_array v)) ];
                Metrics.incr m_spills;
                Metrics.add m_spill_bytes (Ivec.capacity_bytes v);
                echunks.(k) <- (path, Ivec.length v) :: echunks.(k);
                Ivec.reset v
              end)
            edges
    in
    let round = ref 0 in
    let key_cursor = Array.make shards 0 in
    let cnt_cursor = Array.make shards 0 in
    Fun.protect
      ~finally:(fun () -> match crew with Some c -> Crew.stop c | None -> ())
      (fun () ->
        let lo = ref 0 in
        while !lo < Ivec.length owner do
          let hi = Ivec.length owner in
          let t0 = if Trace.is_enabled () then Some (Trace.now_us ()) else None in
          (* expand: shard-local frontiers, one worker per shard group *)
          (match crew with
          | Some c ->
            Crew.round c (fun w ->
                let k = ref w in
                while !k < shards do
                  expand_shard hi !k;
                  k := !k + workers
                done)
          | None ->
            for k = 0 to shards - 1 do
              expand_shard hi k
            done);
          (* merge: serial, in global id order — the boundary exchange.  The
             numbering this hands out is exactly the single-queue BFS order,
             whatever the shard count or worker scheduling. *)
          for gid = !lo to hi - 1 do
            let k = Ivec.get owner gid in
            let c = Ivec.get out_cnt.(k) cnt_cursor.(k) in
            cnt_cursor.(k) <- cnt_cursor.(k) + 1;
            Ivec.push deg.(k) c;
            let base = key_cursor.(k) in
            for j = 0 to c - 1 do
              let key = Ivec.get out_keys.(k) (base + j) in
              Ivec.push edges.(k) (intern (key / nr) (key mod nr))
            done;
            key_cursor.(k) <- base + c
          done;
          Array.iter Ivec.clear out_keys;
          Array.iter Ivec.clear out_cnt;
          Array.fill key_cursor 0 shards 0;
          Array.fill cnt_cursor 0 shards 0;
          flush_edges ();
          incr round;
          (match t0 with
          | Some start_us ->
            Trace.complete ~name:"ts.shard.round" ~start_us
              ~args:
                [ ("round", Trace.Int !round); ("frontier", Trace.Int (hi - !lo)) ]
              ()
          | None -> ());
          lo := hi
        done);
    Metrics.add m_build_rounds !round;
    let n = Ivec.length owner in
    let owner = Ivec.to_array owner in
    let local = Ivec.to_array local in
    let labels = Array.init n (fun i -> Bitset.of_int_unsafe (Ivec.get labs i)) in
    let sizes = Array.map Ivec.length members in
    (* finalize forward CSR segments and the global blocking set *)
    let blocking = Bitvec.create n in
    let transitions = ref 0 in
    let fwd_slots =
      Array.init shards (fun k ->
          let size = sizes.(k) in
          let row = Array.make (size + 1) 0 in
          for m = 0 to size - 1 do
            let d = Ivec.get deg.(k) m in
            row.(m + 1) <- row.(m) + d;
            if d = 0 then Bitvec.unsafe_set blocking (Ivec.get members.(k) m)
          done;
          transitions := !transitions + row.(size);
          let dst = Array.make (max row.(size) 1) 0 in
          let cursor = ref 0 in
          List.iter
            (fun (path, len) ->
              (match Segment.load ~path with
              | Ok payload -> Array.blit (ints payload "e") 0 dst !cursor len
              | Error m -> raise (Segment.Spill_error m));
              (try Sys.remove path with Sys_error _ -> ());
              cursor := !cursor + len)
            (List.rev echunks.(k));
          Array.blit edges.(k).Ivec.a 0 dst !cursor (Ivec.length edges.(k));
          Ivec.reset edges.(k);
          Ivec.reset deg.(k);
          echunks.(k) <- [];
          Segment.add mgr
            ~name:(Printf.sprintf "fwd%d" k)
            [
              ("members", Segment.Ints (Ivec.to_array members.(k)));
              ("row", Segment.Ints row);
              ("dst", Segment.Ints dst);
            ])
    in
    Array.iter Ivec.reset members;
    (* predecessor CSR: count per global state, then scatter per owning
       shard — chunked to scratch files under the budget like the edges *)
    let pcnt = Array.make (max n 1) 0 in
    Array.iter
      (fun slot ->
        let dst = ints (Segment.get mgr slot) "dst" in
        Array.iter (fun d -> pcnt.(d) <- pcnt.(d) + 1) dst)
      fwd_slots;
    let scatter = Array.init shards (fun _ -> Ivec.create ()) in
    let pchunks = Array.make shards [] in
    let flush_scatter () =
      match config.mem_budget with
      | None -> ()
      | Some budget ->
        let total =
          Array.fold_left (fun acc v -> acc + Ivec.capacity_bytes v) 0 scatter
        in
        if total > budget / 2 then
          Array.iteri
            (fun k v ->
              if Ivec.length v > 0 then begin
                let path =
                  Segment.scratch_path mgr ~name:(Printf.sprintf "scatter%d" k)
                in
                Segment.save ~path [ ("p", Segment.Ints (Ivec.to_array v)) ];
                Metrics.incr m_spills;
                Metrics.add m_spill_bytes (Ivec.capacity_bytes v);
                pchunks.(k) <- (path, Ivec.length v) :: pchunks.(k);
                Ivec.reset v
              end)
            scatter
    in
    Array.iter
      (fun slot ->
        let payload = Segment.get mgr slot in
        let mem = ints payload "members" and row = ints payload "row" in
        let dst = ints payload "dst" in
        let size = Array.length mem in
        for m = 0 to size - 1 do
          let src = mem.(m) in
          for e = row.(m) to row.(m + 1) - 1 do
            let d = dst.(e) in
            let kk = owner.(d) in
            Ivec.push scatter.(kk) local.(d);
            Ivec.push scatter.(kk) src
          done
        done;
        flush_scatter ())
      fwd_slots;
    let pred_slots =
      Array.init shards (fun k ->
          let mem = ints (Segment.get mgr fwd_slots.(k)) "members" in
          let size = Array.length mem in
          let prow = Array.make (size + 1) 0 in
          for m = 0 to size - 1 do
            prow.(m + 1) <- prow.(m) + pcnt.(mem.(m))
          done;
          let psrc = Array.make (max prow.(size) 1) 0 in
          let cursor = Array.copy prow in
          let fill pairs len =
            let i = ref 0 in
            while !i < len do
              let ld = pairs.(!i) and src = pairs.(!i + 1) in
              psrc.(cursor.(ld)) <- src;
              cursor.(ld) <- cursor.(ld) + 1;
              i := !i + 2
            done
          in
          List.iter
            (fun (path, len) ->
              (match Segment.load ~path with
              | Ok payload -> fill (ints payload "p") len
              | Error m -> raise (Segment.Spill_error m));
              try Sys.remove path with Sys_error _ -> ())
            (List.rev pchunks.(k));
          fill scatter.(k).Ivec.a (Ivec.length scatter.(k));
          Ivec.reset scatter.(k);
          pchunks.(k) <- [];
          Segment.add mgr
            ~name:(Printf.sprintf "pred%d" k)
            [ ("prow", Segment.Ints prow); ("psrc", Segment.Ints psrc) ])
    in
    {
      config;
      n;
      transitions = !transitions;
      initial;
      owner;
      local;
      labels;
      props;
      blocking;
      sizes;
      mgr;
      fwd_slots;
      pred_slots;
    }
  with e ->
    Segment.close mgr;
    raise e

let num_states t = t.n

let num_transitions t = t.transitions

let initial t = t.initial

let shards t = t.config.shards

let sizes t = t.sizes

let owner t = t.owner

let local t = t.local

let labels t = t.labels

let props t = t.props

let blocking t = t.blocking

let view t k =
  let pf = Segment.get t.mgr t.fwd_slots.(k) in
  let pp = Segment.get t.mgr t.pred_slots.(k) in
  {
    members = ints pf "members";
    row = ints pf "row";
    dst = ints pf "dst";
    prow = ints pp "prow";
    psrc = ints pp "psrc";
  }

let manager t = t.mgr

let spills t = Segment.spills t.mgr

let reloads t = Segment.reloads t.mgr

let close t = Segment.close t.mgr
