module Bitset = Mechaml_util.Bitset
module Trace = Mechaml_obs.Trace
module Metrics = Mechaml_obs.Metrics

let m_product_states =
  Metrics.histogram "ts_product_states"
    ~buckets:(Metrics.log_buckets ~lo:1. ~hi:1e6 13)
    ~help:"Reachable states per parallel product construction."

let m_product_transitions =
  Metrics.histogram "ts_product_transitions"
    ~buckets:(Metrics.log_buckets ~lo:1. ~hi:1e7 15)
    ~help:"Transitions per parallel product construction."

type product = {
  auto : Automaton.t;
  left : Automaton.t;
  right : Automaton.t;
  pairs : (Automaton.state * Automaton.state) array;
}

(* Communication constraint of Definition 3, evaluated on the shared signals:
   what one side consumes from the other must be exactly what the other
   produces on the connected signals.  For closed compositions (every output
   of one operand is an input of the other, as in context ∥ closure) this is
   literally the paper's (A ∩ O') = B' and (A' ∩ O) = B; for open
   compositions it lets unconnected signals pass through to the
   environment. *)

let cross_map from_u to_u =
  Array.init (Universe.size from_u) (fun i ->
      match Universe.index_opt to_u (Universe.name from_u i) with
      | Some j -> j
      | None -> -1)

let mask_of cross =
  Array.to_list cross
  |> List.mapi (fun i j -> (i, j))
  |> List.filter_map (fun (i, j) -> if j >= 0 then Some i else None)
  |> Bitset.of_list

let translate cross s = Bitset.fold (fun i acc -> Bitset.add cross.(i) acc) s Bitset.empty


(* Hash join over the communication constraint.  Every transition projects
   onto its shared-signal footprint — the pair of constraint sides, both
   expressed in a common index space: [A ∩ O'] translated to right-output
   indices paired with [B ∩ I'] in left-output indices on the left, and
   symmetrically [B' ∩ I] / [A' ∩ O] on the right.  Two transitions are
   compatible iff their footprints coincide, so bucketing one operand's
   transitions by footprint finds all partners by lookup instead of the
   former O(|T_l| × |T_r|) nested scan per state pair.  Narrow right-hand
   fan-outs skip the bucket table entirely — a linear scan over a cached
   key array beats hashing when there are only a handful of candidates,
   which is the common case outside chaos closures.  Both paths preserve
   adjacency-list order, so joint moves are enumerated exactly as the
   nested scan did.  Per-state caches amortize key computation across a
   whole product construction / on-the-fly exploration. *)
let small_fanout = 8
let make_join (left : Automaton.t) (right : Automaton.t) =
  if not (Automaton.composable left right) then
    invalid_arg
      (Printf.sprintf "Compose.joint_iter: %s and %s are not composable" left.Automaton.name
         right.Automaton.name);
  let li_ro = cross_map left.inputs right.outputs in
  let lo_ri = cross_map left.outputs right.inputs in
  let ri_lo = cross_map right.inputs left.outputs in
  let ro_li = cross_map right.outputs left.inputs in
  let mask_li = mask_of li_ro
  and mask_lo = mask_of lo_ri
  and mask_ri = mask_of ri_lo
  and mask_ro = mask_of ro_li in
  let lo_w = Universe.size left.Automaton.outputs in
  let ro_w = Universe.size right.Automaton.outputs in
  if lo_w + ro_w <= Bitset.max_width then begin
    (* Footprint packs into one word: allocation-free int keys.  Keys depend
       only on the transition label, so they are memoized per interned
       interaction id — packed keys are non-negative, leaving -1 free as the
       not-yet-computed sentinel.  Transitions then resolve their key with
       one array read via the adjacency-order id table. *)
    let lkbi = Array.make (max (Automaton.num_interactions left) 1) (-1) in
    let rkbi = Array.make (max (Automaton.num_interactions right) 1) (-1) in
    let lkey_id iid =
      let k = Array.unsafe_get lkbi iid in
      if k >= 0 then k
      else begin
        let a, b = Automaton.interaction_io left iid in
        let k =
          (Bitset.to_int (translate li_ro (Bitset.inter a mask_li)) lsl lo_w)
          lor Bitset.to_int (Bitset.inter b mask_lo)
        in
        lkbi.(iid) <- k;
        k
      end
    in
    let rkey_id iid =
      let k = Array.unsafe_get rkbi iid in
      if k >= 0 then k
      else begin
        let a, b = Automaton.interaction_io right iid in
        let k =
          (Bitset.to_int (Bitset.inter b mask_ro) lsl lo_w)
          lor Bitset.to_int (translate ri_lo (Bitset.inter a mask_ri))
        in
        rkbi.(iid) <- k;
        k
      end
    in
    let row_l = Automaton.Csr.row left and ai_l = Automaton.Csr.adj_inter left in
    let row_r = Automaton.Csr.row right and ai_r = Automaton.Csr.adj_inter right in
    let rcache : (int, Automaton.trans list) Hashtbl.t option array =
      Array.make (Automaton.num_states right) None
    in
    let buckets s' =
      match rcache.(s') with
      | Some h -> h
      | None ->
        let h = Hashtbl.create (2 * (row_r.(s' + 1) - row_r.(s'))) in
        let j = ref row_r.(s') in
        List.iter
          (fun t' ->
            let k = rkey_id (Array.unsafe_get ai_r !j) in
            incr j;
            Hashtbl.replace h k
              (t' :: Option.value (Hashtbl.find_opt h k) ~default:[]))
          (Automaton.transitions_from right s');
        Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) h;
        rcache.(s') <- Some h;
        h
    in
    fun (s, s') f ->
      let count = ref 0 in
      let rn = row_r.(s' + 1) - row_r.(s') in
      if rn <= small_fanout then begin
        (* narrow fan-out: nested scan over adjacency lists, memoized keys *)
        let i = ref row_l.(s) in
        List.iter
          (fun t ->
            let k = lkey_id (Array.unsafe_get ai_l !i) in
            incr i;
            let j = ref row_r.(s') in
            List.iter
              (fun t' ->
                (if rkey_id (Array.unsafe_get ai_r !j) = k then begin
                   incr count;
                   f t t'
                 end);
                incr j)
              (Automaton.transitions_from right s'))
          (Automaton.transitions_from left s)
      end
      else begin
        let h = buckets s' in
        let i = ref row_l.(s) in
        List.iter
          (fun t ->
            let k = lkey_id (Array.unsafe_get ai_l !i) in
            incr i;
            match Hashtbl.find_opt h k with
            | None -> ()
            | Some ts' ->
              List.iter
                (fun t' ->
                  incr count;
                  f t t')
                ts')
          (Automaton.transitions_from left s)
      end;
      !count
  end
  else begin
    (* > 62 connected output signals: fall back to the direct scan *)
    let compatible (t : Automaton.trans) (t' : Automaton.trans) =
      Bitset.equal
        (translate li_ro (Bitset.inter t.input mask_li))
        (Bitset.inter t'.output mask_ro)
      && Bitset.equal
           (translate ri_lo (Bitset.inter t'.input mask_ri))
           (Bitset.inter t.output mask_lo)
    in
    fun (s, s') f ->
      let count = ref 0 in
      List.iter
        (fun t ->
          List.iter
            (fun t' ->
              if compatible t t' then begin
                incr count;
                f t t'
              end)
            (Automaton.transitions_from right s'))
        (Automaton.transitions_from left s);
      !count
  end

let joint_iter = make_join

(* BFS core of the product construction, parameterized over the joint-move
   enumerator so the incremental path below can substitute cached successor
   lists for live hash joins: [moves s s' emit] must call
   [emit input output l_dst r_dst] once per joint move of the pair, with the
   already-combined interaction label, in {!make_join}'s enumeration order.
   Everything observable about the product (state numbering, names, labels,
   adjacency order) is fixed by the emitted moves, which is what lets the
   incremental layer guarantee byte-identical products. *)
let bfs_product ~moves (left : Automaton.t) (right : Automaton.t) =
  if not (Automaton.composable left right) then
    invalid_arg
      (Printf.sprintf "Compose.parallel: %s and %s are not composable" left.Automaton.name
         right.Automaton.name);
  if not (Universe.disjoint left.Automaton.props right.Automaton.props) then
    invalid_arg "Compose.parallel: proposition universes overlap";
  let inputs = Universe.union left.inputs right.inputs in
  let outputs = Universe.union left.outputs right.outputs in
  let props = Universe.union left.props right.props in
  let lp_size = Universe.size left.props in
  (* Pairs pack into one int key (products beyond 2^62 states are unbuildable
     anyway), so interning never allocates a tuple; per-state data lives in
     growable arrays rather than reversed lists, and because ids are handed
     out in discovery order a cursor over those arrays doubles as the BFS
     queue. *)
  let nr = Automaton.num_states right in
  let table : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let cap = ref 16 in
  let names = ref (Array.make !cap "") in
  let labs = ref (Array.make !cap Bitset.empty) in
  let pl = ref (Array.make !cap 0) in
  let pr = ref (Array.make !cap 0) in
  let outs = ref (Array.make !cap []) in
  let n = ref 0 in
  let grow () =
    let c = 2 * !cap in
    let g a z =
      let b = Array.make c z in
      Array.blit !a 0 b 0 !n;
      a := b
    in
    g names "";
    g labs Bitset.empty;
    g pl 0;
    g pr 0;
    g outs [];
    cap := c
  in
  let intern s s' =
    let key = (s * nr) + s' in
    match Hashtbl.find_opt table key with
    | Some id -> id
    | None ->
      let id = !n in
      if id = !cap then grow ();
      Hashtbl.add table key id;
      !names.(id) <- Automaton.state_name left s ^ "," ^ Automaton.state_name right s';
      !labs.(id) <-
        Bitset.union (Automaton.label left s) (Bitset.shift lp_size (Automaton.label right s'));
      !pl.(id) <- s;
      !pr.(id) <- s';
      n := id + 1;
      id
  in
  let initial =
    List.concat_map (fun q -> List.map (fun q' -> intern q q') right.initial) left.initial
  in
  let cursor = ref 0 in
  while !cursor < !n do
    let id = !cursor in
    incr cursor;
    let s = !pl.(id) and s' = !pr.(id) in
    let acc = ref [] in
    moves s s' (fun input output l_dst r_dst ->
        let dst = intern l_dst r_dst in
        acc := { Automaton.input; output; dst } :: !acc);
    !outs.(id) <- List.rev !acc
  done;
  let count = !n in
  let state_names = Array.sub !names 0 count in
  let labels = Array.sub !labs 0 count in
  let pairs = Array.init count (fun i -> (!pl.(i), !pr.(i))) in
  let trans = Array.sub !outs 0 count in
  let auto : Automaton.t =
    (* Product names split unambiguously at the first ',' when no left
       operand name contains one, so uniqueness of the (s, s') pairs carries
       over to the concatenated names and [of_packed] can skip its duplicate
       check (and eager name-table build) entirely.  Otherwise let it
       validate — a collision falls through to the Builder merge below. *)
    let assume_unique_names =
      not (Array.exists (fun nm -> String.contains nm ',') left.Automaton.state_names)
    in
    match
      Automaton.of_packed ~assume_unique_names
        ~name:(left.Automaton.name ^ "||" ^ right.Automaton.name)
        ~inputs ~outputs ~props ~state_names ~labels ~trans ~initial ()
    with
    | auto -> auto
    | exception Invalid_argument _ -> begin
      (* Distinct pairs can concatenate to the same name (only when operand
         names themselves contain ','); the Builder interns by name and
         merges such states, which is what this constructor always did —
         keep that behaviour on the slow path. *)
      let builder =
        Automaton.Builder.create
          ~name:(left.Automaton.name ^ "||" ^ right.Automaton.name)
          ~inputs:(Universe.to_list inputs) ~outputs:(Universe.to_list outputs)
          ~props:(Universe.to_list props) ()
      in
      Array.iteri
        (fun i name ->
          ignore
            (Automaton.Builder.add_state builder
               ~props:(Universe.names_of_set props labels.(i))
               name))
        state_names;
      Array.iteri
        (fun src ts ->
          List.iter
            (fun (t : Automaton.trans) ->
              Automaton.Builder.add_trans builder ~src:state_names.(src)
                ~inputs:(Universe.names_of_set inputs t.input)
                ~outputs:(Universe.names_of_set outputs t.output)
                ~dst:state_names.(t.dst) ())
            ts)
        trans;
      Automaton.Builder.set_initial builder (List.map (fun i -> state_names.(i)) initial);
      Automaton.Builder.build builder
    end
  in
  { auto; left; right; pairs }

(* Joint-move enumerator over a live hash join: the combined interaction
   label is assembled on the fly by shifting the right operand's signals past
   the left operand's universe. *)
let join_moves (left : Automaton.t) (right : Automaton.t) =
  let in_shift = Universe.size left.Automaton.inputs in
  let out_shift = Universe.size left.Automaton.outputs in
  let join = make_join left right in
  fun s s' emit ->
    ignore
      (join (s, s') (fun (t : Automaton.trans) (t' : Automaton.trans) ->
           emit
             (Bitset.union t.input (Bitset.shift in_shift t'.input))
             (Bitset.union t.output (Bitset.shift out_shift t'.output))
             t.dst t'.dst))

let parallel_unobserved (left : Automaton.t) (right : Automaton.t) =
  bfs_product ~moves:(join_moves left right) left right

let observe_product ~start_us (p : product) =
  if start_us <> None || Metrics.enabled () then begin
    let states = Automaton.num_states p.auto in
    (* the transition count walks every adjacency list — worth it for the
       size histograms, too slow for the per-span fast path when only
       tracing is on *)
    if Metrics.enabled () then begin
      Metrics.observe m_product_states (float_of_int states);
      Metrics.observe m_product_transitions
        (float_of_int (Automaton.num_transitions p.auto))
    end;
    match start_us with
    | Some start_us ->
      Trace.complete ~name:"ts.compose" ~start_us
        ~args:
          [
            ("left", Trace.Str p.left.Automaton.name);
            ("right", Trace.Str p.right.Automaton.name);
            ("states", Trace.Int states);
          ]
        ()
    | None -> ()
  end

let parallel left right =
  let t0 = if Trace.is_enabled () then Some (Trace.now_us ()) else None in
  let p = parallel_unobserved left right in
  observe_product ~start_us:t0 p;
  p

let parallel_many = function
  | [] -> invalid_arg "Compose.parallel_many: empty list"
  | [ m ] -> m
  | m :: rest -> List.fold_left (fun acc m' -> (parallel acc m').auto) m rest

let left_state p s = fst p.pairs.(s)

let right_state p s = snd p.pairs.(s)

let project side (p : product) (r : Run.t) =
  let target = match side with `Left -> p.left | `Right -> p.right in
  let pick = match side with `Left -> fst | `Right -> snd in
  let states = List.map (fun s -> pick p.pairs.(s)) (Run.state_sequence r) in
  let io =
    List.map
      (fun (a, b) ->
        ( Universe.restrict p.auto.Automaton.inputs ~to_:target.Automaton.inputs a,
          Universe.restrict p.auto.Automaton.outputs ~to_:target.Automaton.outputs b ))
      (Run.trace r)
  in
  if r.Run.deadlock then Run.deadlocking ~states ~io else Run.regular ~states ~io

let project_left p r = project `Left p r

let project_right p r = project `Right p r

let stepper (left : Automaton.t) (right : Automaton.t) =
  let join = make_join left right in
  fun pair ->
    let rev = ref [] in
    ignore (join pair (fun t t' -> rev := (t, t') :: !rev));
    List.rev !rev

let find_pair p pair =
  let n = Array.length p.pairs in
  let rec go i = if i >= n then None else if p.pairs.(i) = pair then Some i else go (i + 1) in
  go 0

(* Incremental product reconstruction across a sequence of right operands
   that differ only in a few states' adjacency rows — the synthesis loop's
   context ∥ chaos(M_i) sequence.  The BFS itself is re-run every iteration
   (state numbering must stay byte-identical, and the reachable region can
   both grow and shrink), but the expensive part of each visit — the hash
   join over the pair's transitions — is served from a cache keyed by
   (left state, stable right key) and invalidated by the caller's dirty set.
   Cached moves store destinations as stable right keys too, so entries
   survive right-operand reindexing (the chaos states shift when the core
   grows); the caller translates keys back per call via [resolve]. *)
module Inc = struct
  type move = {
    mv_input : Bitset.t;
    mv_output : Bitset.t;
    mv_ldst : int;
    mv_rkey : int;
  }

  type entry = { e_version : int; e_moves : move array }

  type stats = {
    old_of : int array;
    dirty : int list;
    reused : int;
    total : int;
  }

  type t = {
    inc_left : Automaton.t;
    cache : (int * int, entry) Hashtbl.t;
    last_dirty : (int, int) Hashtbl.t; (* stable key → version last invalidated *)
    mutable version : int;
    mutable prev_ids : (int * int, int) Hashtbl.t; (* (l, stable key) → prior product id *)
  }

  let m_reused =
    Metrics.counter "ts_product_pairs_reused_total"
      ~help:"Product state visits whose joint moves were served from the incremental cache."

  let create left =
    {
      inc_left = left;
      cache = Hashtbl.create 1024;
      last_dirty = Hashtbl.create 64;
      version = 0;
      prev_ids = Hashtbl.create 16;
    }

  let left_operand inc = inc.inc_left

  let parallel inc ~right ~dirty ~stable_key ~resolve =
    let left = inc.inc_left in
    inc.version <- inc.version + 1;
    let v = inc.version in
    List.iter (fun r -> Hashtbl.replace inc.last_dirty (stable_key r) v) dirty;
    let live = lazy (join_moves left right) in
    let reused = ref 0 in
    let moves s s' emit =
      let skey = stable_key s' in
      let hit =
        match Hashtbl.find_opt inc.cache (s, skey) with
        | Some e
          when e.e_version
               >= Option.value (Hashtbl.find_opt inc.last_dirty skey) ~default:0 ->
          incr reused;
          Array.iter
            (fun m -> emit m.mv_input m.mv_output m.mv_ldst (resolve m.mv_rkey))
            e.e_moves;
          true
        | _ -> false
      in
      if not hit then begin
        let acc = ref [] in
        (Lazy.force live) s s' (fun input output l_dst r_dst ->
            acc :=
              {
                mv_input = input;
                mv_output = output;
                mv_ldst = l_dst;
                mv_rkey = stable_key r_dst;
              }
              :: !acc;
            emit input output l_dst r_dst);
        Hashtbl.replace inc.cache (s, skey)
          { e_version = v; e_moves = Array.of_list (List.rev !acc) }
      end
    in
    let t0 = if Trace.is_enabled () then Some (Trace.now_us ()) else None in
    let p = bfs_product ~moves left right in
    observe_product ~start_us:t0 p;
    let count = Array.length p.pairs in
    let old_of = Array.make count (-1) in
    let new_ids = Hashtbl.create (2 * count) in
    let dirty_new = ref [] in
    for id = count - 1 downto 0 do
      let l, r = p.pairs.(id) in
      let skey = stable_key r in
      Hashtbl.replace new_ids (l, skey) id;
      (match Hashtbl.find_opt inc.prev_ids (l, skey) with
      | Some o -> old_of.(id) <- o
      | None -> ());
      let row_changed =
        match Hashtbl.find_opt inc.last_dirty skey with
        | Some dv -> dv = v
        | None -> false
      in
      if row_changed || old_of.(id) < 0 then dirty_new := id :: !dirty_new
    done;
    inc.prev_ids <- new_ids;
    Metrics.add m_reused !reused;
    (p, { old_of; dirty = !dirty_new; reused = !reused; total = count })
end
