module Bitset = Mechaml_util.Bitset
module Trace = Mechaml_obs.Trace
module Metrics = Mechaml_obs.Metrics

let m_product_states =
  Metrics.histogram "ts_product_states"
    ~buckets:(Metrics.log_buckets ~lo:1. ~hi:1e6 13)
    ~help:"Reachable states per parallel product construction."

let m_product_transitions =
  Metrics.histogram "ts_product_transitions"
    ~buckets:(Metrics.log_buckets ~lo:1. ~hi:1e7 15)
    ~help:"Transitions per parallel product construction."

type product = {
  auto : Automaton.t;
  left : Automaton.t;
  right : Automaton.t;
  pairs : (Automaton.state * Automaton.state) array;
}

(* Communication constraint of Definition 3, evaluated on the shared signals:
   what one side consumes from the other must be exactly what the other
   produces on the connected signals.  For closed compositions (every output
   of one operand is an input of the other, as in context ∥ closure) this is
   literally the paper's (A ∩ O') = B' and (A' ∩ O) = B; for open
   compositions it lets unconnected signals pass through to the
   environment. *)

let cross_map from_u to_u =
  Array.init (Universe.size from_u) (fun i ->
      match Universe.index_opt to_u (Universe.name from_u i) with
      | Some j -> j
      | None -> -1)

let mask_of cross =
  Array.to_list cross
  |> List.mapi (fun i j -> (i, j))
  |> List.filter_map (fun (i, j) -> if j >= 0 then Some i else None)
  |> Bitset.of_list

let translate cross s = Bitset.fold (fun i acc -> Bitset.add cross.(i) acc) s Bitset.empty

let parallel_unobserved (left : Automaton.t) (right : Automaton.t) =
  if not (Automaton.composable left right) then
    invalid_arg
      (Printf.sprintf "Compose.parallel: %s and %s are not composable" left.Automaton.name
         right.Automaton.name);
  if not (Universe.disjoint left.Automaton.props right.Automaton.props) then
    invalid_arg "Compose.parallel: proposition universes overlap";
  let inputs = Universe.union left.inputs right.inputs in
  let outputs = Universe.union left.outputs right.outputs in
  let props = Universe.union left.props right.props in
  let in_shift = Universe.size left.inputs and out_shift = Universe.size left.outputs in
  (* left-input index -> right-output index (shared signals), etc. *)
  let li_ro = cross_map left.inputs right.outputs in
  let lo_ri = cross_map left.outputs right.inputs in
  let ri_lo = cross_map right.inputs left.outputs in
  let ro_li = cross_map right.outputs left.inputs in
  let mask_li = mask_of li_ro (* left inputs connected to right outputs *)
  and mask_lo = mask_of lo_ri
  and mask_ri = mask_of ri_lo
  and mask_ro = mask_of ro_li in
  let compatible (t : Automaton.trans) (t' : Automaton.trans) =
    (* (A ∩ O') = B' on shared signals, compared in right-output index space *)
    Bitset.equal (translate li_ro (Bitset.inter t.input mask_li)) (Bitset.inter t'.output mask_ro)
    (* (A' ∩ O) = B on shared signals, compared in left-output index space *)
    && Bitset.equal
         (translate ri_lo (Bitset.inter t'.input mask_ri))
         (Bitset.inter t.output mask_lo)
  in
  let table : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let rev_names = ref [] and rev_labels = ref [] and rev_pairs = ref [] in
  let n = ref 0 in
  let queue = Queue.create () in
  let intern (s, s') =
    match Hashtbl.find_opt table (s, s') with
    | Some id -> id
    | None ->
      let id = !n in
      incr n;
      Hashtbl.add table (s, s') id;
      rev_names :=
        (Automaton.state_name left s ^ "," ^ Automaton.state_name right s') :: !rev_names;
      rev_labels :=
        Bitset.union (Automaton.label left s)
          (Bitset.shift (Universe.size left.props) (Automaton.label right s'))
        :: !rev_labels;
      rev_pairs := (s, s') :: !rev_pairs;
      Queue.add (id, s, s') queue;
      id
  in
  let initial =
    List.concat_map
      (fun q -> List.map (fun q' -> intern (q, q')) right.initial)
      left.initial
  in
  let rev_trans = ref [] in
  while not (Queue.is_empty queue) do
    let id, s, s' = Queue.pop queue in
    List.iter
      (fun (t : Automaton.trans) ->
        List.iter
          (fun (t' : Automaton.trans) ->
            if compatible t t' then begin
              let dst = intern (t.dst, t'.dst) in
              let input = Bitset.union t.input (Bitset.shift in_shift t'.input) in
              let output = Bitset.union t.output (Bitset.shift out_shift t'.output) in
              rev_trans := (id, { Automaton.input; output; dst }) :: !rev_trans
            end)
          (Automaton.transitions_from right s'))
      (Automaton.transitions_from left s)
  done;
  let count = !n in
  let state_names = Array.make count "" in
  List.iteri (fun i name -> state_names.(count - 1 - i) <- name) !rev_names;
  let labels = Array.make count Bitset.empty in
  List.iteri (fun i l -> labels.(count - 1 - i) <- l) !rev_labels;
  let pairs = Array.make count (0, 0) in
  List.iteri (fun i p -> pairs.(count - 1 - i) <- p) !rev_pairs;
  let trans = Array.make (max count 1) [] in
  List.iter (fun (src, t) -> trans.(src) <- t :: trans.(src)) !rev_trans;
  let auto : Automaton.t =
    (* The Automaton type is private; rebuild through the Builder to keep the
       single construction path. *)
    let builder =
      Automaton.Builder.create
        ~name:(left.Automaton.name ^ "||" ^ right.Automaton.name)
        ~inputs:(Universe.to_list inputs) ~outputs:(Universe.to_list outputs)
        ~props:(Universe.to_list props) ()
    in
    Array.iteri
      (fun i name ->
        ignore
          (Automaton.Builder.add_state builder
             ~props:(Universe.names_of_set props labels.(i))
             name))
      state_names;
    Array.iteri
      (fun src ts ->
        List.iter
          (fun (t : Automaton.trans) ->
            Automaton.Builder.add_trans builder ~src:state_names.(src)
              ~inputs:(Universe.names_of_set inputs t.input)
              ~outputs:(Universe.names_of_set outputs t.output)
              ~dst:state_names.(t.dst) ())
          ts)
      (if count = 0 then [||] else trans);
    Automaton.Builder.set_initial builder (List.map (fun i -> state_names.(i)) initial);
    Automaton.Builder.build builder
  in
  { auto; left; right; pairs }

let parallel left right =
  let t0 = if Trace.is_enabled () then Some (Trace.now_us ()) else None in
  let p = parallel_unobserved left right in
  if t0 <> None || Metrics.enabled () then begin
    let states = Automaton.num_states p.auto in
    (* the transition count walks every adjacency list — worth it for the
       size histograms, too slow for the per-span fast path when only
       tracing is on *)
    if Metrics.enabled () then begin
      Metrics.observe m_product_states (float_of_int states);
      Metrics.observe m_product_transitions
        (float_of_int (Automaton.num_transitions p.auto))
    end;
    match t0 with
    | Some start_us ->
      Trace.complete ~name:"ts.compose" ~start_us
        ~args:
          [
            ("left", Trace.Str left.Automaton.name);
            ("right", Trace.Str right.Automaton.name);
            ("states", Trace.Int states);
          ]
        ()
    | None -> ()
  end;
  p

let parallel_many = function
  | [] -> invalid_arg "Compose.parallel_many: empty list"
  | [ m ] -> m
  | m :: rest -> List.fold_left (fun acc m' -> (parallel acc m').auto) m rest

let left_state p s = fst p.pairs.(s)

let right_state p s = snd p.pairs.(s)

let project side (p : product) (r : Run.t) =
  let target = match side with `Left -> p.left | `Right -> p.right in
  let pick = match side with `Left -> fst | `Right -> snd in
  let states = List.map (fun s -> pick p.pairs.(s)) (Run.state_sequence r) in
  let io =
    List.map
      (fun (a, b) ->
        ( Universe.restrict p.auto.Automaton.inputs ~to_:target.Automaton.inputs a,
          Universe.restrict p.auto.Automaton.outputs ~to_:target.Automaton.outputs b ))
      (Run.trace r)
  in
  if r.Run.deadlock then Run.deadlocking ~states ~io else Run.regular ~states ~io

let project_left p r = project `Left p r

let project_right p r = project `Right p r

let stepper (left : Automaton.t) (right : Automaton.t) =
  if not (Automaton.composable left right) then
    invalid_arg "Compose.stepper: operands are not composable";
  let li_ro = cross_map left.inputs right.outputs in
  let lo_ri = cross_map left.outputs right.inputs in
  let ri_lo = cross_map right.inputs left.outputs in
  let ro_li = cross_map right.outputs left.inputs in
  let mask_li = mask_of li_ro
  and mask_lo = mask_of lo_ri
  and mask_ri = mask_of ri_lo
  and mask_ro = mask_of ro_li in
  let compatible (t : Automaton.trans) (t' : Automaton.trans) =
    Bitset.equal (translate li_ro (Bitset.inter t.input mask_li)) (Bitset.inter t'.output mask_ro)
    && Bitset.equal
         (translate ri_lo (Bitset.inter t'.input mask_ri))
         (Bitset.inter t.output mask_lo)
  in
  fun (s, s') ->
    List.concat_map
      (fun t ->
        List.filter_map
          (fun t' -> if compatible t t' then Some (t, t') else None)
          (Automaton.transitions_from right s'))
      (Automaton.transitions_from left s)

let find_pair p pair =
  let n = Array.length p.pairs in
  let rec go i = if i >= n then None else if p.pairs.(i) = pair then Some i else go (i + 1) in
  go 0
