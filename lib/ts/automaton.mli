(** The finite state transition model of Definition 1, extended with the
    labelling function of Section 2.1.

    An automaton is [M = (S, I, O, T, L, Q)]: a finite state set [S], input
    signals [I], output signals [O], transitions
    [T ⊆ S × ℘(I) × ℘(O) × S], a labelling [L : S → ℘(P)] over atomic
    propositions [P], and initial states [Q].  Each transition takes exactly
    one discrete time unit. *)

type state = int

type trans = {
  input : Mechaml_util.Bitset.t;  (** [A ⊆ I], consumed this time unit *)
  output : Mechaml_util.Bitset.t; (** [B ⊆ O], produced this time unit *)
  dst : state;
}

type index
(** Packed acceleration structure: a state-name lookup table (built — and
    duplicate names validated — eagerly at construction) plus a CSR
    (compressed sparse row) copy of the transition relation with per-state
    segments stably sorted by interned interaction id, derived on first
    indexed access so construction-only intermediates never pay for it.
    Purely derived data — it never disagrees with [trans]; the on-demand
    build is safe to race across domains. *)

type t = private {
  name : string;
  inputs : Universe.t;
  outputs : Universe.t;
  props : Universe.t;
  state_names : string array;
  labels : Mechaml_util.Bitset.t array; (** [L], indexed by state *)
  trans : trans list array;             (** outgoing transitions per state *)
  initial : state list;
  index : index;
}

val num_states : t -> int

val num_transitions : t -> int

val state_name : t -> state -> string

val state_index : t -> string -> state
(** Raises [Invalid_argument] on unknown state names. *)

val state_index_opt : t -> string -> state option

val transitions_from : t -> state -> trans list

val label : t -> state -> Mechaml_util.Bitset.t

val has_prop : t -> state -> string -> bool
(** [has_prop m s p] is [true] iff proposition [p] is in the universe and in
    [L(s)]. *)

val is_blocking : t -> state -> bool
(** No outgoing transition at all: the state can only start deadlock runs. *)

val accepts : t -> state -> Mechaml_util.Bitset.t -> Mechaml_util.Bitset.t -> bool
(** [accepts m s a b] is [true] iff some transition [(s, a, b, _)] exists. *)

val successors : t -> state -> Mechaml_util.Bitset.t -> Mechaml_util.Bitset.t -> state list
(** Destinations of all [(s, a, b, _)] transitions. *)

val deterministic : t -> bool
(** The paper's notion: at most one successor per [(s, A, B)]. *)

val input_deterministic : t -> bool
(** The stronger notion required of legacy implementations: for every state
    and input set [A], at most one pair [(B, s')].  This is what makes the
    observed behaviour of a test replayable (Section 4.3). *)

val composable : t -> t -> bool
(** [I ∩ I' = ∅ ∧ O ∩ O' = ∅] (Definition 3). *)

val orthogonal : t -> t -> bool
(** Additionally [I ∩ O' = ∅ ∧ O ∩ I' = ∅]. *)

val rename : t -> string -> t

val relabel : t -> props:Universe.t -> (state -> Mechaml_util.Bitset.t) -> t
(** Replace the proposition universe and labelling wholesale. *)

val restrict : t -> inputs:Universe.t -> outputs:Universe.t -> props:Universe.t -> t
(** Project every transition label and state label onto sub-universes,
    dropping hidden signals ([M|_{I'/O'/L'}] as used by Lemma 3).  Duplicate
    transitions arising from the projection are merged. *)

val map_states : t -> f:(state -> string) -> t
(** Rename states. *)

val map_signals :
  t -> inputs:(string -> string) -> outputs:(string -> string) -> t
(** Rename signals (the wiring operation behind
    {!Mechaml_muml.Assembly}): transition bitsets are untouched because
    indices are preserved.  Raises [Invalid_argument] if a renaming
    introduces duplicates within a universe. *)

val of_packed :
  ?assume_unique_names:bool ->
  name:string ->
  inputs:Universe.t ->
  outputs:Universe.t ->
  props:Universe.t ->
  state_names:string array ->
  labels:Mechaml_util.Bitset.t array ->
  trans:trans list array ->
  initial:state list ->
  unit ->
  t
(** Raw constructor for callers that already hold index-space data
    ({!Compose}, {!Mechaml_core.Chaos}), bypassing the name-interning
    {!Builder} round trip.  All bitsets must already live in the given
    universes; adjacency lists are taken as-is (their order is the
    enumeration order of {!transitions_from}).  Raises [Invalid_argument] on
    mismatched array lengths, out-of-range states, an empty initial list, or
    duplicate state names.  [assume_unique_names] skips the duplicate check
    (and defers building the name lookup table to first use) for callers
    that guarantee uniqueness themselves, e.g. by generating the names. *)

val patch :
  old:t ->
  name:string ->
  props:Universe.t ->
  state_names:string array ->
  labels:Mechaml_util.Bitset.t array ->
  trans:trans list array ->
  initial:state list ->
  dirty:bool array ->
  old_of:int array ->
  dst_map:(state -> state) ->
  unit ->
  t
(** Incremental sibling of {!of_packed} for callers that derive the new
    automaton from an [old] one by changing only a few states' adjacency
    lists ({!Mechaml_core.Chaos}[.update]).  Signal universes are inherited
    from [old].  For every state [s] with [dirty.(s) = false] the caller
    asserts that [trans.(s)] lists exactly the transitions of old state
    [old_of.(s)] with each destination pushed through [dst_map] (same
    labels, same order); the CSR index is then spliced — clean segments are
    blitted from [old]'s index with destinations remapped, and only dirty
    segments intern their transitions (against a copy of [old]'s
    interaction table, so surviving interaction ids are preserved and
    blitted segments remain sorted).  Interaction ids and per-segment
    sorted order may therefore differ from a fresh {!of_packed} build;
    both are internal to the index — adjacency lists, state numbering and
    all set-valued queries are identical.  Like
    [of_packed ~assume_unique_names:true], state-name uniqueness is the
    caller's obligation.  Raises [Invalid_argument] on length mismatches,
    out-of-range dirty destinations or initial states, or a clean state
    whose [old_of] is out of range. *)

val interaction_id : t -> Mechaml_util.Bitset.t -> Mechaml_util.Bitset.t -> int option
(** Interned id of the interaction [(A, B)], if any transition of the
    automaton carries that exact label.  Ids are dense in
    [0, num_interactions). *)

val num_interactions : t -> int

val interaction_io : t -> int -> Mechaml_util.Bitset.t * Mechaml_util.Bitset.t
(** Inverse of {!interaction_id}. *)

(** Read-only views of the packed transition relation, for hot loops that
    want arrays instead of lists ({!Mechaml_mc.Sat}'s fixpoints, the
    on-the-fly checker).  Transition [k] of state [s] lives at flat offsets
    [row.(s) <= k < row.(s+1)]; segments are stably sorted by interaction
    id, so equal-labelled transitions keep adjacency-list order.  Callers
    must not mutate the returned arrays. *)
module Csr : sig
  val row : t -> int array

  val input : t -> Mechaml_util.Bitset.t array

  val output : t -> Mechaml_util.Bitset.t array

  val dst : t -> int array

  val inter : t -> int array

  val adj_inter : t -> int array
  (** Interaction id per transition in {e adjacency-list} order (the order
      {!transitions_from} enumerates), indexed by [row s + position]. The
      other flat arrays are per-segment sorted by id; this one is not. *)
end

(** Imperative construction API.  States are created on first mention, so
    models read like their textual definitions. *)
module Builder : sig
  type automaton := t

  type t

  val create :
    name:string ->
    inputs:string list ->
    outputs:string list ->
    ?props:string list ->
    unit ->
    t

  val add_state : t -> ?props:string list -> string -> state
  (** Declares a state (idempotent); [props] accumulate across calls. *)

  val add_trans :
    t -> src:string -> ?inputs:string list -> ?outputs:string list -> dst:string -> unit -> unit
  (** Adds [(src, inputs, outputs, dst)]; unseen states are created with empty
      label. *)

  val set_initial : t -> string list -> unit

  val build : t -> automaton
  (** Raises [Invalid_argument] when no initial state was declared. *)
end

val pp : Format.formatter -> t -> unit
(** Multi-line textual rendering (states, labels, transitions). *)

val pp_io : t -> Format.formatter -> Mechaml_util.Bitset.t * Mechaml_util.Bitset.t -> unit
(** Print one [A/B] interaction using the automaton's signal names. *)
