module Bitset = Mechaml_util.Bitset

type state = int

type trans = { input : Bitset.t; output : Bitset.t; dst : state }

(* Interaction interning: every distinct (A, B) transition label gets a small
   dense id.  When |I| + |O| fits a single word the key is the packed bit
   pattern (no allocation on lookup); otherwise fall back to structural
   hashing of the pair. *)
type inter_tbl =
  | Packed of { shift : int; tbl : (int, int) Hashtbl.t }
  | Pairs of (int * int, int) Hashtbl.t

type csr = {
  row : int array;            (* n+1 offsets into the flat arrays *)
  f_input : Bitset.t array;   (* per-state segments, stably sorted by id *)
  f_output : Bitset.t array;
  f_dst : int array;
  f_inter : int array;
  adj_inter : int array;      (* interaction id per transition, adjacency order *)
  inter_tbl : inter_tbl;
  inter_io : (Bitset.t * Bitset.t) array; (* id -> (input, output) *)
}

(* Both halves of the index are derived on first access — many automata are
   intermediate construction results (flattening, projection, products) that
   are only ever walked through their adjacency lists and never looked up by
   name.  Constructors that must report duplicate state names ([of_packed]
   without [assume_unique_names]) still build the name table eagerly, and
   [Builder.build] donates its intern table instead of rebuilding one.  The
   cells are atomic once-cells rather than [Lazy.t] because automata are
   shared across campaign worker domains: a racing force builds the same
   pure content twice and compare-and-set picks one winner, where a
   concurrent [Lazy.force] would raise. *)
type index = {
  name_cell : (string, int) Hashtbl.t option Atomic.t; (* state name -> first index *)
  csr_cell : csr option Atomic.t;
}

type t = {
  name : string;
  inputs : Universe.t;
  outputs : Universe.t;
  props : Universe.t;
  state_names : string array;
  labels : Bitset.t array;
  trans : trans list array;
  initial : state list;
  index : index;
}

let inter_find it a b =
  match it with
  | Packed { shift; tbl } ->
    Hashtbl.find_opt tbl ((Bitset.to_int a lsl shift) lor Bitset.to_int b)
  | Pairs tbl -> Hashtbl.find_opt tbl (Bitset.to_int a, Bitset.to_int b)

let inter_add it a b id =
  match it with
  | Packed { shift; tbl } ->
    Hashtbl.add tbl ((Bitset.to_int a lsl shift) lor Bitset.to_int b) id
  | Pairs tbl -> Hashtbl.add tbl (Bitset.to_int a, Bitset.to_int b) id

let build_name_tbl ~dup_ok ~name state_names =
  let name_tbl = Hashtbl.create (2 * Array.length state_names + 1) in
  Array.iteri
    (fun i s ->
      if Hashtbl.mem name_tbl s then begin
        if not dup_ok then
          invalid_arg
            (Printf.sprintf "Automaton.of_packed: duplicate state name %S in %s" s name)
      end
      else Hashtbl.add name_tbl s i)
    state_names;
  name_tbl

let build_csr ~in_width ~out_width ~n ~trans =
  let row = Array.make (n + 1) 0 in
  for s = 0 to n - 1 do
    row.(s + 1) <- row.(s) + List.length trans.(s)
  done;
  let total = row.(n) in
  let inter_tbl =
    if in_width + out_width <= Bitset.max_width then
      Packed { shift = out_width; tbl = Hashtbl.create 16 }
    else Pairs (Hashtbl.create 16)
  in
  let rev_io = ref [] and n_inter = ref 0 in
  let intern a b =
    match inter_find inter_tbl a b with
    | Some id -> id
    | None ->
      let id = !n_inter in
      incr n_inter;
      inter_add inter_tbl a b id;
      rev_io := (a, b) :: !rev_io;
      id
  in
  (* First pass in adjacency-list order, then a stable per-segment sort by
     interaction id: transitions sharing a label keep their list order, so
     [successors] still enumerates destinations in declaration order. *)
  let a_input = Array.make total Bitset.empty in
  let a_output = Array.make total Bitset.empty in
  let a_dst = Array.make total 0 in
  let a_inter = Array.make total 0 in
  for s = 0 to n - 1 do
    let k = ref row.(s) in
    List.iter
      (fun t ->
        a_input.(!k) <- t.input;
        a_output.(!k) <- t.output;
        a_dst.(!k) <- t.dst;
        a_inter.(!k) <- intern t.input t.output;
        incr k)
      trans.(s)
  done;
  (* Adjacency lists whose ids already come out non-decreasing (the common
     case: builders and products emit few, distinct labels per state) need
     no permutation at all — the pass-1 arrays serve as both views. *)
  let sorted = ref true in
  for s = 0 to n - 1 do
    for k = row.(s) + 1 to row.(s + 1) - 1 do
      if a_inter.(k - 1) > a_inter.(k) then sorted := false
    done
  done;
  let inter_io = Array.of_list (List.rev !rev_io) in
  if !sorted then
    {
      row;
      f_input = a_input;
      f_output = a_output;
      f_dst = a_dst;
      f_inter = a_inter;
      adj_inter = a_inter;
      inter_tbl;
      inter_io;
    }
  else begin
    let perm = Array.init total Fun.id in
    for s = 0 to n - 1 do
      let lo = row.(s) and hi = row.(s + 1) in
      if hi - lo > 1 then begin
        let seg = Array.sub perm lo (hi - lo) in
        Array.sort
          (fun i j ->
            let c = compare a_inter.(i) a_inter.(j) in
            if c <> 0 then c else compare i j)
          seg;
        Array.blit seg 0 perm lo (hi - lo)
      end
    done;
    {
      row;
      f_input = Array.map (fun i -> a_input.(i)) perm;
      f_output = Array.map (fun i -> a_output.(i)) perm;
      f_dst = Array.map (fun i -> a_dst.(i)) perm;
      f_inter = Array.map (fun i -> a_inter.(i)) perm;
      adj_inter = a_inter;
      inter_tbl;
      inter_io;
    }
  end

(* Splice a new CSR out of an old one: segments of clean states are blitted
   (destinations remapped through [dst_map]), only dirty segments intern
   their transitions — against a copy of the old interaction table, so ids
   of surviving interactions are preserved and the blitted segments stay
   per-segment sorted.  Interaction ids therefore differ from what a fresh
   [build_csr] would assign (stale ids linger, new ones append at the end),
   which is unobservable: every consumer either walks the adjacency lists
   ([adj_inter] keeps list order) or treats the sorted view as a set. *)
let patch_csr ~old_csr ~n ~trans ~dirty ~old_of ~dst_map =
  let old_row = old_csr.row in
  let row = Array.make (n + 1) 0 in
  for s = 0 to n - 1 do
    let len =
      if dirty.(s) then List.length trans.(s)
      else begin
        let o = old_of.(s) in
        old_row.(o + 1) - old_row.(o)
      end
    in
    row.(s + 1) <- row.(s) + len
  done;
  let total = row.(n) in
  let inter_tbl =
    match old_csr.inter_tbl with
    | Packed { shift; tbl } -> Packed { shift; tbl = Hashtbl.copy tbl }
    | Pairs tbl -> Pairs (Hashtbl.copy tbl)
  in
  let rev_io = ref [] and n_inter = ref (Array.length old_csr.inter_io) in
  let intern a b =
    match inter_find inter_tbl a b with
    | Some id -> id
    | None ->
      let id = !n_inter in
      incr n_inter;
      inter_add inter_tbl a b id;
      rev_io := (a, b) :: !rev_io;
      id
  in
  let f_input = Array.make total Bitset.empty in
  let f_output = Array.make total Bitset.empty in
  let f_dst = Array.make total 0 in
  let f_inter = Array.make total 0 in
  let adj_inter = Array.make total 0 in
  for s = 0 to n - 1 do
    let lo = row.(s) in
    let len = row.(s + 1) - lo in
    if not dirty.(s) then begin
      let o = old_of.(s) in
      let olo = old_row.(o) in
      Array.blit old_csr.f_input olo f_input lo len;
      Array.blit old_csr.f_output olo f_output lo len;
      Array.blit old_csr.f_inter olo f_inter lo len;
      Array.blit old_csr.adj_inter olo adj_inter lo len;
      for k = 0 to len - 1 do
        f_dst.(lo + k) <- dst_map old_csr.f_dst.(olo + k)
      done
    end
    else begin
      (* pass 1 in adjacency-list order *)
      let k = ref lo in
      List.iter
        (fun t ->
          f_input.(!k) <- t.input;
          f_output.(!k) <- t.output;
          f_dst.(!k) <- t.dst;
          let id = intern t.input t.output in
          f_inter.(!k) <- id;
          adj_inter.(!k) <- id;
          incr k)
        trans.(s);
      (* stable per-segment sort by interaction id, as [build_csr] does *)
      let sorted = ref true in
      for k = lo + 1 to lo + len - 1 do
        if f_inter.(k - 1) > f_inter.(k) then sorted := false
      done;
      if not !sorted then begin
        let perm = Array.init len (fun i -> lo + i) in
        Array.sort
          (fun i j ->
            let c = compare adj_inter.(i) adj_inter.(j) in
            if c <> 0 then c else compare i j)
          perm;
        let gi = Array.map (fun i -> f_input.(i)) perm in
        let go = Array.map (fun i -> f_output.(i)) perm in
        let gd = Array.map (fun i -> f_dst.(i)) perm in
        let gt = Array.map (fun i -> adj_inter.(i)) perm in
        Array.blit gi 0 f_input lo len;
        Array.blit go 0 f_output lo len;
        Array.blit gd 0 f_dst lo len;
        Array.blit gt 0 f_inter lo len
      end
    end
  done;
  let inter_io =
    Array.append old_csr.inter_io (Array.of_list (List.rev !rev_io))
  in
  { row; f_input; f_output; f_dst; f_inter; adj_inter; inter_tbl; inter_io }

let make_with_tbl ~name_tbl ~name ~inputs ~outputs ~props ~state_names ~labels ~trans ~initial =
  let index = { name_cell = Atomic.make name_tbl; csr_cell = Atomic.make None } in
  { name; inputs; outputs; props; state_names; labels; trans; initial; index }

let make ~dup_ok ~name ~inputs ~outputs ~props ~state_names ~labels ~trans ~initial =
  (* With [dup_ok] nothing can fail, so the table is derived on demand;
     otherwise build it now to surface duplicates at construction time. *)
  let name_tbl =
    if dup_ok then None else Some (build_name_tbl ~dup_ok ~name state_names)
  in
  make_with_tbl ~name_tbl ~name ~inputs ~outputs ~props ~state_names ~labels ~trans ~initial

let num_states m = Array.length m.state_names

let name_tbl m =
  match Atomic.get m.index.name_cell with
  | Some t -> t
  | None ->
    let t = build_name_tbl ~dup_ok:true ~name:m.name m.state_names in
    ignore (Atomic.compare_and_set m.index.name_cell None (Some t));
    (match Atomic.get m.index.name_cell with Some t -> t | None -> assert false)

let csr m =
  match Atomic.get m.index.csr_cell with
  | Some c -> c
  | None ->
    let c =
      build_csr ~in_width:(Universe.size m.inputs) ~out_width:(Universe.size m.outputs)
        ~n:(num_states m) ~trans:m.trans
    in
    ignore (Atomic.compare_and_set m.index.csr_cell None (Some c));
    (match Atomic.get m.index.csr_cell with Some c -> c | None -> assert false)

let num_transitions m = (csr m).row.(num_states m)

let state_name m s =
  if s < 0 || s >= num_states m then
    invalid_arg (Printf.sprintf "Automaton.state_name: state %d out of range" s);
  m.state_names.(s)

let state_index_opt m name = Hashtbl.find_opt (name_tbl m) name

let state_index m name =
  match state_index_opt m name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Automaton.state_index: unknown state %S in %s" name m.name)

let transitions_from m s = m.trans.(s)

let label m s = m.labels.(s)

let has_prop m s p =
  match Universe.index_opt m.props p with
  | Some i -> Bitset.mem i m.labels.(s)
  | None -> false

let is_blocking m s = m.trans.(s) = []

let interaction_id m a b = inter_find (csr m).inter_tbl a b

let num_interactions m = Array.length (csr m).inter_io

let interaction_io m id = (csr m).inter_io.(id)

(* Lowest k in [lo, hi) with f_inter.(k) >= id. *)
let lower_bound f_inter lo hi id =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if f_inter.(mid) < id then lo := mid + 1 else hi := mid
  done;
  !lo

let accepts m s a b =
  match interaction_id m a b with
  | None -> false
  | Some id ->
    let ix = csr m in
    let k = lower_bound ix.f_inter ix.row.(s) ix.row.(s + 1) id in
    k < ix.row.(s + 1) && ix.f_inter.(k) = id

let successors m s a b =
  match interaction_id m a b with
  | None -> []
  | Some id ->
    let ix = csr m in
    let hi = ix.row.(s + 1) in
    let k = lower_bound ix.f_inter ix.row.(s) hi id in
    let rec collect k = if k < hi && ix.f_inter.(k) = id then ix.f_dst.(k) :: collect (k + 1) else [] in
    collect k

let deterministic m =
  let ix = csr m in
  let ok = ref true in
  for s = 0 to num_states m - 1 do
    for k = ix.row.(s) to ix.row.(s + 1) - 2 do
      if ix.f_inter.(k) = ix.f_inter.(k + 1) then ok := false
    done
  done;
  !ok

let input_deterministic m =
  let ok = ref true in
  Array.iter
    (fun ts ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun t ->
          let key = Bitset.to_int t.input in
          if Hashtbl.mem seen key then ok := false else Hashtbl.add seen key ())
        ts)
    m.trans;
  !ok

let composable a b = Universe.disjoint a.inputs b.inputs && Universe.disjoint a.outputs b.outputs

let orthogonal a b =
  composable a b && Universe.disjoint a.inputs b.outputs && Universe.disjoint a.outputs b.inputs

let rename m name = { m with name }

let relabel m ~props f =
  { m with props; labels = Array.init (num_states m) f }

let dedup_trans ts =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun t ->
      let key = (Bitset.to_int t.input, Bitset.to_int t.output, t.dst) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    ts

let restrict m ~inputs ~outputs ~props =
  let project_trans t =
    {
      input = Universe.restrict m.inputs ~to_:inputs t.input;
      output = Universe.restrict m.outputs ~to_:outputs t.output;
      dst = t.dst;
    }
  in
  make ~dup_ok:true ~name:m.name ~inputs ~outputs ~props ~state_names:m.state_names
    ~labels:(Array.map (fun l -> Universe.restrict m.props ~to_:props l) m.labels)
    ~trans:(Array.map (fun ts -> dedup_trans (List.map project_trans ts)) m.trans)
    ~initial:m.initial

let map_states m ~f =
  let state_names = Array.init (num_states m) f in
  (* transitions are untouched: the CSR carries over and the name lookup
     table is rederived on demand from the new names *)
  { m with state_names; index = { name_cell = Atomic.make None; csr_cell = m.index.csr_cell } }

let map_signals m ~inputs ~outputs =
  {
    m with
    inputs = Universe.of_list (List.map inputs (Universe.to_list m.inputs));
    outputs = Universe.of_list (List.map outputs (Universe.to_list m.outputs));
  }

let of_packed ?(assume_unique_names = false) ~name ~inputs ~outputs ~props ~state_names ~labels
    ~trans ~initial () =
  let n = Array.length state_names in
  if Array.length labels <> n || Array.length trans <> n then
    invalid_arg (Printf.sprintf "Automaton.of_packed: array lengths disagree in %s" name);
  if initial = [] then
    invalid_arg (Printf.sprintf "Automaton.of_packed: %s has no initial state" name);
  List.iter
    (fun q ->
      if q < 0 || q >= n then
        invalid_arg (Printf.sprintf "Automaton.of_packed: initial state %d out of range in %s" q name))
    initial;
  Array.iter
    (List.iter (fun t ->
         if t.dst < 0 || t.dst >= n then
           invalid_arg
             (Printf.sprintf "Automaton.of_packed: destination %d out of range in %s" t.dst name)))
    trans;
  make ~dup_ok:assume_unique_names ~name ~inputs ~outputs ~props ~state_names ~labels ~trans
    ~initial

let patch ~old ~name ~props ~state_names ~labels ~trans ~initial ~dirty ~old_of ~dst_map () =
  let n = Array.length state_names in
  if Array.length labels <> n || Array.length trans <> n || Array.length dirty <> n
     || Array.length old_of <> n
  then invalid_arg (Printf.sprintf "Automaton.patch: array lengths disagree in %s" name);
  if initial = [] then invalid_arg (Printf.sprintf "Automaton.patch: %s has no initial state" name);
  List.iter
    (fun q ->
      if q < 0 || q >= n then
        invalid_arg (Printf.sprintf "Automaton.patch: initial state %d out of range in %s" q name))
    initial;
  let old_n = num_states old in
  Array.iteri
    (fun s o ->
      if (not dirty.(s)) && (o < 0 || o >= old_n) then
        invalid_arg
          (Printf.sprintf "Automaton.patch: clean state %d has no valid old index in %s" s name))
    old_of;
  (* only dirty rows carry unvalidated destinations; clean rows were checked
     when [old] was built and are remapped wholesale *)
  Array.iteri
    (fun s ts ->
      if dirty.(s) then
        List.iter
          (fun t ->
            if t.dst < 0 || t.dst >= n then
              invalid_arg
                (Printf.sprintf "Automaton.patch: destination %d out of range in %s" t.dst name))
          ts)
    trans;
  let c = patch_csr ~old_csr:(csr old) ~n ~trans ~dirty ~old_of ~dst_map in
  let index = { name_cell = Atomic.make None; csr_cell = Atomic.make (Some c) } in
  {
    name;
    inputs = old.inputs;
    outputs = old.outputs;
    props;
    state_names;
    labels;
    trans;
    initial;
    index;
  }

module Csr = struct
  let row m = (csr m).row

  let input m = (csr m).f_input

  let output m = (csr m).f_output

  let dst m = (csr m).f_dst

  let inter m = (csr m).f_inter

  let adj_inter m = (csr m).adj_inter
end

module Builder = struct
  (* the enclosing automaton type is referenced via the result of [build] *)

  type b = {
    b_name : string;
    b_inputs : Universe.t;
    b_outputs : Universe.t;
    mutable b_props : string list; (* reverse order of first mention *)
    names : (string, int) Hashtbl.t;
    mutable rev_states : string list;
    mutable n : int;
    state_props : (int, string list ref) Hashtbl.t;
    mutable rev_trans : (int * string list * string list * int) list;
    mutable initial : string list;
    declared_props : string list;
  }

  type t = b

  let create ~name ~inputs ~outputs ?(props = []) () =
    {
      b_name = name;
      b_inputs = Universe.of_list inputs;
      b_outputs = Universe.of_list outputs;
      b_props = List.rev props;
      names = Hashtbl.create 16;
      rev_states = [];
      n = 0;
      state_props = Hashtbl.create 16;
      rev_trans = [];
      initial = [];
      declared_props = props;
    }

  let intern_state b name =
    match Hashtbl.find_opt b.names name with
    | Some i -> i
    | None ->
      let i = b.n in
      Hashtbl.add b.names name i;
      b.rev_states <- name :: b.rev_states;
      b.n <- b.n + 1;
      Hashtbl.add b.state_props i (ref []);
      i

  let note_prop b p = if not (List.mem p b.b_props) then b.b_props <- p :: b.b_props

  let add_state b ?(props = []) name =
    let i = intern_state b name in
    let cell = Hashtbl.find b.state_props i in
    List.iter
      (fun p ->
        note_prop b p;
        if not (List.mem p !cell) then cell := p :: !cell)
      props;
    i

  let add_trans b ~src ?(inputs = []) ?(outputs = []) ~dst () =
    let s = intern_state b src in
    let d = intern_state b dst in
    (* Validate signal names eagerly so mistakes surface at model-building
       time rather than during composition. *)
    List.iter (fun i -> ignore (Universe.index b.b_inputs i)) inputs;
    List.iter (fun o -> ignore (Universe.index b.b_outputs o)) outputs;
    b.rev_trans <- (s, inputs, outputs, d) :: b.rev_trans

  let set_initial b names = b.initial <- names

  let build b =
    if b.initial = [] then
      invalid_arg (Printf.sprintf "Automaton.Builder.build: %s has no initial state" b.b_name);
    let props = Universe.of_list (List.rev b.b_props) in
    let state_names = Array.of_list (List.rev b.rev_states) in
    let labels =
      Array.init b.n (fun i ->
          Universe.set_of_names props !(Hashtbl.find b.state_props i))
    in
    let trans = Array.make (max b.n 1) [] in
    List.iter
      (fun (s, inputs, outputs, d) ->
        let t =
          {
            input = Universe.set_of_names b.b_inputs inputs;
            output = Universe.set_of_names b.b_outputs outputs;
            dst = d;
          }
        in
        trans.(s) <- t :: trans.(s))
      b.rev_trans;
    let initial =
      List.map
        (fun n ->
          match Hashtbl.find_opt b.names n with
          | Some i -> i
          | None -> invalid_arg (Printf.sprintf "Builder.build: unknown initial state %S" n))
        b.initial
    in
    (* [b.names] maps exactly the interned state names to their indices, so a
       copy (no rehashing) doubles as the automaton's lookup table —
       uniqueness is guaranteed by interning, no validation needed.  Copied
       because the builder stays usable after [build]. *)
    make_with_tbl ~name_tbl:(Some (Hashtbl.copy b.names)) ~name:b.b_name ~inputs:b.b_inputs
      ~outputs:b.b_outputs ~props ~state_names ~labels
      ~trans:(if b.n = 0 then [||] else trans)
      ~initial
end

let pp_io m ppf (a, b) =
  Format.fprintf ppf "%a/%a" (Universe.pp_set m.inputs) a (Universe.pp_set m.outputs) b

let pp ppf m =
  Format.fprintf ppf "@[<v>automaton %s@," m.name;
  Format.fprintf ppf "  inputs:  %s@," (String.concat ", " (Universe.to_list m.inputs));
  Format.fprintf ppf "  outputs: %s@," (String.concat ", " (Universe.to_list m.outputs));
  Format.fprintf ppf "  initial: %s@,"
    (String.concat ", " (List.map (fun s -> m.state_names.(s)) m.initial));
  Array.iteri
    (fun s ts ->
      let lbl = Universe.names_of_set m.props m.labels.(s) in
      Format.fprintf ppf "  state %s%s@," m.state_names.(s)
        (if lbl = [] then "" else " [" ^ String.concat ", " lbl ^ "]");
      List.iter
        (fun t ->
          Format.fprintf ppf "    %a -> %s@," (pp_io m) (t.input, t.output)
            m.state_names.(t.dst))
        ts)
    m.trans;
  Format.fprintf ppf "@]"
