(** Sharded, out-of-core product exploration.

    {!Compose.parallel} materializes the whole product as one automaton —
    one interning table, one adjacency array, one domain's RAM.  [Shard]
    partitions the same BFS by a hash of the packed pair key: one interning
    table and one CSR segment per shard, shard-local frontiers expanded per
    BFS level (on worker domains when available), and a boundary-exchange
    merge that hands out state numbers in {e global discovery order} — so
    state numbering, labels, adjacency order, and therefore every verdict
    derived from them are byte-identical to the single-shard construction
    for any shard count.

    Under a memory budget the per-shard segments live in a {!Segment}
    manager: cold shards spill to disk and reload on demand, bounding
    resident memory by the watermark instead of the product size.  The
    sharded product deliberately stores no state names and no transition
    labels — just enough structure (labels, CSR in both directions,
    blocking set) for the global model checker; witness extraction falls
    back to the materialized product. *)

module Bitset = Mechaml_util.Bitset
module Bitvec = Mechaml_util.Bitvec
module Segment = Mechaml_util.Segment

(** How the shards are placed across {e processes}.  Plain data — the
    distributed engine itself lives in [Mechaml_dist] so that this library
    carries no wire dependency; [Shard.explore] ignores the field and the
    pipeline ({!Mechaml_core}[.Loop]) dispatches on it. *)
type dist_mode =
  | Fork of int  (** spawn N local [mechaverify shard-worker] processes *)
  | Connect of string list
      (** attach to pre-started workers at these addresses
          ([host:port] or Unix socket paths) *)

type distribution = {
  dist_mode : dist_mode;
  dist_deadline_s : float;
      (** per-round reply deadline; a worker silent for longer is treated as
          crashed and its shards are re-dispatched *)
}

val distribution : ?deadline_s:float -> dist_mode -> distribution
(** Default deadline: 120 s.  Raises [Invalid_argument] on [Fork n] with
    [n < 1], an empty [Connect] list, or a non-positive deadline. *)

type config = {
  shards : int;  (** number of partitions, >= 1 *)
  mem_budget : int option;  (** residency watermark in bytes; [None] = never spill *)
  spill_dir : string option;  (** parent directory for spill files *)
  workers : int option;
      (** expansion worker domains; default [min shards (recommended_domain_count)] *)
  distribution : distribution option;
      (** when set, the pipeline runs the build and the fixpoints on a
          worker-process fleet instead of in-process worker domains *)
}

val config :
  ?shards:int ->
  ?mem_budget:int ->
  ?spill_dir:string ->
  ?workers:int ->
  ?distribution:distribution ->
  unit ->
  config
(** Defaults: [shards = 1], no budget, system temp dir, automatic workers,
    no distribution.  Raises [Invalid_argument] on [shards < 1] or
    [workers < 1]. *)

type t

(** One shard's resident segment: [members] maps local index to global
    state id (ascending); [row]/[dst] and [prow]/[psrc] are the forward and
    predecessor CSR over local source indices with global neighbour ids.
    Views borrow manager payloads — they stay valid even if the shard is
    evicted while in use, but long-lived references defeat the budget. *)
type view = {
  members : int array;
  row : int array;
  dst : int array;
  prow : int array;
  psrc : int array;
}

val explore : ?config:config -> Automaton.t -> Automaton.t -> t
(** [explore left right] builds the sharded product of the two operands.
    Same preconditions as {!Compose.parallel} (composability, disjoint
    proposition universes); raises [Invalid_argument] otherwise. *)

val num_states : t -> int

val num_transitions : t -> int

val initial : t -> int list
(** Global ids of the initial pairs, in {!Compose.parallel}'s order. *)

val shards : t -> int

val sizes : t -> int array
(** States per shard. *)

val owner : t -> int array
(** Global state id -> owning shard. *)

val local : t -> int array
(** Global state id -> local index within its owning shard. *)

val labels : t -> Bitset.t array
(** Global state id -> proposition labels (left labels, then right labels
    shifted past the left proposition universe — {!Compose.parallel}'s
    packing). *)

val props : t -> Universe.t
(** The product's proposition universe (left ∪ right). *)

val blocking : t -> Bitvec.t
(** Global bit per state: no outgoing joint move. *)

val view : t -> int -> view
(** The shard's segment, reloading from spill files as needed; raises
    {!Segment.Spill_error} on a damaged spill file. *)

val manager : t -> Segment.t
(** The residency manager — the checker registers its per-shard sat-set
    bit vectors here so they share the same budget and spill tier. *)

val spills : t -> int

val reloads : t -> int

val close : t -> unit
(** Remove every spill file.  Idempotent. *)

val mix : int -> int
(** The partition hash over packed pair keys — exposed so the distributed
    coordinator places states on exactly the same shards. *)

(** The persistent, round-synchronized domain crew behind [explore]'s
    parallel expansion — reused by the distributed coordinator to overlap
    its per-worker round trips. *)
module Crew : sig
  type t

  val create : int -> t
  (** Spawn a crew of N domains. *)

  val round : t -> (int -> unit) -> unit
  (** Run [fn w] on every crew member [w] in parallel; returns when all are
      done, re-raising the first exception. *)

  val stop : t -> unit
end
