(** Sharded, out-of-core product exploration.

    {!Compose.parallel} materializes the whole product as one automaton —
    one interning table, one adjacency array, one domain's RAM.  [Shard]
    partitions the same BFS by a hash of the packed pair key: one interning
    table and one CSR segment per shard, shard-local frontiers expanded per
    BFS level (on worker domains when available), and a boundary-exchange
    merge that hands out state numbers in {e global discovery order} — so
    state numbering, labels, adjacency order, and therefore every verdict
    derived from them are byte-identical to the single-shard construction
    for any shard count.

    Under a memory budget the per-shard segments live in a {!Segment}
    manager: cold shards spill to disk and reload on demand, bounding
    resident memory by the watermark instead of the product size.  The
    sharded product deliberately stores no state names and no transition
    labels — just enough structure (labels, CSR in both directions,
    blocking set) for the global model checker; witness extraction falls
    back to the materialized product. *)

module Bitset = Mechaml_util.Bitset
module Bitvec = Mechaml_util.Bitvec
module Segment = Mechaml_util.Segment

type config = {
  shards : int;  (** number of partitions, >= 1 *)
  mem_budget : int option;  (** residency watermark in bytes; [None] = never spill *)
  spill_dir : string option;  (** parent directory for spill files *)
  workers : int option;
      (** expansion worker domains; default [min shards (recommended_domain_count)] *)
}

val config :
  ?shards:int -> ?mem_budget:int -> ?spill_dir:string -> ?workers:int -> unit -> config
(** Defaults: [shards = 1], no budget, system temp dir, automatic workers.
    Raises [Invalid_argument] on [shards < 1] or [workers < 1]. *)

type t

(** One shard's resident segment: [members] maps local index to global
    state id (ascending); [row]/[dst] and [prow]/[psrc] are the forward and
    predecessor CSR over local source indices with global neighbour ids.
    Views borrow manager payloads — they stay valid even if the shard is
    evicted while in use, but long-lived references defeat the budget. *)
type view = {
  members : int array;
  row : int array;
  dst : int array;
  prow : int array;
  psrc : int array;
}

val explore : ?config:config -> Automaton.t -> Automaton.t -> t
(** [explore left right] builds the sharded product of the two operands.
    Same preconditions as {!Compose.parallel} (composability, disjoint
    proposition universes); raises [Invalid_argument] otherwise. *)

val num_states : t -> int

val num_transitions : t -> int

val initial : t -> int list
(** Global ids of the initial pairs, in {!Compose.parallel}'s order. *)

val shards : t -> int

val sizes : t -> int array
(** States per shard. *)

val owner : t -> int array
(** Global state id -> owning shard. *)

val local : t -> int array
(** Global state id -> local index within its owning shard. *)

val labels : t -> Bitset.t array
(** Global state id -> proposition labels (left labels, then right labels
    shifted past the left proposition universe — {!Compose.parallel}'s
    packing). *)

val props : t -> Universe.t
(** The product's proposition universe (left ∪ right). *)

val blocking : t -> Bitvec.t
(** Global bit per state: no outgoing joint move. *)

val view : t -> int -> view
(** The shard's segment, reloading from spill files as needed; raises
    {!Segment.Spill_error} on a damaged spill file. *)

val manager : t -> Segment.t
(** The residency manager — the checker registers its per-shard sat-set
    bit vectors here so they share the same budget and spill tier. *)

val spills : t -> int

val reloads : t -> int

val close : t -> unit
(** Remove every spill file.  Idempotent. *)
