(** Global CTL satisfaction over a distributed product ({!Distshard}).

    Mirrors {!Mechaml_mc.Shardsat} — same fixpoints, same bounded dynamic
    programs — with satisfaction sets as global bit vectors on the
    coordinator, and successor sweeps / unbounded fixpoints running on the
    worker fleet.  The fixpoints are confluent, so the distributed schedule
    (including mid-operator worker restarts) converges to bit-for-bit the
    same sets as {!Mechaml_mc.Sat} and {!Mechaml_mc.Shardsat}, for any
    worker and shard count. *)

module Ctl = Mechaml_logic.Ctl

type env

val create : Distshard.t -> env
(** The product must stay open (not {!Distshard.close}d) while the env is
    in use. *)

val holds_initially : env -> Ctl.t -> bool
(** Whether every initial product state satisfies the formula — identical
    to {!Mechaml_mc.Sat.holds_initially} on the materialized product.
    Raises {!Distshard.Dist_error} if the fleet cannot be kept alive. *)

val failing_initial : env -> Ctl.t -> int option
(** First initial state (in initial-list order) violating the formula. *)
