(** Cross-process sharded product exploration: the coordinator.

    Drives the same level-synchronized BFS as {!Mechaml_ts.Shard}, but with
    expansion and segment residency on a fleet of worker processes
    ({!Distworker}) reached over {!Mechaml_wire.Shardwire}.  The coordinator
    keeps the per-shard interning tables and performs the serial
    discovery-order merge itself, so state numbering, labels, degrees,
    adjacency order — and therefore every verdict derived from them — are
    byte-identical to {!Mechaml_ts.Compose.parallel} and to the in-process
    sharded path, for any worker count.

    Fault tolerance: the coordinator banks every shipped edge generation
    (and, after the build, every forward/predecessor segment) in its own
    {!Mechaml_util.Segment} manager.  A worker that crashes or misses the
    per-round deadline is replaced — respawned in place under [Fork],
    or its shards are re-dispatched to a surviving peer under [Connect] —
    and rebuilt from the banked generation; the build then continues with
    identical results.  The coordinator's resident memory stays bounded by
    the configured budget (plus O(states) metadata, as everywhere else). *)

module Bitset = Mechaml_util.Bitset
module Bitvec = Mechaml_util.Bitvec
module Segment = Mechaml_util.Segment
module Shard = Mechaml_ts.Shard
module Universe = Mechaml_ts.Universe
module Automaton = Mechaml_ts.Automaton

exception Dist_error of string
(** Unrecoverable fleet failure: no workers left, restart budget exhausted,
    or a worker answered data that does not verify against the protocol. *)

type t

val explore :
  ?config:Shard.config ->
  ?chaos_die_after:int * int ->
  Automaton.t ->
  Automaton.t ->
  t
(** [explore left right] builds the product on the fleet described by
    [config.distribution] (required — raises [Invalid_argument] without
    one).  [chaos_die_after (w, r)] is a test hook: worker [w] simulates a
    crash after [r] build rounds, exercising mid-build recovery. *)

(** {1 Structure accessors — mirror {!Mechaml_ts.Shard}} *)

val num_states : t -> int

val num_transitions : t -> int

val initial : t -> int list

val shards : t -> int

val sizes : t -> int array

val owner : t -> int array

val local : t -> int array

val labels : t -> Bitset.t array

val props : t -> Universe.t

val blocking : t -> Bitvec.t

type view = Shard.view = {
  members : int array;
  row : int array;
  dst : int array;
  prow : int array;
  psrc : int array;
}

val view : t -> int -> view
(** The shard's banked segment generation (coordinator-side copy). *)

val manager : t -> Segment.t
(** The coordinator's residency manager; {!Distsat} banks its converged
    sets here so they share the budget. *)

val spills : t -> int

val reloads : t -> int

val restarts : t -> int
(** Workers declared dead and replaced over this product's lifetime. *)

(** {1 Process-wide wire totals — the [mc_dist_*_total] metrics} *)

val total_rounds : unit -> int

val total_bytes_tx : unit -> int

val total_bytes_rx : unit -> int

val total_restarts : unit -> int

val close : t -> unit
(** Close worker sessions (and, under [Fork], shut the processes down),
    stop the dispatch crew, remove every spill file and socket.
    Idempotent. *)

(** {1 Distributed satisfaction primitives — used by {!Distsat}}

    All results are global bit vectors assembled per owning shard, and all
    operations recover from worker loss internally: stateless sweeps are
    retried, stateful fixpoints are restarted from their operands (they are
    confluent, so a restart converges to the identical set). *)

val agg : t -> forall:bool -> Bitvec.t -> Bitvec.t
(** [agg t ~forall x] — per state: quantify [x] over its successors
    ([forall]: vacuously true when blocking; [exists]: false). *)

type fix_kind = Ef | Eu | Eg | Au

val fixpoint : t -> fix_kind -> seed:Bitvec.t -> guard:Bitvec.t option -> Bitvec.t
(** The four unbounded fixpoints, distributed: seeds and boundary frontiers
    travel as digest-checked bitset deltas; workers drain shard-local
    worklists between exchanges.  [guard] is the [f] of [E/A (f U g)]
    (required for [Eu]/[Au]). *)
