(** The worker half of the distributed shard tier.

    A worker owns a subset of shards for each open session: it expands
    frontiers with {!Mechaml_ts.Compose.joint_iter}, holds the per-shard
    forward and predecessor CSR segments under its own {!Segment} budget,
    and runs the shard-local part of the global fixpoints.  The coordinator
    ({!Distshard}) keeps all discovery-order interning and verdict-bearing
    state, so a worker can die at any point and be replaced from the
    coordinator's banked generation.

    One worker process serves any number of sessions (keyed by [sid]), so a
    pre-started fleet ([--dist-connect]) is shared infrastructure: closing a
    session never shuts the worker down. *)

type t

val create : ?ppid:int -> Unix.file_descr -> t
(** A worker over a bound, listening socket.  With [ppid] the accept loop
    also exits when the parent changes — a forked worker orphaned by a
    coordinator crash reaps itself instead of leaking. *)

val serve : t -> unit
(** Blocking accept loop; returns after a [shutdown] op, a simulated crash
    ([die_after_rounds]), or (with [ppid]) coordinator death.  Closes the
    listening socket and every session's segment manager on the way out. *)

(** {1 In-process worker}

    For tests and the distribution-neutrality suites: the same [serve] loop
    on a fresh domain, reachable over a real socket. *)

type handle

val start : Mechaml_wire.Shardwire.addr -> handle
(** Bind, listen and serve on a new domain. *)

val addr : handle -> Mechaml_wire.Shardwire.addr

val stop : handle -> unit
(** Stop the loop, join the domain, unlink a Unix socket path. *)
